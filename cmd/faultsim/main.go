// Command faultsim replays a scripted fault scenario against a halo-exchange
// job twice — once with the adaptive re-specialization monitor off, once on —
// and reports the before/after method selection, the fault and adaptation
// timelines, and the virtual-time win from adapting.
//
// Example:
//
//	faultsim -scenario nvlink-kill -iters 8
//	faultsim -scenario nic-flap -nodes 2 -cuda-aware
//
// Permanent losses are scheduled with -kill (a GPU) and -killrank (a rank
// and every GPU it drives); both are repeatable and imply periodic
// checkpointing (-checkpoint), so the job rolls back to the last checkpoint,
// migrates the lost subdomains to surviving GPUs, and replays:
//
//	faultsim -nodes 2 -kill 0:1@2.5 -killrank 3@4.2 -verify
//
// Delivery faults make every node's NIC drop, corrupt, and duplicate
// messages with the given probabilities (deterministically sampled from
// -seed); they arm the MPI reliable-delivery envelope and, with -verify,
// end-to-end halo verification. -flap toggles node 0's NIC periodically so
// the link-health quarantine of the adaptive run is visible:
//
//	faultsim -nodes 2 -domain 24 -drop 0.15 -corrupt 0.15 -dup 0.1 -retries 3 -seed 7 -verify
//	faultsim -nodes 2 -domain 24 -flap 4 -verify
//
// -metrics FILE writes the adaptive run's telemetry snapshot report and
// -events FILE its structured NDJSON event log (faults, adaptations, MPI
// retries, link samples, phase spans — all on the virtual clock); feed the
// latter to cmd/telemetry for a per-phase/hot-link/method-flip report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/telemetry"
)

func main() { jobspec.Main(run) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	nodes := fs.Int("nodes", 1, "number of nodes")
	ranks := fs.Int("ranks", 2, "MPI ranks per node")
	edge := fs.Int("domain", 96, "cubic domain edge")
	radius := fs.Int("radius", 1, "stencil radius")
	quantities := fs.Int("quantities", 2, "grid quantities")
	iters := fs.Int("iters", 8, "exchange iterations")
	scenario := fs.String("scenario", "nvlink-kill",
		"fault scenario: nvlink-kill, nvlink-flap, nic-flap, nic-degrade, xbus-degrade, gpu-straggle")
	failIter := fs.Float64("fail-iter", 2.5, "inject the fault this many (healthy) iterations into the run")
	outageIters := fs.Float64("outage-iters", 2, "recovery scenarios: outage length in (healthy) iterations")
	factor := fs.Float64("factor", 0.1, "degradation factor (degrade scenarios) or slowdown (gpu-straggle: 1/factor)")
	cudaAware := fs.Bool("cuda-aware", false, "use CUDA-aware MPI for remote messages")
	overlap := fs.Bool("overlap", false, "overlap interior compute with halo exchange (per-quadrant readiness)")
	verify := fs.Bool("verify", false, "move real bytes and verify halos (small domains only)")
	timeout := fs.Float64("send-timeout", 0, "MPI send timeout in seconds (0 disables retry)")
	drop := fs.Float64("drop", 0, "per-message drop probability on every node's NIC (arms the reliable envelope)")
	corrupt := fs.Float64("corrupt", 0, "per-message corruption probability on every node's NIC (combine with -verify to flip real bytes)")
	dup := fs.Float64("dup", 0, "per-message duplication probability on every node's NIC")
	flap := fs.Int("flap", 0, "flap node 0's NIC for this many periodic cycles (period: one healthy iteration, 50% duty)")
	seed := fs.Uint64("seed", 1, "deterministic seed for delivery-fault sampling")
	retries := fs.Int("retries", 0, "reliable-envelope attempt cap per message (0: default 8)")
	metricsPath := fs.String("metrics", "", "write the adaptive run's telemetry snapshot report to this file")
	eventsPath := fs.String("events", "", "write the adaptive run's telemetry event log (NDJSON) to this file")
	checkpoint := fs.Int("checkpoint", 0,
		"checkpoint every K iterations (0: auto — 2 when kills are scheduled, else disabled)")
	type killSpec struct {
		node, gpu int
		at        float64
		rank      bool
	}
	var kills []killSpec
	fs.Func("kill", "permanently kill GPU `node:gpu@t`, t in healthy iterations (repeatable; overrides -scenario)",
		func(s string) error {
			var k killSpec
			if _, err := fmt.Sscanf(s, "%d:%d@%f", &k.node, &k.gpu, &k.at); err != nil {
				return fmt.Errorf("-kill %q: want node:gpu@t", s)
			}
			kills = append(kills, k)
			return nil
		})
	fs.Func("killrank", "permanently kill rank `r@t` and its GPUs, t in healthy iterations (repeatable; overrides -scenario)",
		func(s string) error {
			k := killSpec{rank: true}
			if _, err := fmt.Sscanf(s, "%d@%f", &k.node, &k.at); err != nil {
				return fmt.Errorf("-killrank %q: want rank@t", s)
			}
			kills = append(kills, k)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(kills) > 0 && *checkpoint == 0 {
		*checkpoint = 2
	}
	scenarioSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "scenario" {
			scenarioSet = true
		}
	})
	lossy := *drop > 0 || *corrupt > 0 || *dup > 0

	// The job's base shape as a jobspec: the same document a stencilserve
	// client would submit to replay this run.
	spec := &jobspec.Spec{
		Nodes:           *nodes,
		RanksPerNode:    *ranks,
		Domain:          strconv.Itoa(*edge),
		Radius:          *radius,
		Quantities:      *quantities,
		Caps:            "kernel",
		CUDAAware:       *cudaAware,
		Overlap:         *overlap,
		Verify:          *verify,
		Iters:           *iters,
		SendTimeout:     *timeout,
		SendRetries:     *retries,
		CheckpointEvery: *checkpoint,
	}
	specCfg, err := spec.Config()
	if err != nil {
		return err
	}
	baseCfg := func(adaptive bool) stencil.Config {
		cfg := specCfg
		cfg.Adaptive = adaptive
		return cfg
	}

	// Probe run: healthy iteration time (to time the fault mid-run) and the
	// topology facts the scenario builders need.
	probe, err := stencil.New(baseCfg(false))
	if err != nil {
		return err
	}
	healthy := probe.Exchange(2).Mean()
	failAt := float64(healthy) * *failIter
	outage := float64(healthy) * *outageIters

	var sc *stencil.FaultScenario
	var desc string
	if len(kills) > 0 {
		*scenario = "kill-schedule"
		sc = &stencil.FaultScenario{Name: "kill-schedule"}
		var parts []string
		for _, k := range kills {
			at := float64(healthy) * k.at
			if k.rank {
				sc.KillRank(at, k.node)
				parts = append(parts, fmt.Sprintf("kill rank %d at t=%.3f ms", k.node, at*1e3))
			} else {
				sc.KillGPU(at, k.node, k.gpu)
				parts = append(parts, fmt.Sprintf("kill GPU %d of node %d at t=%.3f ms", k.gpu, k.node, at*1e3))
			}
		}
		desc = strings.Join(parts, "; ") + fmt.Sprintf(" (checkpoint every %d iters)", *checkpoint)
		if err := sc.Validate(); err != nil {
			return err
		}
	} else if (lossy || *flap > 0) && !scenarioSet {
		// Pure delivery-fault run: no topology fault underneath.
		*scenario = "lossy"
		sc = &stencil.FaultScenario{Name: "lossy"}
		desc = "clean topology"
	} else {
		sc, desc, err = buildScenario(*scenario, probe, failAt, outage, *factor)
		if err != nil {
			return err
		}
	}
	if lossy || *flap > 0 {
		sc.Seed = *seed
		var parts []string
		if lossy {
			for n := 0; n < *nodes; n++ {
				sc.LossyNIC(0, n, *drop, *corrupt, *dup)
			}
			parts = append(parts, fmt.Sprintf("every NIC drop=%g corrupt=%g dup=%g (seed %d)",
				*drop, *corrupt, *dup, *seed))
		}
		if *flap > 0 {
			sc.FlapNICPeriodic(failAt, 0, float64(healthy), 0.5, *flap)
			parts = append(parts, fmt.Sprintf("NIC of node 0 flaps %d cycles of %.3f ms (50%% duty) from t=%.3f ms",
				*flap, healthy*1e3, failAt*1e3))
		}
		desc += "; " + strings.Join(parts, "; ")
		if err := sc.Validate(); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "configuration: %dn/%dr domain %d^3 radius %d quantities %d cuda-aware=%v\n",
		*nodes, *ranks, *edge, *radius, *quantities, *cudaAware)
	fmt.Fprintf(out, "healthy iteration: %.3f ms (probe)\n", healthy*1e3)
	fmt.Fprintf(out, "scenario %s: %s\n\n", *scenario, desc)

	fill := func(q, x, y, z int) float32 { return float32(q*1000003 + z*9973 + y*97 + x) }
	var tel *stencil.Telemetry
	runOne := func(adaptive bool) (*stencil.DistributedDomain, *stencil.Stats, error) {
		cfg := baseCfg(adaptive)
		cfg.Fault = sc
		if adaptive && (*metricsPath != "" || *eventsPath != "") {
			// Telemetry observes the adaptive run: that is the one whose
			// event log shows the fault -> adapt -> recover story.
			tel = stencil.NewTelemetry()
			cfg.Telemetry = tel
		}
		dd, err := stencil.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if *verify {
			dd.Fill(fill)
		}
		return dd, dd.Exchange(*iters), nil
	}

	ddN, statsN, err := runOne(false)
	if err != nil {
		return err
	}
	ddA, statsA, err := runOne(true)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "method selection (setup -> after run):\n")
	printBreakdowns(out, ddN.MethodBreakdown(), ddA.MethodBreakdown())

	fmt.Fprintf(out, "\nfault timeline:\n")
	for _, r := range ddA.FaultLog() {
		fmt.Fprintf(out, "  %s\n", r)
	}
	fmt.Fprintf(out, "adaptation timeline:\n")
	if len(ddA.AdaptLog()) == 0 {
		fmt.Fprintf(out, "  (no adaptation was necessary)\n")
	}
	for _, r := range ddA.AdaptLog() {
		fmt.Fprintf(out, "  %s\n", r)
	}
	if rec := ddA.RecoveryLog(); len(rec) > 0 {
		fmt.Fprintf(out, "recovery timeline:\n")
		for _, r := range rec {
			fmt.Fprintf(out, "  %s\n", r)
		}
		fmt.Fprintf(out, "recovery summary: %d checkpoints, %d rollbacks, %d subdomains migrated\n",
			statsA.Checkpoints, statsA.Rollbacks, statsA.MigratedSubs)
	}

	fmt.Fprintf(out, "\niteration times (ms):\n")
	fmt.Fprintf(out, "  %-5s %12s %12s\n", "iter", "non-adaptive", "adaptive")
	var totN, totA float64
	for i := range statsN.Iterations {
		tn, ta := float64(statsN.Iterations[i]), float64(statsA.Iterations[i])
		totN += tn
		totA += ta
		fmt.Fprintf(out, "  %-5d %12.3f %12.3f\n", i, tn*1e3, ta*1e3)
	}
	fmt.Fprintf(out, "  %-5s %12.3f %12.3f\n", "total", totN*1e3, totA*1e3)
	if totA < totN {
		fmt.Fprintf(out, "\nadaptive wins: %.3f ms vs %.3f ms (%.2fx better)\n", totA*1e3, totN*1e3, totN/totA)
	} else {
		fmt.Fprintf(out, "\nadaptive does not win on this scenario (%.3f ms vs %.3f ms)\n", totA*1e3, totN*1e3)
	}
	if statsA.MPIRetries > 0 || statsN.MPIRetries > 0 {
		fmt.Fprintf(out, "MPI retries: %d non-adaptive, %d adaptive\n", statsN.MPIRetries, statsA.MPIRetries)
	}

	if lossy || *flap > 0 {
		fmt.Fprintf(out, "\ndelivery protocol (adaptive run):\n")
		d := statsA.Delivery
		fmt.Fprintf(out, "  messages %d, retransmits %d, drops %d (+%d acks), corruptions %d, dups %d (deduped %d), nacks %d, exhausted %d\n",
			d.Messages, d.Retransmits, d.Drops, d.AckDrops, d.Corrupts, d.Dups, d.Dedups, d.Nacks, d.Exhausted)
		fmt.Fprintf(out, "  verification: %d quadrants re-exchanged over %d repair rounds, %d forced repairs\n",
			statsA.ReExchanges, statsA.VerifyRounds, statsA.ForcedRepairs)
		if statsA.QuarantineEnters > 0 || statsA.QuarantineExits > 0 {
			fmt.Fprintf(out, "  link quarantine: %d enters, %d exits\n",
				statsA.QuarantineEnters, statsA.QuarantineExits)
		}
	}

	if *verify {
		for name, dd := range map[string]*stencil.DistributedDomain{"non-adaptive": ddN, "adaptive": ddA} {
			if bad, detail := dd.VerifyHalos(fill); bad != 0 {
				return fmt.Errorf("%s run: %d corrupted halo cells: %s", name, bad, detail)
			}
		}
		fmt.Fprintf(out, "halo verification: byte-identical in both runs\n")
	}

	if *metricsPath != "" && tel != nil {
		rep := &telemetry.Report{
			Schema: telemetry.SchemaVersion,
			Tool:   "faultsim",
			Iters:  *iters,
			Runs: []telemetry.ReportRun{{
				Config:   fmt.Sprintf("%dn/%dr/%d^3 %s adaptive", *nodes, *ranks, *edge, *scenario),
				Snapshot: tel.Snapshot(),
			}},
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.WriteReport(f, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics report written to %s\n", *metricsPath)
	}
	if *eventsPath != "" && tel != nil {
		f, err := os.Create(*eventsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tel.WriteEvents(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "event log written to %s\n", *eventsPath)
	}
	return nil
}

// buildScenario constructs the named scenario against the probed topology.
func buildScenario(name string, probe *stencil.DistributedDomain, failAt, outage, factor float64) (*stencil.FaultScenario, string, error) {
	if factor <= 0 || factor > 1 {
		return nil, "", fmt.Errorf("-factor %g out of range (0, 1]", factor)
	}
	sc := &stencil.FaultScenario{Name: name}
	switch name {
	case "nvlink-kill", "nvlink-flap":
		a, b, ok := triadPair(probe)
		if !ok {
			return nil, "", fmt.Errorf("scenario %s: no same-rank triad GPU pair (need >= 3 GPUs per rank)", name)
		}
		if name == "nvlink-kill" {
			sc.KillNVLink(failAt, 0, a, b, 0)
			return sc, fmt.Sprintf("kill NVLink %d-%d of node 0 at t=%.3f ms, no recovery", a, b, failAt*1e3), nil
		}
		sc.KillNVLink(failAt, 0, a, b, outage)
		return sc, fmt.Sprintf("kill NVLink %d-%d of node 0 at t=%.3f ms, recover after %.3f ms", a, b, failAt*1e3, outage*1e3), nil
	case "nic-flap":
		sc.FlapNIC(failAt, 0, outage)
		return sc, fmt.Sprintf("NIC of node 0 down at t=%.3f ms for %.3f ms", failAt*1e3, outage*1e3), nil
	case "nic-degrade":
		sc.DegradeNIC(failAt, 0, factor)
		return sc, fmt.Sprintf("NIC of node 0 degraded to %.2fx healthy at t=%.3f ms", factor, failAt*1e3), nil
	case "xbus-degrade":
		sc.DegradeXBus(failAt, 0, 0, 1, factor)
		return sc, fmt.Sprintf("X-Bus 0-1 of node 0 degraded to %.2fx healthy at t=%.3f ms", factor, failAt*1e3), nil
	case "gpu-straggle":
		slow := 1 / factor
		sc.StraggleGPU(failAt, 0, 0, slow, 0)
		return sc, fmt.Sprintf("GPU 0 of node 0 straggles at %.1fx kernel cost from t=%.3f ms", slow, failAt*1e3), nil
	}
	return nil, "", fmt.Errorf("unknown scenario %q", name)
}

// triadPair finds two same-rank GPUs sharing a triad (and so an NVLink).
func triadPair(dd *stencil.DistributedDomain) (a, b int, ok bool) {
	subs := dd.Subdomains()
	for i, s1 := range subs {
		for _, s2 := range subs[i+1:] {
			n1, g1 := s1.GPU()
			n2, g2 := s2.GPU()
			if n1 == 0 && n2 == 0 && s1.Rank() == s2.Rank() && g1 != g2 && g1/3 == g2/3 {
				return g1, g2, true
			}
		}
	}
	return 0, 0, false
}

func printBreakdowns(out io.Writer, before, after map[stencil.Method]int) {
	var methods []stencil.Method
	seen := map[stencil.Method]bool{}
	for m := range before {
		seen[m] = true
	}
	for m := range after {
		seen[m] = true
	}
	for m := range seen {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i] < methods[j] })
	for _, m := range methods {
		marker := ""
		if after[m] != before[m] {
			marker = fmt.Sprintf("   (%+d adapted)", after[m]-before[m])
		}
		fmt.Fprintf(out, "  %-16v %6d -> %-6d%s\n", m, before[m], after[m], marker)
	}
}
