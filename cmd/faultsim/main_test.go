package main

import (
	"strings"
	"testing"
)

// TestRunNVLinkKill: the acceptance scenario end to end through the driver —
// the adaptive replay demotes the NVLink plans, verifies halos, and beats
// the non-adaptive replay.
func TestRunNVLinkKill(t *testing.T) {
	var buf strings.Builder
	args := []string{"-scenario", "nvlink-kill", "-domain", "24", "-iters", "4", "-verify"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"healthy iteration:", "scenario nvlink-kill:",
		"method selection", "fault timeline:", "adaptation timeline:",
		"adapted)", "adaptive wins:",
		"halo verification: byte-identical in both runs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunStraggle: a scenario with no link damage still replays cleanly (no
// adaptation is expected; kernels just slow down).
func TestRunStraggle(t *testing.T) {
	var buf strings.Builder
	args := []string{"-scenario", "gpu-straggle", "-domain", "24", "-iters", "3", "-factor", "0.5"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fault timeline:") {
		t.Errorf("output missing fault timeline:\n%s", buf.String())
	}
}

// TestRunBadScenario: unknown scenarios are reported as errors.
func TestRunBadScenario(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenario", "meteor-strike"}, &buf); err == nil {
		t.Error("expected error for unknown scenario")
	}
}
