package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/telemetry"
)

// TestRunNVLinkKill: the acceptance scenario end to end through the driver —
// the adaptive replay demotes the NVLink plans, verifies halos, and beats
// the non-adaptive replay.
func TestRunNVLinkKill(t *testing.T) {
	var buf strings.Builder
	args := []string{"-scenario", "nvlink-kill", "-domain", "24", "-iters", "4", "-verify"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"healthy iteration:", "scenario nvlink-kill:",
		"method selection", "fault timeline:", "adaptation timeline:",
		"adapted)", "adaptive wins:",
		"halo verification: byte-identical in both runs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunKillSchedule: the recovery scenario end to end through the driver —
// -kill and -killrank build a fatal schedule, checkpointing defaults on, the
// recovery timeline is printed, and the recovered run stays byte-identical.
func TestRunKillSchedule(t *testing.T) {
	var buf strings.Builder
	args := []string{"-nodes", "2", "-domain", "24", "-iters", "8",
		"-kill", "0:1@2.5", "-killrank", "3@4.2", "-verify"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario kill-schedule:", "(checkpoint every 2 iters)",
		"permanent loss of n0.gpu.1", "permanent loss of rank3",
		"recovery timeline:",
		"checkpoint epoch 0 committed", "failure", "rollback", "migrate", "resume",
		"recovery summary:", "2 rollbacks", "4 subdomains migrated",
		"halo verification: byte-identical in both runs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBadKillSpec: malformed kill specs are reported as flag errors.
func TestRunBadKillSpec(t *testing.T) {
	for _, args := range [][]string{
		{"-kill", "0:1"},
		{"-kill", "banana"},
		{"-killrank", "3"},
		{"-kill", "0:1@-2"},
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestRunStraggle: a scenario with no link damage still replays cleanly (no
// adaptation is expected; kernels just slow down).
func TestRunStraggle(t *testing.T) {
	var buf strings.Builder
	args := []string{"-scenario", "gpu-straggle", "-domain", "24", "-iters", "3", "-factor", "0.5"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fault timeline:") {
		t.Errorf("output missing fault timeline:\n%s", buf.String())
	}
}

// TestRunBadScenario: unknown scenarios are reported as errors.
func TestRunBadScenario(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenario", "meteor-strike"}, &buf); err == nil {
		t.Error("expected error for unknown scenario")
	}
}

// TestRunTelemetryOutputs: -metrics and -events capture the adaptive run —
// the event log tells the fault -> adapt story and the snapshot report counts
// the switches.
func TestRunTelemetryOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	events := filepath.Join(dir, "e.ndjson")
	args := []string{"-scenario", "nvlink-kill", "-domain", "24", "-iters", "4",
		"-metrics", metrics, "-events", events}
	var buf strings.Builder
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}

	rep, err := telemetry.ReadReport(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "faultsim" || len(rep.Runs) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	var switches float64
	for _, c := range rep.Runs[0].Snapshot.Counters {
		if c.Name == "adapt_switches_total" {
			switches += c.Value
		}
	}
	if switches == 0 {
		t.Error("adaptive nvlink-kill run recorded no adapt_switches_total")
	}

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	var faults, adapts int
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		switch m["kind"] {
		case "fault":
			faults++
		case "adapt":
			adapts++
		}
	}
	if faults == 0 || adapts == 0 {
		t.Errorf("event log has %d fault and %d adapt events, want both > 0", faults, adapts)
	}
}
