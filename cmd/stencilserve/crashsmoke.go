package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/serve"
)

// The crash smoke: the CI gate for the durability layer.
//
// Phase 1 (deterministic, byte-gated): a durable server with no workers
// accepts a batch of jobs — every one acknowledged, so every one is fsync'd
// in the journal — and is then killed in-process, exactly the post-SIGKILL
// state (a torn partial record is appended on top, as a real crash can leave
// one). A fresh server on the same data directory must recover every
// acknowledged job and run it to completion, and each spec's result digest
// must match an uncrashed in-memory server's. Everything in this section is
// a pure function of the spec set, so it is compared byte-for-byte against
// the committed reference.
//
// Phase 2 (informational + ratio-gated): the same load run on an in-memory
// and on a durable server, timed. The figures are host-dependent — only the
// overhead ratio is gated (journaling must stay within 1.5x), the absolute
// rates are archived for trend reading.

const (
	crashSchema      = "stencilserve-crash/1"
	crashDistinct    = 24
	crashPerSpec     = 10 // submissions per distinct spec
	crashTenants     = 4
	overheadJobs     = 1500
	overheadConc     = 128
	overheadTrials   = 4
	overheadDistinct = 24 // distinct specs in the load pool; the rest are cache hits
	maxOverheadRat   = 1.5
)

// crashSpecDigest is one distinct spec's deterministic identity.
type crashSpecDigest struct {
	SpecHash     string `json:"spec_hash"`
	ResultSHA256 string `json:"result_sha256"`
}

// crashDeterministic is the byte-gated section of the report.
type crashDeterministic struct {
	JobsSubmitted    int               `json:"jobs_submitted"`
	DistinctSpecs    int               `json:"distinct_specs"`
	InFlightAtKill   int               `json:"in_flight_at_kill"`
	TornRecords      int               `json:"torn_records"`
	RecoveredJobs    int               `json:"recovered_jobs"`
	LostJobs         int               `json:"lost_jobs"`
	AllRecoveredDone bool              `json:"all_recovered_done"`
	ByteIdentical    bool              `json:"byte_identical"`
	Specs            []crashSpecDigest `json:"specs"`
}

// crashOverhead is the host-dependent section; only the ratio is gated.
type crashOverhead struct {
	Jobs              int     `json:"jobs"`
	Concurrency       int     `json:"concurrency"`
	Workers           int     `json:"workers"`
	MemoryJobsPerSec  float64 `json:"memory_jobs_per_sec"`
	DurableJobsPerSec float64 `json:"durable_jobs_per_sec"`
	OverheadRatio     float64 `json:"overhead_ratio"` // memory rate / durable rate
	GroupCommits      int64   `json:"group_commits"`
	JournalRecords    int64   `json:"journal_records"`
}

type crashReport struct {
	Schema        string             `json:"schema"`
	Deterministic crashDeterministic `json:"deterministic"`
	Overhead      crashOverhead      `json:"journal_overhead"`
}

// crashSpec returns distinct spec i of the crash matrix.
func crashSpec(i int) *jobspec.Spec {
	sp := tinySpec()
	sp.Iters = 2 + i
	return sp
}

func runCrashSmoke(cfg serve.Config, refPath string, report, log io.Writer) error {
	rep := crashReport{Schema: crashSchema}

	det, err := crashDeterministicPhase(log)
	if err != nil {
		return err
	}
	rep.Deterministic = *det

	oh, err := crashOverheadPhase(cfg, log)
	if err != nil {
		return err
	}
	rep.Overhead = *oh

	enc := json.NewEncoder(report)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if det.LostJobs > 0 || !det.AllRecoveredDone || !det.ByteIdentical {
		return fmt.Errorf("crashsmoke: recovery lost or corrupted acknowledged jobs (lost=%d done=%t identical=%t)",
			det.LostJobs, det.AllRecoveredDone, det.ByteIdentical)
	}
	if refPath != "" {
		if err := gateAgainstRef(refPath, &rep, log); err != nil {
			return err
		}
	}
	return nil
}

// crashDeterministicPhase runs the kill/recover cycle and builds the
// byte-gated section.
func crashDeterministicPhase(log io.Writer) (*crashDeterministic, error) {
	dir, err := os.MkdirTemp("", "stencilserve-crash-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	det := &crashDeterministic{
		DistinctSpecs: crashDistinct,
		JobsSubmitted: crashDistinct * crashPerSpec,
	}

	// Workers: -1 — no workers, so every acknowledged job is still queued at
	// the kill and in_flight_at_kill is exact, not racy.
	s1, err := serve.Open(serve.Config{Workers: -1, DataDir: dir, QueueDepth: det.JobsSubmitted + 16})
	if err != nil {
		return nil, err
	}
	var ids []string
	for i := 0; i < det.JobsSubmitted; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%crashTenants)
		j, err := s1.Submit(tenant, crashSpec(i%crashDistinct))
		if err != nil {
			return nil, fmt.Errorf("crashsmoke submit %d: %w", i, err)
		}
		ids = append(ids, j.ID)
	}
	det.InFlightAtKill = len(ids)
	s1.Kill()
	fmt.Fprintf(log, "crashsmoke: killed server with %d acknowledged jobs in flight\n", det.InFlightAtKill)

	// A real SIGKILL can tear the final record mid-write; simulate it.
	jf, err := os.OpenFile(filepath.Join(dir, serve.JournalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	jf.WriteString(`{"v":1,"rec":"submitted","job":"torn`)
	jf.Close()
	det.TornRecords = 1

	// Recover and run everything.
	s2, err := serve.Open(serve.Config{DataDir: dir, QueueDepth: det.JobsSubmitted + 16})
	if err != nil {
		return nil, err
	}
	det.AllRecoveredDone = true
	recovered := map[string][]byte{} // spec hash -> result bytes
	for _, id := range ids {
		j, ok := s2.Job(id)
		if !ok {
			det.LostJobs++
			det.AllRecoveredDone = false
			continue
		}
		det.RecoveredJobs++
		if st := j.Wait(); st != serve.StateDone {
			det.AllRecoveredDone = false
			continue
		}
		res, _ := j.Result()
		recovered[j.Hash] = res
	}
	s2.Drain()

	// Uncrashed reference: the same distinct specs on a plain in-memory
	// server must produce byte-identical results.
	ref := serve.NewServer(serve.Config{})
	det.ByteIdentical = true
	for i := 0; i < crashDistinct; i++ {
		j, err := ref.Submit("ref", crashSpec(i))
		if err != nil {
			return nil, err
		}
		if st := j.Wait(); st != serve.StateDone {
			return nil, fmt.Errorf("crashsmoke reference job ended %s", st)
		}
		res, _ := j.Result()
		if !bytes.Equal(res, recovered[j.Hash]) {
			det.ByteIdentical = false
		}
		sum := sha256.Sum256(res)
		det.Specs = append(det.Specs, crashSpecDigest{
			SpecHash:     j.Hash,
			ResultSHA256: hex.EncodeToString(sum[:]),
		})
	}
	ref.Drain()
	sort.Slice(det.Specs, func(a, b int) bool { return det.Specs[a].SpecHash < det.Specs[b].SpecHash })
	fmt.Fprintf(log, "crashsmoke: recovered %d/%d jobs, byte_identical=%t\n",
		det.RecoveredJobs, det.JobsSubmitted, det.ByteIdentical)
	return det, nil
}

// crashOverheadPhase times the same submit+wait load on an in-memory and a
// durable server and reports the throughput ratio.
func crashOverheadPhase(base serve.Config, log io.Writer) (*crashOverhead, error) {
	workers := base.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	oh := &crashOverhead{Jobs: overheadJobs, Concurrency: overheadConc, Workers: workers}

	// Open-loop load: every client goroutine submits as fast as the server
	// acknowledges (this is where group commit amortizes the fsyncs), then
	// the run waits for the whole batch to finish. jobs/s is measured over
	// submit-through-completion of all jobs. The spec pool mixes distinct
	// specs (real compute + a result spill each) with repeats (cache hits),
	// like production traffic — an all-cache-hit pool would measure only the
	// submit path and overstate journal overhead relative to any job that
	// does work.
	specs := make([]*jobspec.Spec, overheadDistinct)
	for i := range specs {
		specs[i] = crashSpec(i)
	}
	run := func(dataDir string) (float64, *serve.Server, error) {
		s, err := serve.Open(serve.Config{
			Workers: workers, DataDir: dataDir, QueueDepth: overheadJobs + 64,
		})
		if err != nil {
			return 0, nil, err
		}
		idx := make(chan int)
		submitted := make([]*serve.Job, overheadJobs)
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		start := time.Now()
		for w := 0; w < overheadConc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					sp := *specs[i%len(specs)]
					j, err := s.Submit(fmt.Sprintf("tenant-%d", i%7), &sp)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						continue
					}
					submitted[i] = j
				}
			}()
		}
		for i := 0; i < overheadJobs; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		for _, j := range submitted {
			if j == nil {
				continue
			}
			if st := j.Wait(); st != serve.StateDone {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("job %s ended %s", j.ID, st)
				}
				errMu.Unlock()
			}
		}
		wall := time.Since(start).Seconds()
		if firstErr != nil {
			return 0, nil, firstErr
		}
		return float64(overheadJobs) / wall, s, nil
	}

	// Best-of-N per mode: each trial is only ~100-200ms of wall time, so a
	// single scheduler hiccup can swing the ratio by tens of percent. Trials
	// alternate in-memory and durable runs so slow stretches of the host hit
	// both modes alike; taking each mode's best trial then measures the cost
	// of journaling rather than the noise of the host.
	var memRate, durRate float64
	var js serve.JournalStats
	for t := 0; t < overheadTrials; t++ {
		rate, srv, err := run("")
		if err != nil {
			return nil, err
		}
		srv.Drain()
		if rate > memRate {
			memRate = rate
		}

		dir, err := os.MkdirTemp("", "stencilserve-overhead-")
		if err != nil {
			return nil, err
		}
		rate, srv, err = run(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		stats := srv.JournalStats()
		srv.Drain()
		os.RemoveAll(dir)
		if rate > durRate {
			durRate, js = rate, stats
		}
	}

	oh.MemoryJobsPerSec = memRate
	oh.DurableJobsPerSec = durRate
	oh.OverheadRatio = memRate / durRate
	oh.GroupCommits = js.Syncs
	oh.JournalRecords = js.Records
	fmt.Fprintf(log, "crashsmoke: %.0f jobs/s in-memory, %.0f jobs/s durable (ratio %.2fx, %d group commits for %d records)\n",
		memRate, durRate, oh.OverheadRatio, js.Syncs, js.Records)
	return oh, nil
}

// gateAgainstRef enforces the CI contract: the deterministic section must be
// byte-identical to the committed reference, and the freshly measured
// journal overhead must stay within the budget.
func gateAgainstRef(refPath string, got *crashReport, log io.Writer) error {
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		return fmt.Errorf("crashsmoke ref: %w", err)
	}
	var ref crashReport
	if err := json.Unmarshal(refBytes, &ref); err != nil {
		return fmt.Errorf("crashsmoke ref decode: %w", err)
	}
	want, err := json.MarshalIndent(ref.Deterministic, "", "  ")
	if err != nil {
		return err
	}
	have, err := json.MarshalIndent(got.Deterministic, "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(want, have) {
		return fmt.Errorf("crashsmoke: deterministic section diverged from %s:\nwant:\n%s\ngot:\n%s",
			refPath, want, have)
	}
	if got.Overhead.OverheadRatio > maxOverheadRat {
		return fmt.Errorf("crashsmoke: journal overhead %.2fx exceeds the %.1fx budget",
			got.Overhead.OverheadRatio, maxOverheadRat)
	}
	fmt.Fprintf(log, "crashsmoke: deterministic section matches %s byte-for-byte; overhead %.2fx within %.1fx\n",
		refPath, got.Overhead.OverheadRatio, maxOverheadRat)
	return nil
}
