// Command stencilserve is a multi-tenant stencil-simulation service: it
// accepts jobspec JSON over HTTP, runs each job on an isolated deterministic
// engine in a sharded worker pool, streams per-job NDJSON telemetry, and
// exploits determinism with two cache layers (whole-result and setup).
//
//	stencilserve -addr :8080          # serve until SIGTERM (graceful drain)
//	stencilserve -data-dir /var/lib/stencilserve -addr :8080
//	                                  # durable: journal + cache spill, crash-safe
//	stencilserve -loadtest 2000       # self-contained load test, JSON report
//	stencilserve -smoke               # deterministic smoke matrix (CI gate)
//	stencilserve -crashsmoke          # kill/recover + journal-overhead report
//	stencilserve -hasmoke             # failover smoke: replicate, kill -9, promote
//	stencilserve -journal-dump DIR    # pretty-print a data directory's journal
//	stencilserve -journal-compact DIR # compact a data directory's journal in place
//	stencilserve -data-dir B -replica-of http://primary:8080
//	                                  # follower: mirror the primary, promote on demand
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"time"

	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/serve"
)

func main() { jobspec.Main(run) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stencilserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 1024, "bounded job queue depth (backpressure beyond it)")
	resultCache := fs.Int("result-cache", 4096, "whole-result cache entries")
	setupCache := fs.Int("setup-cache", 4096, "setup (placement) cache entries")
	loadtest := fs.Int("loadtest", 0, "run a self-contained load test with N jobs and exit")
	concurrency := fs.Int("concurrency", 64, "load-test client concurrency")
	smoke := fs.Bool("smoke", false, "run the deterministic smoke matrix and exit")
	outPath := fs.String("out", "", "write the load-test/smoke report here instead of stdout")
	dataDir := fs.String("data-dir", "", "durable data directory (job journal + cache spill); empty = in-memory")
	journalDump := fs.String("journal-dump", "", "pretty-print the journal in this data directory (or file) and exit")
	crashsmoke := fs.Bool("crashsmoke", false, "run the kill/recover crash smoke and journal-overhead measurement, then exit")
	hasmoke := fs.Bool("hasmoke", false, "run the replication/failover smoke and replication-overhead measurement, then exit")
	ref := fs.String("ref", "", "crashsmoke/hasmoke: gate against this reference report (byte-exact deterministic section, overhead <= 1.5x)")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant submit rate budget, jobs/s (0 = unlimited)")
	quotaBurst := fs.Int("quota-burst", 0, "per-tenant submit burst (0 = max(1, rate))")
	quotaInFlight := fs.Int("quota-inflight", 0, "per-tenant queued+running job budget (0 = unlimited)")
	quotaBytes := fs.Int64("quota-bytes", 0, "per-tenant stored-result bytes budget (0 = unlimited)")
	degradeDepth := fs.Int("degrade-depth", 0, "queue depth that enters degraded mode (0 = disabled)")
	shedDepth := fs.Int("shed-depth", 0, "queue depth that sheds all new submissions (0 = queue-depth)")
	shedAge := fs.Duration("shed-age", 0, "oldest-queued-job age that sheds all new submissions (0 = disabled)")
	replicaOf := fs.String("replica-of", "", "run as a follower replicating this primary URL (requires -data-dir)")
	promoteOnLoss := fs.Bool("promote-on-lease-loss", false, "follower: auto-promote when the primary goes silent and its lease expires")
	leasePath := fs.String("lease", "", "failover lease file shared between primary and standby (empty = no lease arbitration)")
	leaseTTL := fs.Duration("lease-ttl", 0, "failover lease time-to-live (0 = 2s)")
	journalCompact := fs.String("journal-compact", "", "compact the journal in this data directory in place and exit")
	compactBytes := fs.Int64("compact-bytes", 0, "journal size that triggers automatic compaction (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		report = f
	}

	cfg := serve.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		ResultCacheEntries: *resultCache,
		SetupCacheEntries:  *setupCache,
		DataDir:            *dataDir,
		TenantQuota: serve.Quota{
			SubmitRate:     *quotaRate,
			SubmitBurst:    *quotaBurst,
			MaxInFlight:    *quotaInFlight,
			MaxStoredBytes: *quotaBytes,
		},
		DegradeDepth: *degradeDepth,
		ShedDepth:    *shedDepth,
		ShedAge:      *shedAge,
		CompactBytes: *compactBytes,
		LeasePath:    *leasePath,
		LeaseTTL:     *leaseTTL,
	}
	switch {
	case *journalDump != "":
		var buf bytes.Buffer
		if err := serve.DumpJournal(*journalDump, &buf); err != nil {
			return err
		}
		_, err := report.Write(buf.Bytes())
		return err
	case *journalCompact != "":
		before, after, err := serve.CompactDataDir(*journalCompact)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "compacted %s: %d -> %d bytes (%.1f%% kept)\n",
			*journalCompact, before, after, 100*float64(after)/float64(max(before, 1)))
		return nil
	case *crashsmoke:
		return runCrashSmoke(cfg, *ref, report, out)
	case *hasmoke:
		return runHASmoke(cfg, *ref, report, out)
	case *smoke:
		return runSmoke(cfg, report)
	case *loadtest > 0:
		if cfg.QueueDepth < *loadtest+64 {
			cfg.QueueDepth = *loadtest + 64
		}
		return runLoadTest(cfg, *loadtest, *concurrency, report, out)
	case *replicaOf != "":
		if cfg.DataDir == "" {
			return fmt.Errorf("-replica-of requires -data-dir (the follower's journal mirror)")
		}
		return serveFollower(cfg, *addr, *replicaOf, *promoteOnLoss, out)
	}
	return serveForever(cfg, *addr, out)
}

// serveForever runs the HTTP service until SIGINT/SIGTERM, then drains:
// intake stops (503), queued and running jobs finish, and the listener
// closes.
func serveForever(cfg serve.Config, addr string, out io.Writer) error {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s, err := serve.Open(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: s.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "stencilserve listening on %s (%d workers, queue %d)\n",
		ln.Addr(), cfg.Workers, cfg.QueueDepth)
	if cfg.DataDir != "" {
		rec := s.Recovery()
		fmt.Fprintf(out, "durable data dir %s: recovered %d journal records (%d torn), re-enqueued %d jobs, restored %d terminal, rehydrated %d results / %d setups\n",
			cfg.DataDir, rec.JournalRecords, rec.TornRecords, rec.Reenqueued, rec.Completed,
			rec.ResultsRehydrated, rec.SetupsRehydrated)
	}
	if cfg.LeasePath != "" {
		fmt.Fprintf(out, "holding failover lease %s\n", cfg.LeasePath)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Fprintf(out, "received %s, draining...\n", got)
	case <-s.LeaseLost():
		// Another replica took the failover lease: this server is no longer
		// the primary. Drain and exit rather than split-brain.
		fmt.Fprintf(out, "failover lease %s lost to another replica, draining...\n", cfg.LeasePath)
	}
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "drained; all jobs complete")
	return nil
}

// serveFollower runs the standby half of a replicated pair: it mirrors the
// primary's journal and artifacts into the local data directory and serves
// the follower control plane (healthz/readyz/metrics/promote). Promotion —
// via POST /v1/promote, or automatically with -promote-on-lease-loss once
// the primary goes silent and its lease expires — switches the same address
// over to the full primary API. SIGTERM stops replication (the mirror stays
// on disk, ready to resume or promote later); after promotion it drains like
// a primary.
func serveFollower(cfg serve.Config, addr, primary string, promoteOnLoss bool, out io.Writer) error {
	f, err := serve.OpenFollower(serve.FollowerConfig{
		DataDir:            cfg.DataDir,
		Primary:            primary,
		Serve:              cfg,
		PromoteOnLeaseLoss: promoteOnLoss,
		LeasePath:          cfg.LeasePath,
		LeaseTTL:           cfg.LeaseTTL,
		ID:                 cfg.LeaseID,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: f.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		f.Stop()
		return err
	}
	st := f.Stats()
	fmt.Fprintf(out, "stencilserve follower of %s listening on %s (mirror %s, %d bytes applied)\n",
		primary, ln.Addr(), cfg.DataDir, st.Applied)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// After a promotion this process is a primary and must honor the same
	// lease-loss contract serveForever does.
	promotedLost := make(chan struct{})
	go func() {
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for range t.C {
			s := f.Promoted()
			if s == nil {
				continue
			}
			if ch := s.LeaseLost(); ch != nil {
				<-ch
				close(promotedLost)
			}
			return
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Fprintf(out, "received %s, stopping...\n", got)
	case <-promotedLost:
		fmt.Fprintf(out, "failover lease %s lost to another replica, draining...\n", cfg.LeasePath)
	}
	if s := f.Promoted(); s != nil {
		s.Drain()
	} else {
		f.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	if s := f.Promoted(); s != nil {
		fmt.Fprintln(out, "drained; all jobs complete")
	} else {
		st := f.Stats()
		fmt.Fprintf(out, "follower stopped; %d bytes applied (lag %d), mirror intact\n", st.Applied, st.LagBytes)
	}
	return nil
}

// ---- job matrices ----

// tinySpec is the small base job both harnesses build on: fast enough to run
// thousands of times, big enough to exercise placement and specialization.
func tinySpec() *jobspec.Spec {
	s := jobspec.Default()
	s.RanksPerNode = 2
	s.Domain = "12"
	s.Radius = 1
	s.Quantities = 1
	s.Iters = 2
	return s
}

// smokeMatrix is the deterministic CI job set: distinct setups, a shared-
// setup pair, a capability downgrade, a fault scenario, and a verify job.
func smokeMatrix() []struct {
	Name string
	Spec *jobspec.Spec
} {
	base := tinySpec()

	longer := tinySpec()
	longer.Iters = 4 // same setup hash as base → setup-cache hit

	remote := tinySpec()
	remote.Caps = "remote"

	twoNode := tinySpec()
	twoNode.Nodes = 2
	twoNode.Domain = "24"

	degraded := tinySpec()
	degraded.Iters = 4
	sc := &fault.Scenario{Name: "smoke-degrade"}
	sc.DegradeNIC(2e-4, 0, 0.5)
	degraded.Scenario = sc

	verify := tinySpec()
	verify.Verify = true

	return []struct {
		Name string
		Spec *jobspec.Spec
	}{
		{"base", base},
		{"base-longer", longer},
		{"remote-caps", remote},
		{"two-node", twoNode},
		{"degraded-nic", degraded},
		{"verify", verify},
	}
}

// ---- smoke mode ----

// smokeJob is one matrix entry's deterministic record.
type smokeJob struct {
	Name         string `json:"name"`
	SpecHash     string `json:"spec_hash"`
	SetupHash    string `json:"setup_hash"`
	ResultSHA256 string `json:"result_sha256"`
	Pass1Cache   string `json:"pass1_cache"` // "" or "setup"
	Pass2Cache   string `json:"pass2_cache"` // must be "result"
	Identical    bool   `json:"bodies_identical"`
}

// smokeReport is the CI-gated document: every field is deterministic (spec
// hashes, result digests, cache outcomes of a sequential two-pass run).
type smokeReport struct {
	Schema string     `json:"schema"`
	Jobs   []smokeJob `json:"jobs"`
	// ResultCacheHits counts pass-2 hits; with a sequential single worker
	// it equals the matrix size.
	ResultCacheHits int64 `json:"result_cache_hits"`
	SetupCacheHits  int64 `json:"setup_cache_hits"`
	AllFromCache    bool  `json:"all_from_cache"`
}

// runSmoke submits the matrix twice over real HTTP with a single worker
// (sequential, so cache outcomes are deterministic), asserts the second pass
// is served from the result cache with byte-identical bodies, and writes the
// deterministic report.
func runSmoke(cfg serve.Config, report io.Writer) error {
	cfg.Workers = 1
	s := serve.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	matrix := smokeMatrix()
	rep := smokeReport{Schema: "stencilserve-smoke/1", AllFromCache: true}
	bodies := make(map[string][]byte)

	for pass := 1; pass <= 2; pass++ {
		for i, m := range matrix {
			st, err := submitAndWait(base, "smoke", m.Spec)
			if err != nil {
				return fmt.Errorf("pass %d %s: %w", pass, m.Name, err)
			}
			body, err := fetch(base + "/v1/jobs/" + st.ID + "/result")
			if err != nil {
				return fmt.Errorf("pass %d %s result: %w", pass, m.Name, err)
			}
			if pass == 1 {
				sum := sha256.Sum256(body)
				rep.Jobs = append(rep.Jobs, smokeJob{
					Name:         m.Name,
					SpecHash:     st.SpecHash,
					SetupHash:    st.SetupHash,
					ResultSHA256: hex.EncodeToString(sum[:]),
					Pass1Cache:   st.Cache,
				})
				bodies[m.Name] = body
				continue
			}
			j := &rep.Jobs[i]
			j.Pass2Cache = st.Cache
			j.Identical = bytes.Equal(body, bodies[m.Name])
			if st.Cache != "result" || !j.Identical {
				rep.AllFromCache = false
			}
		}
	}
	rep.ResultCacheHits, _, rep.SetupCacheHits, _ = s.CacheStats()
	s.Drain()

	enc := json.NewEncoder(report)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.AllFromCache {
		return fmt.Errorf("smoke: second pass was not fully served from the result cache")
	}
	return nil
}

// ---- load-test mode ----

// loadReport archives a load-test run; wall-clock figures vary by host, so
// this document is informational, not byte-gated.
type loadReport struct {
	Schema       string  `json:"schema"`
	Jobs         int     `json:"jobs"`
	DistinctJobs int     `json:"distinct_jobs"`
	Concurrency  int     `json:"concurrency"`
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_s"`
	JobsPerSec   float64 `json:"jobs_per_sec"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	ResultCacheHits   int64   `json:"result_cache_hits"`
	ResultCacheMisses int64   `json:"result_cache_misses"`
	ResultHitRate     float64 `json:"result_hit_rate"`
	SetupCacheHits    int64   `json:"setup_cache_hits"`

	Failed int `json:"failed"`
}

// loadSpecs builds the distinct jobs the load mix cycles through.
func loadSpecs() []*jobspec.Spec {
	var specs []*jobspec.Spec
	for _, iters := range []int{1, 2, 3} {
		for _, caps := range []string{"kernel", "remote"} {
			sp := tinySpec()
			sp.Iters = iters
			sp.Caps = caps
			specs = append(specs, sp)
		}
	}
	sc := &fault.Scenario{Name: "load-degrade"}
	sc.DegradeNIC(2e-4, 0, 0.5)
	faulty := tinySpec()
	faulty.Iters = 3
	faulty.Scenario = sc
	specs = append(specs, faulty)

	two := tinySpec()
	two.Nodes = 2
	two.Domain = "24"
	specs = append(specs, two)
	return specs
}

// runLoadTest drives n submissions through the real HTTP stack from a
// bounded client pool and archives throughput, latency percentiles, and
// cache hit rates.
func runLoadTest(cfg serve.Config, n, concurrency int, report, log io.Writer) error {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := serve.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	specs := loadSpecs()
	fmt.Fprintf(log, "load test: %d jobs (%d distinct), %d client workers, %d engine workers\n",
		n, len(specs), concurrency, cfg.Workers)

	latencies := make([]float64, n)
	failures := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				sp := *specs[i%len(specs)]
				t0 := time.Now()
				st, err := submitAndWait(base, fmt.Sprintf("tenant-%d", i%7), &sp)
				latencies[i] = time.Since(t0).Seconds() * 1e3
				if err != nil {
					failures[i] = err
				} else if st.State != "done" {
					failures[i] = fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()
	s.Drain()

	failed := 0
	for _, err := range failures {
		if err != nil {
			if failed == 0 {
				fmt.Fprintf(log, "first failure: %v\n", err)
			}
			failed++
		}
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 { return latencies[int(p*float64(n-1))] }
	rh, rm, sh, _ := s.CacheStats()
	rep := loadReport{
		Schema:            "stencilserve-load/1",
		Jobs:              n,
		DistinctJobs:      len(specs),
		Concurrency:       concurrency,
		Workers:           cfg.Workers,
		WallSeconds:       wall,
		JobsPerSec:        float64(n) / wall,
		LatencyP50Ms:      pct(0.50),
		LatencyP90Ms:      pct(0.90),
		LatencyP99Ms:      pct(0.99),
		LatencyMaxMs:      latencies[n-1],
		ResultCacheHits:   rh,
		ResultCacheMisses: rm,
		ResultHitRate:     float64(rh) / float64(rh+rm),
		SetupCacheHits:    sh,
		Failed:            failed,
	}
	enc := json.NewEncoder(report)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("load test: %d of %d jobs failed", failed, n)
	}
	fmt.Fprintf(log, "load test: %d jobs in %.2fs (%.0f jobs/s), hit rate %.1f%%\n",
		n, wall, rep.JobsPerSec, 100*rep.ResultHitRate)
	return nil
}

// ---- HTTP client helpers ----

// submitAndWait submits a job to a single server and blocks for its terminal
// state. See submitFailover for the retry contract.
func submitAndWait(base, tenant string, spec *jobspec.Spec) (serve.Status, error) {
	return submitFailover([]string{base}, tenant, spec)
}

// submitFailover is the HA-aware half of the client contract: targets are
// tried in order, moving on when a target is unreachable (connection refused:
// the primary died) or answers 503 not_primary/not_ready (the target is still
// a follower). A 429 (quota or shedding) is retried after the server's
// Retry-After hint, so a load test with quotas enabled converges to the
// budget instead of failing. A full pass with no live primary backs off
// briefly and retries, so a client that spans a failover lands on the
// promoted standby instead of erroring out.
func submitFailover(targets []string, tenant string, spec *jobspec.Spec) (serve.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.Status{}, err
	}
	var lastErr error
	for attempt := 0; attempt < 120; attempt++ {
		for _, base := range targets {
			req, err := http.NewRequest("POST", base+"/v1/jobs?wait=1", bytes.NewReader(body))
			if err != nil {
				return serve.Status{}, err
			}
			req.Header.Set("X-Tenant", tenant)
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				lastErr = err
				continue
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				lastErr = err
				continue
			}
			switch {
			case resp.StatusCode == http.StatusAccepted:
				var st serve.Status
				if err := json.Unmarshal(b, &st); err != nil {
					return serve.Status{}, err
				}
				return st, nil
			case resp.StatusCode == http.StatusTooManyRequests:
				wait := time.Second
				if ra, err := time.ParseDuration(resp.Header.Get("Retry-After") + "s"); err == nil && ra > 0 {
					wait = ra
				}
				if wait > 2*time.Second {
					wait = 2 * time.Second
				}
				time.Sleep(wait)
				lastErr = fmt.Errorf("submit %s: 429 %s", base, b)
			case resp.StatusCode == http.StatusServiceUnavailable &&
				(bytes.Contains(b, []byte(serve.CodeNotPrimary)) || bytes.Contains(b, []byte(serve.CodeNotReady))):
				lastErr = fmt.Errorf("submit %s: %d %s", base, resp.StatusCode, b)
			default:
				return serve.Status{}, fmt.Errorf("submit %s: %d %s", base, resp.StatusCode, b)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return serve.Status{}, fmt.Errorf("submit: no live primary among %v: %w", targets, lastErr)
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %d %s", url, resp.StatusCode, b)
	}
	return b, nil
}
