package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/serve"
)

// TestJournalDumpSmoke drives the -journal-dump flag end to end: a durable
// server takes jobs from two tenants, is killed mid-flight, and the dump
// must tally both tenants plus the incomplete-jobs note an operator uses to
// decide whether a restart will re-enqueue work.
func TestJournalDumpSmoke(t *testing.T) {
	dir := t.TempDir()
	s, err := serve.Open(serve.Config{Workers: -1, DataDir: dir, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tenant := "alice"
		if i%2 == 1 {
			tenant = "bob"
		}
		if _, err := s.Submit(tenant, crashSpec(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s.Kill()

	var out bytes.Buffer
	if err := run([]string{"-journal-dump", dir}, &out); err != nil {
		t.Fatalf("journal-dump: %v", err)
	}
	got := out.String()
	for _, want := range []string{"alice", "bob", "TOTAL", "4 jobs", "no terminal record"} {
		if !strings.Contains(got, want) {
			t.Errorf("journal-dump output missing %q:\n%s", want, got)
		}
	}

	// The flag also accepts the journal file itself.
	out.Reset()
	if err := run([]string{"-journal-dump", filepath.Join(dir, serve.JournalName)}, &out); err != nil {
		t.Fatalf("journal-dump file: %v", err)
	}
	if !strings.Contains(out.String(), "TOTAL") {
		t.Errorf("journal-dump on file missing TOTAL:\n%s", out.String())
	}
}

// TestJournalDumpMissing: pointing the dump at an empty directory is not an
// error — it reports zero jobs (the journal simply does not exist yet).
func TestJournalDumpMissing(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-journal-dump", t.TempDir()}, &out); err != nil {
		t.Fatalf("journal-dump empty dir: %v", err)
	}
	if !strings.Contains(out.String(), "0 jobs") {
		t.Errorf("expected zero-job report, got:\n%s", out.String())
	}
}

// TestCrashsmokeGate exercises the -ref gate logic: an identical report
// passes, a diverged deterministic section fails byte-compare, and an
// overhead ratio past the budget fails even with matching bytes.
func TestCrashsmokeGate(t *testing.T) {
	rep := &crashReport{
		Schema: crashSchema,
		Deterministic: crashDeterministic{
			JobsSubmitted: 2, DistinctSpecs: 1, RecoveredJobs: 2,
			AllRecoveredDone: true, ByteIdentical: true,
			Specs: []crashSpecDigest{{SpecHash: "abc", ResultSHA256: "def"}},
		},
		Overhead: crashOverhead{OverheadRatio: 1.2},
	}
	refPath := filepath.Join(t.TempDir(), "ref.json")
	refBytes, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(refPath, refBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	if err := gateAgainstRef(refPath, rep, &log); err != nil {
		t.Fatalf("identical report should pass gate: %v", err)
	}

	diverged := *rep
	diverged.Deterministic.Specs = []crashSpecDigest{{SpecHash: "abc", ResultSHA256: "OTHER"}}
	if err := gateAgainstRef(refPath, &diverged, &log); err == nil {
		t.Fatal("diverged deterministic section must fail the gate")
	}

	slow := *rep
	slow.Overhead.OverheadRatio = maxOverheadRat + 0.01
	if err := gateAgainstRef(refPath, &slow, &log); err == nil {
		t.Fatal("overhead ratio past the budget must fail the gate")
	}
}
