package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/serve"
)

// The HA smoke: the CI gate for the replication and failover layer.
//
// Phase 1 (deterministic, byte-gated): a durable primary warms a few
// completed jobs (so the follower must anti-entropy-repair artifacts that
// predate its connection), then a follower mirrors it over real HTTP. With
// replication quiesced at lag zero, a batch of acknowledged-but-unstarted
// jobs is loaded, lag drains to zero again, and the primary is killed
// in-process with its listener torn down — connection refused, exactly what
// a client sees after a node dies. A torn partial frame is appended to the
// follower's mirror (a crash can tear the last line on either side). The
// promoted follower must re-enqueue every acknowledged job, run each to
// completion, and serve result bytes identical to an uncrashed in-memory
// server's — verified both through the promoted API and through the
// failover client, which walks from the dead primary's URL to the standby.
// Everything in this section is a pure function of the spec set, so it is
// compared byte-for-byte against the committed reference.
//
// Phase 2 (informational + ratio-gated): the crash-smoke load run on a
// journaling server alone and on the same server with a live follower
// attached, timed. Only the ratio is gated — streaming the journal to a
// standby must cost at most 1.5x of journaling alone.

const (
	haSchema  = "stencilserve-ha/1"
	haWarm    = 4  // completed jobs before the follower joins (anti-entropy seed)
	haLoad    = 24 // distinct specs in the acknowledged-but-unstarted batch
	haPerSpec = 13 // submissions per distinct spec: 24*13 = 312 jobs in flight
	haTenants = 4
)

// haSpec returns distinct spec i; warm jobs use [0,haWarm), the load batch
// uses [haWarm, haWarm+haLoad) — disjoint, so no load job can be served from
// a warm job's result cache entry before the kill.
func haSpec(i int) *jobspec.Spec {
	sp := tinySpec()
	sp.Iters = 2 + i
	return sp
}

// haSpecDigest is one distinct spec's deterministic identity.
type haSpecDigest struct {
	SpecHash     string `json:"spec_hash"`
	ResultSHA256 string `json:"result_sha256"`
}

// haDeterministic is the byte-gated section of the report.
type haDeterministic struct {
	WarmJobs             int  `json:"warm_jobs"`
	DistinctSpecs        int  `json:"distinct_specs"`
	JobsSubmitted        int  `json:"jobs_submitted"`
	InFlightAtKill       int  `json:"in_flight_at_kill"`
	TornRecords          int  `json:"torn_records"`
	LagZeroAtQuiesce     bool `json:"lag_zero_at_quiesce"`
	AntiEntropyRepaired  bool `json:"anti_entropy_repaired"`
	CompletedAtPromotion int  `json:"completed_at_promotion"`
	Reenqueued           int  `json:"reenqueued"`
	RecoveredJobs        int  `json:"recovered_jobs"`
	LostJobs             int  `json:"lost_jobs"`
	AllRecoveredDone     bool `json:"all_recovered_done"`
	ByteIdentical        bool `json:"byte_identical"`
	FailoverClientOK     bool `json:"failover_client_ok"`

	Specs []haSpecDigest `json:"specs"`
}

// haOverhead is the host-dependent section; only the ratio is gated.
type haOverhead struct {
	Jobs                 int     `json:"jobs"`
	Concurrency          int     `json:"concurrency"`
	Workers              int     `json:"workers"`
	DurableJobsPerSec    float64 `json:"durable_jobs_per_sec"`
	ReplicatedJobsPerSec float64 `json:"replicated_jobs_per_sec"`
	OverheadRatio        float64 `json:"overhead_ratio"` // durable rate / replicated rate
	RecFramesStreamed    int64   `json:"rec_frames_streamed"`
	ArtifactFrames       int64   `json:"artifact_frames"`
}

type haReport struct {
	Schema        string          `json:"schema"`
	Deterministic haDeterministic `json:"deterministic"`
	Overhead      haOverhead      `json:"replication_overhead"`
}

func runHASmoke(cfg serve.Config, refPath string, report, log io.Writer) error {
	rep := haReport{Schema: haSchema}

	det, err := haDeterministicPhase(log)
	if err != nil {
		return err
	}
	rep.Deterministic = *det

	oh, err := haOverheadPhase(cfg, log)
	if err != nil {
		return err
	}
	rep.Overhead = *oh

	enc := json.NewEncoder(report)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if det.LostJobs > 0 || !det.AllRecoveredDone || !det.ByteIdentical || !det.FailoverClientOK {
		return fmt.Errorf("hasmoke: failover lost or corrupted acknowledged jobs (lost=%d done=%t identical=%t client=%t)",
			det.LostJobs, det.AllRecoveredDone, det.ByteIdentical, det.FailoverClientOK)
	}
	if !det.LagZeroAtQuiesce {
		return fmt.Errorf("hasmoke: replication lag did not reach zero at quiesce")
	}
	if refPath != "" {
		if err := haGateAgainstRef(refPath, &rep, log); err != nil {
			return err
		}
	}
	return nil
}

// haWaitFor polls cond for up to d.
func haWaitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("hasmoke: timed out waiting for %s", what)
}

// haDeterministicPhase runs the replicate/kill/promote cycle and builds the
// byte-gated section.
func haDeterministicPhase(log io.Writer) (*haDeterministic, error) {
	dirA, err := os.MkdirTemp("", "stencilserve-ha-primary-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "stencilserve-ha-follower-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dirB)

	workers := runtime.GOMAXPROCS(0)
	det := &haDeterministic{
		WarmJobs:      haWarm,
		DistinctSpecs: haLoad,
		JobsSubmitted: haLoad * haPerSpec,
	}

	// Warm pass: complete a few jobs so their artifacts exist on disk before
	// any follower connects — the follower must fetch them by manifest diff
	// (anti-entropy), not from the live stream.
	s0, err := serve.Open(serve.Config{Workers: workers, DataDir: dirA})
	if err != nil {
		return nil, err
	}
	for i := 0; i < haWarm; i++ {
		j, err := s0.Submit("warm", haSpec(i))
		if err != nil {
			return nil, err
		}
		if st := j.Wait(); st != serve.StateDone {
			return nil, fmt.Errorf("hasmoke warm job %d ended %s", i, st)
		}
	}
	s0.Drain()

	// Reopen with no workers, so the load batch below stays acknowledged but
	// unstarted — the kill point is exact, not racy — and put the primary on
	// a real listener for the follower and the failover client.
	prim, err := serve.Open(serve.Config{
		Workers: -1, DataDir: dirA,
		QueueDepth:        det.JobsSubmitted + 16,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: prim.Handler()}
	go hs.Serve(ln)
	primaryURL := "http://" + ln.Addr().String()

	fol, err := serve.OpenFollower(serve.FollowerConfig{
		DataDir:      dirB,
		Primary:      primaryURL,
		Serve:        serve.Config{Workers: workers, QueueDepth: det.JobsSubmitted + 16},
		PollInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	caughtUp := func() bool {
		js, st := prim.JournalStats(), fol.Stats()
		return st.Connected && js.Size > 0 && js.SyncedBytes == js.Size && st.Applied == js.Size
	}
	if err := haWaitFor(30*time.Second, "follower to mirror the warm journal", caughtUp); err != nil {
		return nil, err
	}
	det.AntiEntropyRepaired = fol.Stats().Repairs > 0

	// The load batch: every submission acknowledged (journal fsync'd) and
	// queued behind the zero-worker pool.
	var ids []string
	for i := 0; i < det.JobsSubmitted; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%haTenants)
		j, err := prim.Submit(tenant, haSpec(haWarm+i%haLoad))
		if err != nil {
			return nil, fmt.Errorf("hasmoke submit %d: %w", i, err)
		}
		ids = append(ids, j.ID)
	}
	det.InFlightAtKill = len(ids)

	// Quiesce: with nothing left to write, replication lag must drain to
	// exactly zero — the stream plus the lazy journal sync leave no tail.
	if err := haWaitFor(30*time.Second, "replication lag to reach zero", caughtUp); err != nil {
		return nil, err
	}
	det.LagZeroAtQuiesce = true
	fmt.Fprintf(log, "hasmoke: follower at lag 0 with %d jobs acknowledged; killing primary\n", len(ids))

	// The failure: in-process SIGKILL, listener torn down. From here the
	// primary's URL refuses connections.
	prim.Kill()
	hs.Close()
	fol.Stop()

	// A real crash can tear the follower's last mirrored line mid-write.
	jf, err := os.OpenFile(filepath.Join(dirB, serve.JournalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	jf.WriteString(`{"v":1,"rec":"comple`)
	jf.Close()
	det.TornRecords = 1

	// Deterministic failover: promote the follower and serve from the same
	// handler (the promoted API takes over the follower's address).
	promoted, err := fol.Promote()
	if err != nil {
		return nil, err
	}
	rec := promoted.Recovery()
	det.CompletedAtPromotion = rec.Completed
	det.Reenqueued = rec.Reenqueued

	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsB := &http.Server{Handler: fol.Handler()}
	go hsB.Serve(lnB)
	defer hsB.Close()
	standbyURL := "http://" + lnB.Addr().String()

	// Every acknowledged job must complete on the standby.
	det.AllRecoveredDone = true
	recovered := map[string][]byte{} // spec hash -> result bytes
	for _, id := range ids {
		j, ok := promoted.Job(id)
		if !ok {
			det.LostJobs++
			det.AllRecoveredDone = false
			continue
		}
		det.RecoveredJobs++
		if st := j.Wait(); st != serve.StateDone {
			det.AllRecoveredDone = false
			continue
		}
		res, _ := j.Result()
		recovered[j.Hash] = res
	}

	// Uncrashed reference: warm + load specs on a plain in-memory server
	// must produce byte-identical results.
	ref := serve.NewServer(serve.Config{Workers: workers})
	det.ByteIdentical = true
	det.FailoverClientOK = true
	for i := 0; i < haWarm+haLoad; i++ {
		j, err := ref.Submit("ref", haSpec(i))
		if err != nil {
			return nil, err
		}
		if st := j.Wait(); st != serve.StateDone {
			return nil, fmt.Errorf("hasmoke reference job ended %s", st)
		}
		res, _ := j.Result()
		if i >= haWarm && !bytes.Equal(res, recovered[j.Hash]) {
			det.ByteIdentical = false
		}
		sum := sha256.Sum256(res)
		det.Specs = append(det.Specs, haSpecDigest{
			SpecHash:     j.Hash,
			ResultSHA256: hex.EncodeToString(sum[:]),
		})

		// The failover client contract: a client still pointed at the dead
		// primary walks its target list and lands on the standby, which
		// serves the identical bytes (warm specs from mirrored artifacts,
		// load specs from the re-run).
		st, err := submitFailover([]string{primaryURL, standbyURL}, "client", haSpec(i))
		if err != nil {
			return nil, fmt.Errorf("hasmoke failover client spec %d: %w", i, err)
		}
		body, err := fetch(standbyURL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			return nil, fmt.Errorf("hasmoke failover client result %d: %w", i, err)
		}
		if st.State != "done" || !bytes.Equal(body, res) {
			det.FailoverClientOK = false
		}
	}
	ref.Drain()
	promoted.Drain()
	sort.Slice(det.Specs, func(a, b int) bool { return det.Specs[a].SpecHash < det.Specs[b].SpecHash })
	fmt.Fprintf(log, "hasmoke: standby recovered %d/%d jobs, byte_identical=%t, failover_client_ok=%t\n",
		det.RecoveredJobs, det.JobsSubmitted, det.ByteIdentical, det.FailoverClientOK)
	return det, nil
}

// haOverheadPhase times the crash-smoke load on a journaling server alone
// and on the same server with a live follower attached, and reports the
// throughput ratio.
func haOverheadPhase(base serve.Config, log io.Writer) (*haOverhead, error) {
	workers := base.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	oh := &haOverhead{Jobs: overheadJobs, Concurrency: overheadConc, Workers: workers}

	specs := make([]*jobspec.Spec, overheadDistinct)
	for i := range specs {
		specs[i] = crashSpec(i)
	}
	run := func(withFollower bool) (float64, serve.FollowerStats, error) {
		var fst serve.FollowerStats
		dir, err := os.MkdirTemp("", "stencilserve-ha-overhead-")
		if err != nil {
			return 0, fst, err
		}
		defer os.RemoveAll(dir)
		s, err := serve.Open(serve.Config{
			Workers: workers, DataDir: dir, QueueDepth: overheadJobs + 64,
		})
		if err != nil {
			return 0, fst, err
		}
		var fol *serve.Follower
		var hs *http.Server
		if withFollower {
			fdir, err := os.MkdirTemp("", "stencilserve-ha-overhead-fol-")
			if err != nil {
				return 0, fst, err
			}
			defer os.RemoveAll(fdir)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return 0, fst, err
			}
			hs = &http.Server{Handler: s.Handler()}
			go hs.Serve(ln)
			fol, err = serve.OpenFollower(serve.FollowerConfig{
				DataDir: fdir,
				Primary: "http://" + ln.Addr().String(),
			})
			if err != nil {
				hs.Close()
				return 0, fst, err
			}
		}

		idx := make(chan int)
		submitted := make([]*serve.Job, overheadJobs)
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		start := time.Now()
		for w := 0; w < overheadConc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					sp := *specs[i%len(specs)]
					j, err := s.Submit(fmt.Sprintf("tenant-%d", i%7), &sp)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						continue
					}
					submitted[i] = j
				}
			}()
		}
		for i := 0; i < overheadJobs; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		for _, j := range submitted {
			if j == nil {
				continue
			}
			if st := j.Wait(); st != serve.StateDone {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("job %s ended %s", j.ID, st)
				}
				errMu.Unlock()
			}
		}
		wall := time.Since(start).Seconds()
		if fol != nil {
			fst = fol.Stats()
			fol.Stop()
			hs.Close()
		}
		s.Drain()
		if firstErr != nil {
			return 0, fst, firstErr
		}
		return float64(overheadJobs) / wall, fst, nil
	}

	// Best-of-N per mode, alternating so host noise hits both alike; see the
	// crash smoke's overhead phase for the reasoning.
	var durRate, repRate float64
	var repStats serve.FollowerStats
	for t := 0; t < overheadTrials; t++ {
		rate, _, err := run(false)
		if err != nil {
			return nil, err
		}
		if rate > durRate {
			durRate = rate
		}
		rate, fst, err := run(true)
		if err != nil {
			return nil, err
		}
		if rate > repRate {
			repRate, repStats = rate, fst
		}
	}

	oh.DurableJobsPerSec = durRate
	oh.ReplicatedJobsPerSec = repRate
	oh.OverheadRatio = durRate / repRate
	oh.RecFramesStreamed = repStats.RecFrames
	oh.ArtifactFrames = repStats.ArtFrames
	fmt.Fprintf(log, "hasmoke: %.0f jobs/s journaling, %.0f jobs/s with a live follower (ratio %.2fx, %d rec frames streamed)\n",
		durRate, repRate, oh.OverheadRatio, repStats.RecFrames)
	return oh, nil
}

// haGateAgainstRef enforces the CI contract: the deterministic section must
// be byte-identical to the committed reference, and replication overhead
// must stay within the budget.
func haGateAgainstRef(refPath string, got *haReport, log io.Writer) error {
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		return fmt.Errorf("hasmoke ref: %w", err)
	}
	var ref haReport
	if err := json.Unmarshal(refBytes, &ref); err != nil {
		return fmt.Errorf("hasmoke ref decode: %w", err)
	}
	want, err := json.MarshalIndent(ref.Deterministic, "", "  ")
	if err != nil {
		return err
	}
	have, err := json.MarshalIndent(got.Deterministic, "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(want, have) {
		return fmt.Errorf("hasmoke: deterministic section diverged from %s:\nwant:\n%s\ngot:\n%s",
			refPath, want, have)
	}
	if got.Overhead.OverheadRatio > maxOverheadRat {
		return fmt.Errorf("hasmoke: replication overhead %.2fx exceeds the %.1fx budget",
			got.Overhead.OverheadRatio, maxOverheadRat)
	}
	fmt.Fprintf(log, "hasmoke: deterministic section matches %s byte-for-byte; overhead %.2fx within %.1fx\n",
		refPath, got.Overhead.OverheadRatio, maxOverheadRat)
	return nil
}
