// Command benchdrift gates benchmark results against a checked-in reference.
//
// Usage:
//
//	benchdrift -ref results/BENCH-smoke.json -got /tmp/BENCH-new.json [-tol 0.20] [-overlap-min 1.2]
//
// Both files are stencilbench -json reports. Every reference row with a
// nonzero simulated time must exist in the new report (matched by experiment
// name, config, and caps) with a simulated time within the relative
// tolerance. Wall-clock figures are deliberately ignored — they depend on the
// host — while simulated (virtual) times are deterministic, so drift beyond
// the tolerance means the simulation's behavior changed and the reference
// must be regenerated deliberately.
//
// -overlap-min additionally gates the overlap experiment's paired rows: for
// every "<config>/barrier" row in the NEW report with a "<config>/overlap"
// twin (same experiment and caps), the barrier/overlap total-virtual-time
// ratio must be at least the given factor. This pins the PR's acceptance
// criterion — the pipelined exchange stays >= 1.2x faster end-to-end — so a
// regression in the overlap path fails CI even when both rows drift
// together.
//
// -matrix switches both files to the stencilbench -matrix schema
// (results/MATRIX.json): per-(feature, node count) cells are gated on their
// deterministic virtual time, so a regression in ONE feature's cost fails
// CI even when the total stays flat. The regenerated report must also cover
// every feature tag at two or more node counts — a feature silently dropped
// from the matrix is itself a failure.
//
// Exit status: 0 when every row is within tolerance, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/nodeaware/stencil/internal/figures"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// row and report mirror the subset of cmd/stencilbench's -json schema that
// the drift gate consumes.
type row struct {
	Config  string  `json:"config"`
	Caps    string  `json:"caps"`
	Seconds float64 `json:"seconds"`
}

type experiment struct {
	Name string `json:"name"`
	Rows []row  `json:"rows"`
}

type report struct {
	Experiments []experiment `json:"experiments"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// key identifies a row across reports.
type key struct{ exp, config, caps string }

func index(r *report) map[key]float64 {
	m := make(map[key]float64)
	for _, e := range r.Experiments {
		for _, row := range e.Rows {
			m[key{e.Name, row.Config, row.Caps}] = row.Seconds
		}
	}
	return m
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdrift", flag.ContinueOnError)
	refPath := fs.String("ref", "", "reference stencilbench -json report (checked in)")
	gotPath := fs.String("got", "", "freshly generated stencilbench -json report")
	tol := fs.Float64("tol", 0.20, "maximum relative drift of simulated times")
	overlapMin := fs.Float64("overlap-min", 0, "minimum barrier/overlap speedup for paired */barrier and */overlap rows (0 = off)")
	matrix := fs.Bool("matrix", false, "treat -ref and -got as stencilbench -matrix reports and gate per-feature virtual times")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *gotPath == "" {
		return fmt.Errorf("benchdrift: both -ref and -got are required")
	}
	if *matrix {
		return runMatrix(*refPath, *gotPath, *tol)
	}

	ref, err := load(*refPath)
	if err != nil {
		return err
	}
	got, err := load(*gotPath)
	if err != nil {
		return err
	}
	gotIdx := index(got)

	var failures, total int
	for _, e := range ref.Experiments {
		for _, r := range e.Rows {
			if r.Seconds == 0 {
				continue // descriptive row (hardware table, comm volumes)
			}
			total++
			k := key{e.Name, r.Config, r.Caps}
			cur, ok := gotIdx[k]
			if !ok {
				fmt.Printf("MISSING %s %s %s (reference %.6g s)\n", k.exp, k.config, k.caps, r.Seconds)
				failures++
				continue
			}
			drift := math.Abs(cur-r.Seconds) / r.Seconds
			if drift > *tol {
				fmt.Printf("DRIFT   %s %s %s: %.6g s vs reference %.6g s (%.1f%% > %.0f%%)\n",
					k.exp, k.config, k.caps, cur, r.Seconds, drift*100, *tol*100)
				failures++
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("benchdrift: no comparable rows in %s", *refPath)
	}
	if *overlapMin > 0 {
		pairs := 0
		for k, barrier := range gotIdx {
			if !strings.HasSuffix(k.config, "/barrier") {
				continue
			}
			ok := key{k.exp, strings.TrimSuffix(k.config, "/barrier") + "/overlap", k.caps}
			overlap, found := gotIdx[ok]
			if !found || overlap == 0 {
				fmt.Printf("MISSING %s %s %s (no overlap twin for the barrier row)\n", k.exp, k.config, k.caps)
				failures++
				continue
			}
			pairs++
			if speedup := barrier / overlap; speedup < *overlapMin {
				fmt.Printf("SLOW    %s %s %s: overlap speedup %.2fx < required %.2fx\n",
					k.exp, ok.config, k.caps, speedup, *overlapMin)
				failures++
			}
		}
		if pairs == 0 {
			return fmt.Errorf("benchdrift: -overlap-min given but no barrier/overlap row pairs in %s", *gotPath)
		}
		fmt.Printf("benchdrift: %d overlap pairs at or above %.2fx\n", pairs, *overlapMin)
	}
	if failures > 0 {
		return fmt.Errorf("benchdrift: %d of %d rows outside %.0f%% tolerance", failures, total, *tol*100)
	}
	fmt.Printf("benchdrift: %d rows within %.0f%% of %s\n", total, *tol*100, *refPath)
	return nil
}

// loadMatrix parses a stencilbench -matrix report and verifies its schema.
func loadMatrix(path string) (*figures.MatrixReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r figures.MatrixReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != figures.MatrixSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, figures.MatrixSchema)
	}
	return &r, nil
}

// matrixKey identifies a cell across matrix reports.
type matrixKey struct {
	feature string
	nodes   int
}

// runMatrix gates a regenerated matrix report against the committed
// reference: per-cell virtual-time drift, plus full coverage — every
// feature tag present at two or more node counts.
func runMatrix(refPath, gotPath string, tol float64) error {
	ref, err := loadMatrix(refPath)
	if err != nil {
		return err
	}
	got, err := loadMatrix(gotPath)
	if err != nil {
		return err
	}
	gotIdx := make(map[matrixKey]float64)
	nodeCounts := make(map[string]map[int]bool)
	for _, c := range got.Cells {
		gotIdx[matrixKey{c.Feature, c.Nodes}] = c.VirtualSeconds
		if nodeCounts[c.Feature] == nil {
			nodeCounts[c.Feature] = make(map[int]bool)
		}
		nodeCounts[c.Feature][c.Nodes] = true
	}

	var failures, total int
	for _, f := range telemetry.Features {
		if len(nodeCounts[string(f)]) < 2 {
			fmt.Printf("COVERAGE feature %s measured at %d node count(s), want >= 2\n",
				f, len(nodeCounts[string(f)]))
			failures++
		}
	}
	for _, c := range ref.Cells {
		if c.VirtualSeconds == 0 {
			continue
		}
		total++
		k := matrixKey{c.Feature, c.Nodes}
		cur, ok := gotIdx[k]
		if !ok {
			fmt.Printf("MISSING matrix cell %s %dn (reference %.6g s)\n", k.feature, k.nodes, c.VirtualSeconds)
			failures++
			continue
		}
		drift := math.Abs(cur-c.VirtualSeconds) / c.VirtualSeconds
		if drift > tol {
			fmt.Printf("DRIFT   matrix cell %s %dn: %.6g s vs reference %.6g s (%.1f%% > %.0f%%)\n",
				k.feature, k.nodes, cur, c.VirtualSeconds, drift*100, tol*100)
			failures++
		}
	}
	if total == 0 {
		return fmt.Errorf("benchdrift: no comparable matrix cells in %s", refPath)
	}
	if failures > 0 {
		return fmt.Errorf("benchdrift: %d matrix failures across %d cells (tol %.0f%%)", failures, total, tol*100)
	}
	fmt.Printf("benchdrift: %d matrix cells within %.0f%% of %s, all %d features covered at >= 2 node counts\n",
		total, tol*100, refPath, len(telemetry.Features))
	return nil
}
