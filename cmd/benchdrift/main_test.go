package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/nodeaware/stencil/internal/figures"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// fullMatrix builds a report covering every feature at two node counts,
// with every cell's virtual time scaled by f.
func fullMatrix(f float64) *figures.MatrixReport {
	rep := &figures.MatrixReport{Schema: figures.MatrixSchema, Tool: "stencilbench", Iters: 3}
	for _, feat := range telemetry.Features {
		for _, nodes := range []int{1, 2} {
			rep.Cells = append(rep.Cells, figures.MatrixCell{
				Feature:        string(feat),
				Nodes:          nodes,
				VirtualSeconds: f * 0.005 * float64(nodes),
			})
		}
	}
	return rep
}

func writeMatrix(t *testing.T, rep *figures.MatrixReport) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "matrix.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMatrixGatePasses(t *testing.T) {
	ref := writeMatrix(t, fullMatrix(1))
	got := writeMatrix(t, fullMatrix(1.05))
	if err := run([]string{"-matrix", "-ref", ref, "-got", got, "-tol", "0.20"}); err != nil {
		t.Fatalf("5%% drift rejected at 20%% tolerance: %v", err)
	}
}

func TestMatrixGateCatchesPerFeatureDrift(t *testing.T) {
	ref := fullMatrix(1)
	got := fullMatrix(1)
	// Regress ONE feature's cells by 50% while everything else stays flat:
	// exactly the case total-drift gating misses.
	for i := range got.Cells {
		if got.Cells[i].Feature == string(telemetry.FeatureReliable) {
			got.Cells[i].VirtualSeconds *= 1.5
		}
	}
	err := run([]string{"-matrix", "-ref", writeMatrix(t, ref), "-got", writeMatrix(t, got), "-tol", "0.20"})
	if err == nil {
		t.Fatal("50% single-feature regression passed a 20% gate")
	}
}

func TestMatrixGateRequiresCoverage(t *testing.T) {
	ref := fullMatrix(1)
	got := fullMatrix(1)
	// Drop one feature's second node count: coverage, not drift, must fail.
	var cells []figures.MatrixCell
	for _, c := range got.Cells {
		if c.Feature == string(telemetry.FeatureOverlap) && c.Nodes == 2 {
			continue
		}
		cells = append(cells, c)
	}
	got.Cells = cells
	err := run([]string{"-matrix", "-ref", writeMatrix(t, ref), "-got", writeMatrix(t, got), "-tol", "0.20"})
	if err == nil {
		t.Fatal("missing node count for a feature passed the coverage gate")
	}
}

func TestMatrixGateRejectsWrongSchema(t *testing.T) {
	ref := fullMatrix(1)
	bad := fullMatrix(1)
	bad.Schema = "stencil-matrix/0"
	err := run([]string{"-matrix", "-ref", writeMatrix(t, ref), "-got", writeMatrix(t, bad), "-tol", "0.20"})
	if err == nil {
		t.Fatal("wrong schema accepted")
	}
}
