// Command stencilbench regenerates the paper's evaluation figures on the
// simulated platform and prints their rows.
//
// Usage:
//
//	stencilbench -experiment fig11|fig12a|fig12b|fig12c|fig13|fig3|all
//	             [-maxnodes N] [-iters K] [-json FILE]
//
// With -json FILE the same rows are also written as machine-readable JSON
// (one object per experiment), so plots and regression checks can consume
// the results without scraping the text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/nodeaware/stencil/internal/figures"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchExperiment is one experiment's rows in the -json output.
type benchExperiment struct {
	Name string        `json:"name"`
	Rows []figures.Row `json:"rows"`
}

// benchReport is the top-level -json document (BENCH.json).
type benchReport struct {
	Tool        string            `json:"tool"`
	MaxNodes    int               `json:"max_nodes"`
	Iters       int               `json:"iters"`
	Experiments []benchExperiment `json:"experiments"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stencilbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "which figure to regenerate (table1, fig3, fig11, fig12a, fig12b, fig12c, fig13, all)")
	maxNodes := fs.Int("maxnodes", 32, "largest node count for scaling experiments (paper: 256)")
	iters := fs.Int("iters", 3, "exchange iterations per configuration (paper: 30)")
	jsonPath := fs.String("json", "", "also write the rows as JSON to this file (e.g. results/BENCH.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() ([]figures.Row, error){
		"table1": func() ([]figures.Row, error) { return figures.TableI(), nil },
		"fig3":   func() ([]figures.Row, error) { return figures.Fig3(), nil },
		"fig11":  func() ([]figures.Row, error) { return figures.Fig11(*iters) },
		"fig12a": func() ([]figures.Row, error) { return figures.Fig12a(*iters) },
		"fig12b": func() ([]figures.Row, error) { return figures.Fig12b(*maxNodes, *iters) },
		"fig12c": func() ([]figures.Row, error) { return figures.Fig12c(*maxNodes, *iters) },
		"fig13":  func() ([]figures.Row, error) { return figures.Fig13(*maxNodes, *iters) },
	}
	order := []string{"table1", "fig3", "fig11", "fig12a", "fig12b", "fig12c", "fig13"}

	which := order
	if *experiment != "all" {
		if _, ok := runners[*experiment]; !ok {
			return fmt.Errorf("unknown experiment %q", *experiment)
		}
		which = []string{*experiment}
	}

	report := benchReport{Tool: "stencilbench", MaxNodes: *maxNodes, Iters: *iters}
	for _, name := range which {
		fmt.Fprintf(out, "== %s ==\n", name)
		rows, err := runners[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, r := range rows {
			fmt.Fprintln(out, r)
		}
		fmt.Fprintln(out)
		report.Experiments = append(report.Experiments, benchExperiment{Name: name, Rows: rows})
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		fmt.Fprintf(out, "JSON report written to %s\n", *jsonPath)
	}
	return nil
}
