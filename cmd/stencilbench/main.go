// Command stencilbench regenerates the paper's evaluation figures on the
// simulated platform and prints their rows.
//
// Usage:
//
//	stencilbench -experiment fig11|fig12a|fig12b|fig12c|fig13|fig3|all
//	             [-maxnodes N] [-iters K]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nodeaware/stencil/internal/figures"
)

func main() {
	experiment := flag.String("experiment", "all", "which figure to regenerate (table1, fig3, fig11, fig12a, fig12b, fig12c, fig13, all)")
	maxNodes := flag.Int("maxnodes", 32, "largest node count for scaling experiments (paper: 256)")
	iters := flag.Int("iters", 3, "exchange iterations per configuration (paper: 30)")
	flag.Parse()

	runners := map[string]func() ([]figures.Row, error){
		"table1": func() ([]figures.Row, error) { return figures.TableI(), nil },
		"fig3":   func() ([]figures.Row, error) { return figures.Fig3(), nil },
		"fig11":  func() ([]figures.Row, error) { return figures.Fig11(*iters) },
		"fig12a": func() ([]figures.Row, error) { return figures.Fig12a(*iters) },
		"fig12b": func() ([]figures.Row, error) { return figures.Fig12b(*maxNodes, *iters) },
		"fig12c": func() ([]figures.Row, error) { return figures.Fig12c(*maxNodes, *iters) },
		"fig13":  func() ([]figures.Row, error) { return figures.Fig13(*maxNodes, *iters) },
	}
	order := []string{"table1", "fig3", "fig11", "fig12a", "fig12b", "fig12c", "fig13"}

	which := order
	if *experiment != "all" {
		if _, ok := runners[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		which = []string{*experiment}
	}
	for _, name := range which {
		fmt.Printf("== %s ==\n", name)
		rows, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Println()
	}
}
