// Command stencilbench regenerates the paper's evaluation figures on the
// simulated platform and prints their rows.
//
// Usage:
//
//	stencilbench -experiment fig11|fig12a|fig12b|fig12c|fig13|fig3|fastpath|compare|metrics|all
//	             [-maxnodes N] [-iters K] [-json FILE] [-metrics FILE] [-parallel N] [-compare]
//
// With -json FILE the same rows are also written as machine-readable JSON
// (one object per experiment), so plots and regression checks can consume
// the results without scraping the text tables.
//
// -metrics FILE runs the telemetry metrics ladder (the capability ladder on
// a small smoke configuration with a telemetry recorder attached) and writes
// the combined deterministic metrics report — the file results/METRICS.json
// pins and the CI metrics-snapshot job diffs with cmd/telemetry.
//
// -parallel N runs the simulation engine's deferred payloads on N worker
// goroutines (0 = sequential; results are bit-identical either way).
// -compare (or -experiment compare) benchmarks sequential vs parallel wall
// time on a real-data configuration and verifies bit-identical results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/nodeaware/stencil/internal/figures"
	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/telemetry"
)

func main() { jobspec.Main(run) }

// benchExperiment is one experiment's rows in the -json output. WallSeconds
// is how long the simulator itself took to produce the rows, so BENCH.json
// doubles as a record of the tool's own performance.
type benchExperiment struct {
	Name        string        `json:"name"`
	WallSeconds float64       `json:"wall_seconds"`
	Rows        []figures.Row `json:"rows"`
}

// seedWall64 records the host wall-clock seconds the 64-node weak-scaling
// ladder (iters=3, sequential engine) took per capability rung at the
// repository seed, before the fast-path work (incremental waterfill, plan
// caching, deferred payload execution). The fastpath experiment reports
// current wall times against these, giving BENCH.json before/after numbers.
var seedWall64 = map[string]float64{
	"+remote": 6.800,
	"+colo":   5.616,
	"+peer":   5.657,
	"+kernel": 5.681,
}

// benchReport is the top-level -json document (BENCH.json).
type benchReport struct {
	Tool        string            `json:"tool"`
	MaxNodes    int               `json:"max_nodes"`
	Iters       int               `json:"iters"`
	Experiments []benchExperiment `json:"experiments"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stencilbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "which figure to regenerate (table1, fig3, fig11, fig12a, fig12b, fig12c, fig13, fastpath, overlap, compare, metrics, matrix, all)")
	maxNodes := fs.Int("maxnodes", 32, "largest node count for scaling experiments (paper: 256)")
	iters := fs.Int("iters", 3, "exchange iterations per configuration (paper: 30)")
	jsonPath := fs.String("json", "", "also write the rows as JSON to this file (e.g. results/BENCH.json)")
	metricsPath := fs.String("metrics", "", "run the metrics ladder and write its telemetry report to this file (e.g. results/METRICS.json)")
	matrixPath := fs.String("matrix", "", "run the feature-cost matrix and write its report to this file (e.g. results/MATRIX.json)")
	parallel := fs.Int("parallel", 0, "payload worker goroutines for the simulation engine (0 = sequential; results are bit-identical; -compare defaults to NumCPU)")
	compare := fs.Bool("compare", false, "shorthand for -experiment compare: benchmark sequential vs parallel engine wall time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	figures.Workers = *parallel
	if *compare {
		*experiment = "compare"
	}
	if *metricsPath != "" {
		*experiment = "metrics"
	}
	if *matrixPath != "" {
		*experiment = "matrix"
	}

	var metricsReport *telemetry.Report
	var matrixReport *figures.MatrixReport
	runners := map[string]func() ([]figures.Row, error){
		"metrics": func() ([]figures.Row, error) {
			rows, rep, err := figures.MetricsLadder(*iters)
			metricsReport = rep
			return rows, err
		},
		"matrix": func() ([]figures.Row, error) {
			rows, rep, err := figures.Matrix(*iters)
			matrixReport = rep
			return rows, err
		},
		"table1":   func() ([]figures.Row, error) { return figures.TableI(), nil },
		"fig3":     func() ([]figures.Row, error) { return figures.Fig3(), nil },
		"fig11":    func() ([]figures.Row, error) { return figures.Fig11(*iters) },
		"fig12a":   func() ([]figures.Row, error) { return figures.Fig12a(*iters) },
		"fig12b":   func() ([]figures.Row, error) { return figures.Fig12b(*maxNodes, *iters) },
		"fig12c":   func() ([]figures.Row, error) { return figures.Fig12c(*maxNodes, *iters) },
		"fig13":    func() ([]figures.Row, error) { return figures.Fig13(*maxNodes, *iters) },
		"compare":  func() ([]figures.Row, error) { return figures.Compare(*iters, *parallel) },
		"fastpath": func() ([]figures.Row, error) { return figures.FastPath(*iters, seedWall64) },
		"overlap":  func() ([]figures.Row, error) { return figures.Overlap(*iters) },
	}
	// "compare" is opt-in (not part of "all"): it re-runs configurations
	// twice to measure the simulator itself rather than the modeled machine.
	order := []string{"table1", "fig3", "fig11", "fig12a", "fig12b", "fig12c", "fig13", "fastpath", "overlap"}

	which := order
	if *experiment != "all" {
		if _, ok := runners[*experiment]; !ok {
			return fmt.Errorf("unknown experiment %q", *experiment)
		}
		which = []string{*experiment}
	}

	report := benchReport{Tool: "stencilbench", MaxNodes: *maxNodes, Iters: *iters}
	for _, name := range which {
		fmt.Fprintf(out, "== %s ==\n", name)
		start := time.Now()
		rows, err := runners[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start).Seconds()
		for _, r := range rows {
			fmt.Fprintln(out, r)
		}
		fmt.Fprintln(out)
		report.Experiments = append(report.Experiments, benchExperiment{
			Name: name, WallSeconds: wall, Rows: rows,
		})
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		fmt.Fprintf(out, "JSON report written to %s\n", *jsonPath)
	}
	if *metricsPath != "" && metricsReport != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.WriteReport(f, metricsReport); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics report written to %s\n", *metricsPath)
	}
	if *matrixPath != "" && matrixReport != nil {
		f, err := os.Create(*matrixPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(matrixReport); err != nil {
			return err
		}
		fmt.Fprintf(out, "matrix report written to %s\n", *matrixPath)
	}
	return nil
}
