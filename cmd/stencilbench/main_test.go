package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/figures"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// TestRunTableI: the cheapest experiment prints its header and rows.
func TestRunTableI(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== table1 ==") {
		t.Errorf("output missing table1 header:\n%s", out)
	}
}

// TestRunJSON: -json writes a BENCH.json-shaped document whose rows mirror
// the text output.
func TestRunJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig11", "-iters", "1", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH.json is not valid JSON: %v", err)
	}
	if report.Tool != "stencilbench" || len(report.Experiments) != 1 {
		t.Fatalf("unexpected report shape: %+v", report)
	}
	exp := report.Experiments[0]
	if exp.Name != "fig11" || len(exp.Rows) == 0 {
		t.Fatalf("fig11 experiment empty: %+v", exp)
	}
	for _, r := range exp.Rows {
		if r.Seconds <= 0 {
			t.Errorf("row %q: nonpositive seconds %g", r.Config, r.Seconds)
		}
		if !strings.Contains(buf.String(), r.Config) {
			t.Errorf("text output missing row config %q", r.Config)
		}
	}
}

// TestRunUnknownExperiment: bad selectors are errors, not panics.
func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig99"}, &buf); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// TestRunMetrics: -metrics writes a well-formed telemetry report covering
// the whole capability ladder.
func TestRunMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "METRICS.json")
	var buf strings.Builder
	if err := run([]string{"-iters", "1", "-metrics", path}, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != telemetry.SchemaVersion || rep.Tool != "stencilbench" {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("got %d runs, want the 4 ladder rungs", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if len(r.Snapshot.Counters) == 0 || len(r.Snapshot.Links) == 0 || len(r.Snapshot.Spans) == 0 {
			t.Errorf("run %s %s: empty snapshot sections", r.Config, r.Caps)
		}
	}
}

// TestMetricsGolden is the same gate CI's metrics-snapshot job applies: the
// committed golden must match a fresh run (schema exactly, values within
// tolerance). Regenerate results/METRICS.json via
// `go run ./cmd/stencilbench -iters 2 -metrics results/METRICS.json`
// when an intentional telemetry change lands.
func TestMetricsGolden(t *testing.T) {
	golden := filepath.Join("..", "..", "results", "METRICS.json")
	ref, err := telemetry.ReadReport(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with stencilbench -metrics): %v", err)
	}
	_, rep, err := figures.MetricsLadder(ref.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if issues := telemetry.DiffReports(ref, rep, 0.20); len(issues) != 0 {
		t.Fatalf("metrics drift against golden:\n  %s", strings.Join(issues, "\n  "))
	}
}
