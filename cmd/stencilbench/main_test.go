package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTableI: the cheapest experiment prints its header and rows.
func TestRunTableI(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== table1 ==") {
		t.Errorf("output missing table1 header:\n%s", out)
	}
}

// TestRunJSON: -json writes a BENCH.json-shaped document whose rows mirror
// the text output.
func TestRunJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig11", "-iters", "1", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH.json is not valid JSON: %v", err)
	}
	if report.Tool != "stencilbench" || len(report.Experiments) != 1 {
		t.Fatalf("unexpected report shape: %+v", report)
	}
	exp := report.Experiments[0]
	if exp.Name != "fig11" || len(exp.Rows) == 0 {
		t.Fatalf("fig11 experiment empty: %+v", exp)
	}
	for _, r := range exp.Rows {
		if r.Seconds <= 0 {
			t.Errorf("row %q: nonpositive seconds %g", r.Config, r.Seconds)
		}
		if !strings.Contains(buf.String(), r.Config) {
			t.Errorf("text output missing row config %q", r.Config)
		}
	}
}

// TestRunUnknownExperiment: bad selectors are errors, not panics.
func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig99"}, &buf); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
