package main

import (
	"strings"
	"testing"
)

// TestRunSmoke: topology discovery prints the matrix and the link inventory.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"simulated node: 2 sockets x 3 GPUs",
		"link classes (nvidia-smi topo -m style):",
		"theoretical per-pair bandwidth (GB/s):",
		"node link inventory:",
		"NVLink", "X-Bus", "NIC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunMeasure: the -measure microbenchmark path also completes.
func TestRunMeasure(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-measure", "-probe-mib", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "measured per-pair bandwidth") {
		t.Errorf("output missing measured matrix:\n%s", buf.String())
	}
}
