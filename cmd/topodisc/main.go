// Command topodisc prints the discovered topology of the simulated node
// (paper Fig 10 / Table I): the link-class matrix as nvidia-smi topo -m
// renders it, the theoretical per-pair bandwidths the placement phase
// consumes, and optionally an empirically measured matrix (§VI future work).
package main

import (
	"flag"
	"fmt"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/sim"
)

func main() {
	sockets := flag.Int("sockets", 2, "CPU sockets per node")
	gpusPerSocket := flag.Int("gpus-per-socket", 3, "GPUs per socket")
	measure := flag.Bool("measure", false, "also run the pairwise bandwidth microbenchmark")
	probe := flag.Int64("probe-mib", 64, "probe transfer size in MiB for -measure")
	flag.Parse()

	eng := sim.NewEngine()
	m := machine.New(eng, 1, machine.NodeConfig{Sockets: *sockets, GPUsPerSocket: *gpusPerSocket}, machine.DefaultParams())
	node := m.Nodes[0]

	fmt.Printf("simulated node: %d sockets x %d GPUs (Summit-like)\n\n", *sockets, *gpusPerSocket)
	topo := nvml.Discover(node)
	fmt.Println("link classes (nvidia-smi topo -m style):")
	fmt.Println(topo.String())
	fmt.Println("theoretical per-pair bandwidth (GB/s):")
	fmt.Println(topo.BandwidthString())

	p := m.Params
	fmt.Println("node link inventory:")
	fmt.Printf("  NVLink (GPU-GPU in triad, GPU-CPU): %5.1f GB/s per direction\n", p.NVLinkBW/machine.GB)
	fmt.Printf("  X-Bus (socket-socket SMP):          %5.1f GB/s per direction\n", p.XBusBW/machine.GB)
	fmt.Printf("  NIC (node injection):               %5.1f GB/s per direction\n", p.NICBW/machine.GB)
	fmt.Printf("  host memory engine (per socket):    %5.1f GB/s\n", p.HostMemBW/machine.GB)

	if *measure {
		fmt.Println("\nmeasured per-pair bandwidth (GB/s), uncontended probes:")
		rt := cudart.NewRuntime(m, false)
		mt := nvml.MeasureBandwidth(rt, 0, *probe<<20)
		fmt.Println(mt.BandwidthString())
	}
}
