// Command topodisc prints the discovered topology of the simulated node
// (paper Fig 10 / Table I): the link-class matrix as nvidia-smi topo -m
// renders it, the theoretical per-pair bandwidths the placement phase
// consumes, and optionally an empirically measured matrix (§VI future work).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topodisc", flag.ContinueOnError)
	sockets := fs.Int("sockets", 2, "CPU sockets per node")
	gpusPerSocket := fs.Int("gpus-per-socket", 3, "GPUs per socket")
	measure := fs.Bool("measure", false, "also run the pairwise bandwidth microbenchmark")
	probe := fs.Int64("probe-mib", 64, "probe transfer size in MiB for -measure")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := sim.NewEngine()
	m := machine.New(eng, 1, machine.NodeConfig{Sockets: *sockets, GPUsPerSocket: *gpusPerSocket}, machine.DefaultParams())
	node := m.Nodes[0]

	fmt.Fprintf(out, "simulated node: %d sockets x %d GPUs (Summit-like)\n\n", *sockets, *gpusPerSocket)
	topo := nvml.Discover(node)
	fmt.Fprintln(out, "link classes (nvidia-smi topo -m style):")
	fmt.Fprintln(out, topo.String())
	fmt.Fprintln(out, "theoretical per-pair bandwidth (GB/s):")
	fmt.Fprintln(out, topo.BandwidthString())

	p := m.Params
	fmt.Fprintln(out, "node link inventory:")
	fmt.Fprintf(out, "  NVLink (GPU-GPU in triad, GPU-CPU): %5.1f GB/s per direction\n", p.NVLinkBW/machine.GB)
	fmt.Fprintf(out, "  X-Bus (socket-socket SMP):          %5.1f GB/s per direction\n", p.XBusBW/machine.GB)
	fmt.Fprintf(out, "  NIC (node injection):               %5.1f GB/s per direction\n", p.NICBW/machine.GB)
	fmt.Fprintf(out, "  host memory engine (per socket):    %5.1f GB/s\n", p.HostMemBW/machine.GB)

	if *measure {
		fmt.Fprintln(out, "\nmeasured per-pair bandwidth (GB/s), uncontended probes:")
		rt := cudart.NewRuntime(m, false)
		mt := nvml.MeasureBandwidth(rt, 0, *probe<<20)
		fmt.Fprintln(out, mt.BandwidthString())
	}
	return nil
}
