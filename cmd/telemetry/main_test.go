package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// faultEvents runs a small nvlink-kill job with adaptation and telemetry and
// writes its NDJSON event log, exercising the real pipeline end to end.
func faultEvents(t *testing.T) string {
	t.Helper()
	tel := stencil.NewTelemetry()
	sc := &stencil.FaultScenario{Name: "test"}
	sc.KillNVLink(1e-4, 0, 0, 1, 0)
	dd, err := stencil.New(stencil.Config{
		Nodes:        1,
		RanksPerNode: 2,
		Domain:       stencil.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       1,
		Quantities:   2,
		Capabilities: stencil.CapsAll(),
		Fault:        sc,
		Adaptive:     true,
		Telemetry:    tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	dd.Exchange(4)
	path := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tel.WriteEvents(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportMode: the report digests a real event log into the three
// sections — phase breakdown, hot links, and the method-flip ledger showing
// the fault and the demotions it caused.
func TestReportMode(t *testing.T) {
	path := faultEvents(t)
	var buf strings.Builder
	if err := run([]string{"-events", path, "-top", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"per-phase breakdown", "exchange", "setup.specialization",
		"hottest links", "nvlink",
		"method ledger:", "fault link-fail", "-> STAGED", "method flips",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportModeMissingFile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-events", "/nonexistent.ndjson"}, &buf); err == nil {
		t.Error("expected error for missing event log")
	}
}

func mkReport(t *testing.T, dir, name string, v float64) string {
	t.Helper()
	r := telemetry.New()
	r.Counter("c").Add(v)
	rep := &telemetry.Report{Schema: telemetry.SchemaVersion, Tool: "test",
		Runs: []telemetry.ReportRun{{Config: "cfg", Snapshot: r.Snapshot()}}}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.WriteReport(f, rep); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffMode: matching reports pass, drifted values beyond tolerance fail
// with a nonzero (error) result — the CI gate contract.
func TestDiffMode(t *testing.T) {
	dir := t.TempDir()
	ref := mkReport(t, dir, "ref.json", 100)
	same := mkReport(t, dir, "same.json", 101)
	far := mkReport(t, dir, "far.json", 200)

	var buf strings.Builder
	if err := run([]string{"-ref", ref, "-got", same, "-tol", "0.10"}, &buf); err != nil {
		t.Fatalf("1%% drift rejected at 10%% tolerance: %v", err)
	}
	if !strings.Contains(buf.String(), "metrics match") {
		t.Errorf("missing match confirmation:\n%s", buf.String())
	}
	if err := run([]string{"-ref", ref, "-got", far, "-tol", "0.10"}, &buf); err == nil {
		t.Error("100% drift passed a 10% tolerance")
	}
}

func TestDiffModeNeedsBothFiles(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-ref", "only-one.json"}, &buf); err == nil {
		t.Error("expected error when -got is missing")
	}
}

func TestNoArgs(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("expected error with no mode selected")
	}
}
