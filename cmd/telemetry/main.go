// Command telemetry analyzes the unified observability outputs of the other
// tools. It has two modes:
//
// Report mode digests an NDJSON event log (faultsim -events, or any
// telemetry.Recorder.WriteEvents output) into a human-readable summary:
//
//	telemetry -events run.ndjson [-top N]
//
// printed as a per-phase time breakdown (from span records), the top-N
// hottest links by integrated utilization (from link samples), and a method
// ledger: the setup-time selection followed by every fault and adaptation in
// virtual-time order.
//
// Diff mode compares two metrics reports (stencilbench -metrics output) and
// exits nonzero when they disagree — the CI metrics-snapshot gate:
//
//	telemetry -ref results/METRICS.json -got /tmp/METRICS-new.json [-tol 0.20]
//
// The schema (metric names, labels, bucket layouts, link and span sets) must
// match exactly; values may drift within the relative tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/nodeaware/stencil/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("telemetry", flag.ContinueOnError)
	events := fs.String("events", "", "NDJSON event log to summarize")
	top := fs.Int("top", 10, "how many hottest links to list")
	ref := fs.String("ref", "", "reference metrics report (diff mode)")
	got := fs.String("got", "", "candidate metrics report (diff mode)")
	tol := fs.Float64("tol", 0.20, "relative value tolerance for diff mode")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *ref != "" || *got != "":
		if *ref == "" || *got == "" {
			return fmt.Errorf("diff mode needs both -ref and -got")
		}
		return diffMode(out, *ref, *got, *tol)
	case *events != "":
		return reportMode(out, *events, *top)
	}
	return fmt.Errorf("nothing to do: pass -events FILE, or -ref and -got for diff mode")
}

func diffMode(out io.Writer, refPath, gotPath string, tol float64) error {
	refRep, err := telemetry.ReadReport(refPath)
	if err != nil {
		return err
	}
	gotRep, err := telemetry.ReadReport(gotPath)
	if err != nil {
		return err
	}
	issues := telemetry.DiffReports(refRep, gotRep, tol)
	if len(issues) == 0 {
		fmt.Fprintf(out, "metrics match: %d runs within %.0f%% of %s\n",
			len(refRep.Runs), tol*100, refPath)
		return nil
	}
	for _, is := range issues {
		fmt.Fprintf(out, "  %s\n", is)
	}
	return fmt.Errorf("metrics drift: %d issues against %s", len(issues), refPath)
}

// event is one parsed NDJSON line; Extra holds the kind-specific fields.
type event struct {
	T     float64
	Kind  string
	Extra map[string]any
}

func readEvents(path string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var evs []event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		m := make(map[string]any)
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		ev := event{Extra: m}
		if t, ok := m["t"].(float64); ok {
			ev.T = t
		}
		if k, ok := m["kind"].(string); ok {
			ev.Kind = k
		}
		evs = append(evs, ev)
	}
	return evs, sc.Err()
}

func str(m map[string]any, k string) string {
	s, _ := m[k].(string)
	return s
}

func num(m map[string]any, k string) float64 {
	v, _ := m[k].(float64)
	return v
}

func reportMode(out io.Writer, path string, top int) error {
	evs, err := readEvents(path)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	printPhases(out, evs)
	printHotLinks(out, evs, top)
	printMethodLedger(out, evs)
	return nil
}

// printPhases aggregates span records by name: count and total virtual time.
func printPhases(out io.Writer, evs []event) {
	type agg struct {
		count int
		total float64
	}
	phases := make(map[string]*agg)
	var names []string
	for _, ev := range evs {
		if ev.Kind != "span" {
			continue
		}
		name := str(ev.Extra, "name")
		a, ok := phases[name]
		if !ok {
			a = &agg{}
			phases[name] = a
			names = append(names, name)
		}
		a.count++
		a.total += num(ev.Extra, "dur")
	}
	fmt.Fprintf(out, "per-phase breakdown (virtual time):\n")
	if len(names) == 0 {
		fmt.Fprintf(out, "  (no span records)\n\n")
		return
	}
	sort.Slice(names, func(i, j int) bool {
		if phases[names[i]].total != phases[names[j]].total {
			return phases[names[i]].total > phases[names[j]].total
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(out, "  %-24s %8s %14s %14s\n", "phase", "count", "total ms", "mean ms")
	for _, n := range names {
		a := phases[n]
		fmt.Fprintf(out, "  %-24s %8d %14.3f %14.3f\n",
			n, a.count, a.total*1e3, a.total/float64(a.count)*1e3)
	}
	fmt.Fprintln(out)
}

// printHotLinks integrates each link's utilization step function over the
// sampled window and ranks by busy-seconds (∫ util dt).
func printHotLinks(out io.Writer, evs []event, top int) {
	type linkAgg struct {
		lastT, lastV float64
		started      bool
		busy         float64
		peak         float64
		samples      int
	}
	links := make(map[string]*linkAgg)
	var names []string
	for _, ev := range evs {
		if ev.Kind != "link" {
			continue
		}
		name := str(ev.Extra, "link")
		util := num(ev.Extra, "util")
		a, ok := links[name]
		if !ok {
			a = &linkAgg{}
			links[name] = a
			names = append(names, name)
		}
		if a.started {
			a.busy += a.lastV * (ev.T - a.lastT)
		}
		a.started = true
		a.lastT, a.lastV = ev.T, util
		if util > a.peak {
			a.peak = util
		}
		a.samples++
	}
	fmt.Fprintf(out, "hottest links (by integrated utilization):\n")
	if len(names) == 0 {
		fmt.Fprintf(out, "  (no link samples; the recorder may have LinkEvents disabled)\n\n")
		return
	}
	sort.Slice(names, func(i, j int) bool {
		if links[names[i]].busy != links[names[j]].busy {
			return links[names[i]].busy > links[names[j]].busy
		}
		return names[i] < names[j]
	})
	if top > len(names) {
		top = len(names)
	}
	fmt.Fprintf(out, "  %-28s %14s %10s %8s\n", "link", "busy ms", "peak util", "samples")
	for _, n := range names[:top] {
		a := links[n]
		fmt.Fprintf(out, "  %-28s %14.3f %10.2f %8d\n", n, a.busy*1e3, a.peak, a.samples)
	}
	if top < len(names) {
		fmt.Fprintf(out, "  ... and %d more\n", len(names)-top)
	}
	fmt.Fprintln(out)
}

// printMethodLedger reconstructs the method story: the setup-time selection
// from "plan" events, then every fault and adaptation in virtual-time order,
// and the resulting final per-method counts.
func printMethodLedger(out io.Writer, evs []event) {
	counts := make(map[string]int)
	planMethod := make(map[int]string)
	for _, ev := range evs {
		if ev.Kind != "plan" {
			continue
		}
		m := str(ev.Extra, "method")
		counts[m]++
		planMethod[int(num(ev.Extra, "plan"))] = m
	}
	fmt.Fprintf(out, "method ledger:\n")
	if len(counts) == 0 {
		fmt.Fprintf(out, "  (no plan records)\n")
		return
	}
	var methods []string
	for m := range counts {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Fprintf(out, "  setup selection:")
	for _, m := range methods {
		fmt.Fprintf(out, " %s=%d", m, counts[m])
	}
	fmt.Fprintln(out)

	flips := 0
	for _, ev := range evs {
		switch ev.Kind {
		case "fault":
			fmt.Fprintf(out, "  t=%-12.6g fault %-14s %s\n",
				ev.T, str(ev.Extra, "fault"), str(ev.Extra, "desc"))
		case "adapt":
			reason := str(ev.Extra, "reason")
			from, to := str(ev.Extra, "from"), str(ev.Extra, "to")
			if from == "" && to == "" {
				fmt.Fprintf(out, "  t=%-12.6g adapt %s\n", ev.T, reason)
				continue
			}
			flips++
			counts[from]--
			counts[to]++
			planMethod[int(num(ev.Extra, "plan"))] = to
			fmt.Fprintf(out, "  t=%-12.6g adapt plan %-4d %s -> %s (%s)\n",
				ev.T, int(num(ev.Extra, "plan")), from, to, reason)
		case "retry":
			fmt.Fprintf(out, "  t=%-12.6g retry %s attempt %d\n",
				ev.T, str(ev.Extra, "name"), int(num(ev.Extra, "attempt")))
		}
	}
	methods = methods[:0]
	for m, c := range counts {
		if c != 0 {
			methods = append(methods, m)
		}
	}
	sort.Strings(methods)
	fmt.Fprintf(out, "  final selection: ")
	for i, m := range methods {
		if i > 0 {
			fmt.Fprint(out, " ")
		}
		fmt.Fprintf(out, "%s=%d", m, counts[m])
	}
	fmt.Fprintf(out, "  (%d method flips)\n", flips)
}
