package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke: the Gantt report renders for a small per-GPU domain.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-edge", "64", "-width", "60"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"one exchange: 1n/1r/2g, 64^3 per GPU",
		"exchange time", "overlap factor",
		"K=pack/unpack/self kernel",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunChromeTrace: -chrome writes parseable trace-event JSON.
func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf strings.Builder
	if err := run([]string{"-edge", "64", "-chrome", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
}
