// Command exchtrace reproduces Fig 9: a timeline of the overlapped
// operations during one halo exchange of a 512^3-per-GPU domain with four
// single-precision quantities on a single rank driving two GPUs.
//
// By default it prints an ASCII Gantt chart of every simulated GPU operation
// grouped by device and stream, plus overlap statistics. With -chrome FILE
// it also writes Chrome trace-event JSON for chrome://tracing / Perfetto,
// including per-link utilization counter tracks sampled by the telemetry
// layer on every flow-network rebalance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("exchtrace", flag.ContinueOnError)
	width := fs.Int("width", 100, "chart width in characters")
	ranks := fs.Int("ranks", 1, "ranks on the node")
	edge := fs.Int("edge", 512, "per-GPU cubic subdomain edge (Fig 9: 512)")
	chrome := fs.String("chrome", "", "also write Chrome trace-event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fig 9's setup: one rank controlling two GPUs; the node has one GPU per
	// socket so both intra- and cross-socket traffic appear.
	nodeCfg := machine.NodeConfig{Sockets: 2, GPUsPerSocket: 1}
	tel := stencil.NewTelemetry()
	cfg := stencil.Config{
		Nodes:        1,
		RanksPerNode: *ranks,
		Domain:       stencil.Dim3{X: 2 * *edge, Y: *edge, Z: *edge}, // edge^3 per GPU
		Radius:       2,
		Quantities:   4,
		Capabilities: stencil.CapsAll(),
		NodeConfig:   &nodeCfg,
		TraceOps:     true,
		Telemetry:    tel,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		return err
	}
	stats := dd.Exchange(1)

	ops := make([]cudart.OpRecord, 0, len(dd.Trace()))
	for _, op := range dd.Trace() {
		ops = append(ops, cudart.OpRecord{
			Kind:   kindOf(op.Kind),
			Name:   op.Name,
			Device: op.Device,
			Stream: op.Stream,
			Start:  op.Start,
			End:    op.End,
			Bytes:  op.Bytes,
		})
	}
	tl := trace.New(ops)
	ts := tl.ComputeStats()

	fmt.Fprintf(out, "one exchange: 1n/%dr/2g, %d^3 per GPU, 4 SP quantities\n", *ranks, *edge)
	fmt.Fprintf(out, "exchange time %.3f ms; %d GPU operations on %d streams across %d devices\n",
		stats.Min()*1e3, ts.Ops, ts.Streams, ts.Devices)
	fmt.Fprintf(out, "GPU busy time %.3f ms over a %.3f ms span: overlap factor %.2fx\n\n",
		ts.BusyTime*1e3, ts.Span*1e3, ts.Overlap)
	fmt.Fprintln(out, "K=pack/unpack/self kernel  P=peer copy  v=D2H stage  ^=H2D stage")
	tl.RenderASCII(out, *width)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		defer f.Close()
		var tracks []trace.CounterTrack
		for _, tr := range tel.Tracks() {
			if !tr.IsLink() {
				continue
			}
			tracks = append(tracks, trace.CounterTrack{Name: tr.Name, Times: tr.Times, Values: tr.Values})
		}
		if err := tl.WriteChromeTrace(f, tracks...); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nChrome trace written to %s (%d link utilization counter tracks; open in chrome://tracing or ui.perfetto.dev)\n",
			*chrome, len(tracks))
	}
	return nil
}

func kindOf(s string) cudart.OpKind {
	switch s {
	case "memcpyD2D":
		return cudart.OpMemcpyD2D
	case "memcpyD2H":
		return cudart.OpMemcpyD2H
	case "memcpyH2D":
		return cudart.OpMemcpyH2D
	default:
		return cudart.OpKernel
	}
}
