// Command exchtrace reproduces Fig 9: a timeline of the overlapped
// operations during one halo exchange of a 512^3-per-GPU domain with four
// single-precision quantities on a single rank driving two GPUs.
//
// By default it prints an ASCII Gantt chart of every simulated GPU operation
// grouped by device and stream, plus overlap statistics. With -chrome FILE
// it also writes Chrome trace-event JSON for chrome://tracing / Perfetto.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/trace"
)

func main() {
	width := flag.Int("width", 100, "chart width in characters")
	ranks := flag.Int("ranks", 1, "ranks on the node")
	chrome := flag.String("chrome", "", "also write Chrome trace-event JSON to this file")
	flag.Parse()

	// Fig 9's setup: one rank controlling two GPUs; the node has one GPU per
	// socket so both intra- and cross-socket traffic appear.
	nodeCfg := machine.NodeConfig{Sockets: 2, GPUsPerSocket: 1}
	cfg := stencil.Config{
		Nodes:        1,
		RanksPerNode: *ranks,
		Domain:       stencil.Dim3{X: 1024, Y: 512, Z: 512}, // 512^3 per GPU
		Radius:       2,
		Quantities:   4,
		Capabilities: stencil.CapsAll(),
		NodeConfig:   &nodeCfg,
		TraceOps:     true,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := dd.Exchange(1)

	ops := make([]cudart.OpRecord, 0, len(dd.Trace()))
	for _, op := range dd.Trace() {
		ops = append(ops, cudart.OpRecord{
			Kind:   kindOf(op.Kind),
			Name:   op.Name,
			Device: op.Device,
			Stream: op.Stream,
			Start:  op.Start,
			End:    op.End,
			Bytes:  op.Bytes,
		})
	}
	tl := trace.New(ops)
	ts := tl.ComputeStats()

	fmt.Printf("one exchange: 1n/%dr/2g, 512^3 per GPU, 4 SP quantities\n", *ranks)
	fmt.Printf("exchange time %.3f ms; %d GPU operations on %d streams across %d devices\n",
		stats.Min()*1e3, ts.Ops, ts.Streams, ts.Devices)
	fmt.Printf("GPU busy time %.3f ms over a %.3f ms span: overlap factor %.2fx\n\n",
		ts.BusyTime*1e3, ts.Span*1e3, ts.Overlap)
	fmt.Println("K=pack/unpack/self kernel  P=peer copy  v=D2H stage  ^=H2D stage")
	tl.RenderASCII(os.Stdout, *width)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tl.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChrome trace written to %s (open in chrome://tracing)\n", *chrome)
	}
}

func kindOf(s string) cudart.OpKind {
	switch s {
	case "memcpyD2D":
		return cudart.OpMemcpyD2D
	case "memcpyD2H":
		return cudart.OpMemcpyD2H
	case "memcpyH2D":
		return cudart.OpMemcpyH2D
	default:
		return cudart.OpKernel
	}
}
