package main

import (
	"strings"
	"testing"
)

// TestRunSmoke: the driver completes on a small configuration and emits the
// expected report sections.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	args := []string{"-nodes", "1", "-ranks", "2", "-domain", "48x24x24", "-radius", "1",
		"-quantities", "2", "-iters", "2"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"configuration:", "subdomain grid:", "method breakdown:",
		"traffic by link class:", "exchange time over 2 iterations", "bytes per exchange:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBadFlags: malformed inputs are reported as errors, not crashes.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-domain", "banana"},
		{"-caps", "warp-drive"},
		{"-unknown-flag"},
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
