// Command stencilsim runs a single halo-exchange configuration described by
// flags and reports the measured exchange time, method breakdown, and
// placement decision — the general-purpose driver for exploring the space
// the figures sample.
//
// Example:
//
//	stencilsim -nodes 4 -ranks 6 -domain 2163 -radius 2 -quantities 4 \
//	           -caps kernel -iters 10
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/machine"
)

func main() {
	nodes := flag.Int("nodes", 1, "number of nodes")
	ranks := flag.Int("ranks", 6, "MPI ranks per node")
	domain := flag.String("domain", "1363", "domain extent: N for a cube or XxYxZ")
	radius := flag.Int("radius", 2, "stencil radius (halo width)")
	quantities := flag.Int("quantities", 4, "grid quantities")
	caps := flag.String("caps", "kernel", "capability ladder rung: remote, colo, peer, kernel")
	cudaAware := flag.Bool("cuda-aware", false, "use CUDA-aware MPI for remote messages")
	trivial := flag.Bool("trivial-placement", false, "disable node-aware placement")
	aggregate := flag.Bool("aggregate", false, "aggregate inter-node messages per rank pair")
	noOverlap := flag.Bool("no-overlap", false, "serialize transfers (ablation)")
	empirical := flag.Bool("empirical-placement", false, "measure bandwidths for placement")
	openBoundary := flag.Bool("open-boundary", false, "non-periodic boundaries")
	faceOnly := flag.Bool("face-only", false, "exchange only the 6 face neighbors")
	iters := flag.Int("iters", 10, "exchange iterations (paper: 30)")
	sockets := flag.Int("sockets", 2, "CPU sockets per node")
	gpusPerSocket := flag.Int("gpus-per-socket", 3, "GPUs per socket")
	flag.Parse()

	dim, err := parseDomain(*domain)
	if err != nil {
		log.Fatal(err)
	}
	capabilities, err := parseCaps(*caps)
	if err != nil {
		log.Fatal(err)
	}
	nodeCfg := machine.NodeConfig{Sockets: *sockets, GPUsPerSocket: *gpusPerSocket}

	cfg := stencil.Config{
		Nodes:              *nodes,
		RanksPerNode:       *ranks,
		Domain:             dim,
		Radius:             *radius,
		Quantities:         *quantities,
		Capabilities:       capabilities,
		CUDAAware:          *cudaAware,
		TrivialPlacement:   *trivial,
		AggregateRemote:    *aggregate,
		NoOverlap:          *noOverlap,
		EmpiricalPlacement: *empirical,
		OpenBoundary:       *openBoundary,
		FaceOnly:           *faceOnly,
		NodeConfig:         &nodeCfg,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration: %dn/%dr/%dg domain %v radius %d quantities %d caps %s\n",
		*nodes, *ranks, nodeCfg.GPUs(), dim, *radius, *quantities, *caps)
	fmt.Printf("subdomain grid: %v (%d subdomains)\n", dd.GridDims(), dd.NumSubdomains())
	if !*trivial {
		fmt.Printf("placement (node 0): %v, QAP cost reduction %.1f%% vs trivial\n",
			dd.Assignment(0), dd.PlacementImprovement(0)*100)
	}
	fmt.Println("method breakdown:")
	for m, c := range dd.MethodBreakdown() {
		fmt.Printf("  %-16v %6d plans\n", m, c)
	}

	fmt.Println("traffic by link class:")
	fmt.Print(dd.Traffic())
	dev, hostB := dd.StagingBytes()
	fmt.Printf("staging buffers: %.1f MB device, %.1f MB pinned host\n", float64(dev)/1e6, float64(hostB)/1e6)

	st := dd.Exchange(*iters)
	fmt.Printf("\nexchange time over %d iterations (max across ranks):\n", *iters)
	fmt.Printf("  min  %8.3f ms\n", st.Min()*1e3)
	fmt.Printf("  mean %8.3f ms\n", st.Mean()*1e3)
	fmt.Printf("  max  %8.3f ms\n", st.Max()*1e3)
	fmt.Printf("bytes per exchange: %.1f MB\n", float64(st.TotalBytes)/1e6)
}

func parseDomain(s string) (stencil.Dim3, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	switch len(parts) {
	case 1:
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 1 {
			return stencil.Dim3{}, fmt.Errorf("bad domain %q", s)
		}
		return stencil.Dim3{X: n, Y: n, Z: n}, nil
	case 3:
		var d [3]int
		for i, p := range parts {
			n, err := strconv.Atoi(p)
			if err != nil || n < 1 {
				return stencil.Dim3{}, fmt.Errorf("bad domain %q", s)
			}
			d[i] = n
		}
		return stencil.Dim3{X: d[0], Y: d[1], Z: d[2]}, nil
	}
	return stencil.Dim3{}, fmt.Errorf("domain must be N or XxYxZ, got %q", s)
}

func parseCaps(s string) (stencil.Capabilities, error) {
	switch strings.ToLower(s) {
	case "remote":
		return stencil.CapsRemote(), nil
	case "colo":
		return stencil.CapsColo(), nil
	case "peer":
		return stencil.CapsPeer(), nil
	case "kernel", "all":
		return stencil.CapsAll(), nil
	}
	return stencil.Capabilities{}, fmt.Errorf("unknown caps %q (want remote|colo|peer|kernel)", s)
}
