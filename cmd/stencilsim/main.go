// Command stencilsim runs a single halo-exchange configuration described by
// flags and reports the measured exchange time, method breakdown, and
// placement decision — the general-purpose driver for exploring the space
// the figures sample.
//
// Example:
//
//	stencilsim -nodes 4 -ranks 6 -domain 2163 -radius 2 -quantities 4 \
//	           -caps kernel -iters 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/machine"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stencilsim", flag.ContinueOnError)
	nodes := fs.Int("nodes", 1, "number of nodes")
	ranks := fs.Int("ranks", 6, "MPI ranks per node")
	domain := fs.String("domain", "1363", "domain extent: N for a cube or XxYxZ")
	radius := fs.Int("radius", 2, "stencil radius (halo width)")
	quantities := fs.Int("quantities", 4, "grid quantities")
	caps := fs.String("caps", "kernel", "capability ladder rung: remote, colo, peer, kernel")
	cudaAware := fs.Bool("cuda-aware", false, "use CUDA-aware MPI for remote messages")
	trivial := fs.Bool("trivial-placement", false, "disable node-aware placement")
	aggregate := fs.Bool("aggregate", false, "aggregate inter-node messages per rank pair")
	noOverlap := fs.Bool("no-overlap", false, "serialize transfers (ablation)")
	empirical := fs.Bool("empirical-placement", false, "measure bandwidths for placement")
	openBoundary := fs.Bool("open-boundary", false, "non-periodic boundaries")
	faceOnly := fs.Bool("face-only", false, "exchange only the 6 face neighbors")
	iters := fs.Int("iters", 10, "exchange iterations (paper: 30)")
	sockets := fs.Int("sockets", 2, "CPU sockets per node")
	gpusPerSocket := fs.Int("gpus-per-socket", 3, "GPUs per socket")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dim, err := parseDomain(*domain)
	if err != nil {
		return err
	}
	capabilities, err := parseCaps(*caps)
	if err != nil {
		return err
	}
	nodeCfg := machine.NodeConfig{Sockets: *sockets, GPUsPerSocket: *gpusPerSocket}

	cfg := stencil.Config{
		Nodes:              *nodes,
		RanksPerNode:       *ranks,
		Domain:             dim,
		Radius:             *radius,
		Quantities:         *quantities,
		Capabilities:       capabilities,
		CUDAAware:          *cudaAware,
		TrivialPlacement:   *trivial,
		AggregateRemote:    *aggregate,
		NoOverlap:          *noOverlap,
		EmpiricalPlacement: *empirical,
		OpenBoundary:       *openBoundary,
		FaceOnly:           *faceOnly,
		NodeConfig:         &nodeCfg,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "configuration: %dn/%dr/%dg domain %v radius %d quantities %d caps %s\n",
		*nodes, *ranks, nodeCfg.GPUs(), dim, *radius, *quantities, *caps)
	fmt.Fprintf(out, "subdomain grid: %v (%d subdomains)\n", dd.GridDims(), dd.NumSubdomains())
	if !*trivial {
		fmt.Fprintf(out, "placement (node 0): %v, QAP cost reduction %.1f%% vs trivial\n",
			dd.Assignment(0), dd.PlacementImprovement(0)*100)
	}
	fmt.Fprintln(out, "method breakdown:")
	for m, c := range dd.MethodBreakdown() {
		fmt.Fprintf(out, "  %-16v %6d plans\n", m, c)
	}

	fmt.Fprintln(out, "traffic by link class:")
	fmt.Fprint(out, dd.Traffic())
	dev, hostB := dd.StagingBytes()
	fmt.Fprintf(out, "staging buffers: %.1f MB device, %.1f MB pinned host\n", float64(dev)/1e6, float64(hostB)/1e6)

	st := dd.Exchange(*iters)
	fmt.Fprintf(out, "\nexchange time over %d iterations (max across ranks):\n", *iters)
	fmt.Fprintf(out, "  min  %8.3f ms\n", st.Min()*1e3)
	fmt.Fprintf(out, "  mean %8.3f ms\n", st.Mean()*1e3)
	fmt.Fprintf(out, "  max  %8.3f ms\n", st.Max()*1e3)
	fmt.Fprintf(out, "bytes per exchange: %.1f MB\n", float64(st.TotalBytes)/1e6)
	return nil
}

func parseDomain(s string) (stencil.Dim3, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	switch len(parts) {
	case 1:
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 1 {
			return stencil.Dim3{}, fmt.Errorf("bad domain %q", s)
		}
		return stencil.Dim3{X: n, Y: n, Z: n}, nil
	case 3:
		var d [3]int
		for i, p := range parts {
			n, err := strconv.Atoi(p)
			if err != nil || n < 1 {
				return stencil.Dim3{}, fmt.Errorf("bad domain %q", s)
			}
			d[i] = n
		}
		return stencil.Dim3{X: d[0], Y: d[1], Z: d[2]}, nil
	}
	return stencil.Dim3{}, fmt.Errorf("domain must be N or XxYxZ, got %q", s)
}

func parseCaps(s string) (stencil.Capabilities, error) {
	switch strings.ToLower(s) {
	case "remote":
		return stencil.CapsRemote(), nil
	case "colo":
		return stencil.CapsColo(), nil
	case "peer":
		return stencil.CapsPeer(), nil
	case "kernel", "all":
		return stencil.CapsAll(), nil
	}
	return stencil.Capabilities{}, fmt.Errorf("unknown caps %q (want remote|colo|peer|kernel)", s)
}
