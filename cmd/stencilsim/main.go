// Command stencilsim runs a single halo-exchange configuration described by
// flags and reports the measured exchange time, method breakdown, and
// placement decision — the general-purpose driver for exploring the space
// the figures sample.
//
// Example:
//
//	stencilsim -nodes 4 -ranks 6 -domain 2163 -radius 2 -quantities 4 \
//	           -caps kernel -iters 10
package main

import (
	"flag"
	"fmt"
	"io"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/jobspec"
)

func main() { jobspec.Main(run) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stencilsim", flag.ContinueOnError)
	spec := jobspec.Default()
	spec.BindTopologyFlags(fs)
	spec.BindMethodFlags(fs)
	spec.BindRunFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dim, err := jobspec.ParseDomain(spec.Domain)
	if err != nil {
		return err
	}
	cfg, err := spec.Config()
	if err != nil {
		return err
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "configuration: %dn/%dr/%dg domain %v radius %d quantities %d caps %s\n",
		spec.Nodes, spec.RanksPerNode, cfg.NodeConfig.GPUs(), dim, spec.Radius, spec.Quantities, spec.Caps)
	fmt.Fprintf(out, "subdomain grid: %v (%d subdomains)\n", dd.GridDims(), dd.NumSubdomains())
	if !spec.TrivialPlacement {
		fmt.Fprintf(out, "placement (node 0): %v, QAP cost reduction %.1f%% vs trivial\n",
			dd.Assignment(0), dd.PlacementImprovement(0)*100)
	}
	fmt.Fprintln(out, "method breakdown:")
	for m, c := range dd.MethodBreakdown() {
		fmt.Fprintf(out, "  %-16v %6d plans\n", m, c)
	}

	fmt.Fprintln(out, "traffic by link class:")
	fmt.Fprint(out, dd.Traffic())
	dev, hostB := dd.StagingBytes()
	fmt.Fprintf(out, "staging buffers: %.1f MB device, %.1f MB pinned host\n", float64(dev)/1e6, float64(hostB)/1e6)

	st := dd.Exchange(spec.Iters)
	fmt.Fprintf(out, "\nexchange time over %d iterations (max across ranks):\n", spec.Iters)
	fmt.Fprintf(out, "  min  %8.3f ms\n", st.Min()*1e3)
	fmt.Fprintf(out, "  mean %8.3f ms\n", st.Mean()*1e3)
	fmt.Fprintf(out, "  max  %8.3f ms\n", st.Max()*1e3)
	fmt.Fprintf(out, "bytes per exchange: %.1f MB\n", float64(st.TotalBytes)/1e6)
	return nil
}
