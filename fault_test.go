package stencil

import (
	"fmt"
	"testing"
)

// acceptCfg is the ISSUE acceptance configuration: a 6-GPU single-node job
// with two ranks, full capability ladder, real data.
func acceptCfg(adaptive bool) Config {
	return Config{
		Nodes:        1,
		RanksPerNode: 2,
		Domain:       Dim3{X: 24, Y: 18, Z: 12},
		Radius:       1,
		Quantities:   2,
		Capabilities: CapsAll(),
		RealData:     true,
		Adaptive:     adaptive,
	}
}

// peerTriadPair finds two subdomains owned by the same rank whose GPUs share
// a triad (and therefore an NVLink carrying PEERMEMCPY plans).
func peerTriadPair(t *testing.T, dd *DistributedDomain) (a, b int) {
	t.Helper()
	subs := dd.Subdomains()
	for i, s1 := range subs {
		for _, s2 := range subs[i+1:] {
			n1, g1 := s1.GPU()
			n2, g2 := s2.GPU()
			if n1 == n2 && s1.Rank() == s2.Rank() && g1 != g2 && g1/3 == g2/3 {
				return g1, g2
			}
		}
	}
	t.Fatal("no same-rank same-triad GPU pair")
	return 0, 0
}

// TestFaultAdaptiveRerouting is the end-to-end acceptance scenario through
// the public API: one NVLink dies at t=50us during a 6-GPU exchange; with
// Adaptive set, the affected PEERMEMCPY plans flip to STAGED, halos stay
// byte-identical, and the adaptive run beats the non-adaptive one on virtual
// time.
func TestFaultAdaptiveRerouting(t *testing.T) {
	fill := func(q, x, y, z int) float32 { return float32(q*1000000 + z*10000 + y*100 + x) }

	run := func(adaptive bool) (*DistributedDomain, *Stats) {
		probe, err := New(acceptCfg(adaptive))
		if err != nil {
			t.Fatal(err)
		}
		g1, g2 := peerTriadPair(t, probe)
		cfg := acceptCfg(adaptive)
		cfg.Fault = (&FaultScenario{Name: "nvkill"}).KillNVLink(50e-6, 0, g1, g2, 0)
		dd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dd.Fill(fill)
		return dd, dd.Exchange(6)
	}

	ddA, statsA := run(true)
	ddN, statsN := run(false)

	if n := ddN.MethodBreakdown()[MethodPeer]; n == 0 {
		t.Fatal("configuration has no PEERMEMCPY plans; acceptance scenario is vacuous")
	}
	if len(ddA.AdaptLog()) == 0 {
		t.Fatal("adaptive run recorded no adaptation")
	}
	if len(ddA.FaultLog()) == 0 || len(ddN.FaultLog()) == 0 {
		t.Fatal("fault log empty")
	}
	// The adaptive run demoted the NVLink-crossing plans.
	flipped := 0
	for _, r := range ddA.AdaptLog() {
		if r.From == MethodPeer && r.To == MethodStaged {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("no PEERMEMCPY->STAGED demotion in adapt log")
	}
	if ddA.MethodBreakdown()[MethodStaged] <= ddN.MethodBreakdown()[MethodStaged] {
		t.Error("adaptive run shows no extra STAGED plans")
	}

	// Byte-identical halos in both modes.
	for name, dd := range map[string]*DistributedDomain{"adaptive": ddA, "non-adaptive": ddN} {
		if bad, detail := dd.VerifyHalos(fill); bad != 0 {
			t.Errorf("%s: %d bad halo cells: %s", name, bad, detail)
		}
	}

	// Adaptive strictly beats non-adaptive on total virtual time.
	var ta, tn float64
	for _, it := range statsA.Iterations {
		ta += float64(it)
	}
	for _, it := range statsN.Iterations {
		tn += float64(it)
	}
	if ta >= tn {
		t.Errorf("adaptive total %.6gs not better than non-adaptive %.6gs", ta, tn)
	}
}

// TestFaultDeterminism: the identical scenario and configuration yield
// identical iteration times and logs through the public API.
func TestFaultDeterminism(t *testing.T) {
	trace := func() string {
		probe, err := New(acceptCfg(true))
		if err != nil {
			t.Fatal(err)
		}
		g1, g2 := peerTriadPair(t, probe)
		cfg := acceptCfg(true)
		cfg.SendTimeout = 10e-3
		cfg.Fault = (&FaultScenario{Name: "det"}).
			KillNVLink(50e-6, 0, g1, g2, 300e-6).
			StraggleGPU(100e-6, 0, g1, 2, 200e-6)
		dd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dd.Fill(func(q, x, y, z int) float32 { return float32(x + y + z + q) })
		stats := dd.Exchange(8)
		s := ""
		for _, r := range stats.FaultLog {
			s += fmt.Sprintf("F %.15g %s\n", r.At, r.Desc)
		}
		for _, r := range stats.AdaptEvents {
			s += fmt.Sprintf("A %.15g %d %s->%s\n", r.At, r.PlanID, r.From, r.To)
		}
		for _, it := range stats.Iterations {
			s += fmt.Sprintf("I %.15g\n", it)
		}
		return s
	}
	t1, t2 := trace(), trace()
	if t1 != t2 {
		t.Errorf("traces differ:\n%s\nvs\n%s", t1, t2)
	}
	if len(t1) == 0 {
		t.Error("empty trace")
	}
}

// TestPlanInfos: the snapshot covers every plan and is consistent with the
// method breakdown.
func TestPlanInfos(t *testing.T) {
	dd, err := New(acceptCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	infos := dd.PlanInfos()
	if len(infos) == 0 {
		t.Fatal("no plan infos")
	}
	counts := make(map[Method]int)
	for _, pi := range infos {
		counts[pi.Method]++
		if pi.Bytes <= 0 {
			t.Errorf("plan %d: nonpositive bytes", pi.ID)
		}
	}
	breakdown := dd.MethodBreakdown()
	for m, n := range breakdown {
		if counts[m] != n {
			t.Errorf("method %s: infos %d != breakdown %d", m, counts[m], n)
		}
	}
}
