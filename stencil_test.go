package stencil

import (
	"math"
	"testing"
)

func smallConfig() Config {
	return Config{
		Nodes:        1,
		RanksPerNode: 6,
		Domain:       Dim3{X: 24, Y: 18, Z: 12},
		Radius:       1,
		Quantities:   1,
		Capabilities: CapsAll(),
		RealData:     true,
	}
}

func TestNewAndExchange(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dd.NumSubdomains() != 6 {
		t.Fatalf("subdomains = %d, want 6", dd.NumSubdomains())
	}
	st := dd.Exchange(2)
	if len(st.Iterations) != 2 || st.Mean() <= 0 {
		t.Errorf("bad stats: %+v", st.Iterations)
	}
}

func TestSubdomainAccessors(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	subs := dd.Subdomains()
	if len(subs) != 6 {
		t.Fatalf("len(subs) = %d", len(subs))
	}
	seenGPU := make(map[[2]int]bool)
	var totalVol int
	for _, s := range subs {
		node, gpu := s.GPU()
		key := [2]int{node, gpu}
		if seenGPU[key] {
			t.Errorf("GPU %v assigned twice", key)
		}
		seenGPU[key] = true
		if s.Rank() < 0 || s.Rank() >= 6 {
			t.Errorf("rank %d out of range", s.Rank())
		}
		totalVol += s.Size.Vol()
		s.Set(0, 0, 0, 0, 3.25)
		if got := s.Get(0, 0, 0, 0); got != 3.25 {
			t.Errorf("Get after Set = %g", got)
		}
	}
	if totalVol != 24*18*12 {
		t.Errorf("subdomain volumes sum to %d, want %d", totalVol, 24*18*12)
	}
}

func TestMethodBreakdown(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	mb := dd.MethodBreakdown()
	total := 0
	for _, c := range mb {
		total += c
	}
	if total != 6*26 {
		t.Errorf("total plans = %d, want 156", total)
	}
	if mb[MethodStaged] != 0 {
		t.Errorf("fully specialized single-node job still has %d staged plans", mb[MethodStaged])
	}
}

func TestPlacementImprovementExposed(t *testing.T) {
	cfg := Config{
		Nodes:        1,
		RanksPerNode: 6,
		Domain:       Dim3{X: 1440, Y: 1452, Z: 700},
		Radius:       2,
		Quantities:   4,
		Capabilities: CapsAll(),
	}
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := dd.PlacementImprovement(0)
	if imp < 0.05 || imp > 0.6 {
		t.Errorf("placement improvement = %.3f, expected a solid win on the Fig 11 scenario", imp)
	}
}

func TestStepRunsCompute(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Initialize quantity 0 to the subdomain's rank, then one step averaging
	// each cell with itself (identity) to prove compute executes per sub.
	calls := 0
	dd.Step(2, func(s *Subdomain) { calls++ })
	if calls != 2*6 {
		t.Errorf("compute calls = %d, want 12", calls)
	}
}

// TestJacobiConvergence runs a real 7-point Jacobi relaxation across the
// simulated cluster and verifies it matches a serial reference to the last
// bit — the end-to-end proof that partitioning, placement, and all transfer
// methods move the right bytes.
func TestJacobiConvergence(t *testing.T) {
	const (
		nx, ny, nz = 12, 12, 12
		steps      = 5
	)
	cfg := Config{
		Nodes:        2,
		RanksPerNode: 3,
		Domain:       Dim3{X: nx, Y: ny, Z: nz},
		Radius:       1,
		Quantities:   2, // 0: current, 1: next
		Capabilities: CapsAll(),
		RealData:     true,
	}
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Reference grid with periodic boundaries.
	ref := make([]float64, nx*ny*nz)
	idx := func(x, y, z int) int {
		wrap := func(v, n int) int { return ((v % n) + n) % n }
		return (wrap(z, nz)*ny+wrap(y, ny))*nx + wrap(x, nx)
	}
	init := func(x, y, z int) float32 {
		return float32(math.Sin(float64(x)) + math.Cos(float64(y)*2) + float64(z)*0.1)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				ref[idx(x, y, z)] = float64(init(x, y, z))
			}
		}
	}
	for _, s := range dd.Subdomains() {
		for z := 0; z < s.Size.Z; z++ {
			for y := 0; y < s.Size.Y; y++ {
				for x := 0; x < s.Size.X; x++ {
					s.Set(0, x, y, z, init(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z))
				}
			}
		}
	}

	jacobi := func(s *Subdomain) {
		for z := 0; z < s.Size.Z; z++ {
			for y := 0; y < s.Size.Y; y++ {
				for x := 0; x < s.Size.X; x++ {
					avg := (s.Get(0, x-1, y, z) + s.Get(0, x+1, y, z) +
						s.Get(0, x, y-1, z) + s.Get(0, x, y+1, z) +
						s.Get(0, x, y, z-1) + s.Get(0, x, y, z+1) +
						s.Get(0, x, y, z)) / 7
					s.Set(1, x, y, z, avg)
				}
			}
		}
		// Swap: copy next into current for the following exchange.
		for z := 0; z < s.Size.Z; z++ {
			for y := 0; y < s.Size.Y; y++ {
				for x := 0; x < s.Size.X; x++ {
					s.Set(0, x, y, z, s.Get(1, x, y, z))
				}
			}
		}
	}

	refStep := func() {
		next := make([]float64, len(ref))
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					avg := (ref[idx(x-1, y, z)] + ref[idx(x+1, y, z)] +
						ref[idx(x, y-1, z)] + ref[idx(x, y+1, z)] +
						ref[idx(x, y, z-1)] + ref[idx(x, y, z+1)] +
						ref[idx(x, y, z)])
					next[idx(x, y, z)] = float64(float32(float32(avg) / 7))
				}
			}
		}
		ref = next
	}

	for s := 0; s < steps; s++ {
		dd.Step(1, jacobi)
		refStep()
	}

	var maxDiff float64
	for _, s := range dd.Subdomains() {
		for z := 0; z < s.Size.Z; z++ {
			for y := 0; y < s.Size.Y; y++ {
				for x := 0; x < s.Size.X; x++ {
					got := float64(s.Get(0, x, y, z))
					want := ref[idx(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z)]
					if d := math.Abs(got - want); d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	}
	// float32 rounding differences between the two accumulation orders stay
	// tiny over 5 steps.
	if maxDiff > 1e-5 {
		t.Errorf("distributed Jacobi diverged from serial reference by %g", maxDiff)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config validated")
	}
	if err := smallConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := smallConfig()
	bad.Radius = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero radius validated")
	}
}

func TestTraceExposed(t *testing.T) {
	cfg := smallConfig()
	cfg.TraceOps = true
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dd.Exchange(1)
	tr := dd.Trace()
	if len(tr) == 0 {
		t.Fatal("no trace records")
	}
	for _, op := range tr {
		if op.End < op.Start || op.Kind == "" {
			t.Errorf("bad trace op %+v", op)
		}
	}
	if dd.VirtualTime() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestGridDims(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dd.GridDims().Vol() != 6 {
		t.Errorf("grid = %v", dd.GridDims())
	}
	a := dd.Assignment(0)
	if len(a) != 6 {
		t.Errorf("assignment length %d", len(a))
	}
}
