package stencil

import (
	"strings"
	"testing"
)

func fillPattern(q, x, y, z int) float32 {
	return float32(q*1_000_000 + z*10_000 + y*100 + x)
}

func TestFillAndVerifyHalos(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dd.Fill(fillPattern)
	dd.Exchange(1)
	if bad, detail := dd.VerifyHalos(fillPattern); bad != 0 {
		t.Errorf("%d bad halo cells: %s", bad, detail)
	}
}

func TestVerifyHalosDetectsCorruption(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dd.Fill(fillPattern)
	dd.Exchange(1)
	// Corrupt one halo cell: VerifyHalos must notice.
	s := dd.Subdomains()[0]
	s.Set(0, -1, 0, 0, -12345)
	bad, detail := dd.VerifyHalos(fillPattern)
	if bad == 0 {
		t.Fatal("corruption not detected")
	}
	if !strings.Contains(detail, "got -12345") {
		t.Errorf("detail missing corrupted value: %s", detail)
	}
}

func TestFillVerifyOpenBoundary(t *testing.T) {
	cfg := smallConfig()
	cfg.OpenBoundary = true
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dd.Fill(fillPattern)
	dd.Exchange(1)
	if bad, detail := dd.VerifyHalos(fillPattern); bad != 0 {
		t.Errorf("open-boundary verification failed: %d bad (%s)", bad, detail)
	}
}

func TestForEachInterior(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := dd.Subdomains()[0]
	count := 0
	s.ForEachInterior(func(x, y, z int) { count++ })
	if count != s.Size.Vol() {
		t.Errorf("visited %d cells, want %d", count, s.Size.Vol())
	}
}

func TestTrafficPublicAPI(t *testing.T) {
	dd, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := dd.Traffic()
	if r.Total() <= 0 {
		t.Fatal("no traffic accounted")
	}
	if r.Bytes[TrafficNIC] != 0 {
		t.Error("single-node config reports NIC traffic")
	}
	if r.Bytes[TrafficNVLink] <= 0 {
		t.Error("no NVLink traffic in fully specialized single-node config")
	}
}
