// Quickstart: decompose a domain across one simulated Summit node, run a
// fully specialized halo exchange, and print what the library decided.
package main

import (
	"fmt"
	"log"

	stencil "github.com/nodeaware/stencil"
)

func main() {
	// A 1363^3 single-precision domain with four quantities and radius-2
	// halos — the paper's single-node workload — across six GPUs driven by
	// six MPI ranks.
	cfg := stencil.Config{
		Nodes:        1,
		RanksPerNode: 6,
		Domain:       stencil.Dim3{X: 1363, Y: 1363, Z: 1363},
		Radius:       2,
		Quantities:   4,
		Capabilities: stencil.CapsAll(), // +remote +colo +peer +kernel
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("domain %v decomposed into a %v subdomain grid\n",
		cfg.Domain, dd.GridDims())
	for _, s := range dd.Subdomains() {
		node, gpu := s.GPU()
		fmt.Printf("  subdomain %v: %v cells at %v -> node %d GPU %d (rank %d)\n",
			s.GlobalIndex(), s.Size, s.Origin, node, gpu, s.Rank())
	}

	fmt.Println("\ntransfer methods selected:")
	for method, count := range dd.MethodBreakdown() {
		fmt.Printf("  %-16v %4d directions\n", method, count)
	}

	stats := dd.Exchange(10)
	fmt.Printf("\nexchange time (max across ranks, min of %d iterations): %.3f ms\n",
		len(stats.Iterations), stats.Min()*1e3)
	fmt.Printf("bytes moved per exchange: %.1f MB\n", float64(stats.TotalBytes)/1e6)
}
