// Weakscaling: scale a cube domain with the GPU count (750^3 points per
// GPU, the paper's §IV-D protocol) and watch the exchange time flatten once
// off-node communication dominates, comparing the bottom and top of the
// specialization ladder.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	stencil "github.com/nodeaware/stencil"
)

// cubeEdge keeps ~750^3 points per GPU in an overall cube, the paper's
// weak-scaling protocol: round(750 * nGPUs^(1/3)).
func cubeEdge(nGPUs int) int {
	return int(math.Round(750 * math.Cbrt(float64(nGPUs))))
}

func main() {
	maxNodes := flag.Int("maxnodes", 8, "largest node count (paper: 256)")
	iters := flag.Int("iters", 3, "exchange iterations per configuration")
	flag.Parse()

	fmt.Printf("%-8s %-10s %-12s %-12s %s\n", "nodes", "GPUs", "domain", "+remote", "+kernel (fully specialized)")
	for nodes := 1; nodes <= *maxNodes; nodes *= 2 {
		edge := cubeEdge(nodes * 6)
		var times [2]float64
		for i, caps := range []stencil.Capabilities{stencil.CapsRemote(), stencil.CapsAll()} {
			dd, err := stencil.New(stencil.Config{
				Nodes:        nodes,
				RanksPerNode: 6,
				Domain:       stencil.Dim3{X: edge, Y: edge, Z: edge},
				Radius:       2,
				Quantities:   4,
				Capabilities: caps,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[i] = dd.Exchange(*iters).Min()
		}
		fmt.Printf("%-8d %-10d %-12s %9.3f ms %9.3f ms  (%.2fx)\n",
			nodes, nodes*6, fmt.Sprintf("%d^3", edge),
			times[0]*1e3, times[1]*1e3, times[0]/times[1])
	}
}
