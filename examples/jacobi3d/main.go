// Jacobi3D: a real 7-point Jacobi heat-diffusion solver running on the
// distributed domain with real data. Every step exchanges halos (with full
// communication specialization) and relaxes the grid; the distributed result
// is verified bit-for-bit structure against a serial reference grid.
//
// This is the workload class the paper's introduction motivates: an
// iterative finite-difference solver whose scalability is bounded by halo
// exchange.
package main

import (
	"fmt"
	"log"
	"math"

	stencil "github.com/nodeaware/stencil"
)

const (
	nx, ny, nz = 48, 48, 48
	steps      = 20
)

func initial(x, y, z int) float32 {
	// A hot sphere in the center of a cold box.
	dx, dy, dz := float64(x-nx/2), float64(y-ny/2), float64(z-nz/2)
	if dx*dx+dy*dy+dz*dz < 36 {
		return 100
	}
	return 0
}

func main() {
	cfg := stencil.Config{
		Nodes:        2,
		RanksPerNode: 6,
		Domain:       stencil.Dim3{X: nx, Y: ny, Z: nz},
		Radius:       1,
		Quantities:   2, // quantity 0: temperature; quantity 1: scratch
		Capabilities: stencil.CapsAll(),
		RealData:     true,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range dd.Subdomains() {
		forEach(s, func(x, y, z int) {
			s.Set(0, x, y, z, initial(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z))
		})
	}

	relax := func(s *stencil.Subdomain) {
		forEach(s, func(x, y, z int) {
			avg := (s.Get(0, x-1, y, z) + s.Get(0, x+1, y, z) +
				s.Get(0, x, y-1, z) + s.Get(0, x, y+1, z) +
				s.Get(0, x, y, z-1) + s.Get(0, x, y, z+1) +
				s.Get(0, x, y, z)) / 7
			s.Set(1, x, y, z, avg)
		})
		forEach(s, func(x, y, z int) { s.Set(0, x, y, z, s.Get(1, x, y, z)) })
	}

	stats := dd.Step(steps, relax)

	// Serial reference.
	ref := newRef()
	for i := 0; i < steps; i++ {
		ref = stepRef(ref)
	}

	var maxErr, total float64
	for _, s := range dd.Subdomains() {
		forEach(s, func(x, y, z int) {
			got := float64(s.Get(0, x, y, z))
			want := ref[idx(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z)]
			if d := math.Abs(got - want); d > maxErr {
				maxErr = d
			}
			total += got
		})
	}

	fmt.Printf("jacobi3d: %d steps of a %dx%dx%d grid over %d GPUs\n",
		steps, nx, ny, nz, dd.NumSubdomains())
	fmt.Printf("total heat %.2f (conserved up to rounding)\n", total)
	fmt.Printf("max abs deviation from serial reference: %.2e\n", maxErr)
	fmt.Printf("mean exchange time: %.3f ms\n", stats.Mean()*1e3)
	if maxErr > 1e-4 {
		log.Fatal("distributed solver diverged from reference")
	}
	fmt.Println("VERIFIED against serial reference")
}

func forEach(s *stencil.Subdomain, fn func(x, y, z int)) {
	for z := 0; z < s.Size.Z; z++ {
		for y := 0; y < s.Size.Y; y++ {
			for x := 0; x < s.Size.X; x++ {
				fn(x, y, z)
			}
		}
	}
}

func idx(x, y, z int) int {
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	return (wrap(z, nz)*ny+wrap(y, ny))*nx + wrap(x, nx)
}

func newRef() []float64 {
	ref := make([]float64, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				ref[idx(x, y, z)] = float64(initial(x, y, z))
			}
		}
	}
	return ref
}

func stepRef(ref []float64) []float64 {
	next := make([]float64, len(ref))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				sum := ref[idx(x-1, y, z)] + ref[idx(x+1, y, z)] +
					ref[idx(x, y-1, z)] + ref[idx(x, y+1, z)] +
					ref[idx(x, y, z-1)] + ref[idx(x, y, z+1)] +
					ref[idx(x, y, z)]
				// Match the distributed solver's float32 rounding.
				next[idx(x, y, z)] = float64(float32(float32(sum) / 7))
			}
		}
	}
	return next
}
