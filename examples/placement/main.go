// Placement: the paper's Fig 11 scenario. A 1440x1452x700 domain on one
// six-GPU node produces 720x484x700 subdomains — close to the worst-case
// aspect ratio — so different subdomain pairs exchange very different
// volumes. Node-aware placement puts the high-volume exchanges on NVLink
// pairs; the trivial linearized placement lands some of them on the
// cross-socket SMP bus.
package main

import (
	"fmt"
	"log"

	stencil "github.com/nodeaware/stencil"
)

func run(trivial bool) (*stencil.DistributedDomain, *stencil.Stats) {
	cfg := stencil.Config{
		Nodes:            1,
		RanksPerNode:     6,
		Domain:           stencil.Dim3{X: 1440, Y: 1452, Z: 700},
		Radius:           2,
		Quantities:       4,
		Capabilities:     stencil.CapsAll(),
		TrivialPlacement: trivial,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return dd, dd.Exchange(10)
}

func main() {
	aware, awareStats := run(false)
	_, trivialStats := run(true)

	fmt.Println("Fig 11 scenario: 1440x1452x700 on one node, 6 GPUs (720x484x700 subdomains)")
	fmt.Printf("\nnode-aware assignment (subdomain -> GPU): %v\n", aware.Assignment(0))
	fmt.Printf("QAP cost reduction vs trivial: %.1f%%\n", aware.PlacementImprovement(0)*100)

	a, t := awareStats.Min(), trivialStats.Min()
	fmt.Printf("\nexchange time, node-aware placement: %7.3f ms\n", a*1e3)
	fmt.Printf("exchange time, trivial placement:    %7.3f ms\n", t*1e3)
	fmt.Printf("speedup: %.2fx   (paper reports ~20%% / 1.20x)\n", t/a)
}
