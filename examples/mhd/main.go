// MHD-style multi-quantity transport: eight conserved fields (density,
// pressure, three velocity components, three magnetic-field components —
// the upper end of the 1-8 quantity range the paper surveys in §I) advected
// across a two-node cluster with first-order upwind differencing.
//
// With eight quantities every halo message is 8x the single-field size, so
// this workload emphasizes exchange bandwidth over message count. The
// distributed result is verified against a serial reference.
package main

import (
	"fmt"
	"log"
	"math"

	stencil "github.com/nodeaware/stencil"
)

const (
	n     = 24
	steps = 16
	nq    = 8
	cfl   = 0.4 // v*dt/dx per axis
)

func initial(q, x, y, z int) float32 {
	// Each field gets a distinct smooth pattern so cross-field mixups are
	// detectable.
	fx := float64(x) / n * 2 * math.Pi
	fy := float64(y) / n * 2 * math.Pi
	fz := float64(z) / n * 2 * math.Pi
	return float32(math.Sin(fx*float64(q%3+1)) + math.Cos(fy*float64(q%4+1)) + 0.5*math.Sin(fz+float64(q)))
}

// upwind advances one cell of one field by upwind advection with unit
// velocity along +x, +y, +z.
func upwind(get func(q, x, y, z int) float32, q, x, y, z int) float32 {
	u := float64(get(q, x, y, z))
	return float32(u - cfl*(u-float64(get(q, x-1, y, z))) -
		cfl*(u-float64(get(q, x, y-1, z))) -
		cfl*(u-float64(get(q, x, y, z-1))))
}

func main() {
	cfg := stencil.Config{
		Nodes:        2,
		RanksPerNode: 6,
		Domain:       stencil.Dim3{X: n, Y: n, Z: n},
		Radius:       1,
		Quantities:   nq + nq, // live fields plus scratch copies
		Capabilities: stencil.CapsAll(),
		RealData:     true,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range dd.Subdomains() {
		forEach(s, func(x, y, z int) {
			for q := 0; q < nq; q++ {
				s.Set(q, x, y, z, initial(q, s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z))
			}
		})
	}

	advect := func(s *stencil.Subdomain) {
		forEach(s, func(x, y, z int) {
			for q := 0; q < nq; q++ {
				s.Set(nq+q, x, y, z, upwind(s.Get, q, x, y, z))
			}
		})
		forEach(s, func(x, y, z int) {
			for q := 0; q < nq; q++ {
				s.Set(q, x, y, z, s.Get(nq+q, x, y, z))
			}
		})
	}

	stats := dd.Step(steps, advect)

	// Serial reference.
	ref := make([][]float32, nq)
	for q := range ref {
		ref[q] = make([]float32, n*n*n)
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					ref[q][idx(x, y, z)] = initial(q, x, y, z)
				}
			}
		}
	}
	get := func(q, x, y, z int) float32 { return ref[q][idx(x, y, z)] }
	for st := 0; st < steps; st++ {
		next := make([][]float32, nq)
		for q := range next {
			next[q] = make([]float32, n*n*n)
			for z := 0; z < n; z++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						next[q][idx(x, y, z)] = upwind(get, q, x, y, z)
					}
				}
			}
		}
		ref = next
	}

	var maxErr float64
	for _, s := range dd.Subdomains() {
		forEach(s, func(x, y, z int) {
			for q := 0; q < nq; q++ {
				got := float64(s.Get(q, x, y, z))
				want := float64(ref[q][idx(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z)])
				if d := math.Abs(got - want); d > maxErr {
					maxErr = d
				}
			}
		})
	}

	fmt.Printf("mhd: %d steps, %d conserved fields, %d^3 grid, %d GPUs on 2 nodes\n",
		steps, nq, n, dd.NumSubdomains())
	fmt.Printf("bytes per exchange: %.1f MB across %d transfer plans\n",
		float64(stats.TotalBytes)/1e6, totalPlans(stats))
	fmt.Printf("max abs deviation from serial reference: %.2e\n", maxErr)
	fmt.Printf("mean exchange time: %.3f ms\n", stats.Mean()*1e3)
	if maxErr > 1e-4 {
		log.Fatal("distributed transport diverged from reference")
	}
	fmt.Println("VERIFIED against serial reference")
}

func totalPlans(st *stencil.Stats) int {
	total := 0
	for _, c := range st.MethodCount {
		total += c
	}
	return total
}

func forEach(s *stencil.Subdomain, fn func(x, y, z int)) {
	for z := 0; z < s.Size.Z; z++ {
		for y := 0; y < s.Size.Y; y++ {
			for x := 0; x < s.Size.X; x++ {
				fn(x, y, z)
			}
		}
	}
}

func idx(x, y, z int) int {
	wrap := func(v, m int) int { return ((v % m) + m) % m }
	return (wrap(z, n)*n+wrap(y, n))*n + wrap(x, n)
}
