// Wave3D: seismic-style acoustic wave propagation with a higher-order
// stencil (radius 3, the typical radius in the paper's survey of stencil
// codes §I). Second-order time stepping needs three quantities: previous,
// current, and next wavefield. The wide halo makes face messages 3x larger
// than a radius-1 code, stressing the exchange differently than jacobi3d.
//
// The distributed run is verified against a serial reference.
package main

import (
	"fmt"
	"log"
	"math"

	stencil "github.com/nodeaware/stencil"
)

const (
	n     = 36 // cubical grid edge
	steps = 12
	r     = 3    // stencil radius
	c2dt2 = 0.05 // c^2 * dt^2 / dx^2, well under the CFL limit
)

// 6th-order central difference coefficients for the 1D Laplacian.
var lap = [r + 1]float64{-49.0 / 18, 1.5, -3.0 / 20, 1.0 / 90}

func initial(x, y, z int) float32 {
	// A Gaussian pulse off-center.
	dx, dy, dz := float64(x-n/3), float64(y-n/2), float64(z-n/2)
	return float32(math.Exp(-(dx*dx + dy*dy + dz*dz) / 12))
}

func main() {
	cfg := stencil.Config{
		Nodes:        1,
		RanksPerNode: 6,
		Domain:       stencil.Dim3{X: n, Y: n, Z: n},
		Radius:       r,
		Quantities:   3, // 0: u(t-1), 1: u(t), 2: u(t+1)
		Capabilities: stencil.CapsAll(),
		RealData:     true,
	}
	dd, err := stencil.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range dd.Subdomains() {
		forEach(s, func(x, y, z int) {
			v := initial(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z)
			s.Set(0, x, y, z, v) // u(t-1) = u(t): starts at rest
			s.Set(1, x, y, z, v)
		})
	}

	step := func(s *stencil.Subdomain) {
		forEach(s, func(x, y, z int) {
			var l float64
			l = 3 * lap[0] * float64(s.Get(1, x, y, z))
			for k := 1; k <= r; k++ {
				l += lap[k] * float64(s.Get(1, x-k, y, z)+s.Get(1, x+k, y, z)+
					s.Get(1, x, y-k, z)+s.Get(1, x, y+k, z)+
					s.Get(1, x, y, z-k)+s.Get(1, x, y, z+k))
			}
			next := 2*float64(s.Get(1, x, y, z)) - float64(s.Get(0, x, y, z)) + c2dt2*l
			s.Set(2, x, y, z, float32(next))
		})
		// Rotate time levels: u(t-1) <- u(t), u(t) <- u(t+1).
		forEach(s, func(x, y, z int) {
			s.Set(0, x, y, z, s.Get(1, x, y, z))
			s.Set(1, x, y, z, s.Get(2, x, y, z))
		})
	}

	stats := dd.Step(steps, step)

	// Serial reference with identical float32 rounding.
	prev, cur := newGrid(), newGrid()
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := initial(x, y, z)
				prev[idx(x, y, z)] = v
				cur[idx(x, y, z)] = v
			}
		}
	}
	for s := 0; s < steps; s++ {
		prev, cur = cur, refStep(prev, cur)
	}

	var maxErr float64
	var energy float64
	for _, s := range dd.Subdomains() {
		forEach(s, func(x, y, z int) {
			got := float64(s.Get(1, x, y, z))
			want := float64(cur[idx(s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z)])
			if d := math.Abs(got - want); d > maxErr {
				maxErr = d
			}
			energy += got * got
		})
	}
	fmt.Printf("wave3d: %d steps, radius-%d stencil, %d^3 grid, %d GPUs\n", steps, r, n, dd.NumSubdomains())
	fmt.Printf("wavefield energy: %.4f\n", energy)
	fmt.Printf("max abs deviation from serial reference: %.2e\n", maxErr)
	fmt.Printf("mean exchange time: %.3f ms (halo width %d)\n", stats.Mean()*1e3, r)
	if maxErr > 1e-4 {
		log.Fatal("distributed wave solver diverged from reference")
	}
	fmt.Println("VERIFIED against serial reference")
}

func forEach(s *stencil.Subdomain, fn func(x, y, z int)) {
	for z := 0; z < s.Size.Z; z++ {
		for y := 0; y < s.Size.Y; y++ {
			for x := 0; x < s.Size.X; x++ {
				fn(x, y, z)
			}
		}
	}
}

func idx(x, y, z int) int {
	wrap := func(v, m int) int { return ((v % m) + m) % m }
	return (wrap(z, n)*n+wrap(y, n))*n + wrap(x, n)
}

func newGrid() []float32 { return make([]float32, n*n*n) }

func refStep(prev, cur []float32) []float32 {
	next := newGrid()
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				var l float64
				l = 3 * lap[0] * float64(cur[idx(x, y, z)])
				for k := 1; k <= r; k++ {
					l += lap[k] * float64(cur[idx(x-k, y, z)]+cur[idx(x+k, y, z)]+
						cur[idx(x, y-k, z)]+cur[idx(x, y+k, z)]+
						cur[idx(x, y, z-k)]+cur[idx(x, y, z+k)])
				}
				nv := 2*float64(cur[idx(x, y, z)]) - float64(prev[idx(x, y, z)]) + c2dt2*l
				next[idx(x, y, z)] = float32(nv)
			}
		}
	}
	return next
}
