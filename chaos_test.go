package stencil

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file is the headline acceptance test for the recovery layer: after an
// arbitrary schedule of permanent GPU/rank kills, the recovered run's final
// halos must be byte-identical to a fault-free run of the same iteration
// count, and the recovery telemetry must be deterministic — bit-identical
// virtual times across reruns and across payload worker counts.

const chaosIters = 6

// chaosCfg is the chaos job: 2 nodes x 2 ranks/node (12 GPUs, 3 per rank),
// all capabilities, real data so byte-identity is checkable, the adaptive
// monitor on (recovery must coexist with it), checkpoints every 2 iterations.
func chaosCfg(workers int) Config {
	return Config{
		Nodes:           2,
		RanksPerNode:    2,
		Domain:          Dim3{X: 24, Y: 24, Z: 12},
		Radius:          1,
		Quantities:      2,
		Capabilities:    CapsAll(),
		RealData:        true,
		Adaptive:        true,
		CheckpointEvery: 2,
		Workers:         workers,
	}
}

func chaosFill(q, x, y, z int) float32 { return float32(q*1000000 + z*10000 + y*100 + x) }

// chaosSchedule derives a random-but-reproducible kill schedule from seed:
// one or two permanent losses (GPU or whole rank), each at a fraction of the
// healthy run's total virtual time so every kill lands mid-run.
func chaosSchedule(t *testing.T, seed int64) (*FaultScenario, string) {
	t.Helper()
	probe, err := New(chaosCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	probe.Fill(chaosFill)
	probe.Exchange(chaosIters)
	span := float64(probe.VirtualTime())

	rng := rand.New(rand.NewSource(seed))
	sc := &FaultScenario{Name: fmt.Sprintf("chaos-%d", seed)}
	var desc []string
	kills := 1 + rng.Intn(2)
	for k := 0; k < kills; k++ {
		at := span * (0.2 + 0.55*rng.Float64())
		if rng.Intn(2) == 0 {
			node, gpu := rng.Intn(2), rng.Intn(6)
			sc.KillGPU(at, node, gpu)
			desc = append(desc, fmt.Sprintf("gpu %d:%d@%.3gs", node, gpu, at))
		} else {
			rank := rng.Intn(4)
			sc.KillRank(at, rank)
			desc = append(desc, fmt.Sprintf("rank %d@%.3gs", rank, at))
		}
	}
	return sc, strings.Join(desc, ", ")
}

// chaosRun executes one recovered run and returns the domain, its stats, and
// its telemetry.
func chaosRun(t *testing.T, seed int64, workers int) (*DistributedDomain, *Stats, *Telemetry) {
	t.Helper()
	sc, desc := chaosSchedule(t, seed)
	cfg := chaosCfg(workers)
	cfg.Fault = sc
	cfg.Telemetry = NewTelemetry()
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seed %d: kill schedule: %s", seed, desc)
	dd.Fill(chaosFill)
	stats := dd.Exchange(chaosIters)
	return dd, stats, cfg.Telemetry
}

// spanFingerprint renders every span as name@[start,end] in end order —
// the determinism oracle for recovery timing.
func spanFingerprint(tel *Telemetry) string {
	var b strings.Builder
	for _, s := range tel.Spans() {
		fmt.Fprintf(&b, "%s@[%x,%x]\n", s.Name, s.Start, s.End)
	}
	return b.String()
}

func eventBytes(t *testing.T, tel *Telemetry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tel.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosRecovery fuzzes permanent-loss schedules (fixed seeds so CI can
// shard them) and asserts the recovery contract: byte-identical halos versus
// a fault-free run, a coherent recovery timeline, and bit-identical virtual
// times across reruns and across payload worker counts.
func TestChaosRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dd, stats, tel := chaosRun(t, seed, 0)

			// Headline correctness: final halos byte-identical to fault-free.
			if bad, detail := dd.VerifyHalos(chaosFill); bad != 0 {
				t.Errorf("%d bad halo cells after recovery: %s", bad, detail)
			}

			// The schedule really fired and really recovered.
			fatal := 0
			for _, r := range dd.FaultLog() {
				if r.Kind == "gpu-fail" || r.Kind == "rank-fail" {
					fatal++
				}
			}
			if fatal == 0 {
				t.Fatal("no fatal fault applied; chaos schedule is vacuous")
			}
			if stats.Rollbacks == 0 {
				t.Fatal("no rollback performed")
			}
			if stats.Checkpoints == 0 {
				t.Fatal("no checkpoint taken")
			}
			kinds := map[string]int{}
			for _, r := range dd.RecoveryLog() {
				kinds[r.Kind]++
			}
			for _, k := range []string{"checkpoint", "failure", "rollback", "resume"} {
				if kinds[k] == 0 {
					t.Errorf("recovery log has no %q record: %v", k, dd.RecoveryLog())
				}
			}

			// Telemetry spans match the recovery log.
			spans := map[string]int{}
			for _, s := range tel.Spans() {
				spans[s.Name]++
			}
			if spans["checkpoint"] != stats.Checkpoints {
				t.Errorf("%d checkpoint spans, stats say %d", spans["checkpoint"], stats.Checkpoints)
			}
			if spans["rollback"] != stats.Rollbacks {
				t.Errorf("%d rollback spans, stats say %d", spans["rollback"], stats.Rollbacks)
			}
			if stats.MigratedSubs > 0 && spans["migrate"] == 0 {
				t.Error("subdomains migrated but no migrate span")
			}

			// Bit-identical timing across a rerun and across worker counts.
			want, wantEv := spanFingerprint(tel), eventBytes(t, tel)
			for _, workers := range []int{0, 3} {
				dd2, _, tel2 := chaosRun(t, seed, workers)
				if got := spanFingerprint(tel2); got != want {
					t.Errorf("workers=%d: span fingerprint differs from first run", workers)
				}
				if got := eventBytes(t, tel2); !bytes.Equal(got, wantEv) {
					t.Errorf("workers=%d: event log differs from first run", workers)
				}
				if bad, _ := dd2.VerifyHalos(chaosFill); bad != 0 {
					t.Errorf("workers=%d: %d bad halo cells", workers, bad)
				}
			}
		})
	}
}

// chaosLossyRun layers a lossy, corrupting network (drop/corrupt/dup 0.2 on
// every node's NIC) on top of the fuzzed permanent-loss schedule, with a tight
// retransmission budget so some deliveries exhaust the attempt cap and the
// end-to-end verification layer has to repair them.
func chaosLossyRun(t *testing.T, seed int64, workers int) (*DistributedDomain, *Stats, *Telemetry) {
	t.Helper()
	sc, desc := chaosSchedule(t, seed)
	sc.Seed = uint64(seed)
	for n := 0; n < 2; n++ {
		sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
	}
	cfg := chaosCfg(workers)
	cfg.Fault = sc
	cfg.SendRetries = 2
	cfg.Telemetry = NewTelemetry()
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seed %d: lossy chaos, kill schedule: %s", seed, desc)
	dd.Fill(chaosFill)
	stats := dd.Exchange(chaosIters)
	return dd, stats, cfg.Telemetry
}

// TestChaosLossy is the headline acceptance test for the delivery-fault layer:
// every inter-node link drops, corrupts, and duplicates messages at p=0.2
// while GPUs and ranks die permanently, yet the final halos are byte-identical
// to a fault-free run, no corrupted quadrant survives, and the whole run —
// protocol counters, spans, event log — is bit-identical across reruns and
// payload worker counts.
func TestChaosLossy(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, stats, tel := chaosRunLossyChecked(t, seed)

			want, wantEv := spanFingerprint(tel), eventBytes(t, tel)
			for _, workers := range []int{0, 3} {
				dd2, stats2, tel2 := chaosLossyRun(t, seed, workers)
				if stats2.Delivery != stats.Delivery {
					t.Errorf("workers=%d: protocol counters differ: %+v vs %+v",
						workers, stats2.Delivery, stats.Delivery)
				}
				if got := spanFingerprint(tel2); got != want {
					t.Errorf("workers=%d: span fingerprint differs from first run", workers)
				}
				if got := eventBytes(t, tel2); !bytes.Equal(got, wantEv) {
					t.Errorf("workers=%d: event log differs from first run", workers)
				}
				if bad, _ := dd2.VerifyHalos(chaosFill); bad != 0 {
					t.Errorf("workers=%d: %d bad halo cells", workers, bad)
				}
			}
		})
	}
}

// chaosRunLossyChecked runs the first lossy chaos run of a seed and asserts
// the scenario exercised everything it promises.
func chaosRunLossyChecked(t *testing.T, seed int64) (*DistributedDomain, *Stats, *Telemetry) {
	t.Helper()
	dd, stats, tel := chaosLossyRun(t, seed, 0)

	// Zero corrupted quadrants survive: halos byte-identical to fault-free.
	if bad, detail := dd.VerifyHalos(chaosFill); bad != 0 {
		t.Errorf("%d bad halo cells after lossy chaos: %s", bad, detail)
	}

	// Both fault families really fired.
	fatal := 0
	for _, r := range dd.FaultLog() {
		if r.Kind == "gpu-fail" || r.Kind == "rank-fail" {
			fatal++
		}
	}
	if fatal == 0 {
		t.Fatal("no fatal fault applied; chaos schedule is vacuous")
	}
	d := stats.Delivery
	if d.Drops == 0 || d.Corrupts == 0 || d.Dups == 0 {
		t.Fatalf("delivery faults not exercised: %+v", d)
	}
	if d.Retransmits == 0 {
		t.Error("no retransmissions under 20%% loss")
	}
	if d.Exhausted > 0 && stats.ReExchanges == 0 && stats.ForcedRepairs == 0 {
		t.Errorf("deliveries landed compromised (%d) but verification repaired nothing", d.Exhausted)
	}
	if stats.Rollbacks == 0 {
		t.Error("no rollback performed despite fatal kills")
	}
	return dd, stats, tel
}

// TestChaosLossyCompute combines delivery faults with interleaved compute:
// the coordinator's end-to-end verification checksums send regions at the
// safe point, so compute kernels (which mutate those regions) are gated on
// the safe-point barrier until verification completes — otherwise the scan
// compares post-compute send regions against pre-compute halos and
// re-exchanges post-compute bytes into neighbor halos mid-iteration. The
// oracle is exact: the whole domain — every interior cell AND every halo
// cell — must end byte-identical to a fault-free run of the same compute
// schedule, across payload worker counts.
func TestChaosLossyCompute(t *testing.T) {
	inc := func(s *Subdomain) {
		s.ForEachInterior(func(x, y, z int) {
			for q := 0; q < 2; q++ {
				s.Set(q, x, y, z, s.Get(q, x, y, z)+1)
			}
		})
	}
	run := func(lossy bool, workers int) (*DistributedDomain, *Stats) {
		cfg := chaosCfg(workers)
		cfg.CheckpointEvery = 0 // plain loop: delivery faults only, no recovery machinery
		if lossy {
			sc := &FaultScenario{Name: "lossy-compute", Seed: 13}
			for n := 0; n < 2; n++ {
				sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
			}
			cfg.Fault = sc
			cfg.SendRetries = 2
		}
		dd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dd.Fill(chaosFill)
		return dd, dd.Step(chaosIters, inc)
	}
	fingerprints := func(dd *DistributedDomain) []uint64 {
		fp := make([]uint64, 0, dd.NumSubdomains())
		for _, s := range dd.Subdomains() {
			fp = append(fp, s.sub.Dom.Fingerprint())
		}
		return fp
	}

	ref, _ := run(false, 0)
	want := fingerprints(ref)

	dd, stats := run(true, 0)
	d := stats.Delivery
	if d.Drops == 0 || d.Corrupts == 0 || d.Dups == 0 {
		t.Fatalf("delivery faults not exercised: %+v", d)
	}
	if d.Exhausted > 0 && stats.ReExchanges == 0 && stats.ForcedRepairs == 0 {
		t.Errorf("deliveries landed compromised (%d) but verification repaired nothing", d.Exhausted)
	}
	check := func(dd *DistributedDomain, label string) {
		got := fingerprints(dd)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: sub %v domain bytes diverge from the fault-free run",
					label, dd.Subdomains()[i].GlobalIndex())
			}
		}
	}
	check(dd, "workers=0")

	dd2, stats2 := run(true, 3)
	if stats2.Delivery != stats.Delivery {
		t.Errorf("workers=3: protocol counters differ: %+v vs %+v", stats2.Delivery, stats.Delivery)
	}
	check(dd2, "workers=3")
}

// TestChaosRecoveryCompute runs exchange+compute under a rank kill and
// checks that rollback replay neither loses nor double-applies compute: every
// interior cell must end at fill + steps exactly.
func TestChaosRecoveryCompute(t *testing.T) {
	sc := (&FaultScenario{Name: "compute-kill"})
	cfg := chaosCfg(0)
	cfg.Fault = sc
	// Time the kill off the healthy run so it lands mid-run.
	probe, err := New(chaosCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	probe.Fill(chaosFill)
	probe.Step(chaosIters, func(s *Subdomain) {
		s.ForEachInterior(func(x, y, z int) {
			for q := 0; q < 2; q++ {
				s.Set(q, x, y, z, s.Get(q, x, y, z)+1)
			}
		})
	})
	sc.KillRank(float64(probe.VirtualTime())*0.45, 1)

	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dd.Fill(chaosFill)
	stats := dd.Step(chaosIters, func(s *Subdomain) {
		s.ForEachInterior(func(x, y, z int) {
			for q := 0; q < 2; q++ {
				s.Set(q, x, y, z, s.Get(q, x, y, z)+1)
			}
		})
	})
	if stats.Rollbacks == 0 {
		t.Fatal("no rollback performed")
	}
	bad := 0
	for _, s := range dd.Subdomains() {
		s := s
		s.ForEachInterior(func(x, y, z int) {
			for q := 0; q < 2; q++ {
				want := chaosFill(q, s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z) + chaosIters
				if got := s.Get(q, x, y, z); got != want {
					if bad < 3 {
						t.Errorf("sub %v q%d (%d,%d,%d): got %g want %g",
							s.GlobalIndex(), q, x, y, z, got, want)
					}
					bad++
				}
			}
		})
	}
	if bad > 0 {
		t.Errorf("%d interior cells wrong after recovered compute replay", bad)
	}
}
