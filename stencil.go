// Package stencil is a node-aware 3D stencil halo-exchange library for
// heterogeneous (multi-socket, multi-GPU) clusters, reproducing "Node-Aware
// Stencil Communication for Heterogeneous Supercomputers" (IPPS 2020) on a
// simulated hardware substrate.
//
// A DistributedDomain runs the paper's three-phase setup automatically:
//
//  1. Partitioning — hierarchical prime-factor recursive bisection,
//     first across nodes, then across the GPUs of each node, minimizing
//     surface-to-volume ratio at the slow links first.
//  2. Placement — per-node quadratic-assignment of subdomains to GPUs,
//     matching exchange volume to discovered link bandwidth.
//  3. Specialization — per-neighbor selection of the fastest applicable
//     transfer method (KERNEL, PEERMEMCPY, COLOCATEDMEMCPY, CUDAAWAREMPI,
//     STAGED).
//
// Because no CUDA devices or MPI launchers exist in this environment, the
// library executes on a deterministic discrete-event simulation of a
// Summit-like cluster (see internal/machine). Exchanges move real bytes when
// Config.RealData is set, so numerical results are bit-exact verifiable,
// and every operation advances a virtual clock calibrated to the paper's
// platform, so the performance characteristics are reproducible.
package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/nodeaware/stencil/internal/exchange"
	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// Dim3 is a 3D extent or index.
type Dim3 = part.Dim3

// Capabilities selects which transfer methods the library may use, mirroring
// the paper's "+remote/+colo/+peer/+kernel" ladder. The zero value enables
// only remote (MPI) transfers.
type Capabilities = exchange.Capabilities

// Capability ladder constructors.
var (
	CapsRemote = exchange.CapsRemote
	CapsColo   = exchange.CapsColo
	CapsPeer   = exchange.CapsPeer
	CapsAll    = exchange.CapsAll
)

// Method identifies a transfer method in statistics.
type Method = exchange.Method

// Exported method constants.
const (
	MethodKernel    = exchange.MethodKernel
	MethodPeer      = exchange.MethodPeer
	MethodColocated = exchange.MethodColocated
	MethodCudaAware = exchange.MethodCudaAware
	MethodStaged    = exchange.MethodStaged
)

// Stats reports measured exchange times and the method breakdown.
type Stats = exchange.Stats

// FaultScenario is a scripted, deterministic fault schedule: link failures
// and degradations, NIC flaps, GPU stragglers, rank pauses, each at a fixed
// virtual time. Build one with the fluent helpers (KillNVLink, FlapNIC,
// DegradeNIC, StraggleGPU, PauseRank, ...) and pass it as Config.Fault.
type FaultScenario = fault.Scenario

// FaultEvent, FaultTarget, and FaultRecord expose the scenario building
// blocks and the applied-fault timeline.
type (
	FaultEvent  = fault.Event
	FaultTarget = fault.Target
	FaultRecord = fault.Record
)

// AdaptRecord is one adaptation decision (a method switch or re-placement).
type AdaptRecord = exchange.AdaptRecord

// RecoveryRecord is one checkpoint/rollback/migration action of the
// recovery layer; see Config.CheckpointEvery and RecoveryLog.
type RecoveryRecord = exchange.RecoveryRecord

// Telemetry is a unified virtual-time observability recorder: counters,
// gauges, histograms, per-link utilization tracks, hierarchical phase spans,
// and a structured event log, all keyed by simulated time and exportable as
// Prometheus text, a JSON snapshot, or NDJSON events (see internal/telemetry).
// Create one with NewTelemetry, attach it via Config.Telemetry, and read it
// after the run. Attaching telemetry never changes simulated times.
type Telemetry = telemetry.Recorder

// NewTelemetry returns an empty recorder ready to attach to a Config.
func NewTelemetry() *Telemetry { return telemetry.New() }

// PlanInfo is an inspection snapshot of one transfer plan.
type PlanInfo = exchange.PlanInfo

// Config describes a distributed stencil job.
type Config struct {
	// Nodes and RanksPerNode shape the job; every node has six GPUs in the
	// default (Summit) node configuration. RanksPerNode must divide the
	// GPUs per node.
	Nodes        int
	RanksPerNode int

	// Domain is the global grid extent; Radius the stencil radius;
	// Quantities the number of grid quantities (e.g. 4 for a fluid code).
	Domain     Dim3
	Radius     int
	Quantities int

	// ElemSize is the bytes per value; 0 defaults to 4 (single precision).
	ElemSize int

	// Capabilities gates the transfer methods; use CapsAll() for the fully
	// specialized exchange.
	Capabilities Capabilities

	// CUDAAware routes remote messages through CUDA-aware MPI instead of
	// staging through the host.
	CUDAAware bool

	// TrivialPlacement disables the node-aware QAP placement (the Fig 11
	// baseline). Default (false) is node-aware.
	TrivialPlacement bool

	// RealData allocates backing memory and moves real bytes; required for
	// numeric verification, affordable only for small domains.
	RealData bool

	// FaceOnly exchanges only the six face neighbors (Fig 1(a) stencils).
	FaceOnly bool

	// Neighborhood selects the exchanged direction set by count: 0 or 26 for
	// the full neighborhood, 6 for faces only (Fig 1(a)), 18 for faces plus
	// planar diagonals (Fig 1(b)).
	Neighborhood int

	// OpenBoundary disables periodic wrap-around: subdomains at the domain
	// edge have no neighbor there and their outer halos are left untouched
	// (suitable for Dirichlet/Neumann conditions applied by the
	// application).
	OpenBoundary bool

	// AggregateRemote combines each rank pair's inter-node STAGED messages
	// into a single MPI message per exchange (fewer, larger messages).
	AggregateRemote bool

	// NoOverlap serializes all transfers (ablation of the §III-D overlap
	// machinery).
	NoOverlap bool

	// Overlap enables compute/communication overlap via persistent exchange
	// plans: interior compute runs while halos are in flight, and each
	// subdomain's border update is gated per-quadrant on the verified
	// arrival of exactly the halos it reads, replacing the global
	// verification barrier. Final domain bytes are identical to a
	// non-overlapped run. Incompatible with NoOverlap, AggregateRemote,
	// AdaptPlacement, and CUDAAware.
	Overlap bool

	// Preempt, when set, is polled between iterations; when it returns true
	// the run stops early at the next iteration boundary (see Preempted).
	// Used for cooperative job cancellation; not serialized by jobspec.
	Preempt func() bool

	// EmpiricalPlacement drives the QAP with a congestion-aware bandwidth
	// measurement pass instead of the vendor topology query.
	EmpiricalPlacement bool

	// FairnessHorizon bounds bandwidth-rebalance propagation in the flow
	// network: 0 = automatic (exact up to 32 nodes), negative = force
	// exact, positive = explicit hop bound.
	FairnessHorizon int

	// NodeConfig and Params override the simulated hardware; nil uses the
	// Summit node and the calibrated default cost model.
	NodeConfig *machine.NodeConfig
	Params     *machine.Params

	// PresetPlacement injects a cached phase-2 placement (one subdomain→GPU
	// permutation per node, as returned by Assignment(n)), skipping the QAP
	// solve. The solver is deterministic, so a preset recorded from an
	// identical configuration reproduces that run bit-exactly; stencilserve
	// uses this to share setup work across jobs that differ only in
	// scenario or run length. Nil computes placement normally.
	PresetPlacement [][]int

	// TraceOps records a timeline of every simulated CUDA operation.
	TraceOps bool

	// Fault installs a deterministic fault/degradation scenario on the
	// virtual clock; see FaultScenario. Nil disables injection.
	Fault *FaultScenario

	// Adaptive enables degradation-aware re-specialization: a health
	// monitor observes link state between iterations and re-runs phase-3
	// method selection for plans whose path failed or degraded, promoting
	// them back on recovery.
	Adaptive bool

	// AdaptThreshold is the link-health fraction below which a link counts
	// as degraded (0 defaults to 0.5); AdaptCheckEvery runs the monitor
	// every N iterations (0 defaults to 1).
	AdaptThreshold  float64
	AdaptCheckEvery int

	// AdaptPlacement additionally re-runs phase-2 placement against the
	// degraded bandwidth matrix when a node's degradation persists for
	// AdaptPersistTicks monitor ticks (0 defaults to 3), migrating
	// subdomains whose GPU changes. Requires Adaptive; incompatible with
	// AggregateRemote.
	AdaptPlacement    bool
	AdaptPersistTicks int

	// CheckpointEvery > 0 snapshots every subdomain to host memory every K
	// iterations (and once before the first) as real D2H traffic, and
	// enables recovery from permanent GPU/rank loss (Fault scenarios with
	// KillGPU/KillRank): on detection, every surviving rank rolls back to
	// the last checkpoint, lost subdomains migrate to surviving GPUs, and
	// the run replays — final results are byte-identical to a fault-free
	// run. Required when the scenario contains fatal events. 0 disables.
	CheckpointEvery int

	// SendTimeout (seconds of virtual time) enables MPI-level retry: a
	// wire transfer still in flight after the timeout is aborted and
	// re-sent, up to SendRetries attempts (0 defaults to 8). 0 disables.
	SendTimeout float64
	SendRetries int

	// Reliable forces the MPI reliable-delivery envelope for inter-node
	// messages (per-message checksums, sequence numbers, receiver dedup,
	// ACK/NACK with capped exponential-backoff retransmission) even on a
	// clean network. A Fault scenario containing delivery faults
	// (DropMsgs/CorruptMsgs/DupMsgs/LossyNIC) arms it automatically.
	Reliable bool

	// VerifyExchange enables end-to-end halo verification: per-quadrant
	// checksums compared across the inter-node wire after each exchange,
	// with damaged quadrants selectively re-exchanged. Auto-enabled when the
	// Fault scenario schedules delivery faults; meaningful with RealData.
	VerifyExchange bool

	// QuarantineTicks is the clean-window hysteresis of link quarantine:
	// a link whose health score (EWMA of fault and flap indicators) crosses
	// the enter threshold is excluded from method selection until this many
	// consecutive clean monitor ticks pass (0 defaults to 5), so a flapping
	// link cannot thrash plans. Active with Adaptive when the scenario
	// contains delivery or flap faults, or when set explicitly.
	QuarantineTicks int

	// Telemetry, when set, records metrics, link-utilization samples, phase
	// spans, and a structured event log for the whole job; see NewTelemetry.
	Telemetry *Telemetry

	// Workers runs the engine's deferred payloads (real byte copies) on N
	// goroutines; 0 keeps the simulation sequential. Results — including
	// telemetry output — are bit-identical either way.
	Workers int
}

// DistributedDomain is a stencil domain decomposed across a simulated
// multi-GPU cluster, ready to exchange halos.
type DistributedDomain struct {
	ex   *exchange.Exchanger
	cfg  Config
	subs []*Subdomain
}

// New partitions, places, and specializes the domain per the configuration.
func New(cfg Config) (*DistributedDomain, error) {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4
	}
	ex, err := exchange.New(exchange.Options{
		Nodes:              cfg.Nodes,
		RanksPerNode:       cfg.RanksPerNode,
		Domain:             cfg.Domain,
		Radius:             cfg.Radius,
		Quantities:         cfg.Quantities,
		ElemSize:           cfg.ElemSize,
		Caps:               cfg.Capabilities,
		CUDAAware:          cfg.CUDAAware,
		NodeAware:          !cfg.TrivialPlacement,
		RealData:           cfg.RealData,
		FaceOnly:           cfg.FaceOnly,
		Neighborhood:       cfg.Neighborhood,
		OpenBoundary:       cfg.OpenBoundary,
		AggregateRemote:    cfg.AggregateRemote,
		NoOverlap:          cfg.NoOverlap,
		Overlap:            cfg.Overlap,
		Preempt:            cfg.Preempt,
		EmpiricalPlacement: cfg.EmpiricalPlacement,
		FairnessHorizon:    cfg.FairnessHorizon,
		NodeConfig:         cfg.NodeConfig,
		Params:             cfg.Params,
		PresetPlacement:    cfg.PresetPlacement,
		TraceOps:           cfg.TraceOps,
		Fault:              cfg.Fault,
		Adaptive:           cfg.Adaptive,
		AdaptThreshold:     cfg.AdaptThreshold,
		AdaptCheckEvery:    cfg.AdaptCheckEvery,
		AdaptPlacement:     cfg.AdaptPlacement,
		AdaptPersistTicks:  cfg.AdaptPersistTicks,
		CheckpointEvery:    cfg.CheckpointEvery,
		SendTimeout:        sim.Time(cfg.SendTimeout),
		SendRetries:        cfg.SendRetries,
		Reliable:           cfg.Reliable,
		VerifyExchange:     cfg.VerifyExchange,
		QuarantineTicks:    cfg.QuarantineTicks,
		Telemetry:          cfg.Telemetry,
		Workers:            cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	dd := &DistributedDomain{ex: ex, cfg: cfg}
	for _, s := range ex.Subs {
		origin, size := ex.Hier.Subdomain(s.NodeIdx, s.GPUIdx)
		dd.subs = append(dd.subs, &Subdomain{sub: s, Origin: origin, Size: size, dd: dd})
	}
	return dd, nil
}

// Exchange performs the given number of halo exchanges and returns the
// measured statistics (max-across-ranks time per iteration, as the paper
// reports).
func (dd *DistributedDomain) Exchange(iterations int) *Stats {
	return dd.ex.Run(iterations)
}

// Subdomains returns the per-GPU subdomains in deterministic order.
func (dd *DistributedDomain) Subdomains() []*Subdomain { return dd.subs }

// NumSubdomains returns the total subdomain (= GPU) count.
func (dd *DistributedDomain) NumSubdomains() int { return len(dd.subs) }

// GridDims returns the global subdomain grid.
func (dd *DistributedDomain) GridDims() Dim3 { return dd.ex.Hier.GlobalDims() }

// PlacementImprovement returns the relative reduction in the QAP objective
// achieved by the chosen placement versus the trivial linearized baseline on
// the given node (e.g. 0.19 for a 19% cost reduction).
func (dd *DistributedDomain) PlacementImprovement(node int) float64 {
	return dd.ex.PlacementImprovement(node)
}

// Assignment returns the subdomain→GPU mapping chosen for the given node.
func (dd *DistributedDomain) Assignment(node int) []int {
	out := make([]int, len(dd.ex.Assignments[node].SubToGPU))
	copy(out, dd.ex.Assignments[node].SubToGPU)
	return out
}

// MethodBreakdown returns how many of the per-direction transfer plans use
// each method. Called before an Exchange it reflects the setup-time
// selection; called after, any adaptive re-specialization.
func (dd *DistributedDomain) MethodBreakdown() map[Method]int {
	return dd.ex.MethodCounts()
}

// PlanInfos snapshots every transfer plan: endpoints, method, bytes, and
// traffic class. The method column reflects any adaptation so far.
func (dd *DistributedDomain) PlanInfos() []PlanInfo { return dd.ex.PlanInfos() }

// AdaptLog returns the adaptation timeline recorded so far (method switches
// and re-placements); empty unless Config.Adaptive.
func (dd *DistributedDomain) AdaptLog() []AdaptRecord { return dd.ex.AdaptLog }

// RecoveryLog returns the recovery timeline (checkpoints, detected
// failures, rollbacks, migrations, resumes); empty unless
// Config.CheckpointEvery > 0.
func (dd *DistributedDomain) RecoveryLog() []RecoveryRecord { return dd.ex.RecoveryLog }

// FaultLog returns the applied-fault timeline; empty unless Config.Fault.
func (dd *DistributedDomain) FaultLog() []FaultRecord {
	if dd.ex.Faults == nil {
		return nil
	}
	return dd.ex.Faults.Log()
}

// Trace returns the recorded operation timeline (Config.TraceOps).
func (dd *DistributedDomain) Trace() []TraceOp {
	var out []TraceOp
	for _, r := range dd.ex.Trace {
		out = append(out, TraceOp{
			Name: r.Name, Kind: r.Kind.String(), Device: r.Device,
			Stream: r.Stream, Start: r.Start, End: r.End, Bytes: r.Bytes,
		})
	}
	return out
}

// TraceOp is one simulated GPU operation in a recorded timeline.
type TraceOp struct {
	Name   string
	Kind   string
	Device int
	Stream string
	Start  float64
	End    float64
	Bytes  int64
}

// Subdomain exposes one GPU's block of the domain.
type Subdomain struct {
	// Origin and Size locate the subdomain's interior in global grid
	// coordinates.
	Origin, Size Dim3
	sub          *exchange.Sub
	dd           *DistributedDomain
}

// GlobalIndex returns the subdomain's index in the global subdomain grid.
func (s *Subdomain) GlobalIndex() Dim3 { return s.sub.Global }

// GPU returns the (node, local GPU) pair the subdomain was placed on.
func (s *Subdomain) GPU() (node, gpu int) { return s.sub.NodeID, s.sub.LocalGPU }

// Rank returns the owning MPI rank.
func (s *Subdomain) Rank() int { return s.sub.Rank }

// Get reads quantity q at local coordinate (x, y, z); halo cells use
// negative or >= Size indices. Requires Config.RealData.
func (s *Subdomain) Get(q, x, y, z int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(s.sub.Dom.At(q, x, y, z)))
}

// Set writes quantity q at local coordinate (x, y, z).
func (s *Subdomain) Set(q, x, y, z int, v float32) {
	binary.LittleEndian.PutUint32(s.sub.Dom.At(q, x, y, z), math.Float32bits(v))
}

// ComputeFunc updates one subdomain's interior, reading halos as needed.
type ComputeFunc func(s *Subdomain)

// Step runs `steps` iterations of exchange-then-compute: each step performs
// a full halo exchange, then runs compute as a simulated kernel on every
// GPU (overlappable across GPUs, serialized per GPU). It returns the
// exchange statistics. Compute cost is modeled as a memory-bound sweep of
// the subdomain at the device's effective pack bandwidth.
func (dd *DistributedDomain) Step(steps int, compute ComputeFunc) *Stats {
	if compute == nil {
		return dd.Exchange(steps)
	}
	return dd.ex.RunWithCompute(steps, func(s *exchange.Sub) {
		for _, ps := range dd.subs {
			if ps.sub == s {
				compute(ps)
				return
			}
		}
		panic("stencil: compute on unknown subdomain")
	})
}

// Validate checks the configuration without building the job.
func (cfg Config) Validate() error {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4
	}
	if cfg.Nodes < 1 || cfg.RanksPerNode < 1 {
		return fmt.Errorf("stencil: need at least one node and rank")
	}
	if cfg.Radius < 1 {
		return fmt.Errorf("stencil: radius must be >= 1")
	}
	if cfg.Quantities < 1 {
		return fmt.Errorf("stencil: need at least one quantity")
	}
	return nil
}

// VirtualTime returns the current simulated clock of the underlying engine,
// useful when composing multiple measured phases.
func (dd *DistributedDomain) VirtualTime() sim.Time { return dd.ex.Eng.Now() }

// Preempted reports whether a run was stopped early by Config.Preempt.
func (dd *DistributedDomain) Preempted() bool { return dd.ex.Preempted() }
