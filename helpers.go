package stencil

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/exchange"
)

// This file holds application-side conveniences: bulk initialization,
// iteration, halo verification, and traffic analysis. They are the pieces
// every example and test was otherwise re-implementing.

// FillFunc produces the initial value of quantity q at global coordinate
// (x, y, z).
type FillFunc func(q, x, y, z int) float32

// Fill initializes every interior cell of every subdomain from f. Requires
// Config.RealData.
func (dd *DistributedDomain) Fill(f FillFunc) {
	for _, s := range dd.subs {
		for q := 0; q < dd.cfg.Quantities; q++ {
			for z := 0; z < s.Size.Z; z++ {
				for y := 0; y < s.Size.Y; y++ {
					for x := 0; x < s.Size.X; x++ {
						s.Set(q, x, y, z, f(q, s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z))
					}
				}
			}
		}
	}
}

// ForEachInterior invokes fn for every interior cell of the subdomain, in
// z-major order.
func (s *Subdomain) ForEachInterior(fn func(x, y, z int)) {
	for z := 0; z < s.Size.Z; z++ {
		for y := 0; y < s.Size.Y; y++ {
			for x := 0; x < s.Size.X; x++ {
				fn(x, y, z)
			}
		}
	}
}

// VerifyHalos checks every halo cell of every subdomain against f (the same
// function passed to Fill), honoring the configured boundary conditions:
// under periodic boundaries coordinates wrap; under open boundaries halo
// cells outside the domain are skipped. It returns the number of mismatched
// cells and a description of the first few.
func (dd *DistributedDomain) VerifyHalos(f FillFunc) (bad int, detail string) {
	d := dd.cfg.Domain
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	for _, s := range dd.subs {
		r := dd.cfg.Radius
		for q := 0; q < dd.cfg.Quantities; q++ {
			for z := -r; z < s.Size.Z+r; z++ {
				for y := -r; y < s.Size.Y+r; y++ {
					for x := -r; x < s.Size.X+r; x++ {
						interior := x >= 0 && x < s.Size.X && y >= 0 && y < s.Size.Y && z >= 0 && z < s.Size.Z
						if interior {
							continue
						}
						gx, gy, gz := s.Origin.X+x, s.Origin.Y+y, s.Origin.Z+z
						if dd.cfg.OpenBoundary {
							if gx < 0 || gx >= d.X || gy < 0 || gy >= d.Y || gz < 0 || gz >= d.Z {
								continue
							}
						} else {
							gx, gy, gz = wrap(gx, d.X), wrap(gy, d.Y), wrap(gz, d.Z)
						}
						want := f(q, gx, gy, gz)
						got := s.Get(q, x, y, z)
						if got != want {
							bad++
							if bad <= 3 {
								detail += fmt.Sprintf("sub %v q%d halo (%d,%d,%d): got %g want %g; ",
									s.GlobalIndex(), q, x, y, z, got, want)
							}
						}
					}
				}
			}
		}
	}
	return bad, detail
}

// TrafficClass identifies which machine facility a transfer plan's bytes
// cross.
type TrafficClass = exchange.LinkClass

// Traffic class constants.
const (
	TrafficSameGPU = exchange.ClassSameGPU
	TrafficNVLink  = exchange.ClassNVLink
	TrafficXBus    = exchange.ClassXBus
	TrafficHost    = exchange.ClassHost
	TrafficNIC     = exchange.ClassNIC
)

// TrafficReport breaks the per-exchange bytes down by machine facility.
type TrafficReport = exchange.TrafficReport

// Traffic returns the per-exchange traffic breakdown by link class.
func (dd *DistributedDomain) Traffic() *TrafficReport {
	return dd.ex.Traffic()
}

// StagingBytes reports the library's buffer overhead: total device and
// pinned-host staging allocation across all transfer plans.
func (dd *DistributedDomain) StagingBytes() (device, host int64) {
	return dd.ex.StagingBytes()
}
