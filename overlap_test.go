package stencil

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// This file is the determinism-equivalence harness for compute/communication
// overlap (Config.Overlap): pipelined runs must be *byte-identical* to
// barrier-gated runs on every domain and halo byte — under clean networks,
// lossy networks, and fail-stop kills — and, within a mode, bit-identical
// across reruns and payload worker counts. The pipeline may only change when
// work happens, never what it computes.

const overlapIters = 6

// overlapCfg is the equivalence job: same shape as the chaos job (2 nodes x
// 2 ranks/node, 12 GPUs, real data) so failures are comparable across suites.
func overlapCfg(workers int) Config {
	return Config{
		Nodes:        2,
		RanksPerNode: 2,
		Domain:       Dim3{X: 24, Y: 24, Z: 12},
		Radius:       1,
		Quantities:   2,
		Capabilities: CapsAll(),
		RealData:     true,
		Workers:      workers,
	}
}

// overlapInc is the reference compute payload: +1 on every interior cell of
// both quantities, so divergence anywhere propagates to the fingerprints.
func overlapInc(s *Subdomain) {
	s.ForEachInterior(func(x, y, z int) {
		for q := 0; q < 2; q++ {
			s.Set(q, x, y, z, s.Get(q, x, y, z)+1)
		}
	})
}

// domainFingerprints hashes every subdomain's full backing store — interior
// AND halo bytes — in deterministic order.
func domainFingerprints(dd *DistributedDomain) []uint64 {
	fp := make([]uint64, 0, dd.NumSubdomains())
	for _, s := range dd.Subdomains() {
		fp = append(fp, s.sub.Dom.Fingerprint())
	}
	return fp
}

// recoveryProjection renders the recovery log with virtual times stripped:
// the pipeline legitimately moves *when* recovery actions happen, but the
// actions themselves — kinds, in order, with their detail — must agree.
func recoveryProjection(dd *DistributedDomain) string {
	var b bytes.Buffer
	for _, r := range dd.RecoveryLog() {
		fmt.Fprintf(&b, "%s: %s\n", r.Kind, r.Desc)
	}
	return b.String()
}

// overlapEquivRun builds and runs one side of an equivalence pair.
func overlapEquivRun(t *testing.T, cfg Config, compute ComputeFunc, iters int) (*DistributedDomain, *Stats) {
	t.Helper()
	dd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dd.Fill(chaosFill)
	return dd, dd.Step(iters, compute)
}

// assertSameDomains fails unless both runs hold byte-identical domains.
func assertSameDomains(t *testing.T, label string, ref, got *DistributedDomain) {
	t.Helper()
	want, have := domainFingerprints(ref), domainFingerprints(got)
	for i := range want {
		if have[i] != want[i] {
			t.Errorf("%s: sub %v domain bytes diverge between barrier and overlap modes",
				label, got.Subdomains()[i].GlobalIndex())
		}
	}
}

// TestOverlapEquivalence is the table-driven core of the harness: for each
// scenario — clean, exchange-only, open boundary, face-only, lossy with
// exhausted deliveries, and a fail-stop kill with rollback — the overlap-on
// run must produce byte-identical domains (interiors and halos) to the
// overlap-off run of the same schedule.
func TestOverlapEquivalence(t *testing.T) {
	lossy := func(cfg *Config) {
		sc := &FaultScenario{Name: "overlap-lossy", Seed: 21}
		for n := 0; n < 2; n++ {
			sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
		}
		cfg.Fault = sc
		cfg.SendRetries = 2
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		compute ComputeFunc
	}{
		{"clean-compute", nil, overlapInc},
		{"exchange-only", nil, nil},
		{"open-boundary", func(cfg *Config) { cfg.OpenBoundary = true }, overlapInc},
		{"face-only", func(cfg *Config) { cfg.FaceOnly = true }, overlapInc},
		{"radius-2", func(cfg *Config) { cfg.Radius = 2 }, overlapInc},
		{"lossy-compute", lossy, overlapInc},
		{"lossy-exchange-only", lossy, nil},
		{"reliable-clean", func(cfg *Config) { cfg.Reliable = true; cfg.VerifyExchange = true }, overlapInc},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := overlapCfg(0)
			if tc.mutate != nil {
				tc.mutate(&base)
			}
			offCfg, onCfg := base, base
			onCfg.Overlap = true
			ref, _ := overlapEquivRun(t, offCfg, tc.compute, overlapIters)
			got, stats := overlapEquivRun(t, onCfg, tc.compute, overlapIters)
			assertSameDomains(t, tc.name, ref, got)
			if tc.compute == nil {
				// Exchange-only runs additionally admit the closed-form
				// halo oracle.
				if bad, detail := got.VerifyHalos(chaosFill); bad != 0 {
					t.Errorf("%d bad halo cells in overlap mode: %s", bad, detail)
				}
			}
			if tc.name == "lossy-compute" || tc.name == "lossy-exchange-only" {
				d := stats.Delivery
				if d.Drops == 0 || d.Corrupts == 0 || d.Dups == 0 {
					t.Fatalf("delivery faults not exercised in overlap mode: %+v", d)
				}
				if d.Exhausted > 0 && stats.ReExchanges == 0 && stats.ForcedRepairs == 0 {
					t.Errorf("deliveries landed compromised (%d) but verification repaired nothing", d.Exhausted)
				}
			}
		})
	}
}

// TestOverlapEquivalenceKill runs the fuzzed fail-stop schedules through both
// modes: byte-identical domains, and recovery logs identical under the
// time-stripped projection (the pipeline moves when rollback happens, never
// what it does).
func TestOverlapEquivalenceKill(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sc, desc := chaosSchedule(t, seed)
			t.Logf("seed %d: kill schedule: %s", seed, desc)
			base := overlapCfg(0)
			base.Adaptive = true
			base.CheckpointEvery = 2
			base.Fault = sc
			offCfg, onCfg := base, base
			// The schedules were timed against the barrier-mode probe; both
			// runs share them, so both recover mid-run or neither does.
			onCfg.Overlap = true
			ref, refStats := overlapEquivRun(t, offCfg, overlapInc, overlapIters)
			got, gotStats := overlapEquivRun(t, onCfg, overlapInc, overlapIters)
			if refStats.Rollbacks == 0 {
				t.Skip("schedule did not trigger rollback in barrier mode; vacuous seed")
			}
			if gotStats.Rollbacks == 0 {
				t.Fatal("overlap mode performed no rollback under the same kill schedule")
			}
			assertSameDomains(t, "kill", ref, got)
			if want, have := recoveryProjection(ref), recoveryProjection(got); want != have {
				t.Errorf("recovery projection differs:\nbarrier:\n%s\noverlap:\n%s", want, have)
			}
		})
	}
}

// TestOverlapCapsLadder walks the fig12 capability ladder: equivalence must
// hold on every rung (each exercises a different method mix — all-STAGED on
// +remote, COLOCATEDMEMCPY on +colo, PEERMEMCPY on +peer, KERNEL on full).
func TestOverlapCapsLadder(t *testing.T) {
	ladder := []struct {
		name string
		caps Capabilities
	}{
		{"+remote", CapsRemote()},
		{"+colo", CapsColo()},
		{"+peer", CapsPeer()},
		{"+kernel", CapsAll()},
	}
	for _, rung := range ladder {
		rung := rung
		t.Run(rung.name, func(t *testing.T) {
			base := overlapCfg(0)
			base.Capabilities = rung.caps
			offCfg, onCfg := base, base
			onCfg.Overlap = true
			ref, _ := overlapEquivRun(t, offCfg, overlapInc, overlapIters)
			got, _ := overlapEquivRun(t, onCfg, overlapInc, overlapIters)
			assertSameDomains(t, rung.name, ref, got)
		})
	}
}

// TestOverlapDeterminism asserts the within-mode contract: an overlap run is
// bit-identical — telemetry spans, event log, delivery counters, domain
// bytes — across reruns and across payload worker counts, with and without
// delivery faults.
func TestOverlapDeterminism(t *testing.T) {
	run := func(lossy bool, workers int) (*DistributedDomain, *Stats, *Telemetry) {
		cfg := overlapCfg(workers)
		cfg.Overlap = true
		cfg.Telemetry = NewTelemetry()
		if lossy {
			sc := &FaultScenario{Name: "overlap-det", Seed: 33}
			for n := 0; n < 2; n++ {
				sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
			}
			cfg.Fault = sc
			cfg.SendRetries = 2
		}
		dd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dd.Fill(chaosFill)
		stats := dd.Step(overlapIters, overlapInc)
		return dd, stats, cfg.Telemetry
	}
	for _, lossy := range []bool{false, true} {
		lossy := lossy
		t.Run(fmt.Sprintf("lossy=%v", lossy), func(t *testing.T) {
			ref, refStats, refTel := run(lossy, 0)
			want := domainFingerprints(ref)
			wantSpans, wantEv := spanFingerprint(refTel), eventBytes(t, refTel)
			for _, workers := range []int{0, 3} {
				dd, stats, tel := run(lossy, workers)
				if stats.Delivery != refStats.Delivery {
					t.Errorf("workers=%d: protocol counters differ: %+v vs %+v",
						workers, stats.Delivery, refStats.Delivery)
				}
				if got := spanFingerprint(tel); got != wantSpans {
					t.Errorf("workers=%d: span fingerprint differs from first run", workers)
				}
				if got := eventBytes(t, tel); !bytes.Equal(got, wantEv) {
					t.Errorf("workers=%d: event log differs from first run", workers)
				}
				got := domainFingerprints(dd)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("workers=%d: sub %v domain bytes differ from first run",
							workers, dd.Subdomains()[i].GlobalIndex())
					}
				}
			}
		})
	}
}

// TestOverlapEquivalenceQuick is the property-based sweep: random small
// configurations (neighborhood, radius, boundary, capability rung, loss)
// must all satisfy barrier/overlap byte-equivalence.
func TestOverlapEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is not short")
	}
	prop := func(seed uint8, faceOnly, open, lossy bool) bool {
		cfg := overlapCfg(0)
		cfg.FaceOnly = faceOnly
		cfg.OpenBoundary = open
		cfg.Radius = 1 + int(seed%2)
		switch seed % 4 {
		case 0:
			cfg.Capabilities = CapsRemote()
		case 1:
			cfg.Capabilities = CapsColo()
		case 2:
			cfg.Capabilities = CapsPeer()
		default:
			cfg.Capabilities = CapsAll()
		}
		if lossy {
			sc := &FaultScenario{Name: "overlap-quick", Seed: uint64(seed) + 1}
			for n := 0; n < 2; n++ {
				sc.LossyNIC(0, n, 0.15, 0.15, 0.15)
			}
			cfg.Fault = sc
			cfg.SendRetries = 2
		}
		offCfg, onCfg := cfg, cfg
		onCfg.Overlap = true
		iters := 3
		ref, _ := overlapEquivRun(t, offCfg, overlapInc, iters)
		got, _ := overlapEquivRun(t, onCfg, overlapInc, iters)
		want, have := domainFingerprints(ref), domainFingerprints(got)
		for i := range want {
			if have[i] != want[i] {
				t.Logf("seed=%d faceOnly=%v open=%v lossy=%v: sub %d diverged",
					seed, faceOnly, open, lossy, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestChaosLossyOverlap reruns the headline lossy-chaos acceptance test with
// the overlap pipeline on: kills, drops, corruption, duplication — final
// halos still byte-identical to fault-free, and the run bit-identical across
// reruns and worker counts.
func TestChaosLossyOverlap(t *testing.T) {
	seed := int64(1)
	run := func(workers int) (*DistributedDomain, *Stats, *Telemetry) {
		t.Helper()
		sc, desc := chaosSchedule(t, seed)
		sc.Seed = uint64(seed)
		for n := 0; n < 2; n++ {
			sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
		}
		cfg := chaosCfg(workers)
		cfg.Overlap = true
		cfg.Fault = sc
		cfg.SendRetries = 2
		cfg.Telemetry = NewTelemetry()
		dd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: lossy overlap chaos, kill schedule: %s", seed, desc)
		dd.Fill(chaosFill)
		stats := dd.Exchange(chaosIters)
		return dd, stats, cfg.Telemetry
	}

	dd, stats, tel := run(0)
	if bad, detail := dd.VerifyHalos(chaosFill); bad != 0 {
		t.Errorf("%d bad halo cells after lossy overlap chaos: %s", bad, detail)
	}
	fatal := 0
	for _, r := range dd.FaultLog() {
		if r.Kind == "gpu-fail" || r.Kind == "rank-fail" {
			fatal++
		}
	}
	if fatal == 0 {
		t.Fatal("no fatal fault applied; chaos schedule is vacuous")
	}
	d := stats.Delivery
	if d.Drops == 0 || d.Corrupts == 0 || d.Dups == 0 {
		t.Fatalf("delivery faults not exercised: %+v", d)
	}
	if d.Exhausted > 0 && stats.ReExchanges == 0 && stats.ForcedRepairs == 0 {
		t.Errorf("deliveries landed compromised (%d) but verification repaired nothing", d.Exhausted)
	}
	if stats.Rollbacks == 0 {
		t.Error("no rollback performed despite fatal kills")
	}

	want, wantEv := spanFingerprint(tel), eventBytes(t, tel)
	for _, workers := range []int{0, 3} {
		dd2, stats2, tel2 := run(workers)
		if stats2.Delivery != stats.Delivery {
			t.Errorf("workers=%d: protocol counters differ: %+v vs %+v",
				workers, stats2.Delivery, stats.Delivery)
		}
		if got := spanFingerprint(tel2); got != want {
			t.Errorf("workers=%d: span fingerprint differs from first run", workers)
		}
		if got := eventBytes(t, tel2); !bytes.Equal(got, wantEv) {
			t.Errorf("workers=%d: event log differs from first run", workers)
		}
		if bad, _ := dd2.VerifyHalos(chaosFill); bad != 0 {
			t.Errorf("workers=%d: %d bad halo cells", workers, bad)
		}
	}
}

// TestChaosLossyComputeOverlap is TestChaosLossyCompute with the pipeline
// on: interleaved compute under 20% drop/corrupt/dup, whole domain
// byte-identical to the fault-free barrier run.
func TestChaosLossyComputeOverlap(t *testing.T) {
	run := func(lossy, overlap bool, workers int) (*DistributedDomain, *Stats) {
		cfg := chaosCfg(workers)
		cfg.CheckpointEvery = 0
		cfg.Overlap = overlap
		if lossy {
			sc := &FaultScenario{Name: "lossy-compute-overlap", Seed: 13}
			for n := 0; n < 2; n++ {
				sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
			}
			cfg.Fault = sc
			cfg.SendRetries = 2
		}
		dd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dd.Fill(chaosFill)
		return dd, dd.Step(chaosIters, overlapInc)
	}

	ref, _ := run(false, false, 0)
	dd, stats := run(true, true, 0)
	d := stats.Delivery
	if d.Drops == 0 || d.Corrupts == 0 || d.Dups == 0 {
		t.Fatalf("delivery faults not exercised: %+v", d)
	}
	assertSameDomains(t, "workers=0", ref, dd)

	dd2, stats2 := run(true, true, 3)
	if stats2.Delivery != stats.Delivery {
		t.Errorf("workers=3: protocol counters differ: %+v vs %+v", stats2.Delivery, stats.Delivery)
	}
	assertSameDomains(t, "workers=3", ref, dd2)
}
