package stencil_test

import (
	"bytes"
	"testing"

	stencil "github.com/nodeaware/stencil"
)

// telemetryConfig is a small faulted adaptive job: it exercises every
// telemetry source at once — link samples, spans, op records, fault and
// adapt events.
func telemetryConfig(tel *stencil.Telemetry) stencil.Config {
	sc := &stencil.FaultScenario{Name: "det"}
	sc.KillNVLink(1e-4, 0, 0, 1, 0)
	return stencil.Config{
		Nodes:        1,
		RanksPerNode: 2,
		Domain:       stencil.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       1,
		Quantities:   2,
		Capabilities: stencil.CapsAll(),
		Fault:        sc,
		Adaptive:     true,
		Telemetry:    tel,
	}
}

// TestTelemetryDeterministic: two identical runs must export byte-identical
// NDJSON event logs, JSON snapshots, and Prometheus text — the determinism
// guarantee DESIGN.md documents and the golden snapshot relies on.
func TestTelemetryDeterministic(t *testing.T) {
	record := func() *stencil.Telemetry {
		tel := stencil.NewTelemetry()
		dd, err := stencil.New(telemetryConfig(tel))
		if err != nil {
			t.Fatal(err)
		}
		dd.Exchange(4)
		return tel
	}
	a, b := record(), record()

	var bufA, bufB bytes.Buffer
	if err := a.WriteEvents(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteEvents(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("NDJSON event logs differ across identical runs")
	}

	bufA.Reset()
	bufB.Reset()
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("JSON snapshots differ across identical runs")
	}

	bufA.Reset()
	bufB.Reset()
	if err := a.WritePrometheus(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("Prometheus exports differ across identical runs")
	}
}

// TestTelemetryDoesNotPerturb: attaching a recorder must not move a single
// simulated timestamp — every hook observes at points the simulation already
// visits.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	runStats := func(tel *stencil.Telemetry) *stencil.Stats {
		cfg := telemetryConfig(tel)
		dd, err := stencil.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dd.Exchange(4)
	}
	plain := runStats(nil)
	observed := runStats(stencil.NewTelemetry())
	if len(plain.Iterations) != len(observed.Iterations) {
		t.Fatalf("iteration count changed: %d vs %d", len(plain.Iterations), len(observed.Iterations))
	}
	for i := range plain.Iterations {
		if plain.Iterations[i] != observed.Iterations[i] {
			t.Errorf("iteration %d: %g without telemetry, %g with (must be bit-identical)",
				i, plain.Iterations[i], observed.Iterations[i])
		}
	}
}

// TestTelemetryParallelWorkers: the hooks run only in engine event context,
// so a parallel payload executor must still produce the identical event log.
func TestTelemetryParallelWorkers(t *testing.T) {
	record := func(workers int) *bytes.Buffer {
		tel := stencil.NewTelemetry()
		sc := &stencil.FaultScenario{Name: "det"}
		sc.KillNVLink(1e-4, 0, 0, 1, 0)
		dd, err := stencil.New(stencil.Config{
			Nodes:        1,
			RanksPerNode: 2,
			Domain:       stencil.Dim3{X: 24, Y: 24, Z: 24},
			Radius:       1,
			Quantities:   2,
			Capabilities: stencil.CapsAll(),
			RealData:     true,
			Fault:        sc,
			Adaptive:     true,
			Telemetry:    tel,
			Workers:      workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		dd.Exchange(3)
		var buf bytes.Buffer
		if err := tel.WriteEvents(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	seq, par := record(0), record(4)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Error("event log differs between sequential and parallel payload execution")
	}
}
