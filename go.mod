module github.com/nodeaware/stencil

go 1.22
