// Package nvml simulates the topology-discovery surface of the NVIDIA
// Management Library that the paper's placement phase consumes: the
// connection class and theoretical bandwidth between every pair of GPUs on a
// node, and an optional empirically measured bandwidth matrix (the paper's
// §VI future-work item).
package nvml

import (
	"fmt"
	"strings"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

// Topology is the discovered node-level GPU interconnect description.
type Topology struct {
	NumGPUs int
	// Bandwidth[i][j] is the per-pair bandwidth estimate in bytes/second.
	Bandwidth [][]float64
	// Kind[i][j] classifies the link (NVLINK, SYS, SAME).
	Kind [][]machine.LinkKind
}

// Discover queries the (simulated) driver for the node's GPU topology, as
// nvmlDeviceGetTopologyCommonAncestor and link queries would.
func Discover(n *machine.Node) *Topology {
	g := n.Config.GPUs()
	t := &Topology{NumGPUs: g}
	t.Bandwidth = make([][]float64, g)
	t.Kind = make([][]machine.LinkKind, g)
	for i := 0; i < g; i++ {
		t.Bandwidth[i] = make([]float64, g)
		t.Kind[i] = make([]machine.LinkKind, g)
		for j := 0; j < g; j++ {
			t.Bandwidth[i][j] = n.TheoreticalBW(i, j)
			t.Kind[i][j] = n.Kind(i, j)
		}
	}
	return t
}

// MeasureBandwidth replaces the theoretical matrix with one obtained by a
// congestion-aware pairwise transfer microbenchmark on the simulated
// hardware (paper §VI: "investigate if empirical measurements provide better
// results", following the all-pairs-concurrent methodology of Faraji et
// al.). All ordered pairs transfer simultaneously, so shared facilities —
// the SMP bus, the per-GPU NVLink to the socket — are revealed: a naive
// one-pair-at-a-time probe would report nearly identical bandwidth for
// NVLink and cross-socket pairs, because an uncontended cross-socket path is
// bottlenecked by its endpoints, not the bus all nine pairs share.
func MeasureBandwidth(rt *cudart.Runtime, node int, probeBytes int64) *Topology {
	n := rt.M.Nodes[node]
	g := n.Config.GPUs()
	t := &Topology{NumGPUs: g}
	t.Bandwidth = make([][]float64, g)
	t.Kind = make([][]machine.LinkKind, g)
	for i := range t.Bandwidth {
		t.Bandwidth[i] = make([]float64, g)
		t.Kind[i] = make([]machine.LinkKind, g)
	}
	eng := rt.M.Eng
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			t.Kind[i][j] = n.Kind(i, j)
			if i == j {
				t.Bandwidth[i][j] = n.TheoreticalBW(i, j)
				continue
			}
			i, j := i, j
			eng.Spawn(fmt.Sprintf("nvml.probe.%d-%d", i, j), func(p *sim.Proc) {
				src := rt.DeviceAt(node, i).Malloc(probeBytes)
				dst := rt.DeviceAt(node, j).Malloc(probeBytes)
				s := rt.DeviceAt(node, i).NewStream("probe")
				t0 := p.Now()
				done := s.MemcpyPeerAsync(fmt.Sprintf("probe.%d-%d", i, j), dst, 0, src, 0, probeBytes)
				done.Wait(p)
				t.Bandwidth[i][j] = float64(probeBytes) / (p.Now() - t0)
			})
		}
	}
	eng.Run()
	return t
}

// String renders the matrix in the style of nvidia-smi topo -m.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "")
	for j := 0; j < t.NumGPUs; j++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("GPU%d", j))
	}
	b.WriteByte('\n')
	for i := 0; i < t.NumGPUs; i++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("GPU%d", i))
		for j := 0; j < t.NumGPUs; j++ {
			if i == j {
				fmt.Fprintf(&b, "%8s", "X")
				continue
			}
			fmt.Fprintf(&b, "%8s", t.Kind[i][j].String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BandwidthString renders the per-pair bandwidth matrix in GB/s.
func (t *Topology) BandwidthString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "")
	for j := 0; j < t.NumGPUs; j++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("GPU%d", j))
	}
	b.WriteByte('\n')
	for i := 0; i < t.NumGPUs; i++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("GPU%d", i))
		for j := 0; j < t.NumGPUs; j++ {
			fmt.Fprintf(&b, "%8.1f", t.Bandwidth[i][j]/machine.GB)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
