package nvml

import (
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

func TestDiscoverSummit(t *testing.T) {
	e := sim.NewEngine()
	m := machine.NewSummit(e, 1)
	topo := Discover(m.Nodes[0])
	if topo.NumGPUs != 6 {
		t.Fatalf("NumGPUs = %d, want 6", topo.NumGPUs)
	}
	// Intra-triad pairs report NVLink-class bandwidth, cross-socket SYS.
	if topo.Kind[0][1] != machine.LinkNVLink {
		t.Errorf("Kind[0][1] = %v, want NVLINK", topo.Kind[0][1])
	}
	if topo.Kind[0][3] != machine.LinkSys {
		t.Errorf("Kind[0][3] = %v, want SYS", topo.Kind[0][3])
	}
	if topo.Bandwidth[0][1] <= topo.Bandwidth[0][3] {
		t.Errorf("NVLink bw %g should exceed SYS bw %g", topo.Bandwidth[0][1], topo.Bandwidth[0][3])
	}
}

func TestDiscoverSymmetry(t *testing.T) {
	e := sim.NewEngine()
	m := machine.NewSummit(e, 1)
	topo := Discover(m.Nodes[0])
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if topo.Bandwidth[i][j] != topo.Bandwidth[j][i] {
				t.Errorf("bandwidth asymmetric at (%d,%d)", i, j)
			}
			if topo.Kind[i][j] != topo.Kind[j][i] {
				t.Errorf("kind asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasureBandwidthMatchesLinkClasses(t *testing.T) {
	e := sim.NewEngine()
	m := machine.NewSummit(e, 1)
	rt := cudart.NewRuntime(m, false)
	topo := MeasureBandwidth(rt, 0, 64<<20)
	// Measured intra-triad bandwidth must exceed cross-socket (launch
	// overheads eat into both, but the 46 GB/s dedicated NVLink beats the
	// 3-hop cross-socket path).
	if topo.Bandwidth[0][1] <= topo.Bandwidth[0][3] {
		t.Errorf("measured NVLink %g <= SYS %g", topo.Bandwidth[0][1], topo.Bandwidth[0][3])
	}
	// Achieved must not exceed theoretical link capacity.
	if topo.Bandwidth[0][1] > 46*machine.GB {
		t.Errorf("measured %g exceeds link capacity", topo.Bandwidth[0][1])
	}
	// Probe-measured bandwidth should be within 20%% of capacity at 64 MiB.
	if topo.Bandwidth[0][1] < 0.8*46*machine.GB {
		t.Errorf("measured %g implausibly low", topo.Bandwidth[0][1])
	}
}

func TestTopologyString(t *testing.T) {
	e := sim.NewEngine()
	m := machine.NewSummit(e, 1)
	topo := Discover(m.Nodes[0])
	s := topo.String()
	if !strings.Contains(s, "NVLINK") || !strings.Contains(s, "SYS") {
		t.Errorf("rendered topology missing link classes:\n%s", s)
	}
	bs := topo.BandwidthString()
	if !strings.Contains(bs, "46.0") {
		t.Errorf("bandwidth matrix missing NVLink figure:\n%s", bs)
	}
}

func TestDiscoverFourGPUNode(t *testing.T) {
	e := sim.NewEngine()
	m := machine.New(e, 1, machine.NodeConfig{Sockets: 2, GPUsPerSocket: 2}, machine.DefaultParams())
	topo := Discover(m.Nodes[0])
	if topo.NumGPUs != 4 {
		t.Fatalf("NumGPUs = %d, want 4", topo.NumGPUs)
	}
	if topo.Kind[0][1] != machine.LinkNVLink || topo.Kind[1][2] != machine.LinkSys {
		t.Error("4-GPU node link classes wrong")
	}
}
