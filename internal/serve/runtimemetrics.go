package serve

import (
	"fmt"
	"io"
	"runtime/metrics"
	"strings"
)

// runtimeSamples is the curated runtime/metrics set appended to /metrics.
// A fixed list rather than metrics.All(): scrape output stays stable across
// Go releases, and every exported family has a meaningful operator story
// (heap pressure, GC cost, scheduler load).
var runtimeSamples = []struct {
	name string // runtime/metrics key
	help string
}{
	{"/memory/classes/heap/objects:bytes", "Bytes occupied by live objects and dead objects not yet reclaimed."},
	{"/memory/classes/total:bytes", "All memory mapped by the Go runtime."},
	{"/gc/heap/allocs:bytes", "Cumulative bytes allocated on the heap."},
	{"/gc/heap/goal:bytes", "Heap size target of the end of the current GC cycle."},
	{"/gc/cycles/total:gc-cycles", "Completed GC cycles."},
	{"/sched/goroutines:goroutines", "Live goroutines."},
	{"/sched/gomaxprocs:threads", "Current GOMAXPROCS."},
	{"/cpu/classes/gc/total:cpu-seconds", "Estimated CPU seconds spent in the garbage collector."},
}

// promRuntimeName converts a runtime/metrics key to a Prometheus family
// name: "/sched/goroutines:goroutines" → "go_sched_goroutines",
// "/gc/cycles/total:gc-cycles" → "go_gc_cycles_total_gc_cycles". The unit is
// appended only when the path does not already end with it.
func promRuntimeName(key string) string {
	path, unit, _ := strings.Cut(strings.TrimPrefix(key, "/"), ":")
	clean := func(s string) string {
		return strings.NewReplacer("/", "_", "-", "_").Replace(s)
	}
	path, unit = clean(path), clean(unit)
	if unit != "" && !strings.HasSuffix(path, unit) {
		path += "_" + unit
	}
	return "go_" + path
}

// writeRuntimeMetrics appends a point-in-time runtime/metrics snapshot to a
// Prometheus scrape, one gauge per curated sample. Values are host-side and
// non-deterministic by nature, which is why they are written straight to the
// scrape instead of through a telemetry recorder.
func writeRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples[i].Name = s.name
	}
	metrics.Read(samples)
	for i, s := range samples {
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue // KindBad (unknown on this Go version) or a histogram
		}
		name := promRuntimeName(s.Name)
		fmt.Fprintf(w, "# HELP %s %s\n", name, runtimeSamples[i].help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %g\n", name, v)
	}
}
