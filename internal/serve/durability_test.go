package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCrashRestartChaos(t *testing.T) {
	// The tentpole test: a server with a durable data directory is killed
	// mid-load (in-process SIGKILL: no write lands from the kill instant, the
	// queue is dropped, the running engine iteration is abandoned) with
	// hundreds of acknowledged jobs in flight. A fresh server on the same
	// directory must recover every acknowledged job and produce results
	// byte-identical to an uncrashed server's.
	dir := t.TempDir()
	s1, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Pin the single worker on a long job (~1s: iteration cost grows with
	// the iteration count, so 400 is already long) so everything behind it
	// stays queued deterministically.
	pin := tinySpec()
	pin.Iters = 400
	if _, err := s1.Submit("t0", pin); err != nil {
		t.Fatal(err)
	}

	const extra = 299
	const distinct = 24
	tenants := []string{"t0", "t1", "t2", "t3"}
	var ids []string
	for i := 0; i < extra; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i%distinct
		j, err := s1.Submit(tenants[i%len(tenants)], sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}

	inFlight := 0
	for _, st := range s1.Jobs("") {
		if st.State == StateQueued || st.State == StateRunning {
			inFlight++
		}
	}
	if inFlight < 200 {
		t.Fatalf("only %d jobs in flight at kill, want >= 200", inFlight)
	}

	s1.Kill()

	// Simulate the torn final record of a real crash: a partial line at the
	// journal's end. Recovery must count and skip it, nothing more.
	jf, err := os.OpenFile(filepath.Join(dir, JournalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	jf.WriteString(`{"v":1,"rec":"comple`)
	jf.Close()

	// Restart on the same directory.
	s2, err := Open(Config{Workers: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	rec := s2.Recovery()
	if rec.Reenqueued != extra+1 {
		t.Errorf("reenqueued %d jobs, want %d", rec.Reenqueued, extra+1)
	}
	if rec.TornRecords < 1 {
		t.Errorf("torn records %d, want >= 1", rec.TornRecords)
	}

	// Zero acknowledged jobs lost: every submitted ID exists, is flagged
	// recovered, and completes.
	results := map[string][]byte{} // spec hash -> result bytes
	for _, id := range append([]string{"j000001"}, ids...) {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("acknowledged job %s lost in recovery", id)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("recovered job %s ended %q: %s", id, st, j.status(false).Error)
		}
		st := j.status(false)
		if !st.Recovered {
			t.Errorf("job %s not flagged recovered", id)
		}
		res, _ := j.Result()
		if prev, ok := results[st.SpecHash]; ok && !bytes.Equal(prev, res) {
			t.Fatalf("job %s: same spec hash, different result bytes", id)
		}
		results[st.SpecHash] = res
	}

	// Byte-identity against an uncrashed reference server.
	ref := NewServer(Config{Workers: 4})
	defer ref.Drain()
	for i := 0; i < distinct; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i
		j, err := ref.Submit("ref", sp)
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
		res, _ := j.Result()
		want, ok := results[j.Hash]
		if !ok {
			t.Fatalf("reference spec hash %s missing from recovered set", j.Hash)
		}
		if !bytes.Equal(res, want) {
			t.Fatalf("recovered result for %s differs from uncrashed reference", j.Hash)
		}
	}
}

func TestRestartRehydratesCaches(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 3; i++ {
		sp := tinySpec()
		sp.Iters = 5 + i
		j, err := s1.Submit("alice", sp)
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("job ended %q", st)
		}
		res, _ := j.Result()
		want[j.Hash] = res
	}
	s1.Drain()

	s2, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	rec := s2.Recovery()
	if rec.Completed != 3 {
		t.Errorf("restored %d completed jobs, want 3", rec.Completed)
	}
	if rec.ResultsRehydrated != 3 {
		t.Errorf("rehydrated %d results, want 3", rec.ResultsRehydrated)
	}
	if rec.SetupsRehydrated < 1 {
		t.Errorf("rehydrated %d setups, want >= 1", rec.SetupsRehydrated)
	}
	if rec.Reenqueued != 0 {
		t.Errorf("reenqueued %d after clean drain, want 0", rec.Reenqueued)
	}

	// Restored terminal jobs serve their original bytes...
	for _, st := range s2.Jobs("") {
		j, _ := s2.Job(st.ID)
		res, state := j.Result()
		if state != StateDone {
			t.Fatalf("restored job %s state %q", st.ID, state)
		}
		if !bytes.Equal(res, want[st.SpecHash]) {
			t.Fatalf("restored job %s result differs from the pre-restart bytes", st.ID)
		}
	}
	// ...and a resubmit of the same spec hits the rehydrated result cache —
	// no engine run.
	sp := tinySpec()
	sp.Iters = 5
	j, err := s2.Submit("alice", sp)
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	if st := j.status(false); st.Cache != "result" {
		t.Errorf("resubmit after restart served with cache=%q, want result", st.Cache)
	}
	res, _ := j.Result()
	if !bytes.Equal(res, want[j.Hash]) {
		t.Fatal("cache-served result differs from the pre-restart bytes")
	}
}

func TestJournalTornRecords(t *testing.T) {
	good := func(rec, job string) string {
		return fmt.Sprintf(`{"v":1,"rec":%q,"job":%q,"tenant":"t","spec_hash":"h"}`, rec, job)
	}
	cases := []struct {
		name          string
		lines         []string
		records, torn int
		wantStates    map[string]string // job -> folded state
	}{
		{
			name:    "torn final record",
			lines:   []string{good("submitted", "j1"), good("started", "j1"), `{"v":1,"rec":"comple`},
			records: 2, torn: 1,
			wantStates: map[string]string{"j1": recStarted},
		},
		{
			name:    "wrong version skipped",
			lines:   []string{good("submitted", "j1"), `{"v":9,"rec":"completed","job":"j1"}`},
			records: 1, torn: 1,
			wantStates: map[string]string{"j1": recSubmitted},
		},
		{
			name:    "unknown kind skipped",
			lines:   []string{good("submitted", "j1"), `{"v":1,"rec":"exploded","job":"j1"}`},
			records: 1, torn: 1,
			wantStates: map[string]string{"j1": recSubmitted},
		},
		{
			name:    "missing job id skipped",
			lines:   []string{`{"v":1,"rec":"submitted"}`},
			records: 0, torn: 1,
			wantStates: map[string]string{},
		},
		{
			name:    "binary garbage skipped",
			lines:   []string{"\x00\x01\x02 not json", good("submitted", "j1"), good("completed", "j1")},
			records: 2, torn: 1,
			wantStates: map[string]string{"j1": recCompleted},
		},
		{
			name: "out of order terminal dominates",
			lines: []string{
				good("completed", "j1"), good("submitted", "j1"), good("started", "j1"),
			},
			records: 3, torn: 0,
			wantStates: map[string]string{"j1": recCompleted},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp := replayJournal([]byte(strings.Join(tc.lines, "\n") + "\n"))
			if rp.records != tc.records || rp.torn != tc.torn {
				t.Fatalf("records=%d torn=%d, want %d/%d", rp.records, rp.torn, tc.records, tc.torn)
			}
			if len(rp.jobs) != len(tc.wantStates) {
				t.Fatalf("folded %d jobs, want %d", len(rp.jobs), len(tc.wantStates))
			}
			for job, state := range tc.wantStates {
				jj := rp.jobs[job]
				if jj == nil || jj.State != state {
					t.Errorf("job %s folded to %+v, want state %q", job, jj, state)
				}
			}
		})
	}
}

func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(`{"v":1,"rec":"submitted","job":"j1","tenant":"t","spec_hash":"h","spec":{"iters":3}}`))
	f.Add([]byte(`{"v":1,"rec":"completed","job":"j1"}` + "\n" + `{"v":1,"rec":"subm`))
	f.Add([]byte("\x00\xff garbage\n\n{"))
	f.Add([]byte(`{"v":2,"rec":"submitted","job":"j1"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rp := replayJournal(data)
		if rp == nil {
			t.Fatal("nil replay")
		}
		if len(rp.order) != len(rp.jobs) {
			t.Fatalf("order %d entries, jobs %d", len(rp.order), len(rp.jobs))
		}
		for _, id := range rp.order {
			if rp.jobs[id] == nil {
				t.Fatalf("ordered job %q missing from map", id)
			}
		}
		// Folding is deterministic.
		rp2 := replayJournal(data)
		if rp2.records != rp.records || rp2.torn != rp.torn || len(rp2.jobs) != len(rp.jobs) {
			t.Fatal("replay is not deterministic")
		}
	})
}

func TestJournalDump(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, tenant := range []string{"alice", "alice", "bob"} {
		sp := tinySpec()
		sp.Iters = 3 + i
		j, err := s.Submit(tenant, sp)
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
	}
	// One acknowledged-but-incomplete job: pin then kill.
	pin := tinySpec()
	pin.Iters = 400
	if _, err := s.Submit("carol", pin); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	var buf bytes.Buffer
	if err := DumpJournal(dir, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"alice", "bob", "carol", "TOTAL", "4 jobs", "acknowledged jobs have no terminal record"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestJournalOverheadCounters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 8; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i
		j, err := s.Submit("t", sp)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		j.Wait()
	}
	st := s.journal.stats()
	if st.Records < 8*2 { // submitted + terminal per job at minimum
		t.Errorf("journal records %d, want >= 16", st.Records)
	}
	// Group commit: never more fsyncs than records — each commit covers at
	// least one new record, whether forced by a durable submit ack or the
	// lazy drain that keeps the replicated prefix advancing.
	if st.Syncs > st.Records {
		t.Errorf("group commits %d exceed %d records", st.Syncs, st.Records)
	}
	if st.Syncs < 1 {
		t.Error("no fsync recorded for durable submits")
	}
	// At quiesce the lazy drain must catch the fsync'd prefix up to the full
	// file — this is what lets a follower's replication lag reach zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = s.journal.stats()
		if st.SyncedBytes == st.Size {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never quiesced: %d of %d bytes synced", st.SyncedBytes, st.Size)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Drain()

	// Journal survives a graceful drain too: a reopen sees all terminal.
	rp, err := readJournal(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	for id, jj := range rp.jobs {
		if !jj.terminal() {
			t.Errorf("job %s not terminal in journal after drain (state %s)", id, jj.State)
		}
	}
}
