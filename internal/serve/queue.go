package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by push when the queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests (backpressure).
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is returned by push after close; the HTTP layer maps it to
// 503 Service Unavailable.
var ErrDraining = errors.New("serve: server is draining")

// fairQueue is a bounded multi-tenant FIFO with round-robin service: each
// tenant has its own FIFO, and workers pop tenants in rotation, so a tenant
// flooding the queue delays only its own jobs — other tenants still get
// their turn every cycle (weighted equal-share fair queueing with unit
// weights).
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*Job // per-tenant FIFOs
	ring   []string          // tenants with pending jobs, service order
	next   int               // ring index of the next tenant to serve
	size   int               // total queued jobs
	cap    int
	closed bool
}

func newFairQueue(capacity int) *fairQueue {
	if capacity <= 0 {
		capacity = 1024
	}
	q := &fairQueue{queues: make(map[string][]*Job), cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job under its tenant.
func (q *fairQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	if _, ok := q.queues[j.Tenant]; !ok {
		q.ring = append(q.ring, j.Tenant)
	}
	q.queues[j.Tenant] = append(q.queues[j.Tenant], j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks for the next job in tenant rotation; ok=false means the queue
// was closed and fully drained.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	// Serve the next tenant in the ring that has work (tenants whose FIFO
	// emptied are removed lazily here).
	for {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		tenant := q.ring[q.next]
		fifo := q.queues[tenant]
		if len(fifo) == 0 {
			delete(q.queues, tenant)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			continue
		}
		j := fifo[0]
		q.queues[tenant] = fifo[1:]
		q.size--
		q.next++ // rotate even if this tenant has more work: fairness
		return j, true
	}
}

// remove takes a specific job out of its tenant's FIFO (cancellation).
func (q *fairQueue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	fifo := q.queues[j.Tenant]
	for i, queued := range fifo {
		if queued == j {
			q.queues[j.Tenant] = append(fifo[:i:i], fifo[i+1:]...)
			q.size--
			return true
		}
	}
	return false
}

// close stops intake; workers drain the remaining jobs and then pop returns
// ok=false.
func (q *fairQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// depth returns the number of queued jobs.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
