package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by push when the queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests (backpressure).
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is returned by push after close; the HTTP layer maps it to
// 503 Service Unavailable.
var ErrDraining = errors.New("serve: server is draining")

// fairQueue is a bounded multi-tenant FIFO with round-robin service: each
// tenant has its own FIFO, and workers pop tenants in rotation, so a tenant
// flooding the queue delays only its own jobs — other tenants still get
// their turn every cycle (weighted equal-share fair queueing with unit
// weights).
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*Job // per-tenant FIFOs
	ring   []string          // tenants with pending jobs, service order
	next   int               // ring index of the next tenant to serve
	size   int               // total queued jobs
	cap    int
	closed bool
}

func newFairQueue(capacity int) *fairQueue {
	if capacity <= 0 {
		capacity = 1024
	}
	q := &fairQueue{queues: make(map[string][]*Job), cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job under its tenant.
func (q *fairQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	if _, ok := q.queues[j.Tenant]; !ok {
		q.ring = append(q.ring, j.Tenant)
	}
	q.queues[j.Tenant] = append(q.queues[j.Tenant], j)
	q.size++
	q.cond.Signal()
	return nil
}

// forcePush enqueues ignoring the capacity bound. Recovery uses it: every
// journaled-but-incomplete job was already acknowledged, so capacity
// backpressure no longer applies — refusing one here would lose an ack.
func (q *fairQueue) forcePush(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if _, ok := q.queues[j.Tenant]; !ok {
		q.ring = append(q.ring, j.Tenant)
	}
	q.queues[j.Tenant] = append(q.queues[j.Tenant], j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks for the next job in tenant rotation; ok=false means the queue
// was closed and fully drained.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	// Serve the next tenant in the ring that has work (tenants whose FIFO
	// emptied are removed lazily here).
	for {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		tenant := q.ring[q.next]
		fifo := q.queues[tenant]
		if len(fifo) == 0 {
			delete(q.queues, tenant)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			continue
		}
		j := fifo[0]
		q.queues[tenant] = fifo[1:]
		q.size--
		q.next++ // rotate even if this tenant has more work: fairness
		return j, true
	}
}

// remove takes a specific job out of its tenant's FIFO (cancellation).
func (q *fairQueue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	fifo := q.queues[j.Tenant]
	for i, queued := range fifo {
		if queued == j {
			q.queues[j.Tenant] = append(fifo[:i:i], fifo[i+1:]...)
			q.size--
			return true
		}
	}
	return false
}

// close stops intake; workers drain the remaining jobs and then pop returns
// ok=false.
func (q *fairQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// kill stops intake AND discards every queued job — the in-process SIGKILL:
// a dead process would not have drained its queue. Workers' next pop returns
// ok=false immediately.
func (q *fairQueue) kill() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.queues = make(map[string][]*Job)
	q.ring = nil
	q.size = 0
	q.cond.Broadcast()
}

// depth returns the number of queued jobs.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// oldestWait returns how long the oldest queued job has been waiting (0 when
// the queue is empty). Each tenant FIFO's head is that tenant's oldest job,
// so the global oldest is the min over heads — the admission controller's
// queue-age watermark reads this.
func (q *fairQueue) oldestWait(now time.Time) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	var oldest time.Time
	for _, fifo := range q.queues {
		if len(fifo) == 0 {
			continue
		}
		if t := fifo[0].submittedTime(); oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}
