package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// spanNames projects a trace's spans to their names, in order.
func spanNames(t JobTrace) []string {
	names := make([]string, len(t.Spans))
	for i, s := range t.Spans {
		names[i] = s.Name
	}
	return names
}

func getTrace(t *testing.T, ts *httptest.Server, id, query string) JobTrace {
	t.Helper()
	resp, body := get(t, ts, "/v1/jobs/"+id+"/trace"+query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: %d %s", id, resp.StatusCode, body)
	}
	var tr JobTrace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// A real run's trace covers every lifecycle phase in order; the trace ID is
// the deterministic digest of (spec hash, job ID).
func TestTraceEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postSpec(t, ts, "alice", tinySpec(), "?wait=1")
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	tr := getTrace(t, ts, st.ID, "")
	if tr.Schema != TraceSchema {
		t.Fatalf("schema %q, want %q", tr.Schema, TraceSchema)
	}
	if tr.TraceID != TraceID(st.SpecHash, st.ID) {
		t.Fatalf("trace_id %q not derived from (spec hash, job id)", tr.TraceID)
	}
	want := []string{"queue-wait", "cache-lookup", "setup", "engine-run", "verify", "encode"}
	got := spanNames(tr)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("spans %v, want %v", got, want)
	}
	for _, sp := range tr.Spans {
		if sp.End.Before(sp.Start) || sp.DurationSeconds < 0 {
			t.Fatalf("span %s runs backwards: %+v", sp.Name, sp)
		}
	}

	// A result-cache hit replays bytes without an engine: its trace stops at
	// the cache lookup, and its distinct job ID yields a distinct trace ID.
	_, body = postSpec(t, ts, "alice", tinySpec(), "?wait=1")
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	tr2 := getTrace(t, ts, st2.ID, "")
	if tr2.TraceID == tr.TraceID {
		t.Fatal("distinct jobs share a trace ID")
	}
	got2 := spanNames(tr2)
	if strings.Join(got2, ",") != "queue-wait,cache-lookup" {
		t.Fatalf("cached job spans %v, want queue-wait,cache-lookup", got2)
	}
	if tr2.Spans[1].Detail != "result-hit" {
		t.Fatalf("cache-lookup detail %q, want result-hit", tr2.Spans[1].Detail)
	}
}

func TestTracePerfettoExport(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postSpec(t, ts, "", tinySpec(), "?wait=1")
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts, "/v1/jobs/"+st.ID+"/trace?format=perfetto")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perfetto trace: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v\n%s", err, body)
	}
	// One metadata event plus the six lifecycle spans.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("%d trace events, want 7:\n%s", len(doc.TraceEvents), body)
	}
	if doc.TraceEvents[0].Phase != "M" {
		t.Fatalf("first event phase %q, want metadata M", doc.TraceEvents[0].Phase)
	}
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Phase != "X" || ev.Dur < 0 {
			t.Fatalf("bad complete event: %+v", ev)
		}
	}
}

func TestTraceNotFound(t *testing.T) {
	s := NewServer(Config{Workers: -1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := get(t, ts, "/v1/jobs/nope/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown job: %d, want 404", resp.StatusCode)
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := NewServer(Config{Workers: -1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index lacks profile listing:\n%s", body)
	}
	resp, _ = get(t, ts, "/debug/pprof/symbol")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol: %d", resp.StatusCode)
	}
}

// /metrics carries the wall-clock latency histograms and the runtime/metrics
// snapshot alongside the recorder's counters.
func TestMetricsHistogramsAndRuntime(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSpec(t, ts, "", tinySpec(), "?wait=1")
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"stencilserve_queue_wait_seconds_bucket",
		"stencilserve_queue_wait_seconds_count 1",
		"stencilserve_run_seconds_bucket",
		"stencilserve_run_seconds_count 1",
		"# TYPE go_sched_goroutines gauge",
		"go_memory_classes_heap_objects_bytes",
		"go_gc_cycles_total_gc_cycles",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
