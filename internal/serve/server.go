// Package serve is stencilserve's core: a multi-tenant simulation job
// service over the deterministic stencil engine.
//
// Jobs are jobspec.Spec documents submitted over HTTP/JSON. A sharded worker
// pool runs each job on a fresh, isolated engine; per-tenant fair queueing
// bounds how much one tenant can delay another, per-tenant quotas (submit
// rate, in-flight jobs, stored bytes) bound what one tenant can consume, and
// admission control sheds load (429 + Retry-After) when the queue's depth or
// age crosses its watermarks.
//
// Determinism is the load-bearing property. The engine maps a normalized
// spec to byte-identical result and event bytes on every run, which makes
// two cache layers correct by construction:
//
//   - the result cache (key: jobspec.Hash) replays whole result documents
//     without running an engine at all, and
//   - the setup cache (key: jobspec.SetupHash) reuses the phase-2 placement
//     across jobs that differ only in scenario or run length, injected via
//     stencil.Config.PresetPlacement. The QAP solver is deterministic, so an
//     injected placement reproduces the computed one bit-exactly.
//
// The same property makes crash recovery provably correct rather than
// best-effort: with Config.DataDir set, a write-ahead journal records every
// acknowledged job (fsync'd before the ack) and both caches spill to disk,
// so a restart replays the journal, rehydrates the caches, and re-enqueues
// every acknowledged-but-incomplete job — whose re-run returns bytes
// identical to what the crashed process would have produced.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// Config shapes a Server.
type Config struct {
	// Workers is the worker-pool size; 0 uses GOMAXPROCS. Negative starts
	// no workers at all, so jobs stay queued — a test hook for exercising
	// queue-state transitions deterministically.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs across
	// all tenants; 0 defaults to 1024. Submissions beyond it get 429.
	QueueDepth int
	// ResultCacheEntries and SetupCacheEntries bound the two caches;
	// 0 defaults to 4096 each.
	ResultCacheEntries int
	SetupCacheEntries  int

	// DataDir enables durability: the write-ahead job journal plus disk
	// spill of both caches live here, and Open replays them on boot. Empty
	// means in-memory only (a crash loses everything, as before).
	DataDir string

	// TenantQuota is the default per-tenant budget; Quotas overrides it for
	// named tenants. The zero Quota means unlimited.
	TenantQuota Quota
	Quotas      map[string]Quota

	// Admission watermarks. At DegradeDepth queued jobs the server enters
	// degraded mode: submissions that would miss both caches (a cold setup
	// solve plus a full run) are refused, while cache hits still serve. At
	// ShedDepth (or when the oldest queued job is older than ShedAge) every
	// new submission is refused. 0 disables DegradeDepth and ShedAge;
	// ShedDepth defaults to QueueDepth (shedding exactly where the queue
	// would refuse anyway, but with a Retry-After hint).
	DegradeDepth int
	ShedDepth    int
	ShedAge      time.Duration

	// RetryLimit bounds how many times a job whose worker dies (a panic
	// inside the engine) is retried with exponential backoff before it is
	// failed; 0 defaults to 2. RetryBackoff is the first delay (default
	// 25ms, doubling per attempt).
	RetryLimit   int
	RetryBackoff time.Duration

	// HeartbeatInterval paces replication-stream heartbeats (and thus how
	// quickly followers learn the synced offset when no records flow);
	// 0 defaults to 100ms.
	HeartbeatInterval time.Duration
	// CompactBytes triggers an automatic journal compaction whenever the
	// file grows past this many bytes; 0 disables auto-compaction (the
	// explicit CompactJournal call and the -journal-compact flag remain).
	CompactBytes int64
	// LeasePath enables failover-lease arbitration: Open acquires the lease
	// (failing if a live peer holds it) and refreshes it every LeaseTTL/3;
	// losing it (a standby stole it during a long pause) closes the channel
	// returned by LeaseLost. LeaseTTL defaults to 2s; LeaseID names this
	// process as the holder (default "primary").
	LeasePath string
	LeaseTTL  time.Duration
	LeaseID   string
}

// Server owns the queue, the worker pool, the job registry, the caches, and
// (when durable) the journal and disk store.
type Server struct {
	cfg     Config
	queue   *fairQueue
	results *Cache[resultEntry]
	setups  *Cache[setupEntry]
	quotas  *quotas

	journal *journal // nil when in-memory only
	store   *store   // nil when in-memory only

	// Replication plumbing: rep fans spilled artifacts out to live streams
	// and holds the stream counters; compactBusy serializes automatic
	// compactions.
	rep         replicator
	compactBusy atomic.Bool

	// Failover lease (nil unless Config.LeasePath is set).
	lease         *lease
	leaseLost     chan struct{}
	leaseStop     chan struct{}
	leaseStopOnce sync.Once

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int

	// The telemetry recorder is not thread-safe (it is built for the
	// engine's single-threaded event loop), so every access goes through
	// telMu.
	telMu sync.Mutex
	tel   *telemetry.Recorder

	draining bool
	killed   atomic.Bool // Kill(): in-process SIGKILL for crash tests
	wg       sync.WaitGroup

	recovery RecoveryStats

	// now is the wall clock, swappable in tests.
	now func() time.Time

	// runFn executes one job on the engine; swappable in tests (the
	// worker-death retry path injects panics through it).
	runFn func(spec *jobspec.Spec, specHash string, preset [][]int, preempt func() bool, lap *lapClock) (*runOutcome, error)
}

// setupEntry is a setup-cache value: the phase-2 placement.
type setupEntry struct {
	assignments [][]int
}

// NewServer starts the worker pool and returns a ready server. It panics if
// Config.DataDir is set and unusable; durable callers should use Open.
func NewServer(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a server, replaying the data directory (journal + cache
// spill) when one is configured, and then starts the worker pool — so
// recovered jobs are re-enqueued before the first worker pops.
func Open(cfg Config) (*Server, error) {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	} else if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	s := &Server{
		cfg:     cfg,
		queue:   newFairQueue(cfg.QueueDepth),
		results: NewCache[resultEntry](cfg.ResultCacheEntries),
		setups:  NewCache[setupEntry](cfg.SetupCacheEntries),
		quotas:  newQuotas(cfg.TenantQuota, cfg.Quotas),
		jobs:    make(map[string]*Job),
		tel:     telemetry.New(),
		now:     time.Now,
		runFn:   runJob,
	}
	if cfg.DataDir != "" {
		if err := s.recoverFromDisk(cfg.DataDir); err != nil {
			return nil, err
		}
		// Spills from here on feed live replication streams. Wired after
		// recovery so the boot-time rehydration scan does not flood the feed:
		// artifacts that predate a follower's connection are covered by its
		// connect-time manifest diff instead.
		s.store.onSpill = s.rep.note
	}
	if cfg.LeasePath != "" {
		l := newLease(cfg.LeasePath, cfg.LeaseTTL, s.now)
		ok, err := l.acquire(s.leaseID())
		if err != nil {
			return nil, fmt.Errorf("serve: lease: %w", err)
		}
		if !ok {
			rec, _ := l.read()
			return nil, fmt.Errorf("serve: lease %s held by live holder %q; start as a follower instead", cfg.LeasePath, rec.Holder)
		}
		s.lease = l
		s.leaseLost = make(chan struct{})
		s.leaseStop = make(chan struct{})
		s.wg.Add(1)
		go s.leaseLoop()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) leaseID() string {
	if s.cfg.LeaseID != "" {
		return s.cfg.LeaseID
	}
	return "primary"
}

// leaseLoop refreshes the failover lease every ttl/3. A refresh that finds
// another holder means a standby stole the lease during a pause longer than
// the ttl: this process is no longer primary and must stop accepting writes
// — signalled through LeaseLost; cmd/stencilserve drains and exits on it.
// Transient write errors are retried at the next tick (holding the lease is
// proven by the file's content, not by our ability to re-stamp it).
func (s *Server) leaseLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.lease.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-s.leaseStop:
			return
		case <-t.C:
			ok, err := s.lease.refresh(s.leaseID())
			if err == nil && !ok {
				close(s.leaseLost)
				return
			}
		}
	}
}

// LeaseLost returns a channel closed when this server loses the failover
// lease (nil when no lease is configured).
func (s *Server) LeaseLost() <-chan struct{} { return s.leaseLost }

// stopLeaseLoop ends lease refreshing; release additionally surrenders the
// file so the standby can take over without waiting out the ttl.
func (s *Server) stopLeaseLoop(release bool) {
	if s.lease == nil {
		return
	}
	s.leaseStopOnce.Do(func() { close(s.leaseStop) })
	if release {
		s.lease.release(s.leaseID())
	}
}

// shedDepth / degradeDepth resolve the configured watermarks.
func (s *Server) shedDepth() int {
	if s.cfg.ShedDepth > 0 {
		return s.cfg.ShedDepth
	}
	if s.cfg.QueueDepth > 0 {
		return s.cfg.QueueDepth
	}
	return 1024
}

// degradeDepth returns the degraded-mode watermark; 0 means disabled.
func (s *Server) degradeDepth() int { return s.cfg.DegradeDepth }

// admit is the overload-protection gate: watermark shedding first (cheapest
// refusal), then the tenant's quotas (which commit an in-flight slot and a
// rate token on success). resultHit/setupHit are cache peeks for the spec.
func (s *Server) admit(tenant string, now time.Time, resultHit, setupHit bool) *AdmissionError {
	depth := s.queue.depth()
	if depth >= s.shedDepth() {
		return &AdmissionError{
			Code: CodeOverloaded, Tenant: tenant, QueueDepth: depth,
			RetryAfter: shedRetryAfter(depth, s.cfg.Workers),
			msg:        "queue depth over the shed watermark",
		}
	}
	if s.cfg.ShedAge > 0 && s.queue.oldestWait(now) > s.cfg.ShedAge {
		return &AdmissionError{
			Code: CodeOverloaded, Tenant: tenant, QueueDepth: depth,
			RetryAfter: shedRetryAfter(depth, s.cfg.Workers),
			msg:        "queued work older than the age watermark",
		}
	}
	// Degraded mode: refuse the expensive misses first. A job that hits the
	// result cache costs nothing; one that hits the setup cache skips the
	// QAP solve; a double miss pays full price and is the first to go.
	if d := s.degradeDepth(); d > 0 && depth >= d && !resultHit && !setupHit {
		return &AdmissionError{
			Code: CodeDegraded, Tenant: tenant, QueueDepth: depth,
			RetryAfter: shedRetryAfter(depth, s.cfg.Workers),
			msg:        "degraded mode: only cache-served jobs admitted",
		}
	}
	if ae := s.quotas.admit(tenant, now, !resultHit); ae != nil {
		ae.QueueDepth = depth
		return ae
	}
	return nil
}

// shedRetryAfter estimates a client backoff from the backlog: one second
// plus a second per 64 queued jobs per worker — rough, monotone in load,
// and cheap.
func shedRetryAfter(depth, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	return time.Second * time.Duration(1+depth/(64*workers))
}

// Submit validates, admits, journals, and enqueues a job. It is the
// programmatic form of POST /v1/jobs; the HTTP layer maps an AdmissionError
// to 429 (503 when draining) with Retry-After, and any other error to 400.
// When a journal is configured, Submit returns only after the job's
// submitted record is fsync'd — the durability contract: an acknowledged
// job survives a crash.
func (s *Server) Submit(tenant string, spec *jobspec.Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if tenant == "" {
		tenant = spec.Tenant
	}
	if tenant == "" {
		tenant = "anonymous"
	}
	if err := jobspec.ValidTenant(tenant); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	setupHash, err := spec.SetupHash()
	if err != nil {
		return nil, err
	}
	now := s.now()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &AdmissionError{Code: CodeDraining, Tenant: tenant, Err: ErrDraining, RetryAfter: time.Second}
	}
	s.mu.Unlock()

	resultHit := s.results.Contains(hash)
	setupHit := resultHit || (spec.CacheableSetup() && s.setups.Contains(setupHash))
	if ae := s.admit(tenant, now, resultHit, setupHit); ae != nil {
		s.count("stencilserve_rejections_total",
			telemetry.Label{Key: "code", Value: ae.Code},
			telemetry.Label{Key: "tenant", Value: tenant})
		return nil, ae
	}
	// From here the tenant holds an in-flight slot; every exit path must
	// either enqueue the job or release the slot.

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, tenant, spec, hash, setupHash, now)
	if spec.DeadlineSeconds > 0 {
		j.deadline = now.Add(time.Duration(spec.DeadlineSeconds * float64(time.Second)))
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	// Durability point: the submitted record (with the full normalized spec)
	// is fsync'd before the submit is acknowledged. Group commit amortizes
	// the fsync across concurrent submitters.
	if s.journal != nil {
		spec0, merr := json.Marshal(spec)
		rec := journalRecord{
			Rec: recSubmitted, Job: id, Tenant: tenant,
			SpecHash: hash, SetupHash: setupHash,
			Spec: spec0, UnixNano: nowNano(s.now),
		}
		// Piggyback the post-admission bucket fill so a restart resumes the
		// tenant's rate budget instead of refunding it (quota persistence).
		if tok, _, hasRate := s.quotas.snapshot(tenant, now); hasRate {
			rec.Tokens = &tok
			rec.TokTS = now.UnixNano()
		}
		if merr == nil {
			merr = s.journal.append(rec, true)
		}
		if merr != nil {
			s.unregister(id)
			s.quotas.release(tenant, now)
			return nil, fmt.Errorf("serve: journal submit: %w", merr)
		}
		s.count("stencilserve_journal_records_total")
	}

	if err := s.queue.push(j); err != nil {
		// Roll back: compensating cancel record (non-durable — if it is
		// lost, recovery re-runs a job nobody is waiting for; wasteful but
		// correct), registry removal, slot release.
		s.journalAppend(journalRecord{Rec: recCancelled, Job: id, SpecHash: hash, Tenant: tenant, UnixNano: nowNano(s.now)})
		s.unregister(id)
		s.quotas.release(tenant, now)
		if errors.Is(err, ErrDraining) {
			return nil, &AdmissionError{Code: CodeDraining, Tenant: tenant, Err: ErrDraining, RetryAfter: time.Second}
		}
		return nil, &AdmissionError{
			Code: CodeQueueFull, Tenant: tenant, Err: ErrQueueFull,
			QueueDepth: s.queue.depth(), RetryAfter: shedRetryAfter(s.queue.depth(), s.cfg.Workers),
		}
	}
	s.count("stencilserve_jobs_submitted_total", telemetry.Label{Key: "tenant", Value: tenant})
	return j, nil
}

// unregister removes a job that never made it into the queue.
func (s *Server) unregister(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// journalAppend writes a non-durable record, ignoring journal absence and
// post-kill errors (both mean: behave like the write never happened).
func (s *Server) journalAppend(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec, false); err == nil {
		s.count("stencilserve_journal_records_total")
	}
	s.maybeCompact()
}

// Job returns a registered job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists job statuses in submission order, optionally filtered by
// tenant.
func (s *Server) Jobs(tenant string) []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		out = append(out, j.status(false))
	}
	return out
}

// Cancel cancels a queued or running job; terminal jobs report false.
// Queued jobs transition to cancelled immediately. Running jobs are
// preempted cooperatively: the flag set here is polled by the engine's
// coordinator at every iteration safe point, the run stops at the next
// boundary, and the worker finalizes the cancelled state — so true for a
// running job means cancellation was accepted, and the status still reads
// "running" until the engine reaches that boundary.
func (s *Server) Cancel(id string) (Status, bool, error) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, false, fmt.Errorf("serve: no job %q", id)
	}
	// Remove-then-cancel: once remove succeeds no worker can pop the job,
	// so the queued→cancelled transition cannot race a start.
	if s.queue.remove(j) && j.cancel(s.now()) {
		s.journalAppend(journalRecord{Rec: recCancelled, Job: j.ID, SpecHash: j.Hash, Tenant: j.Tenant, UnixNano: nowNano(s.now)})
		s.quotas.release(j.Tenant, s.now())
		s.count("stencilserve_jobs_cancelled_total")
		return j.status(false), true, nil
	}
	// The job left the queue: it is running (or a worker just popped it),
	// or it already finished. Arm the preemption flag in the former case.
	if j.requestPreempt() {
		return j.status(false), true, nil
	}
	return j.status(false), false, nil
}

// Drain stops intake (new submissions get 503), lets the workers finish
// every queued and running job, flushes and closes the journal, and returns
// when the pool is idle. The SIGTERM path of cmd/stencilserve.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopLeaseLoop(true) // surrender the lease so a standby can promote now
	s.queue.close()
	s.wg.Wait()
	if s.journal != nil {
		s.journal.close()
	}
}

// Kill is the in-process SIGKILL for crash tests: from this instant the
// server behaves like a dead process — no journal or store write lands, no
// job state transition commits, queued jobs are dropped, and running engine
// iterations are abandoned at the next safe point. It returns once every
// worker has exited. A fresh Open on the same DataDir must then recover
// every acknowledged job.
func (s *Server) Kill() {
	s.killed.Store(true)
	// The lease file is deliberately NOT released: a dead primary leaves its
	// stamp behind, and the standby steals the lease only after the ttl.
	s.stopLeaseLoop(false)
	if s.journal != nil {
		s.journal.kill()
	}
	if s.store != nil {
		s.store.kill()
	}
	s.queue.kill()
	s.wg.Wait()
}

// worker pops jobs in tenant-fair order until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// finalize applies a terminal transition with its journal record and
// in-flight release — every completion path funnels through here so no exit
// leaks a quota slot or a journal state. stored, when non-nil, is the
// tenant's stored-bytes total after this job's spill, piggybacked onto the
// record for quota persistence.
func (s *Server) finalize(j *Job, rec string, stored *int64, apply func(now time.Time)) {
	now := s.now()
	apply(now)
	s.journalAppend(journalRecord{Rec: rec, Job: j.ID, SpecHash: j.Hash, Tenant: j.Tenant, Stored: stored, UnixNano: now.UnixNano()})
	s.quotas.release(j.Tenant, now)
}

// execute runs one job through the cache layers and the engine. Every phase
// is stamped onto the job's wall-clock trace (lapClock → j.addSpan) and the
// queue-wait and run-duration histograms; none of that timing can reach the
// cached result or event bytes, which stay pure functions of the spec.
func (s *Server) execute(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.retryOrFail(j, r)
		}
	}()
	if s.killed.Load() {
		return
	}
	// A queued job past its deadline fails without burning an engine run.
	if !j.deadline.IsZero() && s.now().After(j.deadline) {
		s.finalize(j, recFailed, nil, func(now time.Time) {
			j.finish(now, nil, nil, errDeadline, false, false)
		})
		s.count("stencilserve_jobs_deadline_total")
		return
	}
	wait, attempt := j.start(s.now())
	s.observe("stencilserve_queue_wait_seconds", wait.Seconds())
	s.journalAppend(journalRecord{Rec: recStarted, Job: j.ID, SpecHash: j.Hash, Tenant: j.Tenant, Attempt: attempt, UnixNano: nowNano(s.now)})
	lap := newLapClock(s.now, j.addSpan)

	// Layer 1: whole-result cache. A hit replays the stored bytes — no
	// engine run at all. Correct because Hash determines the result bytes.
	if e, ok := s.results.Get(j.Hash); ok {
		lap.lap("cache-lookup", "result-hit")
		s.finalize(j, recCompleted, nil, func(now time.Time) {
			j.finish(now, e.result, e.events, nil, true, false)
		})
		s.count("stencilserve_jobs_completed_total", telemetry.Label{Key: "cache", Value: "result"})
		return
	}

	// Layer 2: setup cache. A hit injects the cached phase-2 placement and
	// skips the QAP solve; the run itself still happens.
	var preset [][]int
	usedSetup := false
	if j.Spec.CacheableSetup() {
		if p, ok := s.setups.Get(j.SetupHash); ok {
			preset = p.assignments
			usedSetup = true
		}
	}
	if usedSetup {
		lap.lap("cache-lookup", "setup-hit")
	} else {
		lap.lap("cache-lookup", "miss")
	}

	// The preempt poll merges three stop reasons, each observed at the
	// engine's iteration safe point: a /cancel, the job's deadline, and a
	// Kill (crash simulation). Deadline hits are recorded so the outcome is
	// failed, not cancelled.
	preempt := func() bool {
		if j.preempt.Load() || s.killed.Load() {
			return true
		}
		if !j.deadline.IsZero() && s.now().After(j.deadline) {
			j.deadlineHit.Store(true)
			return true
		}
		return false
	}

	runStart := s.now()
	setupStart := runStart
	out, err := s.runFn(j.Spec, j.Hash, preset, preempt, lap)
	s.observe("stencilserve_run_seconds", s.now().Sub(runStart).Seconds())
	if s.killed.Load() {
		// Simulated process death: the run's outcome is discarded exactly as
		// a SIGKILL would have discarded it. Recovery re-runs the job.
		return
	}
	if err == errPreempted {
		if j.deadlineHit.Load() && !j.preempt.Load() {
			// The engine honored the deadline: the job fails (never
			// cancelled — nobody asked for it), partial bytes are never
			// cached.
			s.finalize(j, recFailed, nil, func(now time.Time) {
				j.finish(now, nil, nil, errDeadline, false, usedSetup)
			})
			s.count("stencilserve_jobs_deadline_total")
			return
		}
		// The engine honored a mid-run /cancel: the job ends cancelled (not
		// failed), its partial bytes are never cached, and this worker is
		// immediately free for the next job.
		s.finalize(j, recCancelled, nil, func(now time.Time) {
			j.finishCancelled(now)
		})
		s.count("stencilserve_jobs_cancelled_total")
		return
	}
	if err != nil {
		s.finalize(j, recFailed, nil, func(now time.Time) {
			j.finish(now, nil, nil, err, false, usedSetup)
		})
		s.count("stencilserve_jobs_failed_total")
		return
	}

	// Spill before the in-memory Put: once the completed journal record can
	// be written, the result bytes are already durable, so recovery never
	// trusts a completed record whose payload is missing. A spill failure is
	// not fatal — the entry just will not survive a restart.
	var storedTotal *int64
	if s.store != nil {
		if n, serr := s.store.putResult(j.Hash, resultEntry{result: out.result, events: out.events}, j.Tenant, out.virtualSeconds); serr == nil {
			s.quotas.addStored(j.Tenant, n, s.now())
		}
		if !usedSetup && out.assignments != nil {
			s.store.putSetup(j.SetupHash, out.assignments, s.now().Sub(setupStart).Seconds())
		}
		// Piggyback the tenant's post-spill stored total onto the completed
		// record, so quota accounting survives a restart even when the store
		// scan undercounts (a spill lost to a torn write or eviction).
		_, st, _ := s.quotas.snapshot(j.Tenant, s.now())
		storedTotal = &st
	}
	s.results.Put(j.Hash, resultEntry{result: out.result, events: out.events}, out.virtualSeconds)
	if !usedSetup && out.assignments != nil {
		s.setups.Put(j.SetupHash, setupEntry{assignments: out.assignments}, s.now().Sub(setupStart).Seconds())
	}
	s.observeVirtual(out.virtualSeconds)
	label := "none"
	if usedSetup {
		label = "setup"
	}
	s.finalize(j, recCompleted, storedTotal, func(now time.Time) {
		j.finish(now, out.result, out.events, nil, false, usedSetup)
	})
	s.count("stencilserve_jobs_completed_total", telemetry.Label{Key: "cache", Value: label})
}

// errDeadline marks a job preempted (or never started) because its
// wall-clock deadline passed.
var errDeadline = errors.New("serve: deadline exceeded")

// retryOrFail handles a worker death (a panic out of the engine): the job is
// requeued with exponential backoff up to Config.RetryLimit attempts, then
// failed. The worker itself survives — the panic is recovered in execute —
// so the pool never shrinks.
func (s *Server) retryOrFail(j *Job, panicVal any) {
	if s.killed.Load() {
		return
	}
	s.count("stencilserve_jobs_retried_total")
	attempts := j.status(false).Attempts
	if attempts > s.cfg.RetryLimit {
		s.finalize(j, recFailed, nil, func(now time.Time) {
			j.finish(now, nil, nil, fmt.Errorf("serve: worker died after %d attempts: %v", attempts, panicVal), false, false)
		})
		s.count("stencilserve_jobs_failed_total")
		return
	}
	if !j.requeue() {
		// A racing cancel or kill already finalized the job.
		s.quotas.release(j.Tenant, s.now())
		return
	}
	backoff := s.cfg.RetryBackoff << (attempts - 1)
	time.AfterFunc(backoff, func() {
		if s.killed.Load() {
			return
		}
		if err := s.queue.forcePush(j); err != nil {
			// Draining: the retry lost its window.
			s.finalize(j, recFailed, nil, func(now time.Time) {
				j.finish(now, nil, nil, fmt.Errorf("serve: retry abandoned: %w", err), false, false)
			})
			s.count("stencilserve_jobs_failed_total")
		}
	})
}

// count bumps a server counter under the recorder mutex.
func (s *Server) count(name string, labels ...telemetry.Label) {
	s.telMu.Lock()
	s.tel.Counter(name, labels...).Inc()
	s.telMu.Unlock()
}

// observeVirtual accumulates simulated seconds served from real engine runs.
func (s *Server) observeVirtual(sec float64) {
	s.telMu.Lock()
	s.tel.Counter("stencilserve_virtual_seconds_total").Add(sec)
	s.telMu.Unlock()
}

// observe records one sample in a wall-clock latency histogram under the
// recorder mutex. Serve's recorder is operator-facing (scraped, never
// byte-gated), so host-dependent latencies are fine here — unlike engine
// recorders, which hold virtual-time quantities only.
func (s *Server) observe(name string, v float64) {
	s.telMu.Lock()
	s.tel.Histogram(name, telemetry.SecondsBuckets).Observe(v)
	s.telMu.Unlock()
}

// CacheStats reports both caches' cumulative hit/miss counters.
func (s *Server) CacheStats() (resultHits, resultMisses, setupHits, setupMisses int64) {
	resultHits, resultMisses, _ = s.results.Stats()
	setupHits, setupMisses, _ = s.setups.Stats()
	return
}

// Recovery reports what the boot-time replay rebuilt (zero value when no
// DataDir is configured or the directory was fresh).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// JournalStats is the exported view of the journal's append-side counters.
type JournalStats struct {
	Records     int64 `json:"records"`
	Bytes       int64 `json:"bytes"`
	Syncs       int64 `json:"syncs"`        // group commits: fsyncs, each covering >=1 record
	Size        int64 `json:"size"`         // current file size (bytes)
	SyncedBytes int64 `json:"synced_bytes"` // fsync'd prefix — the replication shipping bound
	Epoch       int64 `json:"epoch"`        // bumped by each compaction
}

// JournalStats reports the journal counters (zero when in-memory only).
func (s *Server) JournalStats() JournalStats {
	if s.journal == nil {
		return JournalStats{}
	}
	st := s.journal.stats()
	return JournalStats{
		Records: st.Records, Bytes: st.Bytes, Syncs: st.Syncs,
		Size: st.Size, SyncedBytes: st.SyncedBytes, Epoch: st.Epoch,
	}
}

// QueueDepth reports the number of queued jobs.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// ---- HTTP layer ----

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit (body: jobspec.Spec JSON; X-Tenant header)
//	GET    /v1/jobs            list statuses (?tenant= filters)
//	GET    /v1/jobs/{id}       status with spec
//	GET    /v1/jobs/{id}/result  deterministic result document (409 until done)
//	GET    /v1/jobs/{id}/events  NDJSON stream, follows a live job
//	GET    /v1/jobs/{id}/trace   wall-clock trace (?format=perfetto for Chrome JSON)
//	DELETE /v1/jobs/{id}       cancel a queued or running job (409 if done)
//	GET    /metrics            Prometheus text + runtime/metrics snapshot
//	GET    /healthz            liveness: always 200 while the process serves
//	GET    /readyz             readiness: 200, or 503 when draining
//	GET    /debug/pprof/       host-side CPU/heap/goroutine profiling
//
// Replication (durable servers only; all are 404 without a DataDir):
//
//	GET    /v1/replicate/stream    NDJSON frame stream from ?from=&epoch=
//	GET    /v1/replicate/snapshot  journal prefix + artifact manifest
//	GET    /v1/replicate/manifest  artifact manifest (anti-entropy diff)
//	GET    /v1/replicate/artifact/{kind}/{hash}  one artifact's bytes
//	POST   /v1/promote             409 here (already primary); followers serve it
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.journal != nil {
		mux.HandleFunc("GET /v1/replicate/stream", s.handleReplicateStream)
		mux.HandleFunc("GET /v1/replicate/snapshot", s.handleReplicateSnapshot)
		mux.HandleFunc("GET /v1/replicate/manifest", s.handleReplicateManifest)
		mux.HandleFunc("GET /v1/replicate/artifact/{kind}/{hash}", s.handleReplicateArtifact)
	}
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	// Admin profiling: the stdlib pprof handlers, registered explicitly so
	// the service's mux (not http.DefaultServeMux) serves them.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// httpError is the JSON error body every non-2xx response carries; the
// README documents the schema. Code is always set; the backpressure fields
// (tenant, queue depth, retry hint) appear on 429/503 rejections.
type httpError struct {
	Error             string  `json:"error"`
	Code              string  `json:"code,omitempty"`
	Tenant            string  `json:"tenant,omitempty"`
	QueueDepth        int     `json:"queue_depth,omitempty"`
	RetryAfterSeconds float64 `json:"retry_after_s,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, httpError{Error: err.Error(), Code: code})
}

// writeAdmissionError maps a refused submission: 503 when draining, 429
// otherwise, always with a Retry-After header and the structured body.
func writeAdmissionError(w http.ResponseWriter, ae *AdmissionError) {
	status := http.StatusTooManyRequests
	if ae.Code == CodeDraining {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfterSeconds()))
	writeJSON(w, status, httpError{
		Error:             ae.Error(),
		Code:              ae.Code,
		Tenant:            ae.Tenant,
		QueueDepth:        ae.QueueDepth,
		RetryAfterSeconds: ae.RetryAfter.Seconds(),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec := &jobspec.Spec{}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("serve: bad spec: %w", err))
		return
	}
	j, err := s.Submit(r.Header.Get("X-Tenant"), spec)
	if err != nil {
		var ae *AdmissionError
		if errors.As(err, &ae) {
			writeAdmissionError(w, ae)
			return
		}
		// Everything else is a spec the engine would reject: 400.
		writeError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		j.Wait()
	}
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs(r.URL.Query().Get("tenant")))
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	result, state := j.Result()
	if state != StateDone {
		writeError(w, http.StatusConflict, CodeConflict, fmt.Errorf("serve: job %s is %s", j.ID, state))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	j.Stream(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	t := j.trace()
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		t.WritePerfetto(w)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st, cancelled, err := s.Cancel(j.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	if !cancelled {
		writeError(w, http.StatusConflict, CodeConflict,
			fmt.Errorf("serve: job %s is %s and cannot be cancelled", j.ID, st.State))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Point-in-time gauges are set at scrape so the recorder stays simple.
	resH, resM, resE := s.results.Stats()
	setH, setM, setE := s.setups.Stats()
	s.telMu.Lock()
	defer s.telMu.Unlock()
	s.tel.Gauge("stencilserve_queue_depth").Set(float64(s.QueueDepth()))
	s.tel.Gauge("stencilserve_result_cache_hits").Set(float64(resH))
	s.tel.Gauge("stencilserve_result_cache_misses").Set(float64(resM))
	s.tel.Gauge("stencilserve_result_cache_evictions").Set(float64(resE))
	s.tel.Gauge("stencilserve_setup_cache_hits").Set(float64(setH))
	s.tel.Gauge("stencilserve_setup_cache_misses").Set(float64(setM))
	s.tel.Gauge("stencilserve_setup_cache_evictions").Set(float64(setE))
	s.tel.Gauge("stencilserve_result_cache_entries").Set(float64(s.results.Len()))
	s.tel.Gauge("stencilserve_setup_cache_entries").Set(float64(s.setups.Len()))
	s.tel.Gauge("stencilserve_stored_bytes").Set(float64(s.quotas.storedBytesTotal()))
	if s.journal != nil {
		js := s.journal.stats()
		s.tel.Gauge("stencilserve_journal_records").Set(float64(js.Records))
		s.tel.Gauge("stencilserve_journal_bytes").Set(float64(js.Bytes))
		s.tel.Gauge("stencilserve_journal_group_commits").Set(float64(js.Syncs))
		s.tel.Gauge("stencilserve_journal_size_bytes").Set(float64(js.Size))
		s.tel.Gauge("stencilserve_journal_synced_bytes").Set(float64(js.SyncedBytes))
		s.tel.Gauge("stencilserve_journal_epoch").Set(float64(js.Epoch))
		s.tel.Gauge("stencilserve_replication_streams").Set(float64(s.rep.streams.Load()))
		s.tel.Gauge("stencilserve_replication_rec_frames_total").Set(float64(s.rep.recFrames.Load()))
		s.tel.Gauge("stencilserve_replication_artifact_frames_total").Set(float64(s.rep.artFrames.Load()))
		s.tel.Gauge("stencilserve_replication_snapshots_total").Set(float64(s.rep.snapshots.Load()))
		s.tel.Gauge("stencilserve_journal_compactions_total").Set(float64(s.rep.compactions.Load()))
	}
	if s.recovery.JournalRecords > 0 || s.recovery.Reenqueued > 0 || s.recovery.ResultsRehydrated > 0 {
		s.tel.Gauge("stencilserve_recovery_journal_records").Set(float64(s.recovery.JournalRecords))
		s.tel.Gauge("stencilserve_recovery_torn_records").Set(float64(s.recovery.TornRecords))
		s.tel.Gauge("stencilserve_recovery_reenqueued_jobs").Set(float64(s.recovery.Reenqueued))
		s.tel.Gauge("stencilserve_recovery_completed_jobs").Set(float64(s.recovery.Completed))
		s.tel.Gauge("stencilserve_recovery_rehydrated_results").Set(float64(s.recovery.ResultsRehydrated))
		s.tel.Gauge("stencilserve_recovery_rehydrated_setups").Set(float64(s.recovery.SetupsRehydrated))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.WritePrometheus(w)
	// The Go runtime's own health (heap, GC, scheduler) is appended after the
	// recorder's families rather than stored in the recorder: these are
	// host-side point-in-time readings, not part of the service's counters.
	writeRuntimeMetrics(w)
}

// handleHealthz is liveness only: 200 whenever the process can answer,
// including while draining — a draining server is alive, just not ready.
// Orchestrators restart on failed liveness and de-route on failed readiness;
// conflating them (as this endpoint once did) turns every graceful drain
// into a kill. Role and mode ride along for humans.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	mode := "ok"
	if draining {
		mode = "draining"
	} else if d := s.degradeDepth(); d > 0 && s.queue.depth() >= d {
		mode = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": mode, "role": "primary"})
}

// handleReadyz is the routing decision: 503 stops new traffic when draining
// (or after a simulated kill). Degraded mode stays ready — cache hits still
// serve, and de-routing the whole node would shed them too.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining || s.killed.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "role": "primary"})
}
