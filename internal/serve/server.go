// Package serve is stencilserve's core: a multi-tenant simulation job
// service over the deterministic stencil engine.
//
// Jobs are jobspec.Spec documents submitted over HTTP/JSON. A sharded worker
// pool runs each job on a fresh, isolated engine; per-tenant fair queueing
// bounds how much one tenant can delay another, and a bounded queue applies
// backpressure (429) under overload.
//
// Determinism is the load-bearing property. The engine maps a normalized
// spec to byte-identical result and event bytes on every run, which makes
// two cache layers correct by construction:
//
//   - the result cache (key: jobspec.Hash) replays whole result documents
//     without running an engine at all, and
//   - the setup cache (key: jobspec.SetupHash) reuses the phase-2 placement
//     across jobs that differ only in scenario or run length, injected via
//     stencil.Config.PresetPlacement. The QAP solver is deterministic, so an
//     injected placement reproduces the computed one bit-exactly.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// Config shapes a Server.
type Config struct {
	// Workers is the worker-pool size; 0 uses GOMAXPROCS. Negative starts
	// no workers at all, so jobs stay queued — a test hook for exercising
	// queue-state transitions deterministically.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs across
	// all tenants; 0 defaults to 1024. Submissions beyond it get 429.
	QueueDepth int
	// ResultCacheEntries and SetupCacheEntries bound the two caches;
	// 0 defaults to 4096 each.
	ResultCacheEntries int
	SetupCacheEntries  int
}

// Server owns the queue, the worker pool, the job registry, and the caches.
type Server struct {
	cfg     Config
	queue   *fairQueue
	results *Cache[resultEntry]
	setups  *Cache[[][]int]

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int

	// The telemetry recorder is not thread-safe (it is built for the
	// engine's single-threaded event loop), so every access goes through
	// telMu.
	telMu sync.Mutex
	tel   *telemetry.Recorder

	draining bool
	wg       sync.WaitGroup

	// now is the wall clock, swappable in tests.
	now func() time.Time
}

// NewServer starts the worker pool and returns a ready server.
func NewServer(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	} else if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	s := &Server{
		cfg:     cfg,
		queue:   newFairQueue(cfg.QueueDepth),
		results: NewCache[resultEntry](cfg.ResultCacheEntries),
		setups:  NewCache[[][]int](cfg.SetupCacheEntries),
		jobs:    make(map[string]*Job),
		tel:     telemetry.New(),
		now:     time.Now,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates, registers, and enqueues a job. It is the programmatic
// form of POST /v1/jobs; the HTTP layer maps the error to a status code
// (validation → 400, ErrQueueFull → 429, ErrDraining → 503).
func (s *Server) Submit(tenant string, spec *jobspec.Spec) (*Job, error) {
	if tenant == "" {
		tenant = "anonymous"
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	setupHash, err := spec.SetupHash()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, tenant, spec, hash, setupHash, s.now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.queue.push(j); err != nil {
		// Roll back the registration; the ID is burned, which is harmless.
		s.mu.Lock()
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, err
	}
	s.count("stencilserve_jobs_submitted_total", telemetry.Label{Key: "tenant", Value: tenant})
	return j, nil
}

// Job returns a registered job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists job statuses in submission order, optionally filtered by
// tenant.
func (s *Server) Jobs(tenant string) []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		out = append(out, j.status(false))
	}
	return out
}

// Cancel cancels a queued or running job; terminal jobs report false.
// Queued jobs transition to cancelled immediately. Running jobs are
// preempted cooperatively: the flag set here is polled by the engine's
// coordinator at every iteration safe point, the run stops at the next
// boundary, and the worker finalizes the cancelled state — so true for a
// running job means cancellation was accepted, and the status still reads
// "running" until the engine reaches that boundary.
func (s *Server) Cancel(id string) (Status, bool, error) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, false, fmt.Errorf("serve: no job %q", id)
	}
	// Remove-then-cancel: once remove succeeds no worker can pop the job,
	// so the queued→cancelled transition cannot race a start.
	if s.queue.remove(j) && j.cancel(s.now()) {
		s.count("stencilserve_jobs_cancelled_total")
		return j.status(false), true, nil
	}
	// The job left the queue: it is running (or a worker just popped it),
	// or it already finished. Arm the preemption flag in the former case.
	if j.requestPreempt() {
		return j.status(false), true, nil
	}
	return j.status(false), false, nil
}

// Drain stops intake (new submissions get 503), lets the workers finish
// every queued and running job, and returns when the pool is idle. The
// SIGTERM path of cmd/stencilserve.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()
	s.wg.Wait()
}

// worker pops jobs in tenant-fair order until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// execute runs one job through the cache layers and the engine. Every phase
// is stamped onto the job's wall-clock trace (lapClock → j.addSpan) and the
// queue-wait and run-duration histograms; none of that timing can reach the
// cached result or event bytes, which stay pure functions of the spec.
func (s *Server) execute(j *Job) {
	wait := j.start(s.now())
	s.observe("stencilserve_queue_wait_seconds", wait.Seconds())
	lap := newLapClock(s.now, j.addSpan)

	// Layer 1: whole-result cache. A hit replays the stored bytes — no
	// engine run at all. Correct because Hash determines the result bytes.
	if e, ok := s.results.Get(j.Hash); ok {
		lap.lap("cache-lookup", "result-hit")
		j.finish(s.now(), e.result, e.events, nil, true, false)
		s.count("stencilserve_jobs_completed_total", telemetry.Label{Key: "cache", Value: "result"})
		return
	}

	// Layer 2: setup cache. A hit injects the cached phase-2 placement and
	// skips the QAP solve; the run itself still happens.
	var preset [][]int
	usedSetup := false
	if j.Spec.CacheableSetup() {
		if p, ok := s.setups.Get(j.SetupHash); ok {
			preset = p
			usedSetup = true
		}
	}
	if usedSetup {
		lap.lap("cache-lookup", "setup-hit")
	} else {
		lap.lap("cache-lookup", "miss")
	}

	runStart := s.now()
	out, err := runJob(j.Spec, j.Hash, preset, j.preempt.Load, lap)
	s.observe("stencilserve_run_seconds", s.now().Sub(runStart).Seconds())
	if err == errPreempted {
		// The engine honored a mid-run /cancel: the job ends cancelled (not
		// failed), its partial bytes are never cached, and this worker is
		// immediately free for the next job.
		j.finishCancelled(s.now())
		s.count("stencilserve_jobs_cancelled_total")
		return
	}
	if err != nil {
		j.finish(s.now(), nil, nil, err, false, usedSetup)
		s.count("stencilserve_jobs_failed_total")
		return
	}
	s.results.Put(j.Hash, resultEntry{result: out.result, events: out.events})
	if !usedSetup && out.assignments != nil {
		s.setups.Put(j.SetupHash, out.assignments)
	}
	s.observeVirtual(out.virtualSeconds)
	j.finish(s.now(), out.result, out.events, nil, false, usedSetup)
	label := "none"
	if usedSetup {
		label = "setup"
	}
	s.count("stencilserve_jobs_completed_total", telemetry.Label{Key: "cache", Value: label})
}

// count bumps a server counter under the recorder mutex.
func (s *Server) count(name string, labels ...telemetry.Label) {
	s.telMu.Lock()
	s.tel.Counter(name, labels...).Inc()
	s.telMu.Unlock()
}

// observeVirtual accumulates simulated seconds served from real engine runs.
func (s *Server) observeVirtual(sec float64) {
	s.telMu.Lock()
	s.tel.Counter("stencilserve_virtual_seconds_total").Add(sec)
	s.telMu.Unlock()
}

// observe records one sample in a wall-clock latency histogram under the
// recorder mutex. Serve's recorder is operator-facing (scraped, never
// byte-gated), so host-dependent latencies are fine here — unlike engine
// recorders, which hold virtual-time quantities only.
func (s *Server) observe(name string, v float64) {
	s.telMu.Lock()
	s.tel.Histogram(name, telemetry.SecondsBuckets).Observe(v)
	s.telMu.Unlock()
}

// CacheStats reports both caches' cumulative hit/miss counters.
func (s *Server) CacheStats() (resultHits, resultMisses, setupHits, setupMisses int64) {
	resultHits, resultMisses = s.results.Stats()
	setupHits, setupMisses = s.setups.Stats()
	return
}

// QueueDepth reports the number of queued jobs.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// ---- HTTP layer ----

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit (body: jobspec.Spec JSON; X-Tenant header)
//	GET    /v1/jobs            list statuses (?tenant= filters)
//	GET    /v1/jobs/{id}       status with spec
//	GET    /v1/jobs/{id}/result  deterministic result document (409 until done)
//	GET    /v1/jobs/{id}/events  NDJSON stream, follows a live job
//	GET    /v1/jobs/{id}/trace   wall-clock trace (?format=perfetto for Chrome JSON)
//	DELETE /v1/jobs/{id}       cancel a queued or running job (409 if done)
//	GET    /metrics            Prometheus text + runtime/metrics snapshot
//	GET    /healthz            200, or 503 when draining
//	GET    /debug/pprof/       host-side CPU/heap/goroutine profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Admin profiling: the stdlib pprof handlers, registered explicitly so
	// the service's mux (not http.DefaultServeMux) serves them.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// httpError is the JSON error body every non-2xx response carries.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, httpError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec := &jobspec.Spec{}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad spec: %w", err))
		return
	}
	j, err := s.Submit(r.Header.Get("X-Tenant"), spec)
	switch {
	case err == ErrQueueFull:
		writeError(w, http.StatusTooManyRequests, err)
		return
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		// Everything else is a spec the engine would reject: 400.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		j.Wait()
	}
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs(r.URL.Query().Get("tenant")))
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	result, state := j.Result()
	if state != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: job %s is %s", j.ID, state))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	j.Stream(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	t := j.trace()
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		t.WritePerfetto(w)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st, cancelled, err := s.Cancel(j.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !cancelled {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s and cannot be cancelled", j.ID, st.State))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Point-in-time gauges are set at scrape so the recorder stays simple.
	resH, resM, setH, setM := s.CacheStats()
	s.telMu.Lock()
	defer s.telMu.Unlock()
	s.tel.Gauge("stencilserve_queue_depth").Set(float64(s.QueueDepth()))
	s.tel.Gauge("stencilserve_result_cache_hits").Set(float64(resH))
	s.tel.Gauge("stencilserve_result_cache_misses").Set(float64(resM))
	s.tel.Gauge("stencilserve_setup_cache_hits").Set(float64(setH))
	s.tel.Gauge("stencilserve_setup_cache_misses").Set(float64(setM))
	s.tel.Gauge("stencilserve_result_cache_entries").Set(float64(s.results.Len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.WritePrometheus(w)
	// The Go runtime's own health (heap, GC, scheduler) is appended after the
	// recorder's families rather than stored in the recorder: these are
	// host-side point-in-time readings, not part of the service's counters.
	writeRuntimeMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
