package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// The failover lease: a shared JSON file naming the current primary.
//
// The lease is advisory coordination for automatic promotion, not a
// distributed lock — the deployments this targets put primary and standby
// data directories on storage that both processes can reach (the follower
// needs no shared storage for replication itself, only for the lease). The
// holder refreshes its stamp every ttl/3; a peer observing a stamp older
// than ttl may steal the lease. Writes are atomic (temp + rename) and every
// acquisition is confirmed by re-reading the file, so of two simultaneous
// stealers exactly one wins — the loser sees the winner's name and stands
// down. A stale primary that wakes from a long pause discovers the theft at
// its next refresh (the holder changed) and must demote itself: the
// refresh-false contract every caller handles.

// leaseRecord is the on-disk lease: who holds it and when they last proved
// liveness.
type leaseRecord struct {
	Holder   string `json:"holder"`
	UnixNano int64  `json:"ts"`
}

// lease wraps one lease file with its timeout policy.
type lease struct {
	path string
	ttl  time.Duration
	now  func() time.Time // swappable in tests
}

func newLease(path string, ttl time.Duration, now func() time.Time) *lease {
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &lease{path: path, ttl: ttl, now: now}
}

// read loads the lease file; ok=false means absent or undecodable (both
// mean: nobody holds it).
func (l *lease) read() (leaseRecord, bool) {
	b, err := os.ReadFile(l.path)
	if err != nil {
		return leaseRecord{}, false
	}
	var rec leaseRecord
	if json.Unmarshal(b, &rec) != nil || rec.Holder == "" {
		return leaseRecord{}, false
	}
	return rec, true
}

// expired reports whether a lease record's stamp is past the ttl.
func (l *lease) expired(rec leaseRecord) bool {
	return l.now().Sub(time.Unix(0, rec.UnixNano)) > l.ttl
}

// write stamps the lease for holder via atomic rename.
func (l *lease) write(holder string) error {
	b, err := json.Marshal(leaseRecord{Holder: holder, UnixNano: l.now().UnixNano()})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), ".lease-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(b, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), l.path)
}

// acquire takes the lease if it is free, expired, or already ours. The
// write-then-confirm read resolves simultaneous stealers: both may write,
// but the last rename wins and both re-read the same winner.
func (l *lease) acquire(holder string) (bool, error) {
	rec, ok := l.read()
	if ok && rec.Holder != holder && !l.expired(rec) {
		return false, nil // held by a live peer
	}
	if err := l.write(holder); err != nil {
		return false, err
	}
	rec, ok = l.read()
	return ok && rec.Holder == holder, nil
}

// refresh re-stamps a lease the caller believes it holds. false means the
// lease was stolen (or deleted) — the caller is no longer primary and must
// demote itself immediately, before accepting another write.
func (l *lease) refresh(holder string) (bool, error) {
	rec, ok := l.read()
	if !ok || rec.Holder != holder {
		return false, nil
	}
	if err := l.write(holder); err != nil {
		return false, err
	}
	return true, nil
}

// release surrenders the lease if still held (graceful shutdown, so the
// standby can take over without waiting out the ttl).
func (l *lease) release(holder string) {
	if rec, ok := l.read(); ok && rec.Holder == holder {
		os.Remove(l.path)
	}
}
