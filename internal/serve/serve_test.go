package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/jobspec"
)

// tinySpec is a job small enough to run thousands of times in a test.
func tinySpec() *jobspec.Spec {
	s := jobspec.Default()
	s.RanksPerNode = 2
	s.Domain = "12"
	s.Radius = 1
	s.Quantities = 1
	s.Iters = 2
	return s
}

func postSpec(t *testing.T, ts *httptest.Server, tenant string, spec *jobspec.Spec, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestSubmitWaitResult(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postSpec(t, ts, "alice", tinySpec(), "?wait=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %q after wait, want done (%s)", st.State, body)
	}
	if st.SpecHash == "" || st.SetupHash == "" {
		t.Fatalf("missing hashes in status: %s", body)
	}

	resp, body = get(t, ts, "/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != ResultSchema || res.SpecHash != st.SpecHash {
		t.Fatalf("result doc mismatch: schema %q spec_hash %q", res.Schema, res.SpecHash)
	}
	if len(res.IterationsSeconds) != 2 || res.MeanSeconds <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

// Resubmitting an identical job must be served from the result cache with
// byte-identical result and event bodies — the acceptance criterion of the
// whole-result cache.
func TestResultCacheByteIdentical(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids [2]string
	for i := range ids {
		resp, body := postSpec(t, ts, "alice", tinySpec(), "?wait=1")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		wantCache := ""
		if i == 1 {
			wantCache = "result"
		}
		if st.Cache != wantCache {
			t.Fatalf("submit %d: cache %q, want %q", i, st.Cache, wantCache)
		}
	}

	var results, events [2][]byte
	for i, id := range ids {
		resp, body := get(t, ts, "/v1/jobs/"+id+"/result")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: %d", id, resp.StatusCode)
		}
		results[i] = body
		resp, body = get(t, ts, "/v1/jobs/"+id+"/events")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events %s: %d", id, resp.StatusCode)
		}
		events[i] = body
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Errorf("result bodies differ:\n%s\nvs\n%s", results[0], results[1])
	}
	// Event streams differ only in lifecycle lines' cache annotation; the
	// telemetry block between them must be byte-identical.
	if !bytes.Equal(stripLifecycle(events[0]), stripLifecycle(events[1])) {
		t.Errorf("telemetry event bytes differ between cold and cached run")
	}
	if hits, _, _, _ := s.CacheStats(); hits != 1 {
		t.Errorf("result cache hits = %d, want 1", hits)
	}
}

// stripLifecycle drops the serve-layer state lines, leaving the engine's
// telemetry events.
func stripLifecycle(stream []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if len(line) == 0 || bytes.Contains(line, []byte(`"kind":"state"`)) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// Jobs sharing setup (same topology/partition inputs) but differing in run
// shape must hit the setup cache, and the warm run must produce exactly the
// bytes a cold run of the same spec would.
func TestSetupCacheReuse(t *testing.T) {
	a := tinySpec()
	b := tinySpec()
	b.Iters = 3 // different job hash, same setup hash

	// Cold reference for b on a fresh server (no caches warm).
	ref := NewServer(Config{Workers: 1})
	jRef, err := ref.Submit("", b)
	if err != nil {
		t.Fatal(err)
	}
	jRef.Wait()
	refBytes, _ := jRef.Result()
	ref.Drain()

	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	jA, err := s.Submit("", a)
	if err != nil {
		t.Fatal(err)
	}
	jA.Wait()
	jB, err := s.Submit("", b)
	if err != nil {
		t.Fatal(err)
	}
	if st := jB.Wait(); st != StateDone {
		t.Fatalf("warm job state %q", st)
	}
	if jB.status(false).Cache != "setup" {
		t.Fatalf("warm job cache %q, want setup", jB.status(false).Cache)
	}
	warmBytes, _ := jB.Result()
	if !bytes.Equal(refBytes, warmBytes) {
		t.Errorf("setup-cached run differs from cold run:\n%s\nvs\n%s", refBytes, warmBytes)
	}
	if _, _, setupHits, _ := s.CacheStats(); setupHits != 1 {
		t.Errorf("setup cache hits = %d, want 1", setupHits)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown field", `{"nodes": 1, "ranks_per_node": 2, "domain": "12", "radius": 1, "quantities": 1, "bogus": 1}`, "bogus"},
		{"bad caps", `{"nodes": 1, "ranks_per_node": 2, "domain": "12", "radius": 1, "quantities": 1, "caps": "warp"}`, "caps"},
		{"indivisible ranks", `{"nodes": 1, "ranks_per_node": 4, "domain": "12", "radius": 1, "quantities": 1}`, "divisible"},
		{"bad scenario kind", `{"nodes": 1, "ranks_per_node": 2, "domain": "12", "radius": 1, "quantities": 1,
			"scenario": {"events": [{"at": 1, "kind": "explode-node", "target": {"kind": "nic"}}]}}`, "explode-node"},
		{"negative scenario time", `{"nodes": 1, "ranks_per_node": 2, "domain": "12", "radius": 1, "quantities": 1,
			"scenario": {"events": [{"at": -1, "kind": "link-fail", "target": {"kind": "nvlink", "a": 0, "b": 1}}]}}`, "negative"},
		{"fatal without checkpoint", `{"nodes": 1, "ranks_per_node": 2, "domain": "12", "radius": 1, "quantities": 1,
			"scenario": {"events": [{"at": 1, "kind": "gpu-fail", "target": {"kind": "gpu", "a": 0}}]}}`, "checkpoint_every"},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, b)
			continue
		}
		var he httpError
		if err := json.Unmarshal(b, &he); err != nil || he.Error == "" {
			t.Errorf("%s: 400 body not an error document: %s", tc.name, b)
			continue
		}
		if !strings.Contains(he.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, he.Error, tc.want)
		}
	}
}

// A valid scenario submitted over HTTP must round-trip into the engine and
// leave its trace in the result's fault log.
func TestScenarioJobRuns(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec()
	spec.Iters = 4
	sc := &fault.Scenario{Name: "one-degrade"}
	sc.DegradeNIC(2e-4, 0, 0.5)
	spec.Scenario = sc

	resp, body := postSpec(t, ts, "", spec, "?wait=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	json.Unmarshal(body, &st)
	if st.State != StateDone {
		t.Fatalf("state %q (%s)", st.State, body)
	}
	_, body = get(t, ts, "/v1/jobs/"+st.ID+"/result")
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) == 0 {
		t.Errorf("scenario job produced no fault log: %s", body)
	}
}

func TestCancelQueuedOnly(t *testing.T) {
	// No workers: jobs stay queued, so transitions are deterministic.
	s := NewServer(Config{Workers: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postSpec(t, ts, "", tinySpec(), "")
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", resp.StatusCode, b)
	}
	var cst Status
	json.Unmarshal(b, &cst)
	if cst.State != StateCancelled {
		t.Fatalf("state %q, want cancelled", cst.State)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after cancel", s.QueueDepth())
	}

	// Cancelling a terminal job conflicts.
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel cancelled: %d, want 409", resp.StatusCode)
	}

	// The events stream of a cancelled job terminates.
	resp, b = get(t, ts, "/v1/jobs/"+st.ID+"/events")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"cancelled"`)) {
		t.Fatalf("events after cancel: %d %s", resp.StatusCode, b)
	}
}

// TestCancelRunning is the regression lock on mid-run cancellation: a
// running job that receives /cancel stops at the engine's next iteration
// safe point, ends cancelled (not failed), leaves nothing in the result
// cache, and — the original bug — frees its worker slot for the next job.
func TestCancelRunning(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Long enough that the cancel below always lands mid-run: the state
	// poll and DELETE take microseconds; the run takes three orders of
	// magnitude longer.
	long := tinySpec()
	long.Iters = 1500
	j, err := s.Submit("", long)
	if err != nil {
		t.Fatal(err)
	}
	for j.State() == StateQueued {
		time.Sleep(100 * time.Microsecond)
	}
	if st := j.State(); st != StateRunning {
		t.Fatalf("job reached %q without being cancelled", st)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: %d %s", resp.StatusCode, b)
	}
	if st := j.Wait(); st != StateCancelled {
		t.Fatalf("cancelled mid-run job ended %q, want cancelled", st)
	}

	// The partial run must not be served or cached.
	if resp, _ := get(t, ts, "/v1/jobs/"+j.ID+"/result"); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: %d, want 409", resp.StatusCode)
	}
	if hits, _, _, _ := s.CacheStats(); hits != 0 {
		t.Errorf("result cache hits %d after a preempted run, want 0", hits)
	}
	if resp, b := get(t, ts, "/v1/jobs/"+j.ID+"/events"); resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"cancelled"`)) {
		t.Errorf("events of cancelled job: %d %s", resp.StatusCode, b)
	}

	// Cancelling a terminal job still conflicts.
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of terminal job: %d, want 409", resp.StatusCode)
	}

	// The single worker must be free again: a fresh job completes.
	j2, err := s.Submit("", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Wait(); st != StateDone {
		t.Fatalf("follow-up job on the freed worker ended %q, want done", st)
	}
}

func TestBackpressure(t *testing.T) {
	s := NewServer(Config{Workers: -1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if resp, body := postSpec(t, ts, "", tinySpec(), ""); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postSpec(t, ts, "", tinySpec(), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s, want 429", resp.StatusCode, body)
	}
	if got := len(s.Jobs("")); got != 2 {
		t.Fatalf("rejected job left in registry: %d jobs listed", got)
	}
}

func TestFairQueueRotation(t *testing.T) {
	q := newFairQueue(0)
	// Tenant a floods; b and c each submit one job. Round-robin must serve
	// b and c within the first three pops.
	for i := 0; i < 5; i++ {
		q.push(&Job{ID: fmt.Sprintf("a%d", i), Tenant: "a"})
	}
	q.push(&Job{ID: "b0", Tenant: "b"})
	q.push(&Job{ID: "c0", Tenant: "c"})

	var order []string
	for i := 0; i < 7; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		order = append(order, j.ID)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["b0"] > 2 || pos["c0"] > 2 {
		t.Fatalf("flooded tenants starved the small ones: order %v", order)
	}
	// Within tenant a, FIFO order must hold.
	last := -1
	for i := 0; i < 5; i++ {
		p := pos[fmt.Sprintf("a%d", i)]
		if p < last {
			t.Fatalf("tenant FIFO violated: order %v", order)
		}
		last = p
	}
}

func TestDrain(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit("t", tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Drain()
	for _, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Errorf("job %s state %q after drain", j.ID, st)
		}
	}
	if _, err := s.Submit("t", tinySpec()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
	// Liveness stays green through a drain (the process is alive, just not
	// accepting work); readiness is what goes 503.
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while drained: %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("healthz body while drained: %s, want status draining", body)
	}
	resp, _ = get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while drained: %d, want 503", resp.StatusCode)
	}
}

func TestListAndTenants(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tenant := range []string{"a", "a", "b"} {
		if resp, body := postSpec(t, ts, tenant, tinySpec(), "?wait=1"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
	}
	_, body := get(t, ts, "/v1/jobs?tenant=a")
	var list []Status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("tenant a sees %d jobs, want 2: %s", len(list), body)
	}
	_, body = get(t, ts, "/v1/jobs")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("unfiltered list has %d jobs, want 3", len(list))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		postSpec(t, ts, "", tinySpec(), "?wait=1")
	}
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"stencilserve_jobs_submitted_total",
		`stencilserve_jobs_completed_total{cache="result"} 1`,
		"stencilserve_result_cache_hits 1",
		"stencilserve_queue_depth 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeLoad is the ISSUE acceptance criterion: >= 1000 concurrent job
// submissions complete without deadlock under -race, with the result cache
// absorbing the duplicates and every duplicate byte-identical.
func TestServeLoad(t *testing.T) {
	const jobs = 1000
	s := NewServer(Config{QueueDepth: jobs + 64})
	defer s.Drain()

	// Eight distinct specs; every other submission is a duplicate the
	// result cache can serve once its first instance lands.
	specs := make([]*jobspec.Spec, 8)
	for i := range specs {
		sp := tinySpec()
		sp.Iters = 1 + i%4
		sp.Radius = 1 + i/4
		specs[i] = sp
	}

	var wg sync.WaitGroup
	done := make([]*Job, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := *specs[i%len(specs)] // copy: Submit normalizes in place
			j, err := s.Submit(fmt.Sprintf("tenant-%d", i%5), &sp)
			if err != nil {
				errs[i] = err
				return
			}
			j.Wait()
			done[i] = j
		}(i)
	}
	wg.Wait()

	byHash := map[string][]byte{}
	for i, j := range done {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if st := j.State(); st != StateDone {
			t.Fatalf("job %s state %q", j.ID, st)
		}
		res, _ := j.Result()
		if prev, ok := byHash[j.Hash]; ok {
			if !bytes.Equal(prev, res) {
				t.Fatalf("hash %s: result bytes differ between jobs", j.Hash[:12])
			}
		} else {
			byHash[j.Hash] = res
		}
	}
	if len(byHash) != len(specs) {
		t.Errorf("saw %d distinct results, want %d", len(byHash), len(specs))
	}
	hits, misses, _, _ := s.CacheStats()
	if hits+misses != jobs {
		t.Errorf("result cache lookups %d, want %d", hits+misses, jobs)
	}
	// With 8 specs and 1000 jobs, the vast majority must be cache hits
	// (several duplicates may race past the first Put, hence the slack).
	if hits < jobs/2 {
		t.Errorf("result cache hits %d of %d, expected most submissions to hit", hits, jobs)
	}
}
