package serve

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The standby side of replication.
//
// A Follower owns a data directory with exactly the same layout as a
// primary's and one goal: keep that directory a byte-identical (journal)
// and content-identical (artifact) mirror of the primary, continuously. It
// tails the primary's frame stream, appends each shipped journal line at
// its stated offset, folds it through the same journalReplay state machine
// boot recovery uses, and mirrors spilled artifacts. Falling behind or
// joining late is repaired by anti-entropy: a snapshot fetch (journal
// prefix + artifact manifest) re-bases the local state, then the tail
// resumes; a periodic manifest diff backfills artifacts the stream missed.
//
// Frame application is strictly idempotent and gap-free: a frame whose
// offset is below the applied watermark is a duplicate (dropped, counted),
// above it is a gap (the connection is abandoned and re-opened from the
// watermark), exactly at it is appended. Torn or garbage frames count and
// change nothing. The follower's journal therefore only ever grows by
// whole lines the primary fsync'd, in order — which reduces promotion to
// the one code path this package already trusts with durability: Promote
// closes the tail and runs serve.Open on the follower's own DataDir, so
// acknowledged-but-unfinished jobs are re-enqueued exactly as crash
// recovery re-enqueues them after a SIGKILL.
//
// What survives failover is precisely what would survive the primary
// restarting from its own disk at the last shipped offset: every job whose
// submitted record reached the follower. The primary acks after its local
// fsync, not after shipping (replication is asynchronous), so records
// fsync'd in the instant before the primary died may exist only on the
// primary's disk; they are recovered if that disk ever comes back, and the
// replication-lag gauge is the operator's live bound on that window.

// FollowerConfig shapes a Follower.
type FollowerConfig struct {
	// DataDir is the follower's own data directory (journal mirror +
	// artifact store). Required.
	DataDir string
	// Primary is the primary's base URL (e.g. "http://127.0.0.1:8080").
	// Required.
	Primary string

	// Serve configures the server started at promotion; its DataDir and
	// lease fields are overridden with the follower's own.
	Serve Config

	// LagBound is the replication lag (bytes of journal not yet applied)
	// up to which /readyz reports ready; 0 defaults to 1 MiB.
	LagBound int64
	// PollInterval is the reconnect backoff after a stream error; 0
	// defaults to 100ms.
	PollInterval time.Duration
	// HeartbeatTimeout is how long the primary may stay silent before the
	// follower considers it dead (the auto-promotion trigger); 0 defaults
	// to 3s.
	HeartbeatTimeout time.Duration

	// PromoteOnLeaseLoss enables automatic promotion: when the primary has
	// been silent past HeartbeatTimeout AND the lease (if configured) is
	// free, expired, or stealable, the follower promotes itself.
	PromoteOnLeaseLoss bool
	// LeasePath and LeaseTTL name the shared lease file; empty disables
	// lease arbitration (explicit /v1/promote only, or silence-only
	// auto-promotion).
	LeasePath string
	LeaseTTL  time.Duration
	// ID is this replica's lease holder name; empty defaults to
	// "follower".
	ID string

	// Logf receives operational messages; nil discards them.
	Logf func(format string, args ...any)
}

// FollowerStats is the observable replication state.
type FollowerStats struct {
	Applied       int64 `json:"applied_bytes"`        // journal bytes applied locally
	PrimarySynced int64 `json:"primary_synced_bytes"` // primary's last-reported synced offset
	LagBytes      int64 `json:"lag_bytes"`            // max(0, PrimarySynced-Applied)
	Epoch         int64 `json:"epoch"`
	Connected     bool  `json:"connected"`
	RecFrames     int64 `json:"rec_frames"`
	DupFrames     int64 `json:"dup_frames"`
	GapFrames     int64 `json:"gap_frames"`
	TornFrames    int64 `json:"torn_frames"`
	ArtFrames     int64 `json:"artifact_frames"`
	Repairs       int64 `json:"anti_entropy_repairs"`
	Heartbeats    int64 `json:"heartbeats"`
	Reconnects    int64 `json:"reconnects"`
	Snapshots     int64 `json:"snapshots"`
	JobsFolded    int   `json:"jobs_folded"`
	TornRecords   int   `json:"torn_records"` // undecodable journal lines in the fold
}

// Follower tails a primary into a local data directory and can promote
// itself into a Server over that directory.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	lease  *lease

	ctx    context.Context
	cancel context.CancelFunc

	// mu guards every field below. The run loop is the only mutator of
	// replication state; other goroutines (Stats, readyz, Promote) read.
	mu            sync.Mutex
	jf            *os.File // local journal, append-only
	store         *store
	fold          *journalReplay
	applied       int64
	primarySynced int64
	epoch         int64
	connected     bool
	lastHeard     time.Time
	stats         FollowerStats // counter fields only; gauges derived on read

	promoted        *Server
	promotedHandler http.Handler

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// OpenFollower loads (or creates) the local mirror state and starts the
// replication loop.
func OpenFollower(cfg FollowerConfig) (*Follower, error) {
	f, err := newFollowerCore(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Primary == "" {
		return nil, errors.New("serve: follower needs a primary URL")
	}
	go f.loop()
	return f, nil
}

// newFollowerCore builds a Follower's local state without starting the
// network loop — shared by OpenFollower and the frame-decode fuzz target,
// which feeds ingestFrame directly.
func newFollowerCore(cfg FollowerConfig) (*Follower, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("serve: follower needs a DataDir")
	}
	if cfg.LagBound <= 0 {
		cfg.LagBound = 1 << 20
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * time.Second
	}
	st, err := newStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	jp := filepath.Join(cfg.DataDir, JournalName)
	if err := truncateTornTail(jp); err != nil {
		return nil, fmt.Errorf("serve: follower trim journal: %w", err)
	}
	data, err := os.ReadFile(jp)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: follower read journal: %w", err)
	}
	jf, err := os.OpenFile(jp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: follower open journal: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		cfg:       cfg,
		client:    &http.Client{},
		ctx:       ctx,
		cancel:    cancel,
		jf:        jf,
		store:     st,
		fold:      replayJournal(data),
		applied:   int64(len(data)),
		epoch:     readEpochFile(jp),
		lastHeard: time.Now(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if cfg.LeasePath != "" {
		f.lease = newLease(cfg.LeasePath, cfg.LeaseTTL, time.Now)
	}
	return f, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) id() string {
	if f.cfg.ID != "" {
		return f.cfg.ID
	}
	return "follower"
}

// loop is the replication driver: stream, reconnect, and (when configured)
// watch for the primary's death.
func (f *Follower) loop() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		err := f.syncOnce()
		select {
		case <-f.stop:
			return
		default:
		}
		if f.shouldAutoPromote() {
			f.logf("follower: primary silent > %s and lease available; promoting", f.cfg.HeartbeatTimeout)
			if _, perr := f.doPromote(); perr != nil {
				// Lost the promotion race (or the lease): stay a follower
				// and reset the silence clock so we do not spin.
				f.logf("follower: auto-promotion refused: %v", perr)
				f.mu.Lock()
				f.lastHeard = time.Now()
				f.mu.Unlock()
			} else {
				return
			}
		}
		if err != nil {
			f.mu.Lock()
			f.stats.Reconnects++
			f.mu.Unlock()
			select {
			case <-f.stop:
				return
			case <-time.After(f.cfg.PollInterval):
			}
		}
	}
}

// shouldAutoPromote: silence past the heartbeat timeout, and the lease (if
// any) is not held by a live peer other than us.
func (f *Follower) shouldAutoPromote() bool {
	if !f.cfg.PromoteOnLeaseLoss {
		return false
	}
	f.mu.Lock()
	silent := time.Since(f.lastHeard) > f.cfg.HeartbeatTimeout
	promoted := f.promoted != nil
	f.mu.Unlock()
	if !silent || promoted {
		return false
	}
	if f.lease != nil {
		if rec, ok := f.lease.read(); ok && rec.Holder != f.id() && !f.lease.expired(rec) {
			return false
		}
	}
	return true
}

// errResync asks the loop to fetch a snapshot before streaming again.
var errResync = errors.New("serve: follower must resync from snapshot")

// errStreamGap reports a frame past the applied watermark (frames lost in
// flight); the stream is re-opened from the watermark.
var errStreamGap = errors.New("serve: replication stream gap")

// syncOnce opens the stream at the applied watermark and ingests frames
// until the connection ends. A 409 re-bases through a snapshot first.
func (f *Follower) syncOnce() error {
	f.mu.Lock()
	from, epoch := f.applied, f.epoch
	f.mu.Unlock()
	url := fmt.Sprintf("%s/v1/replicate/stream?from=%d&epoch=%d", f.cfg.Primary, from, epoch)
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return f.resync()
	default:
		return fmt.Errorf("serve: replication stream: HTTP %d", resp.StatusCode)
	}

	// Connected: backfill artifacts the stream will not re-ship (spilled
	// while we were away), then ingest the tail. Anti-entropy failure is
	// not fatal to the stream — artifacts are an optimization.
	if err := f.antiEntropy(); err != nil {
		if errors.Is(err, errResync) {
			return f.resync()
		}
		f.logf("follower: anti-entropy: %v", err)
	}
	f.mu.Lock()
	f.connected = true
	f.lastHeard = time.Now()
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.connected = false
		f.mu.Unlock()
	}()

	br := bufio.NewReaderSize(resp.Body, 1<<20)
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 && line[len(line)-1] == '\n' {
			if ferr := f.ingestFrame(line); ferr != nil {
				if errors.Is(ferr, errResync) {
					return f.resync()
				}
				return ferr
			}
		} else if len(line) > 0 {
			// Connection cut mid-frame: a torn frame, by construction
			// harmless — nothing before its newline was applied.
			f.mu.Lock()
			f.stats.TornFrames++
			f.mu.Unlock()
		}
		if rerr != nil {
			return rerr
		}
		select {
		case <-f.stop:
			return nil
		default:
		}
	}
}

// ingestFrame applies one stream line. Malformed input of any shape counts
// and changes nothing; only the errors that require a new connection
// (epoch change, gap, local write failure) propagate.
func (f *Follower) ingestFrame(line []byte) error {
	var fr repFrame
	if json.Unmarshal(line, &fr) != nil || fr.V != frameVersion {
		f.mu.Lock()
		f.stats.TornFrames++
		f.mu.Unlock()
		return nil
	}
	switch fr.T {
	case frameHB:
		f.mu.Lock()
		f.stats.Heartbeats++
		f.lastHeard = time.Now()
		if fr.Synced > f.primarySynced {
			f.primarySynced = fr.Synced
		}
		mismatch := fr.Epoch != f.epoch
		f.mu.Unlock()
		if mismatch {
			return errResync
		}
		return nil
	case frameRec:
		if fr.Epoch != f.epoch {
			return errResync
		}
		var rec []byte
		switch {
		case fr.RecB64 != "":
			b, err := base64.StdEncoding.DecodeString(fr.RecB64)
			if err != nil {
				f.mu.Lock()
				f.stats.TornFrames++
				f.mu.Unlock()
				return nil
			}
			rec = b
		case len(fr.Rec) > 0:
			rec = fr.Rec
		default:
			f.mu.Lock()
			f.stats.TornFrames++
			f.mu.Unlock()
			return nil
		}
		f.mu.Lock()
		if fr.Off < f.applied {
			f.stats.DupFrames++
			f.lastHeard = time.Now()
			f.mu.Unlock()
			return nil
		}
		if fr.Off > f.applied {
			f.stats.GapFrames++
			f.mu.Unlock()
			return errStreamGap
		}
		f.mu.Unlock()
		// Exactly at the watermark: append the line verbatim, then fold it.
		// The journal is bytes first, state second — identical to how the
		// primary's own recovery treats its file.
		buf := make([]byte, 0, len(rec)+1)
		buf = append(buf, rec...)
		buf = append(buf, '\n')
		if _, err := f.jf.Write(buf); err != nil {
			return fmt.Errorf("serve: follower journal append: %w", err)
		}
		f.mu.Lock()
		f.fold.applyLine(rec)
		f.applied += int64(len(buf))
		if fr.Synced > f.primarySynced {
			f.primarySynced = fr.Synced
		}
		f.stats.RecFrames++
		f.lastHeard = time.Now()
		f.mu.Unlock()
		return nil
	case frameArt:
		if fr.B64 != "" {
			// Legacy inline payload.
			data, err := base64.StdEncoding.DecodeString(fr.B64)
			if err != nil || f.store.putRawArtifact(fr.Kind, fr.Hash, data) != nil {
				f.mu.Lock()
				f.stats.TornFrames++
				f.mu.Unlock()
				return nil
			}
		} else {
			// Notification only: pull the bytes raw, out of band. A failed
			// fetch is not torn — the primary may have died or evicted the
			// entry — and the next anti-entropy diff repairs it.
			if _, err := f.fetchArtifact(ArtifactRef{Kind: fr.Kind, Hash: fr.Hash, Size: fr.Size}); err != nil {
				return nil
			}
		}
		f.mu.Lock()
		f.stats.ArtFrames++
		f.lastHeard = time.Now()
		if fr.Synced > f.primarySynced {
			f.primarySynced = fr.Synced
		}
		f.mu.Unlock()
		return nil
	default:
		f.mu.Lock()
		f.stats.TornFrames++
		f.mu.Unlock()
		return nil
	}
}

// antiEntropy diffs the primary's artifact manifest against the local store
// and fetches what is missing or mis-sized.
func (f *Follower) antiEntropy() error {
	var mf manifestDoc
	if err := f.getJSON("/v1/replicate/manifest", &mf); err != nil {
		return err
	}
	f.mu.Lock()
	epoch := f.epoch
	if mf.Synced > f.primarySynced {
		f.primarySynced = mf.Synced
	}
	f.mu.Unlock()
	if mf.Epoch != epoch {
		return errResync
	}
	return f.fetchMissing(mf.Artifacts)
}

// fetchMissing pulls every manifest artifact the local store lacks.
func (f *Follower) fetchMissing(arts []ArtifactRef) error {
	for _, a := range arts {
		stored, err := f.fetchArtifact(a)
		if err != nil {
			return err
		}
		if stored {
			f.mu.Lock()
			f.stats.Repairs++
			f.mu.Unlock()
		}
	}
	return nil
}

// fetchArtifact pulls one artifact's raw bytes from the primary into the
// local store. Returns false without error when the store already has it or
// the primary no longer serves it (evicted between the notification and the
// fetch: the next manifest diff settles it).
func (f *Follower) fetchArtifact(a ArtifactRef) (bool, error) {
	if f.store.hasArtifact(a.Kind, a.Hash, a.Size) {
		return false, nil
	}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/replicate/artifact/%s/%s", f.cfg.Primary, a.Kind, a.Hash), nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return false, nil
	}
	data, err := readAllLimit(resp.Body, 256<<20)
	resp.Body.Close()
	if err != nil {
		return false, err
	}
	if err := f.store.putRawArtifact(a.Kind, a.Hash, data); err != nil {
		f.logf("follower: repair %s/%s: %v", a.Kind, a.Hash, err)
		return false, nil
	}
	return true, nil
}

// resync re-bases the whole local mirror from a primary snapshot: journal
// prefix bytes verbatim, fold rebuilt, artifacts backfilled.
func (f *Follower) resync() error {
	var doc snapshotDoc
	if err := f.getJSON("/v1/replicate/snapshot", &doc); err != nil {
		return err
	}
	if doc.Schema != snapshotSchema {
		return fmt.Errorf("serve: snapshot schema %q", doc.Schema)
	}
	data, err := base64.StdEncoding.DecodeString(doc.JournalB64)
	if err != nil {
		return fmt.Errorf("serve: snapshot journal: %w", err)
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		// Defensive: the primary only ships line-aligned prefixes; a torn
		// snapshot is cut back to its last complete line and the stream
		// re-ships the remainder.
		if i := lastNewline(data); i >= 0 {
			data = data[:i+1]
		} else {
			data = nil
		}
	}
	jp := filepath.Join(f.cfg.DataDir, JournalName)
	tmp, err := os.CreateTemp(f.cfg.DataDir, ".journal-snap-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), jp); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := writeEpochFile(jp, doc.Epoch); err != nil {
		return err
	}
	jf, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.jf.Close()
	f.jf = jf
	f.fold = replayJournal(data)
	f.applied = int64(len(data))
	f.epoch = doc.Epoch
	if doc.Synced > f.primarySynced || doc.Epoch != f.epoch {
		f.primarySynced = doc.Synced
	}
	f.stats.Snapshots++
	f.lastHeard = time.Now()
	f.mu.Unlock()
	f.logf("follower: snapshot applied: %d journal bytes, epoch %d, %d artifacts listed", len(data), doc.Epoch, len(doc.Artifacts))
	return f.fetchMissing(doc.Artifacts)
}

// readAllLimit reads a body with a hard cap — a malformed or hostile
// response cannot balloon follower memory.
func readAllLimit(r io.Reader, limit int64) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("serve: response exceeds %d bytes", limit)
	}
	return b, nil
}

func lastNewline(b []byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == '\n' {
			return i
		}
	}
	return -1
}

func (f *Follower) getJSON(path string, v any) error {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, f.cfg.Primary+path, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Stats reports the current replication state.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Applied = f.applied
	st.PrimarySynced = f.primarySynced
	if lag := f.primarySynced - f.applied; lag > 0 {
		st.LagBytes = lag
	}
	st.Epoch = f.epoch
	st.Connected = f.connected
	st.JobsFolded = len(f.fold.order)
	st.TornRecords = f.fold.torn
	return st
}

// Promoted returns the promoted Server, nil while still following.
func (f *Follower) Promoted() *Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Stop ends replication without promoting (shutdown as a follower). The
// local mirror stays on disk, ready for a later OpenFollower or Promote.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.cancel()
	})
	<-f.done
}

// Promote stops replication and opens a Server over the follower's data
// directory — deterministic failover. Idempotent: a second call returns the
// same Server. With a lease configured, promotion requires winning it: of
// two followers promoted simultaneously, exactly one succeeds and the other
// returns an error naming the winner.
func (f *Follower) Promote() (*Server, error) {
	f.Stop()
	return f.doPromote()
}

// doPromote performs the promotion state machine:
//
//	follower ──(lease won, if configured)──► recovering ──► primary
//
// Recovery is the shared boot path: every journaled-but-unfinished job is
// re-enqueued, completed jobs re-serve their mirrored artifacts, quota
// accounting reseeds — the same transitions a crashed primary's restart
// would make on its own disk.
func (f *Follower) doPromote() (*Server, error) {
	f.mu.Lock()
	if f.promoted != nil {
		s := f.promoted
		f.mu.Unlock()
		return s, nil
	}
	f.mu.Unlock()

	if f.lease != nil {
		ok, err := f.lease.acquire(f.id())
		if err != nil {
			return nil, fmt.Errorf("serve: promote: lease: %w", err)
		}
		if !ok {
			rec, _ := f.lease.read()
			return nil, fmt.Errorf("serve: promote: lease held by %q", rec.Holder)
		}
	}

	f.mu.Lock()
	f.jf.Sync()
	f.jf.Close()
	f.mu.Unlock()

	cfg := f.cfg.Serve
	cfg.DataDir = f.cfg.DataDir
	cfg.LeasePath = f.cfg.LeasePath
	cfg.LeaseTTL = f.cfg.LeaseTTL
	cfg.LeaseID = f.id()
	srv, err := Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: promote: %w", err)
	}
	f.mu.Lock()
	f.promoted = srv
	f.promotedHandler = srv.Handler()
	f.mu.Unlock()
	f.logf("follower: promoted to primary over %s", f.cfg.DataDir)
	return srv, nil
}

// ---- HTTP surface ----

// Handler returns the follower's HTTP API. While following it serves role
// and replication state plus POST /v1/promote; every data-plane route gets
// a 503 naming the primary. From the instant of promotion the full primary
// API is served from the same address.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("POST /v1/promote", f.handlePromote)
	mux.HandleFunc("/", f.handleNotPrimary)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		h := f.promotedHandler
		f.mu.Unlock()
		if h != nil {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// handleHealthz: process-up, role-stamped. Always 200 — liveness is not
// readiness; see /readyz.
func (f *Follower) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "follower"})
}

// handleReadyz: ready only when connected to the primary and within the
// lag bound — a load balancer must not fail over reads to a stale mirror.
func (f *Follower) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := f.Stats()
	if st.Connected && st.LagBytes <= f.cfg.LagBound {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "role": "follower", "lag_bytes": st.LagBytes,
		})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status": "not_ready", "code": CodeNotReady, "role": "follower",
		"connected": st.Connected, "lag_bytes": st.LagBytes, "lag_bound": f.cfg.LagBound,
	})
}

func (f *Follower) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := f.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "stencilserve_replication_applied_bytes %d\n", st.Applied)
	fmt.Fprintf(w, "stencilserve_replication_primary_synced_bytes %d\n", st.PrimarySynced)
	fmt.Fprintf(w, "stencilserve_replication_lag_bytes %d\n", st.LagBytes)
	fmt.Fprintf(w, "stencilserve_replication_epoch %d\n", st.Epoch)
	fmt.Fprintf(w, "stencilserve_replication_connected %d\n", b(st.Connected))
	fmt.Fprintf(w, "stencilserve_replication_rec_frames_total %d\n", st.RecFrames)
	fmt.Fprintf(w, "stencilserve_replication_dup_frames_total %d\n", st.DupFrames)
	fmt.Fprintf(w, "stencilserve_replication_gap_frames_total %d\n", st.GapFrames)
	fmt.Fprintf(w, "stencilserve_replication_torn_frames_total %d\n", st.TornFrames)
	fmt.Fprintf(w, "stencilserve_replication_artifact_frames_total %d\n", st.ArtFrames)
	fmt.Fprintf(w, "stencilserve_replication_repairs_total %d\n", st.Repairs)
	fmt.Fprintf(w, "stencilserve_replication_heartbeats_total %d\n", st.Heartbeats)
	fmt.Fprintf(w, "stencilserve_replication_reconnects_total %d\n", st.Reconnects)
	fmt.Fprintf(w, "stencilserve_replication_snapshots_total %d\n", st.Snapshots)
	fmt.Fprintf(w, "stencilserve_replication_jobs_folded %d\n", st.JobsFolded)
}

func (f *Follower) handlePromote(w http.ResponseWriter, r *http.Request) {
	srv, err := f.Promote()
	if err != nil {
		writeError(w, http.StatusConflict, CodeConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted": true, "reenqueued_jobs": srv.Recovery().Reenqueued,
		"completed_jobs": srv.Recovery().Completed,
	})
}

func (f *Follower) handleNotPrimary(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, httpError{
		Error: fmt.Sprintf("serve: this replica follows %s; submit there or POST /v1/promote here", f.cfg.Primary),
		Code:  CodeNotPrimary,
	})
}
