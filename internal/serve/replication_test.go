package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailoverChaos is the tentpole test: a primary with a live follower is
// killed mid-load (in-process SIGKILL, torn trailing frame on the
// follower's journal), the follower is promoted, and the promoted server
// must serve byte-identical results for every job the primary acknowledged.
func TestFailoverChaos(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	prim, err := Open(Config{Workers: 1, DataDir: primDir, HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(prim.Handler())

	// Pin the single worker on a long job so everything behind it stays
	// queued deterministically — "mid-load" with hundreds in flight.
	pin := tinySpec()
	pin.Iters = 400
	pinJob, err := prim.Submit("t0", pin)
	if err != nil {
		t.Fatal(err)
	}

	const extra = 299
	const distinct = 24
	tenants := []string{"t0", "t1", "t2", "t3"}
	ids := []string{pinJob.ID}
	for i := 0; i < extra; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i%distinct
		j, err := prim.Submit(tenants[i%len(tenants)], sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	if len(ids) < 300 {
		t.Fatalf("only %d acknowledged jobs, want >= 300", len(ids))
	}

	fol, err := OpenFollower(FollowerConfig{
		DataDir:      folDir,
		Primary:      ts.URL,
		Serve:        Config{Workers: 4},
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Stop() // idempotent; guards the early-Fatal paths
	fts := httptest.NewServer(fol.Handler())
	defer fts.Close()

	// Replication lag must reach zero once the submit burst quiesces: the
	// follower's applied offset catches the primary's synced offset.
	waitFor(t, 30*time.Second, "replication lag 0", func() bool {
		st := fol.Stats()
		return st.Applied > 0 && st.Applied == prim.JournalStats().SyncedBytes
	})

	// While in sync, the follower's readyz is green and its data plane
	// redirects to the primary.
	if resp, err := http.Get(fts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower readyz in sync: %v %v", resp.StatusCode, err)
	}
	resp, err := http.Get(fts.URL + "/v1/jobs")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower data plane: got %d, want 503", resp.StatusCode)
	}
	var he httpError
	json.NewDecoder(resp.Body).Decode(&he)
	resp.Body.Close()
	if he.Code != CodeNotPrimary {
		t.Fatalf("follower data plane code %q, want %q", he.Code, CodeNotPrimary)
	}

	// SIGKILL the primary mid-load, then stop the tail and simulate a torn
	// trailing frame on the follower's own journal (a crash cut the last
	// shipped line short). Promotion must count and skip it, nothing more.
	prim.Kill()
	fol.Stop()
	ts.Close()
	jf, err := os.OpenFile(filepath.Join(folDir, JournalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	jf.WriteString(`{"v":1,"rec":"comple`)
	jf.Close()

	s2, err := fol.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if again, err := fol.Promote(); err != nil || again != s2 {
		t.Fatalf("second promote: (%p, %v), want idempotent (%p, nil)", again, err, s2)
	}
	rec := s2.Recovery()
	if rec.Reenqueued != extra+1 {
		t.Errorf("promoted server reenqueued %d jobs, want %d", rec.Reenqueued, extra+1)
	}
	if rec.TornRecords < 1 {
		t.Errorf("torn records %d, want >= 1", rec.TornRecords)
	}

	// The follower's handler now delegates fully to the promoted server.
	if resp, err := http.Get(fts.URL + "/v1/jobs"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted data plane via follower handler: %d %v", resp.StatusCode, err)
	}

	// Zero acknowledged jobs lost: every ID the primary acked exists on the
	// promoted server and completes.
	results := map[string][]byte{} // spec hash -> result bytes
	for _, id := range ids {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("acknowledged job %s lost in failover", id)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("failed-over job %s ended %q: %s", id, st, j.status(false).Error)
		}
		st := j.status(false)
		if !st.Recovered {
			t.Errorf("job %s not flagged recovered", id)
		}
		res, _ := j.Result()
		if prev, ok := results[st.SpecHash]; ok && !bytes.Equal(prev, res) {
			t.Fatalf("job %s: same spec hash, different result bytes", id)
		}
		results[st.SpecHash] = res
	}

	// Byte-identity against a never-crashed reference server.
	ref := NewServer(Config{Workers: 4})
	defer ref.Drain()
	for i := 0; i < distinct; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i
		j, err := ref.Submit("ref", sp)
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
		res, _ := j.Result()
		want, ok := results[j.Hash]
		if !ok {
			t.Fatalf("reference spec hash %s missing from failed-over set", j.Hash)
		}
		if !bytes.Equal(res, want) {
			t.Fatalf("failed-over result for %s differs from uncrashed reference", j.Hash)
		}
	}
}

// TestFollowerAntiEntropy: a follower joining after the primary has already
// completed work catches up through the snapshot + manifest path and mirrors
// the spilled artifacts byte-for-byte.
func TestFollowerAntiEntropy(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	prim, err := Open(Config{Workers: 2, DataDir: primDir, HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sp := tinySpec()
		sp.Iters = 3 + i
		j, err := prim.Submit("alice", sp)
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("job ended %q", st)
		}
	}
	ts := httptest.NewServer(prim.Handler())
	defer ts.Close()

	// Late joiner: its from=0 offset is valid, so it tails from the start;
	// pre-existing artifacts arrive via the connect-time manifest diff.
	fol, err := OpenFollower(FollowerConfig{
		DataDir: folDir, Primary: ts.URL,
		Serve: Config{Workers: 2}, PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Stop() // idempotent; ts.Close would block on a live stream
	waitFor(t, 15*time.Second, "follower catch-up", func() bool {
		js := prim.JournalStats()
		st := fol.Stats()
		// Size == SyncedBytes rules out terminal records still waiting in the
		// group-commit window; only then is Applied == Size full catch-up.
		return js.Size > 0 && js.SyncedBytes == js.Size && st.Applied == js.Size &&
			len(fol.store.manifest()) == len(prim.store.manifest())
	})
	if st := fol.Stats(); st.Repairs < 4 {
		t.Errorf("anti-entropy repairs %d, want >= 4 (results spilled before the follower joined)", st.Repairs)
	}

	// Journal prefix and every artifact are byte-identical across the pair.
	pj, _ := os.ReadFile(filepath.Join(primDir, JournalName))
	fj, _ := os.ReadFile(filepath.Join(folDir, JournalName))
	if !bytes.Equal(pj, fj) {
		t.Fatalf("follower journal differs from primary (%d vs %d bytes)", len(fj), len(pj))
	}
	for _, a := range prim.store.manifest() {
		pb, err1 := prim.store.readArtifact(a.Kind, a.Hash)
		fb, err2 := fol.store.readArtifact(a.Kind, a.Hash)
		if err1 != nil || err2 != nil || !bytes.Equal(pb, fb) {
			t.Fatalf("artifact %s/%s differs across replicas (%v, %v)", a.Kind, a.Hash, err1, err2)
		}
	}

	prim.Kill()
	fol.Stop()
	ts.Close()
	s2, err := fol.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	// Promoted with nothing in flight: all four jobs restore terminal and
	// re-serve from the mirrored spill without an engine run.
	if rec := s2.Recovery(); rec.Completed != 4 || rec.Reenqueued != 0 || rec.ResultsRehydrated != 4 {
		t.Errorf("promoted recovery %+v, want 4 completed, 0 reenqueued, 4 rehydrated", rec)
	}
}

// TestReplicationEpochResync: compacting the primary's journal invalidates
// follower offsets; the follower must detect the epoch change, snapshot, and
// converge on the new lineage.
func TestReplicationEpochResync(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	prim, err := Open(Config{Workers: 2, DataDir: primDir, HeartbeatInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	runOne := func(iters int) {
		sp := tinySpec()
		sp.Iters = iters
		j, err := prim.Submit("alice", sp)
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("job ended %q", st)
		}
	}
	runOne(3)
	ts := httptest.NewServer(prim.Handler())
	defer ts.Close()
	fol, err := OpenFollower(FollowerConfig{
		DataDir: folDir, Primary: ts.URL,
		Serve: Config{Workers: 2}, PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Stop()
	waitFor(t, 15*time.Second, "initial sync", func() bool {
		st := fol.Stats()
		return st.Applied > 0 && st.Applied == prim.JournalStats().SyncedBytes
	})

	if err := prim.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	runOne(4)
	waitFor(t, 15*time.Second, "post-compaction resync", func() bool {
		st := fol.Stats()
		return st.Epoch == prim.JournalStats().Epoch && st.Applied == prim.JournalStats().SyncedBytes
	})
	st := fol.Stats()
	if st.Snapshots < 1 {
		t.Errorf("snapshots %d, want >= 1 (epoch change forces a resync)", st.Snapshots)
	}
	pj, _ := os.ReadFile(filepath.Join(primDir, JournalName))
	fj, _ := os.ReadFile(filepath.Join(folDir, JournalName))
	if !bytes.Equal(pj, fj) {
		t.Fatalf("journals diverged after compaction resync (%d vs %d bytes)", len(fj), len(pj))
	}
}

// FuzzReplicationFrameDecode: arbitrary stream bytes — torn, duplicated,
// reordered, garbage — must never panic the follower or corrupt its local
// journal: the file stays line-aligned and exactly applied-offset long.
func FuzzReplicationFrameDecode(f *testing.F) {
	mk := func(fr repFrame) []byte {
		b, _ := json.Marshal(fr)
		return append(b, '\n')
	}
	rec := json.RawMessage(`{"v":1,"rec":"submitted","job":"j1","tenant":"t","spec_hash":"h","spec":{"iters":3}}`)
	f.Add(mk(repFrame{V: 1, T: frameRec, Epoch: 1, Off: 0, Rec: rec, Synced: int64(len(rec) + 1)}))
	f.Add(mk(repFrame{V: 1, T: frameHB, Epoch: 1, Synced: 99}))
	f.Add(mk(repFrame{V: 1, T: frameRec, Epoch: 1, Off: 500, Rec: rec})) // gap
	f.Add(mk(repFrame{V: 1, T: frameArt, Epoch: 1, Kind: "result", Hash: "zz", B64: "!!!not base64"}))
	f.Add([]byte("{\"v\":1,\"t\":\"rec\",\"off\":0,\"rec_b64\":\"bm90IGpzb24=\"}\n"))
	f.Add([]byte("\x00\xfftorn garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		fol, err := newFollowerCore(FollowerConfig{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer fol.jf.Close()
		for _, line := range bytes.SplitAfter(data, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			// Errors (gap, epoch change) only mean "reconnect"; state must
			// stay consistent regardless.
			fol.ingestFrame(line)
		}
		st := fol.Stats()
		jp := filepath.Join(dir, JournalName)
		fi, err := os.Stat(jp)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != st.Applied {
			t.Fatalf("journal %d bytes but applied offset %d", fi.Size(), st.Applied)
		}
		got, _ := os.ReadFile(jp)
		if len(got) > 0 && got[len(got)-1] != '\n' {
			t.Fatal("follower journal not line-aligned")
		}
		// The incremental fold matches a from-scratch replay of the file.
		rp := replayJournal(got)
		if len(rp.order) != st.JobsFolded {
			t.Fatalf("incremental fold has %d jobs, replay has %d", st.JobsFolded, len(rp.order))
		}
	})
}

// TestLeaseFailover drives the lease protocol through its failover
// scenarios, including the two races that matter: simultaneous promotion
// (exactly one winner) and a stale primary rejoining after its lease was
// stolen (refresh must fail so it demotes).
func TestLeaseFailover(t *testing.T) {
	type env struct {
		now  time.Time
		a, b *lease // two replicas sharing one lease file
	}
	mkEnv := func(t *testing.T) *env {
		e := &env{now: time.Unix(1000, 0)}
		path := filepath.Join(t.TempDir(), "lease.json")
		clock := func() time.Time { return e.now }
		e.a = newLease(path, 2*time.Second, clock)
		e.b = newLease(path, 2*time.Second, clock)
		return e
	}
	mustAcquire := func(t *testing.T, l *lease, holder string, want bool) {
		t.Helper()
		ok, err := l.acquire(holder)
		if err != nil || ok != want {
			t.Fatalf("acquire(%s) = (%v, %v), want %v", holder, ok, err, want)
		}
	}
	cases := []struct {
		name string
		run  func(t *testing.T, e *env)
	}{
		{"fresh acquire succeeds", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
		}},
		{"live holder blocks a peer", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			e.now = e.now.Add(time.Second) // within ttl
			mustAcquire(t, e.b, "b", false)
		}},
		{"reacquiring own lease is free", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			mustAcquire(t, e.a, "a", true)
		}},
		{"expired lease is stolen", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			e.now = e.now.Add(3 * time.Second) // past ttl: a is presumed dead
			mustAcquire(t, e.b, "b", true)
		}},
		{"stale primary must demote after theft", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			e.now = e.now.Add(3 * time.Second)
			mustAcquire(t, e.b, "b", true)
			// a wakes from its pause and tries to re-stamp: the holder
			// changed, so refresh fails — a is no longer primary.
			ok, err := e.a.refresh("a")
			if err != nil || ok {
				t.Fatalf("stale refresh = (%v, %v), want (false, nil)", ok, err)
			}
		}},
		{"simultaneous promote has one winner", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			e.now = e.now.Add(3 * time.Second)
			// Both stealers write before either confirms; the last rename
			// wins and both re-read the same winner.
			if err := e.a.write("a2"); err != nil {
				t.Fatal(err)
			}
			if err := e.b.write("b2"); err != nil {
				t.Fatal(err)
			}
			ra, _ := e.a.read()
			rb, _ := e.b.read()
			if ra.Holder != rb.Holder {
				t.Fatalf("replicas read different winners: %q vs %q", ra.Holder, rb.Holder)
			}
			if got := ra.Holder; got != "b2" {
				t.Fatalf("winner %q, want the last writer b2", got)
			}
		}},
		{"release frees the lease immediately", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			e.a.release("a")
			mustAcquire(t, e.b, "b", true) // no ttl wait
		}},
		{"release by a non-holder is a no-op", func(t *testing.T, e *env) {
			mustAcquire(t, e.a, "a", true)
			e.b.release("b")
			mustAcquire(t, e.b, "b", false) // a still holds
		}},
		{"corrupt lease file counts as free", func(t *testing.T, e *env) {
			if err := os.WriteFile(e.a.path, []byte("not json{"), 0o644); err != nil {
				t.Fatal(err)
			}
			mustAcquire(t, e.b, "b", true)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t, mkEnv(t)) })
	}
}

// copyTree mirrors a data directory for before/after comparisons.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, p)
		q := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(q, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(q, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompactionPreservesRecovery pins the compaction contract: recovering
// from a compacted data directory yields exactly the jobs, states, result
// bytes, and quota accounting that the uncompacted directory yields.
func TestCompactionPreservesRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, DataDir: dir,
		TenantQuota: Quota{SubmitRate: 0.001, SubmitBurst: 50, MaxStoredBytes: 1 << 30},
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tenant := range []string{"alice", "alice", "bob", "bob", "carol"} {
		sp := tinySpec()
		sp.Iters = 3 + i
		j, err := s.Submit(tenant, sp)
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("job ended %q", st)
		}
	}
	// Leave work in flight so compaction must preserve live-job records:
	// pin the worker, queue two more, kill.
	pin := tinySpec()
	pin.Iters = 400
	if _, err := s.Submit("dave", pin); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sp := tinySpec()
		sp.Iters = 30 + i
		if _, err := s.Submit("erin", sp); err != nil {
			t.Fatal(err)
		}
	}
	s.Kill()

	cdir := t.TempDir()
	copyTree(t, dir, cdir)
	before, after, err := CompactDataDir(cdir)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("compaction grew the journal: %d -> %d bytes", before, after)
	}
	if e1, e2 := readEpochFile(filepath.Join(dir, JournalName)), readEpochFile(filepath.Join(cdir, JournalName)); e2 <= e1 {
		t.Errorf("compaction did not bump the epoch: %d -> %d", e1, e2)
	}

	type snap struct {
		states  map[string]State
		results map[string][]byte
		stored  int64
		tokens  float64
	}
	boot := func(d string) snap {
		c := cfg
		c.DataDir = d
		c.Workers = 4
		s, err := Open(c)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Drain()
		out := snap{states: map[string]State{}, results: map[string][]byte{}}
		for _, st := range s.Jobs("") {
			j, _ := s.Job(st.ID)
			state := j.Wait()
			out.states[j.ID] = state
			if state == StateDone {
				res, _ := j.Result()
				out.results[j.ID] = res
			}
		}
		out.stored = s.quotas.storedBytesTotal()
		out.tokens, _, _ = s.quotas.snapshot("alice", s.now())
		return out
	}
	plain, compacted := boot(dir), boot(cdir)

	if len(plain.states) != len(compacted.states) {
		t.Fatalf("job count differs: %d uncompacted vs %d compacted", len(plain.states), len(compacted.states))
	}
	for id, st := range plain.states {
		if compacted.states[id] != st {
			t.Errorf("job %s: state %q uncompacted vs %q compacted", id, st, compacted.states[id])
		}
		if !bytes.Equal(plain.results[id], compacted.results[id]) {
			t.Errorf("job %s: result bytes differ across compaction", id)
		}
	}
	if plain.stored != compacted.stored {
		t.Errorf("stored bytes differ: %d uncompacted vs %d compacted", plain.stored, compacted.stored)
	}
	if plain.tokens != compacted.tokens {
		t.Errorf("alice's token fill differs: %v uncompacted vs %v compacted", plain.tokens, compacted.tokens)
	}
}

// TestAutoCompaction: with CompactBytes set, the journal self-compacts under
// sustained load and stays correct (every job still terminal and servable).
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 2, DataDir: dir, CompactBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i%6
		j, err := s.Submit("t", sp)
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
	}
	waitFor(t, 15*time.Second, "auto compaction", func() bool {
		return s.rep.compactions.Load() >= 1 && !s.compactBusy.Load()
	})
	s.Drain()

	s2, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if got := len(s2.Jobs("")); got != 40 {
		t.Fatalf("recovered %d jobs after auto-compaction, want 40", got)
	}
	for _, st := range s2.Jobs("") {
		j, _ := s2.Job(st.ID)
		if state := j.Wait(); state != StateDone {
			t.Errorf("job %s ended %q after compacted recovery", j.ID, state)
		}
	}
}

// TestQuotaPersistence: token-bucket fill and stored-bytes accounting
// survive a restart within one refill interval — a tenant cannot reset its
// budget by crashing the server, and restarts do not double-count spills.
func TestQuotaPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, DataDir: dir,
		// Near-zero refill rate: the bucket only moves when submits spend it,
		// so before/after comparisons are exact.
		TenantQuota: Quota{SubmitRate: 0.0001, SubmitBurst: 50, MaxStoredBytes: 1 << 30},
	}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sp := tinySpec()
		sp.Iters = 3 + i
		j, err := s1.Submit("alice", sp)
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Wait(); st != StateDone {
			t.Fatalf("job ended %q", st)
		}
	}
	tok1, stored1, _ := s1.quotas.snapshot("alice", s1.now())
	if tok1 > 41 { // 50 burst - 10 spent (+ negligible refill)
		t.Fatalf("token fill %v after 10 submits, want ~40", tok1)
	}
	if stored1 <= 0 {
		t.Fatal("no stored bytes accrued for alice")
	}
	s1.Drain()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tok2, stored2, _ := s2.quotas.snapshot("alice", s2.now())
	if diff := tok2 - tok1; diff < 0 || diff > 1 {
		t.Errorf("token fill after restart %v, want %v (within one refill)", tok2, tok1)
	}
	if stored2 != stored1 {
		t.Errorf("stored bytes after restart %d, want %d (no double-count)", stored2, stored1)
	}
	if s2.Recovery().QuotaTenants < 1 {
		t.Errorf("recovery reseeded %d quota tenants, want >= 1", s2.Recovery().QuotaTenants)
	}

	// Re-running the same specs re-spills over the same content-addressed
	// paths; the putResult delta contract keeps the totals flat.
	for i := 0; i < 10; i++ {
		sp := tinySpec()
		sp.Iters = 3 + i
		j, err := s2.Submit("alice", sp)
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
	}
	_, stored3, _ := s2.quotas.snapshot("alice", s2.now())
	if stored3 != stored1 {
		t.Errorf("stored bytes after cache-hit resubmits %d, want %d", stored3, stored1)
	}
	s2.Drain()

	// A third boot sees the same totals again (max of journal and disk scan,
	// not their sum).
	s3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Drain()
	_, stored4, _ := s3.quotas.snapshot("alice", s3.now())
	if stored4 != stored1 {
		t.Errorf("stored bytes after second restart %d, want %d", stored4, stored1)
	}
}

// TestServerLeaseLoss: a primary whose lease is stolen mid-flight learns it
// at the next refresh and signals LeaseLost.
func TestServerLeaseLoss(t *testing.T) {
	dir := t.TempDir()
	leasePath := filepath.Join(t.TempDir(), "lease.json")
	s, err := Open(Config{
		Workers: 1, DataDir: dir,
		LeasePath: leasePath, LeaseTTL: 90 * time.Millisecond, LeaseID: "prim",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	// A second primary on the same lease must be refused while prim is live.
	if _, err := Open(Config{Workers: 1, DataDir: t.TempDir(), LeasePath: leasePath, LeaseTTL: 90 * time.Millisecond, LeaseID: "usurper"}); err == nil {
		t.Fatal("second Open acquired a live lease")
	} else if !strings.Contains(err.Error(), "prim") {
		t.Fatalf("lease refusal should name the holder: %v", err)
	}

	// Steal the lease out from under it (what a promoted standby does after
	// the ttl) and wait for the refresher to notice.
	thief := newLease(leasePath, 90*time.Millisecond, time.Now)
	if err := thief.write("standby"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.LeaseLost():
	case <-time.After(5 * time.Second):
		t.Fatal("LeaseLost not signalled after the lease was stolen")
	}
}

// TestFollowerReadyzNotReady: a follower that cannot reach its primary
// reports not ready, with the structured code.
func TestFollowerReadyzNotReady(t *testing.T) {
	fol, err := OpenFollower(FollowerConfig{
		DataDir: t.TempDir(), Primary: "http://127.0.0.1:1", // nothing listens
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Stop()
	ts := httptest.NewServer(fol.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead primary: %d, want 503", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), CodeNotReady) {
		t.Fatalf("readyz body missing code %q: %s", CodeNotReady, b)
	}
	// Liveness stays green regardless.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower healthz: %v %v", resp.StatusCode, err)
	}
	if fmt.Sprint(fol.Stats().Reconnects) == "0" {
		t.Error("follower never attempted to reconnect")
	}
}
