package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// The disk spill of the two content-addressed caches.
//
// Both caches are keyed by canonical SHA-256 hashes, so a disk entry is as
// correct as a memory entry: identical spec, identical bytes. Entries are
// written atomically (temp file + rename) so a crash mid-write leaves either
// the old state or a decodable new file, never a torn envelope; an
// undecodable file is skipped on load and the value recomputed. Result and
// event bytes travel base64-encoded — json.RawMessage would re-compact the
// indented result document and break byte-identity, which is the one
// property the whole design rests on.

const (
	resultStoreSchema = "stencilserve-store-result/1"
	setupStoreSchema  = "stencilserve-store-setup/1"
	resultsDirName    = "results"
	setupsDirName     = "setups"
)

// resultEnvelope is the on-disk form of one result-cache entry.
type resultEnvelope struct {
	Schema      string  `json:"schema"`
	SpecHash    string  `json:"spec_hash"`
	Tenant      string  `json:"tenant,omitempty"`
	CostSeconds float64 `json:"cost_s"` // run virtual seconds (eviction weight)
	ResultB64   string  `json:"result_b64"`
	EventsB64   string  `json:"events_b64,omitempty"`
}

// setupEnvelope is the on-disk form of one setup-cache entry.
type setupEnvelope struct {
	Schema      string  `json:"schema"`
	SetupHash   string  `json:"setup_hash"`
	CostSeconds float64 `json:"cost_s"` // setup wall seconds (eviction weight)
	Assignments [][]int `json:"assignments"`
}

// store spills cache entries under <dir>/results and <dir>/setups.
type store struct {
	dir  string
	dead atomic.Bool // kill(): simulate process death, drop all writes
	// onSpill, when set, is notified after every successful artifact write —
	// the primary's replication feed. Called outside any store lock.
	onSpill func(kind, hash string, size int64)
}

func newStore(dir string) (*store, error) {
	for _, sub := range []string{resultsDirName, setupsDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: store dir: %w", err)
		}
	}
	return &store{dir: dir}, nil
}

// kill simulates process death: every subsequent write is dropped.
func (st *store) kill() { st.dead.Store(true) }

// writeAtomic writes an envelope via temp-file + rename, so readers
// (including post-crash recovery) only ever observe complete paths. Spills
// are deliberately NOT fsynced: per the durability contract only the
// journal's submitted records are durable-before-ack, while a spill is a
// recompute-avoidance optimization. A power cut can therefore leave a
// renamed-but-empty or truncated spill file; loadAll treats any undecodable
// envelope as absent (counted in SkippedFiles) and the job is simply
// recomputed from its journaled spec — deterministically byte-identical.
// Skipping the per-file fsync keeps result spilling off the commit path,
// which is what holds journaling inside its 1.5x throughput budget.
func (st *store) writeAtomic(path string, v any) error {
	if st.dead.Load() {
		return errJournalDead
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(b)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if st.dead.Load() { // killed while writing: the rename never happens
		os.Remove(tmp.Name())
		return errJournalDead
	}
	return os.Rename(tmp.Name(), path)
}

// putResult spills one result-cache entry and returns the stored-bytes
// DELTA it produced: new size minus whatever a previous spill of the same
// content-addressed hash already occupied. The delta — not the full size —
// is the per-tenant accounting unit, so an evicted-then-recomputed result
// re-spilled over its own file accrues zero, not double. (Two workers
// racing the same hash could each observe the pre-write size and overcount
// once; both then wrote identical bytes, and the next restart's disk scan
// self-corrects the accounting.)
func (st *store) putResult(hash string, e resultEntry, tenant string, cost float64) (int64, error) {
	env := resultEnvelope{
		Schema:      resultStoreSchema,
		SpecHash:    hash,
		Tenant:      tenant,
		CostSeconds: cost,
		ResultB64:   base64.StdEncoding.EncodeToString(e.result),
		EventsB64:   base64.StdEncoding.EncodeToString(e.events),
	}
	path := filepath.Join(st.dir, resultsDirName, hash+".json")
	var prev int64
	if fi, err := os.Stat(path); err == nil {
		prev = fi.Size()
	}
	if err := st.writeAtomic(path, &env); err != nil {
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	st.notifySpill("result", hash, fi.Size())
	return fi.Size() - prev, nil
}

// putSetup spills one setup-cache entry.
func (st *store) putSetup(hash string, assignments [][]int, cost float64) error {
	env := setupEnvelope{
		Schema:      setupStoreSchema,
		SetupHash:   hash,
		CostSeconds: cost,
		Assignments: assignments,
	}
	path := filepath.Join(st.dir, setupsDirName, hash+".json")
	if err := st.writeAtomic(path, &env); err != nil {
		return err
	}
	if fi, err := os.Stat(path); err == nil {
		st.notifySpill("setup", hash, fi.Size())
	}
	return nil
}

func (st *store) notifySpill(kind, hash string, size int64) {
	if st.onSpill != nil {
		st.onSpill(kind, hash, size)
	}
}

// loadAll streams every decodable spilled entry to the callbacks (recovery's
// cache rehydration) and returns how many files were skipped as corrupt or
// foreign. Skipping is the only failure mode: a bad file costs a recompute.
func (st *store) loadAll(
	onResult func(hash string, e resultEntry, tenant string, cost float64, diskBytes int64),
	onSetup func(hash string, assignments [][]int, cost float64),
) (skipped int, err error) {
	dir := filepath.Join(st.dir, resultsDirName)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			skipped++
			continue
		}
		path := filepath.Join(dir, name)
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			skipped++
			continue
		}
		var env resultEnvelope
		if json.Unmarshal(b, &env) != nil || env.Schema != resultStoreSchema ||
			env.SpecHash != strings.TrimSuffix(name, ".json") {
			skipped++
			continue
		}
		result, rerr1 := base64.StdEncoding.DecodeString(env.ResultB64)
		events, rerr2 := base64.StdEncoding.DecodeString(env.EventsB64)
		if rerr1 != nil || rerr2 != nil || len(result) == 0 {
			skipped++
			continue
		}
		fi, serr := de.Info()
		var size int64
		if serr == nil {
			size = fi.Size()
		}
		onResult(env.SpecHash, resultEntry{result: result, events: events}, env.Tenant, env.CostSeconds, size)
	}

	dir = filepath.Join(st.dir, setupsDirName)
	ents, err = os.ReadDir(dir)
	if err != nil {
		return skipped, err
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			skipped++
			continue
		}
		b, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			skipped++
			continue
		}
		var env setupEnvelope
		if json.Unmarshal(b, &env) != nil || env.Schema != setupStoreSchema ||
			env.SetupHash != strings.TrimSuffix(name, ".json") || len(env.Assignments) == 0 {
			skipped++
			continue
		}
		onSetup(env.SetupHash, env.Assignments, env.CostSeconds)
	}
	return skipped, nil
}

// ---- replication surface ----
//
// Followers mirror the store by artifact: the manifest lists what the
// primary holds, raw fetch moves envelope bytes verbatim (byte-identity is
// the whole design, so no re-encoding anywhere on the path), and putRaw
// validates before the atomic rename so a garbage frame can never plant an
// undecodable or mis-addressed file.

// ArtifactRef names one spilled cache entry in a store manifest.
type ArtifactRef struct {
	Kind string `json:"kind"` // "result" or "setup"
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

// artifactDir maps an artifact kind to its store subdirectory.
func artifactDir(kind string) (string, bool) {
	switch kind {
	case "result":
		return resultsDirName, true
	case "setup":
		return setupsDirName, true
	}
	return "", false
}

// validHash rejects hashes that could escape the store directory or collide
// with temp files; content hashes are lowercase hex.
func validHash(hash string) bool {
	if len(hash) == 0 || len(hash) > 128 {
		return false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// manifest lists every decodably-named artifact with its size, sorted for
// deterministic anti-entropy diffs.
func (st *store) manifest() []ArtifactRef {
	var out []ArtifactRef
	for _, kind := range []string{"result", "setup"} {
		sub, _ := artifactDir(kind)
		ents, err := os.ReadDir(filepath.Join(st.dir, sub))
		if err != nil {
			continue
		}
		for _, de := range ents {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, ".json") {
				continue
			}
			hash := strings.TrimSuffix(name, ".json")
			if !validHash(hash) {
				continue
			}
			fi, err := de.Info()
			if err != nil {
				continue
			}
			out = append(out, ArtifactRef{Kind: kind, Hash: hash, Size: fi.Size()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// readArtifact returns one artifact's raw envelope bytes.
func (st *store) readArtifact(kind, hash string) ([]byte, error) {
	sub, ok := artifactDir(kind)
	if !ok || !validHash(hash) {
		return nil, fmt.Errorf("serve: bad artifact ref %s/%s", kind, hash)
	}
	return os.ReadFile(filepath.Join(st.dir, sub, hash+".json"))
}

// hasArtifact reports whether the artifact exists at the given size (size<0
// skips the size check).
func (st *store) hasArtifact(kind, hash string, size int64) bool {
	sub, ok := artifactDir(kind)
	if !ok || !validHash(hash) {
		return false
	}
	fi, err := os.Stat(filepath.Join(st.dir, sub, hash+".json"))
	return err == nil && (size < 0 || fi.Size() == size)
}

// putRawArtifact writes shipped envelope bytes verbatim after validating
// that they decode as the claimed kind and address — a torn or malicious
// frame is rejected before it can touch the store.
func (st *store) putRawArtifact(kind, hash string, data []byte) error {
	sub, ok := artifactDir(kind)
	if !ok || !validHash(hash) {
		return fmt.Errorf("serve: bad artifact ref %s/%s", kind, hash)
	}
	switch kind {
	case "result":
		var env resultEnvelope
		if json.Unmarshal(data, &env) != nil || env.Schema != resultStoreSchema || env.SpecHash != hash {
			return fmt.Errorf("serve: artifact %s/%s: undecodable result envelope", kind, hash)
		}
	case "setup":
		var env setupEnvelope
		if json.Unmarshal(data, &env) != nil || env.Schema != setupStoreSchema || env.SetupHash != hash {
			return fmt.Errorf("serve: artifact %s/%s: undecodable setup envelope", kind, hash)
		}
	}
	if st.dead.Load() {
		return errJournalDead
	}
	path := filepath.Join(st.dir, sub, hash+".json")
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}

// getResult loads one spilled result entry (a completed journal record's
// payload during recovery). ok=false means missing or undecodable — the
// caller re-runs the job instead.
func (st *store) getResult(hash string) (resultEntry, string, float64, bool) {
	b, err := os.ReadFile(filepath.Join(st.dir, resultsDirName, hash+".json"))
	if err != nil {
		return resultEntry{}, "", 0, false
	}
	var env resultEnvelope
	if json.Unmarshal(b, &env) != nil || env.Schema != resultStoreSchema || env.SpecHash != hash {
		return resultEntry{}, "", 0, false
	}
	result, err1 := base64.StdEncoding.DecodeString(env.ResultB64)
	events, err2 := base64.StdEncoding.DecodeString(env.EventsB64)
	if err1 != nil || err2 != nil || len(result) == 0 {
		return resultEntry{}, "", 0, false
	}
	return resultEntry{result: result, events: events}, env.Tenant, env.CostSeconds, true
}
