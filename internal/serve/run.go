package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/jobspec"
	"github.com/nodeaware/stencil/internal/mpi"
)

// errPreempted is runJob's sentinel for a run stopped early by the job's
// cancellation flag. The worker maps it to the cancelled state; a preempted
// run's partial outcome is never cached.
var errPreempted = errors.New("serve: job preempted")

// ResultSchema identifies the result-document layout.
const ResultSchema = "stencilserve-result/1"

// Result is the deterministic outcome document of one job. Every field is a
// virtual-time quantity or a pure function of the spec — no wall-clock
// values — so identical jobs marshal to byte-identical documents, which is
// what the whole-result cache stores and replays.
type Result struct {
	Schema     string         `json:"schema"`
	SpecHash   string         `json:"spec_hash"`
	Config     string         `json:"config"` // "2n/2r/6g/24" paper label
	Caps       string         `json:"caps"`   // "+kernel" ladder label
	Grid       [3]int         `json:"grid"`
	Subdomains int            `json:"subdomains"`
	Methods    map[string]int `json:"methods"` // sorted by encoding/json

	IterationsSeconds []float64 `json:"iterations_s"`
	MeanSeconds       float64   `json:"mean_s"`
	MinSeconds        float64   `json:"min_s"`
	MaxSeconds        float64   `json:"max_s"`
	TotalBytes        int64     `json:"total_bytes"`
	VirtualSeconds    float64   `json:"virtual_s"`

	PlacementImprovement float64 `json:"placement_improvement,omitempty"`

	MPIRetries int        `json:"mpi_retries,omitempty"`
	Delivery   *mpi.Stats `json:"delivery,omitempty"`

	ReExchanges      int `json:"reexchanges,omitempty"`
	VerifyRounds     int `json:"verify_rounds,omitempty"`
	ForcedRepairs    int `json:"forced_repairs,omitempty"`
	QuarantineEnters int `json:"quarantine_enters,omitempty"`
	QuarantineExits  int `json:"quarantine_exits,omitempty"`

	Checkpoints  int `json:"checkpoints,omitempty"`
	Rollbacks    int `json:"rollbacks,omitempty"`
	MigratedSubs int `json:"migrated_subs,omitempty"`

	FaultLog    []string `json:"fault_log,omitempty"`
	AdaptLog    []string `json:"adapt_log,omitempty"`
	RecoveryLog []string `json:"recovery_log,omitempty"`

	// HaloOK reports end-of-run halo verification for Verify jobs: every
	// halo cell byte-identical to the analytic fill.
	HaloOK *bool `json:"halo_ok,omitempty"`
}

// fillFunc is the analytic fill Verify jobs check halos against (the same
// polynomial the chaos tests and faultsim use).
func fillFunc(q, x, y, z int) float32 { return float32(q*1000003 + z*9973 + y*97 + x) }

// runOutcome carries everything a finished engine run produces.
type runOutcome struct {
	result []byte // deterministic Result JSON
	events []byte // deterministic telemetry NDJSON
	// assignments is the phase-2 placement (per node), for the setup cache.
	assignments [][]int
	// virtualSeconds is the engine clock at the end of the run.
	virtualSeconds float64
}

// runJob executes one job on a fresh, isolated engine. preset, when
// non-nil, injects a cached phase-2 placement. preempt, when non-nil, is
// polled by the engine's coordinator at every iteration safe point; once it
// reports true the run stops at the next boundary and runJob returns
// errPreempted. lap stamps the run's wall-clock phases (setup, engine-run,
// verify, encode) onto the job's trace; it never touches the outcome bytes.
// The outcome's result and events bytes are deterministic: two calls with
// the same spec return byte-identical slices regardless of preset,
// concurrency, host load, or tracing (Preempt never advances virtual time,
// so un-preempted runs are unaffected by the polling).
func runJob(spec *jobspec.Spec, specHash string, preset [][]int, preempt func() bool, lap *lapClock) (*runOutcome, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.PresetPlacement = preset
	cfg.Preempt = preempt
	tel := stencil.NewTelemetry()
	// Per-link utilization events dominate the log at scale and belong in
	// benchmark tooling, not a job stream; metrics and spans still record.
	tel.LinkEvents = false
	cfg.Telemetry = tel

	dd, err := stencil.New(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.RealData {
		dd.Fill(fillFunc)
	}
	lap.lap("setup", fmt.Sprintf("nodes=%d subdomains=%d", cfg.Nodes, dd.NumSubdomains()))
	iters := spec.Iters
	if iters <= 0 {
		iters = 10
	}
	stats := dd.Exchange(iters)
	lap.lap("engine-run", fmt.Sprintf("iters=%d virtual_s=%g", iters, float64(dd.VirtualTime())))
	if dd.Preempted() {
		return nil, errPreempted
	}

	res := &Result{
		Schema:     ResultSchema,
		SpecHash:   specHash,
		Config:     fmt.Sprintf("%dn/%dr/%dg/%d", cfg.Nodes, cfg.RanksPerNode, cfg.NodeConfig.GPUs(), cfg.Domain.X),
		Caps:       capsLabel(spec),
		Grid:       [3]int{dd.GridDims().X, dd.GridDims().Y, dd.GridDims().Z},
		Subdomains: dd.NumSubdomains(),
		Methods:    map[string]int{},

		MeanSeconds:    float64(stats.Mean()),
		MinSeconds:     float64(stats.Min()),
		MaxSeconds:     float64(stats.Max()),
		TotalBytes:     stats.TotalBytes,
		VirtualSeconds: float64(dd.VirtualTime()),

		MPIRetries:       stats.MPIRetries,
		ReExchanges:      stats.ReExchanges,
		VerifyRounds:     stats.VerifyRounds,
		ForcedRepairs:    stats.ForcedRepairs,
		QuarantineEnters: stats.QuarantineEnters,
		QuarantineExits:  stats.QuarantineExits,
		Checkpoints:      stats.Checkpoints,
		Rollbacks:        stats.Rollbacks,
		MigratedSubs:     stats.MigratedSubs,
	}
	res.IterationsSeconds = make([]float64, len(stats.Iterations))
	for i, t := range stats.Iterations {
		res.IterationsSeconds[i] = float64(t)
	}
	for m, c := range dd.MethodBreakdown() {
		res.Methods[m.String()] = c
	}
	if !cfg.TrivialPlacement {
		res.PlacementImprovement = dd.PlacementImprovement(0)
	}
	if d := stats.Delivery; d != (mpi.Stats{}) {
		dc := d
		res.Delivery = &dc
	}
	for _, r := range dd.FaultLog() {
		res.FaultLog = append(res.FaultLog, r.String())
	}
	for _, r := range dd.AdaptLog() {
		res.AdaptLog = append(res.AdaptLog, r.String())
	}
	for _, r := range dd.RecoveryLog() {
		res.RecoveryLog = append(res.RecoveryLog, r.String())
	}
	if cfg.RealData {
		bad, detail := dd.VerifyHalos(fillFunc)
		ok := bad == 0
		res.HaloOK = &ok
		if !ok {
			return nil, fmt.Errorf("serve: %d corrupted halo cells: %s", bad, detail)
		}
	}
	lap.lap("verify", fmt.Sprintf("real_data=%t", cfg.RealData))

	out := &runOutcome{virtualSeconds: float64(dd.VirtualTime())}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return nil, err
	}
	out.result = buf.Bytes()

	var ev bytes.Buffer
	if err := tel.WriteEvents(&ev); err != nil {
		return nil, err
	}
	out.events = ev.Bytes()

	if spec.CacheableSetup() {
		out.assignments = make([][]int, cfg.Nodes)
		for n := 0; n < cfg.Nodes; n++ {
			out.assignments[n] = dd.Assignment(n)
		}
	}
	lap.lap("encode", fmt.Sprintf("result_bytes=%d event_bytes=%d", len(out.result), len(out.events)))
	return out, nil
}

// capsLabel renders the paper's ladder label for the spec's capability rung.
func capsLabel(spec *jobspec.Spec) string {
	caps, err := jobspec.ParseCaps(spec.Caps)
	if err != nil {
		return spec.Caps
	}
	switch {
	case caps.Kernel:
		return "+kernel"
	case caps.Peer:
		return "+peer"
	case caps.Colocated:
		return "+colo"
	default:
		return "+remote"
	}
}
