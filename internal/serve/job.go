package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Job is one submitted simulation. Result and event bytes are deterministic
// functions of the spec (virtual-time quantities only); the wall-clock
// timestamps live solely in the status view, which is never cached.
type Job struct {
	ID        string
	Tenant    string
	Spec      *jobspec.Spec
	Hash      string // content address of the whole job (result-cache key)
	SetupHash string // content address of the setup phases (setup-cache key)

	mu   sync.Mutex
	cond *sync.Cond

	// preempt is the cooperative cancellation flag for running jobs. The
	// HTTP goroutine sets it (requestPreempt); the engine's coordinator
	// polls it at every iteration safe point via stencil.Config.Preempt and
	// stops the run at the next boundary.
	preempt atomic.Bool
	// deadlineHit records that the run's preempt poll fired because the job
	// exceeded its deadline (not because of a /cancel): the worker finalizes
	// such a run as failed, never cancelled, and caches nothing.
	deadlineHit atomic.Bool

	// deadline is the job's wall-clock completion deadline (zero = none),
	// set at admission from spec.DeadlineSeconds.
	deadline time.Time
	// attempts counts how many times a worker started this job; >1 means it
	// was retried after its worker died.
	attempts int

	state       State
	err         string
	resultCache bool // served from the whole-result cache
	setupCache  bool // placement injected from the setup cache

	result []byte   // deterministic result document (JSON)
	lines  [][]byte // NDJSON stream: lifecycle lines + telemetry events
	closed bool     // stream complete

	submitted time.Time
	started   time.Time
	finished  time.Time

	// spans is the wall-clock trace of this job's lifecycle phases, served
	// by /v1/jobs/{id}/trace. Host-side and operator-facing only: never
	// cached, never part of the deterministic result or event bytes.
	spans []TraceSpan

	// recovered marks a job rebuilt from the journal after a restart.
	recovered bool
}

func newJob(id, tenant string, spec *jobspec.Spec, hash, setupHash string, now time.Time) *Job {
	j := &Job{
		ID:        id,
		Tenant:    tenant,
		Spec:      spec,
		Hash:      hash,
		SetupHash: setupHash,
		state:     StateQueued,
		submitted: now,
	}
	j.cond = sync.NewCond(&j.mu)
	j.appendLineLocked(streamLine{Kind: "state", State: string(StateQueued), Job: id})
	return j
}

// streamLine is one lifecycle record on the NDJSON stream (telemetry events
// are appended as raw pre-encoded lines).
type streamLine struct {
	Kind  string `json:"kind"`
	Job   string `json:"job,omitempty"`
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	Cache string `json:"cache,omitempty"`
}

func (j *Job) appendLineLocked(l streamLine) {
	b, err := json.Marshal(l)
	if err != nil {
		panic(fmt.Sprintf("serve: stream line marshal: %v", err))
	}
	j.lines = append(j.lines, append(b, '\n'))
	j.cond.Broadcast()
}

// start transitions queued → running and returns how long the job waited in
// the queue plus the attempt number. The wait also becomes the trace's first
// span.
func (j *Job) start(now time.Time) (wait time.Duration, attempt int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = now
	j.attempts++
	j.appendSpanLocked("queue-wait", j.submitted, now, "")
	j.appendLineLocked(streamLine{Kind: "state", State: string(StateRunning), Job: j.ID})
	return now.Sub(j.submitted), j.attempts
}

// requeue transitions running → queued after the job's worker died (the
// bounded-retry path). Reports false if the job reached a terminal state in
// the meantime (e.g. a racing cancel).
func (j *Job) requeue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return false
	}
	j.state = StateQueued
	j.appendLineLocked(streamLine{Kind: "state", State: string(StateQueued), Job: j.ID})
	return true
}

// submittedTime returns the job's submission instant (queue-age watermark).
func (j *Job) submittedTime() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted
}

// addSpan appends one wall-clock span to the job's trace.
func (j *Job) addSpan(name string, start, end time.Time, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendSpanLocked(name, start, end, detail)
}

func (j *Job) appendSpanLocked(name string, start, end time.Time, detail string) {
	j.spans = append(j.spans, TraceSpan{
		Name:            name,
		Detail:          detail,
		Start:           start,
		End:             end,
		DurationSeconds: end.Sub(start).Seconds(),
	})
}

// trace snapshots the job's wall-clock trace document.
func (j *Job) trace() JobTrace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobTrace{
		Schema:   TraceSchema,
		TraceID:  TraceID(j.Hash, j.ID),
		Job:      j.ID,
		Tenant:   j.Tenant,
		SpecHash: j.Hash,
		State:    j.state,
		Spans:    append([]TraceSpan(nil), j.spans...),
	}
}

// finish completes the job: a result document plus the run's telemetry
// events (NDJSON, already encoded), or an error.
func (j *Job) finish(now time.Time, result, events []byte, runErr error, fromResultCache, fromSetupCache bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	j.resultCache = fromResultCache
	j.setupCache = fromSetupCache
	if runErr != nil {
		j.state = StateFailed
		j.err = runErr.Error()
		j.appendLineLocked(streamLine{Kind: "state", State: string(StateFailed), Job: j.ID, Error: j.err})
	} else {
		j.state = StateDone
		j.result = result
		if len(events) > 0 {
			// Telemetry events are one JSON object per line already.
			j.lines = append(j.lines, events)
		}
		j.appendLineLocked(streamLine{Kind: "state", State: string(StateDone), Job: j.ID, Cache: j.cacheString()})
	}
	j.closed = true
	j.cond.Broadcast()
}

// cancel transitions queued → cancelled. The caller must have already
// removed the job from the queue, so the transition cannot race a start.
// Running jobs are cancelled cooperatively instead: see requestPreempt.
func (j *Job) cancel(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCancelled
	j.finished = now
	j.appendLineLocked(streamLine{Kind: "state", State: string(StateCancelled), Job: j.ID})
	j.closed = true
	j.cond.Broadcast()
	return true
}

// requestPreempt arms the cooperative cancellation flag for a job that is
// running (or was just popped by a worker and is about to run — the queued
// state whose queue removal already failed). The engine observes the flag at
// its next iteration safe point and the worker then finalizes the job as
// cancelled. Terminal jobs report false. Best-effort by construction: a job
// whose final iteration already passed the last poll finishes done.
func (j *Job) requestPreempt() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued && j.state != StateRunning {
		return false
	}
	j.preempt.Store(true)
	return true
}

// finishCancelled finalizes a preempted run: running → cancelled. The
// partial run's bytes are discarded (never cached, never served).
func (j *Job) finishCancelled(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateCancelled
	j.finished = now
	j.appendLineLocked(streamLine{Kind: "state", State: string(StateCancelled), Job: j.ID})
	j.closed = true
	j.cond.Broadcast()
}

func (j *Job) cacheString() string {
	switch {
	case j.resultCache:
		return "result"
	case j.setupCache:
		return "setup"
	}
	return ""
}

// Status is the API view of a job.
type Status struct {
	ID        string        `json:"id"`
	Tenant    string        `json:"tenant,omitempty"`
	State     State         `json:"state"`
	SpecHash  string        `json:"spec_hash"`
	SetupHash string        `json:"setup_hash"`
	Cache     string        `json:"cache,omitempty"` // "result", "setup", or ""
	Error     string        `json:"error,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Deadline  *time.Time    `json:"deadline,omitempty"`
	Attempts  int           `json:"attempts,omitempty"` // >1: retried after a worker death
	Recovered bool          `json:"recovered,omitempty"`
	Spec      *jobspec.Spec `json:"spec,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status(withSpec bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		Tenant:    j.Tenant,
		State:     j.state,
		SpecHash:  j.Hash,
		SetupHash: j.SetupHash,
		Cache:     j.cacheString(),
		Error:     j.err,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		st.Deadline = &t
	}
	st.Attempts = j.attempts
	st.Recovered = j.recovered
	if withSpec {
		st.Spec = j.Spec
	}
	return st
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the result document once the job is done.
func (j *Job) Result() ([]byte, State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state
}

// Wait blocks until the job reaches a terminal state and returns it.
func (j *Job) Wait() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.closed {
		j.cond.Wait()
	}
	return j.state
}

// Stream writes the job's NDJSON event stream to w, flushing as lines
// arrive, and returns when the job reaches a terminal state (or w fails).
// For finished jobs it replays the full stream.
func (j *Job) Stream(w io.Writer) error {
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.lines) && !j.closed {
			j.cond.Wait()
		}
		batch := j.lines[next:]
		next = len(j.lines)
		closed := j.closed
		j.mu.Unlock()

		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed && next >= j.lineCount() {
			return nil
		}
	}
}

func (j *Job) lineCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.lines)
}
