package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"time"
)

// TraceSchema identifies the /v1/jobs/{id}/trace document layout.
const TraceSchema = "stencilserve-trace/1"

// TraceID derives the deterministic request-scoped trace identifier for a
// job: a short digest of the jobspec content hash and the job ID. Two
// submissions of the same spec share the hash component, so traces of
// identical work correlate across jobs while each job keeps a distinct ID.
func TraceID(specHash, jobID string) string {
	sum := sha256.Sum256([]byte(TraceSchema + "\n" + specHash + "\n" + jobID))
	return hex.EncodeToString(sum[:8])
}

// TraceSpan is one wall-clock phase of a job's lifecycle: queue wait, cache
// lookup, setup, engine run, verify, encode. These are host-side timings for
// operators — strictly separate from the engine's virtual-time telemetry
// spans, which never contain wall-clock values. Trace spans live only in the
// job registry and the /trace endpoint; they are never cached and never
// enter result or event bytes.
type TraceSpan struct {
	Name            string    `json:"name"`
	Detail          string    `json:"detail,omitempty"`
	Start           time.Time `json:"start"`
	End             time.Time `json:"end"`
	DurationSeconds float64   `json:"duration_s"`
}

// JobTrace is the /v1/jobs/{id}/trace document.
type JobTrace struct {
	Schema   string      `json:"schema"`
	TraceID  string      `json:"trace_id"`
	Job      string      `json:"job"`
	Tenant   string      `json:"tenant,omitempty"`
	SpecHash string      `json:"spec_hash"`
	State    State       `json:"state"`
	Spans    []TraceSpan `json:"spans"`
}

// WritePerfetto emits the trace as Chrome trace-event JSON ("X" complete
// events, microsecond timestamps relative to the first span), loadable in
// chrome://tracing or https://ui.perfetto.dev.
func (t *JobTrace) WritePerfetto(w io.Writer) error {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   float64        `json:"dur"`
		PID   int            `json:"pid"`
		TID   string         `json:"tid"`
		Args  map[string]any `json:"args,omitempty"`
	}
	var origin time.Time
	for _, s := range t.Spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	events := []chromeEvent{{
		Name:  "process_name",
		Phase: "M",
		PID:   1,
		Args:  map[string]any{"name": "stencilserve " + t.Job},
	}}
	for _, s := range t.Spans {
		ev := chromeEvent{
			Name:  s.Name,
			Cat:   "serve",
			Phase: "X",
			TS:    float64(s.Start.Sub(origin)) / float64(time.Microsecond),
			Dur:   float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			PID:   1,
			TID:   t.TraceID,
		}
		if s.Detail != "" {
			ev.Args = map[string]any{"detail": s.Detail}
		}
		events = append(events, ev)
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}

// lapClock stamps successive wall-clock phases of a run onto a span sink.
// Both the clock and the sink may be nil (library callers of runJob that
// want no tracing), in which case every lap is a no-op.
type lapClock struct {
	now  func() time.Time
	emit func(name string, start, end time.Time, detail string)
	mark time.Time
}

func newLapClock(now func() time.Time, emit func(name string, start, end time.Time, detail string)) *lapClock {
	c := &lapClock{now: now, emit: emit}
	if c.now != nil && c.emit != nil {
		c.mark = c.now()
	}
	return c
}

// lap closes the phase that began at the previous lap (or construction) and
// starts the next one. Safe on a nil clock.
func (c *lapClock) lap(name, detail string) {
	if c == nil || c.now == nil || c.emit == nil {
		return
	}
	now := c.now()
	c.emit(name, c.mark, now, detail)
	c.mark = now
}
