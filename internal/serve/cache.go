package serve

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// cacheShards is the lock-striping fan-out of a Cache. Shard selection
// hashes the key, so hot tenants hammering different jobs contend on
// different locks.
const cacheShards = 16

// Cache is a sharded, bounded, content-addressed in-memory cache. Keys are
// canonical hashes (jobspec.Hash / jobspec.SetupHash), so a hit is correct
// by construction: the deterministic engine maps equal keys to equal values.
//
// Eviction is per-shard and approximate (a random victim from the shard's
// map when it exceeds its share of MaxEntries). Eviction order affects only
// hit rate, never correctness — a re-computed value is byte-identical to the
// evicted one.
type Cache[V any] struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[string]V
	}
	maxPerShard int
	hits        atomic.Int64
	misses      atomic.Int64
}

// NewCache creates a cache bounded to roughly maxEntries values
// (0 = 4096).
func NewCache[V any](maxEntries int) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	c := &Cache[V]{maxPerShard: (maxEntries + cacheShards - 1) / cacheShards}
	for i := range c.shards {
		c.shards[i].m = make(map[string]V)
	}
	return c
}

func (c *Cache[V]) shard(key string) *struct {
	mu sync.Mutex
	m  map[string]V
} {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns the cached value and whether it was present, counting the
// lookup in the hit/miss statistics.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores a value, evicting an arbitrary entry if the shard is full.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok && len(s.m) >= c.maxPerShard {
		for k := range s.m {
			delete(s.m, k)
			break
		}
	}
	s.m[key] = v
}

// Len returns the total number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// resultEntry is a whole-result cache value: the deterministic result
// document and the run's telemetry event log (both byte-identical across
// identical jobs).
type resultEntry struct {
	result []byte
	events []byte
}
