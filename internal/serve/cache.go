package serve

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// cacheShards is the lock-striping fan-out of a Cache. Shard selection
// hashes the key, so hot tenants hammering different jobs contend on
// different locks.
const cacheShards = 16

// evictScan is how many entries from the cold (LRU) end of a full shard are
// considered when choosing a victim: among them, the one with the lowest
// recorded recompute cost is evicted. Recency bounds the candidate set so a
// hot-but-cheap entry is never protected forever; cost picks the victim so
// an expensive setup solve outlives a pile of tiny results that went cold at
// the same time.
const evictScan = 4

// lruEntry is one node of a shard's intrusive LRU list (head = most
// recently used).
type lruEntry[V any] struct {
	key        string
	val        V
	cost       float64
	prev, next *lruEntry[V]
}

type cacheShard[V any] struct {
	mu         sync.Mutex
	m          map[string]*lruEntry[V]
	head, tail *lruEntry[V]
}

// Cache is a sharded, bounded, content-addressed in-memory cache with
// cost-aware LRU eviction. Keys are canonical hashes (jobspec.Hash /
// jobspec.SetupHash), so a hit is correct by construction: the deterministic
// engine maps equal keys to equal values. Eviction affects only hit rate,
// never correctness — a re-computed value is byte-identical to the evicted
// one — so the policy is free to optimize for recompute cost: each entry
// carries the virtual/wall seconds it took to produce, and eviction removes
// the cheapest of the coldest few (see evictScan).
type Cache[V any] struct {
	shards      [cacheShards]cacheShard[V]
	maxPerShard int
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
}

// NewCache creates a cache bounded to roughly maxEntries values
// (0 = 4096).
func NewCache[V any](maxEntries int) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	c := &Cache[V]{maxPerShard: (maxEntries + cacheShards - 1) / cacheShards}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*lruEntry[V])
	}
	return c
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// unlink removes e from the shard's LRU list (not the map).
func (s *cacheShard[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most-recently-used entry.
func (s *cacheShard[V]) pushFront(e *lruEntry[V]) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// Get returns the cached value and whether it was present, counting the
// lookup in the hit/miss statistics and refreshing the entry's recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	var v V
	if ok {
		v = e.val
		s.unlink(e)
		s.pushFront(e)
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Contains reports presence without touching recency or the hit/miss
// statistics — the admission controller's peek (a shed decision must not
// distort the cache counters or promote an entry nobody read).
func (c *Cache[V]) Contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	s.mu.Unlock()
	return ok
}

// Put stores a value weighted by its recompute cost (virtual or wall seconds
// — higher means more expensive to lose). If the shard is full, the cheapest
// of its evictScan coldest entries is evicted.
func (c *Cache[V]) Put(key string, v V, cost float64) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		e.val = v
		e.cost = cost
		s.unlink(e)
		s.pushFront(e)
		return
	}
	if len(s.m) >= c.maxPerShard {
		victim := s.tail
		cand := s.tail
		for i := 0; i < evictScan && cand != nil; i++ {
			if cand.cost < victim.cost {
				victim = cand
			}
			cand = cand.prev
		}
		if victim != nil {
			s.unlink(victim)
			delete(s.m, victim.key)
			c.evictions.Add(1)
		}
	}
	e := &lruEntry[V]{key: key, val: v, cost: cost}
	s.m[key] = e
	s.pushFront(e)
}

// Len returns the total number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit, miss, and eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// resultEntry is a whole-result cache value: the deterministic result
// document and the run's telemetry event log (both byte-identical across
// identical jobs).
type resultEntry struct {
	result []byte
	events []byte
}
