package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
)

// fakeClock is a mutex-guarded manual clock for deterministic quota and
// shedding tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func admissionCode(t *testing.T, err error) *AdmissionError {
	t.Helper()
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an AdmissionError", err)
	}
	return ae
}

func TestQuotaRateTwoTenants(t *testing.T) {
	// The over-budget tenant is throttled; the other tenant is untouched.
	clock := newFakeClock()
	s := NewServer(Config{Workers: -1, Quotas: map[string]Quota{
		"greedy": {SubmitRate: 1, SubmitBurst: 2},
	}})
	s.now = clock.now

	distinct := func(i int) *jobspec.Spec {
		sp := tinySpec()
		sp.Iters = 2 + i
		return sp
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("greedy", distinct(i)); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := s.Submit("greedy", distinct(2))
	ae := admissionCode(t, err)
	if ae.Code != CodeQuotaRate || ae.Tenant != "greedy" {
		t.Fatalf("over-budget submit: %+v, want quota_rate for greedy", ae)
	}
	if ae.RetryAfter <= 0 || ae.RetryAfter > time.Second {
		t.Errorf("retry-after %s, want (0s, 1s]", ae.RetryAfter)
	}

	// The unlimited tenant sails through while greedy is throttled.
	for i := 0; i < 10; i++ {
		if _, err := s.Submit("modest", distinct(10+i)); err != nil {
			t.Fatalf("modest tenant blocked by greedy's quota: %v", err)
		}
	}

	// The bucket refills with time.
	clock.advance(time.Second)
	if _, err := s.Submit("greedy", distinct(3)); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
}

func TestQuotaInFlight(t *testing.T) {
	s := NewServer(Config{Workers: -1, Quotas: map[string]Quota{
		"capped": {MaxInFlight: 2},
	}})
	var ids []string
	for i := 0; i < 2; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i
		j, err := s.Submit("capped", sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	sp := tinySpec()
	sp.Iters = 9
	_, err := s.Submit("capped", sp)
	if ae := admissionCode(t, err); ae.Code != CodeQuotaInFlight {
		t.Fatalf("third submit: %+v, want quota_inflight", ae)
	}
	// A terminal job returns its slot: cancel one, submit again.
	if _, ok, err := s.Cancel(ids[0]); err != nil || !ok {
		t.Fatalf("cancel: ok=%t err=%v", ok, err)
	}
	if _, err := s.Submit("capped", sp); err != nil {
		t.Fatalf("submit after cancel freed a slot: %v", err)
	}
}

func TestQuotaStoredBytes(t *testing.T) {
	clock := newFakeClock()
	qs := newQuotas(Quota{}, map[string]Quota{"t": {MaxStoredBytes: 100}})
	qs.addStored("t", 150, clock.now())
	// Over budget: a job that would run (and store more) is refused...
	ae := qs.admit("t", clock.now(), true)
	if ae == nil || ae.Code != CodeQuotaBytes {
		t.Fatalf("over-budget run admitted: %+v", ae)
	}
	// ...but a cached read (wouldRun=false) still serves.
	if ae := qs.admit("t", clock.now(), false); ae != nil {
		t.Fatalf("cached read refused: %+v", ae)
	}
}

func TestDegradedMode(t *testing.T) {
	s := NewServer(Config{Workers: -1, QueueDepth: 100, DegradeDepth: 1})
	warm := tinySpec()
	warm.Iters = 2
	warmHash, err := warm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Pretend a previous run populated the result cache for the warm spec.
	s.results.Put(warmHash, resultEntry{result: []byte("{}")}, 1)

	cold := tinySpec()
	cold.Iters = 3
	if _, err := s.Submit("t", cold); err != nil { // depth 0: admitted
		t.Fatal(err)
	}
	// Depth 1 >= DegradeDepth: a double cache miss is refused...
	cold2 := tinySpec()
	cold2.Iters = 4
	_, err = s.Submit("t", cold2)
	if ae := admissionCode(t, err); ae.Code != CodeDegraded {
		t.Fatalf("cold submit in degraded mode: %+v, want degraded", ae)
	}
	// ...while a result-cache hit is still admitted.
	if _, err := s.Submit("t", warm); err != nil {
		t.Fatalf("warm submit refused in degraded mode: %v", err)
	}
}

func TestShedDepthAndAge(t *testing.T) {
	clock := newFakeClock()
	s := NewServer(Config{Workers: -1, QueueDepth: 100, ShedDepth: 2, ShedAge: time.Minute})
	s.now = clock.now
	for i := 0; i < 2; i++ {
		sp := tinySpec()
		sp.Iters = 2 + i
		if _, err := s.Submit("t", sp); err != nil {
			t.Fatal(err)
		}
	}
	sp := tinySpec()
	sp.Iters = 9
	_, err := s.Submit("t", sp)
	ae := admissionCode(t, err)
	if ae.Code != CodeOverloaded || ae.QueueDepth != 2 {
		t.Fatalf("depth shed: %+v, want overloaded at depth 2", ae)
	}

	// Age watermark: a fresh server with one stale queued job sheds too.
	s2 := NewServer(Config{Workers: -1, QueueDepth: 100, ShedDepth: 50, ShedAge: time.Minute})
	s2.now = clock.now
	if _, err := s2.Submit("t", sp); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)
	sp2 := tinySpec()
	sp2.Iters = 10
	_, err = s2.Submit("t", sp2)
	if ae := admissionCode(t, err); ae.Code != CodeOverloaded {
		t.Fatalf("age shed: %+v, want overloaded", ae)
	}
}

func TestRejectionHTTPSchema(t *testing.T) {
	// Every 429 carries Retry-After and the structured JSON body the README
	// documents.
	s := NewServer(Config{Workers: -1, QueueDepth: 100, ShedDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postSpec(t, ts, "t", tinySpec(), ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	sp := tinySpec()
	sp.Iters = 7
	resp, body := postSpec(t, ts, "t", sp, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header %q, want a positive integer", ra)
	}
	for _, want := range []string{`"code": "overloaded"`, `"tenant": "t"`, `"queue_depth": 1`, `"retry_after_s"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("429 body missing %s:\n%s", want, body)
		}
	}
}

func TestDeadlinePreemptsMidRun(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	sp := tinySpec()
	sp.Iters = 5000 // tens of seconds if run to completion
	sp.DeadlineSeconds = 0.05
	j, err := s.Submit("t", sp)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(); st != StateFailed {
		t.Fatalf("deadline job ended %q, want failed", st)
	}
	st := j.status(false)
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("deadline job error %q", st.Error)
	}
	if st.Deadline == nil {
		t.Error("status missing the deadline field")
	}
	// A preempted run's partial bytes must never be cached.
	if s.results.Contains(j.Hash) {
		t.Error("partial result of a deadline-preempted run was cached")
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Drain()
	// Pin the worker long enough for the deadline job's budget to expire
	// while it is still queued.
	pin := tinySpec()
	pin.Iters = 200 // ~hundreds of ms, far beyond the 1ms deadline below
	if _, err := s.Submit("t", pin); err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	sp.Iters = 3
	sp.DeadlineSeconds = 0.001
	j, err := s.Submit("t", sp)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(); st != StateFailed {
		t.Fatalf("expired-in-queue job ended %q, want failed", st)
	}
	if st := j.status(false); !strings.Contains(st.Error, "deadline") {
		t.Errorf("expired-in-queue job error %q", st.Error)
	}
}

func TestRetryAfterWorkerDeath(t *testing.T) {
	s := NewServer(Config{Workers: 1, RetryBackoff: time.Millisecond})
	defer s.Drain()
	var calls atomic.Int32
	s.runFn = func(spec *jobspec.Spec, specHash string, preset [][]int, preempt func() bool, lap *lapClock) (*runOutcome, error) {
		if calls.Add(1) <= 2 {
			panic("injected worker death")
		}
		return runJob(spec, specHash, preset, preempt, lap)
	}
	j, err := s.Submit("t", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(); st != StateDone {
		t.Fatalf("retried job ended %q: %s", st, j.status(false).Error)
	}
	if st := j.status(false); st.Attempts != 3 {
		t.Errorf("attempts %d, want 3 (two deaths + success)", st.Attempts)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	s := NewServer(Config{Workers: 1, RetryLimit: 2, RetryBackoff: time.Millisecond})
	defer s.Drain()
	s.runFn = func(spec *jobspec.Spec, specHash string, preset [][]int, preempt func() bool, lap *lapClock) (*runOutcome, error) {
		panic("always dies")
	}
	j, err := s.Submit("t", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(); st != StateFailed {
		t.Fatalf("always-dying job ended %q, want failed", st)
	}
	st := j.status(false)
	if !strings.Contains(st.Error, "worker died") {
		t.Errorf("error %q, want a worker-death message", st.Error)
	}
	if st.Attempts != 3 { // initial + RetryLimit retries
		t.Errorf("attempts %d, want 3", st.Attempts)
	}
}

func TestCostAwareLRU(t *testing.T) {
	c := NewCache[string](2 * cacheShards) // 2 entries per shard
	// Find three keys in one shard so the eviction scan is deterministic.
	keys := sameShardKeys(c, 3)
	c.Put(keys[0], "expensive", 100) // oldest, high cost
	c.Put(keys[1], "cheap", 1)       // newer, low cost
	c.Put(keys[2], "new", 10)        // forces an eviction
	// Cost-aware: the cheap entry dies even though the expensive one is
	// colder.
	if !c.Contains(keys[0]) {
		t.Error("expensive cold entry evicted; want the cheap one gone")
	}
	if c.Contains(keys[1]) {
		t.Error("cheap entry survived eviction")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions %d, want 1", ev)
	}
	// Hit/miss counters.
	c.Get(keys[0])
	c.Get(keys[1])
	h, m, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, m)
	}
	// Contains must not touch the counters (admission peeks stay invisible).
	c.Contains(keys[0])
	if h2, m2, _ := c.Stats(); h2 != h || m2 != m {
		t.Error("Contains changed the hit/miss counters")
	}
}

// sameShardKeys generates n distinct keys hashing to one shard.
func sameShardKeys[V any](c *Cache[V], n int) []string {
	target := c.shard("seed-0")
	keys := []string{"seed-0"}
	for i := 1; len(keys) < n; i++ {
		k := fmt.Sprintf("seed-%d", i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}
