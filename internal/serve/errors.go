package serve

import (
	"fmt"
	"time"
)

// Machine-readable rejection codes carried by every non-2xx JSON error body
// (documented in the README's error-schema section). 429 responses
// additionally carry a Retry-After header.
const (
	CodeBadSpec       = "bad_spec"
	CodeNotFound      = "not_found"
	CodeConflict      = "conflict"
	CodeDraining      = "draining"
	CodeQueueFull     = "queue_full"
	CodeQuotaRate     = "quota_rate"
	CodeQuotaInFlight = "quota_inflight"
	CodeQuotaBytes    = "quota_bytes"
	CodeOverloaded    = "overloaded"
	CodeDegraded      = "degraded"
	CodeInternal      = "internal"
	CodeNotReady      = "not_ready"   // /readyz on a follower out of sync
	CodeNotPrimary    = "not_primary" // data-plane request to a follower
)

// AdmissionError is a refused submission: backpressure, shedding, quota, or
// drain. The HTTP layer maps it to 429 (503 for draining) with a Retry-After
// header and a structured JSON body; programmatic callers can errors.As it
// and read the same fields. It unwraps to the legacy sentinels (ErrQueueFull,
// ErrDraining) where one applies, so errors.Is keeps working.
type AdmissionError struct {
	Code       string        // one of the Code* constants
	Tenant     string        // tenant the decision applied to
	QueueDepth int           // queue depth at decision time
	RetryAfter time.Duration // suggested client backoff
	Err        error         // wrapped sentinel (ErrQueueFull/ErrDraining) or nil
	msg        string
}

func (e *AdmissionError) Error() string {
	m := e.msg
	if m == "" && e.Err != nil {
		m = e.Err.Error()
	}
	if m == "" {
		m = "submission refused"
	}
	return fmt.Sprintf("serve: %s (code=%s, tenant=%s, queue_depth=%d, retry_after=%s)",
		m, e.Code, e.Tenant, e.QueueDepth, e.RetryAfter)
}

func (e *AdmissionError) Unwrap() error { return e.Err }

// retryAfterSeconds rounds the hint up to whole seconds for the Retry-After
// header (which is integer-valued); never below 1.
func (e *AdmissionError) retryAfterSeconds() int {
	s := int((e.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
