package serve

import (
	"math"
	"sync"
	"time"
)

// Per-tenant quotas: a token-bucket submit rate plus in-flight-job and
// stored-bytes budgets, layered under the fair queue. Fair queueing bounds
// how much one tenant can *delay* another once admitted; quotas bound how
// much one tenant can *consume* at all. Enforcement is at admission — a
// rejected submit costs the service nothing — and every rejection carries a
// Retry-After computed from the bucket state, so well-behaved clients
// converge to their budget instead of hammering.

// Quota bounds one tenant. The zero value of any field disables that limit.
type Quota struct {
	// SubmitRate is the sustained submissions/second budget; SubmitBurst is
	// the bucket size (0 with a nonzero rate defaults to max(1, rate)).
	SubmitRate  float64
	SubmitBurst int
	// MaxInFlight bounds a tenant's queued+running jobs.
	MaxInFlight int
	// MaxStoredBytes bounds the disk bytes of spilled results a tenant's
	// cache-miss jobs have produced. Over budget, submits that would run the
	// engine (result-cache misses) are refused; cached reads still serve.
	MaxStoredBytes int64
}

// unlimited reports whether the quota constrains anything.
func (q Quota) unlimited() bool {
	return q.SubmitRate <= 0 && q.MaxInFlight <= 0 && q.MaxStoredBytes <= 0
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	tokens      float64   // current token-bucket fill
	refilled    time.Time // last refill time
	inFlight    int       // queued + running jobs
	storedBytes int64     // disk bytes of spilled results
}

// quotas tracks every tenant against the configured budgets.
type quotas struct {
	mu      sync.Mutex
	def     Quota
	over    map[string]Quota // per-tenant overrides
	tenants map[string]*tenantState
}

func newQuotas(def Quota, over map[string]Quota) *quotas {
	return &quotas{def: def, over: over, tenants: make(map[string]*tenantState)}
}

func (qs *quotas) quotaFor(tenant string) Quota {
	if q, ok := qs.over[tenant]; ok {
		return q
	}
	return qs.def
}

func (qs *quotas) state(tenant string, now time.Time) *tenantState {
	ts := qs.tenants[tenant]
	if ts == nil {
		q := qs.quotaFor(tenant)
		ts = &tenantState{tokens: float64(burstOf(q)), refilled: now}
		qs.tenants[tenant] = ts
	}
	return ts
}

func burstOf(q Quota) int {
	if q.SubmitRate <= 0 {
		return 0
	}
	if q.SubmitBurst > 0 {
		return q.SubmitBurst
	}
	return int(math.Max(1, q.SubmitRate))
}

// admit checks a tenant's budgets and, when all pass, commits the
// admission: one rate token consumed, in-flight incremented. wouldRun is
// whether the job would miss the result cache (only such jobs can grow the
// tenant's stored bytes). A nil return means admitted.
func (qs *quotas) admit(tenant string, now time.Time, wouldRun bool) *AdmissionError {
	q := qs.quotaFor(tenant)
	if q.unlimited() {
		qs.mu.Lock()
		qs.state(tenant, now).inFlight++
		qs.mu.Unlock()
		return nil
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	ts := qs.state(tenant, now)
	// Refill the bucket before judging it.
	if q.SubmitRate > 0 {
		dt := now.Sub(ts.refilled).Seconds()
		if dt > 0 {
			ts.tokens = math.Min(float64(burstOf(q)), ts.tokens+dt*q.SubmitRate)
			ts.refilled = now
		}
		if ts.tokens < 1 {
			wait := time.Duration((1 - ts.tokens) / q.SubmitRate * float64(time.Second))
			return &AdmissionError{
				Code:       CodeQuotaRate,
				Tenant:     tenant,
				RetryAfter: wait,
				msg:        "tenant submit-rate budget exhausted",
			}
		}
	}
	if q.MaxInFlight > 0 && ts.inFlight >= q.MaxInFlight {
		return &AdmissionError{
			Code:       CodeQuotaInFlight,
			Tenant:     tenant,
			RetryAfter: time.Second,
			msg:        "tenant in-flight job budget exhausted",
		}
	}
	if q.MaxStoredBytes > 0 && wouldRun && ts.storedBytes >= q.MaxStoredBytes {
		return &AdmissionError{
			Code:       CodeQuotaBytes,
			Tenant:     tenant,
			RetryAfter: 5 * time.Second,
			msg:        "tenant stored-bytes budget exhausted (cached reads still serve)",
		}
	}
	// All checks passed: commit.
	if q.SubmitRate > 0 {
		ts.tokens--
	}
	ts.inFlight++
	return nil
}

// release returns one in-flight slot (job reached a terminal state or its
// admission was rolled back).
func (qs *quotas) release(tenant string, now time.Time) {
	qs.mu.Lock()
	ts := qs.state(tenant, now)
	if ts.inFlight > 0 {
		ts.inFlight--
	}
	qs.mu.Unlock()
}

// addStored accrues spilled-result bytes against a tenant (also used by
// recovery to rebuild the accounting from the disk store).
func (qs *quotas) addStored(tenant string, bytes int64, now time.Time) {
	if tenant == "" {
		return
	}
	qs.mu.Lock()
	qs.state(tenant, now).storedBytes += bytes
	qs.mu.Unlock()
}

// snapshot reads a tenant's current bucket fill and stored-bytes total for
// journaling. hasRate reports whether the tenant has a token bucket at all —
// without one the fill is meaningless and not worth a journal field.
func (qs *quotas) snapshot(tenant string, now time.Time) (tokens float64, stored int64, hasRate bool) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	ts := qs.state(tenant, now)
	return ts.tokens, ts.storedBytes, qs.quotaFor(tenant).SubmitRate > 0
}

// seed rehydrates a tenant's accounting from replayed journal state. Tokens
// resume from the last journaled observation with refill credited for the
// downtime (clamped to the burst), which is what bounds post-restart drift
// to one refill interval. Stored bytes take the max of the journaled total
// and whatever loadAll already counted from the disk files themselves, so
// evicted-then-recomputed results — journaled but re-spilled over the same
// content-addressed path — are no longer double-counted.
func (qs *quotas) seed(tenant string, snap quotaSnap, now time.Time) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	ts := qs.state(tenant, now)
	q := qs.quotaFor(tenant)
	if snap.HasTokens && q.SubmitRate > 0 {
		ts.tokens = math.Min(float64(burstOf(q)), snap.Tokens)
		at := time.Unix(0, snap.TokTS)
		if at.After(now) {
			at = now
		}
		ts.refilled = at
	}
	if snap.HasStored && snap.Stored > ts.storedBytes {
		ts.storedBytes = snap.Stored
	}
}

// storedBytesTotal sums every tenant's spilled bytes (a /metrics gauge).
func (qs *quotas) storedBytesTotal() int64 {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	var n int64
	for _, ts := range qs.tenants {
		n += ts.storedBytes
	}
	return n
}
