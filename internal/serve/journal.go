package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The write-ahead job journal.
//
// Every job lifecycle transition appends one NDJSON record to
// <data-dir>/journal.ndjson. The single durability contract of the service
// is: a submit is acknowledged (HTTP 202 / Submit returning a job) only
// after its "submitted" record — which embeds the full normalized spec — is
// fsync'd. Everything else (started/completed/failed/cancelled records, the
// disk spill of result bytes) is an optimization: losing it in a crash costs
// a recompute on recovery, never a wrong answer, because the engine is
// deterministic — replaying a spec yields byte-identical results.
//
// Appends use group commit with a dedicated syncer goroutine: appenders
// write their line into a buffered writer under the mutex and (for durable
// appends) wait; the syncer flushes the buffer and fsyncs, covering every
// record written since the previous commit began. Under concurrent submits
// one flush+fsync amortizes over the whole batch, which is what keeps
// journaling within the 1.5x throughput budget.

// JournalName is the WAL file name inside a data directory.
const JournalName = "journal.ndjson"

// journalVersion guards record decoding; unknown versions are skipped as
// corrupt rather than misinterpreted.
const journalVersion = 1

// Journal record kinds. "submitted" is the only durable-before-ack record
// and the only one carrying the spec; the rest advance the job's replayed
// state machine.
const (
	recSubmitted = "submitted"
	recStarted   = "started"
	recCompleted = "completed"
	recFailed    = "failed"
	recCancelled = "cancelled"
)

// journalRecord is one NDJSON line of the WAL.
type journalRecord struct {
	V         int             `json:"v"`
	Rec       string          `json:"rec"`
	Job       string          `json:"job"`
	Tenant    string          `json:"tenant,omitempty"`
	SpecHash  string          `json:"spec_hash,omitempty"`
	SetupHash string          `json:"setup_hash,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Attempt   int             `json:"attempt,omitempty"`
	Cache     string          `json:"cache,omitempty"`
	Error     string          `json:"error,omitempty"`
	// UnixNano is a wall-clock stamp for operators (journal-dump); recovery
	// never depends on it.
	UnixNano int64 `json:"ts,omitempty"`
}

// errJournalDead reports an append on a journal after kill() — the simulated
// post-SIGKILL state. Callers treat it like a crash: the write never happened.
var errJournalDead = errors.New("serve: journal is dead")

// journal is the append side of the WAL.
type journal struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast: synced advanced, or death/error
	want *sync.Cond // signal: a durable appender raised wantSync
	f    *os.File
	// w buffers record writes; the syncer flushes it before every fsync, so
	// an acked record is always on disk. Buffered-but-unflushed records are
	// all unacked (non-durable, or durable appenders still waiting) — losing
	// them in a crash is within the durability contract.
	w      *bufio.Writer
	err    error // first write/sync error; sticky
	dead   bool  // kill(): simulate process death, drop all writes
	closed bool  // graceful close(): syncer drained and exited
	seq    int64 // last sequence number handed out
	synced int64 // last sequence number covered by a completed fsync
	// wantSync is the highest sequence number a durable appender is waiting
	// on; the syncer goroutine sleeps whenever synced has caught up to it.
	wantSync int64

	records int64 // appended records
	bytes   int64 // appended bytes
	syncs   int64 // fsync calls (group commits)

	done chan struct{} // syncer exited
}

// openJournal opens (creating if needed) the WAL for appending and starts
// its group-commit syncer.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	j := &journal{f: f, w: bufio.NewWriterSize(f, 64<<10), done: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)
	j.want = sync.NewCond(&j.mu)
	go j.syncLoop()
	return j, nil
}

// groupCommitWindow rate-limits fsyncs under sustained load: once a commit
// has happened, the next one waits out the remainder of the window so the
// batch behind it grows. An idle journal (no commit within the last window)
// syncs immediately, so a lone submit still acks in one fsync latency. The
// window bounds worst-case ack latency at a few milliseconds — far below a
// job's runtime — and is what keeps journaling inside the 1.5x throughput
// budget when fsync latency rivals job duration.
const groupCommitWindow = 2 * time.Millisecond

// syncLoop is the dedicated group-commit goroutine: it fsyncs whenever
// durable appenders are waiting, so each commit covers every record written
// since the previous one began. A dedicated syncer batches markedly better
// under CPU load than leader election among the appenders — there is no
// per-commit wakeup handoff on the critical path, appenders just pile up
// behind the in-flight commit.
func (j *journal) syncLoop() {
	defer close(j.done)
	var lastSync time.Time
	j.mu.Lock()
	for {
		for !j.dead && j.err == nil && j.synced >= j.wantSync {
			j.want.Wait()
		}
		if j.dead || j.err != nil {
			j.mu.Unlock()
			return
		}
		if wait := groupCommitWindow - time.Since(lastSync); wait > 0 {
			// Recent commit: let the batch accumulate before the next one.
			j.mu.Unlock()
			time.Sleep(wait)
			j.mu.Lock()
			if j.dead || j.err != nil {
				j.mu.Unlock()
				return
			}
		}
		target := j.seq
		ferr := j.w.Flush()
		j.mu.Unlock()
		serr := j.f.Sync()
		if serr == nil {
			serr = ferr
		}
		lastSync = time.Now()
		j.mu.Lock()
		if j.dead { // killed mid-fsync: the commit never happened
			j.cond.Broadcast()
			j.mu.Unlock()
			return
		}
		if serr != nil {
			if j.err == nil {
				j.err = fmt.Errorf("serve: journal sync: %w", serr)
			}
		} else if target > j.synced {
			j.synced = target
			j.syncs++
		}
		j.cond.Broadcast()
	}
}

// append writes one record. durable waits until an fsync covers it (group
// commit); non-durable returns after the OS write — its loss in a crash is
// repaired by recovery recomputing, so only submit acks pay for the fsync.
func (j *journal) append(r journalRecord, durable bool) error {
	r.V = journalVersion
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: journal marshal: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead || j.closed {
		return errJournalDead
	}
	if j.err != nil {
		return j.err
	}
	j.seq++
	mySeq := j.seq
	if _, werr := j.w.Write(line); werr != nil {
		j.err = fmt.Errorf("serve: journal write: %w", werr)
		j.cond.Broadcast()
		j.want.Broadcast()
		return j.err
	}
	j.records++
	j.bytes += int64(len(line))
	if !durable {
		return nil
	}
	if mySeq > j.wantSync {
		j.wantSync = mySeq
	}
	j.want.Signal()
	for j.synced < mySeq && j.err == nil && !j.dead {
		j.cond.Wait()
	}
	if j.dead {
		return errJournalDead
	}
	return j.err
}

// kill simulates process death: all subsequent writes are dropped and the
// file handle closes without a flush. The crash-restart tests use this as
// the in-process SIGKILL.
func (j *journal) kill() {
	j.mu.Lock()
	if j.dead || j.closed {
		j.mu.Unlock()
		return
	}
	j.dead = true
	j.f.Close()
	j.cond.Broadcast()
	j.want.Broadcast()
	j.mu.Unlock()
	<-j.done
}

// close flushes and closes the journal (graceful shutdown).
func (j *journal) close() error {
	j.mu.Lock()
	if j.dead || j.closed {
		j.mu.Unlock()
		return nil
	}
	j.dead = true // stops the syncer; the final flush happens below
	j.cond.Broadcast()
	j.want.Broadcast()
	j.mu.Unlock()
	<-j.done

	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// journalStats is the operator-facing view of the append side.
type journalStats struct {
	Records int64
	Bytes   int64
	Syncs   int64
}

func (j *journal) stats() journalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return journalStats{Records: j.records, Bytes: j.bytes, Syncs: j.syncs}
}

// ---- replay side ----

// journalJob is the replayed view of one job: the fold of its records. The
// state machine is tolerant of records arriving out of order in the file
// (a completed record written by a racing worker before the queue push's
// submitted record lands): terminal kinds dominate started, which dominates
// submitted, and the spec attaches whenever the submitted record is seen.
type journalJob struct {
	ID        string
	Tenant    string
	SpecHash  string
	SetupHash string
	Spec      json.RawMessage
	State     string // last-seen highest-precedence record kind
	Attempts  int    // count of started records
	Cache     string // completed record's cache annotation
	Error     string // failed record's message
}

// terminal reports whether the replayed job reached a terminal record.
func (jj *journalJob) terminal() bool {
	switch jj.State {
	case recCompleted, recFailed, recCancelled:
		return true
	}
	return false
}

// journalReplay is the result of reading a WAL: per-job folds in first-seen
// order, plus corruption accounting.
type journalReplay struct {
	jobs  map[string]*journalJob
	order []string
	// records is the count of well-formed records; torn counts skipped
	// lines — truncated trailing writes from a crash, or corrupt bytes.
	records int
	torn    int
}

// readJournal loads and folds a WAL. Undecodable lines (a torn final record
// from a crash mid-write, bit rot, an unknown version) are counted and
// skipped — never a panic, never a half-applied record: a line either
// decodes completely or contributes nothing.
func readJournal(path string) (*journalReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &journalReplay{jobs: map[string]*journalJob{}}, nil
		}
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	return replayJournal(data), nil
}

// replayJournal folds raw WAL bytes; split out for the fuzz target.
func replayJournal(data []byte) *journalReplay {
	rp := &journalReplay{jobs: map[string]*journalJob{}}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil || r.V != journalVersion || r.Job == "" {
			rp.torn++
			continue
		}
		switch r.Rec {
		case recSubmitted, recStarted, recCompleted, recFailed, recCancelled:
		default:
			rp.torn++
			continue
		}
		rp.records++
		jj := rp.jobs[r.Job]
		if jj == nil {
			jj = &journalJob{ID: r.Job, State: r.Rec}
			rp.jobs[r.Job] = jj
			rp.order = append(rp.order, r.Job)
		}
		switch r.Rec {
		case recSubmitted:
			jj.Tenant = r.Tenant
			jj.SpecHash = r.SpecHash
			jj.SetupHash = r.SetupHash
			jj.Spec = r.Spec
			if jj.State == "" {
				jj.State = recSubmitted
			}
		case recStarted:
			jj.Attempts++
			if !jj.terminal() {
				jj.State = recStarted
			}
		case recCompleted:
			jj.State = recCompleted
			jj.Cache = r.Cache
		case recFailed:
			jj.State = recFailed
			jj.Error = r.Error
		case recCancelled:
			jj.State = recCancelled
		}
	}
	return rp
}

// ---- journal-dump (operator tooling) ----

// DumpJournal pretty-prints a WAL with per-tenant and per-state tallies: the
// operator's view of what a data directory holds. path may be the journal
// file itself or a data directory containing one. The output is
// deterministic for a given journal (tenants sorted, no wall-clock values).
func DumpJournal(path string, w *bytes.Buffer) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, JournalName)
	}
	rp, err := readJournal(path)
	if err != nil {
		return err
	}
	type tally struct {
		submitted, running, completed, failed, cancelled, incomplete int
	}
	perTenant := map[string]*tally{}
	var total tally
	bump := func(t *tally, jj *journalJob) {
		t.submitted++
		switch jj.State {
		case recCompleted:
			t.completed++
		case recFailed:
			t.failed++
		case recCancelled:
			t.cancelled++
		case recStarted:
			t.running++
			t.incomplete++
		default:
			t.incomplete++
		}
	}
	for _, id := range rp.order {
		jj := rp.jobs[id]
		tenant := jj.Tenant
		if tenant == "" {
			tenant = "(unknown)"
		}
		tt := perTenant[tenant]
		if tt == nil {
			tt = &tally{}
			perTenant[tenant] = tt
		}
		bump(tt, jj)
		bump(&total, jj)
	}
	fmt.Fprintf(w, "journal %s: %d records (%d torn, skipped), %d jobs\n",
		path, rp.records, rp.torn, len(rp.order))
	tenants := make([]string, 0, len(perTenant))
	for t := range perTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "%-20s %9s %9s %9s %9s %9s %10s\n",
		"tenant", "submitted", "running", "done", "failed", "cancelled", "incomplete")
	for _, t := range tenants {
		tt := perTenant[t]
		fmt.Fprintf(w, "%-20s %9d %9d %9d %9d %9d %10d\n",
			t, tt.submitted, tt.running, tt.completed, tt.failed, tt.cancelled, tt.incomplete)
	}
	fmt.Fprintf(w, "%-20s %9d %9d %9d %9d %9d %10d\n",
		"TOTAL", total.submitted, total.running, total.completed, total.failed, total.cancelled, total.incomplete)
	if total.incomplete > 0 {
		fmt.Fprintf(w, "note: %d acknowledged jobs have no terminal record; a restart on this data dir re-enqueues them\n",
			total.incomplete)
	}
	return nil
}

// nowNano is the journal's wall stamp helper.
func nowNano(now func() time.Time) int64 {
	if now == nil {
		return 0
	}
	return now().UnixNano()
}
