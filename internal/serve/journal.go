package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The write-ahead job journal.
//
// Every job lifecycle transition appends one NDJSON record to
// <data-dir>/journal.ndjson. The single durability contract of the service
// is: a submit is acknowledged (HTTP 202 / Submit returning a job) only
// after its "submitted" record — which embeds the full normalized spec — is
// fsync'd. Everything else (started/completed/failed/cancelled records, the
// disk spill of result bytes) is an optimization: losing it in a crash costs
// a recompute on recovery, never a wrong answer, because the engine is
// deterministic — replaying a spec yields byte-identical results.
//
// Appends use group commit with a dedicated syncer goroutine: appenders
// write their line into a buffered writer under the mutex and (for durable
// appends) wait; the syncer flushes the buffer and fsyncs, covering every
// record written since the previous commit began. Under concurrent submits
// one flush+fsync amortizes over the whole batch, which is what keeps
// journaling within the 1.5x throughput budget.

// JournalName is the WAL file name inside a data directory.
const JournalName = "journal.ndjson"

// journalVersion guards record decoding; unknown versions are skipped as
// corrupt rather than misinterpreted.
const journalVersion = 1

// Journal record kinds. "submitted" is the only durable-before-ack record
// and the only one carrying the spec; the rest advance the job's replayed
// state machine.
const (
	recSubmitted = "submitted"
	recStarted   = "started"
	recCompleted = "completed"
	recFailed    = "failed"
	recCancelled = "cancelled"
	// recQuota is a jobless per-tenant accounting checkpoint (token-bucket
	// fill and stored-bytes total), written by compaction so recovery can
	// rehydrate quota state without the full submit history.
	recQuota = "quota"
)

// journalRecord is one NDJSON line of the WAL.
type journalRecord struct {
	V         int             `json:"v"`
	Rec       string          `json:"rec"`
	Job       string          `json:"job,omitempty"`
	Tenant    string          `json:"tenant,omitempty"`
	SpecHash  string          `json:"spec_hash,omitempty"`
	SetupHash string          `json:"setup_hash,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Attempt   int             `json:"attempt,omitempty"`
	Cache     string          `json:"cache,omitempty"`
	Error     string          `json:"error,omitempty"`
	// Quota piggyback: the tenant's post-admission token-bucket fill (and
	// the instant it was observed) on submitted records, and the tenant's
	// stored-bytes total on completed records — so replay rehydrates quota
	// accounting to within one refill of the pre-crash values.
	Tokens *float64 `json:"tokens,omitempty"`
	TokTS  int64    `json:"tok_ts,omitempty"`
	Stored *int64   `json:"stored,omitempty"`
	// UnixNano is a wall-clock stamp for operators (journal-dump); recovery
	// never depends on it.
	UnixNano int64 `json:"ts,omitempty"`
}

// errJournalDead reports an append on a journal after kill() — the simulated
// post-SIGKILL state. Callers treat it like a crash: the write never happened.
var errJournalDead = errors.New("serve: journal is dead")

// journal is the append side of the WAL.
type journal struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast: synced advanced, or death/error
	want *sync.Cond // signal: a durable appender raised wantSync
	path string
	f    *os.File
	// w buffers record writes; the syncer flushes it before every fsync, so
	// an acked record is always on disk. Buffered-but-unflushed records are
	// all unacked (non-durable, or durable appenders still waiting) — losing
	// them in a crash is within the durability contract.
	w      *bufio.Writer
	err    error // first write/sync error; sticky
	dead   bool  // kill(): simulate process death, drop all writes
	closed bool  // graceful close(): syncer drained and exited
	seq    int64 // last sequence number handed out
	synced int64 // last sequence number covered by a completed fsync
	// wantSync is the highest sequence number a durable appender is waiting
	// on; the syncer goroutine sleeps whenever synced has caught up to it.
	wantSync int64

	// Replication offset accounting. size is the journal's logical length in
	// bytes (pre-existing file + every appended line); syncedBytes is the
	// prefix covered by a completed fsync. Both only ever land on whole-line
	// boundaries, which is what lets the replication stream ship [from,
	// syncedBytes) without ever cutting a record. epoch names the journal's
	// lineage: compaction rewrites the file and bumps it, invalidating every
	// follower offset from the previous lineage.
	size        int64
	syncedBytes int64
	epoch       int64

	// compacting blocks appenders and the syncer while compact() rewrites
	// the file; inFsync marks the window where the syncer has dropped the
	// mutex for an fsync and the file handle must not be swapped.
	compacting bool
	inFsync    bool

	records int64 // appended records
	bytes   int64 // appended bytes
	syncs   int64 // fsync calls (group commits)

	done chan struct{} // syncer exited
}

// openJournal opens (creating if needed) the WAL for appending and starts
// its group-commit syncer. A torn tail (the partial final line of a crashed
// write) is truncated first: it decodes as nothing on replay anyway, and
// dropping it keeps two invariants — the file is line-aligned from byte 0,
// which is what lets replication ship [from, synced) without ever cutting a
// record, and the first post-crash append can never merge with the fragment
// into one undecodable line.
func openJournal(path string) (*journal, error) {
	if err := truncateTornTail(path); err != nil {
		return nil, fmt.Errorf("serve: trim journal tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: stat journal: %w", err)
	}
	j := &journal{
		path: path, f: f, w: bufio.NewWriterSize(f, 64<<10),
		size: fi.Size(), syncedBytes: fi.Size(),
		epoch: readEpochFile(path), done: make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	j.want = sync.NewCond(&j.mu)
	go j.syncLoop()
	return j, nil
}

// truncateTornTail cuts a journal file back to its last complete line. A
// missing file or one already ending in '\n' (the overwhelmingly common
// case) is a no-op.
func truncateTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, size-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	const step = 64 << 10
	end := size
	for end > 0 {
		start := end - step
		if start < 0 {
			start = 0
		}
		chunk := make([]byte, end-start)
		if _, err := f.ReadAt(chunk, start); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(chunk, '\n'); i >= 0 {
			return f.Truncate(start + int64(i) + 1)
		}
		end = start
	}
	return f.Truncate(0)
}

// epochPath is the sidecar file recording the journal's compaction epoch.
func epochPath(journalPath string) string { return journalPath + ".epoch" }

// readEpochFile loads the journal epoch; a missing or corrupt sidecar means
// epoch 1 (a journal that has never been compacted).
func readEpochFile(journalPath string) int64 {
	b, err := os.ReadFile(epochPath(journalPath))
	if err != nil {
		return 1
	}
	n, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// writeEpochFile persists the epoch sidecar atomically.
func writeEpochFile(journalPath string, epoch int64) error {
	dir := filepath.Dir(journalPath)
	tmp, err := os.CreateTemp(dir, ".epoch-*")
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintf(tmp, "%d\n", epoch)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), epochPath(journalPath))
}

// groupCommitWindow rate-limits fsyncs under sustained load: once a commit
// has happened, the next one waits out the remainder of the window so the
// batch behind it grows. An idle journal (no commit within the last window)
// syncs immediately, so a lone submit still acks in one fsync latency. The
// window bounds worst-case ack latency at a few milliseconds — far below a
// job's runtime — and is what keeps journaling inside the 1.5x throughput
// budget when fsync latency rivals job duration.
const groupCommitWindow = 2 * time.Millisecond

// syncLoop is the dedicated group-commit goroutine: it fsyncs whenever
// durable appenders are waiting, so each commit covers every record written
// since the previous one began. A dedicated syncer batches markedly better
// under CPU load than leader election among the appenders — there is no
// per-commit wakeup handoff on the critical path, appenders just pile up
// behind the in-flight commit.
func (j *journal) syncLoop() {
	defer close(j.done)
	var lastSync time.Time
	j.mu.Lock()
	for {
		// Wake for durable appenders (the ack path) and, lazily, for any
		// unsynced tail of non-durable records: replication ships only the
		// fsync'd prefix, so the tail must reach disk once load quiesces or a
		// follower's lag would never drain. The group-commit window below
		// still rate-limits the fsyncs this causes.
		for !j.dead && j.err == nil && ((j.synced >= j.wantSync && j.syncedBytes >= j.size) || j.compacting) {
			j.want.Wait()
		}
		if j.dead || j.err != nil {
			j.mu.Unlock()
			return
		}
		if wait := groupCommitWindow - time.Since(lastSync); wait > 0 {
			// Recent commit: let the batch accumulate before the next one.
			j.mu.Unlock()
			time.Sleep(wait)
			j.mu.Lock()
			if j.dead || j.err != nil {
				j.mu.Unlock()
				return
			}
			if j.compacting {
				continue
			}
		}
		target := j.seq
		targetBytes := j.size
		j.inFsync = true
		ferr := j.w.Flush()
		j.mu.Unlock()
		serr := j.f.Sync()
		if serr == nil {
			serr = ferr
		}
		lastSync = time.Now()
		j.mu.Lock()
		j.inFsync = false
		if j.dead { // killed mid-fsync: the commit never happened
			j.cond.Broadcast()
			j.mu.Unlock()
			return
		}
		if serr != nil {
			if j.err == nil {
				j.err = fmt.Errorf("serve: journal sync: %w", serr)
			}
		} else if target > j.synced {
			j.synced = target
			j.syncs++
			if targetBytes > j.syncedBytes {
				j.syncedBytes = targetBytes
			}
		}
		j.cond.Broadcast()
	}
}

// append writes one record. durable waits until an fsync covers it (group
// commit); non-durable returns after the OS write — its loss in a crash is
// repaired by recovery recomputing, so only submit acks pay for the fsync.
func (j *journal) append(r journalRecord, durable bool) error {
	r.V = journalVersion
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: journal marshal: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	for j.compacting && !j.dead && j.err == nil {
		j.cond.Wait()
	}
	if j.dead || j.closed {
		return errJournalDead
	}
	if j.err != nil {
		return j.err
	}
	j.seq++
	mySeq := j.seq
	if _, werr := j.w.Write(line); werr != nil {
		j.err = fmt.Errorf("serve: journal write: %w", werr)
		j.cond.Broadcast()
		j.want.Broadcast()
		return j.err
	}
	j.records++
	j.bytes += int64(len(line))
	j.size += int64(len(line))
	if !durable {
		// Nudge the syncer so the record reaches the fsync'd (and therefore
		// replicated) prefix within a commit window, without waiting on it.
		j.want.Signal()
		return nil
	}
	if mySeq > j.wantSync {
		j.wantSync = mySeq
	}
	j.want.Signal()
	for j.synced < mySeq && j.err == nil && !j.dead {
		j.cond.Wait()
	}
	if j.dead {
		return errJournalDead
	}
	return j.err
}

// kill simulates process death: all subsequent writes are dropped and the
// file handle closes without a flush. The crash-restart tests use this as
// the in-process SIGKILL.
func (j *journal) kill() {
	j.mu.Lock()
	if j.dead || j.closed {
		j.mu.Unlock()
		return
	}
	j.dead = true
	j.f.Close()
	j.cond.Broadcast()
	j.want.Broadcast()
	j.mu.Unlock()
	<-j.done
}

// close flushes and closes the journal (graceful shutdown).
func (j *journal) close() error {
	j.mu.Lock()
	if j.dead || j.closed {
		j.mu.Unlock()
		return nil
	}
	j.dead = true // stops the syncer; the final flush happens below
	j.cond.Broadcast()
	j.want.Broadcast()
	j.mu.Unlock()
	<-j.done

	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// journalStats is the operator-facing view of the append side.
type journalStats struct {
	Records     int64
	Bytes       int64
	Syncs       int64
	Size        int64 // logical file length (whole lines only)
	SyncedBytes int64 // fsync-covered prefix length
	Epoch       int64 // compaction lineage
}

func (j *journal) stats() journalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return journalStats{
		Records: j.records, Bytes: j.bytes, Syncs: j.syncs,
		Size: j.size, SyncedBytes: j.syncedBytes, Epoch: j.epoch,
	}
}

// offsets reports the journal lineage and its fsync-covered byte prefix —
// the pair the replication stream hands to followers. Read together under
// the mutex so a compaction can never be observed half-applied.
func (j *journal) offsets() (epoch, synced int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch, j.syncedBytes
}

// compact rewrites the journal to live state at a safe point: appenders are
// blocked, the syncer is idle (never mid-fsync), everything buffered is on
// disk. rewrite maps the old file's bytes to the new ones (the fold lives in
// compactJournal; injected here so tests can pin pathological rewrites). On
// success the epoch is bumped and persisted, which tells every replication
// stream — whose offsets name the old lineage — to terminate and force its
// follower through a fresh snapshot. The rewrite itself is crash-safe: the
// new file is fsync'd and renamed over the old one, so a crash leaves either
// lineage intact, never a mix.
func (j *journal) compact(rewrite func(data []byte) ([]byte, error)) error {
	j.mu.Lock()
	for (j.compacting || j.inFsync) && !j.dead && j.err == nil {
		j.cond.Wait()
	}
	if j.dead || j.closed {
		j.mu.Unlock()
		return errJournalDead
	}
	if j.err != nil {
		defer j.mu.Unlock()
		return j.err
	}
	j.compacting = true
	defer func() {
		j.compacting = false
		j.cond.Broadcast()
		j.want.Broadcast()
		j.mu.Unlock()
	}()
	if ferr := j.w.Flush(); ferr != nil {
		j.err = fmt.Errorf("serve: compact flush: %w", ferr)
		return j.err
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return fmt.Errorf("serve: compact read: %w", err)
	}
	newData, err := rewrite(data)
	if err != nil {
		return fmt.Errorf("serve: compact rewrite: %w", err)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-compact-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(newData)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: compact write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: compact rename: %w", err)
	}
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The rewritten file is in place but unappendable: poison the journal
		// rather than keep writing through a stale handle to a renamed-away
		// inode.
		j.err = fmt.Errorf("serve: compact reopen: %w", err)
		return j.err
	}
	j.f.Close()
	j.f = nf
	j.w = bufio.NewWriterSize(nf, 64<<10)
	j.size = int64(len(newData))
	j.syncedBytes = j.size
	// Compaction is itself a group commit: the whole rewritten file is
	// fsync'd, so every pending durable appender is covered.
	if j.seq > j.synced {
		j.synced = j.seq
		j.syncs++
	}
	j.epoch++
	if err := writeEpochFile(j.path, j.epoch); err != nil {
		return fmt.Errorf("serve: compact epoch: %w", err)
	}
	return nil
}

// ---- replay side ----

// journalJob is the replayed view of one job: the fold of its records. The
// state machine is tolerant of records arriving out of order in the file
// (a completed record written by a racing worker before the queue push's
// submitted record lands): terminal kinds dominate started, which dominates
// submitted, and the spec attaches whenever the submitted record is seen.
type journalJob struct {
	ID        string
	Tenant    string
	SpecHash  string
	SetupHash string
	Spec      json.RawMessage
	State     string // last-seen highest-precedence record kind
	Attempts  int    // count of started records
	Cache     string // completed record's cache annotation
	Error     string // failed record's message
}

// terminal reports whether the replayed job reached a terminal record.
func (jj *journalJob) terminal() bool {
	switch jj.State {
	case recCompleted, recFailed, recCancelled:
		return true
	}
	return false
}

// quotaSnap is the replayed per-tenant quota accounting: the last journaled
// token-bucket observation and the high-water stored-bytes total.
type quotaSnap struct {
	Tokens    float64
	HasTokens bool
	TokTS     int64
	Stored    int64
	HasStored bool
}

// journalReplay is the result of reading a WAL: per-job folds in first-seen
// order, per-tenant quota snapshots, plus corruption accounting. The fold is
// incremental — the follower feeds it one shipped record at a time via
// applyLine, boot replay feeds it the whole file — so both sides of
// replication share one state machine by construction.
type journalReplay struct {
	jobs  map[string]*journalJob
	order []string
	quota map[string]*quotaSnap
	// records is the count of well-formed records; torn counts skipped
	// lines — truncated trailing writes from a crash, or corrupt bytes.
	records int
	torn    int
}

func newJournalReplay() *journalReplay {
	return &journalReplay{jobs: map[string]*journalJob{}, quota: map[string]*quotaSnap{}}
}

// readJournal loads and folds a WAL. Undecodable lines (a torn final record
// from a crash mid-write, bit rot, an unknown version) are counted and
// skipped — never a panic, never a half-applied record: a line either
// decodes completely or contributes nothing.
func readJournal(path string) (*journalReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return newJournalReplay(), nil
		}
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	return replayJournal(data), nil
}

// replayJournal folds raw WAL bytes; split out for the fuzz targets and the
// follower's snapshot apply.
func replayJournal(data []byte) *journalReplay {
	rp := newJournalReplay()
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		rp.applyLine(line)
	}
	return rp
}

// applyLine folds one WAL line into the replay, returning whether it was a
// well-formed record. A malformed line (torn tail, bit rot, garbage shipped
// by a confused peer) contributes nothing but a torn count — the invariant
// the replication fuzz target leans on.
func (rp *journalReplay) applyLine(line []byte) bool {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return true
	}
	var r journalRecord
	if err := json.Unmarshal(line, &r); err != nil || r.V != journalVersion {
		rp.torn++
		return false
	}
	switch r.Rec {
	case recQuota:
		if r.Tenant == "" {
			rp.torn++
			return false
		}
		rp.records++
		rp.applyQuota(r)
		return true
	case recSubmitted, recStarted, recCompleted, recFailed, recCancelled:
		if r.Job == "" {
			rp.torn++
			return false
		}
	default:
		rp.torn++
		return false
	}
	rp.records++
	if r.Tokens != nil || r.Stored != nil {
		rp.applyQuota(r)
	}
	jj := rp.jobs[r.Job]
	if jj == nil {
		jj = &journalJob{ID: r.Job, State: r.Rec}
		rp.jobs[r.Job] = jj
		rp.order = append(rp.order, r.Job)
	}
	switch r.Rec {
	case recSubmitted:
		jj.Tenant = r.Tenant
		jj.SpecHash = r.SpecHash
		jj.SetupHash = r.SetupHash
		jj.Spec = r.Spec
		if jj.State == "" {
			jj.State = recSubmitted
		}
	case recStarted:
		// Attempts is a count of started records, except a compacted journal
		// collapses the history into one started record carrying the total.
		jj.Attempts++
		if r.Attempt > jj.Attempts {
			jj.Attempts = r.Attempt
		}
		if !jj.terminal() {
			jj.State = recStarted
		}
	case recCompleted:
		jj.State = recCompleted
		jj.Cache = r.Cache
	case recFailed:
		jj.State = recFailed
		jj.Error = r.Error
	case recCancelled:
		jj.State = recCancelled
	}
	return true
}

// applyQuota folds one record's quota piggyback fields. Token observations
// are last-writer-wins (each snapshots the whole bucket at its instant);
// stored-bytes totals take the maximum, so replaying records out of their
// append order never undercounts a tenant's disk usage.
func (rp *journalReplay) applyQuota(r journalRecord) {
	q := rp.quota[r.Tenant]
	if q == nil {
		q = &quotaSnap{}
		rp.quota[r.Tenant] = q
	}
	if r.Tokens != nil && r.TokTS >= q.TokTS {
		q.Tokens = *r.Tokens
		q.HasTokens = true
		q.TokTS = r.TokTS
	}
	if r.Stored != nil {
		q.HasStored = true
		if *r.Stored > q.Stored {
			q.Stored = *r.Stored
		}
	}
}

// ---- compaction ----

// compactJournal rewrites raw WAL bytes to live state: one submitted record
// per job (its spec dropped only when the job is completed AND haveResult
// confirms its spilled result is on disk — otherwise recovery could neither
// serve nor re-run it), a single started record carrying the attempt total,
// the terminal record, and one quota checkpoint per tenant. The output is
// O(live jobs), deterministic for a given fold (jobs in first-seen order,
// tenants sorted), and replays to the same recovery decisions as the input.
func compactJournal(data []byte, haveResult func(hash string) bool) ([]byte, error) {
	rp := replayJournal(data)
	var buf bytes.Buffer
	emit := func(r journalRecord) error {
		r.V = journalVersion
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
		return nil
	}
	for _, id := range rp.order {
		jj := rp.jobs[id]
		sub := journalRecord{
			Rec: recSubmitted, Job: id, Tenant: jj.Tenant,
			SpecHash: jj.SpecHash, SetupHash: jj.SetupHash, Spec: jj.Spec,
		}
		if jj.State == recCompleted && haveResult != nil && haveResult(jj.SpecHash) {
			sub.Spec = nil
		}
		if err := emit(sub); err != nil {
			return nil, err
		}
		if jj.Attempts > 0 {
			if err := emit(journalRecord{Rec: recStarted, Job: id, SpecHash: jj.SpecHash, Tenant: jj.Tenant, Attempt: jj.Attempts}); err != nil {
				return nil, err
			}
		}
		var term *journalRecord
		switch jj.State {
		case recCompleted:
			term = &journalRecord{Rec: recCompleted, Job: id, SpecHash: jj.SpecHash, Tenant: jj.Tenant, Cache: jj.Cache}
		case recFailed:
			term = &journalRecord{Rec: recFailed, Job: id, SpecHash: jj.SpecHash, Tenant: jj.Tenant, Error: jj.Error}
		case recCancelled:
			term = &journalRecord{Rec: recCancelled, Job: id, SpecHash: jj.SpecHash, Tenant: jj.Tenant}
		}
		if term != nil {
			if err := emit(*term); err != nil {
				return nil, err
			}
		}
	}
	tenants := make([]string, 0, len(rp.quota))
	for t := range rp.quota {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		q := rp.quota[t]
		rec := journalRecord{Rec: recQuota, Tenant: t}
		if q.HasTokens {
			tok := q.Tokens
			rec.Tokens = &tok
			rec.TokTS = q.TokTS
		}
		if q.HasStored {
			stored := q.Stored
			rec.Stored = &stored
		}
		if err := emit(rec); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// CompactDataDir compacts a data directory's journal offline (no server
// running on it): the -journal-compact flag. Returns before/after sizes. A
// live server auto-compacts at Config.CompactBytes instead.
func CompactDataDir(dir string) (before, after int64, err error) {
	path := filepath.Join(dir, JournalName)
	if fi, serr := os.Stat(dir); serr == nil && !fi.IsDir() {
		path = dir
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	haveResult := func(hash string) bool {
		if hash == "" {
			return false
		}
		_, serr := os.Stat(filepath.Join(filepath.Dir(path), resultsDirName, hash+".json"))
		return serr == nil
	}
	newData, err := compactJournal(data, haveResult)
	if err != nil {
		return int64(len(data)), 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-compact-*")
	if err != nil {
		return int64(len(data)), 0, err
	}
	_, werr := tmp.Write(newData)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return int64(len(data)), 0, werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return int64(len(data)), 0, err
	}
	if err := writeEpochFile(path, readEpochFile(path)+1); err != nil {
		return int64(len(data)), int64(len(newData)), err
	}
	return int64(len(data)), int64(len(newData)), nil
}

// ---- journal-dump (operator tooling) ----

// DumpJournal pretty-prints a WAL with per-tenant and per-state tallies: the
// operator's view of what a data directory holds. path may be the journal
// file itself or a data directory containing one. The output is
// deterministic for a given journal (tenants sorted, no wall-clock values).
func DumpJournal(path string, w *bytes.Buffer) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, JournalName)
	}
	rp, err := readJournal(path)
	if err != nil {
		return err
	}
	type tally struct {
		submitted, running, completed, failed, cancelled, incomplete int
	}
	perTenant := map[string]*tally{}
	var total tally
	bump := func(t *tally, jj *journalJob) {
		t.submitted++
		switch jj.State {
		case recCompleted:
			t.completed++
		case recFailed:
			t.failed++
		case recCancelled:
			t.cancelled++
		case recStarted:
			t.running++
			t.incomplete++
		default:
			t.incomplete++
		}
	}
	for _, id := range rp.order {
		jj := rp.jobs[id]
		tenant := jj.Tenant
		if tenant == "" {
			tenant = "(unknown)"
		}
		tt := perTenant[tenant]
		if tt == nil {
			tt = &tally{}
			perTenant[tenant] = tt
		}
		bump(tt, jj)
		bump(&total, jj)
	}
	fmt.Fprintf(w, "journal %s: %d records (%d torn, skipped), %d jobs\n",
		path, rp.records, rp.torn, len(rp.order))
	tenants := make([]string, 0, len(perTenant))
	for t := range perTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "%-20s %9s %9s %9s %9s %9s %10s\n",
		"tenant", "submitted", "running", "done", "failed", "cancelled", "incomplete")
	for _, t := range tenants {
		tt := perTenant[t]
		fmt.Fprintf(w, "%-20s %9d %9d %9d %9d %9d %10d\n",
			t, tt.submitted, tt.running, tt.completed, tt.failed, tt.cancelled, tt.incomplete)
	}
	fmt.Fprintf(w, "%-20s %9d %9d %9d %9d %9d %10d\n",
		"TOTAL", total.submitted, total.running, total.completed, total.failed, total.cancelled, total.incomplete)
	if total.incomplete > 0 {
		fmt.Fprintf(w, "note: %d acknowledged jobs have no terminal record; a restart on this data dir re-enqueues them\n",
			total.incomplete)
	}
	return nil
}

// nowNano is the journal's wall stamp helper.
func nowNano(now func() time.Time) int64 {
	if now == nil {
		return 0
	}
	return now().UnixNano()
}
