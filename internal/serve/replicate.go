package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The primary side of replication: journal shipping over chunked NDJSON.
//
// The unit of replication is the journal byte. The primary's journal only
// ever grows by whole fsync'd lines (openJournal truncates any torn tail
// left by a crash, so the file is line-aligned from byte 0), and the stream
// ships the byte range [from, syncedBytes) split back into lines — one
// frame per record, each stamped with its starting offset. A follower that
// appends exactly those bytes at exactly those offsets holds a
// byte-identical prefix of the primary's journal, which is what makes
// promotion trivial: it is crash recovery on the follower's own data dir,
// reusing the boot path verbatim.
//
// Alongside record frames the stream carries artifact frames (spilled cache
// envelopes, shipped verbatim so byte-identity survives the hop) and
// heartbeat frames (liveness + the primary's synced offset, which is how a
// follower measures its replication lag). Artifacts are an optimization
// exactly as they are on the primary's own disk: a follower that misses one
// re-runs the job's spec after promotion and reproduces the same bytes.
//
// Offsets name bytes within one journal lineage. Compaction rewrites the
// file and bumps the epoch; every stream detects the epoch change, emits a
// final heartbeat, and terminates, forcing its follower through a fresh
// snapshot (409 resync on reconnect). A snapshot is the anti-entropy path
// for late joiners too: the whole journal prefix plus the artifact
// manifest, fetched once, then the tail streams.

const (
	frameVersion = 1
	frameRec     = "rec" // one journal line at Off
	frameArt     = "art" // one spilled cache envelope
	frameHB      = "hb"  // liveness + synced offset
)

// repFrame is one NDJSON line of the replication stream.
type repFrame struct {
	V     int    `json:"v"`
	T     string `json:"t"`
	Epoch int64  `json:"epoch"`
	// Rec frames: the journal line (raw when it is valid JSON, base64 when
	// not — a bit-rotted line still has to move verbatim to keep the
	// follower's journal a byte-identical prefix) and its starting offset.
	Off    int64           `json:"off,omitempty"`
	Rec    json.RawMessage `json:"rec,omitempty"`
	RecB64 string          `json:"rec_b64,omitempty"`
	// Art frames: the artifact address. The envelope bytes travel out of
	// band — the follower fetches them raw from /v1/replicate/artifact —
	// because base64-in-JSON would cost an encode+escape+unescape+decode
	// round trip over megabytes of payload on both ends. B64 carries the
	// bytes inline only in legacy frames; current primaries never set it.
	Kind string `json:"kind,omitempty"`
	Hash string `json:"hash,omitempty"`
	Size int64  `json:"size,omitempty"`
	B64  string `json:"b64,omitempty"`
	// Synced rides on every frame: the primary's fsync-covered journal
	// length, the follower's lag reference.
	Synced int64 `json:"synced,omitempty"`
}

// snapshotSchema versions the anti-entropy snapshot document.
const snapshotSchema = "stencilserve-snapshot/1"

// snapshotDoc is the late-joiner catch-up payload: the full journal prefix
// (every fsync'd byte) plus the artifact manifest to fetch.
type snapshotDoc struct {
	Schema     string        `json:"schema"`
	Epoch      int64         `json:"epoch"`
	Synced     int64         `json:"synced"`
	JournalB64 string        `json:"journal_b64"`
	Artifacts  []ArtifactRef `json:"artifacts"`
}

// manifestDoc is the anti-entropy listing a connected follower diffs
// against its own store.
type manifestDoc struct {
	Epoch     int64         `json:"epoch"`
	Synced    int64         `json:"synced"`
	Artifacts []ArtifactRef `json:"artifacts"`
}

// resyncInfo is the 409 body telling a follower its offset does not name a
// byte of the current journal lineage (stale epoch, or an offset past the
// synced prefix): fetch a snapshot, then come back.
type resyncInfo struct {
	Code   string `json:"code"` // "resync"
	Error  string `json:"error"`
	Epoch  int64  `json:"epoch"`
	Synced int64  `json:"synced"`
}

// replicator is the primary's replication bookkeeping: the in-process
// artifact feed connected streams tail, plus counters for /metrics.
type replicator struct {
	mu    sync.Mutex
	arts  []ArtifactRef       // spill feed, append-only for the process lifetime
	noted map[string]struct{} // kind/hash pairs already on the feed

	streams     atomic.Int64 // connected follower streams
	recFrames   atomic.Int64 // record frames shipped
	artFrames   atomic.Int64 // artifact frames shipped
	snapshots   atomic.Int64 // snapshots served
	compactions atomic.Int64 // journal compactions completed
}

// note records one spill for connected streams to ship. Artifacts are
// content-addressed — a hash names one immutable byte string — so a re-spill
// of a hash already on the feed (a cache-miss stampede recomputing the same
// spec, or an evicted entry coming back) ships nothing: the follower either
// has those bytes or repairs them from its next manifest diff.
func (rp *replicator) note(kind, hash string, size int64) {
	key := kind + "/" + hash
	rp.mu.Lock()
	if rp.noted == nil {
		rp.noted = make(map[string]struct{})
	}
	if _, dup := rp.noted[key]; !dup {
		rp.noted[key] = struct{}{}
		rp.arts = append(rp.arts, ArtifactRef{Kind: kind, Hash: hash, Size: size})
	}
	rp.mu.Unlock()
}

// head returns the current end of the artifact feed (a new stream starts
// here: everything earlier is covered by its connect-time manifest diff).
func (rp *replicator) head() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return len(rp.arts)
}

// since returns feed entries past idx and advances it.
func (rp *replicator) since(idx *int) []ArtifactRef {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if *idx >= len(rp.arts) {
		return nil
	}
	out := rp.arts[*idx:len(rp.arts):len(rp.arts)]
	*idx = len(rp.arts)
	return out
}

// heartbeatInterval resolves the configured stream heartbeat cadence.
func (s *Server) heartbeatInterval() time.Duration {
	if s.cfg.HeartbeatInterval > 0 {
		return s.cfg.HeartbeatInterval
	}
	return 100 * time.Millisecond
}

// errNotDurable refuses replication endpoints on an in-memory server.
var errNotDurable = errors.New("serve: not durable (no DataDir); nothing to replicate")

func writeResync(w http.ResponseWriter, epoch, synced int64, msg string) {
	writeJSON(w, http.StatusConflict, resyncInfo{Code: "resync", Error: msg, Epoch: epoch, Synced: synced})
}

// handleReplicateStream serves GET /v1/replicate/stream?from=N&epoch=E: an
// unbounded NDJSON frame stream from journal offset N of lineage E.
func (s *Server) handleReplicateStream(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusConflict, CodeConflict, errNotDurable)
		return
	}
	from, err1 := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	wantEpoch, err2 := strconv.ParseInt(r.URL.Query().Get("epoch"), 10, 64)
	epoch, synced := s.journal.offsets()
	if err1 != nil || err2 != nil || from < 0 {
		writeResync(w, epoch, synced, "bad from/epoch")
		return
	}
	if wantEpoch != epoch || from > synced {
		writeResync(w, epoch, synced, fmt.Sprintf("offset %d@%d does not name this lineage (%d@%d)", from, wantEpoch, synced, epoch))
		return
	}
	f, err := os.Open(s.journal.path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	defer f.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	s.rep.streams.Add(1)
	defer s.rep.streams.Add(-1)

	// Artifacts spilled before this stream connected are the follower's
	// manifest diff to fetch; the feed tail starts now.
	artIdx := s.rep.head()
	ctx := r.Context()
	hb := time.NewTicker(s.heartbeatInterval())
	defer hb.Stop()
	buf := make([]byte, 256<<10)
	for {
		if ctx.Err() != nil {
			return
		}
		epoch2, synced2 := s.journal.offsets()
		if epoch2 != epoch {
			// Compacted under us: the offsets this stream speaks are dead.
			// One last heartbeat with the new lineage, then hang up — the
			// follower reconnects, gets a 409, and snapshots.
			enc.Encode(repFrame{V: frameVersion, T: frameHB, Epoch: epoch2, Synced: synced2})
			flush()
			return
		}
		progressed := false
		if from < synced2 {
			n := synced2 - from
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			m, rerr := f.ReadAt(buf[:n], from)
			if m == 0 && rerr != nil {
				return
			}
			chunk := buf[:m]
			if end := bytes.LastIndexByte(chunk, '\n'); end >= 0 {
				chunk = chunk[:end+1]
				for len(chunk) > 0 {
					nl := bytes.IndexByte(chunk, '\n')
					line := chunk[:nl]
					chunk = chunk[nl+1:]
					fr := repFrame{V: frameVersion, T: frameRec, Epoch: epoch, Off: from, Synced: synced2}
					if json.Valid(line) {
						fr.Rec = json.RawMessage(line)
					} else {
						fr.RecB64 = base64.StdEncoding.EncodeToString(line)
					}
					if err := enc.Encode(fr); err != nil {
						return
					}
					from += int64(nl) + 1
					s.rep.recFrames.Add(1)
					progressed = true
				}
			}
		}
		for _, a := range s.rep.since(&artIdx) {
			if err := enc.Encode(repFrame{
				V: frameVersion, T: frameArt, Epoch: epoch,
				Kind: a.Kind, Hash: a.Hash, Size: a.Size, Synced: synced2,
			}); err != nil {
				return
			}
			s.rep.artFrames.Add(1)
			progressed = true
		}
		if progressed {
			flush()
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			if err := enc.Encode(repFrame{V: frameVersion, T: frameHB, Epoch: epoch, Synced: synced2}); err != nil {
				return
			}
			flush()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// handleReplicateSnapshot serves GET /v1/replicate/snapshot: the whole
// fsync'd journal prefix plus the artifact manifest — the late joiner (and
// post-compaction) catch-up path.
func (s *Server) handleReplicateSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusConflict, CodeConflict, errNotDurable)
		return
	}
	// offsets and file bytes must come from the same lineage; a compaction
	// racing the read is detected by the epoch moving and retried.
	for attempt := 0; attempt < 3; attempt++ {
		epoch, synced := s.journal.offsets()
		data, err := os.ReadFile(s.journal.path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		epoch2, _ := s.journal.offsets()
		if epoch2 != epoch {
			continue
		}
		if int64(len(data)) > synced {
			data = data[:synced]
		}
		s.rep.snapshots.Add(1)
		writeJSON(w, http.StatusOK, snapshotDoc{
			Schema: snapshotSchema, Epoch: epoch, Synced: int64(len(data)),
			JournalB64: base64.StdEncoding.EncodeToString(data),
			Artifacts:  s.store.manifest(),
		})
		return
	}
	writeError(w, http.StatusServiceUnavailable, CodeInternal, errors.New("serve: snapshot raced compaction"))
}

// handleReplicateManifest serves GET /v1/replicate/manifest: the periodic
// anti-entropy listing.
func (s *Server) handleReplicateManifest(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusConflict, CodeConflict, errNotDurable)
		return
	}
	epoch, synced := s.journal.offsets()
	writeJSON(w, http.StatusOK, manifestDoc{Epoch: epoch, Synced: synced, Artifacts: s.store.manifest()})
}

// handleReplicateArtifact serves GET /v1/replicate/artifact/{kind}/{hash}:
// one spilled envelope, bytes verbatim.
func (s *Server) handleReplicateArtifact(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, CodeConflict, errNotDurable)
		return
	}
	data, err := s.store.readArtifact(r.PathValue("kind"), r.PathValue("hash"))
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handlePromote on a primary is a refusal: promotion is a follower verb.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusConflict, CodeConflict, errors.New("serve: already primary"))
}

// maybeCompact triggers an online journal compaction once the file crosses
// Config.CompactBytes. At most one runs at a time; jobs keep executing —
// only journal appends pause for the rewrite window.
func (s *Server) maybeCompact() {
	if s.cfg.CompactBytes <= 0 || s.journal == nil {
		return
	}
	if s.journal.stats().Size < s.cfg.CompactBytes {
		return
	}
	if !s.compactBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compactBusy.Store(false)
		if err := s.CompactJournal(); err == nil {
			s.rep.compactions.Add(1)
		}
	}()
}

// CompactJournal rewrites the live server's journal to live state at a safe
// point (appends blocked, syncer idle) and bumps the epoch, forcing
// connected followers through a snapshot re-sync.
func (s *Server) CompactJournal() error {
	if s.journal == nil {
		return errNotDurable
	}
	return s.journal.compact(func(data []byte) ([]byte, error) {
		return compactJournal(data, func(hash string) bool {
			return s.store.hasArtifact("result", hash, -1)
		})
	})
}
