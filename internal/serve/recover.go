package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/nodeaware/stencil/internal/jobspec"
)

// RecoveryStats reports what a boot-time replay rebuilt from the data
// directory. Exposed on /metrics and by cmd/stencilserve at startup.
type RecoveryStats struct {
	JournalRecords    int `json:"journal_records"`    // records replayed
	TornRecords       int `json:"torn_records"`       // undecodable lines skipped (torn final write)
	Reenqueued        int `json:"reenqueued_jobs"`    // acknowledged-but-incomplete jobs re-run
	Completed         int `json:"completed_jobs"`     // terminal jobs restored to the registry
	ResultsRehydrated int `json:"rehydrated_results"` // result-cache entries loaded from disk
	SetupsRehydrated  int `json:"rehydrated_setups"`  // setup-cache entries loaded from disk
	SkippedFiles      int `json:"skipped_files"`      // corrupt/foreign store files ignored
	QuotaTenants      int `json:"quota_tenants"`      // tenants whose quota accounting was reseeded
}

// recoverFromDisk opens the data directory, replays the journal, rehydrates
// both caches from the disk store, restores terminal jobs to the registry,
// and re-enqueues every acknowledged-but-incomplete job. Called from Open
// before the worker pool starts, so recovered jobs cannot race live ones.
//
// Correctness leans entirely on determinism: a re-enqueued job re-runs its
// journaled spec, and the engine maps that spec to byte-identical result and
// event bytes — so recovery returns exactly what the crashed process would
// have. The journal's only durable-before-ack record is "submitted"; losing
// any later record merely costs a redundant re-run, never a wrong answer.
func (s *Server) recoverFromDisk(dir string) error {
	st, err := newStore(dir)
	if err != nil {
		return err
	}
	s.store = st

	// Rehydrate the caches (and per-tenant stored-bytes accounting) from the
	// spill. Corrupt or foreign files are skipped, not fatal: a torn spill
	// write is equivalent to the entry never having been cached.
	now := s.now()
	skipped, err := st.loadAll(
		func(hash string, e resultEntry, tenant string, cost float64, diskBytes int64) {
			s.results.Put(hash, e, cost)
			s.quotas.addStored(tenant, diskBytes, now)
			s.recovery.ResultsRehydrated++
		},
		func(hash string, assignments [][]int, cost float64) {
			s.setups.Put(hash, setupEntry{assignments: assignments}, cost)
			s.recovery.SetupsRehydrated++
		},
	)
	if err != nil {
		return err
	}
	s.recovery.SkippedFiles = skipped

	// Replay the journal into per-job final states.
	journalPath := filepath.Join(dir, JournalName)
	rep, err := readJournal(journalPath)
	if err != nil {
		return err
	}
	s.recovery.JournalRecords = rep.records
	s.recovery.TornRecords = rep.torn

	maxID := 0
	for _, id := range rep.order {
		jj := rep.jobs[id]
		if n := numericJobID(id); n > maxID {
			maxID = n
		}
		j, err := s.restoreJob(jj, now)
		if err != nil {
			// A journaled spec that no longer validates (or never decoded)
			// cannot be re-run; surface it as a failed job rather than
			// silently dropping an acknowledged submit.
			j = newJob(jj.ID, jj.Tenant, nil, jj.SpecHash, jj.SetupHash, now)
			j.recovered = true
			j.finish(now, nil, nil, fmt.Errorf("serve: unrecoverable job: %w", err), false, false)
			s.registerRecovered(j)
			continue
		}
		if j == nil {
			continue
		}
		s.registerRecovered(j)
		if !jj.terminal() {
			// Acknowledged but never finished: the ack promised completion,
			// so re-enqueue past the capacity bound.
			s.quotas.admitRecovered(j.Tenant, now)
			if err := s.queue.forcePush(j); err != nil {
				return fmt.Errorf("serve: re-enqueue %s: %w", j.ID, err)
			}
			s.recovery.Reenqueued++
		} else {
			s.recovery.Completed++
		}
	}
	s.mu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()

	// Reseed per-tenant quota accounting from the journal's piggybacked
	// observations. This runs after loadAll's disk scan, so stored bytes end
	// at max(scan, journal) — the journal covers results the crash lost off
	// disk; the scan covers spills whose completed record was lost.
	for tenant, snap := range rep.quota {
		s.quotas.seed(tenant, *snap, now)
		s.recovery.QuotaTenants++
	}

	// Reopen the journal for appends; new records land after the replayed
	// ones, and the next replay folds both.
	j, err := openJournal(journalPath)
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

// restoreJob rebuilds one journaled job. Terminal jobs are restored in their
// final state (completed ones re-serve their result from the rehydrated
// cache); incomplete ones come back queued. Returns nil for cancelled jobs
// whose spec never landed (nothing to show).
func (s *Server) restoreJob(jj *journalJob, now time.Time) (*Job, error) {
	var spec *jobspec.Spec
	if len(jj.Spec) > 0 {
		spec = &jobspec.Spec{}
		if err := json.Unmarshal(jj.Spec, spec); err != nil {
			return nil, fmt.Errorf("spec decode: %w", err)
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if err := spec.Normalize(); err != nil {
			return nil, err
		}
	} else if !jj.terminal() {
		return nil, fmt.Errorf("no spec in journal")
	}

	j := newJob(jj.ID, jj.Tenant, spec, jj.SpecHash, jj.SetupHash, now)
	j.recovered = true
	j.attempts = jj.Attempts
	if spec != nil && spec.DeadlineSeconds > 0 {
		// Deadlines are relative to submission; post-crash the original
		// submission instant is gone, so the clock restarts at recovery —
		// generous, never lossy.
		j.deadline = now.Add(time.Duration(spec.DeadlineSeconds * float64(time.Second)))
	}

	switch jj.State {
	case recCompleted:
		if e, ok := s.results.Get(jj.SpecHash); ok {
			j.finish(now, e.result, e.events, nil, true, jj.Cache == "setup")
		} else {
			// Completed per the journal but the spill is gone. The store
			// writes the result before the completed record can land, so
			// this means the spill was deleted (or its write was torn) —
			// re-run the job: determinism reproduces the same bytes.
			if spec == nil {
				return nil, fmt.Errorf("completed job lost both result and spec")
			}
			jj.State = recStarted // caller re-enqueues (terminal() now false)
		}
	case recFailed:
		j.finish(now, nil, nil, fmt.Errorf("%s", orUnknown(jj.Error)), false, false)
	case recCancelled:
		if spec == nil {
			return nil, nil
		}
		j.cancel(now)
	}
	return j, nil
}

func orUnknown(msg string) string {
	if msg == "" {
		return "serve: failed before the crash (reason not journaled)"
	}
	return msg
}

// registerRecovered inserts a rebuilt job into the registry in journal order.
func (s *Server) registerRecovered(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
}

// admitRecovered re-takes an in-flight slot for a re-enqueued job without
// consuming rate tokens: the tenant already paid the token at original
// submission, and the crash was not their fault.
func (qs *quotas) admitRecovered(tenant string, now time.Time) {
	qs.mu.Lock()
	qs.state(tenant, now).inFlight++
	qs.mu.Unlock()
}

// numericJobID parses the numeric part of a "j%06d" ID (0 if foreign).
func numericJobID(id string) int {
	digits := strings.TrimPrefix(id, "j")
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
