package machine

import (
	"testing"

	"github.com/nodeaware/stencil/internal/sim"
)

func TestSummitNodeShape(t *testing.T) {
	cfg := SummitNode()
	if cfg.GPUs() != 6 {
		t.Errorf("Summit node GPUs = %d, want 6", cfg.GPUs())
	}
	if cfg.Sockets != 2 || cfg.GPUsPerSocket != 3 {
		t.Errorf("Summit node = %+v, want 2 sockets x 3 GPUs", cfg)
	}
}

func TestSocketAssignment(t *testing.T) {
	e := sim.NewEngine()
	m := NewSummit(e, 1)
	n := m.Nodes[0]
	wantSocket := []int{0, 0, 0, 1, 1, 1}
	for g, want := range wantSocket {
		if got := n.Socket(g); got != want {
			t.Errorf("Socket(%d) = %d, want %d", g, got, want)
		}
	}
}

func TestSameTriad(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 2, true},
		{3, 4, true}, {3, 5, true},
		{0, 3, false}, {2, 3, false}, {1, 5, false},
	}
	for _, c := range cases {
		if got := n.SameTriad(c.a, c.b); got != c.want {
			t.Errorf("SameTriad(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDevToDevPathIntraTriad(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	path := n.DevToDevPath(0, 1)
	if len(path) != 1 {
		t.Fatalf("intra-triad path length = %d, want 1 (direct NVLink)", len(path))
	}
	if path[0].Capacity != DefaultParams().NVLinkBW {
		t.Errorf("intra-triad link capacity = %g, want NVLink", path[0].Capacity)
	}
}

func TestDevToDevPathCrossSocket(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	path := n.DevToDevPath(0, 3)
	if len(path) != 3 {
		t.Fatalf("cross-socket path length = %d, want 3 (up, xbus, down)", len(path))
	}
	if path[1].Capacity != DefaultParams().XBusBW {
		t.Errorf("middle link capacity = %g, want X-Bus", path[1].Capacity)
	}
}

func TestDevToDevPathSameGPU(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	path := n.DevToDevPath(2, 2)
	if len(path) != 1 || path[0].Capacity != DefaultParams().DevLocalBW {
		t.Errorf("same-GPU path = %v, want single device-local link", path)
	}
}

func TestDevToHostPathSameSocket(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	path := n.DevToHostPath(0, 0)
	if len(path) != 2 {
		t.Fatalf("same-socket D2H path length = %d, want 2", len(path))
	}
}

func TestDevToHostPathCrossSocket(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	path := n.DevToHostPath(0, 1)
	if len(path) != 3 {
		t.Fatalf("cross-socket D2H path length = %d, want 3 (up, xbus, mem)", len(path))
	}
}

func TestHostToHostPaths(t *testing.T) {
	e := sim.NewEngine()
	m := NewSummit(e, 2)
	if got := len(m.HostToHostPath(0, 0, 0, 0)); got != 1 {
		t.Errorf("same-socket H2H path length = %d, want 1", got)
	}
	if got := len(m.HostToHostPath(0, 0, 0, 1)); got != 3 {
		t.Errorf("cross-socket H2H path length = %d, want 3", got)
	}
	if got := len(m.HostToHostPath(0, 0, 1, 1)); got != 4 {
		t.Errorf("inter-node H2H path length = %d, want 4 (mem,nicOut,nicIn,mem)", got)
	}
}

func TestDevToDevRemotePath(t *testing.T) {
	e := sim.NewEngine()
	m := NewSummit(e, 2)
	path := m.DevToDevRemotePath(0, 0, 1, 5)
	if len(path) != 4 {
		t.Fatalf("remote D2D path length = %d, want 4", len(path))
	}
	// Same node falls back to the local path.
	local := m.DevToDevRemotePath(0, 0, 0, 1)
	if len(local) != 1 {
		t.Errorf("same-node remote path length = %d, want 1", len(local))
	}
}

func TestTheoreticalBWOrdering(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	same := n.TheoreticalBW(0, 0)
	triad := n.TheoreticalBW(0, 1)
	sys := n.TheoreticalBW(0, 3)
	if !(same > triad && triad > sys) {
		t.Errorf("bandwidth ordering violated: same=%g triad=%g sys=%g", same, triad, sys)
	}
}

func TestTheoreticalBWSymmetric(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if n.TheoreticalBW(a, b) != n.TheoreticalBW(b, a) {
				t.Errorf("TheoreticalBW(%d,%d) != TheoreticalBW(%d,%d)", a, b, b, a)
			}
		}
	}
}

func TestLinkKind(t *testing.T) {
	e := sim.NewEngine()
	n := NewSummit(e, 1).Nodes[0]
	if n.Kind(2, 2) != LinkSame {
		t.Error("Kind(2,2) != LinkSame")
	}
	if n.Kind(0, 2) != LinkNVLink {
		t.Error("Kind(0,2) != LinkNVLink")
	}
	if n.Kind(0, 5) != LinkSys {
		t.Error("Kind(0,5) != LinkSys")
	}
	if LinkNVLink.String() != "NVLINK" || LinkSys.String() != "SYS" || LinkSame.String() != "SAME" {
		t.Error("LinkKind String() mismatch")
	}
}

func TestClusterNodeCount(t *testing.T) {
	e := sim.NewEngine()
	m := NewSummit(e, 4)
	if len(m.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(m.Nodes))
	}
	for i, n := range m.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
}

func TestCustomNodeConfig(t *testing.T) {
	e := sim.NewEngine()
	// Fig 4 scenario: nodes with 4 GPUs (2 sockets x 2).
	m := New(e, 12, NodeConfig{Sockets: 2, GPUsPerSocket: 2}, DefaultParams())
	if len(m.Nodes) != 12 {
		t.Fatalf("nodes = %d, want 12", len(m.Nodes))
	}
	n := m.Nodes[0]
	if n.Config.GPUs() != 4 {
		t.Errorf("GPUs = %d, want 4", n.Config.GPUs())
	}
	if n.Socket(3) != 1 {
		t.Errorf("Socket(3) = %d, want 1", n.Socket(3))
	}
}

func TestBadConfigPanics(t *testing.T) {
	e := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-node cluster did not panic")
		}
	}()
	New(e, 0, SummitNode(), DefaultParams())
}

// TestFaultLinkAccessors exercises the fault-injection link surface.
func TestFaultLinkAccessors(t *testing.T) {
	eng := sim.NewEngine()
	m := NewSummit(eng, 1)
	n := m.Nodes[0]

	ab, ba := n.NVLinkPair(0, 1)
	if ab == nil || ba == nil {
		t.Fatal("same-triad pair (0,1) has no NVLink")
	}
	if ab == ba {
		t.Fatal("NVLinkPair returned the same directed link twice")
	}
	if x, y := n.NVLinkPair(0, 3); x != nil || y != nil {
		t.Error("cross-socket pair (0,3) reported a direct NVLink")
	}
	s01, s10 := n.XBusPair(0, 1)
	if s01 == nil || s10 == nil {
		t.Fatal("XBusPair(0,1) returned nil")
	}
	out, in := n.NIC()
	if out == nil || in == nil || out == in {
		t.Fatal("NIC links wrong")
	}
	up, down := n.GPUSocketLinks(2)
	if up == nil || down == nil || up == down {
		t.Fatal("GPUSocketLinks wrong")
	}

	// A degraded NVLink is visible through the discovery surface the
	// placement phase consumes.
	healthy := n.TheoreticalBW(0, 1)
	m.Net.DegradeLink(ab, 0.5)
	if got := n.TheoreticalBW(0, 1); got != healthy/2 {
		t.Errorf("TheoreticalBW after degrade: got %g want %g", got, healthy/2)
	}
	m.Net.RestoreLink(ab)
	if got := n.TheoreticalBW(0, 1); got != healthy {
		t.Errorf("TheoreticalBW after restore: got %g want %g", got, healthy)
	}
}
