// Package machine models the hardware of a heterogeneous GPU cluster: nodes
// with multiple CPU sockets and multiple GPUs, the links between them, and
// the cost-model parameters for the simulated CUDA/MPI substrate.
//
// The default configuration reproduces a Summit node (paper Fig 10, Table I):
// two POWER9 sockets, three V100s per socket forming a "triad", NVLink
// (50 GB/s per direction) between GPUs in a triad and between each GPU and
// its socket, an X-Bus SMP link (64 GB/s per direction) between sockets, and
// a NIC with 12.5 GB/s per direction per rail.
//
// Transfers are expressed as paths over unidirectional flownet links; the
// contention behaviour of the five exchange methods in the paper emerges from
// which links each path crosses and who shares them.
package machine

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/sim"
)

// GB is 1e9 bytes, the unit vendor datasheets use for link bandwidth.
const GB = 1e9

// Params collects the cost-model constants of the simulation. Bandwidths are
// bytes/second, times are seconds.
type Params struct {
	// Link bandwidths (per direction).
	NVLinkBW   float64 // GPU-GPU within a triad, and GPU-CPU
	XBusBW     float64 // socket-to-socket SMP bus
	NICBW      float64 // node injection per direction (all rails)
	HostMemBW  float64 // per-socket host memory engine for staged copies
	ShmCopyBW  float64 // single-rank shared-memory copy bandwidth (one core)
	DevLocalBW float64 // same-GPU device-to-device copy bandwidth

	// Kernel and copy-engine overheads.
	KernelLaunch sim.Time // CUDA kernel launch latency
	MemcpyLaunch sim.Time // async memcpy issue latency
	PackBW       float64  // effective bandwidth of strided pack/unpack kernels

	// MPI costs.
	MPIIntraLatency sim.Time // per-message intra-node latency
	MPIInterLatency sim.Time // per-message inter-node latency
	RendezvousCost  sim.Time // extra handshake for large messages
	EagerLimit      float64  // messages up to this size skip the rendezvous

	// cudaIpc* and CUDA-aware MPI costs.
	IpcGetHandle  sim.Time // cudaIpcGetMemHandle
	IpcOpenHandle sim.Time // cudaIpcOpenMemHandle
	// CUDA-aware MPI re-establishes device-buffer access per message (the
	// paper observes it does the cudaIpc* exchange every time) and issues its
	// internal copies on the default stream followed by device-wide
	// synchronization. These two knobs model that pathology.
	CudaAwarePerMsg    sim.Time // per-message registration/handle overhead
	CudaAwareSyncCost  sim.Time // cudaDeviceSynchronize cost per message
	CudaAwareChunk     float64  // pipeline chunk size for CUDA-aware transfers
	CudaAwareChunkCost sim.Time // per-chunk issue cost on the default stream
}

// DefaultParams returns the calibrated cost model used throughout the
// benchmarks. Absolute values are chosen to be physically plausible for a
// 2019-era Summit node; the paper's result shapes are insensitive to modest
// changes (see BenchmarkAblation* in the repository root).
func DefaultParams() Params {
	return Params{
		NVLinkBW:   46 * GB, // ~92% of the 50 GB/s spec is achievable
		XBusBW:     58 * GB,
		NICBW:      25 * GB, // dual-rail EDR node injection
		HostMemBW:  60 * GB, // read+write crossing accounted as one pass
		ShmCopyBW:  14 * GB, // one core driving the copy loop
		DevLocalBW: 700 * GB,

		KernelLaunch: 8e-6,
		MemcpyLaunch: 5e-6,
		PackBW:       250 * GB,

		MPIIntraLatency: 1.5e-6,
		MPIInterLatency: 4e-6,
		RendezvousCost:  3e-6,
		EagerLimit:      64 * 1024,

		IpcGetHandle:  30e-6,
		IpcOpenHandle: 80e-6,

		CudaAwarePerMsg:    25e-6,
		CudaAwareSyncCost:  12e-6,
		CudaAwareChunk:     1 << 20, // 1 MiB pipeline chunks
		CudaAwareChunkCost: 3e-6,
	}
}

// NodeConfig describes the shape of one node.
type NodeConfig struct {
	Sockets       int
	GPUsPerSocket int
}

// SummitNode is the node shape of the evaluation platform: 2 sockets ×
// 3 GPUs.
func SummitNode() NodeConfig { return NodeConfig{Sockets: 2, GPUsPerSocket: 3} }

// SierraNode is an LLNL Sierra-like shape: 2 sockets × 2 GPUs.
func SierraNode() NodeConfig { return NodeConfig{Sockets: 2, GPUsPerSocket: 2} }

// DGXNode is a DGX-1-like shape: 2 sockets × 4 GPUs. (The real DGX-1 has a
// hybrid-cube-mesh NVLink topology; here each socket's four GPUs form a
// fully connected island, which preserves the fast-island / slow-bridge
// structure the placement phase exploits.)
func DGXNode() NodeConfig { return NodeConfig{Sockets: 2, GPUsPerSocket: 4} }

// FatNode is a hypothetical 16-GPU node (2 × 8) used to exercise the
// heuristic placement path, where exhaustive QAP search is infeasible.
func FatNode() NodeConfig { return NodeConfig{Sockets: 2, GPUsPerSocket: 8} }

// GPUs returns the number of GPUs in a node of this shape.
func (c NodeConfig) GPUs() int { return c.Sockets * c.GPUsPerSocket }

// Node is one simulated machine in the cluster.
type Node struct {
	ID     int
	Config NodeConfig

	// Per-GPU links to the socket complex (NVLink to CPU), indexed by local
	// GPU id.
	gpuUp   []*flownet.Link // GPU -> socket
	gpuDown []*flownet.Link // socket -> GPU
	// Same-GPU device-local copy engine.
	devLocal []*flownet.Link
	// Direct NVLink between GPUs in the same triad, directed.
	nvlink map[[2]int]*flownet.Link
	// Directed socket-to-socket SMP links.
	xbus map[[2]int]*flownet.Link
	// Per-socket host memory engine.
	hostMem []*flownet.Link
	// NIC, per direction.
	nicOut, nicIn *flownet.Link

	// Memoized intra-node copy paths, built once in buildNode: the link
	// topology is immutable after construction (faults only change link
	// state, not identity), and the exchange layers request these paths on
	// every transfer. Each cached slice is capacity-clamped so a caller
	// appending to it copies instead of clobbering the cache.
	d2d [][]*flownet.Link // [src*gpus+dst]
	d2h [][]*flownet.Link // [gpu*sockets+socket]
	h2d [][]*flownet.Link // [socket*gpus+gpu]
}

// Socket returns the socket a local GPU belongs to.
func (n *Node) Socket(gpu int) int { return gpu / n.Config.GPUsPerSocket }

// SameTriad reports whether two local GPUs share a socket (and hence have a
// direct NVLink between them).
func (n *Node) SameTriad(a, b int) bool { return n.Socket(a) == n.Socket(b) }

// Machine is the whole simulated cluster.
type Machine struct {
	Eng    *sim.Engine
	Net    *flownet.Network
	Params Params
	Nodes  []*Node
	// fabric is a pair of links modelling the (full-bisection) switch; it
	// exists so cross-fabric flows have a nonempty path even between NICs.
	fabricLatency sim.Time

	// Memoized inter-node paths, filled on first use (only endpoint pairs
	// that actually communicate pay an entry). Same read-only contract as
	// the Node caches.
	h2hCache map[[4]int][]*flownet.Link
	remCache map[[4]int][]*flownet.Link
}

// New builds a cluster of identical nodes.
func New(eng *sim.Engine, nodes int, cfg NodeConfig, p Params) *Machine {
	if nodes < 1 {
		panic(fmt.Sprintf("machine: %d nodes", nodes))
	}
	if cfg.Sockets < 1 || cfg.GPUsPerSocket < 1 {
		panic(fmt.Sprintf("machine: bad node config %+v", cfg))
	}
	m := &Machine{
		Eng:           eng,
		Net:           flownet.New(eng),
		Params:        p,
		fabricLatency: p.MPIInterLatency,
		h2hCache:      make(map[[4]int][]*flownet.Link),
		remCache:      make(map[[4]int][]*flownet.Link),
	}
	for id := 0; id < nodes; id++ {
		m.Nodes = append(m.Nodes, m.buildNode(id, cfg))
	}
	return m
}

// NewSummit builds a cluster of Summit-shaped nodes with default parameters.
func NewSummit(eng *sim.Engine, nodes int) *Machine {
	return New(eng, nodes, SummitNode(), DefaultParams())
}

func (m *Machine) buildNode(id int, cfg NodeConfig) *Node {
	p := m.Params
	n := &Node{
		ID:     id,
		Config: cfg,
		nvlink: make(map[[2]int]*flownet.Link),
		xbus:   make(map[[2]int]*flownet.Link),
	}
	gpus := cfg.GPUs()
	for g := 0; g < gpus; g++ {
		n.gpuUp = append(n.gpuUp, flownet.NewLink(fmt.Sprintf("n%d.g%d.up", id, g), p.NVLinkBW))
		n.gpuDown = append(n.gpuDown, flownet.NewLink(fmt.Sprintf("n%d.g%d.down", id, g), p.NVLinkBW))
		n.devLocal = append(n.devLocal, flownet.NewLink(fmt.Sprintf("n%d.g%d.local", id, g), p.DevLocalBW))
	}
	for a := 0; a < gpus; a++ {
		for b := 0; b < gpus; b++ {
			if a != b && n.SameTriad(a, b) {
				n.nvlink[[2]int{a, b}] = flownet.NewLink(fmt.Sprintf("n%d.nvlink.%d-%d", id, a, b), p.NVLinkBW)
			}
		}
	}
	for s1 := 0; s1 < cfg.Sockets; s1++ {
		n.hostMem = append(n.hostMem, flownet.NewLink(fmt.Sprintf("n%d.s%d.mem", id, s1), p.HostMemBW))
		for s2 := 0; s2 < cfg.Sockets; s2++ {
			if s1 != s2 {
				n.xbus[[2]int{s1, s2}] = flownet.NewLink(fmt.Sprintf("n%d.xbus.%d-%d", id, s1, s2), p.XBusBW)
			}
		}
	}
	n.nicOut = flownet.NewLink(fmt.Sprintf("n%d.nic.out", id), p.NICBW)
	n.nicIn = flownet.NewLink(fmt.Sprintf("n%d.nic.in", id), p.NICBW)
	n.buildPathCache()
	return n
}

// buildPathCache memoizes every intra-node copy path. clamp caps each slice
// at its length so callers that append (MPI's shm transport) copy rather than
// write into the cache.
func (n *Node) buildPathCache() {
	clamp := func(p []*flownet.Link) []*flownet.Link { return p[:len(p):len(p)] }
	gpus, sockets := n.Config.GPUs(), n.Config.Sockets
	n.d2d = make([][]*flownet.Link, gpus*gpus)
	for s := 0; s < gpus; s++ {
		for d := 0; d < gpus; d++ {
			n.d2d[s*gpus+d] = clamp(n.buildDevToDev(s, d))
		}
	}
	n.d2h = make([][]*flownet.Link, gpus*sockets)
	n.h2d = make([][]*flownet.Link, sockets*gpus)
	for g := 0; g < gpus; g++ {
		for s := 0; s < sockets; s++ {
			n.d2h[g*sockets+s] = clamp(n.buildDevToHost(g, s))
			n.h2d[s*gpus+g] = clamp(n.buildHostToDev(s, g))
		}
	}
}

// FabricLatency is the per-message latency across the inter-node fabric.
func (m *Machine) FabricLatency() sim.Time { return m.fabricLatency }

// NVLinkPair returns the two directed NVLink links between same-triad GPUs a
// and b, or (nil, nil) when the pair has no direct NVLink. Fault injection
// targets both directions of the physical link.
func (n *Node) NVLinkPair(a, b int) (ab, ba *flownet.Link) {
	return n.nvlink[[2]int{a, b}], n.nvlink[[2]int{b, a}]
}

// XBusPair returns the two directed X-Bus links between sockets s1 and s2,
// or (nil, nil) for an invalid pair.
func (n *Node) XBusPair(s1, s2 int) (ab, ba *flownet.Link) {
	return n.xbus[[2]int{s1, s2}], n.xbus[[2]int{s2, s1}]
}

// NIC returns the node's injection links, per direction.
func (n *Node) NIC() (out, in *flownet.Link) { return n.nicOut, n.nicIn }

// GPUSocketLinks returns local GPU g's links to its socket complex (the
// GPU-CPU NVLink), per direction.
func (n *Node) GPUSocketLinks(g int) (up, down *flownet.Link) {
	return n.gpuUp[g], n.gpuDown[g]
}

// HostMem exposes the per-socket host memory link (used by MPI's
// shared-memory transport).
func (n *Node) HostMem(socket int) *flownet.Link { return n.hostMem[socket] }

// IntraLinks returns every directed link inside the node — NVLinks, X-Bus,
// GPU-socket links, and host memory engines — in a deterministic order, for
// health scans by the degradation monitor.
func (n *Node) IntraLinks() []*flownet.Link {
	var ls []*flownet.Link
	g := n.Config.GPUs()
	for a := 0; a < g; a++ {
		for b := 0; b < g; b++ {
			if l, ok := n.nvlink[[2]int{a, b}]; ok {
				ls = append(ls, l)
			}
		}
	}
	for s1 := 0; s1 < n.Config.Sockets; s1++ {
		for s2 := 0; s2 < n.Config.Sockets; s2++ {
			if l, ok := n.xbus[[2]int{s1, s2}]; ok {
				ls = append(ls, l)
			}
		}
	}
	for a := 0; a < g; a++ {
		ls = append(ls, n.gpuUp[a], n.gpuDown[a])
	}
	for s := 0; s < n.Config.Sockets; s++ {
		ls = append(ls, n.hostMem[s])
	}
	return ls
}

// DevToDevPath returns the flow path for a peer (GPUDirect P2P) copy between
// two GPUs on this node. Same-triad pairs take the dedicated NVLink; pairs on
// different sockets route GPU→socket→X-Bus→socket→GPU. A same-GPU copy uses
// the device-local engine.
func (n *Node) DevToDevPath(src, dst int) []*flownet.Link {
	return n.d2d[src*n.Config.GPUs()+dst]
}

func (n *Node) buildDevToDev(src, dst int) []*flownet.Link {
	if src == dst {
		return []*flownet.Link{n.devLocal[src]}
	}
	if l, ok := n.nvlink[[2]int{src, dst}]; ok {
		return []*flownet.Link{l}
	}
	s1, s2 := n.Socket(src), n.Socket(dst)
	return []*flownet.Link{n.gpuUp[src], n.xbus[[2]int{s1, s2}], n.gpuDown[dst]}
}

// DevToHostPath returns the flow path for a device-to-pinned-host copy. The
// host buffer lives on the socket owning the GPU's controlling process.
func (n *Node) DevToHostPath(gpu, socket int) []*flownet.Link {
	return n.d2h[gpu*n.Config.Sockets+socket]
}

func (n *Node) buildDevToHost(gpu, socket int) []*flownet.Link {
	path := []*flownet.Link{n.gpuUp[gpu]}
	if n.Socket(gpu) != socket {
		path = append(path, n.xbus[[2]int{n.Socket(gpu), socket}])
	}
	return append(path, n.hostMem[socket])
}

// HostToDevPath is the reverse of DevToHostPath.
func (n *Node) HostToDevPath(socket, gpu int) []*flownet.Link {
	return n.h2d[socket*n.Config.GPUs()+gpu]
}

func (n *Node) buildHostToDev(socket, gpu int) []*flownet.Link {
	path := []*flownet.Link{n.hostMem[socket]}
	if n.Socket(gpu) != socket {
		path = append(path, n.xbus[[2]int{socket, n.Socket(gpu)}])
	}
	return append(path, n.gpuDown[gpu])
}

// HostToHostPath returns the path for a host-side copy between two sockets of
// possibly different nodes (MPI's transport).
func (m *Machine) HostToHostPath(srcNode, srcSocket, dstNode, dstSocket int) []*flownet.Link {
	key := [4]int{srcNode, srcSocket, dstNode, dstSocket}
	if p, ok := m.h2hCache[key]; ok {
		return p
	}
	sn, dn := m.Nodes[srcNode], m.Nodes[dstNode]
	var p []*flownet.Link
	switch {
	case srcNode == dstNode && srcSocket == dstSocket:
		p = []*flownet.Link{sn.hostMem[srcSocket]}
	case srcNode == dstNode:
		p = []*flownet.Link{
			sn.hostMem[srcSocket],
			sn.xbus[[2]int{srcSocket, dstSocket}],
			sn.hostMem[dstSocket],
		}
	default:
		p = []*flownet.Link{
			sn.hostMem[srcSocket], sn.nicOut,
			dn.nicIn, dn.hostMem[dstSocket],
		}
	}
	m.h2hCache[key] = p
	return p
}

// DevToDevRemotePath returns the GPUDirect-RDMA path between GPUs on
// different nodes (used by CUDA-aware MPI for inter-node messages).
func (m *Machine) DevToDevRemotePath(srcNode, srcGPU, dstNode, dstGPU int) []*flownet.Link {
	sn, dn := m.Nodes[srcNode], m.Nodes[dstNode]
	if srcNode == dstNode {
		return sn.DevToDevPath(srcGPU, dstGPU)
	}
	key := [4]int{srcNode, srcGPU, dstNode, dstGPU}
	if p, ok := m.remCache[key]; ok {
		return p
	}
	p := []*flownet.Link{
		sn.gpuUp[srcGPU], sn.nicOut,
		dn.nicIn, dn.gpuDown[dstGPU],
	}
	m.remCache[key] = p
	return p
}

// TheoreticalBW reports the vendor-datasheet bandwidth class between two
// local GPUs, the quantity a topology-discovery library (NVML) exposes and
// the placement phase consumes. Pairs in a triad see the dedicated NVLink;
// cross-socket pairs see an SMP-class figure: the X-Bus is shared by all
// nine cross-socket pairs (and host traffic), so the per-pair class is far
// below the 64 GB/s aggregate.
func (n *Node) TheoreticalBW(a, b int) float64 {
	if a == b {
		return n.devLocal[a].Capacity
	}
	if n.SameTriad(a, b) {
		return n.nvlink[[2]int{a, b}].Capacity
	}
	cross := n.Config.GPUsPerSocket * n.Config.GPUsPerSocket
	return n.xbus[[2]int{n.Socket(a), n.Socket(b)}].Capacity / float64(cross)
}

// LinkKind classifies the connection between two local GPUs, mirroring
// NVML's topology levels.
type LinkKind int

const (
	// LinkSame means a == b.
	LinkSame LinkKind = iota
	// LinkNVLink is a direct NVLink connection (same triad).
	LinkNVLink
	// LinkSys crosses the SMP interconnect between sockets.
	LinkSys
)

func (k LinkKind) String() string {
	switch k {
	case LinkSame:
		return "SAME"
	case LinkNVLink:
		return "NVLINK"
	case LinkSys:
		return "SYS"
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// Kind returns the link classification between two local GPUs.
func (n *Node) Kind(a, b int) LinkKind {
	switch {
	case a == b:
		return LinkSame
	case n.SameTriad(a, b):
		return LinkNVLink
	default:
		return LinkSys
	}
}
