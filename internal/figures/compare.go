package figures

import (
	"fmt"
	"runtime"
	"time"

	"github.com/nodeaware/stencil/internal/exchange"
	"github.com/nodeaware/stencil/internal/part"
)

// FastPath times the simulator itself (host wall-clock, not simulated time)
// on the 64-node weak-scaling ladder — the configuration the fast-path work
// (incremental waterfill, plan caching, deferred payload execution) targets.
// baseline maps a rung's caps label to the wall seconds the same run took at
// an earlier commit; when present, the row reports the speedup against it.
func FastPath(iters int, baseline map[string]float64) ([]Row, error) {
	const nodes = 64
	edge := CubeEdge(nodes * 6)
	var rows []Row
	for _, caps := range Ladder {
		opts := baseOpts(nodes, 6, edge, caps, false)
		// Time Run only (not setup), matching how the baseline was measured.
		e, err := exchange.New(opts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		t := e.Run(iters).Min()
		wall := time.Since(start).Seconds()
		extra := fmt.Sprintf("wall %.2fs", wall)
		if b := baseline[opts.CapsString()]; b > 0 {
			extra = fmt.Sprintf("wall %.2fs (seed baseline %.2fs, %.1fx faster)", wall, b, b/wall)
		}
		rows = append(rows, Row{
			Config: opts.ConfigString(), Caps: opts.CapsString(),
			Nodes: nodes, Ranks: 6, Domain: edge, Seconds: t, Extra: extra,
		})
	}
	return rows, nil
}

// Compare benchmarks the parallel payload executor against the sequential
// engine on a real-data multi-node exchange, one row per capability rung.
// Each rung runs the identical configuration twice — Workers=0 and
// Workers=workers — and reports the simulated (virtual) exchange time plus
// both host wall-clock times and their ratio. The two runs must agree
// bit-for-bit: identical final virtual time and identical halo fingerprints;
// a mismatch fails the comparison rather than reporting a tainted speedup.
//
// workers <= 0 selects runtime.NumCPU(). The virtual times in the rows are
// what the simulation predicts for the exchange; the wall times are how long
// the simulator itself took, which is what the parallel engine accelerates.
func Compare(iters, workers int) ([]Row, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var rows []Row
	for _, caps := range Ladder {
		opts := exchange.Options{
			Nodes:        2,
			RanksPerNode: 6,
			Domain:       part.Dim3{X: 96, Y: 96, Z: 96},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         caps,
			NodeAware:    true,
			RealData:     true,
		}
		type outcome struct {
			virt float64
			wall time.Duration
			fps  []uint64
		}
		runOnce := func(w int) (outcome, error) {
			o := opts
			o.Workers = w
			start := time.Now()
			e, err := exchange.New(o)
			if err != nil {
				return outcome{}, err
			}
			st := e.Run(iters)
			out := outcome{virt: st.Min(), wall: time.Since(start)}
			for _, s := range e.Subs {
				out.fps = append(out.fps, s.Dom.Fingerprint())
			}
			return out, nil
		}
		seq, err := runOnce(0)
		if err != nil {
			return nil, err
		}
		par, err := runOnce(workers)
		if err != nil {
			return nil, err
		}
		if seq.virt != par.virt {
			return nil, fmt.Errorf("compare %s: virtual time diverged: seq %v, par %v",
				opts.CapsString(), seq.virt, par.virt)
		}
		for i := range seq.fps {
			if seq.fps[i] != par.fps[i] {
				return nil, fmt.Errorf("compare %s: halo fingerprints diverged at subdomain %d",
					opts.CapsString(), i)
			}
		}
		rows = append(rows, Row{
			Config: opts.ConfigString(), Caps: opts.CapsString(),
			Nodes: opts.Nodes, Ranks: opts.RanksPerNode, Domain: opts.Domain.X,
			Seconds: seq.virt,
			Extra: fmt.Sprintf("wall seq %.2fs, par(%d) %.2fs, %.2fx, bit-identical",
				seq.wall.Seconds(), workers, par.wall.Seconds(),
				seq.wall.Seconds()/par.wall.Seconds()),
		})
	}
	return rows, nil
}
