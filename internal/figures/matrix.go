// The feature-cost benchmark matrix: every optional layer off/on × node
// count, reporting what each feature adds on top of the bare exchange.
// cmd/stencilbench runs it (-experiment matrix, -matrix FILE) and
// cmd/benchdrift -matrix gates CI on per-feature virtual-time regressions
// against the committed results/MATRIX.json.
package figures

import (
	"fmt"
	"runtime"
	"time"

	"github.com/nodeaware/stencil/internal/exchange"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// MatrixSchema identifies the MATRIX.json document layout.
const MatrixSchema = "stencil-matrix/1"

// MatrixNodeCounts is the node-count axis of the matrix. The acceptance
// gate requires every feature measured at two or more counts.
var MatrixNodeCounts = []int{1, 2}

// MatrixCell is one (feature, node count) measurement. VirtualSeconds,
// engine counts, and the ledger are deterministic (gated by benchdrift
// -matrix); wall-clock seconds and runtime alloc deltas depend on the host
// and are informational only.
type MatrixCell struct {
	Feature         string  `json:"feature"`
	Nodes           int     `json:"nodes"`
	Config          string  `json:"config"`
	VirtualSeconds  float64 `json:"virtual_seconds"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	DeltaSeconds    float64 `json:"delta_seconds"`
	Ratio           float64 `json:"ratio"`

	WallSeconds     float64 `json:"wall_seconds"`
	RuntimeAllocs   uint64  `json:"runtime_allocs"`
	EventsScheduled uint64  `json:"events_scheduled"`
	EventsExecuted  uint64  `json:"events_executed"`
	ProcsSpawned    uint64  `json:"procs_spawned"`
	PeakEventQueue  int     `json:"peak_event_queue"`

	Ledger []telemetry.LedgerEntry `json:"ledger"`
}

// MatrixReport is the top-level MATRIX.json document.
type MatrixReport struct {
	Schema string       `json:"schema"`
	Tool   string       `json:"tool"`
	Iters  int          `json:"iters"`
	Cells  []MatrixCell `json:"cells"`
}

// matrixOpts is the shared small real-data configuration every cell starts
// from: large enough that every feature has work to do (checksums need
// bytes, checkpoints need snapshots), small enough that the full matrix is
// a CI smoke job.
func matrixOpts(nodes int) exchange.Options {
	return exchange.Options{
		Nodes:        nodes,
		RanksPerNode: 2,
		Domain:       part.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       1,
		Quantities:   1,
		ElemSize:     4,
		Caps:         exchange.CapsAll(),
		NodeAware:    true,
		RealData:     true,
		Workers:      Workers,
	}
}

// matrixFeature applies one feature's flags on top of the shared base.
var matrixFeatures = []struct {
	name  telemetry.Feature
	apply func(*exchange.Options)
}{
	{telemetry.FeatureBaseline, func(*exchange.Options) {}},
	{telemetry.FeatureReliable, func(o *exchange.Options) { o.Reliable = true }},
	{telemetry.FeatureVerify, func(o *exchange.Options) { o.VerifyExchange = true }},
	{telemetry.FeatureOverlap, func(o *exchange.Options) { o.Overlap = true }},
	{telemetry.FeatureRecovery, func(o *exchange.Options) { o.CheckpointEvery = 2 }},
	{telemetry.FeatureAdapt, func(o *exchange.Options) { o.Adaptive = true }},
	// FeatureSelf is measured separately: the baseline run with and
	// without a recorder attached (see Matrix).
}

// matrixRun executes one configuration and collects the deterministic and
// host-side measurements. telemetry may be nil (the self cell's off run).
func matrixRun(opts exchange.Options, iters int, tel *telemetry.Recorder) (*MatrixCell, error) {
	opts.Telemetry = tel
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	wall0 := time.Now()
	e, err := exchange.New(opts)
	if err != nil {
		return nil, err
	}
	v0 := float64(e.Eng.Now())
	e.RunWithCompute(iters, func(*exchange.Sub) {})
	cell := &MatrixCell{
		Nodes:          opts.Nodes,
		Config:         opts.ConfigString(),
		VirtualSeconds: float64(e.Eng.Now()) - v0,
		WallSeconds:    time.Since(wall0).Seconds(),
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	cell.RuntimeAllocs = after.Mallocs - before.Mallocs
	c := e.Eng.Counts()
	cell.EventsScheduled = c.Scheduled
	cell.EventsExecuted = c.Executed
	cell.ProcsSpawned = c.Spawned
	cell.PeakEventQueue = c.PeakQueue
	if tel != nil {
		cell.Ledger = tel.Ledger()
	}
	return cell, nil
}

// Matrix measures every feature off/on at each node count. Per node count
// the baseline runs first; every feature cell reports its virtual-time
// delta and ratio against that baseline. The telemetry-self cell runs the
// baseline twice — recorder off then on — and additionally asserts the
// recorder changed nothing: a nonzero virtual-time delta there is a bug
// (the recorder must be passive), reported as an error so CI fails loudly.
func Matrix(iters int) ([]Row, *MatrixReport, error) {
	rep := &MatrixReport{Schema: MatrixSchema, Tool: "stencilbench", Iters: iters}
	var rows []Row
	for _, nodes := range MatrixNodeCounts {
		var base *MatrixCell
		for _, f := range matrixFeatures {
			opts := matrixOpts(nodes)
			f.apply(&opts)
			tel := telemetry.New()
			tel.LinkEvents = false
			cell, err := matrixRun(opts, iters, tel)
			if err != nil {
				return nil, nil, fmt.Errorf("matrix %s %dn: %w", f.name, nodes, err)
			}
			cell.Feature = string(f.name)
			if f.name == telemetry.FeatureBaseline {
				base = cell
			}
			finishCell(cell, base)
			rep.Cells = append(rep.Cells, *cell)
			rows = append(rows, matrixRow(cell))
		}
		// telemetry-self: the baseline configuration with the recorder
		// detached. Its "overhead" relative to the recorded baseline must
		// be exactly zero virtual seconds; the interesting numbers are the
		// wall-clock and allocation deltas plus the recorder's own
		// retained-state entry in the baseline ledger.
		off, err := matrixRun(matrixOpts(nodes), iters, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("matrix telemetry-off %dn: %w", nodes, err)
		}
		if off.VirtualSeconds != base.VirtualSeconds {
			return nil, nil, fmt.Errorf(
				"matrix %dn: telemetry recorder changed virtual time: %g s with vs %g s without (the recorder must be passive)",
				nodes, base.VirtualSeconds, off.VirtualSeconds)
		}
		self := &MatrixCell{
			Feature:         string(telemetry.FeatureSelf),
			Nodes:           nodes,
			Config:          base.Config,
			VirtualSeconds:  base.VirtualSeconds,
			WallSeconds:     base.WallSeconds - off.WallSeconds,
			RuntimeAllocs:   base.RuntimeAllocs - min64(base.RuntimeAllocs, off.RuntimeAllocs),
			EventsScheduled: base.EventsScheduled,
			EventsExecuted:  base.EventsExecuted,
			ProcsSpawned:    base.ProcsSpawned,
			PeakEventQueue:  base.PeakEventQueue,
			Ledger:          base.Ledger,
		}
		finishCell(self, base)
		rep.Cells = append(rep.Cells, *self)
		rows = append(rows, matrixRow(self))
	}
	return rows, rep, nil
}

func finishCell(c, base *MatrixCell) {
	c.BaselineSeconds = base.VirtualSeconds
	c.DeltaSeconds = c.VirtualSeconds - base.VirtualSeconds
	if base.VirtualSeconds > 0 {
		c.Ratio = c.VirtualSeconds / base.VirtualSeconds
	}
}

func matrixRow(c *MatrixCell) Row {
	return Row{
		Config:  fmt.Sprintf("%s/%s", c.Config, c.Feature),
		Caps:    c.Feature,
		Nodes:   c.Nodes,
		Seconds: c.VirtualSeconds,
		Extra: fmt.Sprintf("%+.3g ms vs baseline (%.2fx), %d events, %d allocs",
			c.DeltaSeconds*1e3, c.Ratio, c.EventsExecuted, c.RuntimeAllocs),
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
