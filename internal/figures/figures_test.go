package figures

import (
	"strings"
	"testing"
)

func TestCubeEdge(t *testing.T) {
	// round(750 * 6^(1/3)) = 1363 — the paper's largest single-node domain
	// (Fig 13 uses exactly 1363^3).
	if got := CubeEdge(6); got != 1363 {
		t.Errorf("CubeEdge(6) = %d, want 1363", got)
	}
	if got := CubeEdge(1); got != 750 {
		t.Errorf("CubeEdge(1) = %d, want 750", got)
	}
	// Monotone in GPU count.
	prev := 0
	for _, n := range []int{1, 6, 12, 48, 384, 1536} {
		e := CubeEdge(n)
		if e <= prev {
			t.Errorf("CubeEdge not monotone at %d GPUs", n)
		}
		prev = e
	}
}

func TestFig3Rows(t *testing.T) {
	rows := Fig3()
	if len(rows) != 4 {
		t.Fatalf("Fig3 rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if !strings.Contains(r.Extra, "cells") {
			t.Errorf("row missing volume: %+v", r)
		}
	}
}

func TestFig11Rows(t *testing.T) {
	rows, err := Fig11(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (aware, trivial)", len(rows))
	}
	if rows[0].Seconds >= rows[1].Seconds {
		t.Errorf("node-aware %.4f not faster than trivial %.4f", rows[0].Seconds, rows[1].Seconds)
	}
	if !strings.Contains(rows[0].Extra, "speedup") {
		t.Error("missing speedup annotation")
	}
}

func TestWeakScalingTinyRuns(t *testing.T) {
	rows, err := Fig12b(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 node counts x 4 ladder rungs.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("row %s has no time", r.Config)
		}
	}
	// Within each node count the ladder must be monotone non-increasing.
	for i := 0; i+3 < len(rows); i += 4 {
		if !(rows[i+1].Seconds <= rows[i].Seconds*1.001) {
			t.Errorf("%s: +colo slower than +remote", rows[i].Config)
		}
		if !(rows[i+3].Seconds <= rows[i+1].Seconds*1.001) {
			t.Errorf("%s: +kernel slower than +colo", rows[i].Config)
		}
	}
}

func TestFig13TinyRuns(t *testing.T) {
	rows, err := Fig13(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// Strong scaling holds once communication is off-node: 4 nodes beats 2
	// for the same total domain. (The 1→2 node step pays the NVLink→NIC
	// cliff and can rise; see EXPERIMENTS.md.)
	twoNodeKernel := rows[3].Seconds
	fourNodeKernel := rows[5].Seconds
	if fourNodeKernel >= twoNodeKernel {
		t.Errorf("strong scaling broken: 2n=%.4f 4n=%.4f", twoNodeKernel, fourNodeKernel)
	}
}

func TestRowString(t *testing.T) {
	r := Row{Config: "1n/6r/6g/1363", Caps: "+kernel", Seconds: 0.00256}
	s := r.String()
	if !strings.Contains(s, "2.560 ms") || !strings.Contains(s, "+kernel") {
		t.Errorf("rendering = %q", s)
	}
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) < 8 {
		t.Fatalf("TableI rows = %d", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += r.Config + " " + r.Extra + "\n"
	}
	for _, want := range []string{"NVLink", "X-Bus", "NIC", "GB/s", "Summit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("TableI missing %q:\n%s", want, joined)
		}
	}
}

func TestFig12cShapeMini(t *testing.T) {
	// The CUDA-aware pathology: at 2 nodes the CA exchange is already slower
	// than the non-CA STAGED path at the same capability rung, and it
	// worsens relative to single-node.
	ca, err := Fig12c(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	nonCA, err := Fig12b(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: [1n remote, 1n colo, 1n peer, 1n kernel, 2n remote, ...].
	caRemote2n := ca[4].Seconds
	caRemote1n := ca[0].Seconds
	if caRemote2n <= caRemote1n {
		t.Errorf("CA should degrade with nodes: 1n=%.4f 2n=%.4f", caRemote1n, caRemote2n)
	}
	// Specialization's on-node benefit shrinks under CA relative to non-CA.
	caWin := ca[4].Seconds / ca[7].Seconds
	nonCAWin := nonCA[4].Seconds / nonCA[7].Seconds
	t.Logf("2-node specialization win: non-CA %.2fx, CA %.2fx", nonCAWin, caWin)
}
