// Package figures regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated platform. Each Fig* function returns the
// rows of the corresponding plot; cmd/stencilbench prints them and the
// repository-root benchmarks wrap them.
package figures

import (
	"fmt"
	"math"

	"github.com/nodeaware/stencil/internal/exchange"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// Row is one measured configuration. The json tags define the schema of
// cmd/stencilbench's -json output (results/BENCH.json).
type Row struct {
	Config  string  `json:"config"` // paper-style label, e.g. "2n/6r/6g/1717"
	Caps    string  `json:"caps"`   // "+remote".."+kernel"
	Nodes   int     `json:"nodes"`
	Ranks   int     `json:"ranks"`  // per node
	Domain  int     `json:"domain"` // cube edge, or 0 for non-cube
	Seconds float64 `json:"seconds"`
	Extra   string  `json:"extra,omitempty"`
}

func (r Row) String() string {
	if r.Seconds == 0 {
		return fmt.Sprintf("%-20s %-8s %s", r.Config, r.Caps, r.Extra)
	}
	return fmt.Sprintf("%-20s %-8s %10.3f ms %s", r.Config, r.Caps, r.Seconds*1e3, r.Extra)
}

// Ladder is the paper's capability progression.
var Ladder = []exchange.Capabilities{
	exchange.CapsRemote(), exchange.CapsColo(), exchange.CapsPeer(), exchange.CapsAll(),
}

// Workers is the deferred-payload worker count applied to every experiment
// configuration (exchange.Options.Workers); zero keeps the simulation engine
// sequential. Set by cmd/stencilbench's -parallel flag. Results are
// bit-identical either way — this only changes how fast the simulator runs.
var Workers int

// CubeEdge computes the paper's weak-scaling domain edge:
// round(750 * nGPUs^(1/3)), keeping ~750^3 points per GPU in an overall
// cube.
func CubeEdge(nGPUs int) int {
	return int(math.Round(750 * math.Cbrt(float64(nGPUs))))
}

// run builds and times one configuration.
func run(opts exchange.Options, iters int) (float64, error) {
	e, err := exchange.New(opts)
	if err != nil {
		return 0, err
	}
	return e.Run(iters).Min(), nil
}

func baseOpts(nodes, ranks, edge int, caps exchange.Capabilities, ca bool) exchange.Options {
	return exchange.Options{
		Nodes:        nodes,
		RanksPerNode: ranks,
		Domain:       part.Dim3{X: edge, Y: edge, Z: edge},
		Radius:       2,
		Quantities:   4,
		ElemSize:     4,
		Caps:         caps,
		CUDAAware:    ca,
		NodeAware:    true,
		Workers:      Workers,
	}
}

// Fig11 reproduces §IV-B / Fig 11: the 1440x1452x700 domain on one six-GPU
// node under node-aware versus trivial placement. Rows: [aware, trivial].
func Fig11(iters int) ([]Row, error) {
	var rows []Row
	for _, aware := range []bool{true, false} {
		opts := exchange.Options{
			Nodes:        1,
			RanksPerNode: 6,
			Domain:       part.Dim3{X: 1440, Y: 1452, Z: 700},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         exchange.CapsAll(),
			NodeAware:    aware,
			Workers:      Workers,
		}
		t, err := run(opts, iters)
		if err != nil {
			return nil, err
		}
		label := "node-aware"
		if !aware {
			label = "trivial"
		}
		rows = append(rows, Row{
			Config: "1n/6r/6g/1440x1452x700", Caps: label,
			Nodes: 1, Ranks: 6, Seconds: t,
		})
	}
	rows[0].Extra = fmt.Sprintf("placement speedup %.2fx (paper: ~1.20x)", rows[1].Seconds/rows[0].Seconds)
	return rows, nil
}

// Fig12a reproduces the single-node specialization sweep: 1, 2, and 6 ranks
// per node across the capability ladder, with and without CUDA-aware MPI.
func Fig12a(iters int) ([]Row, error) {
	edge := CubeEdge(6)
	var rows []Row
	for _, ca := range []bool{false, true} {
		for _, ranks := range []int{1, 2, 6} {
			for _, caps := range Ladder {
				opts := baseOpts(1, ranks, edge, caps, ca)
				t, err := run(opts, iters)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Row{
					Config: opts.ConfigString(), Caps: opts.CapsString(),
					Nodes: 1, Ranks: ranks, Domain: edge, Seconds: t,
				})
			}
		}
	}
	return rows, nil
}

// Fig12b reproduces weak scaling without CUDA-aware MPI out to maxNodes
// (paper: 256 nodes, 1536 GPUs), 6 ranks and 6 GPUs per node, across the
// ladder.
func Fig12b(maxNodes, iters int) ([]Row, error) {
	return weakScaling(maxNodes, iters, false)
}

// Fig12c is Fig12b with CUDA-aware MPI enabled.
func Fig12c(maxNodes, iters int) ([]Row, error) {
	return weakScaling(maxNodes, iters, true)
}

func weakScaling(maxNodes, iters int, ca bool) ([]Row, error) {
	var rows []Row
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		edge := CubeEdge(nodes * 6)
		for _, caps := range Ladder {
			opts := baseOpts(nodes, 6, edge, caps, ca)
			t, err := run(opts, iters)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Config: opts.ConfigString(), Caps: opts.CapsString(),
				Nodes: nodes, Ranks: 6, Domain: edge, Seconds: t,
			})
		}
	}
	return rows, nil
}

// Fig13 reproduces strong scaling: a fixed 1363^3 domain (the largest that
// fits one node) distributed over 1..maxNodes nodes, comparing the ladder's
// bottom and top rungs.
func Fig13(maxNodes, iters int) ([]Row, error) {
	edge := CubeEdge(6) // 1363
	var rows []Row
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		for _, caps := range []exchange.Capabilities{exchange.CapsRemote(), exchange.CapsAll()} {
			opts := baseOpts(nodes, 6, edge, caps, false)
			t, err := run(opts, iters)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Config: opts.ConfigString(), Caps: opts.CapsString(),
				Nodes: nodes, Ranks: 6, Domain: edge, Seconds: t,
			})
		}
	}
	return rows, nil
}

// TableI summarizes the simulated platform in the spirit of the paper's
// hardware table: the node shape and every modeled link/overhead constant.
func TableI() []Row {
	p := machine.DefaultParams()
	cfg := machine.SummitNode()
	mk := func(k, v string) Row { return Row{Config: k, Extra: v} }
	return []Row{
		mk("node", fmt.Sprintf("%d sockets x %d GPUs (Summit-like)", cfg.Sockets, cfg.GPUsPerSocket)),
		mk("NVLink", fmt.Sprintf("%.0f GB/s per direction (GPU-GPU in triad, GPU-CPU)", p.NVLinkBW/machine.GB)),
		mk("X-Bus", fmt.Sprintf("%.0f GB/s per direction (socket-socket SMP)", p.XBusBW/machine.GB)),
		mk("NIC", fmt.Sprintf("%.0f GB/s per direction (dual-rail EDR injection)", p.NICBW/machine.GB)),
		mk("host memory", fmt.Sprintf("%.0f GB/s per socket", p.HostMemBW/machine.GB)),
		mk("shm copy", fmt.Sprintf("%.0f GB/s per rank (one core)", p.ShmCopyBW/machine.GB)),
		mk("pack kernels", fmt.Sprintf("%.0f GB/s effective strided bandwidth", p.PackBW/machine.GB)),
		mk("kernel launch", fmt.Sprintf("%.0f us", p.KernelLaunch*1e6)),
		mk("MPI latency", fmt.Sprintf("%.1f us intra-node, %.1f us inter-node", p.MPIIntraLatency*1e6, p.MPIInterLatency*1e6)),
		mk("cudaIpc", fmt.Sprintf("get %.0f us, open %.0f us (setup only)", p.IpcGetHandle*1e6, p.IpcOpenHandle*1e6)),
		mk("CUDA-aware MPI", fmt.Sprintf("%.0f us/message + %.0f us device sync (every exchange)", p.CudaAwarePerMsg*1e6, p.CudaAwareSyncCost*1e6)),
	}
}

// MetricsLadder runs the capability ladder on a small single-node smoke
// configuration with a fresh telemetry recorder per rung, returning the
// timing rows plus a combined metrics report. The report's values are pure
// functions of the simulation (virtual times, op counts, link integrals), so
// the same binary produces byte-identical output on every run — that is what
// results/METRICS.json pins and the CI metrics-snapshot job diffs against.
func MetricsLadder(iters int) ([]Row, *telemetry.Report, error) {
	rep := &telemetry.Report{Schema: telemetry.SchemaVersion, Tool: "stencilbench", Iters: iters}
	var rows []Row
	for _, caps := range Ladder {
		tel := telemetry.New()
		opts := baseOpts(1, 2, 256, caps, false)
		opts.Telemetry = tel
		e, err := exchange.New(opts)
		if err != nil {
			return nil, nil, err
		}
		t := e.Run(iters).Min()
		rows = append(rows, Row{
			Config: opts.ConfigString(), Caps: opts.CapsString(),
			Nodes: 1, Ranks: 2, Domain: 256, Seconds: t,
		})
		rep.Runs = append(rep.Runs, telemetry.ReportRun{
			Config:   opts.ConfigString(),
			Caps:     opts.CapsString(),
			Snapshot: tel.Snapshot(),
		})
	}
	return rows, rep, nil
}

// Overlap measures the compute/communication overlap pipeline on the
// 64-node weak-scaling ladder with reliable delivery on: each capability
// rung runs the same configuration twice with one compute kernel per
// subdomain per iteration — barrier-gated (the global safe-point barrier
// between exchange and compute) and pipelined (Options.Overlap: interior
// compute launched while halos are in flight, border cells gated on
// per-quadrant verified arrival).
//
// Unlike the fig12 experiments, Seconds is the TOTAL virtual time of the
// run, not the per-iteration exchange minimum: overlap does not make the
// exchange itself faster, it hides it under the interior update, so the
// end-to-end clock is the quantity the pipeline improves. Rows come in
// pairs, "<config>/barrier" then "<config>/overlap", the overlap row's
// Extra reporting the speedup against its barrier twin.
func Overlap(iters int) ([]Row, error) {
	const nodes = 64
	edge := CubeEdge(nodes * 6)
	var rows []Row
	for _, caps := range Ladder {
		var total [2]float64
		for i, ov := range []bool{false, true} {
			opts := baseOpts(nodes, 6, edge, caps, false)
			opts.Reliable = true
			opts.Overlap = ov
			e, err := exchange.New(opts)
			if err != nil {
				return nil, err
			}
			start := float64(e.Eng.Now())
			e.RunWithCompute(iters, func(*exchange.Sub) {})
			total[i] = float64(e.Eng.Now()) - start
			mode, extra := "/barrier", fmt.Sprintf("total virtual time, %d iters", iters)
			if ov {
				mode = "/overlap"
				extra = fmt.Sprintf("total virtual time, %d iters, %.2fx vs barrier", iters, total[0]/total[1])
			}
			rows = append(rows, Row{
				Config: opts.ConfigString() + mode, Caps: opts.CapsString(),
				Nodes: nodes, Ranks: 6, Domain: edge, Seconds: total[i], Extra: extra,
			})
		}
	}
	return rows, nil
}

// Fig3 reproduces the partitioning comparison: total communication volume of
// cubical versus sliced partitions of the same domain.
func Fig3() []Row {
	domain := part.Dim3{X: 36, Y: 36, Z: 1}
	grids := []part.Dim3{{X: 2, Y: 2, Z: 1}, {X: 4, Y: 1, Z: 1}, {X: 3, Y: 3, Z: 1}, {X: 9, Y: 1, Z: 1}}
	var rows []Row
	for _, g := range grids {
		v := part.CommVolume(domain, g, 1)
		rows = append(rows, Row{
			Config: fmt.Sprintf("grid %v", g),
			Extra:  fmt.Sprintf("total comm volume %d cells", v),
		})
	}
	return rows
}
