package part

import "testing"

// FuzzTiling checks, for arbitrary domain extents and partition counts, that
// the two-level hierarchical decomposition tiles the domain exactly: every
// cell is covered by exactly one subdomain (no gaps, no overlaps), the
// subdomain volumes sum to the domain volume, and index round-trips hold.
//
// The seeded corpus runs under plain `go test`; `go test -fuzz=FuzzTiling
// ./internal/part` explores beyond it.
func FuzzTiling(f *testing.F) {
	f.Add(8, 8, 8, 2, 6)
	f.Add(12, 10, 8, 4, 6)
	f.Add(64, 64, 64, 8, 6)
	f.Add(7, 13, 29, 3, 4)
	f.Add(1, 1, 1, 1, 1)
	f.Add(31, 2, 2, 2, 2)
	f.Add(100, 1, 1, 5, 2)
	f.Add(9, 9, 9, 27, 1)
	f.Fuzz(func(t *testing.T, dx, dy, dz, nodes, gpus int) {
		// Clamp to tractable shapes: the exhaustive cell-cover check below is
		// O(domain volume).
		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		dx, dy, dz = clamp(dx, 1, 48), clamp(dy, 1, 48), clamp(dz, 1, 48)
		nodes = clamp(nodes, 1, 32)
		gpus = clamp(gpus, 1, 8)

		domain := Dim3{X: dx, Y: dy, Z: dz}
		h, err := NewHier(domain, nodes, gpus)
		if err != nil {
			// Domain too small for the split — a legitimate rejection, not a
			// tiling bug.
			return
		}

		cover := make([]int, domain.Vol())
		cellIdx := func(x, y, z int) int { return (z*dy+y)*dx + x }
		var volSum int
		for nr := 0; nr < nodes; nr++ {
			node := h.NodeIndex(nr)
			if h.NodeRank(node) != nr {
				t.Fatalf("NodeRank/NodeIndex round-trip broke at %d -> %v", nr, node)
			}
			for gr := 0; gr < gpus; gr++ {
				gpu := h.GPUIndex(gr)
				if h.GPURank(gpu) != gr {
					t.Fatalf("GPURank/GPUIndex round-trip broke at %d -> %v", gr, gpu)
				}
				origin, size := h.Subdomain(node, gpu)
				if size.X < 1 || size.Y < 1 || size.Z < 1 {
					t.Fatalf("empty subdomain node %v gpu %v: size %v", node, gpu, size)
				}
				volSum += size.Vol()
				for z := origin.Z; z < origin.Z+size.Z; z++ {
					for y := origin.Y; y < origin.Y+size.Y; y++ {
						for x := origin.X; x < origin.X+size.X; x++ {
							if x < 0 || x >= dx || y < 0 || y >= dy || z < 0 || z >= dz {
								t.Fatalf("subdomain node %v gpu %v exceeds domain: cell (%d,%d,%d)", node, gpu, x, y, z)
							}
							cover[cellIdx(x, y, z)]++
						}
					}
				}

				// Global index round-trip.
				g := h.GlobalIndex(node, gpu)
				n2, g2 := h.Split(g)
				if n2 != node || g2 != gpu {
					t.Fatalf("GlobalIndex/Split round-trip broke: (%v,%v) -> %v -> (%v,%v)", node, gpu, g, n2, g2)
				}

				// Periodic neighbors must stay on the grid and invert.
				for _, dir := range Directions26() {
					nb := h.Neighbor(g, dir)
					gd := h.GlobalDims()
					if nb.X < 0 || nb.X >= gd.X || nb.Y < 0 || nb.Y >= gd.Y || nb.Z < 0 || nb.Z >= gd.Z {
						t.Fatalf("Neighbor(%v, %v) = %v outside grid %v", g, dir, nb, gd)
					}
					back := h.Neighbor(nb, Dim3{X: -dir.X, Y: -dir.Y, Z: -dir.Z})
					if back != g {
						t.Fatalf("Neighbor not invertible: %v + %v = %v, back = %v", g, dir, nb, back)
					}
				}
			}
		}
		if volSum != domain.Vol() {
			t.Fatalf("subdomain volumes sum to %d, domain is %d", volSum, domain.Vol())
		}
		for z := 0; z < dz; z++ {
			for y := 0; y < dy; y++ {
				for x := 0; x < dx; x++ {
					if c := cover[cellIdx(x, y, z)]; c != 1 {
						t.Fatalf("cell (%d,%d,%d) covered %d times", x, y, z, c)
					}
				}
			}
		}
	})
}
