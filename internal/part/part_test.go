package part

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, nil},
		{2, []int{2}},
		{6, []int{3, 2}},
		{12, []int{3, 2, 2}},
		{256, []int{2, 2, 2, 2, 2, 2, 2, 2}},
		{97, []int{97}},
		{60, []int{5, 3, 2, 2}},
	}
	for _, c := range cases {
		got := PrimeFactors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func TestPrimeFactorsProperty(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n%5000) + 1
		fs := PrimeFactors(v)
		prod := 1
		for i, f := range fs {
			prod *= f
			if i > 0 && fs[i-1] < f {
				return false // must be sorted descending
			}
		}
		return prod == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFig4Decomposition reproduces the paper's Fig 4 walk-through: a
// 4×24×2 domain over 12 nodes splits y by 3, y by 2, x by 2, giving a node
// grid of [2 6 1]; each node subdomain (2×4×2) over 4 GPUs splits y by 2
// then x by 2, giving a GPU grid of [2 2 1].
func TestFig4Decomposition(t *testing.T) {
	h, err := NewHier(Dim3{4, 24, 2}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.NodeDims != (Dim3{2, 6, 1}) {
		t.Errorf("node grid = %v, want [2 6 1]", h.NodeDims)
	}
	if h.GPUDims != (Dim3{2, 2, 1}) {
		t.Errorf("GPU grid = %v, want [2 2 1]", h.GPUDims)
	}
	if h.GlobalDims() != (Dim3{4, 12, 1}) {
		t.Errorf("global grid = %v, want [4 12 1]", h.GlobalDims())
	}
	// Every subdomain is 1×2×2.
	for n := 0; n < 12; n++ {
		for g := 0; g < 4; g++ {
			_, size := h.Subdomain(h.NodeIndex(n), h.GPUIndex(g))
			if size != (Dim3{1, 2, 2}) {
				t.Fatalf("subdomain size = %v, want [1 2 2]", size)
			}
		}
	}
}

func TestGridCube(t *testing.T) {
	// A cube split 6 ways: factors [3 2]; splits x by 3, then y by 2.
	g := Grid(Dim3{600, 600, 600}, 6)
	if g.Vol() != 6 {
		t.Fatalf("grid %v does not have 6 cells", g)
	}
	if g != (Dim3{3, 2, 1}) {
		t.Errorf("grid = %v, want [3 2 1]", g)
	}
}

func TestGridLongAxis(t *testing.T) {
	// All factors go to the dominant axis.
	g := Grid(Dim3{8, 1000, 8}, 8)
	if g != (Dim3{1, 8, 1}) {
		t.Errorf("grid = %v, want [1 8 1]", g)
	}
}

func TestGridVolumeProperty(t *testing.T) {
	f := func(a, b, c uint8, n uint8) bool {
		d := Dim3{int(a%64) + 64, int(b%64) + 64, int(c%64) + 64}
		k := int(n%16) + 1
		g := Grid(d, k)
		return g.Vol() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFig3Volumes reproduces the Fig 3 comparison: for the same domain and
// partition count, the more cubical grid has lower total communication
// volume, and Grid picks the cubical one.
func TestFig3Volumes(t *testing.T) {
	domain := Dim3{36, 36, 1}
	r := 1
	v22 := CommVolume(domain, Dim3{2, 2, 1}, r)
	v41 := CommVolume(domain, Dim3{4, 1, 1}, r)
	if v22 >= v41 {
		t.Errorf("2x2 volume %d should beat 4x1 volume %d", v22, v41)
	}
	v33 := CommVolume(domain, Dim3{3, 3, 1}, r)
	v91 := CommVolume(domain, Dim3{9, 1, 1}, r)
	if v33 >= v91 {
		t.Errorf("3x3 volume %d should beat 9x1 volume %d", v33, v91)
	}
	// Grid picks the cubical decompositions.
	if g := Grid(domain, 4); g != (Dim3{2, 2, 1}) {
		t.Errorf("Grid(4) = %v, want [2 2 1]", g)
	}
	if g := Grid(domain, 9); g != (Dim3{3, 3, 1}) {
		t.Errorf("Grid(9) = %v, want [3 3 1]", g)
	}
}

func TestBlockSizes(t *testing.T) {
	got := blockSizes(10, 3)
	want := []int{4, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("blockSizes(10,3) = %v, want %v", got, want)
		}
	}
}

func TestSubdomainTiling(t *testing.T) {
	// Subdomains must tile the domain exactly: disjoint, covering, in-bounds.
	h, err := NewHier(Dim3{100, 70, 33}, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[[3]int]bool)
	for n := 0; n < h.NodeDims.Vol(); n++ {
		for g := 0; g < h.GPUDims.Vol(); g++ {
			o, s := h.Subdomain(h.NodeIndex(n), h.GPUIndex(g))
			for z := o.Z; z < o.Z+s.Z; z++ {
				for y := o.Y; y < o.Y+s.Y; y++ {
					for x := o.X; x < o.X+s.X; x++ {
						key := [3]int{x, y, z}
						if covered[key] {
							t.Fatalf("cell %v covered twice", key)
						}
						covered[key] = true
					}
				}
			}
		}
	}
	if len(covered) != 100*70*33 {
		t.Errorf("covered %d cells, want %d", len(covered), 100*70*33)
	}
}

func TestSubdomainTilingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dim3{rng.Intn(40) + 24, rng.Intn(40) + 24, rng.Intn(40) + 24}
		nodes := rng.Intn(8) + 1
		gpus := []int{1, 2, 4, 6}[rng.Intn(4)]
		h, err := NewHier(d, nodes, gpus)
		if err != nil {
			return true // domain too small for the split: acceptable rejection
		}
		total := 0
		for n := 0; n < h.NodeDims.Vol(); n++ {
			for g := 0; g < h.GPUDims.Vol(); g++ {
				_, s := h.Subdomain(h.NodeIndex(n), h.GPUIndex(g))
				if s.X < 1 || s.Y < 1 || s.Z < 1 {
					return false
				}
				total += s.Vol()
			}
		}
		return total == d.Vol()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGlobalIndexSplitRoundTrip(t *testing.T) {
	h, err := NewHier(Dim3{96, 96, 96}, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < h.NodeDims.Vol(); n++ {
		for g := 0; g < h.GPUDims.Vol(); g++ {
			ni, gi := h.NodeIndex(n), h.GPUIndex(g)
			global := h.GlobalIndex(ni, gi)
			n2, g2 := h.Split(global)
			if n2 != ni || g2 != gi {
				t.Fatalf("round trip failed: (%v,%v) -> %v -> (%v,%v)", ni, gi, global, n2, g2)
			}
		}
	}
}

func TestRankIndexRoundTrip(t *testing.T) {
	h, err := NewHier(Dim3{96, 96, 96}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 12; n++ {
		if h.NodeRank(h.NodeIndex(n)) != n {
			t.Errorf("node rank round trip failed at %d", n)
		}
	}
	for g := 0; g < 4; g++ {
		if h.GPURank(h.GPUIndex(g)) != g {
			t.Errorf("gpu rank round trip failed at %d", g)
		}
	}
}

func TestNeighborPeriodic(t *testing.T) {
	h, err := NewHier(Dim3{60, 60, 60}, 1, 6) // global grid [3 2 1]
	if err != nil {
		t.Fatal(err)
	}
	g := h.GlobalDims()
	if g != (Dim3{3, 2, 1}) {
		t.Fatalf("global grid = %v", g)
	}
	// Wrap in +x from the last column.
	nb := h.Neighbor(Dim3{2, 0, 0}, Dim3{1, 0, 0})
	if nb != (Dim3{0, 0, 0}) {
		t.Errorf("wrap +x = %v, want [0 0 0]", nb)
	}
	// Wrap in -y from the first row.
	nb = h.Neighbor(Dim3{0, 0, 0}, Dim3{0, -1, 0})
	if nb != (Dim3{0, 1, 0}) {
		t.Errorf("wrap -y = %v, want [0 1 0]", nb)
	}
	// z has extent 1: any z step is a self-neighbor in z.
	nb = h.Neighbor(Dim3{1, 1, 0}, Dim3{0, 0, 1})
	if nb != (Dim3{1, 1, 0}) {
		t.Errorf("z wrap = %v, want self", nb)
	}
}

func TestDirections(t *testing.T) {
	d26 := Directions26()
	if len(d26) != 26 {
		t.Fatalf("Directions26 has %d entries", len(d26))
	}
	seen := make(map[Dim3]bool)
	for _, d := range d26 {
		if d == (Dim3{}) {
			t.Error("zero vector in Directions26")
		}
		if seen[d] {
			t.Errorf("duplicate direction %v", d)
		}
		seen[d] = true
	}
	if len(Directions6()) != 6 {
		t.Error("Directions6 wrong length")
	}
	for _, d := range Directions6() {
		n := 0
		for _, v := range []int{d.X, d.Y, d.Z} {
			if v != 0 {
				n++
			}
		}
		if n != 1 {
			t.Errorf("direction %v is not a face direction", d)
		}
	}
}

func TestHaloCells(t *testing.T) {
	size := Dim3{10, 20, 30}
	cases := []struct {
		dir  Dim3
		r    int
		want int
	}{
		{Dim3{1, 0, 0}, 1, 600},  // y*z face
		{Dim3{1, 0, 0}, 3, 1800}, // radius scales face thickness
		{Dim3{1, 1, 0}, 2, 120},  // edge: r*r*z
		{Dim3{1, 1, 1}, 2, 8},    // corner: r^3
		{Dim3{0, -1, 0}, 1, 300}, // x*z face
		{Dim3{0, 0, 1}, 1, 200},  // x*y face
		{Dim3{-1, 0, -1}, 1, 20}, // edge: r*y*r
		{Dim3{-1, -1, -1}, 1, 1}, // unit corner
		{Dim3{0, 1, 1}, 3, 90},   // edge: x*r*r
	}
	for _, c := range cases {
		if got := HaloCells(size, c.dir, c.r); got != c.want {
			t.Errorf("HaloCells(%v, r=%d) = %d, want %d", c.dir, c.r, got, c.want)
		}
	}
}

func TestCubicalGridMinimizesVolumeProperty(t *testing.T) {
	// Among all factorizations of n into a 3D grid over a cubical domain,
	// the Grid choice achieves the minimum CommVolume.
	f := func(n uint8) bool {
		k := int(n%12) + 1
		domain := Dim3{720, 720, 720} // divisible by 1..6, 8, 9, 10, 12
		best := Grid(domain, k)
		if 720%best.X != 0 || 720%best.Y != 0 || 720%best.Z != 0 {
			return true // skip non-dividing cases for exact volume math
		}
		bestVol := CommVolume(domain, best, 1)
		for x := 1; x <= k; x++ {
			if k%x != 0 {
				continue
			}
			for y := 1; y <= k/x; y++ {
				if (k/x)%y != 0 {
					continue
				}
				z := k / x / y
				g := Dim3{x, y, z}
				if 720%x != 0 || 720%y != 0 || 720%z != 0 {
					continue
				}
				if CommVolume(domain, g, 1) < bestVol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewHierErrors(t *testing.T) {
	if _, err := NewHier(Dim3{4, 4, 4}, 0, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewHier(Dim3{2, 2, 2}, 64, 6); err == nil {
		t.Error("oversplit domain accepted")
	}
}

func TestDirections18(t *testing.T) {
	d18 := Directions18()
	if len(d18) != 18 {
		t.Fatalf("Directions18 has %d entries", len(d18))
	}
	for _, d := range d18 {
		nz := 0
		for _, v := range []int{d.X, d.Y, d.Z} {
			if v != 0 {
				nz++
			}
		}
		if nz < 1 || nz > 2 {
			t.Errorf("direction %v has %d nonzero components", d, nz)
		}
	}
}
