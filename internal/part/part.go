// Package part implements the paper's setup phase 1: hierarchical
// partitioning of a 3D stencil domain (§III-A).
//
// The domain is decomposed with recursive inertial bisection: the prime
// factors of the target partition count are sorted largest to smallest and
// the domain is repeatedly divided orthogonally to its longest axis by the
// next factor, keeping subdomains as close to cubical as possible and hence
// minimizing surface-to-volume ratio (Fig 3).
//
// Partitioning is hierarchical (Fig 4): first across nodes, then within each
// node across GPUs, so the slower inter-node links carry the minimized
// communication. Every subdomain gets a 3D index in node space and a 3D
// index in GPU space; the combination is unique.
package part

import (
	"fmt"
)

// Dim3 is a 3D extent or index.
type Dim3 struct {
	X, Y, Z int
}

// Vol returns X*Y*Z.
func (d Dim3) Vol() int { return d.X * d.Y * d.Z }

// Mul returns the elementwise product.
func (d Dim3) Mul(o Dim3) Dim3 { return Dim3{d.X * o.X, d.Y * o.Y, d.Z * o.Z} }

// Add returns the elementwise sum.
func (d Dim3) Add(o Dim3) Dim3 { return Dim3{d.X + o.X, d.Y + o.Y, d.Z + o.Z} }

func (d Dim3) String() string { return fmt.Sprintf("[%d %d %d]", d.X, d.Y, d.Z) }

// axis accessors keep the split loop free of repeated switch statements.
func (d Dim3) get(axis int) int {
	switch axis {
	case 0:
		return d.X
	case 1:
		return d.Y
	default:
		return d.Z
	}
}

func (d *Dim3) set(axis, v int) {
	switch axis {
	case 0:
		d.X = v
	case 1:
		d.Y = v
	default:
		d.Z = v
	}
}

// PrimeFactors returns the prime factorization of n sorted largest to
// smallest. PrimeFactors(1) is empty.
func PrimeFactors(n int) []int {
	if n < 1 {
		panic(fmt.Sprintf("part: PrimeFactors(%d)", n))
	}
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	// Ascending by construction; reverse for largest-first.
	for i, j := 0, len(fs)-1; i < j; i, j = i+1, j-1 {
		fs[i], fs[j] = fs[j], fs[i]
	}
	return fs
}

// Grid computes the partition grid for dividing domain into n subdomains by
// recursive inertial bisection. The returned dims multiply to n. The domain
// extents guide which axis each factor divides; extents are tracked as
// rationals (numerator over accumulated divisor) so uneven divisions still
// steer later splits correctly.
func Grid(domain Dim3, n int) Dim3 {
	if n < 1 {
		panic(fmt.Sprintf("part: Grid with %d partitions", n))
	}
	if domain.X < 1 || domain.Y < 1 || domain.Z < 1 {
		panic(fmt.Sprintf("part: empty domain %v", domain))
	}
	grid := Dim3{1, 1, 1}
	// Current subdomain extent along each axis, as a float for comparison.
	ext := [3]float64{float64(domain.X), float64(domain.Y), float64(domain.Z)}
	for _, f := range PrimeFactors(n) {
		// Longest axis, ties broken toward x then y then z (matches the
		// paper's Fig 4 walk-through).
		axis := 0
		for a := 1; a < 3; a++ {
			if ext[a] > ext[axis] {
				axis = a
			}
		}
		ext[axis] /= float64(f)
		grid.set(axis, grid.get(axis)*f)
	}
	return grid
}

// blockSizes splits extent e into k contiguous blocks whose sizes differ by
// at most one; the first e%k blocks are one larger.
func blockSizes(e, k int) []int {
	if k < 1 || e < 1 {
		panic(fmt.Sprintf("part: blockSizes(%d, %d)", e, k))
	}
	base, rem := e/k, e%k
	out := make([]int, k)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// axisSplit precomputes the size and origin of each block along one axis for
// a two-level (node, GPU) split.
type axisSplit struct {
	// size[ni][gi] and origin[ni][gi] for node block ni, gpu block gi.
	size   [][]int
	origin [][]int
	nNode  int
	nGPU   int
}

func newAxisSplit(extent, nodeParts, gpuParts int) axisSplit {
	s := axisSplit{nNode: nodeParts, nGPU: gpuParts}
	nodeSizes := blockSizes(extent, nodeParts)
	off := 0
	for _, ns := range nodeSizes {
		gs := blockSizes(ns, gpuParts)
		sizes := make([]int, gpuParts)
		origins := make([]int, gpuParts)
		o := off
		for gi, g := range gs {
			sizes[gi] = g
			origins[gi] = o
			o += g
		}
		s.size = append(s.size, sizes)
		s.origin = append(s.origin, origins)
		off += ns
	}
	return s
}

// Hier is a two-level hierarchical decomposition of a domain.
type Hier struct {
	Domain   Dim3
	Nodes    int
	GPUs     int // per node
	NodeDims Dim3
	GPUDims  Dim3
	ax       [3]axisSplit
}

// NewHier decomposes domain across nodes, then each node-level subdomain
// across gpusPerNode GPUs. It fails if any axis would be split finer than
// its extent.
func NewHier(domain Dim3, nodes, gpusPerNode int) (*Hier, error) {
	if nodes < 1 || gpusPerNode < 1 {
		return nil, fmt.Errorf("part: %d nodes, %d gpus/node", nodes, gpusPerNode)
	}
	nd := Grid(domain, nodes)
	// GPU-level grid is computed on a representative node subdomain.
	nodeSub := Dim3{
		X: domain.X / nd.X,
		Y: domain.Y / nd.Y,
		Z: domain.Z / nd.Z,
	}
	if nodeSub.X < 1 || nodeSub.Y < 1 || nodeSub.Z < 1 {
		return nil, fmt.Errorf("part: domain %v too small for %d nodes (grid %v)", domain, nodes, nd)
	}
	gd := Grid(nodeSub, gpusPerNode)
	h := &Hier{Domain: domain, Nodes: nodes, GPUs: gpusPerNode, NodeDims: nd, GPUDims: gd}
	exts := [3]int{domain.X, domain.Y, domain.Z}
	nds := [3]int{nd.X, nd.Y, nd.Z}
	gds := [3]int{gd.X, gd.Y, gd.Z}
	for a := 0; a < 3; a++ {
		if nds[a]*gds[a] > exts[a] {
			return nil, fmt.Errorf("part: axis %d extent %d split into %d parts", a, exts[a], nds[a]*gds[a])
		}
		h.ax[a] = newAxisSplit(exts[a], nds[a], gds[a])
	}
	return h, nil
}

// GlobalDims returns the full subdomain grid: NodeDims * GPUDims.
func (h *Hier) GlobalDims() Dim3 { return h.NodeDims.Mul(h.GPUDims) }

// NumSubdomains returns the total number of subdomains.
func (h *Hier) NumSubdomains() int { return h.GlobalDims().Vol() }

// Subdomain returns the origin and size of the subdomain with node-space
// index node and GPU-space index gpu.
func (h *Hier) Subdomain(node, gpu Dim3) (origin, size Dim3) {
	ni := [3]int{node.X, node.Y, node.Z}
	gi := [3]int{gpu.X, gpu.Y, gpu.Z}
	var o, s [3]int
	for a := 0; a < 3; a++ {
		o[a] = h.ax[a].origin[ni[a]][gi[a]]
		s[a] = h.ax[a].size[ni[a]][gi[a]]
	}
	return Dim3{o[0], o[1], o[2]}, Dim3{s[0], s[1], s[2]}
}

// GlobalIndex combines a node index and GPU index into the global subdomain
// grid index.
func (h *Hier) GlobalIndex(node, gpu Dim3) Dim3 {
	return Dim3{
		X: node.X*h.GPUDims.X + gpu.X,
		Y: node.Y*h.GPUDims.Y + gpu.Y,
		Z: node.Z*h.GPUDims.Z + gpu.Z,
	}
}

// Split decomposes a global grid index into its node and GPU indices.
func (h *Hier) Split(global Dim3) (node, gpu Dim3) {
	node = Dim3{global.X / h.GPUDims.X, global.Y / h.GPUDims.Y, global.Z / h.GPUDims.Z}
	gpu = Dim3{global.X % h.GPUDims.X, global.Y % h.GPUDims.Y, global.Z % h.GPUDims.Z}
	return
}

// Neighbor returns the global index of the neighbor in direction dir
// (components in {-1,0,1}) under periodic boundary conditions.
func (h *Hier) Neighbor(global, dir Dim3) Dim3 {
	g := h.GlobalDims()
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	return Dim3{
		X: wrap(global.X+dir.X, g.X),
		Y: wrap(global.Y+dir.Y, g.Y),
		Z: wrap(global.Z+dir.Z, g.Z),
	}
}

// NeighborOpen returns the neighbor in direction dir under open
// (non-periodic) boundary conditions; ok is false when the step leaves the
// subdomain grid, meaning no halo exchange happens on that side.
func (h *Hier) NeighborOpen(global, dir Dim3) (nb Dim3, ok bool) {
	g := h.GlobalDims()
	nb = global.Add(dir)
	if nb.X < 0 || nb.X >= g.X || nb.Y < 0 || nb.Y >= g.Y || nb.Z < 0 || nb.Z >= g.Z {
		return Dim3{}, false
	}
	return nb, true
}

// NodeRank linearizes a node index (x fastest).
func (h *Hier) NodeRank(node Dim3) int {
	return node.X + h.NodeDims.X*(node.Y+h.NodeDims.Y*node.Z)
}

// NodeIndex inverts NodeRank.
func (h *Hier) NodeIndex(rank int) Dim3 {
	x := rank % h.NodeDims.X
	y := (rank / h.NodeDims.X) % h.NodeDims.Y
	z := rank / (h.NodeDims.X * h.NodeDims.Y)
	return Dim3{x, y, z}
}

// GPURank linearizes a GPU index within a node (x fastest).
func (h *Hier) GPURank(gpu Dim3) int {
	return gpu.X + h.GPUDims.X*(gpu.Y+h.GPUDims.Y*gpu.Z)
}

// GPUIndex inverts GPURank.
func (h *Hier) GPUIndex(rank int) Dim3 {
	x := rank % h.GPUDims.X
	y := (rank / h.GPUDims.X) % h.GPUDims.Y
	z := rank / (h.GPUDims.X * h.GPUDims.Y)
	return Dim3{x, y, z}
}

// Directions26 lists the 26 nonzero direction vectors of a 3D stencil
// neighborhood in a fixed, deterministic order.
func Directions26() []Dim3 {
	var out []Dim3
	for z := -1; z <= 1; z++ {
		for y := -1; y <= 1; y++ {
			for x := -1; x <= 1; x++ {
				if x == 0 && y == 0 && z == 0 {
					continue
				}
				out = append(out, Dim3{x, y, z})
			}
		}
	}
	return out
}

// Directions6 lists the six face direction vectors (paper Fig 1(a) stencils
// only exchange with face neighbors).
func Directions6() []Dim3 {
	return []Dim3{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
}

// Directions18 lists the face and edge direction vectors (paper Fig 1(b)
// stencils use axis neighbors plus the diagonals within each plane: 6 faces
// + 12 edges, no corners).
func Directions18() []Dim3 {
	var out []Dim3
	for _, d := range Directions26() {
		nz := 0
		for _, v := range []int{d.X, d.Y, d.Z} {
			if v != 0 {
				nz++
			}
		}
		if nz <= 2 {
			out = append(out, d)
		}
	}
	return out
}

// HaloCells returns the number of grid points in the halo region for
// direction dir of a subdomain with the given size and stencil radius: full
// extent along zero components, radius along nonzero ones.
func HaloCells(size Dim3, dir Dim3, radius int) int {
	cells := 1
	dims := [3]int{size.X, size.Y, size.Z}
	dirs := [3]int{dir.X, dir.Y, dir.Z}
	for a := 0; a < 3; a++ {
		if dirs[a] == 0 {
			cells *= dims[a]
		} else {
			cells *= radius
		}
	}
	return cells
}

// CommVolume returns the total halo cells exchanged per step for the given
// partition grid of domain at the given stencil radius, counting all 26
// directions (self-exchanges included: the halo must be filled regardless of
// who owns the neighbor). This is the quantity minimized in Fig 3.
func CommVolume(domain, grid Dim3, radius int) int {
	if domain.X%grid.X != 0 || domain.Y%grid.Y != 0 || domain.Z%grid.Z != 0 {
		panic(fmt.Sprintf("part: CommVolume requires exact division: %v / %v", domain, grid))
	}
	sub := Dim3{domain.X / grid.X, domain.Y / grid.Y, domain.Z / grid.Z}
	per := 0
	for _, d := range Directions26() {
		per += HaloCells(sub, d, radius)
	}
	return per * grid.Vol()
}
