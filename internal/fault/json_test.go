package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// A scenario touching every event and target kind must survive a JSON
// round-trip unchanged: this is the wire format stencilserve accepts.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := &Scenario{Name: "everything", Seed: 42}
	sc.KillNVLink(0.001, 0, 0, 1, 0.002)
	sc.DegradeNIC(0.002, 1, 0.25)
	sc.FlapNIC(0.003, 0, 0.0005)
	sc.DegradeXBus(0.004, 0, 0, 1, 0.5)
	sc.StraggleGPU(0.005, 1, 2, 3.5, 0.001)
	sc.PauseRank(0.006, 3, 0.0007)
	sc.KillGPU(0.007, 0, 4)
	sc.KillRank(0.008, 2)
	sc.LossyNIC(0.009, 0, 0.1, 0.2, 0.3)
	sc.FlapNICPeriodic(0.010, 1, 0.001, 0.5, 4)
	sc.Add(Event{At: 0.011, Kind: LinkDegrade, Factor: 0.3,
		Target: Target{Node: 0, Kind: TargetGPULink, A: 2}})
	sc.Add(Event{At: 0.012, Kind: LinkDegrade, Factor: 0.9,
		Target: Target{Node: 1, Kind: TargetHostMem, A: 1}})
	if err := sc.Validate(); err != nil {
		t.Fatalf("source scenario invalid: %v", err)
	}

	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Scenario
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*sc, got) {
		t.Fatalf("round trip changed the scenario:\n  in:  %+v\n  out: %+v", *sc, got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped scenario invalid: %v", err)
	}

	// A second marshal must be byte-identical (canonical form).
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-marshal not byte-identical:\n  %s\n  %s", b, b2)
	}
}

// Kinds marshal as their human-readable names, not enum integers.
func TestScenarioJSONUsesNames(t *testing.T) {
	sc := &Scenario{Name: "names"}
	sc.DropMsgs(0.001, 0, 0.5)
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"kind":"msg-drop"`, `"kind":"nic"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("marshal = %s; want it to contain %s", b, want)
		}
	}
}

func TestScenarioJSONUnknownKinds(t *testing.T) {
	cases := []string{
		`{"events":[{"at":0,"kind":"warp-core-breach","target":{"kind":"nic"}}]}`,
		`{"events":[{"at":0,"kind":"nic-flap","target":{"kind":"subspace"}}]}`,
		`{"events":[{"at":0,"kind":7,"target":{"kind":"nic"}}]}`,
	}
	for _, in := range cases {
		var sc Scenario
		if err := json.Unmarshal([]byte(in), &sc); err == nil {
			t.Errorf("unmarshal %s succeeded; want error", in)
		}
	}
}

// Invalid-but-parseable scenarios must be caught by Validate, the layer the
// HTTP API surfaces as 400 responses.
func TestScenarioJSONThenValidate(t *testing.T) {
	in := `{"name":"bad","events":[{"at":-1,"kind":"nic-flap","target":{"kind":"nic"},"duration":0.001}]}`
	var sc Scenario
	if err := json.Unmarshal([]byte(in), &sc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("Validate accepted a negative event time")
	}
}

func TestKindMarshalUnknownValue(t *testing.T) {
	if _, err := json.Marshal(Kind(99)); err == nil {
		t.Error("marshal Kind(99) succeeded; want error")
	}
	if _, err := json.Marshal(TargetKind(99)); err == nil {
		t.Error("marshal TargetKind(99) succeeded; want error")
	}
}
