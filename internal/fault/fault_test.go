package fault

import (
	"fmt"
	"testing"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/sim"
)

func rig(nodes, ranksPerNode int) (*sim.Engine, *machine.Machine, *cudart.Runtime, *mpi.World) {
	eng := sim.NewEngine()
	m := machine.NewSummit(eng, nodes)
	rt := cudart.NewRuntime(m, false)
	w := mpi.NewWorld(m, rt, ranksPerNode, false)
	return eng, m, rt, w
}

// TestInjectorAppliesAtVirtualTimes: each event kind mutates the machine at
// exactly the scheduled virtual time and the log records it in order.
func TestInjectorAppliesAtVirtualTimes(t *testing.T) {
	eng, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	sc := (&Scenario{Name: "mixed"}).
		DegradeNIC(1, 0, 0.25).
		KillNVLink(2, 0, 0, 1, 0).
		StraggleGPU(3, 0, 4, 2.5, 0)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}

	node := m.Nodes[0]
	nicOut, nicIn := node.NIC()
	ab, ba := node.NVLinkPair(0, 1)
	checks := []struct {
		at sim.Time
		fn func()
	}{
		{0.5, func() {
			if nicOut.Health() != 1 || ab.Health() != 1 {
				t.Error("faults applied before schedule")
			}
		}},
		{1.5, func() {
			if nicOut.Health() != 0.25 || nicIn.Health() != 0.25 {
				t.Errorf("NIC health at t=1.5: got %g/%g want 0.25", nicOut.Health(), nicIn.Health())
			}
		}},
		{2.5, func() {
			if !ab.Down() || !ba.Down() {
				t.Error("NVLink 0-1 not down at t=2.5")
			}
		}},
		{3.5, func() {
			if got := rt.DeviceAt(0, 4).SlowFactor(); got != 2.5 {
				t.Errorf("GPU4 slow factor: got %g want 2.5", got)
			}
		}},
	}
	for _, c := range checks {
		eng.At(c.at, c.fn)
	}
	eng.Run()

	if len(inj.Log()) != 3 {
		t.Fatalf("log entries: got %d want 3: %v", len(inj.Log()), inj.Log())
	}
	for i, want := range []sim.Time{1, 2, 3} {
		if inj.Log()[i].At != want {
			t.Errorf("log[%d].At: got %g want %g", i, inj.Log()[i].At, want)
		}
	}
}

// TestNICFlapAutoRecovers: NICFlap fails both directions and restores them
// after the outage without an explicit recover event.
func TestNICFlapAutoRecovers(t *testing.T) {
	eng, m, rt, w := rig(2, 1)
	inj := NewInjector(m, rt, w)
	if err := inj.Install((&Scenario{Name: "flap"}).FlapNIC(1, 1, 0.5)); err != nil {
		t.Fatal(err)
	}
	out, in := m.Nodes[1].NIC()
	eng.At(1.2, func() {
		if !out.Down() || !in.Down() {
			t.Error("NIC not down mid-flap")
		}
	})
	eng.At(1.6, func() {
		if out.Down() || in.Down() || out.Health() != 1 {
			t.Error("NIC not recovered after outage")
		}
	})
	eng.Run()
	if len(inj.Log()) != 2 || inj.Log()[1].At != 1.5 {
		t.Errorf("flap log: %v", inj.Log())
	}
}

// TestLinkFailWithRecovery: a LinkFail with Duration heals itself.
func TestLinkFailWithRecovery(t *testing.T) {
	eng, m, _, _ := rig(1, 1)
	inj := NewInjector(m, nil, nil)
	if err := inj.Install((&Scenario{Name: "heal"}).KillNVLink(1, 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	ab, _ := m.Nodes[0].NVLinkPair(1, 2)
	eng.At(2, func() {
		if !ab.Down() {
			t.Error("NVLink up during failure window")
		}
	})
	eng.At(4.5, func() {
		if ab.Down() || ab.Health() != 1 {
			t.Error("NVLink not healed at t=4.5")
		}
	})
	eng.Run()
}

// TestStraggleRecovery and rank pause plumbing.
func TestStraggleAndPause(t *testing.T) {
	eng, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	sc := (&Scenario{Name: "sp"}).
		StraggleGPU(1, 0, 0, 3, 2).
		PauseRank(1, 1, 0.25)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}
	eng.At(2, func() {
		if got := rt.DeviceAt(0, 0).SlowFactor(); got != 3 {
			t.Errorf("mid-straggle factor: got %g want 3", got)
		}
	})
	eng.At(3.5, func() {
		if got := rt.DeviceAt(0, 0).SlowFactor(); got != 1 {
			t.Errorf("post-recovery factor: got %g want 1", got)
		}
	})
	eng.Run()
	if len(inj.Log()) != 3 {
		t.Errorf("log: %v", inj.Log())
	}
}

// TestInstallValidation rejects malformed events before scheduling anything.
func TestInstallValidation(t *testing.T) {
	_, m, rt, w := rig(1, 2)
	cases := []struct {
		name string
		sc   *Scenario
	}{
		{"bad node", (&Scenario{}).FlapNIC(1, 7, 0.1)},
		{"no such nvlink (cross-socket)", (&Scenario{}).KillNVLink(1, 0, 0, 3, 0)},
		{"gpu out of range", (&Scenario{}).StraggleGPU(1, 0, 9, 2, 0)},
		{"straggle below 1", (&Scenario{}).StraggleGPU(1, 0, 0, 0.5, 0)},
		{"degrade factor 0", (&Scenario{}).DegradeNIC(1, 0, 0)},
		{"rank out of range", (&Scenario{}).PauseRank(1, 5, 1)},
		{"pause without duration", (&Scenario{}).PauseRank(1, 0, 0)},
		{"flap without outage", (&Scenario{}).FlapNIC(1, 0, 0)},
		{"degrade a gpu", (&Scenario{}).Add(Event{At: 1, Kind: LinkDegrade, Factor: 0.5,
			Target: Target{Kind: TargetGPU, A: 0}})},
	}
	for _, c := range cases {
		inj := NewInjector(m, rt, w)
		if err := inj.Install(c.sc); err == nil {
			t.Errorf("%s: Install accepted a bad scenario", c.name)
		}
	}
}

// TestScenarioDeterminism: installing the same scenario on two fresh
// simulations with identical traffic yields byte-identical fault logs and
// identical transfer completion times.
func TestScenarioDeterminism(t *testing.T) {
	run := func() (string, sim.Time) {
		eng, m, rt, w := rig(2, 2)
		w.SendTimeout = 5e-3
		inj := NewInjector(m, rt, w)
		sc := (&Scenario{Name: "det"}).
			FlapNIC(2e-3, 0, 10e-3).
			KillNVLink(1e-3, 0, 0, 1, 20e-3).
			StraggleGPU(0, 1, 2, 2, 0)
		if err := inj.Install(sc); err != nil {
			t.Fatal(err)
		}
		const bytes = 4 << 20
		src := rt.MallocHost(0, 0, bytes)
		dst := rt.MallocHost(1, 0, bytes)
		var arrived sim.Time
		eng.Spawn("send", func(p *sim.Proc) { w.Rank(0).Isend(2, 1, src, 0, bytes).Wait(p) })
		eng.Spawn("recv", func(p *sim.Proc) {
			w.Rank(2).Irecv(0, 1, dst, 0, bytes).Wait(p)
			arrived = p.Now()
		})
		eng.Run()
		log := ""
		for _, r := range inj.Log() {
			log += fmt.Sprintf("%.15g %s\n", r.At, r.Desc)
		}
		return log, arrived
	}
	log1, t1 := run()
	log2, t2 := run()
	if log1 != log2 {
		t.Errorf("fault logs differ:\n%s\nvs\n%s", log1, log2)
	}
	if t1 != t2 {
		t.Errorf("completion times differ: %.15g vs %.15g", t1, t2)
	}
	if log1 == "" {
		t.Error("empty fault log")
	}
}
