package fault

import (
	"fmt"
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/sim"
)

func rig(nodes, ranksPerNode int) (*sim.Engine, *machine.Machine, *cudart.Runtime, *mpi.World) {
	eng := sim.NewEngine()
	m := machine.NewSummit(eng, nodes)
	rt := cudart.NewRuntime(m, false)
	w := mpi.NewWorld(m, rt, ranksPerNode, false)
	return eng, m, rt, w
}

// TestInjectorAppliesAtVirtualTimes: each event kind mutates the machine at
// exactly the scheduled virtual time and the log records it in order.
func TestInjectorAppliesAtVirtualTimes(t *testing.T) {
	eng, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	sc := (&Scenario{Name: "mixed"}).
		DegradeNIC(1, 0, 0.25).
		KillNVLink(2, 0, 0, 1, 0).
		StraggleGPU(3, 0, 4, 2.5, 0)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}

	node := m.Nodes[0]
	nicOut, nicIn := node.NIC()
	ab, ba := node.NVLinkPair(0, 1)
	checks := []struct {
		at sim.Time
		fn func()
	}{
		{0.5, func() {
			if nicOut.Health() != 1 || ab.Health() != 1 {
				t.Error("faults applied before schedule")
			}
		}},
		{1.5, func() {
			if nicOut.Health() != 0.25 || nicIn.Health() != 0.25 {
				t.Errorf("NIC health at t=1.5: got %g/%g want 0.25", nicOut.Health(), nicIn.Health())
			}
		}},
		{2.5, func() {
			if !ab.Down() || !ba.Down() {
				t.Error("NVLink 0-1 not down at t=2.5")
			}
		}},
		{3.5, func() {
			if got := rt.DeviceAt(0, 4).SlowFactor(); got != 2.5 {
				t.Errorf("GPU4 slow factor: got %g want 2.5", got)
			}
		}},
	}
	for _, c := range checks {
		eng.At(c.at, c.fn)
	}
	eng.Run()

	if len(inj.Log()) != 3 {
		t.Fatalf("log entries: got %d want 3: %v", len(inj.Log()), inj.Log())
	}
	for i, want := range []sim.Time{1, 2, 3} {
		if inj.Log()[i].At != want {
			t.Errorf("log[%d].At: got %g want %g", i, inj.Log()[i].At, want)
		}
	}
}

// TestNICFlapAutoRecovers: NICFlap fails both directions and restores them
// after the outage without an explicit recover event.
func TestNICFlapAutoRecovers(t *testing.T) {
	eng, m, rt, w := rig(2, 1)
	inj := NewInjector(m, rt, w)
	if err := inj.Install((&Scenario{Name: "flap"}).FlapNIC(1, 1, 0.5)); err != nil {
		t.Fatal(err)
	}
	out, in := m.Nodes[1].NIC()
	eng.At(1.2, func() {
		if !out.Down() || !in.Down() {
			t.Error("NIC not down mid-flap")
		}
	})
	eng.At(1.6, func() {
		if out.Down() || in.Down() || out.Health() != 1 {
			t.Error("NIC not recovered after outage")
		}
	})
	eng.Run()
	if len(inj.Log()) != 2 || inj.Log()[1].At != 1.5 {
		t.Errorf("flap log: %v", inj.Log())
	}
}

// TestLinkFailWithRecovery: a LinkFail with Duration heals itself.
func TestLinkFailWithRecovery(t *testing.T) {
	eng, m, _, _ := rig(1, 1)
	inj := NewInjector(m, nil, nil)
	if err := inj.Install((&Scenario{Name: "heal"}).KillNVLink(1, 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	ab, _ := m.Nodes[0].NVLinkPair(1, 2)
	eng.At(2, func() {
		if !ab.Down() {
			t.Error("NVLink up during failure window")
		}
	})
	eng.At(4.5, func() {
		if ab.Down() || ab.Health() != 1 {
			t.Error("NVLink not healed at t=4.5")
		}
	})
	eng.Run()
}

// TestStraggleRecovery and rank pause plumbing.
func TestStraggleAndPause(t *testing.T) {
	eng, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	sc := (&Scenario{Name: "sp"}).
		StraggleGPU(1, 0, 0, 3, 2).
		PauseRank(1, 1, 0.25)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}
	eng.At(2, func() {
		if got := rt.DeviceAt(0, 0).SlowFactor(); got != 3 {
			t.Errorf("mid-straggle factor: got %g want 3", got)
		}
	})
	eng.At(3.5, func() {
		if got := rt.DeviceAt(0, 0).SlowFactor(); got != 1 {
			t.Errorf("post-recovery factor: got %g want 1", got)
		}
	})
	eng.Run()
	if len(inj.Log()) != 3 {
		t.Errorf("log: %v", inj.Log())
	}
}

// TestInstallValidation rejects malformed events before scheduling anything.
func TestInstallValidation(t *testing.T) {
	_, m, rt, w := rig(1, 2)
	cases := []struct {
		name string
		sc   *Scenario
	}{
		{"bad node", (&Scenario{}).FlapNIC(1, 7, 0.1)},
		{"no such nvlink (cross-socket)", (&Scenario{}).KillNVLink(1, 0, 0, 3, 0)},
		{"gpu out of range", (&Scenario{}).StraggleGPU(1, 0, 9, 2, 0)},
		{"straggle below 1", (&Scenario{}).StraggleGPU(1, 0, 0, 0.5, 0)},
		{"degrade factor 0", (&Scenario{}).DegradeNIC(1, 0, 0)},
		{"rank out of range", (&Scenario{}).PauseRank(1, 5, 1)},
		{"pause without duration", (&Scenario{}).PauseRank(1, 0, 0)},
		{"flap without outage", (&Scenario{}).FlapNIC(1, 0, 0)},
		{"degrade a gpu", (&Scenario{}).Add(Event{At: 1, Kind: LinkDegrade, Factor: 0.5,
			Target: Target{Kind: TargetGPU, A: 0}})},
	}
	for _, c := range cases {
		inj := NewInjector(m, rt, w)
		if err := inj.Install(c.sc); err == nil {
			t.Errorf("%s: Install accepted a bad scenario", c.name)
		}
	}
}

// TestScenarioDeterminism: installing the same scenario on two fresh
// simulations with identical traffic yields byte-identical fault logs and
// identical transfer completion times.
func TestScenarioDeterminism(t *testing.T) {
	run := func() (string, sim.Time) {
		eng, m, rt, w := rig(2, 2)
		w.SendTimeout = 5e-3
		inj := NewInjector(m, rt, w)
		sc := (&Scenario{Name: "det"}).
			FlapNIC(2e-3, 0, 10e-3).
			KillNVLink(1e-3, 0, 0, 1, 20e-3).
			StraggleGPU(0, 1, 2, 2, 0)
		if err := inj.Install(sc); err != nil {
			t.Fatal(err)
		}
		const bytes = 4 << 20
		src := rt.MallocHost(0, 0, bytes)
		dst := rt.MallocHost(1, 0, bytes)
		var arrived sim.Time
		eng.Spawn("send", func(p *sim.Proc) { w.Rank(0).Isend(2, 1, src, 0, bytes).Wait(p) })
		eng.Spawn("recv", func(p *sim.Proc) {
			w.Rank(2).Irecv(0, 1, dst, 0, bytes).Wait(p)
			arrived = p.Now()
		})
		eng.Run()
		log := ""
		for _, r := range inj.Log() {
			log += fmt.Sprintf("%.15g %s\n", r.At, r.Desc)
		}
		return log, arrived
	}
	log1, t1 := run()
	log2, t2 := run()
	if log1 != log2 {
		t.Errorf("fault logs differ:\n%s\nvs\n%s", log1, log2)
	}
	if t1 != t2 {
		t.Errorf("completion times differ: %.15g vs %.15g", t1, t2)
	}
	if log1 == "" {
		t.Error("empty fault log")
	}
}

// TestScenarioValidate covers the standalone scenario validator: structural
// problems (negative times, factors, durations, unknown kinds) are rejected
// without needing an injector or a machine.
func TestScenarioValidate(t *testing.T) {
	good := (&Scenario{Name: "ok"}).
		DegradeNIC(1, 0, 0.25).
		KillGPU(2, 0, 3).
		KillRank(3, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected a well-formed scenario: %v", err)
	}
	cases := []struct {
		name string
		sc   *Scenario
	}{
		{"negative time", (&Scenario{}).Add(Event{At: -1, Kind: NICFlap, Duration: 1,
			Target: Target{Kind: TargetNIC}})},
		{"negative factor", (&Scenario{}).Add(Event{At: 1, Kind: LinkDegrade, Factor: -0.5,
			Target: Target{Kind: TargetNIC}})},
		{"negative duration", (&Scenario{}).Add(Event{At: 1, Kind: NICFlap, Duration: -2,
			Target: Target{Kind: TargetNIC}})},
		{"kind out of range", (&Scenario{}).Add(Event{At: 1, Kind: Kind(99),
			Target: Target{Kind: TargetNIC}})},
		{"negative kind", (&Scenario{}).Add(Event{At: 1, Kind: Kind(-1),
			Target: Target{Kind: TargetNIC}})},
	}
	for _, c := range cases {
		if err := c.sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad scenario", c.name)
		}
	}
	// Install runs Validate first: a structurally bad event is rejected with
	// the same error even when target validation would also fail.
	_, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	if err := inj.Install(cases[1].sc); err == nil {
		t.Error("Install accepted a scenario Validate rejects")
	}
}

// TestScenarioValidateDeliveryKinds: table-driven validation of the
// probabilistic delivery-fault and periodic-flap kinds — probabilities must
// lie in [0,1], flap periods must be positive, duty cycles in (0,1).
func TestScenarioValidateDeliveryKinds(t *testing.T) {
	cases := []struct {
		name    string
		sc      *Scenario
		wantErr string // "" means valid
	}{
		{"drop ok", (&Scenario{}).DropMsgs(1, 0, 0.2), ""},
		{"corrupt ok", (&Scenario{}).CorruptMsgs(1, 0, 1), ""},
		{"dup ok", (&Scenario{}).DupMsgs(1, 0, 0), ""},
		{"lossy combo ok", (&Scenario{}).LossyNIC(1, 0, 0.2, 0.1, 0.05), ""},
		{"flap ok", (&Scenario{}).FlapNICPeriodic(1, 0, 0.5, 0.4, 6), ""},
		{"flap default cycles ok", (&Scenario{}).FlapNICPeriodic(1, 0, 0.5, 0.4, 0), ""},
		{"drop p>1", (&Scenario{}).DropMsgs(1, 0, 1.5), "outside [0,1]"},
		{"drop p<0", (&Scenario{}).DropMsgs(1, 0, -0.1), "outside [0,1]"},
		{"corrupt p>1", (&Scenario{}).CorruptMsgs(1, 0, 2), "outside [0,1]"},
		{"dup p<0", (&Scenario{}).DupMsgs(1, 0, -1), "outside [0,1]"},
		{"flap zero period", (&Scenario{}).FlapNICPeriodic(1, 0, 0, 0.5, 2), "non-positive flap period"},
		{"flap negative period", (&Scenario{}).FlapNICPeriodic(1, 0, -1, 0.5, 2), "non-positive flap period"},
		{"flap zero duty", (&Scenario{}).FlapNICPeriodic(1, 0, 1, 0, 2), "duty cycle"},
		{"flap duty 1", (&Scenario{}).FlapNICPeriodic(1, 0, 1, 1, 2), "duty cycle"},
		{"flap negative duty", (&Scenario{}).FlapNICPeriodic(1, 0, 1, -0.3, 2), "duty cycle"},
		{"flap negative cycles", (&Scenario{}).FlapNICPeriodic(1, 0, 1, 0.5, -2), "cycle count"},
	}
	for _, c := range cases {
		err := c.sc.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate rejected a well-formed scenario: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate accepted a bad scenario", c.name)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestMsgFaultsSetLinkLoss: Msg* events install (and clear) the per-link loss
// probabilities on both NIC directions, and require an MPI world to sample
// them.
func TestMsgFaultsSetLinkLoss(t *testing.T) {
	eng, m, rt, w := rig(2, 1)
	inj := NewInjector(m, rt, w)
	sc := (&Scenario{Name: "lossy", Seed: 7}).
		DropMsgs(1, 0, 0.2).CorruptMsgs(1, 0, 0.1).DupMsgs(1, 0, 0.05).
		DropMsgs(2, 0, 0)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}
	if !w.Reliable || w.DeliverySeed != 7 {
		t.Errorf("Install did not arm the reliable layer: Reliable=%v seed=%d", w.Reliable, w.DeliverySeed)
	}
	out, in := m.Nodes[0].NIC()
	eng.At(1.5, func() {
		for _, l := range []*flownet.Link{out, in} {
			if ls := l.Loss(); ls.Drop != 0.2 || ls.Corrupt != 0.1 || ls.Dup != 0.05 {
				t.Errorf("loss on %s at t=1.5: %+v", l.Name, ls)
			}
		}
	})
	eng.Run()
	if ls := out.Loss(); ls.Drop != 0 || ls.Corrupt != 0.1 {
		t.Errorf("drop not cleared independently: %+v", ls)
	}
	// Without an MPI world nothing samples the loss: reject at install time.
	inj2 := NewInjector(m, rt, nil)
	if err := inj2.Install((&Scenario{}).DropMsgs(1, 0, 0.5)); err == nil {
		t.Error("Install accepted a delivery fault without an MPI world")
	}
}

// TestLinkFlapPeriodic: a LinkFlap event fails and recovers its links once
// per cycle for exactly Repeat cycles, then leaves them healthy.
func TestLinkFlapPeriodic(t *testing.T) {
	eng, m, rt, w := rig(2, 1)
	inj := NewInjector(m, rt, w)
	if err := inj.Install((&Scenario{Name: "flappy"}).FlapNICPeriodic(1, 1, 1.0, 0.25, 3)); err != nil {
		t.Fatal(err)
	}
	out, in := m.Nodes[1].NIC()
	for c := 0; c < 3; c++ {
		at := 1 + sim.Time(c)
		eng.At(at+0.1, func() {
			if !out.Down() || !in.Down() {
				t.Errorf("NIC not down at t=%g", at+0.1)
			}
		})
		eng.At(at+0.5, func() {
			if out.Down() || in.Down() {
				t.Errorf("NIC not recovered at t=%g", at+0.5)
			}
		})
	}
	eng.Run()
	if out.Down() || out.Health() != 1 {
		t.Error("NIC unhealthy after flap episode ended")
	}
	if got := out.DownCount(); got != 3 {
		t.Errorf("DownCount: got %d want 3", got)
	}
	downs := 0
	for _, rec := range inj.Log() {
		if rec.Kind == LinkFlap.String() {
			downs++
		}
	}
	if downs != 3 {
		t.Errorf("flap down records: got %d want 3: %v", downs, inj.Log())
	}
}

// TestHasDelivery: only Msg* kinds require the reliable-delivery envelope.
func TestHasDelivery(t *testing.T) {
	if (&Scenario{}).FlapNICPeriodic(1, 0, 1, 0.5, 2).KillGPU(2, 0, 0).HasDelivery() {
		t.Error("non-delivery scenario reported delivery faults")
	}
	for _, sc := range []*Scenario{
		(&Scenario{}).DropMsgs(1, 0, 0.1),
		(&Scenario{}).CorruptMsgs(1, 0, 0.1),
		(&Scenario{}).DupMsgs(1, 0, 0.1),
	} {
		if !sc.HasDelivery() {
			t.Errorf("scenario %v not reported as delivery-faulted", sc.Events)
		}
	}
}

// TestHasFatal: only GPUFail and RankFail make a scenario fatal.
func TestHasFatal(t *testing.T) {
	if (&Scenario{}).DegradeNIC(1, 0, 0.5).KillNVLink(2, 0, 0, 1, 0).HasFatal() {
		t.Error("non-fatal scenario reported fatal")
	}
	if !(&Scenario{}).KillGPU(1, 0, 0).HasFatal() {
		t.Error("KillGPU scenario not reported fatal")
	}
	if !(&Scenario{}).KillRank(1, 0).HasFatal() {
		t.Error("KillRank scenario not reported fatal")
	}
}

// TestSameTimestampStableOrder: events that share a timestamp apply in
// insertion order — a documented contract (Install sorts stably by At), so
// e.g. a degrade-then-kill pair at the same instant behaves predictably.
func TestSameTimestampStableOrder(t *testing.T) {
	eng, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	// Three same-time events in a deliberately non-monotonic surrounding
	// order; the log must show t=1 first, then the t=2 triple in insertion
	// order, regardless of how the sort shuffles equal keys.
	sc := (&Scenario{Name: "ties"}).
		StraggleGPU(2, 0, 0, 2, 0).
		DegradeNIC(1, 0, 0.5).
		StraggleGPU(2, 0, 1, 3, 0).
		StraggleGPU(2, 0, 2, 4, 0)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	log := inj.Log()
	if len(log) != 4 {
		t.Fatalf("log entries: got %d want 4: %v", len(log), log)
	}
	wantAt := []sim.Time{1, 2, 2, 2}
	for i, at := range wantAt {
		if log[i].At != at {
			t.Errorf("log[%d].At = %g, want %g", i, log[i].At, at)
		}
	}
	// Insertion order within the t=2 tie: GPU 0, then 1, then 2.
	for i, gpu := range []int{0, 1, 2} {
		if got := rt.DeviceAt(0, gpu).SlowFactor(); got != float64(gpu+2) {
			t.Errorf("GPU %d slow factor %g, want %d", gpu, got, gpu+2)
		}
		if want := fmt.Sprintf("gpu.%d", gpu); !strings.Contains(log[i+1].Desc, want) {
			t.Errorf("log[%d] = %q, want mention of %q (stable tie order)", i+1, log[i+1].Desc, want)
		}
	}
}

// TestFatalKinds: GPUFail marks the device dead (leaving its links up);
// RankFail marks the rank failed and kills every device it drives.
func TestFatalKinds(t *testing.T) {
	eng, m, rt, w := rig(1, 2)
	inj := NewInjector(m, rt, w)
	sc := (&Scenario{Name: "fatal"}).KillGPU(1, 0, 5).KillRank(2, 0)
	if err := inj.Install(sc); err != nil {
		t.Fatal(err)
	}
	eng.At(1.5, func() {
		if !rt.DeviceAt(0, 5).Dead() {
			t.Error("GPU 5 not dead after GPUFail")
		}
		if rt.DeviceAt(0, 4).Dead() {
			t.Error("GPU 4 dead without a fault")
		}
		if w.Rank(0).Failed() {
			t.Error("rank 0 failed before its event")
		}
		// Fail-stop: the dead GPU's links stay up (the fabric survives).
		for _, l := range m.Nodes[0].IntraLinks() {
			if l.Down() {
				t.Errorf("link %s down after GPUFail", l.Name)
			}
		}
	})
	eng.At(2.5, func() {
		if !w.Rank(0).Failed() {
			t.Error("rank 0 not failed after RankFail")
		}
		// Rank 0 of 2 ranks/node drives GPUs 0-2.
		for g := 0; g < 3; g++ {
			if !rt.DeviceAt(0, g).Dead() {
				t.Errorf("GPU %d not dead after its rank failed", g)
			}
		}
		if rt.DeviceAt(0, 3).Dead() {
			t.Error("GPU 3 (other rank) dead after rank 0 failed")
		}
	})
	eng.Run()
	if len(inj.Log()) != 2 {
		t.Fatalf("log entries: got %d want 2: %v", len(inj.Log()), inj.Log())
	}
}

// TestFatalTargetValidation: fatal events still go through target checks.
func TestFatalTargetValidation(t *testing.T) {
	_, m, rt, w := rig(1, 2)
	for name, sc := range map[string]*Scenario{
		"gpu out of range":  (&Scenario{}).KillGPU(1, 0, 6),
		"node out of range": (&Scenario{}).KillGPU(1, 3, 0),
		"rank out of range": (&Scenario{}).KillRank(1, 2),
	} {
		inj := NewInjector(m, rt, w)
		if err := inj.Install(sc); err == nil {
			t.Errorf("%s: Install accepted a bad fatal event", name)
		}
	}
}
