package fault

import (
	"encoding/json"
	"fmt"
)

// Kinds marshal as their String() names so scenario JSON submitted over the
// stencilserve API is readable and stable across reorderings of the enum.

var kindNames = func() map[string]Kind {
	m := make(map[string]Kind, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < 0 || k >= numKinds {
		return nil, fmt.Errorf("fault: cannot marshal unknown kind %d", int(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a kind's string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("fault: kind must be a string name: %w", err)
	}
	v, ok := kindNames[s]
	if !ok {
		return fmt.Errorf("fault: unknown kind %q", s)
	}
	*k = v
	return nil
}

var targetKindNames = map[string]TargetKind{
	TargetNVLink.String():  TargetNVLink,
	TargetXBus.String():    TargetXBus,
	TargetNIC.String():     TargetNIC,
	TargetGPULink.String(): TargetGPULink,
	TargetHostMem.String(): TargetHostMem,
	TargetGPU.String():     TargetGPU,
	TargetRank.String():    TargetRank,
}

// MarshalJSON renders the target kind as its string name.
func (tk TargetKind) MarshalJSON() ([]byte, error) {
	if _, ok := targetKindNames[tk.String()]; !ok {
		return nil, fmt.Errorf("fault: cannot marshal unknown target kind %d", int(tk))
	}
	return json.Marshal(tk.String())
}

// UnmarshalJSON accepts a target kind's string name.
func (tk *TargetKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("fault: target kind must be a string name: %w", err)
	}
	v, ok := targetKindNames[s]
	if !ok {
		return fmt.Errorf("fault: unknown target kind %q", s)
	}
	*tk = v
	return nil
}
