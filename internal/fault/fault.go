// Package fault is a deterministic fault/degradation injection subsystem for
// the simulated cluster, driven by the virtual clock.
//
// A Scenario is a scripted list of events — link bandwidth degradation by a
// factor, full link failure with optional recovery, NIC flaps, GPU
// stragglers, rank pauses — that an Injector schedules on the simulation
// engine. When an event fires it mutates the live machine state: link
// capacities change and the flow network re-waterfills every in-flight
// transfer crossing the affected component, devices slow down, progress
// engines stall. Identical scenarios on identical configurations therefore
// yield identical virtual-time traces (the engine's FIFO tie-break makes the
// whole simulation deterministic).
//
// The adaptation layer in internal/exchange observes the resulting link
// health and re-runs the paper's phase-3 specialization (and optionally
// phase-2 placement) against the degraded capability/bandwidth matrix.
package fault

import (
	"fmt"
	"sort"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/sim"
)

// Kind classifies a fault event.
type Kind int

const (
	// LinkDegrade multiplies the target links' capacity by Factor (of the
	// healthy base; 1 restores).
	LinkDegrade Kind = iota
	// LinkFail marks the target links down; in-flight flows crawl at a
	// residual trickle until LinkRecover (or a Duration-scheduled recovery).
	LinkFail
	// LinkRecover clears a failure and restores healthy capacity.
	LinkRecover
	// NICFlap fails both directions of the node's NIC and automatically
	// recovers them after Duration.
	NICFlap
	// GPUStraggle sets the target GPU's kernel slow factor to Factor
	// (launch + pack/unpack/compute inflate together; 1 recovers).
	GPUStraggle
	// RankPause occupies the target rank's MPI progress engine for Duration.
	RankPause
	// GPUFail permanently kills device A of the target node. Fail-stop: the
	// device's in-flight virtual-time work completes (real clusters learn of
	// death via timeouts, not instantly), but any new allocation, stream, or
	// peer enablement on it panics. Its links are NOT failed — residual
	// trickle flows would distort the clock; the loss is discovered by the
	// exchange recovery layer at its next consistency point.
	GPUFail
	// RankFail permanently kills global MPI rank A and every device it
	// drives. The exchange recovery layer evicts the rank from collectives
	// and re-places its subdomains on survivors.
	RankFail
	// MsgDrop sets the per-message drop probability of the target links to
	// Factor (0 clears). Sampled by the MPI reliable-delivery layer at flow
	// completion: a dropped message really withholds its payload and the
	// sender must retransmit.
	MsgDrop
	// MsgCorrupt sets the per-message corruption probability of the target
	// links to Factor (0 clears). A corrupted delivery flips real payload
	// bytes in the receive buffer; the checksum mismatch triggers a NACK.
	MsgCorrupt
	// MsgDup sets the per-message duplication probability of the target
	// links to Factor (0 clears). A duplicated delivery arrives twice; the
	// receiver deduplicates by sequence number.
	MsgDup
	// LinkFlap periodically fails and recovers the target links: each cycle
	// is Duration long with the links down for the first Factor (duty, in
	// (0,1)) of it, repeated Repeat times (default 1). Unlike NICFlap it
	// models a persistently unstable link rather than a single outage.
	LinkFlap
	numKinds
)

func (k Kind) String() string {
	switch k {
	case LinkDegrade:
		return "link-degrade"
	case LinkFail:
		return "link-fail"
	case LinkRecover:
		return "link-recover"
	case NICFlap:
		return "nic-flap"
	case GPUStraggle:
		return "gpu-straggle"
	case RankPause:
		return "rank-pause"
	case GPUFail:
		return "gpu-fail"
	case RankFail:
		return "rank-fail"
	case MsgDrop:
		return "msg-drop"
	case MsgCorrupt:
		return "msg-corrupt"
	case MsgDup:
		return "msg-dup"
	case LinkFlap:
		return "link-flap"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// TargetKind selects which machine facility an event hits.
type TargetKind int

const (
	// TargetNVLink is the direct GPU-GPU NVLink between local GPUs A and B
	// (both directions).
	TargetNVLink TargetKind = iota
	// TargetXBus is the socket-to-socket SMP bus between sockets A and B
	// (both directions).
	TargetXBus
	// TargetNIC is the node's injection link pair.
	TargetNIC
	// TargetGPULink is GPU A's links to its socket complex (both
	// directions).
	TargetGPULink
	// TargetHostMem is socket A's host memory engine.
	TargetHostMem
	// TargetGPU is device A itself (for GPUStraggle).
	TargetGPU
	// TargetRank is global MPI rank A (for RankPause; Node is ignored).
	TargetRank
)

func (tk TargetKind) String() string {
	switch tk {
	case TargetNVLink:
		return "nvlink"
	case TargetXBus:
		return "xbus"
	case TargetNIC:
		return "nic"
	case TargetGPULink:
		return "gpulink"
	case TargetHostMem:
		return "hostmem"
	case TargetGPU:
		return "gpu"
	case TargetRank:
		return "rank"
	}
	return fmt.Sprintf("TargetKind(%d)", int(tk))
}

// Target names one machine facility.
type Target struct {
	Node int        `json:"node,omitempty"`
	Kind TargetKind `json:"kind"`
	A    int        `json:"a,omitempty"` // GPU pair, socket pair, GPU, or rank depending on Kind
	B    int        `json:"b,omitempty"`
}

func (t Target) String() string {
	switch t.Kind {
	case TargetNVLink, TargetXBus:
		return fmt.Sprintf("n%d.%s.%d-%d", t.Node, t.Kind, t.A, t.B)
	case TargetNIC:
		return fmt.Sprintf("n%d.nic", t.Node)
	case TargetRank:
		return fmt.Sprintf("rank%d", t.A)
	default:
		return fmt.Sprintf("n%d.%s.%d", t.Node, t.Kind, t.A)
	}
}

// Event is one scheduled fault. At is measured from the moment the scenario
// is installed (normally virtual time zero, but installation may follow
// setup work that already advanced the clock, e.g. a placement
// microbenchmark).
type Event struct {
	At       sim.Time `json:"at"`
	Kind     Kind     `json:"kind"`
	Target   Target   `json:"target"`
	Factor   float64  `json:"factor,omitempty"`   // LinkDegrade: capacity multiplier; GPUStraggle: slowdown; Msg*: probability; LinkFlap: duty
	Duration sim.Time `json:"duration,omitempty"` // NICFlap outage length; RankPause length; LinkFail>0 auto-recovers; LinkFlap: cycle period
	Repeat   int      `json:"repeat,omitempty"`   // LinkFlap: number of down/up cycles (0 means 1)
}

// cycles returns the LinkFlap cycle count with the zero-value default.
func (e Event) cycles() int {
	if e.Repeat < 1 {
		return 1
	}
	return e.Repeat
}

func (e Event) String() string {
	s := fmt.Sprintf("t=%-9.4gs %-12s %s", e.At, e.Kind, e.Target)
	switch e.Kind {
	case MsgDrop, MsgCorrupt, MsgDup:
		return s + fmt.Sprintf(" p=%g", e.Factor)
	case LinkFlap:
		return s + fmt.Sprintf(" period=%gs duty=%g cycles=%d", e.Duration, e.Factor, e.cycles())
	}
	if e.Factor != 0 && (e.Kind == LinkDegrade || e.Kind == GPUStraggle) {
		s += fmt.Sprintf(" factor=%g", e.Factor)
	}
	if e.Duration > 0 {
		s += fmt.Sprintf(" duration=%gs", e.Duration)
	}
	return s
}

// Scenario is a named, scripted fault schedule. Seed keys the deterministic
// hash-based PRNG behind delivery faults (MsgDrop/MsgCorrupt/MsgDup): the
// same seed, topology, and traffic yield bit-identical fault decisions
// regardless of event-execution interleaving, because each decision hashes
// (seed, link, message identity) instead of consuming a shared stream.
type Scenario struct {
	Name   string  `json:"name,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Add appends an event and returns the scenario for chaining.
func (s *Scenario) Add(e Event) *Scenario {
	s.Events = append(s.Events, e)
	return s
}

// KillNVLink schedules a permanent failure of the NVLink between local GPUs
// a and b of node at time t; if recoverAfter > 0 the link heals that much
// later.
func (s *Scenario) KillNVLink(t sim.Time, node, a, b int, recoverAfter sim.Time) *Scenario {
	return s.Add(Event{At: t, Kind: LinkFail, Duration: recoverAfter,
		Target: Target{Node: node, Kind: TargetNVLink, A: a, B: b}})
}

// DegradeNIC degrades both directions of a node's NIC to factor × healthy.
func (s *Scenario) DegradeNIC(t sim.Time, node int, factor float64) *Scenario {
	return s.Add(Event{At: t, Kind: LinkDegrade, Factor: factor,
		Target: Target{Node: node, Kind: TargetNIC}})
}

// FlapNIC fails a node's NIC at t and recovers it after outage.
func (s *Scenario) FlapNIC(t sim.Time, node int, outage sim.Time) *Scenario {
	return s.Add(Event{At: t, Kind: NICFlap, Duration: outage,
		Target: Target{Node: node, Kind: TargetNIC}})
}

// DegradeXBus degrades the SMP bus between two sockets of a node.
func (s *Scenario) DegradeXBus(t sim.Time, node, s1, s2 int, factor float64) *Scenario {
	return s.Add(Event{At: t, Kind: LinkDegrade, Factor: factor,
		Target: Target{Node: node, Kind: TargetXBus, A: s1, B: s2}})
}

// StraggleGPU inflates a GPU's kernel costs by factor starting at t; if
// recoverAfter > 0 the device returns to nominal that much later.
func (s *Scenario) StraggleGPU(t sim.Time, node, gpu int, factor float64, recoverAfter sim.Time) *Scenario {
	return s.Add(Event{At: t, Kind: GPUStraggle, Factor: factor, Duration: recoverAfter,
		Target: Target{Node: node, Kind: TargetGPU, A: gpu}})
}

// PauseRank stalls a rank's MPI progress engine for d starting at t.
func (s *Scenario) PauseRank(t sim.Time, rank int, d sim.Time) *Scenario {
	return s.Add(Event{At: t, Kind: RankPause, Duration: d,
		Target: Target{Kind: TargetRank, A: rank}})
}

// KillGPU permanently kills local GPU gpu of node at time t. There is no
// recovery: the exchange layer must checkpoint (Options.CheckpointEvery) to
// survive it.
func (s *Scenario) KillGPU(t sim.Time, node, gpu int) *Scenario {
	return s.Add(Event{At: t, Kind: GPUFail,
		Target: Target{Node: node, Kind: TargetGPU, A: gpu}})
}

// KillRank permanently kills global MPI rank rank (and every GPU it drives)
// at time t. No recovery; requires exchange checkpointing.
func (s *Scenario) KillRank(t sim.Time, rank int) *Scenario {
	return s.Add(Event{At: t, Kind: RankFail,
		Target: Target{Kind: TargetRank, A: rank}})
}

// DropMsgs sets probability p of per-message drop on both directions of a
// node's NIC starting at t (p = 0 clears it).
func (s *Scenario) DropMsgs(t sim.Time, node int, p float64) *Scenario {
	return s.Add(Event{At: t, Kind: MsgDrop, Factor: p,
		Target: Target{Node: node, Kind: TargetNIC}})
}

// CorruptMsgs sets probability p of per-message payload corruption on both
// directions of a node's NIC starting at t (p = 0 clears it).
func (s *Scenario) CorruptMsgs(t sim.Time, node int, p float64) *Scenario {
	return s.Add(Event{At: t, Kind: MsgCorrupt, Factor: p,
		Target: Target{Node: node, Kind: TargetNIC}})
}

// DupMsgs sets probability p of per-message duplication on both directions
// of a node's NIC starting at t (p = 0 clears it).
func (s *Scenario) DupMsgs(t sim.Time, node int, p float64) *Scenario {
	return s.Add(Event{At: t, Kind: MsgDup, Factor: p,
		Target: Target{Node: node, Kind: TargetNIC}})
}

// LossyNIC applies drop, corrupt, and dup probabilities to a node's NIC in
// one call; zero probabilities add no event.
func (s *Scenario) LossyNIC(t sim.Time, node int, drop, corrupt, dup float64) *Scenario {
	if drop > 0 {
		s.DropMsgs(t, node, drop)
	}
	if corrupt > 0 {
		s.CorruptMsgs(t, node, corrupt)
	}
	if dup > 0 {
		s.DupMsgs(t, node, dup)
	}
	return s
}

// FlapNICPeriodic flaps a node's NIC starting at t: each cycle is period
// long with the NIC down for the first duty (in (0,1)) of it, repeated
// cycles times.
func (s *Scenario) FlapNICPeriodic(t sim.Time, node int, period sim.Time, duty float64, cycles int) *Scenario {
	return s.Add(Event{At: t, Kind: LinkFlap, Duration: period, Factor: duty, Repeat: cycles,
		Target: Target{Node: node, Kind: TargetNIC}})
}

// Validate statically checks the scenario without a machine: every event
// must have a known Kind and non-negative At, Factor, and Duration.
// Injector.Install runs it automatically (before the machine-shape checks);
// callers composing scenarios programmatically can call it early for better
// error locality.
func (s *Scenario) Validate() error {
	for i, ev := range s.Events {
		if ev.Kind < 0 || ev.Kind >= numKinds {
			return fmt.Errorf("fault: scenario %q event %d: unknown kind %d", s.Name, i, int(ev.Kind))
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: scenario %q event %d: negative event time %g", s.Name, i, ev.At)
		}
		switch ev.Kind {
		case MsgDrop, MsgCorrupt, MsgDup:
			if ev.Factor < 0 || ev.Factor > 1 {
				return fmt.Errorf("fault: scenario %q event %d: %s probability %g outside [0,1]", s.Name, i, ev.Kind, ev.Factor)
			}
		case LinkFlap:
			if ev.Duration <= 0 {
				return fmt.Errorf("fault: scenario %q event %d: non-positive flap period %g", s.Name, i, ev.Duration)
			}
			if ev.Factor <= 0 || ev.Factor >= 1 {
				return fmt.Errorf("fault: scenario %q event %d: flap duty cycle %g outside (0,1)", s.Name, i, ev.Factor)
			}
			if ev.Repeat < 0 {
				return fmt.Errorf("fault: scenario %q event %d: negative flap cycle count %d", s.Name, i, ev.Repeat)
			}
		default:
			if ev.Factor < 0 {
				return fmt.Errorf("fault: scenario %q event %d: negative factor %g", s.Name, i, ev.Factor)
			}
			if ev.Duration < 0 {
				return fmt.Errorf("fault: scenario %q event %d: negative duration %g", s.Name, i, ev.Duration)
			}
		}
	}
	return nil
}

// HasFatal reports whether the scenario contains permanent-loss events
// (GPUFail or RankFail), which require the exchange recovery layer
// (Options.CheckpointEvery > 0) to survive.
func (s *Scenario) HasFatal() bool {
	for _, ev := range s.Events {
		if ev.Kind == GPUFail || ev.Kind == RankFail {
			return true
		}
	}
	return false
}

// HasDelivery reports whether the scenario contains probabilistic delivery
// faults (MsgDrop, MsgCorrupt, or MsgDup), which require the MPI
// reliable-delivery envelope to remain correct.
func (s *Scenario) HasDelivery() bool {
	for _, ev := range s.Events {
		switch ev.Kind {
		case MsgDrop, MsgCorrupt, MsgDup:
			return true
		}
	}
	return false
}

// HasFlap reports whether the scenario contains periodic link flapping
// (LinkFlap), the pattern the exchange layer's quarantine hysteresis exists
// to absorb.
func (s *Scenario) HasFlap() bool {
	for _, ev := range s.Events {
		if ev.Kind == LinkFlap {
			return true
		}
	}
	return false
}

// Record is one applied fault action, for timeline reports. Kind classifies
// the action that was actually taken (a NICFlap event, for instance, records
// a nic-flap action at outage start and a link-recover action at the end).
type Record struct {
	At   sim.Time
	Kind string
	Desc string
}

func (r Record) String() string { return fmt.Sprintf("t=%-9.4gs %s", r.At, r.Desc) }

// Injector schedules a scenario's events on the engine and applies them to
// the live machine. RT may be nil if the scenario has no GPU targets; W may
// be nil if it has no rank targets.
type Injector struct {
	M   *machine.Machine
	RT  *cudart.Runtime
	W   *mpi.World
	log []Record

	// OnRecord, when set, observes every applied fault action as it is
	// recorded (in virtual-time order). It must be passive: telemetry, not
	// control flow.
	OnRecord func(Record)
}

// NewInjector binds an injector to the simulated hardware.
func NewInjector(m *machine.Machine, rt *cudart.Runtime, w *mpi.World) *Injector {
	return &Injector{M: m, RT: rt, W: w}
}

// Log returns the applied-fault timeline in application order.
func (inj *Injector) Log() []Record { return inj.log }

// Install validates every event (Scenario.Validate plus the machine-shape
// checks) and schedules the scenario on the engine. It must be called before
// (or during) Engine.Run; events in the past panic inside the engine as
// usual.
//
// Ordering contract: events apply in ascending At; events sharing the same
// virtual timestamp apply in their Events-list (insertion) order. The sort
// is stable, so the tie-break is an explicit guarantee scenario authors can
// rely on — e.g. a LinkRecover inserted before a LinkDegrade at the same
// instant always restores first.
func (inj *Injector) Install(sc *Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	for i, ev := range sc.Events {
		if err := inj.validate(ev); err != nil {
			return fmt.Errorf("fault: scenario %q event %d: %w", sc.Name, i, err)
		}
	}
	if sc.HasDelivery() && inj.W != nil {
		// Delivery faults are sampled by the MPI reliable-delivery layer;
		// installing them arms it with the scenario's seed.
		inj.W.Reliable = true
		inj.W.DeliverySeed = sc.Seed
	}
	ordered := append([]Event(nil), sc.Events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for _, ev := range ordered {
		ev := ev
		inj.M.Eng.After(ev.At, func() { inj.apply(ev) })
	}
	return nil
}

func (inj *Injector) validate(ev Event) error {
	if ev.Kind < 0 || ev.Kind >= numKinds {
		return fmt.Errorf("unknown kind %d", int(ev.Kind))
	}
	if ev.At < 0 {
		return fmt.Errorf("negative event time %g", ev.At)
	}
	tg := ev.Target
	if tg.Kind != TargetRank {
		if tg.Node < 0 || tg.Node >= len(inj.M.Nodes) {
			return fmt.Errorf("node %d out of range", tg.Node)
		}
	}
	switch tg.Kind {
	case TargetNVLink:
		node := inj.M.Nodes[tg.Node]
		if ab, ba := node.NVLinkPair(tg.A, tg.B); ab == nil || ba == nil {
			return fmt.Errorf("GPUs %d and %d of node %d share no direct NVLink", tg.A, tg.B, tg.Node)
		}
	case TargetXBus:
		node := inj.M.Nodes[tg.Node]
		if ab, ba := node.XBusPair(tg.A, tg.B); ab == nil || ba == nil {
			return fmt.Errorf("sockets %d and %d of node %d share no X-Bus", tg.A, tg.B, tg.Node)
		}
	case TargetGPULink, TargetGPU:
		if tg.A < 0 || tg.A >= inj.M.Nodes[tg.Node].Config.GPUs() {
			return fmt.Errorf("GPU %d out of range on node %d", tg.A, tg.Node)
		}
		if tg.Kind == TargetGPU && inj.RT == nil {
			return fmt.Errorf("GPU target needs a CUDA runtime")
		}
	case TargetHostMem:
		if tg.A < 0 || tg.A >= inj.M.Nodes[tg.Node].Config.Sockets {
			return fmt.Errorf("socket %d out of range on node %d", tg.A, tg.Node)
		}
	case TargetRank:
		if inj.W == nil {
			return fmt.Errorf("rank target needs an MPI world")
		}
		if tg.A < 0 || tg.A >= inj.W.Size() {
			return fmt.Errorf("rank %d out of range", tg.A)
		}
	}
	switch ev.Kind {
	case LinkDegrade:
		if ev.Factor <= 0 {
			return fmt.Errorf("degrade factor %g <= 0", ev.Factor)
		}
	case GPUStraggle:
		if tg.Kind != TargetGPU {
			return fmt.Errorf("straggle needs a GPU target, got %s", tg.Kind)
		}
		if ev.Factor < 1 {
			return fmt.Errorf("straggle factor %g < 1", ev.Factor)
		}
	case RankPause:
		if tg.Kind != TargetRank {
			return fmt.Errorf("pause needs a rank target, got %s", tg.Kind)
		}
		if ev.Duration <= 0 {
			return fmt.Errorf("pause duration %g <= 0", ev.Duration)
		}
	case NICFlap:
		if tg.Kind != TargetNIC {
			return fmt.Errorf("flap needs a NIC target, got %s", tg.Kind)
		}
		if ev.Duration <= 0 {
			return fmt.Errorf("flap outage %g <= 0", ev.Duration)
		}
	case GPUFail:
		if tg.Kind != TargetGPU {
			return fmt.Errorf("gpu-fail needs a GPU target, got %s", tg.Kind)
		}
	case RankFail:
		if tg.Kind != TargetRank {
			return fmt.Errorf("rank-fail needs a rank target, got %s", tg.Kind)
		}
		if inj.RT == nil {
			return fmt.Errorf("rank-fail needs a CUDA runtime (it kills the rank's devices)")
		}
		if inj.W.Size()%len(inj.M.Nodes) != 0 {
			return fmt.Errorf("ranks (%d) not evenly spread over nodes (%d)", inj.W.Size(), len(inj.M.Nodes))
		}
	case MsgDrop, MsgCorrupt, MsgDup:
		if inj.W == nil {
			return fmt.Errorf("%s needs an MPI world (loss is sampled at message delivery)", ev.Kind)
		}
	}
	switch ev.Kind {
	case LinkDegrade, LinkFail, LinkRecover, NICFlap, LinkFlap, MsgDrop, MsgCorrupt, MsgDup:
		if tg.Kind == TargetGPU || tg.Kind == TargetRank {
			return fmt.Errorf("%s cannot target %s", ev.Kind, tg.Kind)
		}
	}
	return nil
}

// links resolves a link-class target to the directed links it covers.
func (inj *Injector) links(tg Target) []*flownet.Link {
	node := inj.M.Nodes[tg.Node]
	switch tg.Kind {
	case TargetNVLink:
		ab, ba := node.NVLinkPair(tg.A, tg.B)
		return []*flownet.Link{ab, ba}
	case TargetXBus:
		ab, ba := node.XBusPair(tg.A, tg.B)
		return []*flownet.Link{ab, ba}
	case TargetNIC:
		out, in := node.NIC()
		return []*flownet.Link{out, in}
	case TargetGPULink:
		up, down := node.GPUSocketLinks(tg.A)
		return []*flownet.Link{up, down}
	case TargetHostMem:
		return []*flownet.Link{node.HostMem(tg.A)}
	}
	panic("fault: no links for target " + tg.String())
}

func (inj *Injector) record(kind Kind, format string, args ...any) {
	rec := Record{At: inj.M.Eng.Now(), Kind: kind.String(), Desc: fmt.Sprintf(format, args...)}
	inj.log = append(inj.log, rec)
	inj.M.Eng.Tracef("fault: %s", rec.Desc)
	if inj.OnRecord != nil {
		inj.OnRecord(rec)
	}
}

func (inj *Injector) apply(ev Event) {
	net := inj.M.Net
	switch ev.Kind {
	case LinkDegrade:
		for _, l := range inj.links(ev.Target) {
			net.DegradeLink(l, ev.Factor)
		}
		inj.record(LinkDegrade, "degrade %s to %g x healthy", ev.Target, ev.Factor)

	case LinkFail:
		for _, l := range inj.links(ev.Target) {
			net.FailLink(l)
		}
		inj.record(LinkFail, "fail %s", ev.Target)
		if ev.Duration > 0 {
			inj.M.Eng.After(ev.Duration, func() {
				for _, l := range inj.links(ev.Target) {
					net.RestoreLink(l)
				}
				inj.record(LinkRecover, "recover %s", ev.Target)
			})
		}

	case LinkRecover:
		for _, l := range inj.links(ev.Target) {
			net.RestoreLink(l)
		}
		inj.record(LinkRecover, "recover %s", ev.Target)

	case NICFlap:
		for _, l := range inj.links(ev.Target) {
			net.FailLink(l)
		}
		inj.record(NICFlap, "flap %s down", ev.Target)
		inj.M.Eng.After(ev.Duration, func() {
			for _, l := range inj.links(ev.Target) {
				net.RestoreLink(l)
			}
			inj.record(LinkRecover, "flap %s recovered", ev.Target)
		})

	case GPUStraggle:
		dev := inj.RT.DeviceAt(ev.Target.Node, ev.Target.A)
		dev.SetSlowFactor(ev.Factor)
		inj.record(GPUStraggle, "straggle %s at %gx", ev.Target, ev.Factor)
		if ev.Duration > 0 {
			inj.M.Eng.After(ev.Duration, func() {
				dev.SetSlowFactor(1)
				inj.record(GPUStraggle, "straggle %s recovered", ev.Target)
			})
		}

	case RankPause:
		inj.W.Rank(ev.Target.A).PauseProgress(ev.Duration)
		inj.record(RankPause, "pause %s for %gs", ev.Target, ev.Duration)

	case GPUFail:
		inj.RT.DeviceAt(ev.Target.Node, ev.Target.A).Fail()
		inj.record(GPUFail, "permanent loss of %s", ev.Target)

	case MsgDrop, MsgCorrupt, MsgDup:
		for _, l := range inj.links(ev.Target) {
			ls := l.Loss()
			switch ev.Kind {
			case MsgDrop:
				ls.Drop = ev.Factor
			case MsgCorrupt:
				ls.Corrupt = ev.Factor
			case MsgDup:
				ls.Dup = ev.Factor
			}
			l.SetLoss(ls)
		}
		inj.record(ev.Kind, "%s p=%g on %s", ev.Kind, ev.Factor, ev.Target)

	case LinkFlap:
		period := ev.Duration
		downFor := sim.Time(float64(period) * ev.Factor)
		cycles := ev.cycles()
		for c := 0; c < cycles; c++ {
			c := c
			off := sim.Time(c) * period
			inj.M.Eng.After(off, func() {
				for _, l := range inj.links(ev.Target) {
					net.FailLink(l)
				}
				inj.record(LinkFlap, "flap %s down (cycle %d/%d)", ev.Target, c+1, cycles)
			})
			inj.M.Eng.After(off+downFor, func() {
				for _, l := range inj.links(ev.Target) {
					net.RestoreLink(l)
				}
				inj.record(LinkRecover, "flap %s up (cycle %d/%d)", ev.Target, c+1, cycles)
			})
		}

	case RankFail:
		r := inj.W.Rank(ev.Target.A)
		r.Fail()
		// The rank's process is gone, so every device it was driving is
		// lost with it.
		rpn := inj.W.Size() / len(inj.M.Nodes)
		gpr := inj.M.Nodes[r.Node].Config.GPUs() / rpn
		lo := (ev.Target.A % rpn) * gpr
		for g := lo; g < lo+gpr; g++ {
			inj.RT.DeviceAt(r.Node, g).Fail()
		}
		inj.record(RankFail, "permanent loss of %s (GPUs %d-%d of node %d)", ev.Target, lo, lo+gpr-1, r.Node)
	}
}
