package exchange

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// End-to-end halo verification (the backstop above the MPI reliable-delivery
// envelope). After each exchange, at the coordinator's safe point, every
// halo quadrant that crossed the inter-node wire is checksummed on both
// ends: the sender's send region against the receiver's landed receive
// region, hashed in the same row order Pack serializes. Quadrants that
// mismatch — a delivery that exhausted its retransmission budget with a
// corrupt payload — are selectively re-exchanged through the ordinary plan
// machinery (and the envelope again), so only the damaged bytes are resent.
// After verifyMaxRounds of bad luck the remaining quadrants are repaired
// out-of-band (a direct copy, modelling a reliable side channel), so no
// corrupted quadrant ever survives an iteration, even at loss probability 1.

// verifyMaxRounds caps selective re-exchange rounds per iteration before the
// out-of-band repair takes over.
const verifyMaxRounds = 8

// verifier holds the end-to-end verification state and counters.
type verifier struct {
	e           *Exchanger
	reexchanges int // quadrants selectively re-exchanged
	rounds      int // repair rounds that found at least one bad quadrant
	forced      int // quadrants repaired out-of-band after the round cap
	nextKey     int // per-round iteration keys, disjoint from real iterations
}

func newVerifier(e *Exchanger) *verifier {
	return &verifier{e: e, nextKey: 1 << 30}
}

// quadrantBad reports whether a plan's landed halo differs from what its
// source holds. Only inter-node plans can be damaged: intra-node methods
// never cross a lossy wire (loss is sampled by the reliable envelope, which
// wraps inter-node messages only).
func (v *verifier) quadrantBad(pl *Plan) bool {
	want := pl.Src.Dom.RegionChecksum(pl.Src.Dom.SendRegion(pl.Dir))
	got := pl.Dst.Dom.RegionChecksum(pl.Dst.Dom.RecvRegion(neg(pl.Dir)))
	return want != got
}

// scan returns the damaged inter-node plans, expanded to whole aggregate
// groups (an aggregated message is one MPI send; re-exchanging it re-stages
// every member plan).
func (v *verifier) scan() []*Plan {
	e := v.e
	var bad []*Plan
	inBad := make(map[int]bool)
	for _, pl := range e.Plans {
		if pl.Src.NodeID == pl.Dst.NodeID || inBad[pl.ID] {
			continue
		}
		if !v.quadrantBad(pl) {
			continue
		}
		if g := pl.group; g != nil {
			for _, gp := range g.plans {
				if !inBad[gp.ID] {
					inBad[gp.ID] = true
					bad = append(bad, gp)
				}
			}
			continue
		}
		inBad[pl.ID] = true
		bad = append(bad, pl)
	}
	return bad
}

// forceRepair copies the quadrant directly, bypassing the wire: pack from
// the source region, unpack into the destination halo.
func (v *verifier) forceRepair(pl *Plan) {
	if tel := v.e.Opts.Telemetry; tel != nil {
		tel.AttributeAlloc(telemetry.FeatureVerify, pl.Bytes)
	}
	buf := make([]byte, pl.Bytes)
	pl.Src.Dom.Pack(buf, pl.Dir)
	pl.Dst.Dom.Unpack(buf, neg(pl.Dir))
}

// verifyTick runs on the coordinator at the inter-iteration safe point,
// before adaptation: every rank has passed the timing allreduce and none can
// leave the next barrier, so no plan is mid-flight while quadrants are
// checksummed and re-exchanged. Compute kernels are gated on the same safe
// point (RunWithCompute holds every rank at a barrier until the coordinator
// finishes), so the checksummed regions cannot mutate under the scan.
func (e *Exchanger) verifyTick(p *sim.Proc, iter int) {
	if !e.Opts.RealData {
		return // nothing to checksum in time-only mode
	}
	v := e.verifier
	tel := e.Opts.Telemetry
	if tel != nil {
		// Ledger-only attribution (no span, no event): the whole safe-point
		// stall — checksum epsilons, re-exchange rounds, out-of-band repairs
		// — is virtual time the verify feature added to the iteration.
		t0 := e.Eng.Now()
		defer func() { tel.AttributeSeconds(telemetry.FeatureVerify, e.Eng.Now()-t0) }()
	}
	// Deferred payload commits (unpacks, checkpoint snapshots) flush when
	// their instant ends; crossing an instant boundary before each checksum
	// pass guarantees the reads observe fully landed bytes under parallel
	// payload workers.
	eps := e.M.Params.MPIInterLatency
	for round := 0; ; round++ {
		p.Sleep(eps)
		bad := v.scan()
		if len(bad) == 0 {
			return
		}
		v.rounds++
		now := e.Eng.Now()
		if round >= verifyMaxRounds {
			for _, pl := range bad {
				v.forceRepair(pl)
				v.forced++
			}
			e.Eng.Tracef("verify: iter %d round %d: %d quadrants repaired out-of-band", iter, round, len(bad))
			if tel != nil {
				tel.VerifyRound(now, iter, round, len(bad), true)
			}
			continue // the next scan confirms the repair and returns
		}
		if tel != nil {
			tel.VerifyRound(now, iter, round, len(bad), false)
		}
		e.Eng.Tracef("verify: iter %d round %d: re-exchanging %d quadrants", iter, round, len(bad))
		// Selective re-exchange through the ordinary plan machinery under a
		// fresh iteration key (group rendezvous state must not collide with
		// real iterations). Receives first, as in runIteration.
		key := v.nextKey
		v.nextKey++
		d := &stepDriver{gate: sim.NewGate(p)}
		for _, pl := range bad {
			for _, st := range e.recverSteps(p, pl, key) {
				d.add(st)
			}
		}
		for _, pl := range bad {
			for _, st := range e.senderSteps(p, pl, key) {
				d.add(st)
			}
		}
		d.drain(p)
		v.reexchanges += len(bad)
		if e.RT.OnOp != nil {
			end := e.Eng.Now()
			for _, pl := range bad {
				e.RT.Record(cudart.OpRecord{Kind: cudart.OpReExchange,
					Name: fmt.Sprintf("reex.p%d", pl.ID), Device: -1, Stream: "verify",
					Start: now, End: end, Bytes: pl.Bytes})
			}
		}
	}
}
