package exchange

import (
	"testing"

	"github.com/nodeaware/stencil/internal/part"
)

// multiNodeOpts builds a real-data two-node configuration so inter-node
// STAGED messages exist.
func multiNodeOpts() Options {
	return Options{
		Nodes:        2,
		RanksPerNode: 6,
		Domain:       part.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       1,
		Quantities:   2,
		ElemSize:     4,
		Caps:         CapsAll(),
		NodeAware:    true,
		RealData:     true,
	}
}

func TestAggregateRemoteCorrectness(t *testing.T) {
	opts := multiNodeOpts()
	opts.AggregateRemote = true
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.groups) == 0 {
		t.Fatal("no aggregated groups built for a two-node job")
	}
	fillGlobal(e)
	e.Run(2)
	verifyHalos(t, e)
}

func TestAggregateRemoteGrouping(t *testing.T) {
	opts := multiNodeOpts()
	opts.AggregateRemote = true
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]bool)
	var groupedPlans, groupedBytes int64
	for _, g := range e.groups {
		key := [2]int{g.srcRank, g.dstRank}
		if seen[key] {
			t.Errorf("rank pair %v has two groups", key)
		}
		seen[key] = true
		if g.srcRank == g.dstRank {
			t.Error("self-pair group")
		}
		var sum int64
		for _, p := range g.plans {
			if p.group != g {
				t.Error("plan group back-pointer wrong")
			}
			if p.Method != MethodStaged || p.Src.NodeID == p.Dst.NodeID {
				t.Error("non-remote-staged plan in group")
			}
			sum += p.Bytes
			groupedPlans++
		}
		if sum != g.bytes {
			t.Errorf("group bytes %d != plan sum %d", g.bytes, sum)
		}
		groupedBytes += g.bytes
		if g.hostSend.Size() != g.bytes || g.hostRecv.Size() != g.bytes {
			t.Error("group buffer sizes wrong")
		}
	}
	// Every inter-node staged plan must be grouped.
	for _, p := range e.Plans {
		if p.Method == MethodStaged && p.Src.NodeID != p.Dst.NodeID && p.group == nil {
			t.Error("ungrouped inter-node staged plan")
		}
		// Intra-node and non-staged plans must not be grouped.
		if p.group != nil && (p.Method != MethodStaged || p.Src.NodeID == p.Dst.NodeID) {
			t.Error("grouped plan that should not be")
		}
	}
	if groupedPlans == 0 || groupedBytes == 0 {
		t.Error("aggregation grouped nothing")
	}
}

func TestAggregateReducesMessageCount(t *testing.T) {
	// The point of aggregation: drastically fewer MPI messages. Count
	// logical sends: ungrouped = one per inter-node plan, grouped = one per
	// rank pair.
	opts := multiNodeOpts()
	opts.RealData = false
	opts.Caps = CapsRemote() // everything staged
	base, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	interNode := 0
	for _, p := range base.Plans {
		if p.Src.NodeID != p.Dst.NodeID {
			interNode++
		}
	}
	opts.AggregateRemote = true
	agg, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.groups) >= interNode {
		t.Errorf("aggregation produced %d messages for %d plans", len(agg.groups), interNode)
	}
	t.Logf("inter-node messages: %d plans -> %d aggregated", interNode, len(agg.groups))
}

func TestNoOverlapCorrectnessAndSlowdown(t *testing.T) {
	opts := multiNodeOpts()
	opts.NoOverlap = true
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	e.Run(1)
	verifyHalos(t, e)

	// Performance: serial transfers must be slower than overlapped on a
	// meaningful single-node workload (§III-D: overlap is crucial).
	run := func(noOverlap bool) float64 {
		o := Options{
			Nodes:        1,
			RanksPerNode: 6,
			Domain:       part.Dim3{X: 1362, Y: 1362, Z: 1362},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         CapsAll(),
			NodeAware:    true,
			NoOverlap:    noOverlap,
		}
		ex, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		return ex.Run(2).Min()
	}
	serial := run(true)
	overlapped := run(false)
	t.Logf("overlapped=%.3fms serial=%.3fms (%.1fx)", overlapped*1e3, serial*1e3, serial/overlapped)
	if serial <= overlapped {
		t.Errorf("serial exchange (%.4f) should be slower than overlapped (%.4f)", serial, overlapped)
	}
}

func TestEmpiricalPlacementWorks(t *testing.T) {
	opts := Options{
		Nodes:              1,
		RanksPerNode:       6,
		Domain:             part.Dim3{X: 1440, Y: 1452, Z: 700},
		Radius:             2,
		Quantities:         4,
		ElemSize:           4,
		Caps:               CapsAll(),
		NodeAware:          true,
		EmpiricalPlacement: true,
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(2)
	if st.Min() <= 0 {
		t.Fatal("no exchange time")
	}
	// On this machine model the measured matrix preserves the NVLink >> SYS
	// ordering, so the empirical QAP should pick an assignment as good as
	// the theoretical one.
	theo, err := New(Options{
		Nodes: 1, RanksPerNode: 6, Domain: opts.Domain,
		Radius: 2, Quantities: 4, ElemSize: 4, Caps: CapsAll(), NodeAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := theo.Run(2)
	ratio := st.Min() / ts.Min()
	if ratio > 1.05 || ratio < 0.95 {
		t.Errorf("empirical placement time differs from theoretical by %.2fx", ratio)
	}
}

func TestFairnessHorizonOption(t *testing.T) {
	run := func(horizon int) float64 {
		o := multiNodeOpts()
		o.RealData = false
		o.FairnessHorizon = horizon
		e, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(1).Min()
	}
	exact := run(-1)
	bounded := run(1)
	if exact <= 0 || bounded <= 0 {
		t.Fatal("no time measured")
	}
	// The bounded-horizon approximation stays close to exact on a small job.
	ratio := bounded / exact
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("bounded horizon deviates %.2fx from exact", ratio)
	}
}

func TestAggregatedExchangeFasterAtScaleOrClose(t *testing.T) {
	// Aggregation trades pipelining for fewer messages; with our message
	// sizes it should not be dramatically slower, and message count drops.
	run := func(agg bool) float64 {
		o := Options{
			Nodes:           4,
			RanksPerNode:    6,
			Domain:          part.Dim3{X: 2163, Y: 2163, Z: 2163},
			Radius:          2,
			Quantities:      4,
			ElemSize:        4,
			Caps:            CapsAll(),
			NodeAware:       true,
			AggregateRemote: agg,
		}
		e, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(1).Min()
	}
	plain := run(false)
	agg := run(true)
	t.Logf("4-node exchange: plain=%.3fms aggregated=%.3fms", plain*1e3, agg*1e3)
	if agg > plain*1.5 {
		t.Errorf("aggregation catastrophically slower: %.4f vs %.4f", agg, plain)
	}
}
