package exchange

// This file is the failure-recovery layer: a deterministic virtual-time
// checkpoint scheduler plus rollback recovery from permanent GPU and rank
// loss (fault.GPUFail / fault.RankFail). See DESIGN.md "Failure model".
//
// Semantics are fail-stop with detection at the next consistency point. A
// device that dies mid-iteration keeps "executing" in virtual time — the
// zombie window; real clusters discover death through timeouts, not
// instantly — the doomed iteration completes, and the coordinator detects
// the loss at the safe point after the timing allreduce. The next barrier is
// the recovery line: dead ranks leave the job, the coordinator (re-elected
// as the lowest surviving rank) performs recovery, survivors wait. Recovery
// (1) evicts dead ranks from the collectives, (2) re-runs phase-2 placement
// over the surviving capability matrix (placement.PlaceEvict), (3) restores
// every live subdomain from the last checkpoint epoch — interiors AND
// halos, so any state the doomed attempt corrupted is wiped — with
// subdomains whose home changed crossing the host fabric as real migration
// flows, (4) rebuilds every transfer plan against the surviving topology,
// and (5) resumes from the epoch's iteration. Replay from a common epoch is
// deterministic, which makes the recovered run's final halo bytes identical
// to a fault-free run of the same iteration count (asserted by the chaos
// test at the repository root).
//
// Checkpoints live in host memory on the subdomain's node, written by real
// D2H flows that contend for link bandwidth, so checkpoint overhead shows
// in the virtual clock. The model assumes checkpoint storage survives the
// death of the rank process that wrote it (on a real machine: a parallel
// file system, NVM, or a buddy rank's memory).

import (
	"fmt"
	"strconv"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/placement"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// RecoveryRecord is one recovery-layer action, for timeline reports.
type RecoveryRecord struct {
	At   sim.Time
	Kind string // "checkpoint", "failure", "rollback", "migrate", "resume"
	Desc string
}

func (r RecoveryRecord) String() string {
	return fmt.Sprintf("t=%-9.4gs %-10s %s", r.At, r.Kind, r.Desc)
}

// ckptSub is one subdomain's checkpoint slot: where the last snapshot lives
// and (in real-data mode) its bytes.
type ckptSub struct {
	node, socket int      // host memory holding the snapshot
	data         [][]byte // snapshot bytes; nil in time-only mode
}

// recovery is the per-run checkpoint/rollback state, owned by the
// coordinator but read by every rank at the recovery line.
type recovery struct {
	e          *Exchanger
	every      int
	iterations int
	epoch      int // checkpoints taken so far
	epochIter  int // iteration the last epoch restarts from
	subs       []ckptSub
	pending    *recoveryPlan
	planSeq    int
	runSpan    *telemetry.Span

	rollbacks int
	migrated  int // subdomain moves across all recoveries
}

// recoveryPlan is one detected failure's recovery order, published by the
// coordinator at the safe point and consumed by every rank at the next
// barrier.
type recoveryPlan struct {
	id         int
	dead       []bool // per rank: true = exits at the recovery line
	resumeIter int
	coord      int // new coordinator: lowest surviving rank
	done       *sim.Signal
	resolved   bool
}

func newRecovery(e *Exchanger, iterations int, runSpan *telemetry.Span) *recovery {
	rc := &recovery{e: e, every: e.Opts.CheckpointEvery, iterations: iterations, runSpan: runSpan}
	rc.subs = make([]ckptSub, len(e.Subs))
	return rc
}

func (rc *recovery) record(kind, format string, args ...any) {
	e := rc.e
	rec := RecoveryRecord{At: e.Eng.Now(), Kind: kind, Desc: fmt.Sprintf(format, args...)}
	e.RecoveryLog = append(e.RecoveryLog, rec)
	e.Eng.Tracef("recover: %s", rec.Desc)
	if tel := e.Opts.Telemetry; tel != nil {
		tel.Event(rec.At, "recovery", telemetry.F("action", kind), telemetry.F("desc", rec.Desc))
	}
}

// atSafePoint runs failure detection on the coordinator at the safe point:
// after the timing allreduce of iteration it, before the next barrier. No
// rank can pass that barrier until the coordinator enters it, so a plan
// published here is seen consistently by every rank at the barrier's exit.
// Checkpoints do NOT happen here — at this point other ranks may already be
// computing iteration it's stencil update, so a snapshot would tear; they
// happen at the loop top, where the barrier guarantees global quiescence
// (see checkpointDue / the run loop).
func (rc *recovery) atSafePoint(it int) {
	rc.detect()
}

// checkpointDue reports whether a checkpoint collective must run before
// iteration it. The predicate is a pure function of it, so every rank
// derives the same schedule without coordination: epoch 0 before the first
// iteration, then every K-th iteration boundary. After a rollback the
// resume iteration is a past epoch boundary, so the restored state is
// re-checkpointed — a cheap way to keep the epoch current under repeated
// failures.
func (rc *recovery) checkpointDue(it int) bool {
	return it%rc.every == 0
}

// detect scans for permanent losses and, on a sighting, publishes the
// recovery plan every rank consumes at the next barrier. Detection is
// edge-triggered by construction: after a recovery no subdomain sits on a
// dead device and every failed rank is deactivated, so the same loss is
// never detected twice. Returns whether an unconsumed plan is pending.
func (rc *recovery) detect() bool {
	if rc.pending != nil && !rc.pending.resolved {
		return true
	}
	e := rc.e
	failed := false
	for _, s := range e.Subs {
		if s.Dev.Dead() {
			failed = true
			break
		}
	}
	if !failed {
		for r := 0; r < e.W.Size(); r++ {
			if e.W.Rank(r).Failed() && !e.W.Deactivated(r) {
				failed = true
				break
			}
		}
	}
	if !failed {
		return false
	}
	dead := make([]bool, e.W.Size())
	coord := -1
	for r := 0; r < e.W.Size(); r++ {
		if e.W.Deactivated(r) {
			continue
		}
		if e.W.Rank(r).Failed() {
			dead[r] = true
			continue
		}
		if coord < 0 {
			coord = r
		}
	}
	if coord < 0 {
		panic("exchange: every rank lost; nothing left to recover")
	}
	rc.planSeq++
	rc.pending = &recoveryPlan{
		id:         rc.planSeq,
		dead:       dead,
		resumeIter: rc.epochIter,
		coord:      coord,
		done:       sim.NewSignal(e.Eng, fmt.Sprintf("recovery.%d", rc.planSeq)),
	}
	rc.record("failure", "permanent loss detected; rollback to iteration %d ordered (coordinator: rank %d)",
		rc.epochIter, coord)
	return true
}

// atRecoveryLine is the consistency protocol, run by every rank right after
// each barrier. If a plan this rank has not yet consumed is pending: dead
// ranks leave the job, the new coordinator performs the recovery, survivors
// wait for it; all survivors then resume from the plan's epoch iteration.
// The engine drains every runnable proc before advancing time, so all ranks
// observe the plan at the same barrier instant; the recovery's restore
// flows complete strictly later, making the done-signal handshake safe.
func (rc *recovery) atRecoveryLine(p *sim.Proc, rank int, lastHandled *int) (exit bool, resume int) {
	rp := rc.pending
	if rp == nil || rp.id <= *lastHandled {
		return false, -1
	}
	*lastHandled = rp.id
	if rp.dead[rank] {
		return true, 0
	}
	if rank == rp.coord {
		rc.performRecovery(p, rp)
		rp.resolved = true
		rp.done.Fire()
	} else {
		rp.done.Wait(p)
	}
	return false, rp.resumeIter
}

// checkpoint snapshots every subdomain to its node's host memory: one D2H
// flow per subdomain, all concurrent, contending on the GPU-socket and
// host-memory links exactly as bulk checkpoint traffic would. The byte
// snapshot commits at each flow's virtual completion time under the owning
// device's key, so parallel payload workers keep results bit-identical.
// The caller (run loop) guarantees every rank is parked at a barrier, so
// the snapshot is globally consistent. nextIter is the iteration replay
// resumes from if this epoch is restored.
func (rc *recovery) checkpoint(p *sim.Proc, nextIter int) {
	e := rc.e
	tel := e.Opts.Telemetry
	t0 := e.Eng.Now()
	var sp *telemetry.Span
	if tel != nil {
		sp = tel.StartSpanFeature("checkpoint", rc.runSpan, t0, telemetry.FeatureRecovery)
	}
	var done []*sim.Signal
	var total int64
	for i, s := range e.Subs {
		cs := &rc.subs[i]
		sub := s
		rk := e.W.Rank(sub.Rank)
		cs.node, cs.socket = sub.NodeID, rk.Socket
		bytes := sub.Dom.AllocBytes()
		total += bytes
		name := fmt.Sprintf("ckpt.e%d.sub%d", rc.epoch, i)
		path := e.M.Nodes[sub.NodeID].DevToHostPath(sub.LocalGPU, cs.socket)
		f := e.M.Net.StartFlow(name, path, float64(bytes))
		dev := int32(sub.Dev.ID)
		devID := sub.Dev.ID
		f.Done().OnFire(func() {
			end := e.Eng.Now()
			e.Eng.Defer(func() { cs.data = sub.Dom.Snapshot(cs.data) }, dev, dev)
			e.RT.Record(cudart.OpRecord{Kind: cudart.OpMemcpyD2H, Name: name,
				Device: devID, Stream: "ckpt", Start: t0, End: end, Bytes: bytes})
		})
		done = append(done, f.Done())
	}
	sim.WaitAll(p, done...)
	epoch := rc.epoch
	rc.epoch++
	rc.epochIter = nextIter
	rc.record("checkpoint", "epoch %d committed: %d subdomains, %d bytes; restart iteration %d",
		epoch, len(e.Subs), total, nextIter)
	if tel != nil {
		// Snapshot copies land in host memory on behalf of the recovery
		// feature: one retained buffer set per subdomain per epoch.
		if e.Opts.RealData {
			for _, s := range e.Subs {
				tel.AttributeAlloc(telemetry.FeatureRecovery, s.Dom.AllocBytes())
			}
		}
		tel.Counter("checkpoint_total").Inc()
		tel.Counter("checkpoint_bytes_total").Add(float64(total))
		tel.Gauge("checkpoint_epoch").Set(float64(epoch))
		sp.End(e.Eng.Now(), telemetry.L("epoch", strconv.Itoa(epoch)))
	}
}

// performRecovery executes one recovery plan on the coordinator's proc.
func (rc *recovery) performRecovery(p *sim.Proc, rp *recoveryPlan) {
	e := rc.e
	tel := e.Opts.Telemetry
	var rollSpan *telemetry.Span
	if tel != nil {
		rollSpan = tel.StartSpanFeature("rollback", rc.runSpan, e.Eng.Now(), telemetry.FeatureRecovery)
	}
	e.coordRank = rp.coord
	rc.rollbacks++

	// 1. Evict dead ranks from the collectives. Their procs exit at this
	// recovery line; barriers and allreduces count survivors from here on.
	var deadRanks []int
	for r, d := range rp.dead {
		if d {
			deadRanks = append(deadRanks, r)
			e.W.Deactivate(r)
		}
	}
	if len(deadRanks) > 0 {
		rc.record("rollback", "deactivated ranks %v; %d of %d survive", deadRanks, e.W.ActiveSize(), e.W.Size())
	}

	// 2. Re-run phase-2 placement over the surviving capability matrix.
	moved := e.evictSubdomains()

	// 3. Restore every live subdomain from the checkpoint epoch; migrated
	// subdomains cross the host fabric to their new homes as real flows.
	rc.restoreAll(p, moved)

	// 4. Rebuild every transfer plan against the surviving topology.
	e.rebuildPlans()

	// 5. Recovery already re-specialized against live link health (any
	// degradation that struck during the outage is baked into the fresh
	// plans), so mark the mutation counter consumed: the next adaptive tick
	// must not re-apply the same episode (TestRecoveryAdaptNoDoubleApply).
	e.adaptSeen = e.M.Net.Mutations() + 1

	// 6. Per-iteration rendezvous state from the doomed attempt has fired
	// signals the replay would trip over; drop it. Overlap readiness ledgers
	// additionally reference pre-rebuild plans, so replayed iterations must
	// get fresh ones (their verify pumps drain the doomed attempt and exit).
	e.slots = make(map[slotKey]*sim.Signal)
	e.groupStates = make(map[slotKey]*groupState)
	e.overlapStates = make(map[int]*overlapIterState)

	if tel != nil {
		tel.Counter("rollback_total").Inc()
		rollSpan.End(e.Eng.Now(), telemetry.L("resume_iter", strconv.Itoa(rp.resumeIter)))
	}
	rc.record("resume", "replaying from iteration %d (epoch %d)", rp.resumeIter, rc.epoch-1)
}

// evictSubdomains re-places every subdomain stranded on a dead device and
// returns the indices of subdomains that moved. Nodes that keep at least one
// live GPU re-place locally with placement.PlaceEvict (surviving subdomains
// stay put; orphans go to the least-loaded survivors). Orphans on nodes with
// no live GPU — and subdomains that had already migrated cross-node and lost
// their adopted device — fall back to the globally least-loaded live device
// (ties: lowest device id). Both passes are deterministic.
func (e *Exchanger) evictSubdomains() []int {
	gpusPerNode := e.M.Nodes[0].Config.GPUs()
	occ := make([]int, len(e.RT.Devices))
	for _, s := range e.Subs {
		occ[s.Dev.ID]++
	}
	var moved []int
	for n := 0; n < e.Opts.Nodes; n++ {
		alive := make([]bool, gpusPerNode)
		anyAlive := false
		for g := range alive {
			alive[g] = !e.RT.DeviceAt(n, g).Dead()
			anyAlive = anyAlive || alive[g]
		}
		// This node's original subdomain group, in GPURankIdx order. A
		// subdomain that migrated off the node earlier is pinned (-1).
		cur := make([]int, gpusPerNode)
		hasOrphan := false
		for s := 0; s < gpusPerNode; s++ {
			sub := e.Subs[n*gpusPerNode+s]
			if sub.NodeID != n {
				cur[s] = -1
				continue
			}
			cur[s] = sub.LocalGPU
			if sub.Dev.Dead() {
				hasOrphan = true
			}
		}
		if !hasOrphan || !anyAlive {
			continue // nothing to do here, or the global fallback handles it
		}
		// The dead GPU's links are not failed (fail-stop keeps the fabric
		// up), so theoretical discovery still yields a well-formed matrix;
		// dead devices are excluded via the alive mask instead.
		w := placement.FlowMatrixBoundary(e.Hier, e.Hier.NodeIndex(n),
			e.Opts.Radius, e.Opts.Quantities, e.Opts.ElemSize, e.Opts.OpenBoundary)
		d := placement.DistanceMatrix(nvml.Discover(e.M.Nodes[n]).Bandwidth)
		f, cost, err := placement.PlaceEvict(w, d, cur, alive)
		if err != nil {
			continue // no survivor after all: global fallback below
		}
		for s := range f {
			if f[s] < 0 || f[s] == cur[s] {
				continue
			}
			i := n*gpusPerNode + s
			e.moveSub(i, n, f[s], occ)
			moved = append(moved, i)
		}
		e.Assignments[n] = placement.EvictAssignment(f, cost)
	}
	// Global fallback: anything still on a dead device.
	for i, sub := range e.Subs {
		if !sub.Dev.Dead() {
			continue
		}
		best := -1
		for _, dv := range e.RT.Devices {
			if dv.Dead() {
				continue
			}
			if best < 0 || occ[dv.ID] < occ[best] {
				best = dv.ID
			}
		}
		if best < 0 {
			panic("exchange: no surviving device in the whole machine")
		}
		dv := e.RT.Devices[best]
		e.moveSub(i, dv.Node, dv.Local, occ)
		moved = append(moved, i)
	}
	return moved
}

// moveSub re-homes subdomain i onto (node, local), updating rank ownership
// and giving it a kernel stream on the new device.
func (e *Exchanger) moveSub(i, node, local int, occ []int) {
	sub := e.Subs[i]
	occ[sub.Dev.ID]--
	sub.NodeID = node
	sub.LocalGPU = local
	sub.Rank = node*e.Opts.RanksPerNode + local/e.gpusPerRank
	sub.Dev = e.RT.DeviceAt(node, local)
	sub.kernelStream = sub.Dev.NewStream(fmt.Sprintf("sub%d.kernel.rec", i))
	occ[sub.Dev.ID]++
}

// restoreAll rolls every live subdomain back to the checkpoint epoch: one
// H2D flow per subdomain from the epoch's host snapshot into the (possibly
// new) device. Subdomains whose home changed cross the host-to-host fabric
// first — that is the migration traffic, charged like any other flow and
// reported separately. The byte restore commits at flow completion under
// the device key, ordered before any replayed work on the same device.
func (rc *recovery) restoreAll(p *sim.Proc, moved []int) {
	e := rc.e
	tel := e.Opts.Telemetry
	t0 := e.Eng.Now()
	movedSet := make(map[int]bool, len(moved))
	for _, i := range moved {
		movedSet[i] = true
	}
	var migSpan *telemetry.Span
	if tel != nil && len(moved) > 0 {
		migSpan = tel.StartSpanFeature("migrate", rc.runSpan, t0, telemetry.FeatureRecovery)
	}
	var done []*sim.Signal
	var restoreBytes, migrateBytes int64
	for i, s := range e.Subs {
		cs := &rc.subs[i]
		sub := s
		rk := e.W.Rank(sub.Rank)
		bytes := sub.Dom.AllocBytes()
		kind := "restore"
		if movedSet[i] {
			kind = "migrate"
			migrateBytes += bytes
		}
		restoreBytes += bytes
		name := fmt.Sprintf("%s.e%d.sub%d", kind, rc.epoch-1, i)
		var path []*flownet.Link
		if cs.node != sub.NodeID {
			path = append(path, e.M.HostToHostPath(cs.node, cs.socket, sub.NodeID, rk.Socket)...)
			path = append(path, e.M.Nodes[sub.NodeID].HostToDevPath(rk.Socket, sub.LocalGPU)...)
		} else {
			path = e.M.Nodes[sub.NodeID].HostToDevPath(cs.socket, sub.LocalGPU)
		}
		f := e.M.Net.StartFlow(name, path, float64(bytes))
		dev := int32(sub.Dev.ID)
		devID := sub.Dev.ID
		f.Done().OnFire(func() {
			end := e.Eng.Now()
			e.Eng.Defer(func() { sub.Dom.Restore(cs.data) }, dev, dev)
			e.RT.Record(cudart.OpRecord{Kind: cudart.OpMemcpyH2D, Name: name,
				Device: devID, Stream: "ckpt", Start: t0, End: end, Bytes: bytes})
		})
		done = append(done, f.Done())
		if movedSet[i] {
			rc.record("migrate", "subdomain %d -> node %d GPU %d (rank %d), %d bytes",
				i, sub.NodeID, sub.LocalGPU, sub.Rank, bytes)
		}
	}
	sim.WaitAll(p, done...)
	rc.migrated += len(moved)
	rc.record("rollback", "restored %d subdomains from epoch %d (%d migrated, %d bytes)",
		len(e.Subs), rc.epoch-1, len(moved), restoreBytes)
	// The next checkpoint re-derives each slot's home, so migrated
	// subdomains checkpoint to their new nodes automatically.
	if tel != nil {
		tel.Counter("restore_bytes_total").Add(float64(restoreBytes))
		if len(moved) > 0 {
			tel.Counter("migration_moves_total").Add(float64(len(moved)))
			tel.Counter("migration_bytes_total").Add(float64(migrateBytes))
			migSpan.End(e.Eng.Now(), telemetry.L("moves", strconv.Itoa(len(moved))))
		}
	}
}

// rebuildPlans drops every transfer plan and rebuilds phase-3 specialization
// from scratch against the surviving topology: endpoints may have changed
// arbitrarily, so patching plans in place is not worth the bug surface.
// Buffers and streams are re-allocated (the old ones may sit on dead
// devices). With the adaptive monitor on, the fresh plans additionally
// re-specialize against live link health — a degradation that struck during
// the outage is honored here, exactly once.
func (e *Exchanger) rebuildPlans() {
	e.Plans = nil
	e.groups = nil
	e.sendDuties, e.recvDuties = nil, nil
	e.planPaths = nil
	e.methodMemo = nil
	e.buildPlans()
	if e.Opts.Adaptive {
		e.respecialize()
	}
	for _, pl := range e.Plans {
		if pl.Src.Dev.Dead() || pl.Dst.Dev.Dead() {
			panic(fmt.Sprintf("exchange: rebuilt plan %d still touches a dead device", pl.ID))
		}
	}
	if tel := e.Opts.Telemetry; tel != nil {
		counts := e.MethodCounts()
		for m := Method(0); m < numMethods; m++ {
			tel.Gauge("exchange_plans", telemetry.L("method", m.String())).Set(float64(counts[m]))
		}
	}
}
