package exchange

import (
	"testing"

	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// recoverOpts is the recovery test bed: two Summit nodes, two ranks per node
// (three GPUs per rank), real data, adaptive monitor on, checkpoints every
// two iterations.
func recoverOpts() Options {
	return Options{
		Nodes:           2,
		RanksPerNode:    2,
		Domain:          part.Dim3{X: 24, Y: 24, Z: 12},
		Radius:          1,
		Quantities:      2,
		ElemSize:        4,
		Caps:            CapsAll(),
		NodeAware:       true,
		RealData:        true,
		Adaptive:        true,
		CheckpointEvery: 2,
	}
}

// healthySpan runs the fault-free configuration and returns its total
// virtual time, for placing kill events mid-run.
func healthySpan(t *testing.T, opts Options) float64 {
	t.Helper()
	opts.Fault = nil
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	e.Run(6)
	return e.Eng.Now()
}

func runRecovered(t *testing.T, sc *fault.Scenario) (*Exchanger, *Stats) {
	t.Helper()
	opts := recoverOpts()
	opts.Fault = sc
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	return e, e.Run(6)
}

// TestRecoveryGPULoss: one GPU dies mid-run; its subdomain migrates to a
// surviving GPU on the same node, the run rolls back one epoch, replays, and
// the final halos are byte-identical to a fault-free run.
func TestRecoveryGPULoss(t *testing.T) {
	at := 0.3 * healthySpan(t, recoverOpts())
	e, st := runRecovered(t, (&fault.Scenario{Name: "gpu-loss"}).KillGPU(at, 0, 5))
	if st.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", st.Rollbacks)
	}
	if st.MigratedSubs != 1 {
		t.Errorf("migrated = %d, want 1", st.MigratedSubs)
	}
	for _, s := range e.Subs {
		if s.Dev.Dead() {
			t.Errorf("subdomain %v still lives on dead device %d", s.Global, s.Dev.ID)
		}
	}
	// The evicted subdomain stayed on its node: same-node spill is cheaper
	// than crossing the NIC and node 0 had five survivors.
	for _, s := range e.Subs {
		if s.NodeID != s.Dev.Node {
			t.Errorf("subdomain %v: NodeID %d but device node %d", s.Global, s.NodeID, s.Dev.Node)
		}
	}
	if st.Checkpoints < 2 {
		t.Errorf("checkpoints = %d, want >= 2 (epoch 0 + periodic)", st.Checkpoints)
	}
	verifyHalos(t, e)
}

// TestRecoveryNodeLoss kills both ranks of node 0 at the same timestamp
// (also exercising the documented stable same-time event ordering): all six
// of its subdomains must migrate across the NIC to node 1, the collectives
// must shrink to the two surviving ranks, and the result must stay correct.
func TestRecoveryNodeLoss(t *testing.T) {
	at := 0.3 * healthySpan(t, recoverOpts())
	e, st := runRecovered(t, (&fault.Scenario{Name: "node-loss"}).KillRank(at, 0).KillRank(at, 1))
	if st.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", st.Rollbacks)
	}
	if st.MigratedSubs != 6 {
		t.Errorf("migrated = %d, want 6 (the whole node)", st.MigratedSubs)
	}
	for _, s := range e.Subs {
		if s.NodeID != 1 {
			t.Errorf("subdomain %v still homed on dead node %d", s.Global, s.NodeID)
		}
		if s.Rank < 2 || s.Rank > 3 {
			t.Errorf("subdomain %v owned by dead rank %d", s.Global, s.Rank)
		}
	}
	if e.W.ActiveSize() != 2 {
		t.Errorf("active ranks = %d, want 2", e.W.ActiveSize())
	}
	verifyHalos(t, e)
}

// TestRecoveryCoordinatorFailover kills rank 0 — the coordinator — and
// checks that the lowest surviving rank takes over and completes the run.
func TestRecoveryCoordinatorFailover(t *testing.T) {
	at := 0.3 * healthySpan(t, recoverOpts())
	e, st := runRecovered(t, (&fault.Scenario{Name: "coord-loss"}).KillRank(at, 0))
	if st.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", st.Rollbacks)
	}
	if e.coordRank != 1 {
		t.Errorf("coordinator = rank %d, want 1", e.coordRank)
	}
	if e.W.Deactivated(1) || !e.W.Deactivated(0) {
		t.Error("deactivation state wrong after rank 0 loss")
	}
	verifyHalos(t, e)
}

// TestRecoveryRepeatedLoss: two separate failures, two rollbacks, still
// byte-correct — the checkpoint slots must survive the first recovery (and
// re-home with migrated subdomains).
func TestRecoveryRepeatedLoss(t *testing.T) {
	span := healthySpan(t, recoverOpts())
	e, st := runRecovered(t, (&fault.Scenario{Name: "double-loss"}).
		KillGPU(0.25*span, 0, 5).
		KillGPU(0.9*span, 1, 2))
	if st.Rollbacks != 2 {
		t.Errorf("rollbacks = %d, want 2", st.Rollbacks)
	}
	if st.MigratedSubs != 2 {
		t.Errorf("migrated = %d, want 2", st.MigratedSubs)
	}
	verifyHalos(t, e)
}

// TestRecoveryValidation: the fatal-event preconditions New enforces.
func TestRecoveryValidation(t *testing.T) {
	fatalSc := (&fault.Scenario{Name: "fatal"}).KillGPU(1e-3, 0, 0)
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"negative-checkpoint", func(o *Options) { o.CheckpointEvery = -1 }},
		{"fatal-without-checkpoint", func(o *Options) { o.CheckpointEvery = 0; o.Fault = fatalSc }},
		{"fatal-with-aggregate", func(o *Options) { o.Fault = fatalSc; o.AggregateRemote = true }},
		{"fatal-with-adapt-placement", func(o *Options) { o.Fault = fatalSc; o.AdaptPlacement = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := recoverOpts()
			tc.mut(&opts)
			if _, err := New(opts); err == nil {
				t.Errorf("New accepted invalid options %+v", opts)
			}
		})
	}
	// The happy path still constructs.
	opts := recoverOpts()
	opts.Fault = fatalSc
	if _, err := New(opts); err != nil {
		t.Errorf("New rejected valid recovery options: %v", err)
	}
}

// TestRecoveryAdaptNoDoubleApply is the regression for the composed hazard
// of recovery and the adaptive monitor: a link degradation that fires while
// a rollback is in flight must be applied to the rebuilt plans exactly once.
// The failure modes guarded against: (a) rebuildPlans selecting methods
// health-blind and the mutation counter being treated as already consumed —
// plans stuck on the dead link forever; (b) the next adaptive tick
// re-applying the same episode — duplicate switch records.
func TestRecoveryAdaptNoDoubleApply(t *testing.T) {
	// Phase 1: find the rollback window for this exact configuration.
	at := 0.3 * healthySpan(t, recoverOpts())
	opts := recoverOpts()
	opts.Fault = (&fault.Scenario{Name: "probe"}).KillGPU(at, 0, 5)
	opts.Telemetry = telemetry.New()
	probe, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(probe)
	probe.Run(6)
	var t0, t1 float64
	for _, sp := range opts.Telemetry.Spans() {
		if sp.Name == "rollback" {
			t0, t1 = sp.Start, sp.End
			break
		}
	}
	if t1 <= t0 {
		t.Fatalf("no rollback span in probe run (t0=%g t1=%g)", t0, t1)
	}

	// Phase 2: same job, plus a permanent NVLink kill in the middle of that
	// window — i.e. while the restore flows are in flight. Virtual time is
	// deterministic up to the injected event, so the window still holds.
	// GPUs 0 and 1 share a triad on node 0 and both survive, so their
	// PEERMEMCPY plans must be demoted to STAGED by the rebuilt plans.
	e, st := runRecovered(t, (&fault.Scenario{Name: "mid-rollback"}).
		KillGPU(at, 0, 5).
		KillNVLink((t0+t1)/2, 0, 0, 1, 0))
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", st.Rollbacks)
	}
	affected := 0
	for _, pl := range e.Plans {
		if pl.Src.Dev != pl.Dst.Dev &&
			pl.Src.NodeID == 0 && pl.Dst.NodeID == 0 &&
			((pl.Src.LocalGPU == 0 && pl.Dst.LocalGPU == 1) || (pl.Src.LocalGPU == 1 && pl.Dst.LocalGPU == 0)) {
			affected++
			if pl.Method != MethodStaged {
				t.Errorf("plan %d (GPU %d->%d) method %s, want STAGED: dead NVLink not honored by rebuild",
					pl.ID, pl.Src.LocalGPU, pl.Dst.LocalGPU, pl.Method)
			}
			demotions := 0
			for _, r := range st.AdaptEvents {
				if r.PlanID == pl.ID && r.To == MethodStaged {
					demotions++
				}
			}
			if demotions != 1 {
				t.Errorf("plan %d: %d STAGED demotion records, want exactly 1 (double-applied or missed)",
					pl.ID, demotions)
			}
		}
	}
	if affected == 0 {
		t.Fatal("no plan crosses NVLink 0-1; regression scenario is vacuous")
	}
	verifyHalos(t, e)
}
