// Package exchange implements the paper's setup phase 3 and the runtime halo
// exchange (§III-C, §III-D): capability-based selection among the five
// GPU-GPU transfer methods, per-direction transfer plans, and the overlapped
// execution of an exchange using sender/receiver state machines.
//
// The five methods, selected first-applicable per subdomain pair:
//
//	KERNEL           self-exchange via one device kernel (periodic wrap)
//	PEERMEMCPY       same rank, peer access: pack → cudaMemcpyPeerAsync → unpack
//	COLOCATEDMEMCPY  same node, different ranks: IPC-opened destination buffer
//	                 at setup, then pack → peer copy → unpack with no MPI
//	CUDAAWAREMPI     device buffers passed to MPI (when CUDA-aware enabled)
//	STAGED           pack → D2H → MPI over host buffers → H2D → unpack
//
// All methods are asynchronous; a rank issues every transfer it can, then
// drives per-message state machines (STAGED and CUDAAWAREMPI need CPU action
// between their CUDA and MPI phases) until everything completes.
package exchange

import (
	"fmt"

	"time"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/halo"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/placement"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// Method is one of the paper's five transfer methods.
type Method int

const (
	MethodKernel Method = iota
	MethodPeer
	MethodColocated
	MethodCudaAware
	MethodStaged
	numMethods
)

func (m Method) String() string {
	switch m {
	case MethodKernel:
		return "KERNEL"
	case MethodPeer:
		return "PEERMEMCPY"
	case MethodColocated:
		return "COLOCATEDMEMCPY"
	case MethodCudaAware:
		return "CUDAAWAREMPI"
	case MethodStaged:
		return "STAGED"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Capabilities is the paper's incremental capability ladder ("+remote",
// "+colo", "+peer", "+kernel"). Remote (STAGED or CUDAAWAREMPI) is always
// available; the others are enabled on top.
type Capabilities struct {
	Colocated bool
	Peer      bool
	Kernel    bool
}

// CapsRemote .. CapsAll name the ladder rungs used throughout the figures.
func CapsRemote() Capabilities { return Capabilities{} }
func CapsColo() Capabilities   { return Capabilities{Colocated: true} }
func CapsPeer() Capabilities   { return Capabilities{Colocated: true, Peer: true} }
func CapsAll() Capabilities    { return Capabilities{Colocated: true, Peer: true, Kernel: true} }

// Options configures an Exchanger.
type Options struct {
	Nodes        int
	RanksPerNode int
	Domain       part.Dim3
	Radius       int
	Quantities   int
	ElemSize     int

	Caps      Capabilities
	CUDAAware bool // remote messages use CUDAAWAREMPI instead of STAGED
	NodeAware bool // QAP placement (true) vs trivial linearized placement
	RealData  bool // allocate and move real bytes (small domains only)

	// FaceOnly restricts the exchange to the six face neighbors (Fig 1(a)
	// stencils); default is the full 26-direction neighborhood.
	FaceOnly bool

	// Neighborhood selects the exchanged direction set by count: 0 (default)
	// or 26 for the full neighborhood, 6 for faces only (Fig 1(a)), 18 for
	// faces plus planar diagonals (Fig 1(b)). FaceOnly is shorthand for 6.
	Neighborhood int

	// OpenBoundary disables periodic wrap-around: subdomains on the domain
	// boundary simply have no neighbor on that side and exchange nothing
	// there (the paper evaluates periodic boundaries but notes the
	// techniques apply to other types, §I).
	OpenBoundary bool

	// AggregateRemote packs all of a rank pair's inter-node STAGED messages
	// into a single MPI message per exchange (the paper's §VI idea from
	// ref [3]: fewer, larger messages).
	AggregateRemote bool

	// NoOverlap disables the §III-D overlap machinery: each transfer is
	// driven to completion before the next is issued (ablation baseline).
	NoOverlap bool

	// Overlap enables compute/communication overlap via persistent exchange
	// plans (see overlap.go): each iteration's transfer plan is registered
	// once as per-plan readiness state, inter-node STAGED messages ride
	// persistent MPI channels whose receivers are released at payload
	// acceptance (not at the sender's ACK), interior ("core") compute runs
	// while halos are in flight, and border compute is gated per subdomain on
	// the verified arrival of exactly the halos it reads — replacing the
	// global verification safe-point barrier of RunWithCompute with
	// per-quadrant safe points and pipelined verification. Final domain and
	// halo bytes are identical to barrier mode (the pipeline changes when
	// work happens, never what it computes; see DESIGN.md §11). Incompatible
	// with NoOverlap, AggregateRemote, AdaptPlacement, and CUDAAware.
	Overlap bool

	// Preempt, when set, is polled by the coordinator once per iteration at
	// its safe point; when it returns true every rank exits uniformly at the
	// next loop-top barrier and the run returns early with the iterations
	// completed so far (Preempted() reports it). This is the engine-loop
	// preemption hook the serving layer's job cancellation uses; it reads
	// host state, so runs that are actually preempted are not reproducible —
	// runs whose Preempt never fires are byte-identical to runs without it.
	Preempt func() bool

	// EmpiricalPlacement derives the placement distance matrix from a
	// pairwise transfer microbenchmark instead of the vendor topology query
	// (§VI: "investigate if empirical measurements provide better results").
	EmpiricalPlacement bool

	// NodeConfig and Params override the default Summit node and cost model.
	NodeConfig *machine.NodeConfig
	Params     *machine.Params

	// PresetPlacement injects a previously computed phase-2 result: one
	// subdomain→GPU permutation per node (the shape Assignment(n) returns),
	// skipping the QAP solve. The solver is deterministic, so a preset taken
	// from an identical configuration's run reproduces that run bit-exactly;
	// this is how the serving layer's setup cache shares placement work
	// across jobs that differ only in scenario or run length. The preset
	// must match the configuration (Nodes entries of GPUs-per-node length,
	// each a permutation) or New fails.
	PresetPlacement [][]int

	// Fault schedules a deterministic fault/degradation scenario on the
	// virtual clock (see internal/fault): link failures and degradations,
	// NIC flaps, GPU stragglers, rank pauses. Event times are measured from
	// the start of the run. Nil disables injection.
	Fault *fault.Scenario

	// Adaptive enables the degradation monitor: every AdaptCheckEvery
	// iterations (at the safe point after the timing allreduce) the health
	// of every plan's links is scanned and plans whose method crosses a
	// failed or degraded link are re-specialized down the capability ladder
	// (PEERMEMCPY falls back to STAGED when its NVLink dies, CUDAAWAREMPI
	// is demoted while the NIC is down, ...). When the links recover the
	// plans are promoted back; buffers and streams for every method a plan
	// has used are cached, so flip-flopping does not leak.
	Adaptive bool

	// AdaptThreshold is the link-health fraction (live capacity / healthy
	// capacity) below which a link counts as degraded. 0 defaults to 0.5.
	AdaptThreshold float64

	// AdaptCheckEvery runs the monitor every N iterations. 0 defaults to 1.
	AdaptCheckEvery int

	// AdaptPlacement additionally re-runs phase-2 placement against the
	// live (degraded) bandwidth matrix when a node's degradation persists
	// for AdaptPersistTicks consecutive monitor ticks, migrating subdomains
	// whose GPU changes (the migration copy is charged on the flow
	// network). Incompatible with AggregateRemote.
	AdaptPlacement bool

	// AdaptPersistTicks is the persistence horizon for AdaptPlacement.
	// 0 defaults to 3.
	AdaptPersistTicks int

	// CheckpointEvery enables the recovery layer: every K iterations (plus
	// once before the first iteration) each subdomain's full state is
	// snapshotted to its node's host memory as a real D2H copy competing for
	// link bandwidth, so checkpoint overhead shows in the virtual clock.
	// Permanent-loss fault events (GPUFail/RankFail) require it: on
	// detection, every rank rolls back to the last checkpoint epoch,
	// orphaned subdomains are re-placed over the surviving capability matrix
	// (their bytes migrating to the new homes as real flows), and the run
	// replays from the epoch's iteration. 0 disables checkpointing.
	// Incompatible with AggregateRemote and AdaptPlacement when fatal events
	// are scheduled. See recover.go and DESIGN.md "Failure model".
	CheckpointEvery int

	// SendTimeout enables MPI-level retries: a wire transfer still in
	// flight after this much virtual time is aborted and re-sent (up to
	// SendRetries attempts, then driven to completion regardless). 0
	// disables.
	SendTimeout sim.Time

	// SendRetries caps the abort/re-send cycles per message. 0 defaults
	// to 8 (when SendTimeout is set).
	SendRetries int

	// Reliable forces the MPI reliable-delivery envelope for inter-node
	// messages (checksums, sequence numbers, dedup, ACK/NACK with
	// retransmission; see internal/mpi/reliable.go) even on a clean network.
	// A fault scenario containing delivery faults (MsgDrop/MsgCorrupt/MsgDup)
	// arms it automatically, seeded with the scenario's Seed.
	Reliable bool

	// VerifyExchange enables end-to-end halo verification: after each
	// exchange, per-quadrant checksums are compared across the inter-node
	// wire and damaged quadrants are selectively re-exchanged (see
	// verify.go). Auto-enabled when the fault scenario schedules delivery
	// faults; meaningful only with RealData.
	VerifyExchange bool

	// QuarantineTicks is the clean-window hysteresis of link quarantine: a
	// quarantined link is re-admitted to method selection only after this
	// many consecutive fault-free monitor ticks (and a decayed health
	// score). 0 defaults to 5. Quarantine runs with Adaptive when the fault
	// scenario contains delivery or flap faults, or when this is set > 0.
	QuarantineTicks int

	// FairnessHorizon bounds how far a bandwidth-rebalance propagates in the
	// flow network (flownet.Network.MaxHops). 0 selects automatically: exact
	// max-min fairness up to 32 nodes, a 1-hop horizon beyond (within 8% of
	// exact at 64 nodes, an order of magnitude faster to simulate). Negative
	// forces exact; positive values are used directly.
	FairnessHorizon int

	// TraceOps records every CUDA op for Fig 9-style timelines.
	TraceOps bool

	// Workers sets the number of goroutines executing deferred payload work
	// (real-data byte copies and pack/unpack commits) between virtual-time
	// barriers. 0 or 1 keeps the engine fully sequential. Results are
	// bit-for-bit identical either way (see internal/sim/parallel.go and
	// TestParallelDeterminism); only RealData runs have meaningful payloads,
	// so that is where the speedup shows.
	Workers int

	// Telemetry, when set, receives the unified observability stream: link
	// utilization samples from every flow-network rebalance, setup and
	// per-iteration phase spans, CUDA op records, MPI retries, applied
	// faults, and adaptation decisions — all keyed by virtual time (see
	// internal/telemetry). Attaching a recorder never changes simulated
	// times: every hook is a passive observer at points the simulation
	// already visits.
	Telemetry *telemetry.Recorder
}

// Sub is one subdomain bound to a GPU.
type Sub struct {
	GPURankIdx int       // linearized GPU-space index within the node
	NodeIdx    part.Dim3 // node-space index
	GPUIdx     part.Dim3 // GPU-space index
	Global     part.Dim3 // combined global grid index
	NodeID     int       // machine node
	LocalGPU   int       // device within node after placement
	Rank       int       // owning MPI rank
	Dev        *cudart.Device
	Dom        *halo.Domain

	kernelStream *cudart.Stream
}

// Plan is one direction's transfer between two subdomains.
type Plan struct {
	ID     int
	Src    *Sub
	Dst    *Sub
	Dir    part.Dim3
	Method Method
	Bytes  int64
	Tag    int

	devSend, devRecv   *cudart.Buffer
	hostSend, hostRecv *cudart.Buffer
	sendStream         *cudart.Stream // on Src.Dev
	recvStream         *cudart.Stream // on Dst.Dev

	// resCache keeps the buffers and streams of every method this plan has
	// run under, so adaptive demote/promote cycles reuse rather than leak.
	resCache map[Method]*planRes

	// Aggregated inter-node STAGED messages share one MPI message per rank
	// pair; aggOffset locates this plan's slice in the group buffers.
	group     *msgGroup
	aggOffset int64

	// names caches the per-plan op labels (lazily built on first use) so
	// the per-iteration hot path doesn't re-Sprintf them.
	names *planNames
}

// planNames are the stream-op labels of one plan, formatted once.
type planNames struct {
	kernelEx, pack, unpack, peerCp, coloCp, d2h, h2d string
}

func (pl *Plan) opNames() *planNames {
	if pl.names == nil {
		id := pl.ID
		pl.names = &planNames{
			kernelEx: fmt.Sprintf("kernelex.p%d", id),
			pack:     fmt.Sprintf("pack.p%d", id),
			unpack:   fmt.Sprintf("unpack.p%d", id),
			peerCp:   fmt.Sprintf("peercp.p%d", id),
			coloCp:   fmt.Sprintf("colocp.p%d", id),
			d2h:      fmt.Sprintf("d2h.p%d", id),
			h2d:      fmt.Sprintf("h2d.p%d", id),
		}
	}
	return pl.names
}

// msgGroup is one rank pair's aggregated inter-node message.
type msgGroup struct {
	id                 int
	srcRank, dstRank   int
	plans              []*Plan
	hostSend, hostRecv *cudart.Buffer
	bytes              int64
	tag                int
}

// groupState is a msgGroup's per-iteration progress.
type groupState struct {
	remaining  int // D2H stagings not yet complete
	sendDone   *sim.Signal
	recvDone   *sim.Signal
	recvPosted bool
}

// Exchanger owns the full simulated job: machine, runtimes, decomposition,
// placement, and transfer plans.
type Exchanger struct {
	Eng  *sim.Engine
	M    *machine.Machine
	RT   *cudart.Runtime
	W    *mpi.World
	Hier *part.Hier
	Opts Options

	Subs  []*Sub // indexed by node rank * gpusPerNode + gpu rank idx
	Plans []*Plan
	// Assignments per node (index = node rank), for inspection.
	Assignments []*placement.Assignment

	gpusPerRank int
	dirs        []part.Dim3
	sendDuties  [][]*Plan // per rank
	recvDuties  [][]*Plan

	// Per-iteration cross-rank rendezvous for COLOCATEDMEMCPY events.
	slots map[slotKey]*sim.Signal

	// Aggregated inter-node messages (Options.AggregateRemote) and their
	// per-iteration state.
	groups      []*msgGroup
	groupStates map[slotKey]*groupState

	// Per-iteration readiness ledgers for compute/communication overlap
	// (Options.Overlap); see overlap.go.
	overlapStates map[int]*overlapIterState

	// stopped is latched by the coordinator when Options.Preempt reports a
	// cancellation; every rank observes it at the next loop-top barrier and
	// exits uniformly.
	stopped bool

	// Trace is populated when Opts.TraceOps is set.
	Trace []cudart.OpRecord

	// Faults is the installed injector when Opts.Fault is set (its Log is
	// the applied-fault timeline).
	Faults *fault.Injector

	// AdaptLog records every adaptation decision (method switches and
	// re-placements) in virtual-time order.
	AdaptLog []AdaptRecord

	// RecoveryLog records checkpoint, failure-detection, rollback, and
	// migration actions in virtual-time order; empty unless
	// Options.CheckpointEvery > 0.
	RecoveryLog []RecoveryRecord

	// coordRank performs the coordinator duties at the inter-iteration safe
	// point (timing record, adaptation tick, checkpoint, failure detection):
	// the lowest active rank, re-elected when recovery deactivates ranks.
	coordRank int

	// rec is the live checkpoint/recovery state during a Run with
	// CheckpointEvery > 0 (see recover.go).
	rec *recovery

	// degradeStreak counts, per node, consecutive monitor ticks with at
	// least one unhealthy intra-node link; replaceDone marks nodes already
	// re-placed for the current degradation episode.
	degradeStreak []int
	replaceDone   []bool

	// Adaptive-monitor caches (see adapt.go). adaptSeen is the flow network's
	// mutation counter (+1) at the last plan rescan: ticks with no link
	// fail/degrade/restore since then skip re-specialization entirely.
	// planPaths caches each plan's candidate link paths (invalidated by
	// re-placement); methodMemo maps a health mask to the full method vector
	// it selects, so recurring fault patterns (a flapping NIC) replay the
	// prior decision instead of re-running selection.
	adaptSeen  uint64
	planPaths  []planPaths
	methodMemo map[string][]Method

	// health scores links and quarantines flapping ones (health.go); nil
	// unless the options and fault scenario call for it.
	health *healthMonitor

	// verifier holds the end-to-end halo verification state (verify.go);
	// nil unless delivery faults or Options.VerifyExchange enable it.
	verifier *verifier

	// Setup wall-clock costs (host-side, not simulated): the paper's §VI
	// notes the placement algorithm should have negligible impact when
	// properly implemented; these make that measurable.
	SetupPlacementWall time.Duration
	SetupPlanWall      time.Duration
}

type slotKey struct {
	plan int
	iter int
}

// New builds the job: machine and runtimes, hierarchical partition, per-node
// placement, subdomain allocation, and one plan per (subdomain, direction).
func New(opts Options) (*Exchanger, error) {
	if opts.Nodes < 1 || opts.RanksPerNode < 1 {
		return nil, fmt.Errorf("exchange: %d nodes, %d ranks/node", opts.Nodes, opts.RanksPerNode)
	}
	if opts.Radius < 1 || opts.Quantities < 1 || opts.ElemSize < 1 {
		return nil, fmt.Errorf("exchange: bad stencil params r=%d q=%d e=%d", opts.Radius, opts.Quantities, opts.ElemSize)
	}
	if opts.AdaptPlacement && !opts.Adaptive {
		return nil, fmt.Errorf("exchange: AdaptPlacement requires Adaptive")
	}
	if opts.AdaptPlacement && opts.AggregateRemote {
		return nil, fmt.Errorf("exchange: AdaptPlacement is incompatible with AggregateRemote (aggregated messages pin rank pairs)")
	}
	if opts.Overlap {
		if opts.NoOverlap {
			return nil, fmt.Errorf("exchange: Overlap is incompatible with NoOverlap")
		}
		if opts.AggregateRemote {
			return nil, fmt.Errorf("exchange: Overlap is incompatible with AggregateRemote (aggregated messages have no per-quadrant arrival)")
		}
		if opts.AdaptPlacement {
			return nil, fmt.Errorf("exchange: Overlap is incompatible with AdaptPlacement (live re-placement needs the global quiescent safe point)")
		}
		if opts.CUDAAware {
			return nil, fmt.Errorf("exchange: Overlap is incompatible with CUDAAware (device-wide MPI synchronization would deadlock against gated border kernels)")
		}
	}
	if opts.AdaptThreshold < 0 || opts.AdaptThreshold > 1 {
		return nil, fmt.Errorf("exchange: AdaptThreshold %g outside [0, 1]", opts.AdaptThreshold)
	}
	if opts.CheckpointEvery < 0 {
		return nil, fmt.Errorf("exchange: CheckpointEvery %d < 0", opts.CheckpointEvery)
	}
	if opts.Fault != nil && opts.Fault.HasFatal() {
		if opts.CheckpointEvery < 1 {
			return nil, fmt.Errorf("exchange: fatal fault events (GPUFail/RankFail) require CheckpointEvery > 0")
		}
		if opts.AggregateRemote {
			return nil, fmt.Errorf("exchange: fatal fault events are incompatible with AggregateRemote (aggregated messages pin rank pairs)")
		}
		if opts.AdaptPlacement {
			return nil, fmt.Errorf("exchange: fatal fault events are incompatible with AdaptPlacement (recovery owns re-placement)")
		}
	}
	nodeCfg := machine.SummitNode()
	if opts.NodeConfig != nil {
		nodeCfg = *opts.NodeConfig
	}
	params := machine.DefaultParams()
	if opts.Params != nil {
		params = *opts.Params
	}
	gpusPerNode := nodeCfg.GPUs()
	if gpusPerNode%opts.RanksPerNode != 0 {
		return nil, fmt.Errorf("exchange: %d GPUs/node not divisible by %d ranks/node", gpusPerNode, opts.RanksPerNode)
	}

	if pp := opts.PresetPlacement; pp != nil {
		if len(pp) != opts.Nodes {
			return nil, fmt.Errorf("exchange: PresetPlacement has %d nodes, config has %d", len(pp), opts.Nodes)
		}
		for n, f := range pp {
			if len(f) != gpusPerNode {
				return nil, fmt.Errorf("exchange: PresetPlacement node %d has %d entries, want %d", n, len(f), gpusPerNode)
			}
			seen := make([]bool, len(f))
			for _, g := range f {
				if g < 0 || g >= len(f) || seen[g] {
					return nil, fmt.Errorf("exchange: PresetPlacement node %d is not a permutation: %v", n, f)
				}
				seen[g] = true
			}
		}
	}

	eng := sim.NewEngine()
	eng.SetWorkers(opts.Workers)
	m := machine.New(eng, opts.Nodes, nodeCfg, params)
	tel := opts.Telemetry
	if tel != nil {
		// Every waterfill rebalance reports per-link utilization and flow
		// counts; sampling starts here so the placement microbenchmark's
		// flows (EmpiricalPlacement) are visible too.
		m.Net.Probe = tel
	}
	switch {
	case opts.FairnessHorizon > 0:
		m.Net.MaxHops = opts.FairnessHorizon
	case opts.FairnessHorizon == 0 && opts.Nodes > 32:
		m.Net.MaxHops = 1
	}
	rt := cudart.NewRuntime(m, opts.RealData)
	w := mpi.NewWorld(m, rt, opts.RanksPerNode, opts.CUDAAware)
	w.SendTimeout = opts.SendTimeout
	w.SendRetries = opts.SendRetries
	if opts.Reliable {
		w.Reliable = true
	}
	if tel != nil {
		w.OnRetry = tel.MPIRetry
		w.OnRetryExhausted = tel.MPIRetryExhausted
		w.OnProtocol = tel.MPIProtocol
		w.OnEnvelopeAlloc = func(bytes int64) {
			tel.AttributeAlloc(telemetry.FeatureReliable, bytes)
		}
	}

	var setupSpan *telemetry.Span
	if tel != nil {
		// The enclosing setup span carries the baseline attribution; its
		// children (partition/placement/specialization) stay untagged so
		// setup time is not double-counted in the ledger.
		setupSpan = tel.StartSpanFeature("setup", nil, eng.Now(), telemetry.FeatureBaseline)
	}
	var partSpan *telemetry.Span
	if tel != nil {
		partSpan = tel.StartSpan("setup.partition", setupSpan, eng.Now())
	}
	h, err := part.NewHier(opts.Domain, opts.Nodes, gpusPerNode)
	if err != nil {
		return nil, err
	}
	if partSpan != nil {
		partSpan.End(eng.Now())
	}

	e := &Exchanger{
		Eng:           eng,
		M:             m,
		RT:            rt,
		W:             w,
		Hier:          h,
		Opts:          opts,
		gpusPerRank:   gpusPerNode / opts.RanksPerNode,
		slots:         make(map[slotKey]*sim.Signal),
		groupStates:   make(map[slotKey]*groupState),
		overlapStates: make(map[int]*overlapIterState),
	}
	nbhd := opts.Neighborhood
	if opts.FaceOnly {
		nbhd = 6
	}
	switch nbhd {
	case 0, 26:
		e.dirs = part.Directions26()
	case 6:
		e.dirs = part.Directions6()
	case 18:
		e.dirs = part.Directions18()
	default:
		return nil, fmt.Errorf("exchange: neighborhood %d (want 6, 18, or 26)", nbhd)
	}
	if opts.TraceOps || tel != nil {
		rt.OnOp = func(r cudart.OpRecord) {
			if opts.TraceOps {
				e.Trace = append(e.Trace, r)
			}
			if tel != nil {
				tel.RecordOp(r.Kind.String(), r.Name, r.Device, r.Stream, r.Start, r.End, r.Bytes)
			}
		}
	}

	setupStart := time.Now()
	var placeSpan *telemetry.Span
	if tel != nil {
		placeSpan = tel.StartSpan("setup.placement", setupSpan, eng.Now())
	}
	e.place()
	if placeSpan != nil {
		placeSpan.End(eng.Now())
	}
	e.SetupPlacementWall = time.Since(setupStart)

	planStart := time.Now()
	var specSpan *telemetry.Span
	if tel != nil {
		specSpan = tel.StartSpan("setup.specialization", setupSpan, eng.Now())
	}
	e.buildPlans()
	if specSpan != nil {
		var tags []telemetry.Label
		counts := e.MethodCounts()
		for m := Method(0); m < numMethods; m++ {
			if c := counts[m]; c > 0 {
				tags = append(tags, telemetry.L(m.String(), fmt.Sprint(c)))
			}
		}
		specSpan.End(eng.Now(), tags...)
	}
	e.SetupPlanWall = time.Since(planStart)

	// A halo exchange reads a send region radius cells deep; a subdomain
	// thinner than the radius would silently pack stale halo bytes.
	for _, s := range e.Subs {
		sz := s.Dom.Size
		if sz.X < opts.Radius || sz.Y < opts.Radius || sz.Z < opts.Radius {
			return nil, fmt.Errorf("exchange: subdomain %v size %v thinner than radius %d; use fewer partitions or a larger domain",
				s.Global, sz, opts.Radius)
		}
	}

	e.degradeStreak = make([]int, opts.Nodes)
	e.replaceDone = make([]bool, opts.Nodes)
	if opts.VerifyExchange || (opts.Fault != nil && opts.Fault.HasDelivery()) {
		e.verifier = newVerifier(e)
	}
	if opts.Adaptive && (opts.QuarantineTicks > 0 ||
		(opts.Fault != nil && (opts.Fault.HasDelivery() || opts.Fault.HasFlap()))) {
		e.health = newHealthMonitor(e)
	}
	if tel != nil {
		// One "plan" event per transfer plan records the setup-time method
		// selection; the exchange_plans gauges track the live per-method
		// counts from here on (adaptation moves them via logAdapt).
		now := eng.Now()
		for _, p := range e.Plans {
			tel.Event(now, "plan",
				telemetry.F("plan", p.ID),
				telemetry.F("src_rank", p.Src.Rank),
				telemetry.F("dst_rank", p.Dst.Rank),
				telemetry.F("dir", fmt.Sprintf("%d,%d,%d", p.Dir.X, p.Dir.Y, p.Dir.Z)),
				telemetry.F("method", p.Method.String()),
				telemetry.F("bytes", p.Bytes))
		}
		for m, c := range e.MethodCounts() {
			tel.Gauge("exchange_plans", telemetry.L("method", m.String())).Set(float64(c))
		}
		// Subdomain data buffers are the baseline's host-memory footprint
		// (only real-data mode materializes them).
		if opts.RealData {
			for _, s := range e.Subs {
				tel.AttributeAlloc(telemetry.FeatureBaseline, s.Dom.AllocBytes())
			}
		}
		setupSpan.End(now)
	}
	// Faults are installed after setup: EmpiricalPlacement's microbenchmark
	// advances the virtual clock, and scenario times are meant to be
	// measured from the start of the run, not of topology discovery.
	if opts.Fault != nil {
		e.Faults = fault.NewInjector(m, rt, w)
		if tel != nil {
			e.Faults.OnRecord = func(rec fault.Record) {
				tel.FaultApplied(rec.At, rec.Kind, rec.Desc)
			}
		}
		if err := e.Faults.Install(opts.Fault); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// place runs phase 2 on every node and materializes the subdomains.
func (e *Exchanger) place() {
	gpusPerNode := e.M.Nodes[0].Config.GPUs()
	e.Subs = make([]*Sub, e.Opts.Nodes*gpusPerNode)
	// With empirical placement the bandwidth matrix comes from a pairwise
	// transfer microbenchmark run once at startup (nodes are identical, so
	// node 0's measurement serves all).
	var measured *nvml.Topology
	if e.Opts.EmpiricalPlacement {
		measured = nvml.MeasureBandwidth(e.RT, 0, 64<<20)
	}
	for n := 0; n < e.Opts.Nodes; n++ {
		nodeIdx := e.Hier.NodeIndex(n)
		topo := nvml.Discover(e.M.Nodes[n])
		if measured != nil {
			topo = measured
		}
		var asgn *placement.Assignment
		if pp := e.Opts.PresetPlacement; pp != nil {
			// A cached phase-2 result: evaluate its QAP cost (cheap) but
			// skip the permutation search (the expensive, shareable part).
			w := placement.FlowMatrixBoundary(e.Hier, nodeIdx, e.Opts.Radius,
				e.Opts.Quantities, e.Opts.ElemSize, e.Opts.OpenBoundary)
			d := placement.DistanceMatrix(topo.Bandwidth)
			asgn = placement.NewAssignment(pp[n], placement.Cost(w, d, pp[n]))
		} else {
			asgn = placement.PlaceBoundary(e.Hier, nodeIdx, topo.Bandwidth,
				e.Opts.Radius, e.Opts.Quantities, e.Opts.ElemSize, e.Opts.NodeAware, e.Opts.OpenBoundary)
		}
		e.Assignments = append(e.Assignments, asgn)
		for s := 0; s < gpusPerNode; s++ {
			gpuIdx := e.Hier.GPUIndex(s)
			_, size := e.Hier.Subdomain(nodeIdx, gpuIdx)
			local := asgn.SubToGPU[s]
			sub := &Sub{
				GPURankIdx: s,
				NodeIdx:    nodeIdx,
				GPUIdx:     gpuIdx,
				Global:     e.Hier.GlobalIndex(nodeIdx, gpuIdx),
				NodeID:     n,
				LocalGPU:   local,
				Rank:       n*e.Opts.RanksPerNode + local/e.gpusPerRank,
				Dev:        e.RT.DeviceAt(n, local),
				Dom:        halo.NewDomain(size, e.Opts.Radius, e.Opts.Quantities, e.Opts.ElemSize, e.Opts.RealData),
			}
			sub.kernelStream = sub.Dev.NewStream(fmt.Sprintf("sub%d.kernel", n*gpusPerNode+s))
			e.Subs[n*gpusPerNode+s] = sub
		}
	}
}

// subAt returns the subdomain at a global grid index.
func (e *Exchanger) subAt(global part.Dim3) *Sub {
	nodeIdx, gpuIdx := e.Hier.Split(global)
	n := e.Hier.NodeRank(nodeIdx)
	gpusPerNode := e.M.Nodes[0].Config.GPUs()
	return e.Subs[n*gpusPerNode+e.Hier.GPURank(gpuIdx)]
}

// pickMethod applies the paper's first-applicable selection (§III-C).
func (e *Exchanger) pickMethod(src, dst *Sub) Method {
	caps := e.Opts.Caps
	switch {
	case src == dst && caps.Kernel:
		return MethodKernel
	case src.Rank == dst.Rank && caps.Peer:
		return MethodPeer
	case src.NodeID == dst.NodeID && src.Rank != dst.Rank && caps.Colocated:
		return MethodColocated
	case e.Opts.CUDAAware:
		return MethodCudaAware
	default:
		return MethodStaged
	}
}

// buildPlans creates one plan per (subdomain, direction), allocating staging
// buffers and streams, enabling peer access, and performing the one-time
// cudaIpc handle exchange for COLOCATEDMEMCPY (all during setup, which the
// paper excludes from exchange timing).
func (e *Exchanger) buildPlans() {
	for si, src := range e.Subs {
		for di, dir := range e.dirs {
			var nb part.Dim3
			if e.Opts.OpenBoundary {
				var ok bool
				nb, ok = e.Hier.NeighborOpen(src.Global, dir)
				if !ok {
					continue // domain boundary: nothing to exchange
				}
			} else {
				nb = e.Hier.Neighbor(src.Global, dir)
			}
			dst := e.subAt(nb)
			p := &Plan{
				ID:     len(e.Plans),
				Src:    src,
				Dst:    dst,
				Dir:    dir,
				Method: e.pickMethod(src, dst),
				Bytes:  src.Dom.HaloBytes(dir),
				Tag:    si*64 + di,
			}
			e.preparePlan(p)
			e.Plans = append(e.Plans, p)
		}
	}
	if e.Opts.AggregateRemote {
		e.buildGroups()
	}
}

// buildGroups collects inter-node STAGED plans into one aggregated message
// per rank pair (§VI / ref [3]: fewer, larger MPI messages) and allocates
// the shared host buffers.
func (e *Exchanger) buildGroups() {
	byPair := make(map[[2]int]*msgGroup)
	var order [][2]int
	for _, p := range e.Plans {
		if p.Method != MethodStaged || p.Src.NodeID == p.Dst.NodeID {
			continue
		}
		key := [2]int{p.Src.Rank, p.Dst.Rank}
		g, ok := byPair[key]
		if !ok {
			g = &msgGroup{
				id:      len(order),
				srcRank: p.Src.Rank,
				dstRank: p.Dst.Rank,
				tag:     len(e.Subs)*64 + len(order),
			}
			byPair[key] = g
			order = append(order, key)
			e.groups = append(e.groups, g)
		}
		p.group = g
		p.aggOffset = g.bytes
		g.bytes += p.Bytes
		g.plans = append(g.plans, p)
		// The per-plan host staging buffers are replaced by the group's.
		p.hostSend, p.hostRecv = nil, nil
	}
	for _, g := range e.groups {
		srcRank := e.W.Rank(g.srcRank)
		dstRank := e.W.Rank(g.dstRank)
		g.hostSend = e.RT.MallocHost(srcRank.Node, srcRank.Socket, g.bytes)
		g.hostRecv = e.RT.MallocHost(dstRank.Node, dstRank.Socket, g.bytes)
	}
}

// groupState returns the per-(group, iteration) progress record, creating it
// on first touch by either side.
func (e *Exchanger) groupStateOf(g *msgGroup, iter int) *groupState {
	k := slotKey{g.id, iter}
	if gs, ok := e.groupStates[k]; ok {
		return gs
	}
	gs := &groupState{
		remaining: len(g.plans),
		sendDone:  sim.NewSignal(e.Eng, fmt.Sprintf("grp%d.i%d.send", g.id, iter)),
		recvDone:  sim.NewSignal(e.Eng, fmt.Sprintf("grp%d.i%d.recv", g.id, iter)),
	}
	e.groupStates[k] = gs
	return gs
}

func (e *Exchanger) preparePlan(p *Plan) {
	name := fmt.Sprintf("p%d", p.ID)
	switch p.Method {
	case MethodKernel:
		// No buffers or extra streams: one kernel on the sub's stream.
	case MethodPeer, MethodColocated:
		p.devSend = p.Src.Dev.Malloc(p.Bytes)
		p.devRecv = p.Dst.Dev.Malloc(p.Bytes)
		p.sendStream = p.Src.Dev.NewStream(name + ".send")
		p.recvStream = p.Dst.Dev.NewStream(name + ".recv")
		if p.Src.Dev != p.Dst.Dev {
			// Peer access both directions (copy + completion visibility).
			_ = p.Src.Dev.EnablePeerAccess(p.Dst.Dev)
			_ = p.Dst.Dev.EnablePeerAccess(p.Src.Dev)
		}
		// For COLOCATEDMEMCPY the devRecv pointer crosses the process
		// boundary via cudaIpcGetMemHandle/OpenMemHandle once, here in
		// setup; exchanges then never touch MPI.
	case MethodCudaAware:
		p.devSend = p.Src.Dev.Malloc(p.Bytes)
		p.devRecv = p.Dst.Dev.Malloc(p.Bytes)
		p.sendStream = p.Src.Dev.NewStream(name + ".send")
		p.recvStream = p.Dst.Dev.NewStream(name + ".recv")
	case MethodStaged:
		p.devSend = p.Src.Dev.Malloc(p.Bytes)
		p.devRecv = p.Dst.Dev.Malloc(p.Bytes)
		srcRank := e.W.Rank(p.Src.Rank)
		dstRank := e.W.Rank(p.Dst.Rank)
		p.hostSend = e.RT.MallocHost(p.Src.NodeID, srcRank.Socket, p.Bytes)
		p.hostRecv = e.RT.MallocHost(p.Dst.NodeID, dstRank.Socket, p.Bytes)
		p.sendStream = p.Src.Dev.NewStream(name + ".send")
		p.recvStream = p.Dst.Dev.NewStream(name + ".recv")
	}
}

// slot returns the per-(plan, iteration) rendezvous signal used by
// COLOCATEDMEMCPY: the sender fires it when its peer copy lands; the
// receiver's unpack waits on it (the shared cudaIpc event).
func (e *Exchanger) slot(plan, iter int) *sim.Signal {
	k := slotKey{plan, iter}
	if s, ok := e.slots[k]; ok {
		return s
	}
	s := sim.NewSignal(e.Eng, fmt.Sprintf("slot.p%d.i%d", plan, iter))
	e.slots[k] = s
	return s
}

func neg(d part.Dim3) part.Dim3 { return part.Dim3{X: -d.X, Y: -d.Y, Z: -d.Z} }

// PlacementImprovement returns the relative QAP-cost reduction of the chosen
// placement versus the trivial linearized one for the given node: 0 when
// trivial is already optimal (or placement is disabled).
func (e *Exchanger) PlacementImprovement(node int) float64 {
	nodeIdx := e.Hier.NodeIndex(node)
	topo := nvml.Discover(e.M.Nodes[node])
	w := placement.FlowMatrixBoundary(e.Hier, nodeIdx, e.Opts.Radius, e.Opts.Quantities, e.Opts.ElemSize, e.Opts.OpenBoundary)
	d := placement.DistanceMatrix(topo.Bandwidth)
	return placement.Improvement(w, d, e.Assignments[node])
}

// MethodOf reports the method selected for the exchange from the subdomain
// at global index g in direction dir (testing/inspection helper).
func (e *Exchanger) MethodOf(g, dir part.Dim3) Method {
	for _, p := range e.Plans {
		if p.Src.Global == g && p.Dir == dir {
			return p.Method
		}
	}
	panic(fmt.Sprintf("exchange: no plan for %v dir %v", g, dir))
}
