package exchange

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/nvml"
	"github.com/nodeaware/stencil/internal/placement"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// This file is the degradation-aware adaptation layer: a health monitor that
// runs at a deterministic safe point between iterations (rank 0, after the
// timing allreduce, before the next barrier — no rank can be mid-exchange)
// and re-runs the paper's phase-3 method selection against the live link
// state. A plan whose method crosses a failed or degraded link is demoted
// down the capability ladder; when the link heals the plan is promoted back.
// With AdaptPlacement, persistent degradation additionally re-runs phase-2
// placement against the degraded bandwidth matrix and migrates subdomains.

// AdaptRecord is one adaptation decision.
type AdaptRecord struct {
	At     sim.Time
	PlanID int // -1 for node-level events (re-placement)
	From   Method
	To     Method
	Reason string
}

func (r AdaptRecord) String() string {
	if r.PlanID < 0 {
		return fmt.Sprintf("t=%-9.4gs %s", r.At, r.Reason)
	}
	return fmt.Sprintf("t=%-9.4gs plan %d %s -> %s (%s)", r.At, r.PlanID, r.From, r.To, r.Reason)
}

// planRes holds one method's buffers and streams for a plan.
type planRes struct {
	devSend, devRecv   *cudart.Buffer
	hostSend, hostRecv *cudart.Buffer
	sendStream         *cudart.Stream
	recvStream         *cudart.Stream
}

func (e *Exchanger) adaptThreshold() float64 {
	if e.Opts.AdaptThreshold == 0 {
		return 0.5
	}
	return e.Opts.AdaptThreshold
}

func (e *Exchanger) adaptEvery() int {
	if e.Opts.AdaptCheckEvery < 1 {
		return 1
	}
	return e.Opts.AdaptCheckEvery
}

func (e *Exchanger) adaptPersist() int {
	if e.Opts.AdaptPersistTicks < 1 {
		return 3
	}
	return e.Opts.AdaptPersistTicks
}

// linksHealthy reports whether every link on a path is up, above the
// degradation threshold, and not quarantined by the health monitor.
func (e *Exchanger) linksHealthy(path []*flownet.Link) bool {
	thr := e.adaptThreshold()
	for _, l := range path {
		if l.Down() || l.Health() < thr || e.health.quarantined(l) {
			return false
		}
	}
	return true
}

// stagedLinks is the path a STAGED transfer crosses outside the always-local
// stream work: D2H on the source, MPI transport, H2D on the destination.
func (e *Exchanger) stagedLinks(pl *Plan) []*flownet.Link {
	srcRank, dstRank := e.W.Rank(pl.Src.Rank), e.W.Rank(pl.Dst.Rank)
	srcNode, dstNode := e.M.Nodes[pl.Src.NodeID], e.M.Nodes[pl.Dst.NodeID]
	var path []*flownet.Link
	path = append(path, srcNode.DevToHostPath(pl.Src.LocalGPU, srcRank.Socket)...)
	path = append(path, e.M.HostToHostPath(pl.Src.NodeID, srcRank.Socket, pl.Dst.NodeID, dstRank.Socket)...)
	path = append(path, dstNode.HostToDevPath(dstRank.Socket, pl.Dst.LocalGPU)...)
	return path
}

// planPaths caches one plan's candidate link paths so the monitor does not
// rebuild (and re-allocate) them on every tick. Invalidated when re-placement
// moves the plan's endpoints.
type planPaths struct {
	built bool
	p2p   []*flownet.Link // intra-node device-to-device (Peer/Colocated rungs)
	ca    []*flownet.Link // CUDA-aware remote path
}

// pathsOf returns the plan's cached candidate paths, building them on first
// use (or after invalidation).
func (e *Exchanger) pathsOf(pl *Plan) *planPaths {
	if e.planPaths == nil {
		e.planPaths = make([]planPaths, len(e.Plans))
	}
	pp := &e.planPaths[pl.ID]
	if !pp.built {
		pp.built = true
		src, dst := pl.Src, pl.Dst
		pp.p2p, pp.ca = nil, nil
		if src.NodeID == dst.NodeID {
			pp.p2p = e.M.Nodes[src.NodeID].DevToDevPath(src.LocalGPU, dst.LocalGPU)
		}
		if e.Opts.CUDAAware {
			pp.ca = e.M.DevToDevRemotePath(src.NodeID, src.LocalGPU, dst.NodeID, dst.LocalGPU)
		}
	}
	return pp
}

// pickMethodHealthy is pickMethod with a health gate on each rung: the
// first-applicable method whose links are all up and above the threshold
// wins; STAGED is the unconditional floor (it has no alternative). With
// every link healthy it selects exactly what pickMethod selected at setup.
func (e *Exchanger) pickMethodHealthy(pl *Plan) Method {
	caps := e.Opts.Caps
	src, dst := pl.Src, pl.Dst
	if src == dst && caps.Kernel {
		// Device-internal; no link to degrade and no cheaper fallback.
		return MethodKernel
	}
	pp := e.pathsOf(pl)
	if src.NodeID == dst.NodeID {
		if src.Rank == dst.Rank && caps.Peer && e.linksHealthy(pp.p2p) {
			return MethodPeer
		}
		if src.Rank != dst.Rank && caps.Colocated && e.linksHealthy(pp.p2p) {
			return MethodColocated
		}
	}
	if e.Opts.CUDAAware && e.linksHealthy(pp.ca) {
		return MethodCudaAware
	}
	return MethodStaged
}

// healthMask packs the health state of every link the method selection can
// observe — each plan's candidate paths, in plan order — into a string key:
// one byte per link, bit 0 = down, bit 1 = below the degradation threshold.
// Two ticks with equal masks select identical method vectors, so the mask
// keys the methodMemo. The mask is exact (no hashing): a collision would
// silently mis-specialize plans.
func (e *Exchanger) healthMask() string {
	thr := e.adaptThreshold()
	buf := make([]byte, 0, 2*len(e.Plans))
	state := func(l *flownet.Link) byte {
		var b byte
		if l.Down() {
			b |= 1
		}
		if l.Health() < thr {
			b |= 2
		}
		if e.health.quarantined(l) {
			b |= 4
		}
		return b
	}
	for _, pl := range e.Plans {
		pp := e.pathsOf(pl)
		for _, l := range pp.p2p {
			buf = append(buf, state(l))
		}
		for _, l := range pp.ca {
			buf = append(buf, state(l))
		}
		buf = append(buf, 0xff) // plan separator
	}
	return string(buf)
}

// switchMethod re-specializes a plan, stashing the old method's resources
// and reusing cached ones when the plan has run under the new method before.
func (e *Exchanger) switchMethod(pl *Plan, to Method, reason string) {
	from := pl.Method
	if pl.resCache == nil {
		pl.resCache = make(map[Method]*planRes)
	}
	pl.resCache[from] = &planRes{
		devSend: pl.devSend, devRecv: pl.devRecv,
		hostSend: pl.hostSend, hostRecv: pl.hostRecv,
		sendStream: pl.sendStream, recvStream: pl.recvStream,
	}
	pl.Method = to
	if res, ok := pl.resCache[to]; ok {
		pl.devSend, pl.devRecv = res.devSend, res.devRecv
		pl.hostSend, pl.hostRecv = res.hostSend, res.hostRecv
		pl.sendStream, pl.recvStream = res.sendStream, res.recvStream
	} else {
		pl.devSend, pl.devRecv = nil, nil
		pl.hostSend, pl.hostRecv = nil, nil
		pl.sendStream, pl.recvStream = nil, nil
		e.preparePlan(pl)
	}
	// Receive duties differ per method (KERNEL/PEERMEMCPY have none), so
	// the per-rank duty lists must be rebuilt before the next iteration.
	e.sendDuties, e.recvDuties = nil, nil
	e.logAdapt(AdaptRecord{At: e.Eng.Now(), PlanID: pl.ID, From: from, To: to, Reason: reason})
}

func (e *Exchanger) logAdapt(r AdaptRecord) {
	e.AdaptLog = append(e.AdaptLog, r)
	e.Eng.Tracef("adapt: %s", r)
	tel := e.Opts.Telemetry
	if tel == nil {
		return
	}
	if r.PlanID < 0 {
		tel.Event(r.At, "adapt", telemetry.F("reason", r.Reason))
		return
	}
	tel.Counter("adapt_switches_total",
		telemetry.L("from", r.From.String()), telemetry.L("to", r.To.String())).Inc()
	tel.Gauge("exchange_plans", telemetry.L("method", r.From.String())).Add(-1)
	tel.Gauge("exchange_plans", telemetry.L("method", r.To.String())).Add(1)
	tel.Event(r.At, "adapt",
		telemetry.F("plan", r.PlanID),
		telemetry.F("from", r.From.String()),
		telemetry.F("to", r.To.String()),
		telemetry.F("reason", r.Reason))
}

// adaptTick is the monitor body. It runs on rank 0's proc at the inter-
// iteration safe point and re-specializes every plan against live health.
//
// Two caches keep the steady state cheap. First, the flow network counts
// health mutations (link fail/degrade/restore, capacity change); a tick whose
// counter matches the last rescan skips plan re-specialization outright —
// nothing selection observes can have changed. Second, when a rescan does
// run, the selected method vector is memoized under the exact health mask,
// so a recurring fault pattern (a flapping NIC, a periodic degradation)
// replays the earlier decision instead of re-running selection per plan.
// Re-placement persistence tracking still runs every tick: degradeStreak
// counts ticks, not health transitions.
func (e *Exchanger) adaptTick(p *sim.Proc) {
	// The health monitor scores links and moves quarantine state first; a
	// quarantine transition changes what selection observes without any flow-
	// network mutation, so it forces a rescan on its own.
	healthChanged := false
	if e.health != nil {
		healthChanged = e.health.tick()
	}
	if mut := e.M.Net.Mutations(); e.adaptSeen != mut+1 || healthChanged {
		e.adaptSeen = mut + 1
		e.respecialize()
	}
	if e.Opts.AdaptPlacement {
		e.checkReplacement(p)
	}
}

// applyMethod moves a plan to method want if it differs, logging the switch.
func (e *Exchanger) applyMethod(pl *Plan, want Method) {
	if want == pl.Method {
		return
	}
	reason := "degraded path"
	if want < pl.Method {
		reason = "path recovered"
	}
	e.switchMethod(pl, want, reason)
}

// respecialize re-runs phase-3 method selection for every plan against live
// link health, via the health-mask memo when this exact mask has been decided
// before.
func (e *Exchanger) respecialize() {
	mask := e.healthMask()
	if vec, ok := e.methodMemo[mask]; ok {
		for i, pl := range e.Plans {
			if pl.group != nil {
				continue
			}
			e.applyMethod(pl, vec[i])
		}
		return
	}
	for _, pl := range e.Plans {
		if pl.group != nil {
			continue // aggregated inter-node STAGED: already the floor
		}
		e.applyMethod(pl, e.pickMethodHealthy(pl))
	}
	vec := make([]Method, len(e.Plans))
	for i, pl := range e.Plans {
		vec[i] = pl.Method
	}
	if e.methodMemo == nil {
		e.methodMemo = make(map[string][]Method)
	}
	e.methodMemo[mask] = vec
}

// checkReplacement tracks per-node degradation persistence and re-runs
// phase-2 placement once per degradation episode.
func (e *Exchanger) checkReplacement(p *sim.Proc) {
	thr := e.adaptThreshold()
	for n := 0; n < e.Opts.Nodes; n++ {
		degraded := false
		for _, l := range e.M.Nodes[n].IntraLinks() {
			if l.Down() || l.Health() < thr {
				degraded = true
				break
			}
		}
		if !degraded {
			e.degradeStreak[n] = 0
			e.replaceDone[n] = false
			continue
		}
		e.degradeStreak[n]++
		if e.degradeStreak[n] >= e.adaptPersist() && !e.replaceDone[n] {
			e.replaceDone[n] = true
			e.replaceNode(p, n)
		}
	}
}

// replaceNode re-runs phase-2 placement for one node against the live
// (degraded) bandwidth matrix and migrates subdomains whose GPU changed,
// charging the migration copies on the flow network.
func (e *Exchanger) replaceNode(p *sim.Proc, n int) {
	nodeIdx := e.Hier.NodeIndex(n)
	topo := nvml.Discover(e.M.Nodes[n]) // reads live, degraded capacities
	asgn := placement.PlaceBoundary(e.Hier, nodeIdx, topo.Bandwidth,
		e.Opts.Radius, e.Opts.Quantities, e.Opts.ElemSize, e.Opts.NodeAware, e.Opts.OpenBoundary)
	gpusPerNode := e.M.Nodes[n].Config.GPUs()
	moved := 0
	var migrations []*sim.Signal
	for s := 0; s < gpusPerNode; s++ {
		sub := e.Subs[n*gpusPerNode+s]
		newLocal := asgn.SubToGPU[s]
		if newLocal == sub.LocalGPU {
			continue
		}
		moved++
		oldDev := sub.Dev
		newDev := e.RT.DeviceAt(n, newLocal)
		// Charge the state migration: the full subdomain (with halos) moves
		// device-to-device over whatever links remain.
		r := e.Opts.Radius
		sz := sub.Dom.Size
		bytes := int64(sz.X+2*r) * int64(sz.Y+2*r) * int64(sz.Z+2*r) *
			int64(e.Opts.Quantities) * int64(e.Opts.ElemSize)
		src := oldDev.Malloc(bytes)
		dst := newDev.Malloc(bytes)
		mig := oldDev.NewStream(fmt.Sprintf("migrate.%v", sub.Global))
		migrations = append(migrations, mig.MemcpyPeerAsync(
			fmt.Sprintf("migrate.%v", sub.Global), dst, 0, src, 0, bytes))
		sub.LocalGPU = newLocal
		sub.Dev = newDev
		sub.Rank = n*e.Opts.RanksPerNode + newLocal/e.gpusPerRank
		sub.kernelStream = newDev.NewStream(fmt.Sprintf("sub%d.kernel.r", n*gpusPerNode+s))
	}
	if moved == 0 {
		e.logAdapt(AdaptRecord{At: e.Eng.Now(), PlanID: -1,
			Reason: fmt.Sprintf("node %d: re-placement unchanged under degradation", n)})
		return
	}
	sim.WaitAll(p, migrations...)
	e.Assignments[n] = asgn
	// Endpoints moved: cached candidate paths and memoized method vectors
	// describe the old device assignment — drop them wholesale (re-placement
	// is rare; the caches rebuild lazily).
	e.planPaths = nil
	e.methodMemo = nil
	// Every plan touching this node re-specializes from
	// scratch (cached resources sit on the wrong devices now).
	for _, pl := range e.Plans {
		if pl.Src.NodeID != n && pl.Dst.NodeID != n {
			continue
		}
		from := pl.Method
		pl.resCache = nil
		pl.Method = e.pickMethodHealthy(pl)
		pl.devSend, pl.devRecv = nil, nil
		pl.hostSend, pl.hostRecv = nil, nil
		pl.sendStream, pl.recvStream = nil, nil
		e.preparePlan(pl)
		if pl.Method != from {
			e.logAdapt(AdaptRecord{At: e.Eng.Now(), PlanID: pl.ID, From: from, To: pl.Method,
				Reason: "re-placement"})
		}
	}
	e.sendDuties, e.recvDuties = nil, nil
	e.logAdapt(AdaptRecord{At: e.Eng.Now(), PlanID: -1,
		Reason: fmt.Sprintf("node %d: re-placed %d subdomains under persistent degradation", n, moved)})
}

// PlanInfo is an inspection snapshot of one transfer plan.
type PlanInfo struct {
	ID       int
	Src, Dst [3]int // global grid indices
	SrcRank  int
	DstRank  int
	Method   Method
	Bytes    int64
	Class    LinkClass
}

// PlanInfos snapshots the current plans (method selection reflects any
// adaptation that has happened so far).
func (e *Exchanger) PlanInfos() []PlanInfo {
	infos := make([]PlanInfo, len(e.Plans))
	for i, p := range e.Plans {
		infos[i] = PlanInfo{
			ID:      p.ID,
			Src:     [3]int{p.Src.Global.X, p.Src.Global.Y, p.Src.Global.Z},
			Dst:     [3]int{p.Dst.Global.X, p.Dst.Global.Y, p.Dst.Global.Z},
			SrcRank: p.Src.Rank,
			DstRank: p.Dst.Rank,
			Method:  p.Method,
			Bytes:   p.Bytes,
			Class:   e.classOf(p),
		}
	}
	return infos
}

// MethodCounts returns the current per-method plan counts (before a run this
// is the setup-time selection; after, it reflects adaptation).
func (e *Exchanger) MethodCounts() map[Method]int {
	c := make(map[Method]int)
	for _, p := range e.Plans {
		c[p.Method]++
	}
	return c
}
