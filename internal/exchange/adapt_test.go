package exchange

import (
	"fmt"
	"testing"

	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/sim"
)

// peerNVLinkPlan finds a PEERMEMCPY plan whose payload crosses a real
// NVLink (distinct same-triad GPUs). Placement is deterministic, so every
// fresh exchanger with the same options yields the same plan.
func peerNVLinkPlan(t *testing.T, e *Exchanger) *Plan {
	t.Helper()
	for _, pl := range e.Plans {
		if pl.Method == MethodPeer && pl.Src.Dev != pl.Dst.Dev &&
			e.M.Nodes[0].SameTriad(pl.Src.LocalGPU, pl.Dst.LocalGPU) {
			return pl
		}
	}
	t.Fatal("no NVLink-crossing PEERMEMCPY plan in this configuration")
	return nil
}

// adaptOpts is the acceptance configuration: one Summit node, two ranks, so
// intra-rank triad pairs run PEERMEMCPY and the full ladder is populated.
func adaptOpts(adaptive bool) Options {
	o := smallOpts(2, CapsAll(), false)
	o.Adaptive = adaptive
	return o
}

// killScenario schedules the acceptance fault: the NVLink under the given
// plan dies at t=50us, during the exchange, and never recovers.
func killScenario(pl *Plan) *fault.Scenario {
	return (&fault.Scenario{Name: "nvkill"}).
		KillNVLink(50e-6, 0, pl.Src.LocalGPU, pl.Dst.LocalGPU, 0)
}

func runKilled(t *testing.T, adaptive bool, iters int) (*Exchanger, *Plan, *Stats) {
	t.Helper()
	e, err := New(adaptOpts(adaptive))
	if err != nil {
		t.Fatal(err)
	}
	pl := peerNVLinkPlan(t, e)
	e.Faults = fault.NewInjector(e.M, e.RT, e.W)
	if err := e.Faults.Install(killScenario(pl)); err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	return e, pl, e.Run(iters)
}

// TestAdaptiveNVLinkFailure is the acceptance scenario: an NVLink carrying a
// PEERMEMCPY plan dies mid-run; the monitor demotes the plan to STAGED (same
// rank, so COLOCATEDMEMCPY is inapplicable), the exchange reroutes through
// host staging, and the halos remain byte-identical.
func TestAdaptiveNVLinkFailure(t *testing.T) {
	e, pl, stats := runKilled(t, true, 6)
	if pl.Method != MethodStaged {
		t.Errorf("plan %d after NVLink failure: method %s, want STAGED", pl.ID, pl.Method)
	}
	if len(stats.AdaptEvents) == 0 {
		t.Fatal("no adaptation events recorded")
	}
	if len(stats.FaultLog) == 0 {
		t.Fatal("no fault log recorded")
	}
	found := false
	for _, r := range stats.AdaptEvents {
		if r.PlanID == pl.ID && r.From == MethodPeer && r.To == MethodStaged {
			found = true
		}
	}
	if !found {
		t.Errorf("no PEERMEMCPY->STAGED record for plan %d in %v", pl.ID, stats.AdaptEvents)
	}
	if stats.MethodCount[MethodStaged] == 0 {
		t.Error("final method breakdown shows no STAGED plans")
	}
	verifyHalos(t, e)
}

// TestAdaptiveBeatsNonAdaptive: under the identical scenario the adaptive
// run finishes in strictly less virtual time than the non-adaptive one,
// which keeps pushing bytes through the failed link's residual trickle. Both
// stay byte-correct.
func TestAdaptiveBeatsNonAdaptive(t *testing.T) {
	sum := func(s *Stats) sim.Time {
		var tot sim.Time
		for _, it := range s.Iterations {
			tot += it
		}
		return tot
	}
	eAdapt, _, sAdapt := runKilled(t, true, 6)
	eFixed, plFixed, sFixed := runKilled(t, false, 6)
	if plFixed.Method != MethodPeer {
		t.Errorf("non-adaptive plan changed method to %s", plFixed.Method)
	}
	if len(sFixed.AdaptEvents) != 0 {
		t.Errorf("non-adaptive run recorded adaptation: %v", sFixed.AdaptEvents)
	}
	ta, tf := sum(sAdapt), sum(sFixed)
	if ta >= tf {
		t.Errorf("adaptive total %.6gs not better than non-adaptive %.6gs", ta, tf)
	}
	verifyHalos(t, eAdapt)
	verifyHalos(t, eFixed)
}

// TestAdaptiveDeterminism: identical scenario and configuration produce
// identical iteration times, fault logs, and adaptation logs. This run also
// exercises the Options.Fault installation path.
func TestAdaptiveDeterminism(t *testing.T) {
	run := func() (string, *Stats) {
		opts := adaptOpts(true)
		probe, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		pl := peerNVLinkPlan(t, probe)
		opts.Fault = killScenario(pl)
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		fillGlobal(e)
		stats := e.Run(5)
		trace := ""
		for _, r := range stats.FaultLog {
			trace += fmt.Sprintf("F %.15g %s\n", r.At, r.Desc)
		}
		for _, r := range stats.AdaptEvents {
			trace += fmt.Sprintf("A %.15g %d %s %s %s\n", r.At, r.PlanID, r.From, r.To, r.Reason)
		}
		for _, it := range stats.Iterations {
			trace += fmt.Sprintf("I %.15g\n", it)
		}
		return trace, stats
	}
	t1, s1 := run()
	t2, _ := run()
	if t1 != t2 {
		t.Errorf("traces differ:\n%s\nvs\n%s", t1, t2)
	}
	if len(s1.FaultLog) == 0 || len(s1.AdaptEvents) == 0 {
		t.Fatalf("scenario did not exercise fault+adapt: faults=%d adapts=%d",
			len(s1.FaultLog), len(s1.AdaptEvents))
	}
}

// TestRepromotionReusesResources: demote/promote cycles restore the cached
// buffers and streams instead of allocating fresh ones.
func TestRepromotionReusesResources(t *testing.T) {
	e, err := New(adaptOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	pl := peerNVLinkPlan(t, e)
	ab, ba := e.M.Nodes[0].NVLinkPair(pl.Src.LocalGPU, pl.Dst.LocalGPU)
	peerSend := pl.devSend

	e.M.Net.FailLink(ab)
	e.M.Net.FailLink(ba)
	e.adaptTick(nil)
	if pl.Method != MethodStaged {
		t.Fatalf("after failure: method %s, want STAGED", pl.Method)
	}
	stagedHost := pl.hostSend
	if stagedHost == nil {
		t.Fatal("STAGED plan has no host staging buffer")
	}

	e.M.Net.RestoreLink(ab)
	e.M.Net.RestoreLink(ba)
	e.adaptTick(nil)
	if pl.Method != MethodPeer {
		t.Fatalf("after recovery: method %s, want PEERMEMCPY", pl.Method)
	}
	if pl.devSend != peerSend {
		t.Error("re-promotion allocated a fresh device buffer instead of reusing the cached one")
	}

	e.M.Net.FailLink(ab)
	e.M.Net.FailLink(ba)
	e.adaptTick(nil)
	if pl.hostSend != stagedHost {
		t.Error("second demotion allocated a fresh host buffer instead of reusing the cached one")
	}
	// The pair exchanges several directions, so each tick flips several
	// plans; the target plan itself must have exactly three records.
	got := 0
	for _, r := range e.AdaptLog {
		if r.PlanID == pl.ID {
			got++
		}
	}
	if got != 3 {
		t.Errorf("adapt log entries for plan %d: got %d want 3: %v", pl.ID, got, e.AdaptLog)
	}
}

// TestPickMethodHealthyMatchesSetup: with every link healthy the health-
// gated selection reproduces the setup-time selection exactly, for every
// rung of the capability ladder.
func TestPickMethodHealthyMatchesSetup(t *testing.T) {
	for _, caps := range []Capabilities{CapsRemote(), CapsColo(), CapsPeer(), CapsAll()} {
		for _, ca := range []bool{false, true} {
			o := smallOpts(2, caps, ca)
			o.RealData = false
			e, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			for _, pl := range e.Plans {
				if got := e.pickMethodHealthy(pl); got != pl.Method {
					t.Errorf("caps=%+v ca=%v plan %d: healthy pick %s != setup pick %s",
						caps, ca, pl.ID, got, pl.Method)
				}
			}
		}
	}
}

// TestAdaptPlacement: persistent heavy degradation of an NVLink triggers a
// phase-2 re-placement pass against the live bandwidth matrix; the exchange
// remains byte-correct afterward (subdomain state migrates with the GPUs).
func TestAdaptPlacement(t *testing.T) {
	o := adaptOpts(true)
	o.AdaptPlacement = true
	o.AdaptPersistTicks = 2
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	pl := peerNVLinkPlan(t, e)
	sc := (&fault.Scenario{Name: "degrade"}).Add(fault.Event{
		At: 50e-6, Kind: fault.LinkDegrade, Factor: 0.02,
		Target: fault.Target{Node: 0, Kind: fault.TargetNVLink, A: pl.Src.LocalGPU, B: pl.Dst.LocalGPU},
	})
	e.Faults = fault.NewInjector(e.M, e.RT, e.W)
	if err := e.Faults.Install(sc); err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	stats := e.Run(8)
	replaced := false
	for _, r := range stats.AdaptEvents {
		if r.PlanID == -1 {
			replaced = true
		}
	}
	if !replaced {
		t.Errorf("no re-placement record under persistent degradation: %v", stats.AdaptEvents)
	}
	// Whatever the QAP decided, the machine invariants must hold.
	for _, s := range e.Subs {
		if s.Dev != e.RT.DeviceAt(s.NodeID, s.LocalGPU) {
			t.Errorf("sub %v device/GPU mismatch after re-placement", s.Global)
		}
		if want := s.NodeID*o.RanksPerNode + s.LocalGPU/e.gpusPerRank; s.Rank != want {
			t.Errorf("sub %v rank %d, want %d", s.Global, s.Rank, want)
		}
	}
	verifyHalos(t, e)
}

// TestAdaptOptionValidation: the knob combinations that cannot work are
// rejected at construction.
func TestAdaptOptionValidation(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.AdaptPlacement = true },
		func(o *Options) { o.Adaptive = true; o.AdaptPlacement = true; o.AggregateRemote = true },
		func(o *Options) { o.AdaptThreshold = 1.5 },
		func(o *Options) { o.AdaptThreshold = -0.1 },
	}
	for i, mod := range bad {
		o := smallOpts(2, CapsAll(), false)
		o.RealData = false
		mod(&o)
		if _, err := New(o); err == nil {
			t.Errorf("case %d: New accepted an invalid adaptation configuration", i)
		}
	}
}
