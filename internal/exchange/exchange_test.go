package exchange

import (
	"encoding/binary"
	"testing"

	"github.com/nodeaware/stencil/internal/part"
)

// smallOpts builds a real-data single-node configuration for correctness
// tests.
func smallOpts(ranks int, caps Capabilities, cudaAware bool) Options {
	return Options{
		Nodes:        1,
		RanksPerNode: ranks,
		Domain:       part.Dim3{X: 24, Y: 18, Z: 12},
		Radius:       1,
		Quantities:   2,
		ElemSize:     4,
		Caps:         caps,
		CUDAAware:    cudaAware,
		NodeAware:    true,
		RealData:     true,
	}
}

// fillGlobal writes a unique value derived from the global coordinate into
// every interior cell of every subdomain.
func fillGlobal(e *Exchanger) {
	for _, sub := range e.Subs {
		origin, size := e.Hier.Subdomain(sub.NodeIdx, sub.GPUIdx)
		for q := 0; q < sub.Dom.Quantities; q++ {
			for z := 0; z < size.Z; z++ {
				for y := 0; y < size.Y; y++ {
					for x := 0; x < size.X; x++ {
						v := globalValue(e, q, origin.X+x, origin.Y+y, origin.Z+z)
						binary.LittleEndian.PutUint32(sub.Dom.At(q, x, y, z), v)
					}
				}
			}
		}
	}
}

func globalValue(e *Exchanger, q, x, y, z int) uint32 {
	d := e.Opts.Domain
	return uint32(q+1)*0x01000000 + uint32((z*d.Y+y)*d.X+x)
}

// verifyHalos checks that after an exchange every halo cell of every
// subdomain holds the periodic-neighbor interior value.
func verifyHalos(t *testing.T, e *Exchanger) {
	t.Helper()
	d := e.Opts.Domain
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	bad := 0
	for _, sub := range e.Subs {
		origin, size := e.Hier.Subdomain(sub.NodeIdx, sub.GPUIdx)
		r := sub.Dom.Radius
		for q := 0; q < sub.Dom.Quantities; q++ {
			for z := -r; z < size.Z+r; z++ {
				for y := -r; y < size.Y+r; y++ {
					for x := -r; x < size.X+r; x++ {
						interior := x >= 0 && x < size.X && y >= 0 && y < size.Y && z >= 0 && z < size.Z
						if interior {
							continue
						}
						gx, gy, gz := wrap(origin.X+x, d.X), wrap(origin.Y+y, d.Y), wrap(origin.Z+z, d.Z)
						want := globalValue(e, q, gx, gy, gz)
						got := binary.LittleEndian.Uint32(sub.Dom.At(q, x, y, z))
						if got != want {
							bad++
							if bad <= 5 {
								t.Errorf("sub %v halo (%d,%d,%d) q%d = %#x, want %#x (global %d,%d,%d)",
									sub.Global, x, y, z, q, got, want, gx, gy, gz)
							}
						}
					}
				}
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d bad halo cells", bad)
	}
}

func TestExchangeCorrectnessAllCapLevels(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ranks int
		caps  Capabilities
		ca    bool
	}{
		{"staged-1rank", 1, CapsRemote(), false},
		{"staged-2ranks", 2, CapsRemote(), false},
		{"staged-6ranks", 6, CapsRemote(), false},
		{"colo-6ranks", 6, CapsColo(), false},
		{"peer-6ranks", 6, CapsPeer(), false},
		{"kernel-6ranks", 6, CapsAll(), false},
		{"kernel-1rank", 1, CapsAll(), false},
		{"kernel-2ranks", 2, CapsAll(), false},
		{"cudaaware-6ranks", 6, CapsRemote(), true},
		{"cudaaware-all-6ranks", 6, CapsAll(), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(smallOpts(tc.ranks, tc.caps, tc.ca))
			if err != nil {
				t.Fatal(err)
			}
			fillGlobal(e)
			st := e.Run(1)
			if st.Mean() <= 0 {
				t.Error("exchange took no time")
			}
			verifyHalos(t, e)
		})
	}
}

func TestExchangeCorrectnessMultiNode(t *testing.T) {
	opts := Options{
		Nodes:        4,
		RanksPerNode: 6,
		Domain:       part.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       2,
		Quantities:   1,
		ElemSize:     4,
		Caps:         CapsAll(),
		NodeAware:    true,
		RealData:     true,
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	e.Run(1)
	verifyHalos(t, e)
}

func TestExchangeCorrectnessRepeatedIterations(t *testing.T) {
	// Re-running the exchange must remain correct (buffers and matching are
	// reused across iterations).
	e, err := New(smallOpts(6, CapsAll(), false))
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	st := e.Run(3)
	if len(st.Iterations) != 3 {
		t.Fatalf("iterations = %d", len(st.Iterations))
	}
	verifyHalos(t, e)
}

func TestMethodSelectionLadder(t *testing.T) {
	// 6 GPUs on one node, 2 ranks: grid [3 2 1]. Verify first-applicable
	// selection at each rung.
	base := smallOpts(2, CapsRemote(), false)
	base.RealData = false

	// +remote only: everything is STAGED.
	e, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range e.Plans {
		if p.Method != MethodStaged {
			t.Fatalf("remote-only plan uses %v", p.Method)
		}
	}

	// +colo: cross-rank same-node plans become COLOCATEDMEMCPY; same-rank
	// plans stay STAGED.
	base.Caps = CapsColo()
	e, err = New(base)
	if err != nil {
		t.Fatal(err)
	}
	seenColo, seenStaged := false, false
	for _, p := range e.Plans {
		switch {
		case p.Src.Rank != p.Dst.Rank:
			if p.Method != MethodColocated {
				t.Fatalf("cross-rank plan uses %v", p.Method)
			}
			seenColo = true
		default:
			if p.Method != MethodStaged {
				t.Fatalf("same-rank plan uses %v", p.Method)
			}
			seenStaged = true
		}
	}
	if !seenColo || !seenStaged {
		t.Fatal("expected both colocated and staged plans at +colo")
	}

	// +peer: same-rank cross-GPU (and self) plans become PEERMEMCPY.
	base.Caps = CapsPeer()
	e, err = New(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range e.Plans {
		if p.Src.Rank == p.Dst.Rank && p.Method != MethodPeer {
			t.Fatalf("same-rank plan uses %v at +peer", p.Method)
		}
	}

	// +kernel: self-exchanges become KERNEL.
	base.Caps = CapsAll()
	e, err = New(base)
	if err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, p := range e.Plans {
		if p.Src == p.Dst {
			if p.Method != MethodKernel {
				t.Fatalf("self plan uses %v at +kernel", p.Method)
			}
			kernels++
		}
	}
	// Grid [3 2 1]: z has extent 1, so all z-involving directions wrap to
	// self; every sub has self plans.
	if kernels == 0 {
		t.Fatal("no kernel self-exchanges found")
	}
}

func TestCudaAwareSelectsRemoteMethod(t *testing.T) {
	opts := smallOpts(6, CapsRemote(), true)
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range e.Plans {
		if p.Method != MethodCudaAware {
			t.Fatalf("CUDA-aware remote-only plan uses %v", p.Method)
		}
	}
}

func TestPlanCountAndBytes(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Plans) != 6*26 {
		t.Errorf("plans = %d, want %d", len(e.Plans), 6*26)
	}
	for _, p := range e.Plans {
		if p.Bytes != p.Src.Dom.HaloBytes(p.Dir) {
			t.Errorf("plan %d bytes %d != halo bytes", p.ID, p.Bytes)
		}
		if p.Bytes <= 0 {
			t.Errorf("plan %d has no bytes", p.ID)
		}
	}
}

func TestFaceOnlyMode(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.FaceOnly = true
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Plans) != 6*6 {
		t.Errorf("face-only plans = %d, want 36", len(e.Plans))
	}
}

func TestSpecializationLadderPerformance(t *testing.T) {
	// The paper's Fig 12a ordering at 6 ranks: each capability rung is at
	// least as fast as the previous, and +peer/+kernel beat STAGED by a
	// large factor.
	run := func(caps Capabilities) float64 {
		opts := Options{
			Nodes:        1,
			RanksPerNode: 6,
			Domain:       part.Dim3{X: 1362, Y: 1362, Z: 1362},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         caps,
			NodeAware:    true,
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(2).Min()
	}
	staged := run(CapsRemote())
	colo := run(CapsColo())
	peer := run(CapsPeer())
	kernel := run(CapsAll())
	t.Logf("staged=%.3fms colo=%.3fms peer=%.3fms kernel=%.3fms speedup=%.1fx",
		staged*1e3, colo*1e3, peer*1e3, kernel*1e3, staged/kernel)
	if !(colo <= staged && peer <= colo*1.001 && kernel <= peer*1.001) {
		t.Errorf("ladder not monotone: %g %g %g %g", staged, colo, peer, kernel)
	}
	if staged/kernel < 3 {
		t.Errorf("specialization speedup %.2fx too small (paper: ~6x)", staged/kernel)
	}
}

func TestNodeAwarePlacementFasterOnFig11Scenario(t *testing.T) {
	run := func(aware bool) float64 {
		opts := Options{
			Nodes:        1,
			RanksPerNode: 6,
			Domain:       part.Dim3{X: 1440, Y: 1452, Z: 700},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         CapsAll(),
			NodeAware:    aware,
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(2).Min()
	}
	aware := run(true)
	trivial := run(false)
	t.Logf("aware=%.3fms trivial=%.3fms speedup=%.3fx", aware*1e3, trivial*1e3, trivial/aware)
	if aware >= trivial {
		t.Errorf("node-aware placement (%.4f) not faster than trivial (%.4f)", aware, trivial)
	}
}

func TestStagedRanksScaling(t *testing.T) {
	// Fig 12a: with STAGED only, more ranks per node is faster (more
	// progress engines doing the shared-memory copies).
	run := func(ranks int) float64 {
		opts := Options{
			Nodes:        1,
			RanksPerNode: ranks,
			Domain:       part.Dim3{X: 1362, Y: 1362, Z: 1362},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         CapsRemote(),
			NodeAware:    true,
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(2).Min()
	}
	r1, r2, r6 := run(1), run(2), run(6)
	t.Logf("staged 1r=%.3fms 2r=%.3fms 6r=%.3fms", r1*1e3, r2*1e3, r6*1e3)
	if !(r6 < r2 && r2 < r1) {
		t.Errorf("staged should speed up with ranks: 1r=%g 2r=%g 6r=%g", r1, r2, r6)
	}
}

func TestStatsAccounting(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(2)
	total := 0
	for _, c := range st.MethodCount {
		total += c
	}
	if total != len(e.Plans) {
		t.Errorf("method counts %d != plans %d", total, len(e.Plans))
	}
	var bytes int64
	for _, b := range st.MethodBytes {
		bytes += b
	}
	if bytes != st.TotalBytes {
		t.Errorf("method bytes %d != total %d", bytes, st.TotalBytes)
	}
	if st.Min() > st.Mean() || st.Mean() > st.Max() {
		t.Error("min/mean/max ordering violated")
	}
	if st.String() == "" || opts.ConfigString() == "" {
		t.Error("empty renderings")
	}
}

func TestConfigStrings(t *testing.T) {
	o := Options{Nodes: 2, RanksPerNode: 6, Domain: part.Dim3{X: 750, Y: 750, Z: 750}, CUDAAware: true}
	if got := o.ConfigString(); got != "2n/6r/6g/750/ca" {
		t.Errorf("ConfigString = %q", got)
	}
	o.Caps = CapsPeer()
	if got := o.CapsString(); got != "+peer" {
		t.Errorf("CapsString = %q", got)
	}
	o.Caps = CapsAll()
	if got := o.CapsString(); got != "+kernel" {
		t.Errorf("CapsString = %q", got)
	}
}

func TestTraceCollection(t *testing.T) {
	opts := smallOpts(2, CapsAll(), false)
	opts.TraceOps = true
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	e.Run(1)
	if len(e.Trace) == 0 {
		t.Fatal("no ops traced")
	}
	// Trace must contain kernels and at least one copy.
	kinds := make(map[string]bool)
	for _, r := range e.Trace {
		kinds[r.Kind.String()] = true
		if r.End < r.Start {
			t.Errorf("op %s ends before start", r.Name)
		}
	}
	if !kinds["kernel"] {
		t.Error("no kernels in trace")
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := New(Options{Nodes: 0, RanksPerNode: 1, Domain: part.Dim3{X: 8, Y: 8, Z: 8}, Radius: 1, Quantities: 1, ElemSize: 4}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(Options{Nodes: 1, RanksPerNode: 4, Domain: part.Dim3{X: 8, Y: 8, Z: 8}, Radius: 1, Quantities: 1, ElemSize: 4}); err == nil {
		t.Error("4 ranks over 6 GPUs accepted")
	}
	if _, err := New(Options{Nodes: 64, RanksPerNode: 1, Domain: part.Dim3{X: 2, Y: 2, Z: 2}, Radius: 1, Quantities: 1, ElemSize: 4}); err == nil {
		t.Error("oversplit domain accepted")
	}
	if _, err := New(Options{Nodes: 1, RanksPerNode: 1, Domain: part.Dim3{X: 8, Y: 8, Z: 8}, Radius: 0, Quantities: 1, ElemSize: 4}); err == nil {
		t.Error("zero radius accepted")
	}
}
