package exchange

import (
	"testing"

	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/part"
)

// TestCustomNodeShapes runs end-to-end real-data exchanges on the
// non-default node shapes, including the 16-GPU FatNode, which takes the
// heuristic QAP path (16! permutations are far beyond exhaustive search).
func TestCustomNodeShapes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   machine.NodeConfig
		ranks int
	}{
		{"sierra-2x2", machine.SierraNode(), 4},
		{"dgx-2x4", machine.DGXNode(), 8},
		{"dgx-1rank", machine.DGXNode(), 1},
		{"fat-2x8", machine.FatNode(), 16},
		{"fat-2ranks", machine.FatNode(), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			opts := Options{
				Nodes:        1,
				RanksPerNode: tc.ranks,
				Domain:       part.Dim3{X: 32, Y: 32, Z: 32},
				Radius:       1,
				Quantities:   1,
				ElemSize:     4,
				Caps:         CapsAll(),
				NodeAware:    true,
				RealData:     true,
				NodeConfig:   &cfg,
			}
			e, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(e.Subs) != cfg.GPUs() {
				t.Fatalf("subs = %d, want %d", len(e.Subs), cfg.GPUs())
			}
			fillGlobal(e)
			st := e.Run(1)
			if st.Min() <= 0 {
				t.Error("no exchange time")
			}
			verifyHalos(t, e)
		})
	}
}

// TestFatNodePlacementBeatsTrivial checks that the heuristic placement still
// improves over trivial on a high-aspect domain with 16 GPUs per node.
func TestFatNodePlacementBeatsTrivial(t *testing.T) {
	run := func(aware bool) float64 {
		cfg := machine.FatNode()
		opts := Options{
			Nodes:        1,
			RanksPerNode: 16,
			Domain:       part.Dim3{X: 3840, Y: 968, Z: 700}, // high aspect
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         CapsAll(),
			NodeAware:    aware,
			NodeConfig:   &cfg,
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(2).Min()
	}
	aware := run(true)
	trivial := run(false)
	t.Logf("16-GPU node: aware=%.3fms trivial=%.3fms (%.2fx)", aware*1e3, trivial*1e3, trivial/aware)
	if aware > trivial*1.001 {
		t.Errorf("heuristic placement (%.4f) worse than trivial (%.4f)", aware, trivial)
	}
}
