package exchange

import (
	"reflect"
	"testing"

	"github.com/nodeaware/stencil/internal/part"
)

func presetOpts() Options {
	return Options{
		Nodes:        2,
		RanksPerNode: 2,
		Domain:       part.Dim3{X: 48, Y: 48, Z: 48},
		Radius:       1,
		Quantities:   2,
		ElemSize:     4,
		Caps:         CapsAll(),
		NodeAware:    true,
	}
}

// Injecting the assignments a run computed must reproduce that run exactly:
// same placement, same plans, same virtual times.
func TestPresetPlacementReproducesRun(t *testing.T) {
	cold, err := New(presetOpts())
	if err != nil {
		t.Fatal(err)
	}
	preset := make([][]int, len(cold.Assignments))
	for n, a := range cold.Assignments {
		preset[n] = append([]int(nil), a.SubToGPU...)
	}
	coldStats := cold.Run(3)

	opts := presetOpts()
	opts.PresetPlacement = preset
	warm, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := range preset {
		if !reflect.DeepEqual(warm.Assignments[n].SubToGPU, preset[n]) {
			t.Fatalf("node %d: preset %v, got %v", n, preset[n], warm.Assignments[n].SubToGPU)
		}
		if warm.Assignments[n].Cost != cold.Assignments[n].Cost {
			t.Fatalf("node %d: cost %g != computed %g", n, warm.Assignments[n].Cost, cold.Assignments[n].Cost)
		}
	}
	warmStats := warm.Run(3)
	if !reflect.DeepEqual(coldStats.Iterations, warmStats.Iterations) {
		t.Fatalf("iteration times differ: cold %v, warm %v", coldStats.Iterations, warmStats.Iterations)
	}
	if !reflect.DeepEqual(cold.MethodCounts(), warm.MethodCounts()) {
		t.Fatalf("method selection differs: cold %v, warm %v", cold.MethodCounts(), warm.MethodCounts())
	}
}

func TestPresetPlacementValidation(t *testing.T) {
	cases := []struct {
		name   string
		preset [][]int
	}{
		{"wrong node count", [][]int{{0, 1, 2, 3, 4, 5}}},
		{"wrong gpu count", [][]int{{0, 1}, {0, 1}}},
		{"not a permutation", [][]int{{0, 0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5}}},
		{"out of range", [][]int{{0, 1, 2, 3, 4, 6}, {0, 1, 2, 3, 4, 5}}},
	}
	for _, tc := range cases {
		opts := presetOpts()
		opts.PresetPlacement = tc.preset
		if _, err := New(opts); err == nil {
			t.Errorf("%s: New accepted preset %v", tc.name, tc.preset)
		}
	}
}
