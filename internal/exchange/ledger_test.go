package exchange

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
	"github.com/nodeaware/stencil/internal/trace"
)

// ledgerOpts is a small configuration with enough features on that every
// ledger dimension (reliable, verify, recovery, adapt, baseline) accrues
// attribution during the run.
func ledgerOpts(workers int) Options {
	return Options{
		Nodes:           2,
		RanksPerNode:    2,
		Domain:          part.Dim3{X: 16, Y: 16, Z: 16},
		Radius:          1,
		Quantities:      1,
		ElemSize:        4,
		Caps:            CapsAll(),
		NodeAware:       true,
		RealData:        true,
		Workers:         workers,
		Reliable:        true,
		VerifyExchange:  true,
		CheckpointEvery: 2,
		Adaptive:        true,
		TraceOps:        true,
	}
}

// ledgerOutputs captures every exporter's bytes from one ledgered run.
type ledgerOutputs struct {
	virt     sim.Time
	prom     []byte // Prometheus exposition text
	json     []byte // full Snapshot JSON
	events   []byte // NDJSON event log
	perfetto []byte // Chrome trace-event JSON of the op trace
	ledger   []telemetry.LedgerEntry
}

func runLedgered(t *testing.T, workers int) ledgerOutputs {
	t.Helper()
	opts := ledgerOpts(workers)
	tel := telemetry.New()
	opts.Telemetry = tel
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	e.Run(4)

	out := ledgerOutputs{virt: e.Eng.Now(), ledger: tel.Ledger()}
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out.prom = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out.json = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := tel.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	out.events = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := trace.New(e.Trace).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out.perfetto = append([]byte(nil), buf.Bytes()...)
	return out
}

// TestLedgerExportByteIdentity pins the ledger's determinism contract: with
// per-feature attribution enabled, every exporter (Prometheus, JSON
// snapshot, NDJSON events, Perfetto op trace) emits byte-identical output
// across reruns and across sequential vs. parallel payload execution, and
// the ledger itself is reproduced entry for entry.
func TestLedgerExportByteIdentity(t *testing.T) {
	ref := runLedgered(t, 0)
	for _, run := range []struct {
		label   string
		workers int
	}{
		{"rerun/workers=0", 0},
		{"workers=4", 4},
	} {
		got := runLedgered(t, run.workers)
		if got.virt != ref.virt {
			t.Errorf("%s: virtual time %v, want %v", run.label, got.virt, ref.virt)
		}
		if !bytes.Equal(got.prom, ref.prom) {
			t.Errorf("%s: Prometheus output differs", run.label)
		}
		if !bytes.Equal(got.json, ref.json) {
			t.Errorf("%s: JSON snapshot differs", run.label)
		}
		if !bytes.Equal(got.events, ref.events) {
			t.Errorf("%s: NDJSON event log differs", run.label)
		}
		if !bytes.Equal(got.perfetto, ref.perfetto) {
			t.Errorf("%s: Perfetto trace differs", run.label)
		}
		if !reflect.DeepEqual(got.ledger, ref.ledger) {
			t.Errorf("%s: ledger differs:\n  %+v\n  %+v", run.label, got.ledger, ref.ledger)
		}
	}

	// The run must actually have fed the ledger, or identity is vacuous.
	byFeat := make(map[telemetry.Feature]telemetry.LedgerEntry)
	for _, e := range ref.ledger {
		byFeat[e.Feature] = e
	}
	for _, f := range []telemetry.Feature{
		telemetry.FeatureBaseline, telemetry.FeatureReliable,
		telemetry.FeatureVerify, telemetry.FeatureRecovery,
	} {
		e := byFeat[f]
		if e.Spans == 0 && e.Events == 0 && e.VirtualSeconds == 0 && e.HostAllocs == 0 {
			t.Errorf("feature %s accrued nothing; the configuration no longer exercises it", f)
		}
	}
	if byFeat[telemetry.FeatureSelf].HostAllocBytes == 0 {
		t.Error("telemetry-self entry reports zero retained bytes")
	}
}

// TestLedgerPassive pins the other half of the contract: attaching the
// recorder (and with it the whole feature ledger) must not move simulated
// time by a single bit relative to an unrecorded run.
func TestLedgerPassive(t *testing.T) {
	run := func(withTel bool) (sim.Time, []sim.Time) {
		opts := ledgerOpts(0)
		opts.TraceOps = false
		if withTel {
			opts.Telemetry = telemetry.New()
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		fillGlobal(e)
		st := e.Run(4)
		return e.Eng.Now(), st.Iterations
	}
	virtOn, itersOn := run(true)
	virtOff, itersOff := run(false)
	if virtOn != virtOff {
		t.Fatalf("recorder changed final virtual time: %v with vs %v without", virtOn, virtOff)
	}
	if !reflect.DeepEqual(itersOn, itersOff) {
		t.Fatalf("recorder changed iteration times:\n  on:  %v\n  off: %v", itersOn, itersOff)
	}
}
