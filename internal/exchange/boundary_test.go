package exchange

import (
	"encoding/binary"
	"testing"

	"github.com/nodeaware/stencil/internal/part"
)

func TestOpenBoundaryCorrectness(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.OpenBoundary = true
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Poison all halo cells so untouched ones are detectable, then fill
	// interiors and exchange.
	const poison = 0xdeadbeef
	for _, sub := range e.Subs {
		r := sub.Dom.Radius
		size := sub.Dom.Size
		for q := 0; q < sub.Dom.Quantities; q++ {
			for z := -r; z < size.Z+r; z++ {
				for y := -r; y < size.Y+r; y++ {
					for x := -r; x < size.X+r; x++ {
						interior := x >= 0 && x < size.X && y >= 0 && y < size.Y && z >= 0 && z < size.Z
						if !interior {
							binary.LittleEndian.PutUint32(sub.Dom.At(q, x, y, z), poison)
						}
					}
				}
			}
		}
	}
	fillGlobal(e)
	e.Run(1)

	d := e.Opts.Domain
	for _, sub := range e.Subs {
		origin, size := e.Hier.Subdomain(sub.NodeIdx, sub.GPUIdx)
		r := sub.Dom.Radius
		for q := 0; q < sub.Dom.Quantities; q++ {
			for z := -r; z < size.Z+r; z++ {
				for y := -r; y < size.Y+r; y++ {
					for x := -r; x < size.X+r; x++ {
						interior := x >= 0 && x < size.X && y >= 0 && y < size.Y && z >= 0 && z < size.Z
						if interior {
							continue
						}
						gx, gy, gz := origin.X+x, origin.Y+y, origin.Z+z
						outside := gx < 0 || gx >= d.X || gy < 0 || gy >= d.Y || gz < 0 || gz >= d.Z
						got := binary.LittleEndian.Uint32(sub.Dom.At(q, x, y, z))
						if outside {
							if got != poison {
								t.Fatalf("sub %v: boundary halo (%d,%d,%d) was written (%#x)", sub.Global, x, y, z, got)
							}
							continue
						}
						want := globalValue(e, q, gx, gy, gz)
						if got != want {
							t.Fatalf("sub %v: interior-adjacent halo (%d,%d,%d) = %#x, want %#x", sub.Global, x, y, z, got, want)
						}
					}
				}
			}
		}
	}
}

func TestOpenBoundaryFewerPlans(t *testing.T) {
	base := smallOpts(6, CapsAll(), false)
	base.RealData = false
	periodic, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	base.OpenBoundary = true
	open, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(open.Plans) >= len(periodic.Plans) {
		t.Errorf("open boundary plans %d not fewer than periodic %d", len(open.Plans), len(periodic.Plans))
	}
	// No KERNEL self-exchanges without periodic wrap.
	for _, p := range open.Plans {
		if p.Method == MethodKernel || p.Src == p.Dst {
			t.Errorf("self-exchange plan under open boundary: %v dir %v", p.Src.Global, p.Dir)
		}
	}
}

func TestNeighborOpenEdges(t *testing.T) {
	h, err := part.NewHier(part.Dim3{X: 60, Y: 60, Z: 60}, 1, 6) // grid [3 2 1]
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.NeighborOpen(part.Dim3{X: 2, Y: 0, Z: 0}, part.Dim3{X: 1}); ok {
		t.Error("+x step off the grid edge should have no neighbor")
	}
	if nb, ok := h.NeighborOpen(part.Dim3{X: 1, Y: 0, Z: 0}, part.Dim3{X: 1}); !ok || nb != (part.Dim3{X: 2, Y: 0, Z: 0}) {
		t.Errorf("interior +x neighbor = %v ok=%v", nb, ok)
	}
	if _, ok := h.NeighborOpen(part.Dim3{X: 0, Y: 0, Z: 0}, part.Dim3{X: 0, Y: 0, Z: 1}); ok {
		t.Error("z step in a z-extent-1 grid should have no open neighbor")
	}
}

func TestNeighborhood18(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.Neighborhood = 18
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Plans) != 6*18 {
		t.Fatalf("plans = %d, want %d", len(e.Plans), 6*18)
	}
	// No corner directions in any plan.
	for _, p := range e.Plans {
		nz := 0
		for _, v := range []int{p.Dir.X, p.Dir.Y, p.Dir.Z} {
			if v != 0 {
				nz++
			}
		}
		if nz == 3 {
			t.Fatalf("corner direction %v in 18-neighborhood", p.Dir)
		}
	}
	fillGlobal(e)
	e.Run(1) // must execute cleanly; corner halos are simply not exchanged
}

func TestNeighborhoodInvalid(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.Neighborhood = 7
	if _, err := New(opts); err == nil {
		t.Error("neighborhood 7 accepted")
	}
}

func TestThinSubdomainRejected(t *testing.T) {
	// 6 GPUs over a 12x4x4 domain split [6 1 1] gives 2-cell-thin
	// subdomains, below radius 3.
	opts := Options{
		Nodes:        1,
		RanksPerNode: 6,
		Domain:       part.Dim3{X: 12, Y: 4, Z: 4},
		Radius:       3,
		Quantities:   1,
		ElemSize:     4,
		Caps:         CapsAll(),
	}
	if _, err := New(opts); err == nil {
		t.Error("subdomain thinner than radius accepted")
	}
}

func TestSetupTimesRecorded(t *testing.T) {
	e, err := New(smallOpts(6, CapsAll(), false))
	if err != nil {
		t.Fatal(err)
	}
	if e.SetupPlacementWall < 0 || e.SetupPlanWall < 0 {
		t.Error("negative setup wall times")
	}
}
