package exchange

import (
	"fmt"
	"strconv"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// Compute/communication overlap via persistent exchange plans (Options.
// Overlap).
//
// Barrier mode serializes each iteration: exchange everything, verify
// everything at a global safe point, then compute everything. Overlap mode
// replaces the global safe point with per-quadrant readiness:
//
//   - Each iteration's transfer plan is registered once as an
//     overlapIterState: a per-plan arrival fan-in (all of the plan's state
//     machines completed), a per-plan verified signal, and a per-subdomain
//     readiness fan-in counting exactly the plans whose halos the
//     subdomain's border compute reads (Dst plans) or whose send regions it
//     overwrites (Src plans).
//   - Inter-node STAGED messages ride persistent MPI channels
//     (mpi.Channel): the receiver is released at payload *acceptance*, not
//     at the sender's ACK, and the ACK tail drains in the background. The
//     channel's sequence state survives across iterations and recovery plan
//     rebuilds, so fault draws per channel depend only on that channel's
//     own message index — the property that keeps issue-order-shuffled runs
//     deterministic.
//   - Interior ("core") compute — the interior shrunk by Radius, which
//     reads no halo cell — is launched while halos are still in flight. The
//     border kernel is pre-launched behind it on the same stream, gated on
//     the subdomain's readiness signal. The core kernel models timing only;
//     the real update payload runs once, in the border kernel, so the data
//     trajectory is the barrier mode's by construction.
//   - Verification is pipelined: a per-iteration pump process checksums
//     each inter-node quadrant as its plan's arrival fan-in fires,
//     re-exchanging selectively, instead of scanning the world at the
//     barrier. The coordinator still waits for allVerified before
//     adaptation and checkpoints — both must see repaired halos — and no
//     rank can leave the next loop-top barrier before the coordinator, so
//     no send region is re-packed while its quadrant is in flight.
//
// Determinism argument (see DESIGN.md §11): within a mode the engine is
// deterministic, so reruns and worker-count changes are byte-identical.
// Across modes the final domain and halo bytes are identical because each
// subdomain's update runs exactly once per iteration, after exactly the
// same halo bytes have (verifiably) landed — the pipeline moves when work
// happens, never what it computes.

// overlapIterState is one iteration's readiness ledger.
type overlapIterState struct {
	iter     int
	accepted map[int]*sim.Signal // per plan: channel payload accepted at the receiver
	arrival  map[int]*sim.Fanin  // per plan: all of its state machines completed
	verified map[int]*sim.Signal // per plan: quadrant verified (== arrival when not verifying)
	ready    map[*Sub]*sim.Fanin // per sub: border compute may run
	// allVerified fires when every plan of the iteration is verified; the
	// coordinator's per-quadrant safe point.
	allVerified *sim.Fanin
}

// machineCount is the number of state machines a plan's exchange spawns
// across all ranks: sender-only methods run one, everything else a sender
// and a receiver machine.
func machineCount(pl *Plan) int {
	switch pl.Method {
	case MethodKernel, MethodPeer:
		return 1
	default:
		return 2
	}
}

// overlapState returns the iteration's readiness ledger, building it — and
// spawning its verification pump — on first touch. The first rank to enter
// the iteration body builds it; plan methods cannot change mid-iteration
// (adaptation runs at the coordinator's safe point, strictly before the
// next iteration's first touch), so the registered machine counts match
// what the ranks drive.
func (e *Exchanger) overlapState(iter int) *overlapIterState {
	if st, ok := e.overlapStates[iter]; ok {
		return st
	}
	st := &overlapIterState{
		iter:     iter,
		accepted: make(map[int]*sim.Signal),
		arrival:  make(map[int]*sim.Fanin),
		verified: make(map[int]*sim.Signal),
		ready:    make(map[*Sub]*sim.Fanin),
	}
	verifying := e.verifier != nil && e.Opts.RealData
	var pump *verifyPump
	if verifying {
		pump = &verifyPump{e: e, st: st}
	}
	for _, pl := range e.Plans {
		st.arrival[pl.ID] = sim.NewFanin(e.Eng,
			fmt.Sprintf("arr.p%d.i%d", pl.ID, iter), machineCount(pl))
		st.verified[pl.ID] = sim.NewSignal(e.Eng,
			fmt.Sprintf("ver.p%d.i%d", pl.ID, iter))
	}
	// A subdomain's border compute reads its halos (filled by Dst plans) and
	// overwrites its send regions (read by Src plans, including verification
	// re-exchanges), so it waits for both sets; self-plans count once.
	counts := make(map[*Sub]int)
	for _, pl := range e.Plans {
		counts[pl.Src]++
		if pl.Dst != pl.Src {
			counts[pl.Dst]++
		}
	}
	for _, s := range e.Subs {
		st.ready[s] = sim.NewFanin(e.Eng,
			fmt.Sprintf("ready.%v.i%d", s.Global, iter), counts[s])
	}
	st.allVerified = sim.NewFanin(e.Eng,
		fmt.Sprintf("verified.i%d", iter), len(e.Plans))
	for _, pl := range e.Plans {
		pl := pl
		ver := st.verified[pl.ID]
		ver.OnFire(st.allVerified.Done)
		ver.OnFire(st.ready[pl.Src].Done)
		if pl.Dst != pl.Src {
			ver.OnFire(st.ready[pl.Dst].Done)
		}
		if verifying && pl.Src.NodeID != pl.Dst.NodeID {
			st.arrival[pl.ID].Sig().OnFire(func() { pump.enqueue(pl) })
		} else {
			// Intra-node plans never cross a lossy wire (and time-only runs
			// have nothing to checksum): arrival is verification.
			st.arrival[pl.ID].Sig().OnFire(ver.Fire)
		}
	}
	if pump != nil {
		for _, pl := range e.Plans {
			if pl.Src.NodeID != pl.Dst.NodeID {
				pump.pending++
			}
		}
		e.Eng.Spawn(fmt.Sprintf("verify.i%d", iter), pump.run)
	}
	e.overlapStates[iter] = st
	return st
}

// acceptedOf returns the plan's channel-acceptance signal, created by
// whichever side touches it first.
func (st *overlapIterState) acceptedOf(e *Exchanger, pl *Plan) *sim.Signal {
	if s, ok := st.accepted[pl.ID]; ok {
		return s
	}
	s := sim.NewSignal(e.Eng, fmt.Sprintf("acc.p%d.i%d", pl.ID, st.iter))
	st.accepted[pl.ID] = s
	return s
}

// wrapMachine decorates a top-level state machine so its completion counts
// toward the plan's arrival fan-in.
func (st *overlapIterState) wrapMachine(pl *Plan, s *step) *step {
	return wrapStep(s, st.arrival[pl.ID].Done)
}

func wrapStep(s *step, onDone func()) *step {
	return &step{sig: s.sig, next: func(p *sim.Proc) *step {
		var ns *step
		if s.next != nil {
			ns = s.next(p)
		}
		if ns == nil {
			onDone()
			return nil
		}
		return wrapStep(ns, onDone)
	}}
}

// senderOverlapSteps is senderSteps with the inter-node STAGED path rerouted
// onto the plan's persistent channel: pack -> D2H as usual, then one Start
// on the channel; the machine terminates at payload acceptance and the ACK
// tail drains in the background (the send buffer is not re-read after
// acceptance — later deliveries of the same sequence number are deduplicated
// without touching it — and the next iteration's pack cannot start before
// the coordinator passes this iteration's safe point).
func (e *Exchanger) senderOverlapSteps(p *sim.Proc, pl *Plan, iter int, st *overlapIterState) []*step {
	if pl.Method != MethodStaged || pl.Src.NodeID == pl.Dst.NodeID || pl.group != nil {
		return e.senderSteps(p, pl, iter)
	}
	rt := e.RT
	nm := pl.opNames()
	rt.LaunchCost(p)
	pl.sendStream.Kernel(nm.pack, pl.Bytes, e.M.Params.PackBW,
		func() { pl.Src.Dom.Pack(pl.devSend.Data(), pl.Dir) })
	rt.IssueCost(p)
	d2h := pl.sendStream.MemcpyAsync(nm.d2h,
		pl.hostSend, 0, pl.devSend, 0, pl.Bytes)
	return []*step{{sig: d2h, next: func(p *sim.Proc) *step {
		acc := st.acceptedOf(e, pl)
		ch := e.W.OpenChannel(e.W.Rank(pl.Src.Rank), e.W.Rank(pl.Dst.Rank), pl.Tag)
		ch.Start(pl.hostSend, 0, pl.hostRecv, 0, pl.Bytes, acc.Fire, func() {})
		return &step{sig: acc}
	}}}
}

// recverOverlapSteps is recverSteps with the inter-node STAGED path gated on
// the channel's acceptance signal instead of an Irecv completion.
func (e *Exchanger) recverOverlapSteps(p *sim.Proc, pl *Plan, iter int, st *overlapIterState) []*step {
	if pl.Method != MethodStaged || pl.Src.NodeID == pl.Dst.NodeID || pl.group != nil {
		return e.recverSteps(p, pl, iter)
	}
	rt := e.RT
	nm := pl.opNames()
	acc := st.acceptedOf(e, pl)
	return []*step{{sig: acc, next: func(p *sim.Proc) *step {
		rt.IssueCost(p)
		pl.recvStream.MemcpyAsync(nm.h2d,
			pl.devRecv, 0, pl.hostRecv, 0, pl.Bytes)
		rt.LaunchCost(p)
		up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) })
		return &step{sig: up}
	}}}
}

// verifyPump is the pipelined verifier for one iteration: quadrants are
// checksummed as their plans' arrival fan-ins fire, not at a global scan.
// It reuses the verifier's counters, round cap, out-of-band repair, and
// fresh-key re-exchange machinery, so Stats reporting is shared with
// barrier mode.
type verifyPump struct {
	e       *Exchanger
	st      *overlapIterState
	gate    *sim.Gate
	queue   []*Plan
	pending int // inter-node plans not yet verified
}

// enqueue is called in event context when a plan's arrival fan-in fires.
func (pump *verifyPump) enqueue(pl *Plan) {
	pump.queue = append(pump.queue, pl)
	if pump.gate != nil {
		pump.gate.Open()
	}
}

func (pump *verifyPump) run(vp *sim.Proc) {
	pump.gate = sim.NewGate(vp)
	for pump.pending > 0 {
		if len(pump.queue) == 0 {
			pump.gate.Await()
			continue
		}
		pl := pump.queue[0]
		pump.queue = pump.queue[1:]
		pump.verifyPlan(vp, pl)
	}
}

// verifyPlan drives one quadrant to verified: checksum, selectively
// re-exchange on mismatch, repair out-of-band after the round cap. The
// checksummed regions cannot mutate under the scan: both subdomains' border
// kernels are gated on this very plan's verified signal.
func (pump *verifyPump) verifyPlan(vp *sim.Proc, pl *Plan) {
	e := pump.e
	v := e.verifier
	tel := e.Opts.Telemetry
	if tel != nil {
		// Ledger-only verify attribution, mirroring verifyTick. Pump time
		// overlaps compute by design, so these are inclusive span-seconds,
		// not critical-path time.
		t0 := e.Eng.Now()
		defer func() { tel.AttributeSeconds(telemetry.FeatureVerify, e.Eng.Now()-t0) }()
	}
	// Deferred payload commits (unpacks) flush when their instant ends;
	// crossing an instant boundary before each checksum pass guarantees the
	// reads observe fully landed bytes under parallel payload workers.
	eps := e.M.Params.MPIInterLatency
	for round := 0; ; round++ {
		vp.Sleep(eps)
		if !v.quadrantBad(pl) {
			pump.pending--
			pump.st.verified[pl.ID].Fire()
			return
		}
		v.rounds++
		now := e.Eng.Now()
		if round >= verifyMaxRounds {
			v.forceRepair(pl)
			v.forced++
			e.Eng.Tracef("verify: iter %d plan %d round %d: quadrant repaired out-of-band", pump.st.iter, pl.ID, round)
			if tel != nil {
				tel.VerifyRound(now, pump.st.iter, round, 1, true)
			}
			continue // the next pass confirms the repair and returns
		}
		if tel != nil {
			tel.VerifyRound(now, pump.st.iter, round, 1, false)
		}
		e.Eng.Tracef("verify: iter %d plan %d round %d: re-exchanging quadrant", pump.st.iter, pl.ID, round)
		key := v.nextKey
		v.nextKey++
		d := &stepDriver{gate: sim.NewGate(vp)}
		for _, s := range e.recverSteps(vp, pl, key) {
			d.add(s)
		}
		for _, s := range e.senderSteps(vp, pl, key) {
			d.add(s)
		}
		d.drain(vp)
		v.reexchanges++
		if e.RT.OnOp != nil {
			e.RT.Record(cudart.OpRecord{Kind: cudart.OpReExchange,
				Name: fmt.Sprintf("reex.p%d", pl.ID), Device: -1, Stream: "verify",
				Start: now, End: e.Eng.Now(), Bytes: pl.Bytes})
		}
	}
}

// overlapBody is the Overlap replacement for RunWithCompute's iteration
// body: exchange and compute are pipelined per quadrant instead of
// serialized at a global barrier.
func (e *Exchanger) overlapBody(times []sim.Time, ar *mpi.Allreducer, runSpan *telemetry.Span, rc *recovery, compute func(*Sub)) func(p *sim.Proc, rank, it int) {
	tel := e.Opts.Telemetry
	return func(p *sim.Proc, rank, it int) {
		st := e.overlapState(it)
		t0 := e.W.Wtime()
		d := &stepDriver{gate: sim.NewGate(p)}
		// Receives first so no send can block on an unposted receive.
		for _, pl := range e.recvDutiesOf(rank) {
			for _, s := range e.recverOverlapSteps(p, pl, it, st) {
				d.add(st.wrapMachine(pl, s))
			}
		}
		for _, pl := range e.sendDutiesOf(rank) {
			for _, s := range e.senderOverlapSteps(p, pl, it, st) {
				d.add(st.wrapMachine(pl, s))
			}
		}
		// Every pack and send is issued: compute starts while halos are in
		// flight. The core kernel models the halo-independent interior
		// update; the border kernel behind it carries the real update
		// payload, gated on the subdomain's readiness signal, so no compute
		// observes a border cell before its quadrants' verified arrival.
		// Ownership is re-read every iteration (a recovery migration may
		// move a subdomain).
		var computeDone []*sim.Signal
		if compute != nil {
			for _, s := range e.Subs {
				if s.Rank != rank {
					continue
				}
				s := s
				if cb := s.Dom.CoreBytes(); cb > 0 {
					e.RT.LaunchCost(p)
					computeDone = append(computeDone, s.kernelStream.Kernel(
						fmt.Sprintf("compute.core.%v", s.Global), cb, e.M.Params.PackBW,
						func() {}))
				}
				e.RT.LaunchCost(p)
				computeDone = append(computeDone, s.kernelStream.Kernel(
					fmt.Sprintf("compute.border.%v", s.Global), s.Dom.BorderBytes(), e.M.Params.PackBW,
					func() { compute(s) }, st.ready[s].Sig()))
			}
		}
		d.drain(p)
		dt := e.W.Wtime() - t0
		maxDt := ar.MaxFloat(p, dt)
		if rank == e.coordRank {
			times[it] = maxDt
			if tel != nil {
				sp := tel.StartSpanFeature("exchange", runSpan, t0, telemetry.FeatureOverlap)
				sp.End(t0+maxDt, telemetry.L("iter", strconv.Itoa(it)))
				tel.Counter("exchange_iterations_total").Inc()
				tel.Histogram("exchange_iteration_seconds", telemetry.SecondsBuckets).Observe(maxDt)
			}
			// Per-quadrant safe point: the coordinator does not hold the
			// world at a barrier, but it does wait for every quadrant's
			// verification before adaptation and checkpoints (both must see
			// repaired halos) — and since no rank can leave the next
			// loop-top barrier before the coordinator arrives, no send
			// region is re-packed while its quadrant is still in flight.
			st.allVerified.Wait(p)
			// Every rank took its reference at body start (the allreduce
			// proves it); drop the ledger so long runs stay bounded.
			delete(e.overlapStates, it)
			if e.Opts.Adaptive && (it+1)%e.adaptEvery() == 0 {
				if tel != nil {
					asp := tel.StartSpanFeature("adapt", runSpan, e.Eng.Now(), telemetry.FeatureAdapt)
					e.adaptTick(p)
					asp.End(e.Eng.Now())
				} else {
					e.adaptTick(p)
				}
			}
			if rc != nil {
				rc.atSafePoint(it)
			}
			e.pollPreempt()
		}
		sim.WaitAll(p, computeDone...)
	}
}

// pollPreempt runs on the coordinator at its safe point; a true from
// Options.Preempt latches the stop flag every rank checks at the next
// loop-top barrier.
func (e *Exchanger) pollPreempt() {
	if e.stopped || e.Opts.Preempt == nil {
		return
	}
	if e.Opts.Preempt() {
		e.stopped = true
		e.Eng.Tracef("run: preempt requested; stopping at the next iteration boundary")
	}
}

// Preempted reports whether a run was stopped early by Options.Preempt.
func (e *Exchanger) Preempted() bool { return e.stopped }
