package exchange

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/nodeaware/stencil/internal/cudart"
	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/sim"
)

// detResult captures everything observable about a run that the determinism
// guarantee covers: final halo bytes, virtual times, adaptation and fault
// timelines, and the recorded op trace.
type detResult struct {
	virt   sim.Time
	iters  []sim.Time
	fps    []uint64 // per-subdomain Domain fingerprints, in Subs order
	adapt  []string
	faults []string
	trace  []cudart.OpRecord
}

func runDeterministic(t *testing.T, workers int, cudaAware bool) detResult {
	t.Helper()
	caps := CapsAll()
	if cudaAware {
		caps = CapsRemote()
	}
	opts := Options{
		Nodes:        2,
		RanksPerNode: 3,
		Domain:       part.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       1,
		Quantities:   2,
		ElemSize:     4,
		Caps:         caps,
		CUDAAware:    cudaAware,
		NodeAware:    true,
		RealData:     true,
		Workers:      workers,
		Adaptive:     true,
		TraceOps:     true,
		Fault: (&fault.Scenario{Name: "det"}).
			KillNVLink(30e-6, 0, 0, 1, 60e-6).
			DegradeNIC(50e-6, 1, 0.25),
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	st := e.Run(4)
	res := detResult{virt: e.Eng.Now(), iters: st.Iterations, trace: e.Trace}
	for _, s := range e.Subs {
		res.fps = append(res.fps, s.Dom.Fingerprint())
	}
	for _, r := range st.AdaptEvents {
		res.adapt = append(res.adapt, r.String())
	}
	for _, r := range st.FaultLog {
		res.faults = append(res.faults, r.String())
	}
	return res
}

func diffResults(t *testing.T, label string, a, b detResult) {
	t.Helper()
	if a.virt != b.virt {
		t.Errorf("%s: final virtual time differs: %v vs %v", label, a.virt, b.virt)
	}
	if !reflect.DeepEqual(a.iters, b.iters) {
		t.Errorf("%s: iteration times differ:\n  %v\n  %v", label, a.iters, b.iters)
	}
	if !reflect.DeepEqual(a.fps, b.fps) {
		t.Errorf("%s: halo fingerprints differ:\n  %x\n  %x", label, a.fps, b.fps)
	}
	if !reflect.DeepEqual(a.adapt, b.adapt) {
		t.Errorf("%s: adaptation logs differ:\n  %v\n  %v", label, a.adapt, b.adapt)
	}
	if !reflect.DeepEqual(a.faults, b.faults) {
		t.Errorf("%s: fault logs differ:\n  %v\n  %v", label, a.faults, b.faults)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Errorf("%s: op traces differ (%d vs %d ops)", label, len(a.trace), len(b.trace))
	}
}

// TestParallelDeterminism is the determinism regression gate for the parallel
// payload executor: the same configuration run sequentially (Workers 0) and
// in parallel (Workers 8), twice each, must produce byte-identical halos
// (Domain fingerprints), identical virtual times, and identical fault, adapt,
// and op-trace records. Run under -race in CI, this also shakes out data
// races between payload components.
func TestParallelDeterminism(t *testing.T) {
	for _, ca := range []bool{false, true} {
		name := "ladder"
		if ca {
			name = "cudaaware"
		}
		t.Run(name, func(t *testing.T) {
			seq1 := runDeterministic(t, 0, ca)
			seq2 := runDeterministic(t, 0, ca)
			par1 := runDeterministic(t, 8, ca)
			par2 := runDeterministic(t, 8, ca)
			diffResults(t, "sequential repeat", seq1, seq2)
			diffResults(t, "parallel repeat", par1, par2)
			diffResults(t, "sequential vs parallel", seq1, par1)
			if len(seq1.fps) == 0 {
				t.Fatal("no subdomains fingerprinted")
			}
			// Sanity: the run did real work (non-trivial trace, nonzero time).
			if seq1.virt <= 0 || len(seq1.trace) == 0 {
				t.Fatalf("degenerate run: virt=%v ops=%d", seq1.virt, len(seq1.trace))
			}
		})
	}
}

// TestParallelVerifiesHalos re-checks functional halo correctness under the
// parallel executor (the determinism test proves parallel == sequential; this
// proves both are right).
func TestParallelVerifiesHalos(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.Workers = 8
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	if e.Eng.Workers() != 8 {
		t.Fatalf("engine workers = %d, want 8", e.Eng.Workers())
	}
	st := e.Run(2)
	if st.Mean() <= 0 {
		t.Error("exchange took no time")
	}
	verifyHalos(t, e)
}

// TestWorkersAcrossLadder runs every capability rung with workers enabled and
// verifies halos — each rung exercises a different payload mix (kernels,
// peer copies, staged copies, host MPI copies).
func TestWorkersAcrossLadder(t *testing.T) {
	for _, tc := range []struct {
		caps Capabilities
		ca   bool
	}{
		{CapsRemote(), false},
		{CapsColo(), false},
		{CapsPeer(), false},
		{CapsAll(), false},
		{CapsRemote(), true},
	} {
		name := fmt.Sprintf("caps=%v ca=%v", tc.caps, tc.ca)
		t.Run(name, func(t *testing.T) {
			opts := smallOpts(3, tc.caps, tc.ca)
			opts.Workers = 4
			e, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			fillGlobal(e)
			e.Run(1)
			verifyHalos(t, e)
		})
	}
}
