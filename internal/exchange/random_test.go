package exchange

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/part"
)

// TestRandomConfigCorrectnessProperty is the heavyweight end-to-end
// property: random domain shapes, radii, quantities, rank layouts,
// capability sets, boundaries, and extensions — every halo cell must hold
// its neighbor's interior value after one exchange.
func TestRandomConfigCorrectnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := Options{
			Nodes:        []int{1, 2, 3}[rng.Intn(3)],
			RanksPerNode: []int{1, 2, 3, 6}[rng.Intn(4)],
			Domain: part.Dim3{
				X: rng.Intn(16) + 12,
				Y: rng.Intn(16) + 12,
				Z: rng.Intn(16) + 12,
			},
			Radius:     rng.Intn(2) + 1,
			Quantities: rng.Intn(3) + 1,
			ElemSize:   4,
			Caps: Capabilities{
				Colocated: rng.Intn(2) == 0,
				Peer:      rng.Intn(2) == 0,
				Kernel:    rng.Intn(2) == 0,
			},
			CUDAAware:       rng.Intn(3) == 0,
			NodeAware:       rng.Intn(2) == 0,
			RealData:        true,
			FaceOnly:        false, // full halos are what verifyHalos checks
			AggregateRemote: rng.Intn(2) == 0,
			NoOverlap:       rng.Intn(4) == 0,
		}
		e, err := New(opts)
		if err != nil {
			return true // domain too small for the split: acceptable rejection
		}
		fillGlobal(e)
		e.Run(rng.Intn(2) + 1)
		// Inline verification (can't t.Fatal inside quick.Check cleanly).
		d := e.Opts.Domain
		wrap := func(v, n int) int { return ((v % n) + n) % n }
		for _, sub := range e.Subs {
			origin, size := e.Hier.Subdomain(sub.NodeIdx, sub.GPUIdx)
			r := sub.Dom.Radius
			for q := 0; q < sub.Dom.Quantities; q++ {
				for z := -r; z < size.Z+r; z++ {
					for y := -r; y < size.Y+r; y++ {
						for x := -r; x < size.X+r; x++ {
							interior := x >= 0 && x < size.X && y >= 0 && y < size.Y && z >= 0 && z < size.Z
							if interior {
								continue
							}
							gx, gy, gz := wrap(origin.X+x, d.X), wrap(origin.Y+y, d.Y), wrap(origin.Z+z, d.Z)
							want := globalValue(e, q, gx, gy, gz)
							got := le32(sub.Dom.At(q, x, y, z))
							if got != want {
								t.Logf("seed %d opts %+v: sub %v halo (%d,%d,%d) q%d got %#x want %#x",
									seed, opts, sub.Global, x, y, z, q, got, want)
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// TestExchangeDeterminism pins that identical configurations produce
// bit-identical virtual timings across runs — the foundation of every
// benchmark in the repository.
func TestExchangeDeterminism(t *testing.T) {
	run := func() []float64 {
		opts := Options{
			Nodes:        2,
			RanksPerNode: 6,
			Domain:       part.Dim3{X: 1717, Y: 1717, Z: 1717},
			Radius:       2,
			Quantities:   4,
			ElemSize:     4,
			Caps:         CapsAll(),
			NodeAware:    true,
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(3).Iterations
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration %d differs across runs: %.9g vs %.9g", i, a[i], b[i])
		}
	}
}

// TestLadderMonotoneProperty: for random single-node configurations, each
// capability rung is at least as fast as the one below it — enabling a
// method can reroute messages only when it is selected first-applicable,
// and every specialized method outperforms the staged path it replaces.
func TestLadderMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := Options{
			Nodes:        1,
			RanksPerNode: []int{1, 2, 3, 6}[rng.Intn(4)],
			Domain: part.Dim3{
				X: rng.Intn(800) + 400,
				Y: rng.Intn(800) + 400,
				Z: rng.Intn(800) + 400,
			},
			Radius:     rng.Intn(3) + 1,
			Quantities: rng.Intn(4) + 1,
			ElemSize:   4,
			NodeAware:  true,
		}
		var times []float64
		for _, caps := range []Capabilities{CapsRemote(), CapsColo(), CapsPeer(), CapsAll()} {
			o := base
			o.Caps = caps
			e, err := New(o)
			if err != nil {
				return true
			}
			times = append(times, e.Run(1).Min())
		}
		for i := 1; i < len(times); i++ {
			// The paper's claim is about bandwidth-dominated halos; in
			// overhead-dominated regimes (small messages) a rung can lose a
			// few percent to extra kernel launches, so allow 10% slack.
			if times[i] > times[i-1]*1.10 {
				t.Logf("seed %d: ladder not monotone: %v (opts %+v)", seed, times, base)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
