package exchange

import (
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/part"
)

func TestTrafficReportSingleNode(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Traffic()
	if r.Bytes[ClassNIC] != 0 {
		t.Error("single-node job reports NIC traffic")
	}
	if r.Bytes[ClassNVLink] <= 0 {
		t.Error("no NVLink traffic on a fully specialized node")
	}
	if r.Bytes[ClassHost] != 0 {
		t.Error("fully specialized node still stages through the host")
	}
	totalPlans := 0
	for _, c := range r.Plans {
		totalPlans += c
	}
	if totalPlans != len(e.Plans) {
		t.Errorf("plan accounting %d != %d", totalPlans, len(e.Plans))
	}
	if r.Total() <= 0 {
		t.Error("no bytes accounted")
	}
	s := r.String()
	if !strings.Contains(s, "NVLink") {
		t.Errorf("report rendering missing NVLink:\n%s", s)
	}
}

func TestTrafficReportStagedVsSpecialized(t *testing.T) {
	base := smallOpts(6, CapsRemote(), false)
	base.RealData = false
	staged, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	rs := staged.Traffic()
	// Remote-only single node: everything is host-staged.
	if rs.Bytes[ClassHost] != rs.Total() {
		t.Errorf("remote-only traffic not all host-staged: %v", rs.Bytes)
	}
}

func TestTrafficReportMultiNode(t *testing.T) {
	opts := Options{
		Nodes:        2,
		RanksPerNode: 6,
		Domain:       part.Dim3{X: 24, Y: 24, Z: 24},
		Radius:       1,
		Quantities:   1,
		ElemSize:     4,
		Caps:         CapsAll(),
		NodeAware:    true,
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Traffic()
	if r.Bytes[ClassNIC] <= 0 {
		t.Error("two-node job reports no NIC traffic")
	}
	// The hierarchical partition should keep NIC bytes well below half of
	// total (only one split axis crosses nodes).
	if r.Bytes[ClassNIC]*2 >= r.Total()*2 {
		t.Errorf("NIC bytes %d implausibly high of total %d", r.Bytes[ClassNIC], r.Total())
	}
	if ClassNIC.String() != "NIC" || ClassSameGPU.String() != "same-GPU" {
		t.Error("class names wrong")
	}
}

func TestStagingBytes(t *testing.T) {
	opts := smallOpts(6, CapsAll(), false)
	opts.RealData = false
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	dev, host := e.StagingBytes()
	if dev <= 0 {
		t.Error("no device staging accounted")
	}
	// Fully specialized single node: no host staging buffers at all.
	if host != 0 {
		t.Errorf("host staging %d on a fully specialized node", host)
	}
	// Remote-only: host staging appears and device send/recv persists.
	opts.Caps = CapsRemote()
	e2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	dev2, host2 := e2.StagingBytes()
	if host2 <= 0 || dev2 <= 0 {
		t.Errorf("staged config staging = dev %d host %d", dev2, host2)
	}
	// Device staging is bounded by 2x total exchange bytes (send+recv).
	r := e2.Traffic()
	if dev2 != 2*r.Total() {
		t.Errorf("device staging %d != 2x exchange bytes %d", dev2, 2*r.Total())
	}
}

func TestStagingBytesAggregated(t *testing.T) {
	opts := multiNodeOpts()
	opts.RealData = false
	opts.Caps = CapsRemote()
	plain, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.AggregateRemote = true
	agg, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, hostPlain := plain.StagingBytes()
	_, hostAgg := agg.StagingBytes()
	// Aggregation replaces per-plan host buffers with per-pair buffers of
	// equal total payload, so host staging must not grow.
	if hostAgg > hostPlain {
		t.Errorf("aggregated host staging %d > per-plan %d", hostAgg, hostPlain)
	}
}
