package exchange

import (
	"fmt"
	"strings"

	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/sim"
)

// Stats summarizes a measured exchange run.
type Stats struct {
	// Iterations holds the max-across-ranks exchange time of every
	// iteration, in seconds.
	Iterations []sim.Time
	// MethodCount and MethodBytes break the plans down by transfer method
	// (the selection at the end of the run, after any adaptation).
	MethodCount map[Method]int
	MethodBytes map[Method]int64
	// TotalBytes is the sum over all plans of the per-exchange message size.
	TotalBytes int64

	// AdaptEvents is the adaptation timeline (method switches and
	// re-placements); empty unless Options.Adaptive.
	AdaptEvents []AdaptRecord
	// FaultLog is the applied-fault timeline; empty unless Options.Fault.
	FaultLog []fault.Record
	// MPIRetries counts timed-out-and-resent wire transfers; nonzero only
	// with Options.SendTimeout.
	MPIRetries int

	// Delivery summarizes the reliable-delivery envelope's protocol
	// counters: messages sent, retransmits, drops, corruptions, duplicates,
	// dedups, NACKs, and deliveries that exhausted the attempt cap with a
	// corrupt payload. All zero unless the envelope was armed (delivery
	// faults, or Options.Reliable).
	Delivery mpi.Stats

	// ReExchanges counts halo quadrants selectively re-exchanged by the
	// end-to-end verification layer; VerifyRounds counts repair rounds that
	// found at least one damaged quadrant; ForcedRepairs counts quadrants
	// repaired out-of-band after the round cap. All zero unless
	// verification ran (delivery faults, or Options.VerifyExchange).
	ReExchanges   int
	VerifyRounds  int
	ForcedRepairs int

	// QuarantineEnters and QuarantineExits count link quarantine
	// transitions performed by the health monitor (health.go).
	QuarantineEnters int
	QuarantineExits  int

	// Checkpoints, Rollbacks, and MigratedSubs summarize the recovery layer
	// (recover.go); all zero unless Options.CheckpointEvery > 0.
	Checkpoints  int
	Rollbacks    int
	MigratedSubs int
	// RecoveryEvents is the recovery timeline: checkpoints taken, failures
	// detected, rollbacks, migrations, and resumes.
	RecoveryEvents []RecoveryRecord
}

func newStats(e *Exchanger, times []sim.Time) *Stats {
	s := &Stats{
		Iterations:  times,
		MethodCount: make(map[Method]int),
		MethodBytes: make(map[Method]int64),
		AdaptEvents: e.AdaptLog,
		MPIRetries:  e.W.Retries,
		Delivery:    e.W.Stats(),
	}
	if v := e.verifier; v != nil {
		s.ReExchanges = v.reexchanges
		s.VerifyRounds = v.rounds
		s.ForcedRepairs = v.forced
	}
	s.QuarantineEnters, s.QuarantineExits = e.QuarantineCounts()
	if e.Faults != nil {
		s.FaultLog = e.Faults.Log()
	}
	if rc := e.rec; rc != nil {
		s.Checkpoints = rc.epoch
		s.Rollbacks = rc.rollbacks
		s.MigratedSubs = rc.migrated
		s.RecoveryEvents = e.RecoveryLog
	}
	for _, p := range e.Plans {
		s.MethodCount[p.Method]++
		s.MethodBytes[p.Method] += p.Bytes
		s.TotalBytes += p.Bytes
	}
	return s
}

// Mean returns the average iteration time.
func (s *Stats) Mean() sim.Time {
	var sum sim.Time
	for _, t := range s.Iterations {
		sum += t
	}
	return sum / sim.Time(len(s.Iterations))
}

// Min returns the fastest iteration.
func (s *Stats) Min() sim.Time {
	m := s.Iterations[0]
	for _, t := range s.Iterations[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// Max returns the slowest iteration.
func (s *Stats) Max() sim.Time {
	m := s.Iterations[0]
	for _, t := range s.Iterations[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// String renders a one-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mean %.3f ms over %d iters;", s.Mean()*1e3, len(s.Iterations))
	for m := Method(0); m < numMethods; m++ {
		if c := s.MethodCount[m]; c > 0 {
			fmt.Fprintf(&b, " %s=%d", m, c)
		}
	}
	return b.String()
}

// ConfigString renders the paper's configuration label "Xn/Xr/Xg/NNNN[/ca]".
func (o Options) ConfigString() string {
	gpus := 6
	if o.NodeConfig != nil {
		gpus = o.NodeConfig.GPUs()
	}
	s := fmt.Sprintf("%dn/%dr/%dg/%d", o.Nodes, o.RanksPerNode, gpus, o.Domain.X)
	if o.CUDAAware {
		s += "/ca"
	}
	return s
}

// CapsString renders the capability ladder rung as the paper labels it.
func (o Options) CapsString() string {
	switch {
	case o.Caps.Kernel:
		return "+kernel"
	case o.Caps.Peer:
		return "+peer"
	case o.Caps.Colocated:
		return "+colo"
	default:
		return "+remote"
	}
}
