package exchange

import (
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/fault"
)

// TestOverlapGatingNeverEarly is the regression lock on the overlap pipeline's
// central invariant: a compute kernel can never observe a border cell before
// its quadrant's verified-arrival event. The compute payload inspects the
// live readiness ledger of its own iteration at execution time — if the
// ledger still exists (the coordinator has not passed the per-quadrant safe
// point), the subdomain's readiness fan-in and every touching plan's
// verified signal must already have fired. Removing the border kernel's
// readiness dependency makes this fail immediately.
func TestOverlapGatingNeverEarly(t *testing.T) {
	sc := &fault.Scenario{Name: "overlap-gate", Seed: 17}
	for n := 0; n < 2; n++ {
		sc.LossyNIC(0, n, 0.2, 0.2, 0.2)
	}
	o := lossyOpts(false)
	o.Overlap = true
	o.SendRetries = 2
	o.Fault = sc
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if e.verifier == nil {
		t.Fatal("delivery faults did not enable end-to-end verification")
	}
	fillGlobal(e)

	iterOf := make(map[*Sub]int)
	liveChecks := 0
	st := e.RunWithCompute(4, func(s *Sub) {
		// Workers is 0, so payloads execute sequentially in engine context:
		// reading the ledger here is safe and happens at the border kernel's
		// completion instant.
		it := iterOf[s]
		iterOf[s] = it + 1
		led, ok := e.overlapStates[it]
		if !ok {
			// The coordinator already passed the safe point (allVerified
			// fired), which subsumes this subdomain's gate.
			return
		}
		liveChecks++
		if !led.ready[s].Fired() {
			t.Errorf("iter %d: compute on sub %v ran before its readiness fan-in fired", it, s.Global)
		}
		for _, pl := range e.Plans {
			if pl.Src != s && pl.Dst != s {
				continue
			}
			if !led.verified[pl.ID].Fired() {
				t.Errorf("iter %d: compute on sub %v ran before plan %d (quadrant %v) was verified",
					it, s.Global, pl.ID, pl.Dir)
			}
			if !led.arrival[pl.ID].Fired() {
				t.Errorf("iter %d: compute on sub %v ran before plan %d arrived", it, s.Global, pl.ID)
			}
		}
	})
	if st.Delivery.Corrupts == 0 || st.Delivery.Drops == 0 {
		t.Errorf("faults not exercised: %+v", st.Delivery)
	}
	if liveChecks == 0 {
		t.Error("no compute payload ever ran against a live ledger; the gate was never load-bearing")
	}
}

// TestOverlapValidation locks the option-compatibility matrix.
func TestOverlapValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
		errSub string
	}{
		{"no-overlap", func(o *Options) { o.NoOverlap = true }, "NoOverlap"},
		{"aggregate", func(o *Options) { o.AggregateRemote = true }, "AggregateRemote"},
		{"adapt-placement", func(o *Options) { o.Adaptive = true; o.AdaptPlacement = true }, "AdaptPlacement"},
		{"cuda-aware", func(o *Options) { o.CUDAAware = true }, "CUDAAware"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := smallOpts(2, CapsAll(), false)
			o.Overlap = true
			tc.mutate(&o)
			if _, err := New(o); err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("Overlap + %s: got %v, want error mentioning %q", tc.name, err, tc.errSub)
			}
		})
	}
}

// TestOverlapChannelsPersist asserts the persistent-channel property the
// pipeline's determinism rests on: a channel's sequence stream continues
// across iterations and across plan rebuilds (OpenChannel returns the same
// channel for the same key), so per-channel fault draws depend only on the
// channel's own message index.
func TestOverlapChannelsPersist(t *testing.T) {
	o := lossyOpts(false)
	o.Overlap = true
	o.Reliable = true
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	e.Run(2)
	// Any inter-node staged plan rode a channel; after 2 iterations its next
	// sequence index must be 3 (counter survives the per-run state reset).
	found := false
	for _, pl := range e.Plans {
		if pl.Method != MethodStaged || pl.Src.NodeID == pl.Dst.NodeID {
			continue
		}
		found = true
		ch := e.W.OpenChannel(e.W.Rank(pl.Src.Rank), e.W.Rank(pl.Dst.Rank), pl.Tag)
		wantSeq := (uint64(pl.Tag+1) << 32) | 3
		if got := ch.Seq(); got != wantSeq {
			t.Errorf("plan %d channel seq after 2 iterations: got %#x want %#x", pl.ID, got, wantSeq)
		}
	}
	if !found {
		t.Fatal("no inter-node staged plan; channel persistence untested")
	}
	verifyHalos(t, e)
}
