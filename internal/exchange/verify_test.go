package exchange

import (
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/part"
	"github.com/nodeaware/stencil/internal/sim"
)

// lossyOpts is the 2-node configuration the delivery-fault tests share:
// real data so corruption flips observable bytes, full capability ladder so
// every method class appears.
func lossyOpts(cudaAware bool) Options {
	o := smallOpts(2, CapsAll(), cudaAware)
	o.Nodes = 2
	o.Domain = part.Dim3{X: 24, Y: 24, Z: 12}
	return o
}

// TestVerifyRepairsCorruptedHalos runs a heavily corrupting network with a
// tight retransmission budget, so deliveries regularly exhaust their attempt
// cap and land compromised. End-to-end verification must detect and
// selectively re-exchange every damaged quadrant: the final halos are
// byte-identical to a fault-free run's.
func TestVerifyRepairsCorruptedHalos(t *testing.T) {
	sc := &fault.Scenario{Name: "lossy", Seed: 11}
	for n := 0; n < 2; n++ {
		sc.LossyNIC(0, n, 0.1, 0.5, 0.1)
	}
	o := lossyOpts(false)
	o.SendRetries = 2
	o.Fault = sc
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if !e.W.Reliable || e.W.DeliverySeed != 11 {
		t.Fatal("delivery faults did not arm the reliable envelope with the scenario seed")
	}
	if e.verifier == nil {
		t.Fatal("delivery faults did not enable end-to-end verification")
	}
	fillGlobal(e)
	st := e.Run(4)
	if st.Delivery.Corrupts == 0 || st.Delivery.Drops == 0 {
		t.Errorf("faults not exercised: %+v", st.Delivery)
	}
	if st.Delivery.Exhausted == 0 {
		t.Error("no delivery exhausted its attempt cap; verification never load-bearing")
	}
	if st.ReExchanges == 0 {
		t.Error("no quadrants were re-exchanged")
	}
	if st.Delivery.Retransmits == 0 {
		t.Error("no retransmissions under 10% drop")
	}
	verifyHalos(t, e)
}

// TestVerifyCleanNetworkNoRepairs: with the envelope forced on over a clean
// network, verification finds nothing and the protocol never retransmits.
func TestVerifyCleanNetworkNoRepairs(t *testing.T) {
	o := lossyOpts(false)
	o.Reliable = true
	o.VerifyExchange = true
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(e)
	st := e.Run(3)
	if st.Delivery.Messages == 0 {
		t.Error("reliable envelope saw no messages")
	}
	if st.Delivery.Retransmits != 0 || st.Delivery.Nacks != 0 || st.ReExchanges != 0 {
		t.Errorf("clean network produced repairs: %+v re-exchanges %d", st.Delivery, st.ReExchanges)
	}
	verifyHalos(t, e)
}

// TestLossyDeterminism: the same lossy configuration is bit-identical across
// reruns — iteration times, protocol counters, and every halo byte.
func TestLossyDeterminism(t *testing.T) {
	run := func() (*Exchanger, *Stats) {
		sc := &fault.Scenario{Name: "lossy", Seed: 3}
		for n := 0; n < 2; n++ {
			sc.LossyNIC(0, n, 0.15, 0.15, 0.15)
		}
		o := lossyOpts(true)
		o.Fault = sc
		e, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		fillGlobal(e)
		return e, e.Run(3)
	}
	e1, s1 := run()
	e2, s2 := run()
	if s1.Delivery != s2.Delivery {
		t.Errorf("protocol counters differ: %+v vs %+v", s1.Delivery, s2.Delivery)
	}
	for i := range s1.Iterations {
		if s1.Iterations[i] != s2.Iterations[i] {
			t.Errorf("iteration %d time differs: %v vs %v", i, s1.Iterations[i], s2.Iterations[i])
		}
	}
	for i := range e1.Subs {
		if e1.Subs[i].Dom.Fingerprint() != e2.Subs[i].Dom.Fingerprint() {
			t.Errorf("sub %d data differs across reruns", i)
		}
	}
	if s1.Delivery.Drops+s1.Delivery.Corrupts+s1.Delivery.Dups == 0 {
		t.Error("scenario exercised no faults; weak test")
	}
}

// TestQuarantineHysteresis is the flap acceptance scenario: a periodically
// flapping NIC is quarantined after its health score crosses the enter
// threshold, method selection then holds the demoted plans stable for the
// whole quarantine window (no thrash while the link toggles), and the link
// is re-admitted — with one promotion — only after the clean window.
func TestQuarantineHysteresis(t *testing.T) {
	// Probe run measures the fault-free iteration cadence so the flap period
	// can track the monitor's tick rate.
	probe, err := New(lossyOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	fillGlobal(probe)
	iterTime := probe.Run(4).Mean()

	sc := (&fault.Scenario{Name: "flap"}).FlapNICPeriodic(iterTime/2, 1, iterTime, 0.5, 6)
	o := lossyOpts(true)
	o.Adaptive = true
	o.QuarantineTicks = 3
	o.Fault = sc
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if e.health == nil {
		t.Fatal("flap scenario did not enable the health monitor")
	}
	fillGlobal(e)
	st := e.Run(24)

	if st.QuarantineEnters == 0 {
		t.Fatal("flapping NIC never quarantined")
	}
	if st.QuarantineExits == 0 {
		t.Error("quarantined NIC never re-admitted after the clean window")
	}

	// The quarantine window spans first enter to last exit. Inside it the
	// flap keeps toggling the link, but selection must not move any plan:
	// the only re-specializations are the demotion at enter and the
	// promotion at exit.
	enterAt, exitAt := sim.Time(-1), sim.Time(-1)
	for _, r := range st.AdaptEvents {
		if r.PlanID >= 0 {
			continue
		}
		if strings.Contains(r.Reason, "quarantine enter") && enterAt < 0 {
			enterAt = r.At
		}
		if strings.Contains(r.Reason, "quarantine exit") {
			exitAt = r.At
		}
	}
	if enterAt < 0 {
		t.Fatal("no quarantine enter record in the adaptation log")
	}
	for _, r := range st.AdaptEvents {
		if r.PlanID < 0 || r.At <= enterAt {
			continue
		}
		if exitAt < 0 || r.At < exitAt {
			t.Errorf("plan %d re-specialized inside the quarantine window (t=%g): %s", r.PlanID, r.At, r)
		}
	}

	// Demotion and promotion both happened for the NIC-crossing plans.
	demotes, promotes := 0, 0
	for _, r := range st.AdaptEvents {
		if r.PlanID < 0 {
			continue
		}
		if r.From == MethodCudaAware && r.To == MethodStaged {
			demotes++
		}
		if r.From == MethodStaged && r.To == MethodCudaAware {
			promotes++
		}
	}
	if demotes == 0 {
		t.Error("no CUDAAWAREMPI plan demoted under the flapping NIC")
	}
	if st.QuarantineExits > 0 && promotes == 0 {
		t.Error("no plan promoted back after quarantine exit")
	}
	verifyHalos(t, e)
}
