package exchange

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/flownet"
)

// Link health scoring and quarantine (the flap-absorbing half of the
// robustness layer). Every adaptation tick, each link the method selection
// can observe is scored with an EWMA over a binary fault indicator: did the
// link accumulate MPI-level faults (timeouts, drops, corruptions charged by
// the reliable envelope), go down, or is it down right now. A link whose
// score crosses the enter threshold is quarantined: method selection treats
// it as unhealthy no matter what its instantaneous up/down state says, so a
// flapping link cannot thrash plans between methods on every tick. The link
// is re-admitted only after a clean window — quarantineTicks consecutive
// fault-free ticks AND a decayed score — which bounds re-specialization to
// one demotion and one promotion per quarantine episode.

const (
	healthAlpha     = 0.5 // EWMA weight of the newest indicator
	quarantineEnter = 0.5 // score at or above which a link is quarantined
	quarantineExit  = 0.1 // score at or below which re-admission is allowed
)

// linkHealth is one link's score and quarantine state.
type linkHealth struct {
	l           *flownet.Link
	score       float64
	lastFaults  int    // World.LinkFaults snapshot at the previous tick
	lastDowns   uint64 // Link.DownCount snapshot at the previous tick
	quarantined bool
	cleanTicks  int // consecutive fault-free ticks while quarantined
}

// healthMonitor scores every link that phase-3 selection can observe.
type healthMonitor struct {
	e     *Exchanger
	links []*linkHealth // deterministic registration order (plan order)
	index map[*flownet.Link]*linkHealth

	enters, exits int
}

func (e *Exchanger) quarantineTicks() int {
	if e.Opts.QuarantineTicks < 1 {
		return 5
	}
	return e.Opts.QuarantineTicks
}

// newHealthMonitor registers, in plan order, every link on a plan's candidate
// paths plus its STAGED floor path (the NIC and staging hops a demoted plan
// will cross). Registration order is deterministic, so the monitor's record
// stream is bit-identical across reruns and worker counts.
func newHealthMonitor(e *Exchanger) *healthMonitor {
	hm := &healthMonitor{e: e, index: make(map[*flownet.Link]*linkHealth)}
	add := func(links []*flownet.Link) {
		for _, l := range links {
			if _, ok := hm.index[l]; ok {
				continue
			}
			lh := &linkHealth{l: l}
			hm.index[l] = lh
			hm.links = append(hm.links, lh)
		}
	}
	for _, pl := range e.Plans {
		pp := e.pathsOf(pl)
		add(pp.p2p)
		add(pp.ca)
		if pl.Src.NodeID != pl.Dst.NodeID {
			add(e.stagedLinks(pl))
		}
	}
	return hm
}

// quarantined reports whether a link is currently quarantined; selection
// treats such links as unhealthy regardless of live state.
func (hm *healthMonitor) quarantined(l *flownet.Link) bool {
	if hm == nil {
		return false
	}
	lh, ok := hm.index[l]
	return ok && lh.quarantined
}

// tick rescores every link and moves quarantine state; it reports whether
// any link entered or left quarantine (which forces a re-specialization even
// when the flow network itself saw no mutation).
func (hm *healthMonitor) tick() bool {
	e := hm.e
	changed := false
	for _, lh := range hm.links {
		faults := e.W.LinkFaults(lh.l)
		downs := lh.l.DownCount()
		bad := faults > lh.lastFaults || downs > lh.lastDowns || lh.l.Down()
		lh.lastFaults, lh.lastDowns = faults, downs
		x := 0.0
		if bad {
			x = 1.0
		}
		lh.score = healthAlpha*x + (1-healthAlpha)*lh.score
		switch {
		case !lh.quarantined && lh.score >= quarantineEnter:
			lh.quarantined = true
			lh.cleanTicks = 0
			hm.enters++
			changed = true
			hm.log(lh, "enter")
		case lh.quarantined:
			if bad {
				lh.cleanTicks = 0
			} else {
				lh.cleanTicks++
			}
			if lh.cleanTicks >= e.quarantineTicks() && lh.score <= quarantineExit {
				lh.quarantined = false
				hm.exits++
				changed = true
				hm.log(lh, "exit")
			}
		}
	}
	return changed
}

func (hm *healthMonitor) log(lh *linkHealth, action string) {
	e := hm.e
	e.logAdapt(AdaptRecord{At: e.Eng.Now(), PlanID: -1,
		Reason: fmt.Sprintf("link %s: quarantine %s (health score %.3f)", lh.l.Name, action, lh.score)})
	if tel := e.Opts.Telemetry; tel != nil {
		tel.LinkQuarantine(float64(e.Eng.Now()), lh.l.Name, action, lh.score)
	}
}

// QuarantineCounts reports how many quarantine enter/exit transitions the
// health monitor performed (zero when the monitor is disabled).
func (e *Exchanger) QuarantineCounts() (enters, exits int) {
	if e.health == nil {
		return 0, 0
	}
	return e.health.enters, e.health.exits
}
