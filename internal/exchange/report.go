package exchange

import (
	"fmt"
	"sort"
	"strings"
)

// LinkClass classifies which part of the machine a plan's payload crosses,
// for traffic analysis (which is what the placement phase optimizes).
type LinkClass int

const (
	// ClassSameGPU: self-exchange, never leaves device memory.
	ClassSameGPU LinkClass = iota
	// ClassNVLink: direct GPU-GPU within a triad.
	ClassNVLink
	// ClassXBus: crosses the socket-to-socket SMP bus.
	ClassXBus
	// ClassHost: staged through host memory within a node.
	ClassHost
	// ClassNIC: leaves the node.
	ClassNIC
	numClasses
)

func (c LinkClass) String() string {
	switch c {
	case ClassSameGPU:
		return "same-GPU"
	case ClassNVLink:
		return "NVLink"
	case ClassXBus:
		return "X-Bus"
	case ClassHost:
		return "host-staged"
	case ClassNIC:
		return "NIC"
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// classOf determines the traffic class of a plan from its endpoints and
// method.
func (e *Exchanger) classOf(p *Plan) LinkClass {
	switch {
	case p.Src.NodeID != p.Dst.NodeID:
		return ClassNIC
	case p.Method == MethodStaged:
		// Intra-node but staged through pinned host buffers.
		return ClassHost
	case p.Src.Dev == p.Dst.Dev:
		return ClassSameGPU
	case e.M.Nodes[p.Src.NodeID].SameTriad(p.Src.LocalGPU, p.Dst.LocalGPU):
		return ClassNVLink
	default:
		return ClassXBus
	}
}

// StagingBytes returns the library's memory overhead: the total size of all
// device and pinned-host staging buffers allocated for the transfer plans
// (the domains themselves excluded).
func (e *Exchanger) StagingBytes() (device, host int64) {
	for _, p := range e.Plans {
		if p.devSend != nil {
			device += p.devSend.Size()
		}
		if p.devRecv != nil {
			device += p.devRecv.Size()
		}
		if p.hostSend != nil {
			host += p.hostSend.Size()
		}
		if p.hostRecv != nil {
			host += p.hostRecv.Size()
		}
	}
	for _, g := range e.groups {
		host += g.hostSend.Size() + g.hostRecv.Size()
	}
	return device, host
}

// TrafficReport breaks the per-exchange bytes down by link class.
type TrafficReport struct {
	Bytes map[LinkClass]int64
	Plans map[LinkClass]int
}

// Traffic computes the per-exchange traffic report for the current plans.
func (e *Exchanger) Traffic() *TrafficReport {
	r := &TrafficReport{
		Bytes: make(map[LinkClass]int64),
		Plans: make(map[LinkClass]int),
	}
	for _, p := range e.Plans {
		c := e.classOf(p)
		r.Bytes[c] += p.Bytes
		r.Plans[c]++
	}
	return r
}

// Total returns the total bytes per exchange.
func (r *TrafficReport) Total() int64 {
	var t int64
	for _, b := range r.Bytes {
		t += b
	}
	return t
}

// String renders the report sorted by class.
func (r *TrafficReport) String() string {
	var classes []LinkClass
	for c := LinkClass(0); c < numClasses; c++ {
		if r.Plans[c] > 0 {
			classes = append(classes, c)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var b strings.Builder
	total := r.Total()
	for _, c := range classes {
		fmt.Fprintf(&b, "%-12s %6d plans %10.1f MB (%4.1f%%)\n",
			c, r.Plans[c], float64(r.Bytes[c])/1e6, 100*float64(r.Bytes[c])/float64(total))
	}
	return b.String()
}
