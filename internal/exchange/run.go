package exchange

import (
	"fmt"
	"strconv"

	"github.com/nodeaware/stencil/internal/mpi"
	"github.com/nodeaware/stencil/internal/sim"
	"github.com/nodeaware/stencil/internal/telemetry"
)

// step is one state of a sender/receiver state machine (§III-D): when sig
// fires, next runs on the owning rank's CPU (charging its costs) and returns
// the successor state, or nil when the machine is done.
type step struct {
	sig  *sim.Signal
	next func(p *sim.Proc) *step
}

// senderSteps issues the send side of a plan and returns the state machines
// the rank must drive to completion. Pure-CUDA methods return a single
// terminal step (their chain lives entirely on streams); MPI-coupled methods
// return multi-state machines.
func (e *Exchanger) senderSteps(p *sim.Proc, pl *Plan, iter int) []*step {
	rt := e.RT
	nm := pl.opNames()
	switch pl.Method {
	case MethodKernel:
		// One kernel moves the wrapped halo inside device memory; no pack
		// or unpack (lowest-overhead method).
		rt.LaunchCost(p)
		done := pl.Src.kernelStream.Kernel(
			nm.kernelEx, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Src.Dom.SelfExchange(pl.Dir) })
		return []*step{{sig: done}}

	case MethodPeer:
		// pack -> cudaMemcpyPeerAsync -> unpack; the whole chain is CUDA
		// ops, ordered by streams and an event dependency.
		rt.LaunchCost(p)
		pl.sendStream.Kernel(nm.pack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Src.Dom.Pack(pl.devSend.Data(), pl.Dir) })
		rt.IssueCost(p)
		cp := pl.sendStream.MemcpyPeerAsync(nm.peerCp,
			pl.devRecv, 0, pl.devSend, 0, pl.Bytes)
		rt.LaunchCost(p)
		up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) }, cp)
		return []*step{{sig: up}}

	case MethodColocated:
		// The destination buffer was IPC-opened at setup; the copy goes
		// straight into the receiving rank's device memory and a shared
		// event (the slot) tells the receiver it landed.
		slot := e.slot(pl.ID, iter)
		rt.LaunchCost(p)
		pl.sendStream.Kernel(nm.pack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Src.Dom.Pack(pl.devSend.Data(), pl.Dir) })
		rt.IssueCost(p)
		cp := pl.sendStream.MemcpyPeerAsync(nm.coloCp,
			pl.devRecv, 0, pl.devSend, 0, pl.Bytes)
		cp.OnFire(slot.Fire)
		return []*step{{sig: cp}}

	case MethodStaged:
		// pack -> D2H on the stream; once staged, the CPU hands the host
		// buffer to MPI_Isend (second state). Aggregated plans stage into
		// the rank pair's shared buffer; the last staging triggers one
		// combined Isend.
		rt.LaunchCost(p)
		pl.sendStream.Kernel(nm.pack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Src.Dom.Pack(pl.devSend.Data(), pl.Dir) })
		rt.IssueCost(p)
		if g := pl.group; g != nil {
			d2h := pl.sendStream.MemcpyAsync(nm.d2h,
				g.hostSend, pl.aggOffset, pl.devSend, 0, pl.Bytes)
			return []*step{{sig: d2h, next: func(p *sim.Proc) *step {
				gs := e.groupStateOf(g, iter)
				gs.remaining--
				if gs.remaining > 0 {
					// Only the final staging carries the chain forward;
					// waiting here per-plan would deadlock the serial
					// (NoOverlap) driver before the group ever sends.
					return nil
				}
				req := e.W.Rank(g.srcRank).Isend(g.dstRank, g.tag, g.hostSend, 0, g.bytes)
				req.Done().OnFire(gs.sendDone.Fire)
				return &step{sig: gs.sendDone}
			}}}
		}
		d2h := pl.sendStream.MemcpyAsync(nm.d2h,
			pl.hostSend, 0, pl.devSend, 0, pl.Bytes)
		return []*step{{sig: d2h, next: func(p *sim.Proc) *step {
			req := e.W.Rank(pl.Src.Rank).Isend(pl.Dst.Rank, pl.Tag, pl.hostSend, 0, pl.Bytes)
			return &step{sig: req.Done()}
		}}}

	case MethodCudaAware:
		// pack on the stream; once packed, the device buffer goes straight
		// to MPI (which internally serializes on the default stream).
		rt.LaunchCost(p)
		pack := pl.sendStream.Kernel(nm.pack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Src.Dom.Pack(pl.devSend.Data(), pl.Dir) })
		return []*step{{sig: pack, next: func(p *sim.Proc) *step {
			req := e.W.Rank(pl.Src.Rank).Isend(pl.Dst.Rank, pl.Tag, pl.devSend, 0, pl.Bytes)
			return &step{sig: req.Done()}
		}}}
	}
	panic("exchange: unknown method")
}

// recverSteps issues the receive side of a plan for methods that need one.
func (e *Exchanger) recverSteps(p *sim.Proc, pl *Plan, iter int) []*step {
	rt := e.RT
	nm := pl.opNames()
	switch pl.Method {
	case MethodKernel, MethodPeer:
		return nil // handled entirely by the sender's rank (same process)

	case MethodColocated:
		slot := e.slot(pl.ID, iter)
		if e.Opts.NoOverlap {
			// Serial mode must not pre-enqueue stream work gated on another
			// rank's future copy: a CUDA-aware transfer's device-wide
			// synchronization could then wait on an event that only fires
			// after this rank unblocks — a deadlock. Wait on the CPU
			// instead, then launch the unpack.
			return []*step{{sig: slot, next: func(p *sim.Proc) *step {
				rt.LaunchCost(p)
				up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
					func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) })
				return &step{sig: up}
			}}}
		}
		// Pre-launch the unpack gated on the shared IPC event; the stream
		// waits, the CPU does not.
		rt.LaunchCost(p)
		up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
			func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) }, slot)
		return []*step{{sig: up}}

	case MethodStaged:
		if g := pl.group; g != nil {
			gs := e.groupStateOf(g, iter)
			if !gs.recvPosted {
				gs.recvPosted = true
				req := e.W.Rank(g.dstRank).Irecv(g.srcRank, g.tag, g.hostRecv, 0, g.bytes)
				req.Done().OnFire(gs.recvDone.Fire)
			}
			return []*step{{sig: gs.recvDone, next: func(p *sim.Proc) *step {
				rt.IssueCost(p)
				pl.recvStream.MemcpyAsync(nm.h2d,
					pl.devRecv, 0, g.hostRecv, pl.aggOffset, pl.Bytes)
				rt.LaunchCost(p)
				up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
					func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) })
				return &step{sig: up}
			}}}
		}
		req := e.W.Rank(pl.Dst.Rank).Irecv(pl.Src.Rank, pl.Tag, pl.hostRecv, 0, pl.Bytes)
		return []*step{{sig: req.Done(), next: func(p *sim.Proc) *step {
			rt.IssueCost(p)
			pl.recvStream.MemcpyAsync(nm.h2d,
				pl.devRecv, 0, pl.hostRecv, 0, pl.Bytes)
			rt.LaunchCost(p)
			up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
				func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) })
			return &step{sig: up}
		}}}

	case MethodCudaAware:
		req := e.W.Rank(pl.Dst.Rank).Irecv(pl.Src.Rank, pl.Tag, pl.devRecv, 0, pl.Bytes)
		return []*step{{sig: req.Done(), next: func(p *sim.Proc) *step {
			rt.LaunchCost(p)
			up := pl.recvStream.Kernel(nm.unpack, pl.Bytes, e.M.Params.PackBW,
				func() { pl.Dst.Dom.Unpack(pl.devRecv.Data(), neg(pl.Dir)) })
			return &step{sig: up}
		}}}
	}
	panic("exchange: unknown method")
}

// stepDriver drives a rank's state machines to completion with a ready
// queue: each step registers a single OnFire callback that enqueues it when
// its signal fires, and the rank process parks on one reusable Gate instead
// of re-registering with every outstanding signal per wake (the previous
// WaitAny loop was quadratic in the number of in-flight transfers).
type stepDriver struct {
	gate    *sim.Gate
	pending int // steps whose signal has not fired yet
	ready   []*step
	cursor  int
}

func (d *stepDriver) add(st *step) {
	if st.sig.Fired() {
		d.ready = append(d.ready, st)
		return
	}
	d.pending++
	st.sig.OnFire(func() {
		d.pending--
		d.ready = append(d.ready, st)
		d.gate.Open()
	})
}

// drain advances fired steps in fire order until no machine remains. A
// step's continuation may sleep, which lets further steps fire and extend
// the ready queue mid-scan; the cursor loop picks them up in order.
func (d *stepDriver) drain(p *sim.Proc) {
	for {
		for d.cursor < len(d.ready) {
			st := d.ready[d.cursor]
			d.ready[d.cursor] = nil
			d.cursor++
			if st.next != nil {
				if ns := st.next(p); ns != nil {
					d.add(ns)
				}
			}
		}
		d.ready = d.ready[:0]
		d.cursor = 0
		if d.pending == 0 {
			return
		}
		d.gate.Await()
	}
}

// runIteration performs one full halo exchange from the perspective of one
// rank: issue all receive sides, then all send sides, then drive every state
// machine until completion (§III-D's poll loop).
func (e *Exchanger) runIteration(p *sim.Proc, rank, iter int) {
	if e.Opts.NoOverlap {
		e.runIterationSerial(p, rank, iter)
		return
	}
	d := &stepDriver{gate: sim.NewGate(p)}
	// Receives first so no send can block on an unposted receive.
	for _, pl := range e.recvDutiesOf(rank) {
		for _, st := range e.recverSteps(p, pl, iter) {
			d.add(st)
		}
	}
	for _, pl := range e.sendDutiesOf(rank) {
		for _, st := range e.senderSteps(p, pl, iter) {
			d.add(st)
		}
	}
	d.drain(p)
}

// runIterationSerial is the NoOverlap ablation: receives are still posted up
// front (MPI matching requires it to avoid deadlock) but every transfer is
// then driven to completion before the next one starts.
func (e *Exchanger) runIterationSerial(p *sim.Proc, rank, iter int) {
	var recvs []*step
	for _, pl := range e.recvDutiesOf(rank) {
		recvs = append(recvs, e.recverSteps(p, pl, iter)...)
	}
	for _, pl := range e.sendDutiesOf(rank) {
		for _, st := range e.senderSteps(p, pl, iter) {
			e.driveToCompletion(p, st)
		}
	}
	for _, st := range recvs {
		e.driveToCompletion(p, st)
	}
}

func (e *Exchanger) driveToCompletion(p *sim.Proc, st *step) {
	for st != nil {
		st.sig.Wait(p)
		if st.next == nil {
			return
		}
		st = st.next(p)
	}
}

func (e *Exchanger) sendDutiesOf(rank int) []*Plan {
	if e.sendDuties == nil {
		e.buildDuties()
	}
	return e.sendDuties[rank]
}

func (e *Exchanger) recvDutiesOf(rank int) []*Plan {
	if e.recvDuties == nil {
		e.buildDuties()
	}
	return e.recvDuties[rank]
}

func (e *Exchanger) buildDuties() {
	e.sendDuties = make([][]*Plan, e.W.Size())
	e.recvDuties = make([][]*Plan, e.W.Size())
	for _, pl := range e.Plans {
		e.sendDuties[pl.Src.Rank] = append(e.sendDuties[pl.Src.Rank], pl)
		switch pl.Method {
		case MethodKernel, MethodPeer:
			// receive side handled by the sender's process
		default:
			e.recvDuties[pl.Dst.Rank] = append(e.recvDuties[pl.Dst.Rank], pl)
		}
	}
}

// Run executes the measurement protocol of §IV-A for the given number of
// exchange iterations: per iteration, barrier, exchange, and an allreduce of
// the per-rank wall time; the maximum across ranks is the iteration's
// reported time.
func (e *Exchanger) Run(iterations int) *Stats {
	return e.RunWithCompute(iterations, nil)
}

// RunWithCompute interleaves a per-subdomain compute kernel after each
// exchange (the application's stencil update). Only the exchange portion is
// timed, matching the paper's methodology.
//
// With Options.CheckpointEvery > 0 the run additionally takes periodic
// checkpoints and survives permanent GPU/rank loss by rolling every rank
// back to the last checkpoint epoch (see recover.go). The recovery-capable
// loop is a superset of the plain one; CheckpointEvery == 0 keeps the
// original control flow so fault-free timings stay bit-identical.
func (e *Exchanger) RunWithCompute(iterations int, compute func(*Sub)) *Stats {
	if iterations < 1 {
		panic("exchange: Run with no iterations")
	}
	times := make([]sim.Time, iterations)
	ar := mpi.NewAllreducer(e.W)
	tel := e.Opts.Telemetry
	var runSpan *telemetry.Span
	if tel != nil {
		runSpan = tel.StartSpan("run", nil, e.Eng.Now())
	}
	// The coordinator runs the per-iteration bookkeeping: timing, telemetry,
	// adaptation, and checkpoint/failure detection. It starts as the lowest
	// active rank and is re-elected by recovery when it dies.
	e.coordRank = -1
	for r := 0; r < e.W.Size(); r++ {
		if !e.W.Deactivated(r) {
			e.coordRank = r
			break
		}
	}
	if e.coordRank < 0 {
		panic("exchange: no active rank left to run")
	}
	var rc *recovery
	if e.Opts.CheckpointEvery > 0 {
		rc = newRecovery(e, iterations, runSpan)
		e.rec = rc
	}

	// body is one iteration from one rank's perspective: exchange, timing
	// allreduce, coordinator duties at the safe point, then compute.
	body := func(p *sim.Proc, rank, it int) {
		t0 := e.W.Wtime()
		e.runIteration(p, rank, it)
		dt := e.W.Wtime() - t0
		maxDt := ar.MaxFloat(p, dt)
		if rank == e.coordRank {
			times[it] = maxDt
			if tel != nil {
				// The coordinator records the iteration on everyone's
				// behalf: the span covers [t0, t0 + max-across-ranks], the
				// same quantity the paper reports per iteration.
				sp := tel.StartSpanFeature("exchange", runSpan, t0, telemetry.FeatureBaseline)
				sp.End(t0+maxDt, telemetry.L("iter", strconv.Itoa(it)))
				tel.Counter("exchange_iterations_total").Inc()
				tel.Histogram("exchange_iteration_seconds", telemetry.SecondsBuckets).Observe(maxDt)
			}
			// Safe point: every rank has passed the allreduce but none can
			// leave the next barrier until the coordinator enters it, so no
			// plan is mid-flight while we verify, re-specialize, or
			// checkpoint. Verification runs first: adaptation and checkpoints
			// must see (and snapshot) repaired halos.
			if e.verifier != nil {
				e.verifyTick(p, it)
			}
			if e.Opts.Adaptive && (it+1)%e.adaptEvery() == 0 {
				if tel != nil {
					asp := tel.StartSpanFeature("adapt", runSpan, e.Eng.Now(), telemetry.FeatureAdapt)
					e.adaptTick(p)
					asp.End(e.Eng.Now())
				} else {
					e.adaptTick(p)
				}
			}
			if rc != nil {
				rc.atSafePoint(it)
			}
			e.pollPreempt()
		}
		if compute == nil {
			return
		}
		if e.verifier != nil && e.Opts.RealData {
			// Compute mutates send regions and halos. Without this barrier a
			// non-coordinator rank would launch its kernels right after the
			// allreduce, racing the coordinator's verification: quadrant
			// checksums would compare post-compute send regions against
			// pre-compute halos, and a re-exchange could write post-compute
			// bytes into a neighbor's halo mid-iteration. Hold every rank
			// until the coordinator finishes its safe-point duties.
			e.W.Barrier(p)
		}
		// Ownership is re-read every iteration: AdaptPlacement (or a
		// recovery migration) may move a subdomain to another rank's GPU
		// mid-run.
		var done []*sim.Signal
		for _, s := range e.Subs {
			if s.Rank != rank {
				continue
			}
			s := s
			bytes := int64(s.Dom.Size.Vol()) * int64(e.Opts.ElemSize) * int64(e.Opts.Quantities)
			e.RT.LaunchCost(p)
			done = append(done, s.kernelStream.Kernel(
				fmt.Sprintf("compute.%v", s.Global), bytes, e.M.Params.PackBW,
				func() { compute(s) }))
		}
		sim.WaitAll(p, done...)
	}
	if e.Opts.Overlap {
		// Pipelined per-quadrant iteration body (overlap.go): same loop
		// skeleton, no global verification barrier.
		body = e.overlapBody(times, ar, runSpan, rc, compute)
	}

	for r := 0; r < e.W.Size(); r++ {
		if e.W.Deactivated(r) {
			continue
		}
		rank := r
		e.Eng.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			if rc == nil {
				for it := 0; it < iterations; it++ {
					e.W.Barrier(p)
					if e.stopped {
						return
					}
					body(p, rank, it)
				}
				return
			}
			// The recovery-capable loop: every barrier doubles as the
			// recovery line. On a pending plan, dead ranks exit the job,
			// the (re-elected) coordinator performs the rollback, and all
			// survivors resume from the checkpoint epoch's iteration.
			// Checkpoints run as a collective between the recovery line and
			// the iteration body: the schedule is a pure function of the
			// iteration number, so every rank knows one is due; the
			// coordinator drives the D2H flows while everyone else parks at
			// the closing barrier, which guarantees the snapshot is taken
			// at a globally quiescent instant (epoch 0, before the first
			// iteration, snapshots the pristine initial state).
			it, lastHandled := 0, 0
			for {
				e.W.Barrier(p)
				if e.stopped {
					return
				}
				exit, resume := rc.atRecoveryLine(p, rank, &lastHandled)
				if exit {
					return
				}
				if resume >= 0 {
					it = resume
				}
				if it >= iterations {
					break
				}
				if rc.checkpointDue(it) {
					if rank == e.coordRank {
						rc.checkpoint(p, it)
					}
					e.W.Barrier(p)
				}
				body(p, rank, it)
				it++
			}
		})
	}
	e.Eng.Run()
	if runSpan != nil {
		runSpan.End(e.Eng.Now())
	}
	// Free the per-iteration rendezvous state.
	e.slots = make(map[slotKey]*sim.Signal)
	e.groupStates = make(map[slotKey]*groupState)
	e.overlapStates = make(map[int]*overlapIterState)
	return newStats(e, times)
}
