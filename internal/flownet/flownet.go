// Package flownet models data transfers as flows over a network of
// bandwidth-limited links, with max-min fair rate allocation.
//
// Each flow traverses an ordered path of links. At any instant every flow has
// a rate: the max-min fair allocation given all concurrently active flows and
// the capacity of every link they share. When the set of flows changes (one
// starts or finishes) the rates of the affected connected component are
// recomputed via water-filling and completion events are rescheduled for
// flows whose rate changed.
//
// This captures the contention effects the paper's results hinge on: a STAGED
// exchange funnels six GPUs' halos through two host-DRAM links and loses to
// PEERMEMCPY, which spreads the same bytes over six NVLinks.
//
// The implementation is engineered for cluster-scale simulations (hundreds of
// nodes, thousands of concurrent flows): component discovery and
// water-filling use epoch-stamped scratch fields on links and flows rather
// than maps, and rescheduling skips flows whose rate is unchanged.
package flownet

import (
	"fmt"
	"math"

	"github.com/nodeaware/stencil/internal/sim"
)

// Loss models per-message delivery faults on a link. Each field is the
// probability, per message crossing the link, of the corresponding fault.
// The network itself never consults these — flows always deliver their
// bytes — because loss is a message-level concept: the MPI layer samples
// them at flow completion with a deterministic hash-based draw so that
// corruption flips real payload bytes and drops really withhold delivery.
type Loss struct {
	Drop    float64 // message withheld entirely
	Corrupt float64 // payload bytes flipped in the receive buffer
	Dup     float64 // message delivered twice
}

// Zero reports whether the loss model is a no-op.
func (ls Loss) Zero() bool { return ls.Drop == 0 && ls.Corrupt == 0 && ls.Dup == 0 }

// Link is a unidirectional bandwidth resource.
type Link struct {
	Name     string
	Capacity float64 // bytes per second
	base     float64 // healthy capacity, set at creation
	down     bool    // marked failed by FailLink
	downs    uint64  // up→down transitions (see DownCount)
	loss     Loss    // per-message delivery-fault probabilities
	flows    []*Flow // active flows crossing the link

	// rateSum is the incrementally maintained sum of the current rates of
	// all flows crossing the link. It lets a bounded-horizon rebalance
	// subtract the frozen boundary traffic of a horizon link in O(1)
	// instead of enumerating the link's (possibly thousands of) flows.
	rateSum float64

	// Scratch fields for rebalance; valid only when visit == Network.epoch.
	visit      uint64
	residual   float64
	unassigned int
	interior   float64 // rate sum of interior (re-waterfilled) flows
	off, end   int     // this link's interior-flow segment in Network.arena
}

// NewLink creates a link with the given capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("flownet: link %s capacity %g <= 0", name, capacity))
	}
	return &Link{Name: name, Capacity: capacity, base: capacity}
}

// NumFlows returns the number of flows currently traversing the link.
func (l *Link) NumFlows() int { return len(l.flows) }

// BaseCapacity returns the healthy (creation-time) capacity, the reference
// point for degradation factors and recovery.
func (l *Link) BaseCapacity() float64 { return l.base }

// Down reports whether the link is marked failed (FailLink without a
// matching RestoreLink). A down link still carries a residual trickle so
// in-flight flows remain schedulable; higher layers consult this flag to
// route around it.
func (l *Link) Down() bool { return l.down }

// DownCount returns the number of up→down transitions the link has seen
// (FailLink calls on an up link). Health scoring uses deltas of this counter
// to notice a flapping link even when every instantaneous Down() sample
// happens to land in an up window.
func (l *Link) DownCount() uint64 { return l.downs }

// SetLoss installs per-message delivery-fault probabilities on the link.
// Purely advisory state: capacities, waterfilling, and the mutation counter
// are untouched. The MPI reliable-delivery layer samples it per message.
func (l *Link) SetLoss(ls Loss) { l.loss = ls }

// Loss returns the link's per-message delivery-fault probabilities.
func (l *Link) Loss() Loss { return l.loss }

// Health returns Capacity/BaseCapacity: 1 when healthy, ~0 when failed.
func (l *Link) Health() float64 { return l.Capacity / l.base }

func (l *Link) removeFlow(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			l.flows[i] = l.flows[len(l.flows)-1]
			l.flows[len(l.flows)-1] = nil
			l.flows = l.flows[:len(l.flows)-1]
			l.rateSum -= f.rate
			if l.rateSum < 0 {
				l.rateSum = 0
			}
			return
		}
	}
	panic("flownet: flow not on link " + l.Name)
}

// Flow is an in-flight transfer across a path of links.
type Flow struct {
	name       string
	path       []*Link
	total      float64 // original size in bytes
	remaining  float64 // bytes left to move
	rate       float64 // current allocated bytes/sec
	lastUpdate sim.Time
	done       *sim.Signal
	completion *sim.Event

	visit    uint64 // component-discovery stamp (interior)
	assigned uint64 // water-filling stamp

	net     *Network // owner, for flush-forcing accessors
	pending bool     // started this instant, not yet allocated a rate

	// Intrusive list of active flows (Network.head), maintained so the
	// reference oracle can enumerate the whole network without the Network
	// tracking per-flow maps on the hot path.
	prev, next *Flow
}

// Done returns the signal fired when the flow's last byte arrives.
func (f *Flow) Done() *sim.Signal { return f.done }

// Rate returns the currently allocated rate in bytes/second. Rate changes
// from the current instant are materialized first (see Network batching).
func (f *Flow) Rate() float64 {
	if f.net != nil {
		f.net.flushPending()
	}
	return f.rate
}

// Remaining returns the bytes not yet transferred as of the last rate change.
func (f *Flow) Remaining() float64 {
	if f.net != nil {
		f.net.flushPending()
	}
	return f.remaining
}

// Network owns a set of links and the active flows over them.
type Network struct {
	eng       *sim.Engine
	active    int
	epoch     uint64
	head      *Flow  // intrusive list of active flows
	mutations uint64 // capacity-change counter (see Mutations)

	// MaxHops bounds how far a rate recomputation propagates from the
	// changed flow, measured in link hops of the link-flow bipartite graph.
	// Zero means unbounded (exact max-min over the whole connected
	// component). With a bound, flows beyond the horizon keep their current
	// rates and are subtracted from link capacities as constants; the
	// allocation inside the horizon is exact given that boundary. Rates a
	// few hops away change negligibly when a flow starts, so a small bound
	// (4-6) preserves behaviour while keeping cluster-scale simulations
	// near-linear in events.
	MaxHops int

	// Same-instant batching: flow arrivals, departures, and capacity
	// changes within one virtual instant queue their seed links here and a
	// single water-fill runs when the engine is about to advance the clock.
	// Rates only matter across instants (settling within an instant covers
	// zero elapsed time), so the batched allocation — the exact max-min for
	// the instant's final flow set — schedules the same completions as
	// per-mutation recomputation, at a fraction of the cost.
	pendSeeds []*Link
	pendFlows []*Flow // flows started this instant (pending flag set)

	// Probe, when non-nil, observes every waterfill rebalance: one
	// LinkSample per component link with its post-waterfill utilization and
	// active-flow count, then one Rebalanced call with the component size.
	// Probes must be passive (never schedule engine events or mutate the
	// network); internal/telemetry.Recorder satisfies this interface.
	Probe Probe

	// Reusable scratch for rebalance.
	compFlows []*Flow
	compLinks []*Link
	compDepth []int
	actLinks  []*Link
	arena     []*Flow // per-link interior-flow segments (Link.off/end)
}

// Probe observes rate rebalances for telemetry. Utilization is the link's
// allocated rate divided by its live capacity, clamped to [0, 1]; every
// mutation (flow start/finish/abort, capacity change) funnels through a
// rebalance, so sampling here sees every change exactly once per instant.
type Probe interface {
	// LinkSample reports one link's state after a waterfill pass.
	LinkSample(t sim.Time, link string, util float64, flows int)
	// Rebalanced reports one waterfill pass: component size in links and
	// flows, plus the network-wide active flow count.
	Rebalanced(t sim.Time, links, flows, active int)
}

// New creates an empty network bound to the engine.
func New(e *sim.Engine) *Network {
	n := &Network{eng: e}
	e.AddFlusher(n.flushPending)
	return n
}

// dirty queues seed links for the end-of-instant water-fill.
func (n *Network) dirty(seeds []*Link) {
	n.pendSeeds = append(n.pendSeeds, seeds...)
	n.eng.RequestFlush()
}

// flushPending materializes all rate changes queued during the current
// instant with one water-fill over the union of the queued seeds. Invoked by
// the engine before the clock advances, and by accessors that need current
// rates mid-instant. No-op when nothing is queued.
func (n *Network) flushPending() {
	if len(n.pendSeeds) == 0 {
		return
	}
	for _, f := range n.pendFlows {
		f.pending = false
	}
	n.pendFlows = n.pendFlows[:0]
	seeds := n.pendSeeds
	n.rebalance(seeds)
	n.pendSeeds = seeds[:0]
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return n.active }

// Mutations returns a counter incremented every time a link capacity
// actually changes (SetCapacity, and through it Degrade/Fail/Restore).
// Higher layers use it to memoize topology-health-dependent decisions: if
// Mutations is unchanged, every link's capacity and down flag is unchanged.
func (n *Network) Mutations() uint64 { return n.mutations }

// link/unlink maintain the intrusive active-flow list.
func (n *Network) link(f *Flow) {
	f.next = n.head
	if n.head != nil {
		n.head.prev = f
	}
	n.head = f
}

func (n *Network) unlink(f *Flow) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		n.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	}
	f.prev, f.next = nil, nil
}

// StartFlow begins transferring bytes over path and returns the flow. The
// flow's Done signal fires when it completes. A zero-byte flow completes at
// the current time (signal fires immediately). An empty path is not allowed:
// model zero-cost local moves at a higher layer.
func (n *Network) StartFlow(name string, path []*Link, bytes float64) *Flow {
	if len(path) == 0 {
		panic("flownet: StartFlow with empty path: " + name)
	}
	if bytes < 0 {
		panic(fmt.Sprintf("flownet: negative flow size %g: %s", bytes, name))
	}
	f := &Flow{
		name:       name,
		path:       path,
		total:      bytes,
		remaining:  bytes,
		lastUpdate: n.eng.Now(),
		done:       sim.NewSignal(n.eng, name),
	}
	if bytes == 0 {
		f.done.Fire()
		return f
	}
	f.net = n
	f.pending = true
	n.active++
	n.link(f)
	for _, l := range f.path {
		l.flows = append(l.flows, f)
	}
	n.pendFlows = append(n.pendFlows, f)
	n.dirty(f.path)
	return f
}

// finish removes a completed flow and fires its signal.
func (n *Network) finish(f *Flow) {
	f.settle(n.eng.Now())
	// Rate recomputations accumulate floating-point residue proportional to
	// the flow size; anything beyond that tolerance is a scheduling bug.
	if f.remaining > 1e-9*f.total+1e-3 {
		panic(fmt.Sprintf("flownet: flow %s completed with %g bytes remaining", f.name, f.remaining))
	}
	n.active--
	n.unlink(f)
	for _, l := range f.path {
		l.removeFlow(f)
	}
	f.completion = nil
	f.done.Fire()
	n.dirty(f.path)
}

// FailFraction is the residual capacity fraction of a failed link: the link
// is effectively dead (error-retry trickle) but in-flight flows keep a
// nonzero rate so completion events stay schedulable and a later recovery
// re-waterfills them to sane times.
const FailFraction = 1e-6

// SetCapacity changes a link's capacity mid-simulation and re-waterfills the
// affected component: in-flight flows crossing the link (and flows sharing
// links with them, transitively up to MaxHops) have their rates and
// completion times recomputed exactly as if the set of flows had changed.
func (n *Network) SetCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("flownet: link %s capacity %g <= 0", l.Name, capacity))
	}
	if capacity == l.Capacity {
		return
	}
	l.Capacity = capacity
	n.mutations++
	n.pendSeeds = append(n.pendSeeds, l)
	n.eng.RequestFlush()
}

// DegradeLink sets a link to factor × its healthy capacity (factor in (0,1]
// degrades, factor 1 restores, factor > 1 models an upgrade).
func (n *Network) DegradeLink(l *Link, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("flownet: degrade factor %g <= 0 on %s", factor, l.Name))
	}
	n.SetCapacity(l, l.base*factor)
}

// FailLink marks a link down and collapses its capacity to the residual
// trickle. Idempotent.
func (n *Network) FailLink(l *Link) {
	if !l.down {
		l.down = true
		l.downs++
		n.mutations++
	}
	cap := l.base * FailFraction
	if cap < 1 {
		cap = 1
	}
	n.SetCapacity(l, cap)
}

// RestoreLink clears the failed mark and restores the healthy capacity,
// re-waterfilling any flows that were crawling across the outage. Idempotent.
func (n *Network) RestoreLink(l *Link) {
	if l.down {
		l.down = false
		n.mutations++
	}
	n.SetCapacity(l, l.base)
}

// Abort cancels an in-flight flow: bytes already moved stay moved, the Done
// signal never fires, and the freed bandwidth is redistributed to the
// remaining flows. Aborting a completed (or zero-byte) flow is a no-op.
// Callers that retry a transfer start a fresh flow.
func (n *Network) Abort(f *Flow) {
	if f.pending {
		// Started earlier this instant; no rate was ever allocated. Remove
		// it before the batched water-fill sees it.
		f.pending = false
		for i, g := range n.pendFlows {
			if g == f {
				n.pendFlows[i] = n.pendFlows[len(n.pendFlows)-1]
				n.pendFlows = n.pendFlows[:len(n.pendFlows)-1]
				break
			}
		}
		n.active--
		n.unlink(f)
		for _, l := range f.path {
			l.removeFlow(f) // rate is still 0: rateSum unchanged
		}
		return
	}
	if f.completion == nil {
		return
	}
	f.settle(n.eng.Now())
	f.completion.Cancel()
	f.completion = nil
	n.active--
	n.unlink(f)
	for _, l := range f.path {
		l.removeFlow(f) // subtracts f.rate from each link's rateSum
	}
	f.rate = 0
	n.dirty(f.path)
}

// settle accounts bytes moved at the current rate since the last update.
func (f *Flow) settle(now sim.Time) {
	f.remaining -= f.rate * (now - f.lastUpdate)
	if f.remaining < 0 {
		f.remaining = 0
	}
	f.lastUpdate = now
}

// rebalance recomputes the max-min fair allocation for the connected
// component of flows reachable from the seed links and reschedules the
// completion events of flows whose rate changed. Flows sharing no link
// (transitively) with the seed are untouched: by the uniqueness of the
// max-min allocation their rates cannot have changed.
//
// The recomputation is incremental in two ways. First, only links within
// MaxHops of the seed are re-waterfilled; a link first reached at the
// horizon keeps its boundary traffic frozen, and that frozen load is
// derived in O(1) from the link's incrementally maintained rate sum
// instead of enumerating its flows (a horizon NIC or host-memory link can
// carry thousands). Second, flows whose allocated rate is unchanged keep
// their scheduled completion event, and flows whose rate did change reuse
// the same event object via Engine.Reschedule rather than allocating a
// fresh one.
func (n *Network) rebalance(seed []*Link) {
	n.epoch++
	epoch := n.epoch

	// Component discovery (breadth-first over the link-flow bipartite
	// graph) into reusable scratch slices. Links first reached at the
	// horizon (depth == MaxHops) are constraint-only: their interior flows
	// participate in the waterfill but their other flows stay frozen.
	flows := n.compFlows[:0]
	links := n.compLinks[:0]
	depth := n.compDepth[:0]
	for _, l := range seed {
		if l.visit != epoch {
			l.visit = epoch
			l.interior = 0
			l.unassigned = 0
			links = append(links, l)
			depth = append(depth, 0)
		}
	}
	for cursor := 0; cursor < len(links); cursor++ {
		l := links[cursor]
		d := depth[cursor]
		if n.MaxHops > 0 && d >= n.MaxHops {
			continue // horizon link: flows not enumerated
		}
		for _, f := range l.flows {
			if f.visit == epoch {
				continue
			}
			f.visit = epoch
			flows = append(flows, f)
			for _, fl := range f.path {
				if fl.visit != epoch {
					fl.visit = epoch
					fl.interior = 0
					fl.unassigned = 0
					links = append(links, fl)
					depth = append(depth, d+1)
				}
			}
		}
	}
	n.compFlows, n.compLinks, n.compDepth = flows, links, depth
	if len(flows) == 0 {
		// All flows over the seed links finished or moved away: the links
		// are idle now, and the probe must see utilization drop to zero.
		n.probeSample(links, 0)
		return
	}

	// Accumulate each link's interior load (rates about to be replaced)
	// before settling so horizon links can subtract exactly the boundary
	// remainder: residual = Capacity - (rateSum - interior). The unassigned
	// count is the interior-flow count: for non-horizon links every flow is
	// interior (discovery enumerated them all), for horizon links the
	// boundary flows stay frozen and must not be touched.
	for _, f := range flows {
		for _, l := range f.path {
			l.interior += f.rate
			l.unassigned++
		}
	}

	// Pack each link's interior flows into contiguous arena segments so the
	// water-filling freeze pass never scans a horizon link's (possibly
	// thousands of) frozen boundary flows.
	total := 0
	for _, l := range links {
		l.off = total
		l.end = total
		total += l.unassigned
	}
	arena := n.arena
	if cap(arena) < total {
		arena = make([]*Flow, total)
	} else {
		arena = arena[:total]
	}
	for _, f := range flows {
		for _, l := range f.path {
			arena[l.end] = f
			l.end++
		}
	}
	n.arena = arena

	now := n.eng.Now()
	for _, f := range flows {
		f.settle(now)
	}

	// Water-filling: repeatedly freeze the most-constrained link's flows at
	// that link's equal share. Only links with interior flows can constrain
	// the allocation; act holds them and is compacted as links saturate.
	act := n.actLinks[:0]
	for i, l := range links {
		if n.MaxHops > 0 && depth[i] >= n.MaxHops {
			// Horizon link: boundary flows keep their frozen rates; the
			// interior flows compete for whatever they leave.
			l.residual = l.Capacity - (l.rateSum - l.interior)
			if l.residual < 0 {
				l.residual = 0
			}
		} else {
			l.residual = l.Capacity
		}
		if l.unassigned > 0 {
			act = append(act, l)
		}
	}
	n.actLinks = act
	remaining := len(flows)
	for remaining > 0 {
		share := math.Inf(1)
		for _, l := range act {
			if l.unassigned == 0 {
				continue // drained by a later link in the previous round
			}
			if s := l.residual / float64(l.unassigned); s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			panic("flownet: unassigned flows but no constraining link")
		}
		// With a bounded horizon, frozen boundary flows can saturate a link
		// completely; keep interior flows trickling so they still terminate.
		if share < 1 {
			share = 1
		}
		// Freeze every link currently at the bottleneck share. Symmetric
		// exchanges produce thousands of tied links; handling them in one
		// round keeps rebalancing near-linear. Each candidate re-checks its
		// share because freezing an earlier link may have changed it.
		froze := false
		live := act[:0]
		for _, l := range act {
			if l.unassigned == 0 {
				continue
			}
			if l.residual/float64(l.unassigned) > share*(1+1e-12) {
				live = append(live, l)
				continue
			}
			for _, f := range arena[l.off:l.end] {
				if f.assigned == epoch {
					continue // already frozen this round
				}
				f.assigned = epoch
				remaining--
				froze = true
				for _, fl := range f.path {
					fl.residual -= share
					if fl.residual < 0 {
						fl.residual = 0
					}
					fl.unassigned--
				}
				n.applyRate(f, share)
			}
			if l.unassigned > 0 {
				live = append(live, l)
			}
		}
		if !froze {
			panic("flownet: water-filling made no progress")
		}
		act = live
	}
	n.probeSample(links, len(flows))
}

// probeSample reports a rebalanced component to the installed probe.
func (n *Network) probeSample(links []*Link, flows int) {
	if n.Probe == nil {
		return
	}
	now := n.eng.Now()
	for _, l := range links {
		util := 0.0
		if l.Capacity > 0 {
			util = l.rateSum / l.Capacity
			if util > 1 {
				util = 1
			}
		}
		n.Probe.LinkSample(now, l.Name, util, len(l.flows))
	}
	n.Probe.Rebalanced(now, len(links), flows, n.active)
}

// applyRate installs a flow's new rate, updates the rate sums of the links
// it crosses, and reschedules its completion — reusing the existing
// completion event (and its closure) when one is scheduled, and skipping
// all churn when the rate is unchanged.
func (n *Network) applyRate(f *Flow, rate float64) {
	if rate <= 0 {
		// Should not happen: every flow is on at least one link with
		// positive capacity, so water-filling always assigns a rate.
		panic("flownet: zero rate assigned to " + f.name)
	}
	if rate == f.rate && f.completion != nil && !f.completion.Cancelled() {
		return
	}
	if rate != f.rate {
		for _, l := range f.path {
			l.rateSum += rate - f.rate
			if l.rateSum < 0 {
				l.rateSum = 0
			}
		}
		f.rate = rate
	}
	eta := f.remaining / f.rate
	if f.completion != nil {
		n.eng.Reschedule(f.completion, eta)
	} else {
		f.completion = n.eng.After(eta, func() { n.finish(f) })
	}
}

// Transfer is a convenience for process code: start a flow and park until it
// completes.
func (n *Network) Transfer(p *sim.Proc, name string, path []*Link, bytes float64) {
	f := n.StartFlow(name, path, bytes)
	f.Done().Wait(p)
}
