// Package flownet models data transfers as flows over a network of
// bandwidth-limited links, with max-min fair rate allocation.
//
// Each flow traverses an ordered path of links. At any instant every flow has
// a rate: the max-min fair allocation given all concurrently active flows and
// the capacity of every link they share. When the set of flows changes (one
// starts or finishes) the rates of the affected connected component are
// recomputed via water-filling and completion events are rescheduled for
// flows whose rate changed.
//
// This captures the contention effects the paper's results hinge on: a STAGED
// exchange funnels six GPUs' halos through two host-DRAM links and loses to
// PEERMEMCPY, which spreads the same bytes over six NVLinks.
//
// The implementation is engineered for cluster-scale simulations (hundreds of
// nodes, thousands of concurrent flows): component discovery and
// water-filling use epoch-stamped scratch fields on links and flows rather
// than maps, and rescheduling skips flows whose rate is unchanged.
package flownet

import (
	"fmt"
	"math"

	"github.com/nodeaware/stencil/internal/sim"
)

// Link is a unidirectional bandwidth resource.
type Link struct {
	Name     string
	Capacity float64 // bytes per second
	base     float64 // healthy capacity, set at creation
	down     bool    // marked failed by FailLink
	flows    []*Flow // active flows crossing the link

	// Scratch fields for rebalance; valid only when visit == Network.epoch.
	visit      uint64
	residual   float64
	unassigned int
}

// NewLink creates a link with the given capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("flownet: link %s capacity %g <= 0", name, capacity))
	}
	return &Link{Name: name, Capacity: capacity, base: capacity}
}

// NumFlows returns the number of flows currently traversing the link.
func (l *Link) NumFlows() int { return len(l.flows) }

// BaseCapacity returns the healthy (creation-time) capacity, the reference
// point for degradation factors and recovery.
func (l *Link) BaseCapacity() float64 { return l.base }

// Down reports whether the link is marked failed (FailLink without a
// matching RestoreLink). A down link still carries a residual trickle so
// in-flight flows remain schedulable; higher layers consult this flag to
// route around it.
func (l *Link) Down() bool { return l.down }

// Health returns Capacity/BaseCapacity: 1 when healthy, ~0 when failed.
func (l *Link) Health() float64 { return l.Capacity / l.base }

func (l *Link) removeFlow(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			l.flows[i] = l.flows[len(l.flows)-1]
			l.flows[len(l.flows)-1] = nil
			l.flows = l.flows[:len(l.flows)-1]
			return
		}
	}
	panic("flownet: flow not on link " + l.Name)
}

// Flow is an in-flight transfer across a path of links.
type Flow struct {
	name       string
	path       []*Link
	total      float64 // original size in bytes
	remaining  float64 // bytes left to move
	rate       float64 // current allocated bytes/sec
	lastUpdate sim.Time
	done       *sim.Signal
	completion *sim.Event

	visit    uint64 // component-discovery stamp (interior)
	bvisit   uint64 // boundary stamp
	assigned uint64 // water-filling stamp
}

// Done returns the signal fired when the flow's last byte arrives.
func (f *Flow) Done() *sim.Signal { return f.done }

// Rate returns the currently allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet transferred as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Network owns a set of links and the active flows over them.
type Network struct {
	eng    *sim.Engine
	active int
	epoch  uint64

	// MaxHops bounds how far a rate recomputation propagates from the
	// changed flow, measured in link hops of the link-flow bipartite graph.
	// Zero means unbounded (exact max-min over the whole connected
	// component). With a bound, flows beyond the horizon keep their current
	// rates and are subtracted from link capacities as constants; the
	// allocation inside the horizon is exact given that boundary. Rates a
	// few hops away change negligibly when a flow starts, so a small bound
	// (4-6) preserves behaviour while keeping cluster-scale simulations
	// near-linear in events.
	MaxHops int

	// Reusable scratch for rebalance.
	compFlows []*Flow
	compLinks []*Link
	compDepth []int
	boundary  []*Flow
}

// New creates an empty network bound to the engine.
func New(e *sim.Engine) *Network {
	return &Network{eng: e}
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return n.active }

// StartFlow begins transferring bytes over path and returns the flow. The
// flow's Done signal fires when it completes. A zero-byte flow completes at
// the current time (signal fires immediately). An empty path is not allowed:
// model zero-cost local moves at a higher layer.
func (n *Network) StartFlow(name string, path []*Link, bytes float64) *Flow {
	if len(path) == 0 {
		panic("flownet: StartFlow with empty path: " + name)
	}
	if bytes < 0 {
		panic(fmt.Sprintf("flownet: negative flow size %g: %s", bytes, name))
	}
	f := &Flow{
		name:       name,
		path:       path,
		total:      bytes,
		remaining:  bytes,
		lastUpdate: n.eng.Now(),
		done:       sim.NewSignal(n.eng, "flow:"+name),
	}
	if bytes == 0 {
		f.done.Fire()
		return f
	}
	n.active++
	for _, l := range f.path {
		l.flows = append(l.flows, f)
	}
	n.rebalance(f.path)
	return f
}

// finish removes a completed flow and fires its signal.
func (n *Network) finish(f *Flow) {
	f.settle(n.eng.Now())
	// Rate recomputations accumulate floating-point residue proportional to
	// the flow size; anything beyond that tolerance is a scheduling bug.
	if f.remaining > 1e-9*f.total+1e-3 {
		panic(fmt.Sprintf("flownet: flow %s completed with %g bytes remaining", f.name, f.remaining))
	}
	n.active--
	for _, l := range f.path {
		l.removeFlow(f)
	}
	f.completion = nil
	f.done.Fire()
	n.rebalance(f.path)
}

// FailFraction is the residual capacity fraction of a failed link: the link
// is effectively dead (error-retry trickle) but in-flight flows keep a
// nonzero rate so completion events stay schedulable and a later recovery
// re-waterfills them to sane times.
const FailFraction = 1e-6

// SetCapacity changes a link's capacity mid-simulation and re-waterfills the
// affected component: in-flight flows crossing the link (and flows sharing
// links with them, transitively up to MaxHops) have their rates and
// completion times recomputed exactly as if the set of flows had changed.
func (n *Network) SetCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("flownet: link %s capacity %g <= 0", l.Name, capacity))
	}
	if capacity == l.Capacity {
		return
	}
	l.Capacity = capacity
	n.rebalance([]*Link{l})
}

// DegradeLink sets a link to factor × its healthy capacity (factor in (0,1]
// degrades, factor 1 restores, factor > 1 models an upgrade).
func (n *Network) DegradeLink(l *Link, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("flownet: degrade factor %g <= 0 on %s", factor, l.Name))
	}
	n.SetCapacity(l, l.base*factor)
}

// FailLink marks a link down and collapses its capacity to the residual
// trickle. Idempotent.
func (n *Network) FailLink(l *Link) {
	l.down = true
	cap := l.base * FailFraction
	if cap < 1 {
		cap = 1
	}
	n.SetCapacity(l, cap)
}

// RestoreLink clears the failed mark and restores the healthy capacity,
// re-waterfilling any flows that were crawling across the outage. Idempotent.
func (n *Network) RestoreLink(l *Link) {
	l.down = false
	n.SetCapacity(l, l.base)
}

// Abort cancels an in-flight flow: bytes already moved stay moved, the Done
// signal never fires, and the freed bandwidth is redistributed to the
// remaining flows. Aborting a completed (or zero-byte) flow is a no-op.
// Callers that retry a transfer start a fresh flow.
func (n *Network) Abort(f *Flow) {
	if f.completion == nil {
		return
	}
	f.settle(n.eng.Now())
	f.completion.Cancel()
	f.completion = nil
	f.rate = 0
	n.active--
	for _, l := range f.path {
		l.removeFlow(f)
	}
	n.rebalance(f.path)
}

// settle accounts bytes moved at the current rate since the last update.
func (f *Flow) settle(now sim.Time) {
	f.remaining -= f.rate * (now - f.lastUpdate)
	if f.remaining < 0 {
		f.remaining = 0
	}
	f.lastUpdate = now
}

// rebalance recomputes the max-min fair allocation for the connected
// component of flows reachable from the seed links and reschedules the
// completion events of flows whose rate changed. Flows sharing no link
// (transitively) with the seed are untouched: by the uniqueness of the
// max-min allocation their rates cannot have changed.
func (n *Network) rebalance(seed []*Link) {
	n.epoch++
	epoch := n.epoch

	// Component discovery (breadth-first over the link-flow bipartite
	// graph) into reusable scratch slices. With MaxHops set, flows first
	// reached at the horizon become boundary flows: their rates are frozen
	// and subtracted from the capacities of the links they cross.
	flows := n.compFlows[:0]
	links := n.compLinks[:0]
	depth := n.compDepth[:0]
	bound := n.boundary[:0]
	for _, l := range seed {
		if l.visit != epoch {
			l.visit = epoch
			links = append(links, l)
			depth = append(depth, 0)
		}
	}
	for cursor := 0; cursor < len(links); cursor++ {
		l := links[cursor]
		d := depth[cursor]
		atHorizon := n.MaxHops > 0 && d >= n.MaxHops
		for _, f := range l.flows {
			if f.visit == epoch || f.bvisit == epoch {
				continue
			}
			if atHorizon {
				f.bvisit = epoch
				bound = append(bound, f)
				continue
			}
			f.visit = epoch
			flows = append(flows, f)
			for _, fl := range f.path {
				if fl.visit != epoch {
					fl.visit = epoch
					links = append(links, fl)
					depth = append(depth, d+1)
				}
			}
		}
	}
	n.compFlows, n.compLinks, n.compDepth, n.boundary = flows, links, depth, bound
	if len(flows) == 0 {
		return
	}

	now := n.eng.Now()
	for _, f := range flows {
		f.settle(now)
	}

	// Water-filling: repeatedly freeze the most-constrained link's flows at
	// that link's equal share.
	for _, l := range links {
		l.residual = l.Capacity
		l.unassigned = len(l.flows)
	}
	for _, f := range bound {
		for _, l := range f.path {
			if l.visit != epoch {
				continue
			}
			l.residual -= f.rate
			if l.residual < 0 {
				l.residual = 0
			}
			l.unassigned--
		}
	}
	remaining := len(flows)
	for remaining > 0 {
		share := math.Inf(1)
		for _, l := range links {
			if l.unassigned == 0 {
				continue
			}
			if s := l.residual / float64(l.unassigned); s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			panic("flownet: unassigned flows but no constraining link")
		}
		// With a bounded horizon, frozen boundary flows can saturate a link
		// completely; keep interior flows trickling so they still terminate.
		if share < 1 {
			share = 1
		}
		// Freeze every link currently at the bottleneck share. Symmetric
		// exchanges produce thousands of tied links; handling them in one
		// round keeps rebalancing near-linear. Each candidate re-checks its
		// share because freezing an earlier link may have changed it.
		froze := false
		for _, l := range links {
			if l.unassigned == 0 {
				continue
			}
			if l.residual/float64(l.unassigned) > share*(1+1e-12) {
				continue
			}
			for _, f := range l.flows {
				if f.assigned == epoch || f.visit != epoch {
					continue // already frozen this round, or boundary flow
				}
				f.assigned = epoch
				remaining--
				froze = true
				for _, fl := range f.path {
					fl.residual -= share
					if fl.residual < 0 {
						fl.residual = 0
					}
					fl.unassigned--
				}
				n.applyRate(f, share)
			}
		}
		if !froze {
			panic("flownet: water-filling made no progress")
		}
	}
}

// applyRate installs a flow's new rate and reschedules its completion,
// skipping the churn when the rate is unchanged.
func (n *Network) applyRate(f *Flow, rate float64) {
	if rate <= 0 {
		// Should not happen: every flow is on at least one link with
		// positive capacity, so water-filling always assigns a rate.
		panic("flownet: zero rate assigned to " + f.name)
	}
	if rate == f.rate && f.completion != nil && !f.completion.Cancelled() {
		return
	}
	f.rate = rate
	if f.completion != nil {
		f.completion.Cancel()
	}
	eta := f.remaining / f.rate
	f.completion = n.eng.After(eta, func() { n.finish(f) })
}

// Transfer is a convenience for process code: start a flow and park until it
// completes.
func (n *Network) Transfer(p *sim.Proc, name string, path []*Link, bytes float64) {
	f := n.StartFlow(name, path, bytes)
	f.Done().Wait(p)
}
