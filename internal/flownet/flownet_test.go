package flownet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/sim"
)

const eps = 1e-9

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100) // 100 B/s
	f := n.StartFlow("f", []*Link{l}, 250)
	e.Run()
	if !f.Done().Fired() {
		t.Fatal("flow never completed")
	}
	if got := f.Done().FiredAt(); !almostEq(got, 2.5) {
		t.Errorf("completion at %g, want 2.5", got)
	}
}

func TestZeroByteFlowImmediate(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	f := n.StartFlow("f", []*Link{l}, 0)
	if !f.Done().Fired() {
		t.Fatal("zero-byte flow did not complete immediately")
	}
	if n.ActiveFlows() != 0 {
		t.Error("zero-byte flow left residue")
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	a := n.StartFlow("a", []*Link{l}, 100)
	b := n.StartFlow("b", []*Link{l}, 100)
	e.Run()
	// Both get 50 B/s, both finish at t=2.
	if got := a.Done().FiredAt(); !almostEq(got, 2) {
		t.Errorf("a at %g, want 2", got)
	}
	if got := b.Done().FiredAt(); !almostEq(got, 2) {
		t.Errorf("b at %g, want 2", got)
	}
}

func TestLateArrivalRebalances(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	a := n.StartFlow("a", []*Link{l}, 100)
	var b *Flow
	e.At(0.5, func() { b = n.StartFlow("b", []*Link{l}, 100) })
	e.Run()
	// a: 50 bytes alone in [0,0.5] at 100 B/s, then 50 B/s shared.
	// a finishes at 0.5 + 50/50 = 1.5. Then b has 100-50=50 left at 100 B/s,
	// finishing at 1.5+0.5=2.0.
	if got := a.Done().FiredAt(); !almostEq(got, 1.5) {
		t.Errorf("a at %g, want 1.5", got)
	}
	if got := b.Done().FiredAt(); !almostEq(got, 2.0) {
		t.Errorf("b at %g, want 2.0", got)
	}
}

func TestEarlyFinishSpeedsUpSurvivor(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	small := n.StartFlow("small", []*Link{l}, 50)
	big := n.StartFlow("big", []*Link{l}, 150)
	e.Run()
	// Shared 50/50 until small finishes at t=1 (50 bytes at 50 B/s).
	// big then has 100 left at 100 B/s: finishes at t=2.
	if got := small.Done().FiredAt(); !almostEq(got, 1) {
		t.Errorf("small at %g, want 1", got)
	}
	if got := big.Done().FiredAt(); !almostEq(got, 2) {
		t.Errorf("big at %g, want 2", got)
	}
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	fast := NewLink("fast", 1000)
	slow := NewLink("slow", 10)
	f := n.StartFlow("f", []*Link{fast, slow}, 100)
	e.Run()
	if got := f.Done().FiredAt(); !almostEq(got, 10) {
		t.Errorf("completion at %g, want 10 (bottleneck 10 B/s)", got)
	}
}

func TestMaxMinUnbalancedPaths(t *testing.T) {
	// Classic max-min scenario: flow A crosses links L1(cap 10) and L2(cap
	// 100); flow B crosses only L2. A is limited to 10 by L1; B should pick
	// up the slack on L2: 90.
	e := sim.NewEngine()
	n := New(e)
	l1 := NewLink("l1", 10)
	l2 := NewLink("l2", 100)
	a := n.StartFlow("a", []*Link{l1, l2}, 1000)
	b := n.StartFlow("b", []*Link{l2}, 1000)
	if !almostEq(a.Rate(), 10) {
		t.Errorf("a rate = %g, want 10", a.Rate())
	}
	if !almostEq(b.Rate(), 90) {
		t.Errorf("b rate = %g, want 90", b.Rate())
	}
	e.Run()
}

func TestThreeFlowsTwoLinks(t *testing.T) {
	// L1 cap 30 carries f1,f2; L2 cap 30 carries f2,f3.
	// Fair share: f1=f2=f3? Water-filling: both links have 2 flows, share 15.
	// Freeze one link's flows at 15 each; the other link then has one
	// unassigned flow with 15 residual -> also 15. All equal 15.
	e := sim.NewEngine()
	n := New(e)
	l1 := NewLink("l1", 30)
	l2 := NewLink("l2", 30)
	f1 := n.StartFlow("f1", []*Link{l1}, 1e9)
	f2 := n.StartFlow("f2", []*Link{l1, l2}, 1e9)
	f3 := n.StartFlow("f3", []*Link{l2}, 1e9)
	for _, f := range []*Flow{f1, f2, f3} {
		if !almostEq(f.Rate(), 15) {
			t.Errorf("%v rate = %g, want 15", f, f.Rate())
		}
	}
	// Don't run to completion (1e9 bytes): just clear the queue by checking
	// the allocation was instantaneously correct, then abandon the engine.
}

func TestTransferBlocksProcess(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	var done sim.Time
	e.Spawn("xfer", func(p *sim.Proc) {
		n.Transfer(p, "t", []*Link{l}, 500)
		done = p.Now()
	})
	e.Run()
	if !almostEq(done, 5) {
		t.Errorf("process resumed at %g, want 5", done)
	}
}

func TestLinkFlowCount(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	n.StartFlow("a", []*Link{l}, 100)
	n.StartFlow("b", []*Link{l}, 100)
	if l.NumFlows() != 2 {
		t.Errorf("NumFlows = %d, want 2", l.NumFlows())
	}
	e.Run()
	if l.NumFlows() != 0 {
		t.Errorf("NumFlows after completion = %d, want 0", l.NumFlows())
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l := NewLink("l", 100)
	defer func() {
		if recover() == nil {
			t.Error("negative flow did not panic")
		}
	}()
	n.StartFlow("bad", []*Link{l}, -1)
}

func TestEmptyPathPanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	defer func() {
		if recover() == nil {
			t.Error("empty path did not panic")
		}
	}()
	n.StartFlow("bad", nil, 10)
}

func TestZeroCapacityLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity link did not panic")
		}
	}()
	NewLink("bad", 0)
}

// Property: rates never exceed any link capacity, and the allocation is
// work-conserving on the bottleneck of each flow (no flow can be increased
// without decreasing a flow with an equal-or-smaller rate).
func TestMaxMinInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := New(e)
		nLinks := rng.Intn(5) + 1
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = NewLink("l", 10+rng.Float64()*90)
		}
		nFlows := rng.Intn(8) + 1
		flows := make([]*Flow, nFlows)
		for i := range flows {
			// Random nonempty subset path.
			var path []*Link
			for _, l := range links {
				if rng.Intn(2) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = append(path, links[rng.Intn(nLinks)])
			}
			flows[i] = n.StartFlow("f", path, 1e12)
		}
		// Materialize the instant's batched allocation before peeking at
		// internal rate fields (Flow.Rate would do this implicitly).
		n.flushPending()
		// Invariant 1: per-link sum of rates <= capacity.
		for _, l := range links {
			var sum float64
			for _, f := range l.flows {
				sum += f.rate
			}
			if sum > l.Capacity*(1+1e-9) {
				return false
			}
		}
		// Invariant 2: every flow is bottlenecked — it crosses some link that
		// is saturated and on which it has the max rate.
		for _, fl := range flows {
			bottlenecked := false
			for _, l := range fl.path {
				var sum, maxRate float64
				for _, f2 := range l.flows {
					sum += f2.rate
					if f2.rate > maxRate {
						maxRate = f2.rate
					}
				}
				if sum >= l.Capacity*(1-1e-9) && fl.rate >= maxRate-eps {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: conservation — total bytes delivered equals total bytes sent, and
// completion times are consistent with the integral of the rate.
func TestByteConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := New(e)
		l := NewLink("l", 100)
		nFlows := rng.Intn(6) + 1
		var totalBytes float64
		var lastDone sim.Time
		flows := make([]*Flow, nFlows)
		for i := range flows {
			bytes := rng.Float64()*1000 + 1
			totalBytes += bytes
			start := rng.Float64() * 5
			i := i
			e.At(start, func() {
				flows[i] = n.StartFlow("f", []*Link{l}, bytes)
			})
		}
		end := e.Run()
		for _, fl := range flows {
			if fl == nil || !fl.Done().Fired() {
				return false
			}
			if fl.Done().FiredAt() > lastDone {
				lastDone = fl.Done().FiredAt()
			}
		}
		// The link can move at most 100 B/s; the whole batch cannot finish
		// before totalBytes/100 and the run ends when the last flow does.
		return end == lastDone && lastDone >= totalBytes/100-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
