package flownet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/sim"
)

// checkAgainstOracle compares every active flow's incrementally maintained
// rate against the from-scratch oracle allocation. Tolerance is relative
// 1e-9: the two paths perform the same arithmetic in different orders.
func checkAgainstOracle(t *testing.T, n *Network, when sim.Time) bool {
	t.Helper()
	oracle := n.OracleRates()
	ok := true
	for _, f := range n.ActiveFlowList() {
		got, want := f.Rate(), oracle[f]
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Max(got, want)) {
			t.Errorf("t=%g flow %s: incremental rate %g, oracle %g", when, f.name, got, want)
			ok = false
		}
	}
	return ok
}

// Differential property: under randomized flow arrivals, departures (natural
// completions), aborts, and capacity mutations (degrade/fail/restore), the
// incremental waterfill — batching, rate sums, event reuse and all — agrees
// with the full-recompute oracle at every probe instant. MaxHops stays 0:
// the bounded horizon intentionally approximates, so exactness is only
// promised for the unbounded configuration.
func TestIncrementalMatchesOracleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := New(e)

		nLinks := rng.Intn(6) + 2
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = NewLink("l", 10+rng.Float64()*990)
		}
		randPath := func() []*Link {
			var path []*Link
			for _, l := range links {
				if rng.Intn(3) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = append(path, links[rng.Intn(nLinks)])
			}
			return path
		}

		var live []*Flow // flows started so far (some finished/aborted by now)
		ok := true

		// Arrivals: a burst at t=0 plus stragglers, sizes spanning three
		// orders of magnitude so departures interleave with later events.
		nFlows := rng.Intn(10) + 3
		for i := 0; i < nFlows; i++ {
			start := sim.Time(0)
			if rng.Intn(2) == 0 {
				start = rng.Float64() * 10
			}
			bytes := math.Pow(10, 1+rng.Float64()*3)
			path := randPath()
			e.At(start, func() {
				live = append(live, n.StartFlow("f", path, bytes))
			})
		}

		// Capacity mutations: degrade, fail, restore on random links.
		for i := rng.Intn(5); i > 0; i-- {
			l := links[rng.Intn(nLinks)]
			when := rng.Float64() * 12
			switch rng.Intn(3) {
			case 0:
				factor := 0.05 + rng.Float64()*0.9
				e.At(when, func() { n.DegradeLink(l, factor) })
			case 1:
				e.At(when, func() { n.FailLink(l) })
			default:
				e.At(when, func() { n.RestoreLink(l) })
			}
		}

		// Aborts of arbitrary flows (done, pending, or in flight).
		for i := rng.Intn(4); i > 0; i-- {
			when := rng.Float64() * 12
			e.At(when, func() {
				if len(live) > 0 {
					n.Abort(live[rng.Intn(len(live))])
				}
			})
		}

		// Probes: compare incremental rates against the oracle at instants
		// scattered through the run (after the same-instant mutations above).
		for i := 0; i < 6; i++ {
			when := sim.Time(rng.Float64() * 14)
			e.At(when, func() {
				if !checkAgainstOracle(t, n, when) {
					ok = false
				}
			})
		}

		e.Run()
		if n.ActiveFlows() != 0 {
			t.Errorf("seed %d: %d flows still active after run", seed, n.ActiveFlows())
			ok = false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The oracle itself must agree with the closed-form answers of the classic
// scenarios (guards against the oracle and the incremental path sharing a
// common bug).
func TestOracleClosedForm(t *testing.T) {
	e := sim.NewEngine()
	n := New(e)
	l1 := NewLink("l1", 10)
	l2 := NewLink("l2", 100)
	a := n.StartFlow("a", []*Link{l1, l2}, 1e9)
	b := n.StartFlow("b", []*Link{l2}, 1e9)
	r := n.OracleRates()
	if !almostEq(r[a], 10) || !almostEq(r[b], 90) {
		t.Errorf("oracle rates a=%g b=%g, want 10/90", r[a], r[b])
	}
}
