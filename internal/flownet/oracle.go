package flownet

import "math"

// OracleRates computes the max-min fair allocation for every active flow from
// scratch, ignoring every incremental shortcut the production path uses: no
// component discovery (all flows participate), no horizon (MaxHops is not
// consulted), no incrementally maintained rate sums, and map-based scratch
// instead of epoch-stamped fields. It exists purely as a reference oracle for
// differential testing: with MaxHops == 0 the incremental rebalance must
// produce the same rates to within floating-point noise.
//
// Pending same-instant mutations are materialized first, so the returned
// rates correspond to what Flow.Rate reports at the same point.
func (n *Network) OracleRates() map[*Flow]float64 {
	n.flushPending()

	var flows []*Flow
	residual := make(map[*Link]float64)
	count := make(map[*Link]int)
	for f := n.head; f != nil; f = f.next {
		flows = append(flows, f)
		for _, l := range f.path {
			if _, ok := residual[l]; !ok {
				residual[l] = l.Capacity
			}
			count[l]++
		}
	}

	rates := make(map[*Flow]float64, len(flows))
	remaining := len(flows)
	for remaining > 0 {
		// Bottleneck share: the smallest equal split any link can offer its
		// unassigned flows.
		share := math.Inf(1)
		for l, c := range count {
			if c > 0 {
				if s := residual[l] / float64(c); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			panic("flownet: oracle: unassigned flows but no constraining link")
		}
		// The production waterfill floors shares at 1 B/s so saturated links
		// keep their flows terminating; mirror it.
		if share < 1 {
			share = 1
		}
		progress := false
		for _, f := range flows {
			if _, done := rates[f]; done {
				continue
			}
			bottlenecked := false
			for _, l := range f.path {
				if residual[l]/float64(count[l]) <= share*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			rates[f] = share
			remaining--
			progress = true
			for _, l := range f.path {
				residual[l] -= share
				if residual[l] < 0 {
					residual[l] = 0
				}
				count[l]--
			}
		}
		if !progress {
			panic("flownet: oracle: water-filling made no progress")
		}
	}
	return rates
}

// ActiveFlowList returns the currently active flows (pending same-instant
// arrivals materialized first). Test helper: lets differential tests walk the
// same flow set the oracle allocated.
func (n *Network) ActiveFlowList() []*Flow {
	n.flushPending()
	var flows []*Flow
	for f := n.head; f != nil; f = f.next {
		flows = append(flows, f)
	}
	return flows
}
