package flownet

import (
	"fmt"
	"testing"

	"github.com/nodeaware/stencil/internal/sim"
)

// BenchmarkFlowChurn measures rate-rebalance cost under heavy flow churn on
// a hub-and-spoke network (the pattern halo exchanges produce).
func BenchmarkFlowChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		n := New(e)
		hub := NewLink("hub", 100e9)
		var spokes []*Link
		for s := 0; s < 12; s++ {
			spokes = append(spokes, NewLink(fmt.Sprintf("s%d", s), 50e9))
		}
		for f := 0; f < 200; f++ {
			f := f
			e.At(float64(f)*1e-5, func() {
				n.StartFlow("f", []*Link{spokes[f%12], hub}, 1e6)
			})
		}
		e.Run()
	}
}
