package flownet

import (
	"testing"

	"github.com/nodeaware/stencil/internal/sim"
)

// TestMidFlowCapacityLoss: a flow whose bottleneck link loses capacity
// mid-transfer must complete at the exactly re-waterfilled virtual time.
// 100 bytes at 10 B/s; at t=4 (40 bytes moved) the link drops to 5 B/s, so
// the remaining 60 bytes take 12 s: completion at t=16.
func TestMidFlowCapacityLoss(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	l := NewLink("l", 10)
	f := net.StartFlow("f", []*Link{l}, 100)
	eng.At(4, func() {
		net.SetCapacity(l, 5)
		// rebalance settles the flow: 40 bytes moved in the first 4 s.
		if !almostEq(f.Remaining(), 60) {
			t.Errorf("remaining at t=4: got %g want 60", f.Remaining())
		}
		if f.Rate() != 5 {
			t.Errorf("rate after degrade: got %g want 5", f.Rate())
		}
	})
	end := eng.Run()
	if !f.Done().Fired() {
		t.Fatal("flow did not complete")
	}
	if !almostEq(f.Done().FiredAt(), 16) {
		t.Errorf("completion: got %g want 16", f.Done().FiredAt())
	}
	if !almostEq(end, 16) {
		t.Errorf("final time: got %g want 16", end)
	}
}

// TestMidFlowCapacityGain: recovery mid-flow pulls the completion earlier.
// 100 bytes at 5 B/s; at t=10 (50 moved) capacity doubles to 10 B/s:
// completion at t=15.
func TestMidFlowCapacityGain(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	l := NewLink("l", 5)
	f := net.StartFlow("f", []*Link{l}, 100)
	eng.At(10, func() { net.SetCapacity(l, 10) })
	eng.Run()
	if !almostEq(f.Done().FiredAt(), 15) {
		t.Errorf("completion: got %g want 15", f.Done().FiredAt())
	}
}

// TestMidFlowCapacityLossSharedLink: two flows share the degraded link; both
// are re-waterfilled. Each starts at 5 B/s (fair share of 10). At t=8 (40
// bytes each moved) the link halves to 5: each proceeds at 2.5 B/s, so the
// remaining 60 bytes complete at t=32.
func TestMidFlowCapacityLossSharedLink(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	l := NewLink("l", 10)
	f1 := net.StartFlow("f1", []*Link{l}, 100)
	f2 := net.StartFlow("f2", []*Link{l}, 100)
	eng.At(8, func() { net.SetCapacity(l, 5) })
	eng.Run()
	for _, f := range []*Flow{f1, f2} {
		if !almostEq(f.Done().FiredAt(), 32) {
			t.Errorf("completion: got %g want 32", f.Done().FiredAt())
		}
	}
}

// TestMidFlowCapacityLossUnderFairnessHorizon: the same mid-flow retime must
// be exact with a bounded rebalance horizon (MaxHops=1). Each flow also
// crosses a private wide link, so the changed link's component reaches the
// horizon without altering the allocation.
func TestMidFlowCapacityLossUnderFairnessHorizon(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	net.MaxHops = 1
	shared := NewLink("shared", 10)
	p1, p2 := NewLink("p1", 1000), NewLink("p2", 1000)
	f1 := net.StartFlow("f1", []*Link{p1, shared}, 100)
	f2 := net.StartFlow("f2", []*Link{p2, shared}, 100)
	eng.At(8, func() { net.SetCapacity(shared, 5) })
	eng.Run()
	for _, f := range []*Flow{f1, f2} {
		if !almostEq(f.Done().FiredAt(), 32) {
			t.Errorf("completion under MaxHops=1: got %g want 32", f.Done().FiredAt())
		}
	}
}

// TestFailRestoreLink: a failed link crawls at the residual trickle, a
// restore re-waterfills to the healthy rate, and the Down flag tracks state.
// 100 bytes at 10 B/s; fail at t=4 (residual floor 1 B/s, 60 left); restore
// at t=14 (10 bytes crawled, 50 left at 10 B/s): completion at t=19.
func TestFailRestoreLink(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	l := NewLink("l", 10)
	f := net.StartFlow("f", []*Link{l}, 100)
	eng.At(4, func() {
		net.FailLink(l)
		if !l.Down() {
			t.Error("link not marked down after FailLink")
		}
		if f.Rate() != 1 {
			t.Errorf("failed-link rate: got %g want 1", f.Rate())
		}
	})
	eng.At(14, func() {
		net.RestoreLink(l)
		if l.Down() {
			t.Error("link still down after RestoreLink")
		}
		if l.Capacity != l.BaseCapacity() {
			t.Errorf("capacity after restore: got %g want %g", l.Capacity, l.BaseCapacity())
		}
	})
	eng.Run()
	if !almostEq(f.Done().FiredAt(), 19) {
		t.Errorf("completion: got %g want 19", f.Done().FiredAt())
	}
}

// TestAbortFlow: aborting redistributes bandwidth to the survivor and the
// aborted flow's Done never fires. Two flows share 10 B/s; at t=10 (50 bytes
// each) one aborts; the other finishes its remaining 50 at 10 B/s at t=15.
func TestAbortFlow(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	l := NewLink("l", 10)
	f1 := net.StartFlow("f1", []*Link{l}, 100)
	f2 := net.StartFlow("f2", []*Link{l}, 100)
	eng.At(10, func() {
		net.Abort(f1)
		if net.ActiveFlows() != 1 {
			t.Errorf("active flows after abort: got %d want 1", net.ActiveFlows())
		}
		if f2.Rate() != 10 {
			t.Errorf("survivor rate after abort: got %g want 10", f2.Rate())
		}
	})
	eng.Run()
	if f1.Done().Fired() {
		t.Error("aborted flow's Done fired")
	}
	if !almostEq(f1.Remaining(), 50) {
		t.Errorf("aborted flow remaining: got %g want 50", f1.Remaining())
	}
	if !almostEq(f2.Done().FiredAt(), 15) {
		t.Errorf("survivor completion: got %g want 15", f2.Done().FiredAt())
	}
	// Abort after completion is a no-op.
	net.Abort(f2)
}

// TestHealth tracks the capacity ratio through degrade and restore.
func TestHealth(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng)
	l := NewLink("l", 100)
	if l.Health() != 1 {
		t.Errorf("healthy Health: got %g want 1", l.Health())
	}
	net.DegradeLink(l, 0.25)
	if l.Health() != 0.25 {
		t.Errorf("degraded Health: got %g want 0.25", l.Health())
	}
	net.DegradeLink(l, 1)
	if l.Health() != 1 {
		t.Errorf("restored Health: got %g want 1", l.Health())
	}
}
