package sim

import "testing"

func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
	}
	e.Run()
}

func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}
