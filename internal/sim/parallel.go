package sim

import "sync"

// Parallel payload execution.
//
// The discrete-event engine is strictly sequential: exactly one event or
// process runs at a time, which is what makes simulations deterministic. The
// expensive part of a real-data simulation, however, is not the scheduling —
// it is the payload work attached to op completions: halo pack/unpack kernels
// and buffer byte copies. Those closures only touch the data of the devices
// they name and never inspect the virtual clock, so they can run on worker
// goroutines while the engine is otherwise idle, provided
//
//   - ops touching a common device execute in their original (sequence)
//     order relative to each other, and
//   - every deferred op completes before any simulation code that could
//     observe its data runs.
//
// Engine.Defer queues a payload closure under one or two int32 keys (device
// ids; by convention the key of a host-side buffer is the device that moves
// its bytes). At the end of the instant — before the virtual clock advances,
// via the engine's flusher mechanism — the queued ops are partitioned into
// connected components by union-find over their keys and each component is
// executed, in op-sequence order, on a pool of worker goroutines. The engine
// blocks until all components finish, so workers never overlap event or
// process execution. Cross-instant readers are safe by construction: a flow
// completion or MPI delivery that consumes the data always fires at a
// strictly later virtual time, after the flush.
//
// Components are disjoint in keys and therefore in the data they touch, so
// the bytes produced are identical to sequential execution regardless of
// which worker runs which component — determinism is preserved bit for bit.

// deferredOp is one queued payload closure and the keys it touches.
type deferredOp struct {
	fn     func()
	k1, k2 int32
}

// parExec is the engine's deferred-payload executor state.
type parExec struct {
	workers    int
	registered bool
	ops        []deferredOp

	// Union-find scratch, indexed by key (device id). Rebuilt per flush;
	// epoch stamps avoid clearing.
	parent []int32
	stamp  []uint64
	epoch  uint64

	// Component assembly scratch.
	order []int32 // distinct roots in first-appearance order
	heads map[int32][]int
}

// SetWorkers sets the number of goroutines used to execute deferred payload
// ops. n <= 1 disables deferral: Defer runs its closure immediately, exactly
// as the sequential engine always has. Safe to call only before Run.
func (e *Engine) SetWorkers(n int) {
	if e.running {
		panic("sim: SetWorkers while running")
	}
	e.par.workers = n
	if n > 1 && !e.par.registered {
		e.par.registered = true
		e.AddFlusher(e.flushDeferred)
	}
}

// Workers returns the configured worker count (0 or 1 means sequential).
func (e *Engine) Workers() int { return e.par.workers }

// Defer queues fn to run before the current virtual instant ends. fn must be
// a pure payload: it may only touch data owned by the devices k1 and k2 (use
// the same key twice for single-device ops) and must not interact with the
// engine. With workers disabled fn runs immediately.
func (e *Engine) Defer(fn func(), k1, k2 int32) {
	if e.par.workers <= 1 {
		fn()
		return
	}
	e.par.ops = append(e.par.ops, deferredOp{fn: fn, k1: k1, k2: k2})
	e.needFlush = true
}

func (x *parExec) find(k int32) int32 {
	for x.parent[k] != k {
		x.parent[k] = x.parent[x.parent[k]] // path halving
		k = x.parent[k]
	}
	return k
}

// touch ensures key k has a union-find slot this epoch.
func (x *parExec) touch(k int32) {
	if int(k) >= len(x.parent) {
		grown := make([]int32, k+1)
		copy(grown, x.parent)
		x.parent = grown
		stamps := make([]uint64, k+1)
		copy(stamps, x.stamp)
		x.stamp = stamps
	}
	if x.stamp[k] != x.epoch {
		x.stamp[k] = x.epoch
		x.parent[k] = k
	}
}

// flushDeferred runs all queued payload ops, partitioned by key components,
// across the worker pool. Runs in engine context with no event or process
// active; returns only when every op has completed.
func (e *Engine) flushDeferred() {
	x := &e.par
	ops := x.ops
	if len(ops) == 0 {
		return
	}
	x.ops = x.ops[:0]

	// Tiny batches aren't worth goroutine handoff.
	if len(ops) < 4 {
		for i := range ops {
			ops[i].fn()
		}
		return
	}

	x.epoch++
	for i := range ops {
		x.touch(ops[i].k1)
		x.touch(ops[i].k2)
		r1, r2 := x.find(ops[i].k1), x.find(ops[i].k2)
		if r1 != r2 {
			x.parent[r2] = r1
		}
	}

	// Bucket op indices by component root, preserving sequence order within
	// each component.
	if x.heads == nil {
		x.heads = make(map[int32][]int)
	}
	order := x.order[:0]
	for i := range ops {
		r := x.find(ops[i].k1)
		seg := x.heads[r]
		if len(seg) == 0 { // segments are truncated, not deleted, after a flush
			order = append(order, r)
		}
		x.heads[r] = append(seg, i)
	}
	x.order = order

	nw := x.workers
	if nw > len(order) {
		nw = len(order)
	}
	if nw <= 1 {
		for _, r := range order {
			for _, i := range x.heads[r] {
				ops[i].fn()
			}
		}
	} else {
		// Components are key-disjoint, hence data-disjoint: any assignment
		// of components to workers yields identical bytes.
		work := make(chan int32, len(order))
		for _, r := range order {
			work <- r
		}
		close(work)
		var wg sync.WaitGroup
		wg.Add(nw)
		for w := 0; w < nw; w++ {
			go func() {
				defer wg.Done()
				for r := range work {
					for _, i := range x.heads[r] {
						ops[i].fn()
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, r := range order {
		x.heads[r] = x.heads[r][:0]
	}
	for i := range ops {
		ops[i].fn = nil
	}
}
