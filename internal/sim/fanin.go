package sim

import "fmt"

// Fanin aggregates a fixed number of readiness contributions into one
// Signal. It is the per-quadrant replacement for a global barrier: where a
// barrier makes everyone wait for everything, a Fanin lets each consumer wait
// for exactly the events it depends on — e.g. a subdomain's border compute
// waits for the verified arrival of its own halos, not the whole exchange.
//
// A Fanin is created with the number of expected contributions; each Done()
// consumes one, and the signal fires when the count reaches zero. A Fanin
// expecting zero contributions is born fired. Like all sim primitives it is
// engine-threaded: Done must be called in event or process context.
type Fanin struct {
	sig       *Signal
	remaining int
}

// NewFanin creates a fan-in expecting n contributions.
func NewFanin(e *Engine, name string, n int) *Fanin {
	f := &Fanin{sig: NewSignal(e, name), remaining: n}
	if n <= 0 {
		f.sig.Fire()
	}
	return f
}

// Done records one contribution; the last one fires the signal.
func (f *Fanin) Done() {
	if f.remaining <= 0 {
		panic(fmt.Sprintf("sim: Fanin %q Done past zero", f.sig.name))
	}
	f.remaining--
	if f.remaining == 0 {
		f.sig.Fire()
	}
}

// Sig exposes the completion signal.
func (f *Fanin) Sig() *Signal { return f.sig }

// Wait parks the process until every contribution has arrived.
func (f *Fanin) Wait(p *Proc) { f.sig.Wait(p) }

// Fired reports whether the fan-in has completed.
func (f *Fanin) Fired() bool { return f.sig.Fired() }

// Remaining returns the number of outstanding contributions.
func (f *Fanin) Remaining() int { return f.remaining }
