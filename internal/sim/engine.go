// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and executes two kinds of work:
//
//   - Events: plain callbacks scheduled at a virtual time (Engine.At,
//     Engine.After). Events may be cancelled before they fire.
//   - Processes: goroutines that execute simulated "blocking" code
//     (Proc.Sleep, Signal.Wait, Resource.Acquire). Exactly one process or
//     event callback runs at any real instant, so simulated code needs no
//     locking and runs are fully deterministic.
//
// The scheduling discipline is cooperative: the engine resumes a runnable
// process, the process runs until it parks on a simulated primitive, and
// control returns to the engine. When no process is runnable the engine pops
// the earliest pending event, advances the clock to it, and fires it. Ties in
// time are broken by insertion order (FIFO), which keeps runs reproducible.
package sim

import (
	"fmt"
)

// Time is a point on the virtual clock, in seconds.
type Time = float64

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires; firing a cancelled event is a no-op.
type Event struct {
	when      Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // position in the heap, -1 once popped
	eng       *Engine
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is harmless. The event is removed from the queue
// eagerly so heavy reschedulers (the flow network) don't flood the heap with
// dead entries.
func (ev *Event) Cancel() {
	ev.cancelled = true
	if ev.index >= 0 && ev.eng != nil {
		ev.eng.queue.remove(ev.index)
	}
}

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// When returns the virtual time the event is scheduled for.
func (ev *Event) When() Time { return ev.when }

// eventHeap is a hand-rolled 4-ary min-heap ordered by (when, seq). The
// standard container/heap pays an interface call per comparison and the event
// queue is the hottest data structure in the simulator, so it gets a
// dedicated implementation. (when, seq) is a strict total order — seq is
// unique — so the pop sequence, and therefore every simulation result, is
// independent of heap arity and sift details.
type eventHeap []*Event

// before reports whether a must fire before b.
func before(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h[parent]
		if !before(ev, p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[best]) {
				best = c
			}
		}
		b := h[best]
		if !before(b, ev) {
			break
		}
		h[i] = b
		b.index = i
		i = best
	}
	h[i] = ev
	ev.index = i
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.siftUp(ev.index)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old)
	ev := old[0]
	last := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.index = -1
	if n > 1 {
		old[0] = last
		last.index = 0
		(*h).siftDown(0)
	}
	return ev
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old)
	ev := old[i]
	last := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.index = -1
	if i < n-1 {
		old[i] = last
		last.index = i
		h.fix(i)
	}
}

// fix restores heap order after the event at index i changed its key.
func (h eventHeap) fix(i int) {
	h.siftDown(i)
	h.siftUp(i)
}

// Engine owns the virtual clock, the pending-event queue, and the set of
// runnable processes. An Engine is not safe for concurrent use from multiple
// goroutines other than through the Proc primitives it hands out.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventHeap
	runnable []*Proc
	parked   chan *Proc // handoff channel: a proc announces it has parked or exited
	running  bool
	nprocs   int // live (spawned, not yet exited) processes
	trace    func(t Time, msg string)

	// Flushers run after all work at the current instant has drained, just
	// before the clock advances (or Run returns). Subsystems that batch
	// same-instant work (the flow network coalesces rate recomputations,
	// the parallel executor drains deferred payload ops) register once and
	// arm each round with RequestFlush.
	flushers  []func()
	needFlush bool

	counts Counts // deterministic activity tally (see Counts)

	par parExec // deferred-payload executor (see parallel.go)
}

// Counts is a deterministic tally of engine activity, read by the perf
// ledger and the benchmark matrix. Every field is a pure function of the
// simulated run — all mutations happen in engine event context — so counts
// are bit-identical across reruns and payload worker counts.
type Counts struct {
	Scheduled uint64 // events scheduled or rescheduled (At, After, Reschedule, Sleep)
	Executed  uint64 // event callbacks fired
	Spawned   uint64 // processes spawned
	PeakQueue int    // high-water mark of the pending-event queue
}

// Counts returns the engine's activity tally so far.
func (e *Engine) Counts() Counts { return e.counts }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan *Proc)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTrace installs a debug trace hook invoked by Tracef. A nil hook disables
// tracing.
func (e *Engine) SetTrace(fn func(t Time, msg string)) { e.trace = fn }

// Tracef emits a formatted trace line at the current virtual time if a trace
// hook is installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf(format, args...))
	}
}

// AddFlusher registers fn to run at the end of every virtual instant that
// requested a flush (RequestFlush): after all events and processes at the
// current time have drained, before the clock advances or Run returns.
// Flushers run in registration order and may schedule new events, wake
// processes, or re-arm the flush; the engine re-drains the instant after
// they run. Flushers must tolerate being invoked with nothing to do.
func (e *Engine) AddFlusher(fn func()) { e.flushers = append(e.flushers, fn) }

// RequestFlush arms the end-of-instant flush. Cheap and idempotent.
func (e *Engine) RequestFlush() { e.needFlush = true }

// runFlushers drains end-of-instant work. Returns true if flushers ran (the
// caller must then re-drain the instant).
func (e *Engine) runFlushers() bool {
	if !e.needFlush {
		return false
	}
	e.needFlush = false
	for _, fn := range e.flushers {
		fn()
	}
	return true
}

// At schedules fn to run at virtual time t. Scheduling in the past (t < Now)
// panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %g < %g", t, e.now))
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn, eng: e}
	e.queue.push(ev)
	e.counts.Scheduled++
	if n := len(e.queue); n > e.counts.PeakQueue {
		e.counts.PeakQueue = n
	}
	return ev
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// Reschedule moves an existing event to fire d seconds from now, reusing the
// event object and its callback closure. It is the allocation-free equivalent
// of Cancel + After(d, same fn): heavy reschedulers (the flow network moves
// every completion event whenever rates shift) would otherwise churn an Event
// and a closure per adjustment. A cancelled event is revived. Negative d
// panics, mirroring After.
func (e *Engine) Reschedule(ev *Event, d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	if ev.eng != e {
		panic("sim: Reschedule on foreign event")
	}
	e.seq++
	ev.when = e.now + d
	ev.seq = e.seq
	ev.cancelled = false
	if ev.index >= 0 {
		e.queue.fix(ev.index)
	} else {
		e.queue.push(ev)
	}
	e.counts.Scheduled++
	if n := len(e.queue); n > e.counts.PeakQueue {
		e.counts.PeakQueue = n
	}
}

// Run drives the simulation until no runnable processes remain and the event
// queue is empty, then returns the final virtual time. Processes that are
// still parked at that point are deadlocked; Run panics to surface the bug
// rather than returning silently wrong results.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Engine.Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()

	for {
		// Drain runnable processes first: events at the current time have
		// already fired, and woken processes should observe that state.
		for len(e.runnable) > 0 {
			p := e.runnable[0]
			e.runnable = e.runnable[1:]
			p.resume <- struct{}{}
			<-e.parked // p has parked again or exited
		}
		// The instant is drained when no event remains at the current time;
		// give flushers a chance before advancing the clock or exiting.
		if len(e.queue) == 0 || e.queue[0].when > e.now {
			if e.runFlushers() {
				continue // re-drain: flushers may have added work
			}
		}
		if len(e.queue) == 0 {
			break
		}
		ev := e.queue.pop()
		if ev.cancelled {
			continue
		}
		if ev.when < e.now {
			panic("sim: clock went backwards")
		}
		e.now = ev.when
		e.counts.Executed++
		ev.fn()
	}
	if e.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still parked with no pending events", e.nprocs))
	}
	return e.now
}

// makeRunnable appends p to the runnable queue. Idempotence is the caller's
// responsibility: a process must be parked when this is called.
func (e *Engine) makeRunnable(p *Proc) {
	if p.exited {
		panic("sim: waking exited process " + p.name)
	}
	e.runnable = append(e.runnable, p)
}

// Proc is a simulated process: a goroutine whose apparent blocking operations
// (Sleep, Wait, Acquire) park it and return control to the engine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	exited bool
	// sleepEv is the proc's reusable wakeup event: a proc has at most one
	// outstanding Sleep (it is parked until the event fires), so the event
	// and its closure are allocated once per proc instead of once per Sleep.
	sleepEv *Event
}

// Spawn creates a process executing fn and marks it runnable. fn starts
// running once Run reaches it; Spawn itself never executes user code.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	e.counts.Spawned++
	go func() {
		<-p.resume // wait to be scheduled the first time
		fn(p)
		p.exited = true
		e.nprocs--
		e.parked <- p
	}()
	e.makeRunnable(p)
	return p
}

// Name returns the debug name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// park yields control to the engine and blocks until something calls
// makeRunnable(p) and the engine resumes it.
func (p *Proc) park() {
	p.eng.parked <- p
	<-p.resume
}

// Sleep suspends the process for d seconds of virtual time. Zero is allowed
// and acts as a yield-and-requeue at the current time; negative panics.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %g in %s", d, p.name))
	}
	e := p.eng
	if p.sleepEv == nil {
		p.sleepEv = &Event{eng: e, index: -1, fn: func() { e.makeRunnable(p) }}
	}
	e.Reschedule(p.sleepEv, d)
	p.park()
}

// Yield reschedules the process behind other currently-runnable processes
// without advancing time.
func (p *Proc) Yield() {
	p.eng.makeRunnable(p)
	p.park()
}
