package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at %g, want 0", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(2.0, func() { order = append(order, 2) })
	e.At(1.0, func() { order = append(order, 1) })
	e.At(3.0, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3.0 {
		t.Errorf("end time = %g, want 3", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1.0, func() { fired = true })
	e.At(0.5, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestPastEventPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		wake = p.Now()
	})
	e.Run()
	if wake != 2.5 {
		t.Errorf("woke at %g, want 2.5", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(1)
			times = append(times, p.Now())
		}
	})
	e.Run()
	want := []Time{1, 2, 3, 4}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		order = append(order, "a1")
		p.Sleep(2) // wakes at 3
		order = append(order, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "b2")
	})
	e.Run()
	want := []string{"a1", "b2", "a3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalWaitBeforeFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "s")
	var woke Time
	e.Spawn("waiter", func(p *Proc) {
		s.Wait(p)
		woke = p.Now()
	})
	e.At(4, func() { s.Fire() })
	e.Run()
	if woke != 4 {
		t.Errorf("waiter woke at %g, want 4", woke)
	}
	if s.FiredAt() != 4 {
		t.Errorf("FiredAt = %g, want 4", s.FiredAt())
	}
}

func TestSignalWaitAfterFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "s")
	var woke Time
	e.At(1, func() { s.Fire() })
	e.Spawn("late", func(p *Proc) {
		p.Sleep(5)
		s.Wait(p) // already fired: returns immediately
		woke = p.Now()
	})
	e.Run()
	if woke != 5 {
		t.Errorf("late waiter woke at %g, want 5", woke)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "s")
	e.At(1, func() { s.Fire() })
	e.At(2, func() {
		defer func() {
			if recover() == nil {
				t.Error("double fire did not panic")
			}
		}()
		s.Fire()
	})
	e.Run()
}

func TestSignalOnFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "s")
	var at Time = -1
	s.OnFire(func() { at = e.Now() })
	e.At(3, func() { s.Fire() })
	e.Run()
	if at != 3 {
		t.Errorf("callback at %g, want 3", at)
	}
	// Registering after fire runs immediately.
	ran := false
	s.OnFire(func() { ran = true })
	if !ran {
		t.Error("OnFire after fire did not run immediately")
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEngine()
	a := NewSignal(e, "a")
	b := NewSignal(e, "b")
	var woke Time
	e.Spawn("w", func(p *Proc) {
		WaitAll(p, a, b)
		woke = p.Now()
	})
	e.At(1, func() { a.Fire() })
	e.At(7, func() { b.Fire() })
	e.Run()
	if woke != 7 {
		t.Errorf("WaitAll woke at %g, want 7", woke)
	}
}

func TestWaitAnyFirstWins(t *testing.T) {
	e := NewEngine()
	a := NewSignal(e, "a")
	b := NewSignal(e, "b")
	var woke Time
	var idx int
	e.Spawn("w", func(p *Proc) {
		idx = WaitAny(p, a, b)
		woke = p.Now()
	})
	e.At(2, func() { b.Fire() })
	e.At(9, func() { a.Fire() })
	e.Run()
	if woke != 2 || idx != 1 {
		t.Errorf("WaitAny woke at %g idx %d, want 2, 1", woke, idx)
	}
}

func TestWaitAnyAlreadyFired(t *testing.T) {
	e := NewEngine()
	a := NewSignal(e, "a")
	b := NewSignal(e, "b")
	var idx int
	e.At(1, func() { a.Fire() })
	e.Spawn("w", func(p *Proc) {
		p.Sleep(2)
		idx = WaitAny(p, a, b)
	})
	// b never fires; a already fired so WaitAny must not block.
	e.Run()
	if idx != 0 {
		t.Errorf("idx = %d, want 0", idx)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "engine", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(1)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{1, 2, 3}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dual", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(1)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{1, 1, 2, 2}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "fifo", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("user", func(p *Proc) {
			p.Sleep(Time(i) * 0.001) // arrive in index order
			r.Acquire(p)
			p.Sleep(1)
			order = append(order, i)
			r.Release()
		})
	}
	e.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	e.Spawn("u", func(p *Proc) {
		r.Use(p, func() {
			if r.InUse() != 1 {
				t.Errorf("InUse inside Use = %d, want 1", r.InUse())
			}
			p.Sleep(1)
		})
		if r.InUse() != 0 {
			t.Errorf("InUse after Use = %d, want 0", r.InUse())
		}
	})
	e.Run()
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "never")
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	defer func() {
		if recover() == nil {
			t.Error("deadlocked run did not panic")
		}
	}()
	e.Run()
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: N events scheduled at random times fire in nondecreasing time
// order, and the run ends at the max time.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%50) + 1
		times := make([]Time, count)
		var fired []Time
		for i := 0; i < count; i++ {
			times[i] = rng.Float64() * 100
			tt := times[i]
			e.At(tt, func() { fired = append(fired, tt) })
		}
		end := e.Run()
		if len(fired) != count {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		maxT := times[0]
		for _, v := range times {
			if v > maxT {
				maxT = v
			}
		}
		return end == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a chain of processes each sleeping random durations accumulates
// exactly the sum of the durations.
func TestSleepAccumulationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%20) + 1
		var total Time
		durs := make([]Time, count)
		for i := range durs {
			durs[i] = rng.Float64()
			total += durs[i]
		}
		var end Time
		e.Spawn("chain", func(p *Proc) {
			for _, d := range durs {
				p.Sleep(d)
			}
			end = p.Now()
		})
		e.Run()
		return end == total // exact: same FP additions in same order
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Determinism: the same random scenario run twice produces the same trace.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var trace []Time
		r := NewResource(e, "r", 2)
		for i := 0; i < 20; i++ {
			start := rng.Float64() * 10
			work := rng.Float64()
			e.Spawn("p", func(p *Proc) {
				p.Sleep(start)
				r.Acquire(p)
				p.Sleep(work)
				r.Release()
				trace = append(trace, p.Now())
			})
		}
		e.Run()
		return trace
	}
	a := run(42)
	b := run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
