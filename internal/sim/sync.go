package sim

import "fmt"

// Signal is a one-shot completion flag that processes can wait on and event
// callbacks can fire. Once fired it stays fired: later Waits return
// immediately. This matches the semantics of a CUDA event or an MPI request
// completion.
type Signal struct {
	eng     *Engine
	name    string
	fired   bool
	firedAt Time
	waiters []*Proc
	cbs     []func()
}

// NewSignal returns an unfired signal.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the virtual time the signal fired. It panics if the signal
// has not fired.
func (s *Signal) FiredAt() Time {
	if !s.fired {
		panic("sim: FiredAt on unfired signal " + s.name)
	}
	return s.firedAt
}

// Fire marks the signal complete, wakes all waiting processes, and runs any
// registered callbacks. Firing twice panics: in this codebase a double fire
// always indicates a scheduling bug.
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: signal fired twice: " + s.name)
	}
	s.fired = true
	s.firedAt = s.eng.now
	for _, p := range s.waiters {
		s.eng.makeRunnable(p)
	}
	s.waiters = nil
	cbs := s.cbs
	s.cbs = nil
	for _, cb := range cbs {
		cb()
	}
}

// Wait parks the process until the signal fires. If it has already fired,
// Wait returns immediately.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// OnFire registers a callback to run when the signal fires (immediately if it
// already has). Callbacks run in registration order inside the engine.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		fn()
		return
	}
	s.cbs = append(s.cbs, fn)
}

// WaitAll parks the process until every signal in sigs has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// WaitAny parks the process until at least one signal in sigs has fired and
// returns the index of a fired signal (the lowest-indexed one at wake time).
// It panics on an empty slice.
func WaitAny(p *Proc, sigs ...*Signal) int {
	if len(sigs) == 0 {
		panic("sim: WaitAny with no signals")
	}
	for {
		for i, s := range sigs {
			if s.fired {
				return i
			}
		}
		// Register with all, wake on first fire. Registration is cheap and
		// stale entries are cleaned lazily: a woken process re-checks and the
		// remaining signals drop the proc when they fire (waking an already
		// running process is prevented by the single-owner discipline: a
		// process can only be parked in one place at a time, so we must
		// de-register before returning).
		w := &anyWaiter{p: p}
		for _, s := range sigs {
			if !s.fired {
				s.cbs = append(s.cbs, w.wake(s.eng))
			}
		}
		p.park()
	}
}

type anyWaiter struct {
	p     *Proc
	woken bool
}

func (w *anyWaiter) wake(e *Engine) func() {
	return func() {
		if w.woken {
			return
		}
		w.woken = true
		e.makeRunnable(w.p)
	}
}

// Gate is a reusable rendezvous between one owning process and event-context
// callbacks: callbacks call Open, the owner calls Await. Unlike the one-shot
// Signal, a Gate cycles: Await consumes the open state, so a driver loop can
// park on the same Gate once per wake without allocating. Open is level-
// triggered and idempotent; spurious Await returns are possible (the owner
// must re-check its own readiness state) but lost wakeups are not.
type Gate struct {
	owner  *Proc
	open   bool
	parked bool
}

// NewGate returns a closed gate owned by p. Only p may Await.
func NewGate(p *Proc) *Gate { return &Gate{owner: p} }

// Open marks the gate open and wakes the owner if it is parked in Await.
// Safe to call any number of times from event callbacks.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	if g.parked {
		g.parked = false
		g.owner.eng.makeRunnable(g.owner)
	}
}

// Await parks the owner until the gate is open (returning immediately if it
// already is), then closes it.
func (g *Gate) Await() {
	if !g.open {
		g.parked = true
		g.owner.park()
	}
	g.open = false
}

// Resource is a counting resource with FIFO admission, used to model serially
// shared facilities such as an MPI progress engine or a copy/DMA engine.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Proc
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %s capacity %d < 1", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire parks the process until a unit of the resource is available, then
// claims it. Admission is strictly FIFO.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.park()
	// Woken by Release, which transferred the unit to us already.
}

// Release returns a unit. If processes are queued, ownership transfers
// directly to the head of the queue.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.queue) > 0 {
		p := r.queue[0]
		r.queue = r.queue[1:]
		r.eng.makeRunnable(p)
		return // unit transferred, inUse unchanged
	}
	r.inUse--
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}
