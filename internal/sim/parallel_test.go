package sim

import "testing"

// Ops sharing a key component must run in sequence order; the whole batch
// must complete before any later-instant event observes the data.
func TestDeferComponentOrdering(t *testing.T) {
	e := NewEngine()
	e.SetWorkers(4)
	// Three key-disjoint components: {0,1}, {2,3}, {4,5}. Ops within a
	// component append to that component's log; components never share a
	// slice, so the appends need no locking — exactly the executor's
	// contract.
	logs := make([][]int, 3)
	e.At(0, func() {
		for i := 0; i < 48; i++ {
			comp := i % 3
			k1 := int32(2 * comp)
			k2 := k1
			if i%2 == 0 {
				k2 = k1 + 1 // exercise the union of both keys
			}
			i := i
			e.Defer(func() { logs[comp] = append(logs[comp], i) }, k1, k2)
		}
	})
	checked := false
	e.At(1, func() {
		checked = true
		total := 0
		for comp, log := range logs {
			total += len(log)
			for j := 1; j < len(log); j++ {
				if log[j] <= log[j-1] {
					t.Errorf("component %d ran out of order: %v", comp, log)
					break
				}
			}
		}
		if total != 48 {
			t.Errorf("ran %d ops before the next instant, want 48", total)
		}
	})
	e.Run()
	if !checked {
		t.Fatal("verification event never fired")
	}
}

// With workers disabled Defer degenerates to an immediate call.
func TestDeferSequentialImmediate(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Defer(func() { ran = true }, 3, 7)
	if !ran {
		t.Fatal("Defer with workers disabled did not run inline")
	}
}

// Deferred ops queued across several events of one instant all flush before
// the clock advances, even when a flush-triggered event defers more work.
func TestDeferFlushBeforeClockAdvance(t *testing.T) {
	e := NewEngine()
	e.SetWorkers(2)
	var order []string
	for i := 0; i < 6; i++ {
		i := i
		e.At(0, func() {
			e.Defer(func() { order = append(order, "op") }, int32(i), int32(i))
		})
	}
	e.At(0.5, func() { order = append(order, "later") })
	e.Run()
	if len(order) != 7 || order[6] != "later" {
		t.Fatalf("deferred ops did not flush before the next instant: %v", order)
	}
}

func TestSetWorkersWhileRunningPanics(t *testing.T) {
	e := NewEngine()
	e.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("SetWorkers while running did not panic")
			}
		}()
		e.SetWorkers(2)
	})
	e.Run()
}

// Gate: Open before Await is consumed without parking; Await before Open
// parks until an event opens it; the gate is reusable.
func TestGateRendezvous(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("owner", func(p *Proc) {
		g := NewGate(p)
		g.Open() // pre-opened: Await must not park
		g.Await()
		trace = append(trace, "first")
		e.After(1, func() {
			trace = append(trace, "open")
			g.Open()
		})
		g.Await() // parks until the event opens it
		trace = append(trace, "second")
	})
	e.Run()
	want := []string{"first", "open", "second"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}
