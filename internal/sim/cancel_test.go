package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCancelRemovesFromHeap(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.At(float64(i)+1, func() {}))
	}
	if len(e.queue) != 100 {
		t.Fatalf("queue = %d", len(e.queue))
	}
	for i := 0; i < 100; i += 2 {
		evs[i].Cancel()
	}
	// Eager removal keeps the heap tight.
	if len(e.queue) != 50 {
		t.Errorf("queue after cancels = %d, want 50", len(e.queue))
	}
	e.Run()
}

func TestCancelDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ev3 *Event
	e.At(1, func() { fired = append(fired, 1); ev3.Cancel() })
	e.At(2, func() { fired = append(fired, 2) })
	ev3 = e.At(3, func() { fired = append(fired, 3) })
	e.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Errorf("fired = %v, want [1 2]", fired)
	}
}

func TestDoubleCancelHarmless(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() { t.Error("cancelled event fired") })
	ev.Cancel()
	ev.Cancel()
	e.Run()
}

func TestCancelAfterFireHarmless(t *testing.T) {
	e := NewEngine()
	var ev *Event
	ev = e.At(1, func() {})
	e.At(2, func() { ev.Cancel() })
	e.Run()
}

// Property: with random schedule/cancel/reschedule interleavings, exactly
// the non-cancelled events fire, in time order, and the heap ends empty.
func TestCancelRescheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type rec struct {
			ev        *Event
			when      float64
			cancelled bool
		}
		var recs []*rec
		var fired []float64
		n := rng.Intn(40) + 5
		for i := 0; i < n; i++ {
			when := rng.Float64() * 100
			r := &rec{when: when}
			r.ev = e.At(when, func() { fired = append(fired, r.when) })
			recs = append(recs, r)
		}
		// Cancel a random subset before running.
		for _, r := range recs {
			if rng.Intn(3) == 0 {
				r.ev.Cancel()
				r.cancelled = true
			}
		}
		e.Run()
		var want []float64
		for _, r := range recs {
			if !r.cancelled {
				want = append(want, r.when)
			}
		}
		sort.Float64s(want)
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return len(e.queue) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTracef(t *testing.T) {
	e := NewEngine()
	var lines []string
	e.SetTrace(func(tm Time, msg string) { lines = append(lines, msg) })
	e.At(1, func() { e.Tracef("hello %d", 42) })
	e.Run()
	if len(lines) != 1 || lines[0] != "hello 42" {
		t.Errorf("trace = %v", lines)
	}
	// Disabled trace is a no-op.
	e2 := NewEngine()
	e2.Tracef("ignored")
}

func TestRunReentryPanics(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}
