package cudart

import (
	"testing"

	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

func TestAllWorkEventIdleDevice(t *testing.T) {
	_, rt := newRT(1, false)
	ev := rt.Devices[0].AllWorkEvent()
	if !ev.Fired() {
		t.Error("idle device's AllWorkEvent should fire immediately")
	}
}

func TestAllWorkEventWaitsForAllStreams(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s1 := d.NewStream("a")
	s2 := d.NewStream("b")
	k1 := s1.Kernel("short", 46e6, 46*machine.GB, nil) // 1 ms
	k2 := s2.Kernel("long", 460e6, 46*machine.GB, nil) // 10 ms
	ev := d.AllWorkEvent()
	e.Run()
	if !ev.Fired() {
		t.Fatal("AllWorkEvent never fired")
	}
	if ev.FiredAt() < k2.FiredAt() || ev.FiredAt() < k1.FiredAt() {
		t.Errorf("AllWorkEvent at %g before streams drained (%g, %g)",
			ev.FiredAt(), k1.FiredAt(), k2.FiredAt())
	}
}

func TestAllWorkEventIgnoresLaterWork(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s := d.NewStream("s")
	s.Kernel("first", 46e6, 46*machine.GB, nil) // 1 ms
	ev := d.AllWorkEvent()
	// Work enqueued after the snapshot must not delay the event.
	s.Kernel("second", 460e6, 46*machine.GB, nil) // +10 ms
	e.Run()
	if ev.FiredAt() > 0.0015 {
		t.Errorf("AllWorkEvent at %g delayed by later work", ev.FiredAt())
	}
}

func TestEnqueueCustomOp(t *testing.T) {
	e, rt := newRT(1, false)
	s := rt.Devices[0].NewStream("s")
	var order []string
	s.Kernel("k", 46e6, 46*machine.GB, func() { order = append(order, "k") })
	s.Enqueue(func(done *sim.Signal) {
		order = append(order, "custom")
		done.Fire()
	})
	e.Run()
	if len(order) != 2 || order[1] != "custom" {
		t.Errorf("order = %v", order)
	}
}

func TestStreamsListing(t *testing.T) {
	_, rt := newRT(1, false)
	d := rt.Devices[0]
	base := len(d.Streams()) // default stream
	d.NewStream("x")
	d.NewStream("y")
	if got := len(d.Streams()); got != base+2 {
		t.Errorf("streams = %d, want %d", got, base+2)
	}
	if d.DefaultStream() == nil {
		t.Error("no default stream")
	}
}

func TestKernelWithDeps(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s1 := d.NewStream("s1")
	s2 := d.NewStream("s2")
	long := s1.Kernel("long", 460e6, 46*machine.GB, nil) // 10 ms
	var ranAt sim.Time
	s2.Kernel("gated", 0, 0, func() { ranAt = e.Now() }, long)
	e.Run()
	if ranAt < long.FiredAt() {
		t.Errorf("gated kernel ran at %g before dep at %g", ranAt, long.FiredAt())
	}
}

func TestIssueAndLaunchCosts(t *testing.T) {
	e, rt := newRT(1, false)
	var after sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		rt.IssueCost(p)
		rt.LaunchCost(p)
		after = p.Now()
	})
	e.Run()
	want := rt.M.Params.MemcpyLaunch + rt.M.Params.KernelLaunch
	if after != want {
		t.Errorf("cpu costs = %g, want %g", after, want)
	}
}
