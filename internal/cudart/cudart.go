// Package cudart is a simulated CUDA runtime for the machine model.
//
// It reproduces the subset of CUDA the paper's library uses: devices, device
// and pinned-host buffers, streams (in-order async op queues), events,
// cudaMemcpyAsync / cudaMemcpyPeerAsync, pack/unpack kernels, peer-access
// enablement, cudaIpc* handles, and device synchronization.
//
// Ops enqueued on a stream execute in issue order in virtual time. Data
// transfers become flows over the machine's links, so concurrent copies
// contend exactly as the hardware's would. Buffers optionally carry real
// backing bytes: an op that moves data performs the actual byte copy at its
// virtual completion time, which lets the test suite verify halo-exchange
// correctness bit-for-bit while large-scale benchmarks run in time-only mode.
package cudart

import (
	"fmt"

	"github.com/nodeaware/stencil/internal/flownet"
	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

// OpKind classifies a stream operation for tracing.
type OpKind int

const (
	OpKernel OpKind = iota
	OpMemcpyD2D
	OpMemcpyD2H
	OpMemcpyH2D
	OpMemcpyH2H // host-side staging copy (shared-memory or NIC delivery)
	OpRetransmit
	OpReExchange

	// NumOpKinds is the number of OpKind values; glyph tables and other
	// per-kind maps are tested for exhaustiveness against it.
	NumOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpKernel:
		return "kernel"
	case OpMemcpyD2D:
		return "memcpyD2D"
	case OpMemcpyD2H:
		return "memcpyD2H"
	case OpMemcpyH2D:
		return "memcpyH2D"
	case OpMemcpyH2H:
		return "memcpyH2H"
	case OpRetransmit:
		return "retransmit"
	case OpReExchange:
		return "reexchange"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// OpRecord describes one completed stream operation, for Fig 9-style
// timelines.
type OpRecord struct {
	Kind       OpKind
	Name       string
	Device     int // global device id, -1 for host-only
	Stream     string
	Start, End sim.Time
	Bytes      int64
}

// Runtime is the simulated CUDA runtime for one cluster.
type Runtime struct {
	M        *machine.Machine
	RealData bool // allocate and move real bytes
	Devices  []*Device
	OnOp     func(OpRecord) // optional trace hook
}

// NewRuntime creates a runtime with one Device per GPU in the machine,
// numbered globally node-major.
func NewRuntime(m *machine.Machine, realData bool) *Runtime {
	rt := &Runtime{M: m, RealData: realData}
	id := 0
	for _, n := range m.Nodes {
		for g := 0; g < n.Config.GPUs(); g++ {
			d := &Device{rt: rt, ID: id, Node: n.ID, Local: g, peers: make(map[int]bool)}
			d.defaultStream = d.newStream("default")
			rt.Devices = append(rt.Devices, d)
			id++
		}
	}
	return rt
}

// DeviceAt returns the global device for (node, local GPU).
func (rt *Runtime) DeviceAt(node, local int) *Device {
	n := rt.M.Nodes[node]
	return rt.Devices[node*n.Config.GPUs()+local]
}

func (rt *Runtime) record(r OpRecord) {
	if rt.OnOp != nil {
		rt.OnOp(r)
	}
}

// Record feeds an externally produced op record to the trace hook. The MPI
// layer uses it to surface host-side staging copies in the same timeline as
// stream ops.
func (rt *Runtime) Record(r OpRecord) { rt.record(r) }

// Device is one simulated GPU.
type Device struct {
	rt            *Runtime
	ID            int // global id
	Node          int
	Local         int // index within node
	peers         map[int]bool
	defaultStream *Stream
	streams       []*Stream
	slow          float64 // straggle factor; 0 means healthy (1x)
	dead          bool    // permanently failed (fail-stop)
}

// Fail marks the device permanently lost (fail-stop). Work already enqueued
// completes in virtual time — the "zombie window" between the physical
// failure and its detection at the next consistency point, mirroring how
// real clusters learn of device death through timeouts — but new
// allocations, streams, and peer enablement panic, so any use of the device
// after the recovery layer has evicted it is a bug that surfaces
// immediately.
func (d *Device) Fail() { d.dead = true }

// Dead reports whether the device has permanently failed.
func (d *Device) Dead() bool { return d.dead }

func (d *Device) checkAlive(op string) {
	if d.dead {
		panic(fmt.Sprintf("cudart: %s on dead device %d", op, d.ID))
	}
}

// SetSlowFactor makes every kernel on the device take factor times as long
// (launch and execution both), modelling a straggling GPU — thermal
// throttling, ECC replay storms, a contending tenant. Factor 1 restores
// nominal speed; factors below 1 are rejected.
func (d *Device) SetSlowFactor(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("cudart: slow factor %g < 1 on device %d", factor, d.ID))
	}
	d.slow = factor
}

// SlowFactor returns the device's current straggle factor (1 when healthy).
func (d *Device) SlowFactor() float64 {
	if d.slow == 0 {
		return 1
	}
	return d.slow
}

// DefaultStream returns the device's default stream (used internally by the
// CUDA-aware MPI pathology model).
func (d *Device) DefaultStream() *Stream { return d.defaultStream }

// CanAccessPeer reports whether peer access can be enabled to other: GPUs on
// the same node can be peers (intra-triad over NVLink, cross-socket over the
// SMP bus).
func (d *Device) CanAccessPeer(other *Device) bool {
	return d.Node == other.Node && d != other
}

// EnablePeerAccess enables peer access from d to other (one direction, as in
// CUDA). It returns an error if the devices cannot be peers.
func (d *Device) EnablePeerAccess(other *Device) error {
	d.checkAlive("EnablePeerAccess")
	other.checkAlive("EnablePeerAccess(peer)")
	if !d.CanAccessPeer(other) {
		return fmt.Errorf("cudart: device %d cannot access peer %d", d.ID, other.ID)
	}
	d.peers[other.ID] = true
	return nil
}

// PeerEnabled reports whether EnablePeerAccess(other) has been called.
func (d *Device) PeerEnabled(other *Device) bool { return d.peers[other.ID] }

func (d *Device) newStream(name string) *Stream {
	s := &Stream{dev: d, name: fmt.Sprintf("d%d.%s", d.ID, name)}
	d.streams = append(d.streams, s)
	return s
}

// NewStream creates a new asynchronous stream on the device.
func (d *Device) NewStream(name string) *Stream {
	d.checkAlive("NewStream")
	return d.newStream(name)
}

// Synchronize parks the process until every op enqueued so far on every
// stream of the device has completed (cudaDeviceSynchronize).
func (d *Device) Synchronize(p *sim.Proc) {
	for _, s := range d.streams {
		s.Synchronize(p)
	}
}

// Malloc allocates a device buffer. Backing bytes are allocated only in
// real-data mode.
func (d *Device) Malloc(size int64) *Buffer {
	d.checkAlive("Malloc")
	b := &Buffer{dev: d, size: size}
	if d.rt.RealData {
		b.data = make([]byte, size)
	}
	return b
}

// MallocHost allocates a pinned host buffer on the given node and socket.
func (rt *Runtime) MallocHost(node, socket int, size int64) *Buffer {
	b := &Buffer{node: node, socket: socket, size: size, host: true}
	if rt.RealData {
		b.data = make([]byte, size)
	}
	return b
}

// Buffer is a device or pinned-host allocation.
type Buffer struct {
	dev    *Device // nil for host buffers
	host   bool
	node   int // for host buffers
	socket int
	size   int64
	data   []byte // nil in time-only mode
}

// Size returns the allocation size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Device returns the owning device, or nil for a host buffer.
func (b *Buffer) Device() *Device { return b.dev }

// Host reports whether this is a pinned host buffer.
func (b *Buffer) Host() bool { return b.host }

// Data returns the backing bytes (nil in time-only mode). Simulated "GPU
// kernels" in higher layers use this to perform real pack/unpack/compute.
func (b *Buffer) Data() []byte { return b.data }

// IpcMemHandle is the opaque handle produced by IpcGetMemHandle.
type IpcMemHandle struct{ buf *Buffer }

// IpcGetMemHandle produces an opaque sharable handle for a device buffer
// (cudaIpcGetMemHandle). The cost is charged to the calling process.
func (rt *Runtime) IpcGetMemHandle(p *sim.Proc, b *Buffer) IpcMemHandle {
	if b.dev == nil {
		panic("cudart: IpcGetMemHandle on host buffer")
	}
	p.Sleep(rt.M.Params.IpcGetHandle)
	return IpcMemHandle{buf: b}
}

// IpcOpenMemHandle converts a handle received from another process into a
// buffer valid in the caller's address space (cudaIpcOpenMemHandle). The
// returned buffer aliases the original allocation.
func (rt *Runtime) IpcOpenMemHandle(p *sim.Proc, h IpcMemHandle) *Buffer {
	p.Sleep(rt.M.Params.IpcOpenHandle)
	return h.buf
}

// Stream is an in-order asynchronous operation queue on one device.
type Stream struct {
	dev  *Device
	name string
	tail *sim.Signal // completion of the most recently enqueued op
}

// Name returns the stream's debug name.
func (s *Stream) Name() string { return s.name }

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// enqueue adds an op that starts when the previous op and all extra
// dependencies have completed. start must eventually fire done.
func (s *Stream) enqueue(start func(done *sim.Signal), deps ...*sim.Signal) *sim.Signal {
	eng := s.dev.rt.M.Eng
	done := sim.NewSignal(eng, s.name+".op")
	all := make([]*sim.Signal, 0, len(deps)+1)
	if s.tail != nil && !s.tail.Fired() {
		all = append(all, s.tail)
	}
	for _, d := range deps {
		if d != nil && !d.Fired() {
			all = append(all, d)
		}
	}
	s.tail = done
	launch := func() { start(done) }
	if len(all) == 0 {
		launch()
		return done
	}
	// Start when the last outstanding dependency fires.
	pending := len(all)
	for _, dep := range all {
		dep.OnFire(func() {
			pending--
			if pending == 0 {
				launch()
			}
		})
	}
	return done
}

// Enqueue adds a custom op to the stream: run starts once the previous op
// and all deps complete, and must eventually fire done. Higher layers (the
// simulated CUDA-aware MPI transport) use this to place their internal
// transfers on a device's default stream.
func (s *Stream) Enqueue(run func(done *sim.Signal), deps ...*sim.Signal) *sim.Signal {
	return s.enqueue(run, deps...)
}

// Streams returns all streams created on the device, including the default
// stream.
func (d *Device) Streams() []*Stream { return d.streams }

// AllWorkEvent returns a signal that fires once every op currently enqueued
// on any stream of the device has completed. This models the legacy default
// stream's device-wide synchronization behaviour.
func (d *Device) AllWorkEvent() *sim.Signal {
	eng := d.rt.M.Eng
	ev := sim.NewSignal(eng, fmt.Sprintf("d%d.allwork", d.ID))
	pending := 0
	for _, s := range d.streams {
		if s.tail != nil && !s.tail.Fired() {
			pending++
			s.tail.OnFire(func() {
				pending--
				if pending == 0 {
					ev.Fire()
				}
			})
		}
	}
	if pending == 0 {
		ev.Fire()
	}
	return ev
}

// Synchronize parks the process until all currently enqueued ops complete
// (cudaStreamSynchronize).
func (s *Stream) Synchronize(p *sim.Proc) {
	if s.tail != nil {
		s.tail.Wait(p)
	}
}

// Query reports whether all enqueued work has completed (cudaStreamQuery).
func (s *Stream) Query() bool { return s.tail == nil || s.tail.Fired() }

// EventRecord returns a signal that fires when all work enqueued on the
// stream so far completes (cudaEventRecord + cudaEventSynchronize/Query
// rolled into the Signal API).
func (s *Stream) EventRecord() *sim.Signal {
	eng := s.dev.rt.M.Eng
	ev := sim.NewSignal(eng, s.name+".event")
	if s.tail == nil || s.tail.Fired() {
		ev.Fire()
		return ev
	}
	s.tail.OnFire(ev.Fire)
	return ev
}

// WaitEvent makes all subsequently enqueued ops wait for ev in addition to
// stream order (cudaStreamWaitEvent).
func (s *Stream) WaitEvent(ev *sim.Signal) {
	s.enqueue(func(done *sim.Signal) { done.Fire() }, ev)
}

// Kernel enqueues a simulated kernel: it occupies the stream for the launch
// overhead plus bytes/bw, then runs commit (the real data movement or
// computation) at completion. A zero bw means the kernel costs only the
// launch overhead. Optional deps gate the start in addition to stream order
// (cudaStreamWaitEvent semantics). Returns the completion signal.
func (s *Stream) Kernel(name string, bytes int64, bw float64, commit func(), deps ...*sim.Signal) *sim.Signal {
	rt := s.dev.rt
	eng := rt.M.Eng
	dur := rt.M.Params.KernelLaunch
	if bw > 0 {
		dur += float64(bytes) / bw
	}
	dur *= s.dev.SlowFactor()
	key := int32(s.dev.ID)
	return s.enqueue(func(done *sim.Signal) {
		start := eng.Now()
		eng.After(dur, func() {
			// The payload (real pack/unpack/compute) is pure per-device
			// data work; defer it to the parallel executor. Recording and
			// the completion signal stay in event context so trace order
			// and scheduling are identical under any worker count.
			if commit != nil {
				eng.Defer(commit, key, key)
			}
			rt.record(OpRecord{Kind: OpKernel, Name: name, Device: s.dev.ID, Stream: s.name, Start: start, End: eng.Now(), Bytes: bytes})
			done.Fire()
		})
	}, deps...)
}

// memcpyFlow enqueues a copy over path, moving real bytes at completion.
func (s *Stream) memcpyFlow(kind OpKind, name string, path []*flownet.Link, dst, src *Buffer, dstOff, srcOff, bytes int64, deps ...*sim.Signal) *sim.Signal {
	rt := s.dev.rt
	eng := rt.M.Eng
	checkRange(dst, dstOff, bytes)
	checkRange(src, srcOff, bytes)
	// Host-side buffers take the key of the device moving their bytes: no
	// other deferred op touches a staging buffer within the same instant
	// (cross-instant readers are safe after the flush).
	k1, k2 := bufKey(src, s.dev), bufKey(dst, s.dev)
	return s.enqueue(func(done *sim.Signal) {
		start := eng.Now()
		f := rt.M.Net.StartFlow(name, path, float64(bytes))
		f.Done().OnFire(func() {
			if dst.data != nil && src.data != nil {
				eng.Defer(func() {
					copy(dst.data[dstOff:dstOff+bytes], src.data[srcOff:srcOff+bytes])
				}, k1, k2)
			}
			rt.record(OpRecord{Kind: kind, Name: name, Device: s.dev.ID, Stream: s.name, Start: start, End: eng.Now(), Bytes: bytes})
			done.Fire()
		})
	}, deps...)
}

// bufKey is the parallel-executor key of a buffer: its owning device, or —
// for host buffers — the device driving the copy.
func bufKey(b *Buffer, driver *Device) int32 {
	if b.dev != nil {
		return int32(b.dev.ID)
	}
	return int32(driver.ID)
}

func checkRange(b *Buffer, off, bytes int64) {
	if off < 0 || bytes < 0 || off+bytes > b.size {
		panic(fmt.Sprintf("cudart: copy range [%d,%d) out of buffer size %d", off, off+bytes, b.size))
	}
}

// MemcpyPeerAsync enqueues a device-to-device copy (cudaMemcpyPeerAsync).
// Both buffers must be device buffers on the same node; peer access from the
// stream's device path is assumed enabled by the caller for cross-device
// copies (the exchange layer checks it).
func (s *Stream) MemcpyPeerAsync(name string, dst *Buffer, dstOff int64, src *Buffer, srcOff int64, bytes int64, deps ...*sim.Signal) *sim.Signal {
	if dst.dev == nil || src.dev == nil {
		panic("cudart: MemcpyPeerAsync requires device buffers")
	}
	if dst.dev.Node != src.dev.Node {
		panic("cudart: MemcpyPeerAsync across nodes")
	}
	node := s.dev.rt.M.Nodes[src.dev.Node]
	path := node.DevToDevPath(src.dev.Local, dst.dev.Local)
	return s.memcpyFlow(OpMemcpyD2D, name, path, dst, src, dstOff, srcOff, bytes, deps...)
}

// MemcpyAsync enqueues a device<->pinned-host copy (cudaMemcpyAsync). One
// buffer must be a device buffer, the other a host buffer on the same node.
func (s *Stream) MemcpyAsync(name string, dst *Buffer, dstOff int64, src *Buffer, srcOff int64, bytes int64, deps ...*sim.Signal) *sim.Signal {
	switch {
	case src.dev != nil && dst.host: // D2H
		if src.dev.Node != dst.node {
			panic("cudart: D2H across nodes")
		}
		node := s.dev.rt.M.Nodes[src.dev.Node]
		path := node.DevToHostPath(src.dev.Local, dst.socket)
		return s.memcpyFlow(OpMemcpyD2H, name, path, dst, src, dstOff, srcOff, bytes, deps...)
	case dst.dev != nil && src.host: // H2D
		if dst.dev.Node != src.node {
			panic("cudart: H2D across nodes")
		}
		node := s.dev.rt.M.Nodes[dst.dev.Node]
		path := node.HostToDevPath(src.socket, dst.dev.Local)
		return s.memcpyFlow(OpMemcpyH2D, name, path, dst, src, dstOff, srcOff, bytes, deps...)
	default:
		panic("cudart: MemcpyAsync requires one device and one pinned host buffer")
	}
}

// IssueCost charges the calling process the CPU-side cost of issuing one
// async memcpy (models the driver call, visible as CPU time in Fig 9).
func (rt *Runtime) IssueCost(p *sim.Proc) { p.Sleep(rt.M.Params.MemcpyLaunch) }

// LaunchCost charges the calling process the CPU-side cost of launching a
// kernel.
func (rt *Runtime) LaunchCost(p *sim.Proc) { p.Sleep(rt.M.Params.KernelLaunch) }
