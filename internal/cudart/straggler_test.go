package cudart

import (
	"testing"

	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

// TestSlowFactorKernels: a straggling device's kernels take factor times as
// long; other devices are unaffected; factor 1 restores nominal speed.
func TestSlowFactorKernels(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.NewSummit(eng, 1)
	rt := NewRuntime(m, false)
	d0, d1 := rt.Devices[0], rt.Devices[1]
	if d0.SlowFactor() != 1 {
		t.Fatalf("healthy slow factor: got %g want 1", d0.SlowFactor())
	}
	d0.SetSlowFactor(3)

	timeKernel := func(d *Device) sim.Time {
		s := d.NewStream("k")
		start := eng.Now()
		done := s.Kernel("k", 1<<20, m.Params.PackBW, nil)
		var end sim.Time
		done.OnFire(func() { end = eng.Now() })
		eng.Run()
		return end - start
	}
	nominal := m.Params.KernelLaunch + float64(1<<20)/m.Params.PackBW
	if got := timeKernel(d0); !near(got, 3*nominal) {
		t.Errorf("straggler kernel: got %g want %g", got, 3*nominal)
	}
	if got := timeKernel(d1); !near(got, nominal) {
		t.Errorf("healthy kernel: got %g want %g", got, nominal)
	}
	d0.SetSlowFactor(1)
	if got := timeKernel(d0); !near(got, nominal) {
		t.Errorf("restored kernel: got %g want %g", got, nominal)
	}
}

func near(a, b sim.Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+b)
}

func TestSlowFactorRejectsBelowOne(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.NewSummit(eng, 1)
	rt := NewRuntime(m, false)
	defer func() {
		if recover() == nil {
			t.Error("SetSlowFactor(0.5) did not panic")
		}
	}()
	rt.Devices[0].SetSlowFactor(0.5)
}
