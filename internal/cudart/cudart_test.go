package cudart

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nodeaware/stencil/internal/machine"
	"github.com/nodeaware/stencil/internal/sim"
)

func newRT(nodes int, real bool) (*sim.Engine, *Runtime) {
	e := sim.NewEngine()
	m := machine.NewSummit(e, nodes)
	return e, NewRuntime(m, real)
}

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDeviceNumbering(t *testing.T) {
	_, rt := newRT(2, false)
	if len(rt.Devices) != 12 {
		t.Fatalf("devices = %d, want 12", len(rt.Devices))
	}
	d := rt.DeviceAt(1, 2)
	if d.ID != 8 || d.Node != 1 || d.Local != 2 {
		t.Errorf("DeviceAt(1,2) = id %d node %d local %d", d.ID, d.Node, d.Local)
	}
}

func TestPeerAccess(t *testing.T) {
	_, rt := newRT(2, false)
	a, b := rt.DeviceAt(0, 0), rt.DeviceAt(0, 5)
	remote := rt.DeviceAt(1, 0)
	if !a.CanAccessPeer(b) {
		t.Error("same-node devices should be peer-capable")
	}
	if a.CanAccessPeer(remote) {
		t.Error("cross-node devices must not be peer-capable")
	}
	if a.CanAccessPeer(a) {
		t.Error("a device is not its own peer")
	}
	if err := a.EnablePeerAccess(b); err != nil {
		t.Fatalf("EnablePeerAccess: %v", err)
	}
	if !a.PeerEnabled(b) {
		t.Error("PeerEnabled false after enable")
	}
	if b.PeerEnabled(a) {
		t.Error("peer access must be directional")
	}
	if err := a.EnablePeerAccess(remote); err == nil {
		t.Error("enabling cross-node peer access should fail")
	}
}

func TestKernelDuration(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s := d.NewStream("k")
	done := s.Kernel("pack", 250e6, 250*machine.GB, nil) // 1 ms of work
	e.Run()
	want := rt.M.Params.KernelLaunch + 1e-3
	if got := done.FiredAt(); !almostEq(got, want) {
		t.Errorf("kernel completed at %g, want %g", got, want)
	}
}

func TestStreamOrdering(t *testing.T) {
	e, rt := newRT(1, false)
	s := rt.Devices[0].NewStream("s")
	var order []string
	s.Kernel("a", 0, 0, func() { order = append(order, "a") })
	s.Kernel("b", 0, 0, func() { order = append(order, "b") })
	s.Kernel("c", 0, 0, func() { order = append(order, "c") })
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("stream order = %v", order)
	}
}

func TestStreamsOverlap(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s1 := d.NewStream("s1")
	s2 := d.NewStream("s2")
	a := s1.Kernel("a", 250e6, 250*machine.GB, nil)
	b := s2.Kernel("b", 250e6, 250*machine.GB, nil)
	e.Run()
	// Separate streams run concurrently: both finish at ~the same time.
	if !almostEq(a.FiredAt(), b.FiredAt()) {
		t.Errorf("independent streams serialized: %g vs %g", a.FiredAt(), b.FiredAt())
	}
}

func TestMemcpyPeerIntraTriadTime(t *testing.T) {
	e, rt := newRT(1, false)
	src := rt.DeviceAt(0, 0).Malloc(46e6)
	dst := rt.DeviceAt(0, 1).Malloc(46e6)
	s := rt.DeviceAt(0, 0).NewStream("cp")
	done := s.MemcpyPeerAsync("cp", dst, 0, src, 0, 46e6)
	e.Run()
	// 46 MB over 46 GB/s NVLink = 1 ms.
	if got := done.FiredAt(); !almostEq(got, 1e-3) {
		t.Errorf("peer copy completed at %g, want 1e-3", got)
	}
}

func TestMemcpyPeerCrossSocketSlower(t *testing.T) {
	e, rt := newRT(1, false)
	bytes := int64(58e6)
	src := rt.DeviceAt(0, 0).Malloc(bytes)
	dst := rt.DeviceAt(0, 3).Malloc(bytes)
	s := rt.DeviceAt(0, 0).NewStream("cp")
	done := s.MemcpyPeerAsync("cp", dst, 0, src, 0, bytes)
	e.Run()
	// Bottleneck is NVLink up/down at 46 GB/s: 58e6/46e9 ≈ 1.26 ms.
	want := 58e6 / (46 * machine.GB)
	if got := done.FiredAt(); !almostEq(got, want) {
		t.Errorf("cross-socket copy at %g, want %g", got, want)
	}
}

func TestMemcpyMovesRealBytes(t *testing.T) {
	e, rt := newRT(1, true)
	src := rt.DeviceAt(0, 0).Malloc(64)
	dst := rt.DeviceAt(0, 1).Malloc(64)
	for i := range src.Data() {
		src.Data()[i] = byte(i * 3)
	}
	s := rt.DeviceAt(0, 0).NewStream("cp")
	s.MemcpyPeerAsync("cp", dst, 16, src, 0, 32)
	e.Run()
	for i := 0; i < 32; i++ {
		if dst.Data()[16+i] != byte(i*3) {
			t.Fatalf("byte %d not copied: got %d", i, dst.Data()[16+i])
		}
	}
	if dst.Data()[0] != 0 || dst.Data()[48] != 0 {
		t.Error("copy clobbered bytes outside target range")
	}
}

func TestMemcpyD2HAndH2D(t *testing.T) {
	e, rt := newRT(1, true)
	dev := rt.DeviceAt(0, 0)
	dbuf := dev.Malloc(128)
	hbuf := rt.MallocHost(0, 0, 128)
	for i := range dbuf.Data() {
		dbuf.Data()[i] = byte(200 - i)
	}
	s := dev.NewStream("st")
	s.MemcpyAsync("d2h", hbuf, 0, dbuf, 0, 128)
	e.Run()
	for i := 0; i < 128; i++ {
		if hbuf.Data()[i] != byte(200-i) {
			t.Fatalf("D2H byte %d mismatch", i)
		}
	}
	// Round-trip back to a second device buffer.
	e2 := sim.NewEngine()
	m2 := machine.NewSummit(e2, 1)
	rt2 := NewRuntime(m2, true)
	d2 := rt2.DeviceAt(0, 0)
	h2 := rt2.MallocHost(0, 0, 64)
	dev2 := d2.Malloc(64)
	for i := range h2.Data() {
		h2.Data()[i] = byte(i ^ 0x5a)
	}
	st := d2.NewStream("st")
	st.MemcpyAsync("h2d", dev2, 0, h2, 0, 64)
	e2.Run()
	for i := 0; i < 64; i++ {
		if dev2.Data()[i] != byte(i^0x5a) {
			t.Fatalf("H2D byte %d mismatch", i)
		}
	}
}

func TestMemcpyRangePanics(t *testing.T) {
	e, rt := newRT(1, false)
	_ = e
	src := rt.DeviceAt(0, 0).Malloc(64)
	dst := rt.DeviceAt(0, 1).Malloc(64)
	s := rt.DeviceAt(0, 0).NewStream("cp")
	defer func() {
		if recover() == nil {
			t.Error("out-of-range copy did not panic")
		}
	}()
	s.MemcpyPeerAsync("bad", dst, 32, src, 0, 64)
}

func TestMemcpyAcrossNodesPanics(t *testing.T) {
	_, rt := newRT(2, false)
	src := rt.DeviceAt(0, 0).Malloc(64)
	dst := rt.DeviceAt(1, 0).Malloc(64)
	s := rt.DeviceAt(0, 0).NewStream("cp")
	defer func() {
		if recover() == nil {
			t.Error("cross-node peer copy did not panic")
		}
	}()
	s.MemcpyPeerAsync("bad", dst, 0, src, 0, 64)
}

func TestEventRecordAndWaitEvent(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s1 := d.NewStream("s1")
	s2 := d.NewStream("s2")
	var order []string
	s1.Kernel("long", 460e6, 46*machine.GB, func() { order = append(order, "long") }) // 10 ms
	ev := s1.EventRecord()
	s2.WaitEvent(ev)
	s2.Kernel("after", 0, 0, func() { order = append(order, "after") })
	e.Run()
	if len(order) != 2 || order[0] != "long" || order[1] != "after" {
		t.Errorf("event ordering violated: %v", order)
	}
}

func TestEventRecordOnIdleStreamFires(t *testing.T) {
	_, rt := newRT(1, false)
	s := rt.Devices[0].NewStream("idle")
	ev := s.EventRecord()
	if !ev.Fired() {
		t.Error("event on idle stream should be complete immediately")
	}
}

func TestStreamSynchronize(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s := d.NewStream("s")
	s.Kernel("w", 460e6, 46*machine.GB, nil) // 10 ms
	var resumed sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s.Synchronize(p)
		resumed = p.Now()
	})
	e.Run()
	if resumed < 0.0099 {
		t.Errorf("Synchronize returned at %g, before kernel finished", resumed)
	}
	if !s.Query() {
		t.Error("Query false after synchronize")
	}
}

func TestDeviceSynchronizeCoversAllStreams(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.Devices[0]
	s1 := d.NewStream("a")
	s2 := d.NewStream("b")
	s1.Kernel("k1", 230e6, 46*machine.GB, nil) // 5 ms
	s2.Kernel("k2", 460e6, 46*machine.GB, nil) // 10 ms
	var resumed sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		d.Synchronize(p)
		resumed = p.Now()
	})
	e.Run()
	if resumed < 0.0099 {
		t.Errorf("device sync returned at %g before slowest stream", resumed)
	}
}

func TestIpcHandleRoundTrip(t *testing.T) {
	e, rt := newRT(1, true)
	buf := rt.DeviceAt(0, 0).Malloc(32)
	var opened *Buffer
	var cost sim.Time
	e.Spawn("owner", func(p *sim.Proc) {
		h := rt.IpcGetMemHandle(p, buf)
		opened = rt.IpcOpenMemHandle(p, h)
		cost = p.Now()
	})
	e.Run()
	if opened != buf {
		t.Error("opened handle does not alias original buffer")
	}
	want := rt.M.Params.IpcGetHandle + rt.M.Params.IpcOpenHandle
	if !almostEq(cost, want) {
		t.Errorf("ipc cost %g, want %g", cost, want)
	}
}

func TestTraceHook(t *testing.T) {
	e, rt := newRT(1, false)
	var recs []OpRecord
	rt.OnOp = func(r OpRecord) { recs = append(recs, r) }
	src := rt.DeviceAt(0, 0).Malloc(46e6)
	dst := rt.DeviceAt(0, 1).Malloc(46e6)
	s := rt.DeviceAt(0, 0).NewStream("s")
	s.Kernel("pack", 46e6, 250*machine.GB, nil)
	s.MemcpyPeerAsync("cp", dst, 0, src, 0, 46e6)
	e.Run()
	if len(recs) != 2 {
		t.Fatalf("trace records = %d, want 2", len(recs))
	}
	if recs[0].Kind != OpKernel || recs[1].Kind != OpMemcpyD2D {
		t.Errorf("record kinds = %v %v", recs[0].Kind, recs[1].Kind)
	}
	if recs[1].Start < recs[0].End {
		t.Error("memcpy started before kernel finished on same stream")
	}
	if OpKernel.String() != "kernel" || OpMemcpyH2D.String() != "memcpyH2D" {
		t.Error("OpKind String mismatch")
	}
}

func TestVirtualModeNoData(t *testing.T) {
	_, rt := newRT(1, false)
	buf := rt.DeviceAt(0, 0).Malloc(1 << 30) // 1 GiB costs nothing in time-only mode
	if buf.Data() != nil {
		t.Error("time-only buffer has backing data")
	}
	if buf.Size() != 1<<30 {
		t.Error("size not recorded")
	}
}

// Property: a chain of K kernels of random sizes on one stream completes at
// exactly the sum of their durations.
func TestStreamSerializationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e, rt := newRT(1, false)
		s := rt.Devices[0].NewStream("s")
		k := int(n%8) + 1
		var total sim.Time
		var last *sim.Signal
		for i := 0; i < k; i++ {
			bytes := int64(rng.Intn(1e8) + 1)
			last = s.Kernel("k", bytes, 250*machine.GB, nil)
			total += rt.M.Params.KernelLaunch + float64(bytes)/(250*machine.GB)
		}
		e.Run()
		return almostEq(last.FiredAt(), total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: concurrent copies between disjoint triad pairs never slow each
// other down (dedicated NVLinks).
func TestDisjointPairsIndependentProperty(t *testing.T) {
	f := func(b1, b2 uint32) bool {
		bytes1 := int64(b1%1e8) + 1
		bytes2 := int64(b2%1e8) + 1
		e, rt := newRT(1, false)
		s1 := rt.DeviceAt(0, 0).NewStream("s1")
		s2 := rt.DeviceAt(0, 3).NewStream("s2")
		d1 := s1.MemcpyPeerAsync("a", rt.DeviceAt(0, 1).Malloc(bytes1), 0, rt.DeviceAt(0, 0).Malloc(bytes1), 0, bytes1)
		d2 := s2.MemcpyPeerAsync("b", rt.DeviceAt(0, 4).Malloc(bytes2), 0, rt.DeviceAt(0, 3).Malloc(bytes2), 0, bytes2)
		e.Run()
		w1 := float64(bytes1) / (46 * machine.GB)
		w2 := float64(bytes2) / (46 * machine.GB)
		return almostEq(d1.FiredAt(), w1) && almostEq(d2.FiredAt(), w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDeviceFail: a dead device rejects new resource acquisition (fail-stop
// detection surface) while previously created streams keep executing — the
// zombie window the recovery layer's rollback cleans up.
func TestDeviceFail(t *testing.T) {
	e, rt := newRT(1, false)
	d := rt.DeviceAt(0, 0)
	s := d.NewStream("pre")
	d.Fail()
	if !d.Dead() {
		t.Fatal("Dead() false after Fail")
	}
	for name, fn := range map[string]func(){
		"Malloc":    func() { d.Malloc(64) },
		"NewStream": func() { d.NewStream("post") },
		"EnablePeerAccess": func() {
			_ = d.EnablePeerAccess(rt.DeviceAt(0, 1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s succeeded on a dead device", name)
				}
			}()
			fn()
		}()
	}
	// Peer access onto a dead device is equally rejected.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EnablePeerAccess onto a dead device succeeded")
			}
		}()
		_ = rt.DeviceAt(0, 1).EnablePeerAccess(d)
	}()
	// The zombie window: work on a pre-existing stream still completes in
	// virtual time.
	fired := false
	s.Kernel("zombie", 1<<20, 100e9, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("pre-existing stream stopped executing after Fail")
	}
}
