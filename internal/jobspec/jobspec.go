// Package jobspec defines the JSON-serializable description of one stencil
// simulation job — the single struct the CLI drivers (stencilsim, faultsim)
// and the stencilserve HTTP service all build jobs from.
//
// A Spec is the user-facing, wire-format view of stencil.Config plus the run
// length and an optional fault scenario. It supports three operations the
// serving layer depends on:
//
//   - Normalize: fold every "zero means default" field to its explicit
//     default and canonicalize enumerated spellings ("all" → "kernel",
//     "96" → "96x96x96"), so two specs that describe the same job become
//     structurally equal.
//   - Hash: the canonical content address of the whole job (SHA-256 over the
//     normalized spec's canonical JSON). Because the simulation engine is
//     deterministic, Hash fully determines the job's result bytes — which is
//     what makes stencilserve's whole-result cache correct by construction.
//   - SetupHash: the content address of only the setup-phase inputs
//     (partition + placement + specialization), shared by jobs that differ
//     only in scenario, iteration count, or reliability options. It keys the
//     serving layer's setup cache (cached phase-2 placements injected via
//     stencil.Config.PresetPlacement).
package jobspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	stencil "github.com/nodeaware/stencil"
	"github.com/nodeaware/stencil/internal/fault"
	"github.com/nodeaware/stencil/internal/machine"
)

// Spec is one job description. The zero value is not runnable; start from
// Default() (stencilsim's defaults) or fill the required fields (Nodes,
// RanksPerNode, Domain, Radius, Quantities) and call Normalize.
type Spec struct {
	// Topology.
	Nodes         int    `json:"nodes"`
	RanksPerNode  int    `json:"ranks_per_node"`
	Sockets       int    `json:"sockets,omitempty"`         // 0 → 2 (Summit)
	GPUsPerSocket int    `json:"gpus_per_socket,omitempty"` // 0 → 3 (Summit)
	Domain        string `json:"domain"`                    // "N" or "XxYxZ"

	// Stencil shape.
	Radius       int `json:"radius"`
	Quantities   int `json:"quantities"`
	ElemSize     int `json:"elem_size,omitempty"`    // 0 → 4
	Neighborhood int `json:"neighborhood,omitempty"` // 0 → 26 (6 with FaceOnly)

	// Method selection.
	Caps               string `json:"caps,omitempty"` // remote|colo|peer|kernel; "" or "all" → kernel
	CUDAAware          bool   `json:"cuda_aware,omitempty"`
	TrivialPlacement   bool   `json:"trivial_placement,omitempty"`
	AggregateRemote    bool   `json:"aggregate_remote,omitempty"`
	NoOverlap          bool   `json:"no_overlap,omitempty"`
	Overlap            bool   `json:"overlap,omitempty"`
	EmpiricalPlacement bool   `json:"empirical_placement,omitempty"`
	OpenBoundary       bool   `json:"open_boundary,omitempty"`
	FaceOnly           bool   `json:"face_only,omitempty"` // folded into Neighborhood by Normalize
	FairnessHorizon    int    `json:"fairness_horizon,omitempty"`

	// Run shape.
	Iters  int  `json:"iters,omitempty"` // 0 → 10
	Verify bool `json:"verify,omitempty"`

	// Resilience options.
	Adaptive        bool    `json:"adaptive,omitempty"`
	AdaptPlacement  bool    `json:"adapt_placement,omitempty"`
	CheckpointEvery int     `json:"checkpoint_every,omitempty"`
	SendTimeout     float64 `json:"send_timeout,omitempty"`
	SendRetries     int     `json:"send_retries,omitempty"` // 0 → 8
	Reliable        bool    `json:"reliable,omitempty"`
	VerifyExchange  bool    `json:"verify_exchange,omitempty"`
	QuarantineTicks int     `json:"quarantine_ticks,omitempty"`

	// Scenario is an optional scripted fault schedule (see internal/fault
	// for the JSON shape). Validate surfaces scenario errors before a job is
	// accepted.
	Scenario *fault.Scenario `json:"scenario,omitempty"`

	// Serving metadata (stencilserve). Neither field changes what the engine
	// computes, so both are excluded from Canonical/Hash/SetupHash: a job with
	// a deadline that completes in time produces bytes identical to the same
	// job without one, and fragmenting the content-addressed caches on who
	// submitted a job or how patient they are would only lower hit rates.
	//
	// Tenant names the submitting tenant when no X-Tenant header is set (the
	// header wins). DeadlineSeconds is a wall-clock budget for the whole job
	// (queue wait + run), measured from acknowledgment; the serving layer
	// preempts an over-deadline run at the engine's next iteration safe point
	// and fails the job without caching anything. 0 means no deadline.
	Tenant          string  `json:"tenant,omitempty"`
	DeadlineSeconds float64 `json:"deadline_s,omitempty"`
}

// Default returns stencilsim's default job: one Summit node, six ranks, the
// paper's 1363³ domain, radius 2, four quantities, fully specialized.
func Default() *Spec {
	return &Spec{
		Nodes:        1,
		RanksPerNode: 6,
		Domain:       "1363",
		Radius:       2,
		Quantities:   4,
		Caps:         "kernel",
		Iters:        10,
	}
}

// ParseDomain parses a domain extent: "N" for a cube or "XxYxZ".
func ParseDomain(s string) (stencil.Dim3, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	switch len(parts) {
	case 1:
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 1 {
			return stencil.Dim3{}, fmt.Errorf("bad domain %q", s)
		}
		return stencil.Dim3{X: n, Y: n, Z: n}, nil
	case 3:
		var d [3]int
		for i, p := range parts {
			n, err := strconv.Atoi(p)
			if err != nil || n < 1 {
				return stencil.Dim3{}, fmt.Errorf("bad domain %q", s)
			}
			d[i] = n
		}
		return stencil.Dim3{X: d[0], Y: d[1], Z: d[2]}, nil
	}
	return stencil.Dim3{}, fmt.Errorf("domain must be N or XxYxZ, got %q", s)
}

// FormatDomain renders a domain extent in the canonical "XxYxZ" form, so
// specs written as "96" and "96x96x96" normalize identically.
func FormatDomain(d stencil.Dim3) string {
	return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
}

// DomainString renders a domain for human-facing output: "N^3" for cubes,
// "XxYxZ" otherwise (the form the CLI transcripts use).
func DomainString(d stencil.Dim3) string {
	if d.X == d.Y && d.Y == d.Z {
		return fmt.Sprintf("%d^3", d.X)
	}
	return FormatDomain(d)
}

// ParseCaps parses a capability ladder rung name.
func ParseCaps(s string) (stencil.Capabilities, error) {
	switch strings.ToLower(s) {
	case "remote":
		return stencil.CapsRemote(), nil
	case "colo":
		return stencil.CapsColo(), nil
	case "peer":
		return stencil.CapsPeer(), nil
	case "kernel", "all", "":
		return stencil.CapsAll(), nil
	}
	return stencil.Capabilities{}, fmt.Errorf("unknown caps %q (want remote|colo|peer|kernel)", s)
}

// Normalize folds defaults into explicit values and canonicalizes enumerated
// spellings, in place. After Normalize, two specs describing the same job are
// structurally (and canonically-JSON) equal. It returns the spec for
// chaining and an error when a field cannot be canonicalized.
func (s *Spec) Normalize() error {
	if s.Nodes == 0 {
		s.Nodes = 1
	}
	if s.Sockets == 0 {
		s.Sockets = 2
	}
	if s.GPUsPerSocket == 0 {
		s.GPUsPerSocket = 3
	}
	dim, err := ParseDomain(s.Domain)
	if err != nil {
		return err
	}
	s.Domain = FormatDomain(dim)
	if s.ElemSize == 0 {
		s.ElemSize = 4
	}
	// FaceOnly is shorthand for the 6-direction neighborhood; 0 means the
	// full 26-direction set. Both fold into an explicit Neighborhood.
	if s.FaceOnly {
		if s.Neighborhood != 0 && s.Neighborhood != 6 {
			return fmt.Errorf("jobspec: face_only contradicts neighborhood %d", s.Neighborhood)
		}
		s.Neighborhood = 6
		s.FaceOnly = false
	}
	if s.Neighborhood == 0 {
		s.Neighborhood = 26
	}
	caps := strings.ToLower(s.Caps)
	switch caps {
	case "", "all":
		caps = "kernel"
	case "remote", "colo", "peer", "kernel":
	default:
		return fmt.Errorf("jobspec: unknown caps %q (want remote|colo|peer|kernel)", s.Caps)
	}
	s.Caps = caps
	if s.Iters == 0 {
		s.Iters = 10
	}
	// Both the MPI retry path and the reliable envelope treat 0 as 8
	// attempts, so the explicit default is behaviorally identical.
	if s.SendRetries == 0 {
		s.SendRetries = 8
	}
	// An empty scenario is the same job as no scenario; its Seed would
	// otherwise change the hash without changing any behavior.
	if s.Scenario != nil && len(s.Scenario.Events) == 0 {
		s.Scenario = nil
	}
	return nil
}

// Validate normalizes a copy and checks everything that can be checked
// without building the engine: field ranges, the scenario's static rules,
// and the stencil.Config invariants.
func (s *Spec) Validate() error {
	c := *s
	if err := c.Normalize(); err != nil {
		return err
	}
	if c.Nodes < 1 || c.RanksPerNode < 1 {
		return fmt.Errorf("jobspec: need at least one node and rank")
	}
	if c.Sockets < 1 || c.GPUsPerSocket < 1 {
		return fmt.Errorf("jobspec: need at least one socket and GPU per socket")
	}
	gpus := c.Sockets * c.GPUsPerSocket
	if gpus%c.RanksPerNode != 0 {
		return fmt.Errorf("jobspec: %d GPUs/node not divisible by %d ranks/node", gpus, c.RanksPerNode)
	}
	switch c.Neighborhood {
	case 6, 18, 26:
	default:
		return fmt.Errorf("jobspec: neighborhood %d (want 6, 18, or 26)", c.Neighborhood)
	}
	if c.Iters < 1 {
		return fmt.Errorf("jobspec: iters %d < 1", c.Iters)
	}
	if c.SendTimeout < 0 {
		return fmt.Errorf("jobspec: negative send_timeout %g", c.SendTimeout)
	}
	if c.DeadlineSeconds < 0 {
		return fmt.Errorf("jobspec: negative deadline_s %g", c.DeadlineSeconds)
	}
	if err := ValidTenant(c.Tenant); err != nil {
		return err
	}
	// The overlap pipeline's compatibility matrix (mirrors exchange.New) so
	// bad specs are rejected at admission, not at engine-build time.
	if c.Overlap {
		switch {
		case c.NoOverlap:
			return fmt.Errorf("jobspec: overlap contradicts no_overlap")
		case c.AggregateRemote:
			return fmt.Errorf("jobspec: overlap is incompatible with aggregate_remote")
		case c.AdaptPlacement:
			return fmt.Errorf("jobspec: overlap is incompatible with adapt_placement")
		case c.CUDAAware:
			return fmt.Errorf("jobspec: overlap is incompatible with cuda_aware")
		}
	}
	if c.Scenario != nil {
		if err := c.Scenario.Validate(); err != nil {
			return err
		}
		if c.Scenario.HasFatal() && c.CheckpointEvery < 1 {
			return fmt.Errorf("jobspec: scenario %q contains permanent-loss events; set checkpoint_every > 0", c.Scenario.Name)
		}
	}
	cfg, err := c.Config()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// Config builds the stencil.Config the spec describes. The spec should be
// Normalized (Config normalizes a copy itself, so calling it on a raw spec
// is safe).
func (s *Spec) Config() (stencil.Config, error) {
	c := *s
	if err := c.Normalize(); err != nil {
		return stencil.Config{}, err
	}
	dim, err := ParseDomain(c.Domain)
	if err != nil {
		return stencil.Config{}, err
	}
	caps, err := ParseCaps(c.Caps)
	if err != nil {
		return stencil.Config{}, err
	}
	nodeCfg := machine.NodeConfig{Sockets: c.Sockets, GPUsPerSocket: c.GPUsPerSocket}
	return stencil.Config{
		Nodes:              c.Nodes,
		RanksPerNode:       c.RanksPerNode,
		Domain:             dim,
		Radius:             c.Radius,
		Quantities:         c.Quantities,
		ElemSize:           c.ElemSize,
		Capabilities:       caps,
		CUDAAware:          c.CUDAAware,
		TrivialPlacement:   c.TrivialPlacement,
		RealData:           c.Verify,
		Neighborhood:       c.Neighborhood,
		OpenBoundary:       c.OpenBoundary,
		AggregateRemote:    c.AggregateRemote,
		NoOverlap:          c.NoOverlap,
		Overlap:            c.Overlap,
		EmpiricalPlacement: c.EmpiricalPlacement,
		FairnessHorizon:    c.FairnessHorizon,
		NodeConfig:         &nodeCfg,
		Fault:              c.Scenario,
		Adaptive:           c.Adaptive,
		AdaptPlacement:     c.AdaptPlacement,
		CheckpointEvery:    c.CheckpointEvery,
		SendTimeout:        c.SendTimeout,
		SendRetries:        c.SendRetries,
		Reliable:           c.Reliable,
		VerifyExchange:     c.VerifyExchange,
		QuarantineTicks:    c.QuarantineTicks,
	}, nil
}

// canonicalJSON marshals v with encoding/json (struct field order is fixed,
// map keys sort), the canonical byte form both hashes are computed over.
func canonicalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("jobspec: canonical marshal: %v", err))
	}
	return b
}

// ValidTenant checks a tenant name: empty is allowed (the serving layer
// substitutes "anonymous"), otherwise up to 64 characters drawn from
// [A-Za-z0-9._-]. The charset keeps tenant names safe as journal fields,
// metric label values, and query parameters.
func ValidTenant(tenant string) error {
	if len(tenant) > 64 {
		return fmt.Errorf("jobspec: tenant name longer than 64 characters")
	}
	for _, r := range tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("jobspec: tenant %q contains %q (want [A-Za-z0-9._-])", tenant, r)
		}
	}
	return nil
}

// Canonical returns the canonical JSON of the normalized spec: the bytes two
// specs describing the same job agree on, and the preimage of Hash. Serving
// metadata (Tenant, DeadlineSeconds) is cleared first: it never reaches the
// engine, so specs differing only in it are the same job.
func (s *Spec) Canonical() ([]byte, error) {
	c := *s
	if err := c.Normalize(); err != nil {
		return nil, err
	}
	c.Tenant = ""
	c.DeadlineSeconds = 0
	return canonicalJSON(&c), nil
}

// Hash returns the job's content address: hex SHA-256 over Canonical().
// Because the engine is deterministic, specs with equal hashes produce
// byte-identical results — the correctness argument of the result cache.
func (s *Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// setupKey is the subset of a normalized spec that determines the setup
// phases (partition, placement, specialization inputs): jobs equal under
// SetupHash run the same QAP and produce identical phase-2 assignments, no
// matter how their scenarios, iteration counts, or reliability options
// differ.
type setupKey struct {
	Nodes            int    `json:"nodes"`
	RanksPerNode     int    `json:"ranks_per_node"`
	Sockets          int    `json:"sockets"`
	GPUsPerSocket    int    `json:"gpus_per_socket"`
	Domain           string `json:"domain"`
	Radius           int    `json:"radius"`
	Quantities       int    `json:"quantities"`
	ElemSize         int    `json:"elem_size"`
	Neighborhood     int    `json:"neighborhood"`
	TrivialPlacement bool   `json:"trivial_placement"`
	OpenBoundary     bool   `json:"open_boundary"`
	Empirical        bool   `json:"empirical_placement"`
}

// SetupHash returns the content address of the setup-phase inputs only; it
// keys the serving layer's placement (setup) cache.
func (s *Spec) SetupHash() (string, error) {
	c := *s
	if err := c.Normalize(); err != nil {
		return "", err
	}
	sum := sha256.Sum256(canonicalJSON(&setupKey{
		Nodes:            c.Nodes,
		RanksPerNode:     c.RanksPerNode,
		Sockets:          c.Sockets,
		GPUsPerSocket:    c.GPUsPerSocket,
		Domain:           c.Domain,
		Radius:           c.Radius,
		Quantities:       c.Quantities,
		ElemSize:         c.ElemSize,
		Neighborhood:     c.Neighborhood,
		TrivialPlacement: c.TrivialPlacement,
		OpenBoundary:     c.OpenBoundary,
		Empirical:        c.EmpiricalPlacement,
	}))
	return hex.EncodeToString(sum[:]), nil
}

// CacheableSetup reports whether the setup cache may skip this spec's
// phase-2 solve. EmpiricalPlacement jobs are excluded: their placement
// microbenchmark advances the virtual clock, so skipping it would change
// every downstream timestamp and break byte-identical result caching.
func (s *Spec) CacheableSetup() bool { return !s.EmpiricalPlacement }

// ---- Flag binding (the shared CLI scaffolding) ----

// BindTopologyFlags registers the cluster and stencil-shape flags, using the
// spec's current values as defaults.
func (s *Spec) BindTopologyFlags(fs *flag.FlagSet) {
	fs.IntVar(&s.Nodes, "nodes", s.Nodes, "number of nodes")
	fs.IntVar(&s.RanksPerNode, "ranks", s.RanksPerNode, "MPI ranks per node")
	fs.StringVar(&s.Domain, "domain", s.Domain, "domain extent: N for a cube or XxYxZ")
	fs.IntVar(&s.Radius, "radius", s.Radius, "stencil radius (halo width)")
	fs.IntVar(&s.Quantities, "quantities", s.Quantities, "grid quantities")
	fs.IntVar(&s.Sockets, "sockets", s.Sockets, "CPU sockets per node")
	fs.IntVar(&s.GPUsPerSocket, "gpus-per-socket", s.GPUsPerSocket, "GPUs per socket")
}

// BindMethodFlags registers the transfer-method and placement flags.
func (s *Spec) BindMethodFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Caps, "caps", s.Caps, "capability ladder rung: remote, colo, peer, kernel")
	fs.BoolVar(&s.CUDAAware, "cuda-aware", s.CUDAAware, "use CUDA-aware MPI for remote messages")
	fs.BoolVar(&s.TrivialPlacement, "trivial-placement", s.TrivialPlacement, "disable node-aware placement")
	fs.BoolVar(&s.AggregateRemote, "aggregate", s.AggregateRemote, "aggregate inter-node messages per rank pair")
	fs.BoolVar(&s.NoOverlap, "no-overlap", s.NoOverlap, "serialize transfers (ablation)")
	fs.BoolVar(&s.Overlap, "overlap", s.Overlap, "overlap interior compute with halo exchange (per-quadrant readiness)")
	fs.BoolVar(&s.EmpiricalPlacement, "empirical-placement", s.EmpiricalPlacement, "measure bandwidths for placement")
	fs.BoolVar(&s.OpenBoundary, "open-boundary", s.OpenBoundary, "non-periodic boundaries")
	fs.BoolVar(&s.FaceOnly, "face-only", s.FaceOnly, "exchange only the 6 face neighbors")
}

// BindRunFlags registers the run-length flag.
func (s *Spec) BindRunFlags(fs *flag.FlagSet) {
	fs.IntVar(&s.Iters, "iters", s.Iters, "exchange iterations (paper: 30)")
}

// Main is the shared entry-point scaffolding of every cmd driver: run with
// the process arguments and stdout, report the error, exit nonzero.
func Main(run func(args []string, out io.Writer) error) {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
