package jobspec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecDecode hardens the service's submission path: arbitrary JSON must
// never panic anywhere between decode and content addressing, and the
// canonicalization must be a fixpoint — hashing twice, or hashing the
// normalized form, must agree with the first hash. A spec that decodes and
// validates must also round-trip through its canonical JSON to the same
// content address (the property the journal's recovery replay relies on).
func FuzzSpecDecode(f *testing.F) {
	seed := [][]byte{
		[]byte(`{}`),
		[]byte(`{"nodes":1,"ranks_per_node":2,"domain":"12","radius":1,"quantities":1}`),
		[]byte(`{"nodes":2,"ranks_per_node":6,"domain":"24x12x12","radius":2,"quantities":4,"caps":"ALL","face_only":true}`),
		[]byte(`{"domain":"1363","iters":-3}`),
		[]byte(`{"domain":"0"}`),
		[]byte(`{"domain":"12","tenant":"alice","deadline_s":1.5}`),
		[]byte(`{"domain":"12","tenant":"bad tenant!"}`),
		[]byte(`{"domain":"12","scenario":{"events":[{"at":1,"kind":"link-degrade","target":{"kind":"nic","a":0},"factor":0.5}]}}`),
		[]byte(`{"domain":"12","scenario":{"events":[]}}`),
		[]byte(`{"nodes":9999999,"ranks_per_node":1,"domain":"1x1x99999999","radius":1,"quantities":1}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		// None of these may panic, whatever the field values.
		verr := s.Validate()
		c1, cerr := s.Canonical()
		h1, herr := s.Hash()
		if (cerr == nil) != (herr == nil) {
			t.Fatalf("Canonical err=%v but Hash err=%v", cerr, herr)
		}
		if herr != nil || verr != nil {
			return
		}
		// Hashing is stable and normalization is a fixpoint.
		if h2, err := s.Hash(); err != nil || h2 != h1 {
			t.Fatalf("second Hash = (%q, %v), want (%q, nil)", h2, err, h1)
		}
		if err := s.Normalize(); err != nil {
			t.Fatalf("Normalize after successful Validate: %v", err)
		}
		c2, err := s.Canonical()
		if err != nil || !bytes.Equal(c1, c2) {
			t.Fatalf("canonical bytes changed after Normalize: %v\n%s\nvs\n%s", err, c1, c2)
		}
		// The canonical form round-trips to the same content address — the
		// journal stores this form and recovery must re-derive the same key.
		var rt Spec
		if err := json.Unmarshal(c1, &rt); err != nil {
			t.Fatalf("canonical JSON does not decode: %v\n%s", err, c1)
		}
		if h3, err := rt.Hash(); err != nil || h3 != h1 {
			t.Fatalf("round-tripped Hash = (%q, %v), want (%q, nil)", h3, err, h1)
		}
		if _, err := s.SetupHash(); err != nil {
			t.Fatalf("SetupHash after successful Validate: %v", err)
		}
	})
}
