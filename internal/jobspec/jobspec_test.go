package jobspec

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/nodeaware/stencil/internal/fault"
)

func mustHash(t *testing.T, s *Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustSetupHash(t *testing.T, s *Spec) string {
	t.Helper()
	h, err := s.SetupHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// Specs that spell the same job differently must hash identically: explicit
// defaults vs zero values, "N" vs "XxYxZ" domains, "all" vs "kernel" caps,
// face_only vs neighborhood 6, and JSON field order.
func TestHashCanonicalization(t *testing.T) {
	base := &Spec{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4}
	want := mustHash(t, base)

	equivalents := []*Spec{
		{Nodes: 1, RanksPerNode: 6, Domain: "96x96x96", Radius: 2, Quantities: 4},
		{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4,
			ElemSize: 4, Neighborhood: 26, Caps: "kernel", Iters: 10, SendRetries: 8},
		{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4, Caps: "all"},
		{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4,
			Sockets: 2, GPUsPerSocket: 3},
		{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4,
			Scenario: &fault.Scenario{Name: "empty", Seed: 7}}, // no events → no scenario
	}
	for i, eq := range equivalents {
		if got := mustHash(t, eq); got != want {
			cb, _ := base.Canonical()
			ce, _ := eq.Canonical()
			t.Errorf("equivalent %d hashes differently:\n base %s\n spec %s", i, cb, ce)
		}
	}

	faceOnly := &Spec{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4, FaceOnly: true}
	neigh6 := &Spec{Nodes: 1, RanksPerNode: 6, Domain: "96", Radius: 2, Quantities: 4, Neighborhood: 6}
	if mustHash(t, faceOnly) != mustHash(t, neigh6) {
		t.Error("face_only and neighborhood 6 hash differently")
	}
	if mustHash(t, faceOnly) == want {
		t.Error("face_only did not change the hash vs the full neighborhood")
	}
}

// Reordering fields in the wire JSON must not change the hash: the canonical
// form is the marshal of the normalized struct, not the submitted bytes.
func TestHashIgnoresWireFieldOrder(t *testing.T) {
	a := `{"nodes": 2, "ranks_per_node": 2, "domain": "48", "radius": 1, "quantities": 2, "caps": "peer"}`
	b := `{"caps": "peer", "quantities": 2, "radius": 1, "domain": "48x48x48", "ranks_per_node": 2, "nodes": 2}`
	var sa, sb Spec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	if mustHash(t, &sa) != mustHash(t, &sb) {
		t.Error("field order changed the hash")
	}
}

// Semantic changes must change the hash.
func TestHashSensitivity(t *testing.T) {
	base := func() *Spec {
		return &Spec{Nodes: 2, RanksPerNode: 2, Domain: "48", Radius: 1, Quantities: 2}
	}
	want := mustHash(t, base())

	mutations := map[string]func(*Spec){
		"nodes":  func(s *Spec) { s.Nodes = 4 },
		"domain": func(s *Spec) { s.Domain = "64" },
		"radius": func(s *Spec) { s.Radius = 2 },
		"caps":   func(s *Spec) { s.Caps = "remote" },
		"iters":  func(s *Spec) { s.Iters = 30 },
		"verify": func(s *Spec) { s.Verify = true },
		"scenario seed": func(s *Spec) {
			s.Scenario = &fault.Scenario{Seed: 1, Events: []fault.Event{{At: 1, Kind: fault.MsgDrop, Factor: 0.1, Target: fault.Target{Kind: fault.TargetNIC}}}}
		},
		"drop rate": func(s *Spec) {
			s.Scenario = &fault.Scenario{Seed: 1, Events: []fault.Event{{At: 1, Kind: fault.MsgDrop, Factor: 0.2, Target: fault.Target{Kind: fault.TargetNIC}}}}
		},
		"quarantine": func(s *Spec) { s.QuarantineTicks = 3 },
		"checkpoint": func(s *Spec) { s.CheckpointEvery = 5 },
		"overlap":    func(s *Spec) { s.Overlap = true },
	}
	seen := map[string]string{}
	for name, mutate := range mutations {
		s := base()
		mutate(s)
		got := mustHash(t, s)
		if got == want {
			t.Errorf("mutation %q did not change the hash", name)
		}
		for prev, h := range seen {
			if h == got {
				t.Errorf("mutations %q and %q collide", prev, name)
			}
		}
		seen[name] = got
	}
}

// SetupHash must be invariant under run-shape and resilience changes (those
// share the cached placement) but sensitive to anything that feeds the
// partition/placement/specialization phases.
func TestSetupHashInvariants(t *testing.T) {
	base := func() *Spec {
		return &Spec{Nodes: 2, RanksPerNode: 2, Domain: "48", Radius: 1, Quantities: 2}
	}
	want := mustSetupHash(t, base())

	sameSetup := map[string]func(*Spec){
		"iters": func(s *Spec) { s.Iters = 30 },
		"scenario": func(s *Spec) {
			s.Scenario = &fault.Scenario{Events: []fault.Event{{At: 1, Kind: fault.MsgDrop, Factor: 0.1, Target: fault.Target{Kind: fault.TargetNIC}}}}
		},
		"reliable": func(s *Spec) { s.Reliable = true },
		"verify":   func(s *Spec) { s.Verify = true },
		"caps":     func(s *Spec) { s.Caps = "remote" },
		"adaptive": func(s *Spec) { s.Adaptive = true },
	}
	for name, mutate := range sameSetup {
		s := base()
		mutate(s)
		if mustSetupHash(t, s) != want {
			t.Errorf("run-shape mutation %q changed the setup hash", name)
		}
		if mustHash(t, s) == mustHash(t, base()) {
			t.Errorf("mutation %q should still change the full hash", name)
		}
	}

	differentSetup := map[string]func(*Spec){
		"nodes":     func(s *Spec) { s.Nodes = 4 },
		"ranks":     func(s *Spec) { s.RanksPerNode = 1 },
		"domain":    func(s *Spec) { s.Domain = "64" },
		"radius":    func(s *Spec) { s.Radius = 2 },
		"trivial":   func(s *Spec) { s.TrivialPlacement = true },
		"empirical": func(s *Spec) { s.EmpiricalPlacement = true },
		"open":      func(s *Spec) { s.OpenBoundary = true },
		"gpus":      func(s *Spec) { s.Sockets = 1; s.GPUsPerSocket = 6 },
	}
	for name, mutate := range differentSetup {
		s := base()
		mutate(s)
		if mustSetupHash(t, s) == want {
			t.Errorf("setup mutation %q did not change the setup hash", name)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bad domain", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12x12", Radius: 1, Quantities: 1}, "domain"},
		{"bad caps", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Caps: "warp"}, "caps"},
		{"indivisible", Spec{Nodes: 1, RanksPerNode: 4, Domain: "12", Radius: 1, Quantities: 1}, "divisible"},
		{"neighborhood", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Neighborhood: 7}, "neighborhood"},
		{"face contradiction", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, FaceOnly: true, Neighborhood: 18}, "contradicts"},
		{"negative iters", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Iters: -1}, "iters"},
		{"no radius", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Quantities: 1}, "radius"},
		{"overlap vs no_overlap", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Overlap: true, NoOverlap: true}, "no_overlap"},
		{"overlap vs aggregate", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Overlap: true, AggregateRemote: true}, "aggregate_remote"},
		{"overlap vs adapt_placement", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Overlap: true, Adaptive: true, AdaptPlacement: true}, "adapt_placement"},
		{"overlap vs cuda_aware", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Overlap: true, CUDAAware: true}, "cuda_aware"},
		{"negative deadline", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, DeadlineSeconds: -1}, "deadline_s"},
		{"bad tenant charset", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Tenant: "a b"}, "tenant"},
		{"long tenant", Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1, Tenant: strings.Repeat("x", 65)}, "tenant"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// Serving metadata (tenant, deadline) is not part of the job's identity: two
// specs differing only in it are the same job and must share both content
// addresses — otherwise every tenant would fragment the result cache.
func TestHashIgnoresServingMetadata(t *testing.T) {
	base := &Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1}
	meta := &Spec{Nodes: 1, RanksPerNode: 2, Domain: "12", Radius: 1, Quantities: 1,
		Tenant: "alice", DeadlineSeconds: 2.5}
	if got, want := mustHash(t, meta), mustHash(t, base); got != want {
		t.Errorf("tenant/deadline changed the job hash: %s vs %s", got, want)
	}
	if got, want := mustSetupHash(t, meta), mustSetupHash(t, base); got != want {
		t.Errorf("tenant/deadline changed the setup hash: %s vs %s", got, want)
	}
	// ...but Normalize keeps them on the spec itself: the serving layer reads
	// them after normalization.
	c := *meta
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Tenant != "alice" || c.DeadlineSeconds != 2.5 {
		t.Errorf("Normalize dropped serving metadata: %+v", c)
	}
}

// Normalize is idempotent: a normalized spec re-normalizes to itself, and its
// canonical bytes are stable.
func TestNormalizeIdempotent(t *testing.T) {
	s := &Spec{Nodes: 2, RanksPerNode: 3, Domain: "96", Radius: 2, Quantities: 4, FaceOnly: true}
	c1, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	c2, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Errorf("canonical bytes unstable:\n%s\n%s", c1, c2)
	}
}
